// Trace synthesis and export.
//
// Generates a campus workload, replays it under the deployed policy to
// obtain the "collected" trace, and writes both as CSV — the format
// external tooling (plotting, other simulators) consumes. Also
// round-trips the file to demonstrate lossless I/O.
//
// Usage: trace_export [output_dir]   (default /tmp)

#include <iostream>
#include <string>

#include "s3/core/selector_factory.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "s3/trace/io.h"

using namespace s3;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  trace::GeneratorConfig gen;
  gen.num_users = 1200;
  gen.num_days = 7;
  gen.layout.num_buildings = 4;
  const trace::GeneratedTrace world = trace::generate_campus_trace(gen);

  const std::string workload_path = dir + "/s3lb_workload.csv";
  if (!trace::write_csv_file(workload_path, world.workload)) {
    std::cerr << "cannot write " << workload_path << "\n";
    return 1;
  }
  std::cout << "workload:  " << workload_path << "  ("
            << world.workload.size() << " sessions, unassigned)\n";

  // Sharded replay: one count-LLF instance per controller domain, all
  // cores; the result is identical to a sequential replay.
  const core::LlfFactory llf(core::LoadMetric::kStations);
  const sim::ReplayResult run =
      runtime::ReplayDriver(world.network).run(world.workload, llf);
  const std::string collected_path = dir + "/s3lb_collected.csv";
  if (!trace::write_csv_file(collected_path, run.assigned)) {
    std::cerr << "cannot write " << collected_path << "\n";
    return 1;
  }
  std::cout << "collected: " << collected_path
            << "  (assigned under count-LLF, the deployed policy)\n";

  // Round-trip check.
  const trace::ReadResult back = trace::read_csv_file(collected_path);
  if (!back.trace) {
    std::cerr << "round-trip failed: " << back.error << "\n";
    return 1;
  }
  std::cout << "round-trip: " << back.trace->size() << " sessions, "
            << (back.trace->fully_assigned() ? "fully assigned" : "unassigned")
            << ", identical count: "
            << (back.trace->size() == run.assigned.size() ? "yes" : "NO")
            << "\n";
  return 0;
}
