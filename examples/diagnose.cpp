// Pipeline diagnostics: inspects the synthetic workload, the trained
// social model, and where S3 wins or loses against LLF hour by hour.
// Useful when re-calibrating the generator.

#include <iostream>
#include <map>

#include "s3/analysis/events.h"
#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"
#include "s3/util/cdf.h"
#include "s3/util/table.h"
#include "s3/wlan/radio.h"

using namespace s3;

int main() {
  trace::GeneratorConfig gen;
  gen.seed = 42;
  gen.num_users = 2400;
  gen.num_days = 24;
  const trace::GeneratedTrace data = trace::generate_campus_trace(gen);
  const wlan::Network& net = data.network;

  core::EvaluationConfig eval;
  eval.train_days = 21;
  eval.test_days = 3;

  // --- candidate set sizes ---
  {
    util::RunningStats cs;
    wlan::RadioModel radio;
    std::size_t i = 0;
    for (const trace::SessionRecord& s : data.workload.sessions()) {
      if (++i % 37 != 0) continue;  // sample
      cs.add(static_cast<double>(
          wlan::candidate_aps(net, radio, s.building, s.pos).size()));
    }
    std::cout << "candidate APs per session: mean " << cs.mean() << " min "
              << cs.min() << " max " << cs.max() << "\n";
  }

  // --- train model, inspect theta quality ---
  const social::SocialIndexModel model =
      core::train_from_workload(net, data.workload, eval);

  {
    // Same-group vs cross-group theta.
    util::RunningStats same, cross;
    std::size_t same_strong = 0, same_n = 0, cross_strong = 0, cross_n = 0;
    util::Rng rng(1);
    const std::size_t n_users = data.workload.num_users();
    // same-group pairs from ground truth
    for (const auto& g : data.truth.groups) {
      for (std::size_t a = 0; a < g.members.size(); ++a) {
        for (std::size_t b = a + 1; b < g.members.size(); ++b) {
          const double th = model.theta(g.members[a], g.members[b]);
          same.add(th);
          ++same_n;
          if (th > 0.3) ++same_strong;
        }
      }
    }
    for (std::size_t k = 0; k < 20000; ++k) {
      const UserId u = static_cast<UserId>(rng.index(n_users));
      const UserId v = static_cast<UserId>(rng.index(n_users));
      if (u == v) continue;
      const double th = model.theta(u, v);
      cross.add(th);
      ++cross_n;
      if (th > 0.3) ++cross_strong;
    }
    std::cout << "theta same-group: mean " << same.mean() << ", strong "
              << 100.0 * same_strong / same_n << "% of " << same_n << "\n";
    std::cout << "theta random-pair: mean " << cross.mean() << ", strong "
              << 100.0 * cross_strong / cross_n << "% of " << cross_n << "\n";
    std::cout << "type matrix diag dominance: "
              << model.type_matrix().diagonal_dominance() << "\n";
    for (std::size_t i2 = 0; i2 < model.type_matrix().num_types(); ++i2) {
      for (std::size_t j2 = 0; j2 < model.type_matrix().num_types(); ++j2) {
        std::cout << util::fmt(model.type_matrix().at(i2, j2), 2) << " ";
      }
      std::cout << "\n";
    }
  }

  // --- replay test under both policies, hourly beta ---
  const trace::Trace test = data.workload.slice(
      util::SimTime::from_days(21), util::SimTime::from_days(24));
  core::LlfSelector llf(eval.baseline_metric);
  core::S3Selector s3sel(&net, &model, eval.s3);
  const sim::ReplayResult rl = sim::replay(net, test, llf, eval.replay);
  const sim::ReplayResult rs = sim::replay(net, test, s3sel, eval.replay);
  std::cout << "S3 batches: " << rs.stats.num_batches
            << " mean size " << rs.stats.mean_batch_size
            << " max " << rs.stats.max_batch_size
            << " forced overloads " << rs.stats.forced_overloads << "\n";
  const core::S3Stats& st = s3sel.stats();
  std::cout << "S3 paths: " << st.cliques << " cliques ("
            << st.clique_members << " members, largest " << st.largest_clique
            << "), " << st.singles << " singles, " << st.exact_enumerations
            << " exact enumerations, " << st.beam_searches << " beam, "
            << st.bandwidth_fallbacks << " bandwidth fallbacks\n";

  analysis::ThroughputOptions topts;
  topts.slot_s = 3600;
  const util::SimTime b = util::SimTime::from_days(22),
                      e = util::SimTime::from_days(23);
  const analysis::ThroughputSeries sl(net, rl.assigned, b, e, topts);
  const analysis::ThroughputSeries ss(net, rs.assigned, b, e, topts);
  std::cout << "\nhour  load(Mbps)  beta_LLF  beta_S3  (controller 0, test day 2)\n";
  for (std::size_t slot = 0; slot < sl.num_slots(); ++slot) {
    std::cout << slot << "  " << util::fmt(sl.total_load(0, slot), 1) << "  "
              << util::fmt(analysis::normalized_balance_index(
                     sl.slot_load(0, slot)), 3)
              << "  "
              << util::fmt(analysis::normalized_balance_index(
                     ss.slot_load(0, slot)), 3)
              << "\n";
  }

  // --- scored-slot beta distribution per policy ---
  {
    analysis::ThroughputOptions to2;
    to2.slot_s = 600;
    const util::SimTime tb = util::SimTime::from_days(21),
                        te = util::SimTime::from_days(24);
    for (const auto* rr : {&rl, &rs}) {
      const analysis::ThroughputSeries ser(net, rr->assigned, tb, te, to2);
      util::EmpiricalCdf cdf;
      for (ControllerId c = 0; c < net.num_controllers(); ++c) {
        for (std::size_t slot = 0; slot < ser.num_slots(); ++slot) {
          const double hour =
              static_cast<double>(ser.slot_begin(slot).second_of_day()) / 3600.0;
          if (hour < 8.0) continue;
          if (ser.total_load(c, slot) < 5.0) continue;
          cdf.add(analysis::normalized_balance_index(ser.slot_load(c, slot)));
        }
      }
      std::cout << (rr == &rl ? "LLF" : "S3 ") << " slots=" << cdf.size()
                << " q10=" << util::fmt(cdf.quantile(0.1), 2)
                << " q25=" << util::fmt(cdf.quantile(0.25), 2)
                << " q50=" << util::fmt(cdf.quantile(0.5), 2)
                << " q75=" << util::fmt(cdf.quantile(0.75), 2)
                << " q90=" << util::fmt(cdf.quantile(0.9), 2) << "\n";
    }
  }

  // --- group dispersion during meetings ---
  // For each ground-truth group session cluster in the test window,
  // count distinct APs used by members (higher = more dispersed).
  auto dispersion = [&](const trace::Trace& assigned) {
    std::map<std::pair<GroupId, std::int64_t>, std::map<ApId, int>> spread;
    for (const trace::SessionRecord& s : assigned.sessions()) {
      if (s.group == kInvalidGroup) continue;
      spread[{s.group, s.connect.seconds() / 7200}][s.ap]++;
    }
    util::RunningStats disp;
    for (const auto& [key, aps] : spread) {
      int total = 0;
      std::vector<double> counts;
      for (const auto& [ap, n] : aps) {
        total += n;
        counts.push_back(n);
      }
      if (total < 4) continue;
      disp.add(analysis::normalized_balance_index(counts));
    }
    return disp.mean();
  };
  std::cout << "\ngroup-member AP dispersion (balance of member counts):\n";
  std::cout << "  LLF: " << dispersion(rl.assigned)
            << "  S3: " << dispersion(rs.assigned) << "\n";
  return 0;
}
