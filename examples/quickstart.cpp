// Quickstart: the whole S3 pipeline in one page.
//
//   1. synthesize a campus workload (the stand-in for the SJTU trace);
//   2. replay the training weeks under LLF — the operator's logs;
//   3. train the social-index model (encounters, co-leavings, k-means
//      typing, Table-I matrix);
//   4. replay the test days under LLF and under S3;
//   5. print the balance-index comparison.
//
// Run: ./quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"
#include "s3/util/table.h"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Workload. Laptop scale: 8 buildings, 96 APs, 2400 users, 24 days.
  s3::trace::GeneratorConfig gen;
  gen.seed = seed;
  gen.num_users = 2400;
  gen.num_days = 24;
  const s3::trace::GeneratedTrace data = s3::trace::generate_campus_trace(gen);
  std::cout << "workload: " << data.workload.size() << " sessions, "
            << data.truth.groups.size() << " social groups, "
            << data.network.num_aps() << " APs in "
            << data.network.num_controllers() << " controller domains\n";

  // 2–5. Train on days [0,21), evaluate days [21,24).
  s3::core::EvaluationConfig eval;
  eval.train_days = 21;
  eval.test_days = 3;

  const s3::core::ComparisonResult r =
      s3::core::compare_s3_vs_llf(data.network, data.workload, eval);

  s3::util::TextTable table({"policy", "mean beta'", "ci95", "leave-peak"});
  table.add_row({std::string(r.llf.policy), s3::util::fmt(r.llf.mean),
                 s3::util::fmt(r.llf.ci95), s3::util::fmt(r.llf.leave_peak_mean)});
  table.add_row({std::string(r.s3.policy), s3::util::fmt(r.s3.mean),
                 s3::util::fmt(r.s3.ci95), s3::util::fmt(r.s3.leave_peak_mean)});
  std::cout << '\n' << table;

  std::cout << "\nbalance gain:        " << s3::util::fmt(100.0 * r.balance_gain, 1)
            << " %  (paper: +41.2 %)\n";
  std::cout << "leave-peak gain:     "
            << s3::util::fmt(100.0 * r.leave_peak_gain, 1)
            << " %  (paper: +52.1 %)\n";
  std::cout << "error-bar reduction: "
            << s3::util::fmt(100.0 * r.errorbar_reduction, 1)
            << " %  (paper: 72.1 %)\n";
  return 0;
}
