// A day in the life of one controller domain.
//
// Generates the campus workload, trains the social model on the first
// three weeks, replays a test day under a chosen policy, and prints the
// hour-by-hour story: offered load, stations, balance index, and the
// co-leaving waves the policy had to survive.
//
// Usage: campus_day [policy] [controller] [day]
//   policy      llf | llf-demand | rssi | random | s3   (default s3)
//   controller  domain index                            (default 0)
//   day         test-day index, 0-2                     (default 1)

#include <cstdlib>
#include <iostream>
#include <memory>

#include "s3/analysis/balance.h"
#include "s3/analysis/events.h"
#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

std::unique_ptr<sim::ApSelector> make_policy(
    const std::string& name, const wlan::Network& net,
    const social::SocialIndexModel* model, const core::S3Config& s3cfg) {
  if (name == "llf") {
    return std::make_unique<core::LlfSelector>(core::LoadMetric::kStations);
  }
  if (name == "llf-demand") {
    return std::make_unique<core::LlfSelector>(core::LoadMetric::kDemand);
  }
  if (name == "rssi") return std::make_unique<core::StrongestRssiSelector>();
  if (name == "random") return std::make_unique<core::RandomSelector>(1);
  if (name == "s3") return std::make_unique<core::S3Selector>(&net, model, s3cfg);
  std::cerr << "unknown policy '" << name
            << "' (llf | llf-demand | rssi | random | s3)\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "s3";
  const ControllerId controller =
      argc > 2 ? static_cast<ControllerId>(std::atoi(argv[2])) : 0;
  const int test_day = argc > 3 ? std::atoi(argv[3]) : 1;

  trace::GeneratorConfig gen;
  gen.num_users = 2400;
  gen.num_days = 24;
  const trace::GeneratedTrace world = trace::generate_campus_trace(gen);
  S3_REQUIRE(controller < world.network.num_controllers(),
             "controller index out of range");
  S3_REQUIRE(test_day >= 0 && test_day < 3, "test day must be 0..2");

  core::EvaluationConfig eval;
  eval.train_days = 21;
  eval.test_days = 3;
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  const auto policy =
      make_policy(policy_name, world.network, &model, eval.s3);
  const trace::Trace test = world.workload.slice(
      util::SimTime::from_days(21), util::SimTime::from_days(24));
  const sim::ReplayResult run =
      sim::replay(world.network, test, *policy, eval.replay);

  const std::int64_t day = 21 + test_day;
  const util::SimTime begin = util::SimTime::from_days(day);
  const util::SimTime end = util::SimTime::from_days(day + 1);
  analysis::ThroughputOptions opts;
  opts.slot_s = 3600;
  const analysis::ThroughputSeries series(world.network, run.assigned, begin,
                                          end, opts);

  // Co-leaving waves on this domain, from the assigned trace.
  std::vector<int> leavers_per_hour(24, 0);
  for (const trace::SessionRecord& s : run.assigned.sessions()) {
    if (world.network.controller_of_ap(s.ap) != controller) continue;
    if (s.disconnect < begin || s.disconnect >= end) continue;
    ++leavers_per_hour[s.disconnect.hour_of_day()];
  }

  std::cout << "policy " << policy->name() << ", controller " << controller
            << ", test day " << test_day << " (trace day " << day << ")\n\n";
  util::TextTable table(
      {"hour", "load_mbps", "stations", "leavers", "beta_norm"});
  for (std::size_t h = 0; h < series.num_slots(); ++h) {
    double stations = 0.0;
    for (double u : series.slot_users(controller, h)) stations += u;
    table.add_row({std::to_string(h),
                   util::fmt(series.total_load(controller, h), 1),
                   util::fmt(stations, 1),
                   std::to_string(leavers_per_hour[h]),
                   util::fmt(analysis::normalized_balance_index(
                                 series.slot_load(controller, h)),
                             3)});
  }
  std::cout << table;

  util::RunningStats day_beta;
  for (std::size_t h = 8; h < series.num_slots(); ++h) {
    if (series.total_load(controller, h) < 1.0) continue;
    day_beta.add(analysis::normalized_balance_index(
        series.slot_load(controller, h)));
  }
  std::cout << "\nmean daytime balance index: " << util::fmt(day_beta.mean())
            << "\n";
  std::cout << "batches: " << run.stats.num_batches
            << " (mean size " << util::fmt(run.stats.mean_batch_size, 2)
            << "), forced overloads: " << run.stats.forced_overloads << "\n";
  return 0;
}
