// Social-model inspection report.
//
// Trains the S3 knowledge base from the first three weeks of the
// campus trace and prints what the controller has learned: the usage
// types (Fig. 8), the type co-leaving matrix (Table I), the strongest
// social pairs, and how a sample arrival batch decomposes into cliques.
//
// Usage: social_report [seed]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "s3/core/evaluation.h"
#include "s3/social/clique.h"
#include "s3/trace/generator.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  trace::GeneratorConfig gen;
  gen.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  gen.num_users = 2400;
  gen.num_days = 24;
  const trace::GeneratedTrace world = trace::generate_campus_trace(gen);

  core::EvaluationConfig eval;
  eval.train_days = 21;
  eval.test_days = 3;
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  // ---- Usage types ---------------------------------------------------
  std::cout << "== usage types (k-means over application profiles) ==\n";
  std::vector<std::string> header = {"type", "users"};
  for (apps::AppCategory c : apps::kAllCategories) {
    header.emplace_back(to_string(c));
  }
  util::TextTable types(header);
  std::vector<std::size_t> counts(model.typing().num_types, 0);
  for (std::size_t t : model.typing().type_of_user) ++counts[t];
  for (std::size_t t = 0; t < model.typing().num_types; ++t) {
    std::vector<std::string> row = {"type" + std::to_string(t + 1),
                                    std::to_string(counts[t])};
    for (double v : model.typing().centroid(t)) row.push_back(util::fmt(v, 3));
    types.add_row(row);
  }
  std::cout << types << "\n";

  // ---- Type co-leave matrix (Table I) --------------------------------
  std::cout << "== type co-leaving matrix T ==\n";
  const social::TypeCoLeaveMatrix& matrix = model.type_matrix();
  std::vector<std::string> mh = {"T"};
  for (std::size_t t = 0; t < matrix.num_types(); ++t) {
    mh.push_back("type" + std::to_string(t + 1));
  }
  util::TextTable mt(mh);
  for (std::size_t i = 0; i < matrix.num_types(); ++i) {
    std::vector<std::string> row = {"type" + std::to_string(i + 1)};
    for (std::size_t j = 0; j < matrix.num_types(); ++j) {
      row.push_back(util::fmt(matrix.at(i, j), 2));
    }
    mt.add_row(row);
  }
  std::cout << mt << "diagonal dominance: "
            << util::fmt(matrix.diagonal_dominance(), 3) << "\n\n";

  // ---- Strongest pairs ------------------------------------------------
  std::cout << "== strongest social pairs ==\n";
  struct Ranked {
    UserPair pair;
    double theta;
    std::uint32_t encounters;
  };
  std::vector<Ranked> ranked;
  for (const auto& [pair, stats] : model.pair_stats()) {
    if (stats.encounters < 3) continue;
    ranked.push_back({pair, model.theta(pair.a, pair.b), stats.encounters});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.theta > b.theta; });
  util::TextTable pairs({"user_a", "user_b", "theta", "encounters",
                         "same_group(truth)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size()); ++i) {
    const auto& r = ranked[i];
    const auto& ga = world.truth.user_groups[r.pair.a];
    const auto& gb = world.truth.user_groups[r.pair.b];
    const bool same =
        !ga.empty() && !gb.empty() && ga.front() == gb.front();
    pairs.add_row({std::to_string(r.pair.a), std::to_string(r.pair.b),
                   util::fmt(r.theta, 3), std::to_string(r.encounters),
                   same ? "yes" : "no"});
  }
  std::cout << pairs << "\n";

  // ---- Model coverage vs ground truth ---------------------------------
  std::size_t strong_same = 0, total_same = 0;
  for (const auto& grp : world.truth.groups) {
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
      for (std::size_t j = i + 1; j < grp.members.size(); ++j) {
        ++total_same;
        if (model.theta(grp.members[i], grp.members[j]) > 0.3) ++strong_same;
      }
    }
  }
  std::cout << "== coverage ==\n";
  std::cout << "ground-truth groups: " << world.truth.groups.size()
            << ", same-group pairs with theta > 0.3: "
            << util::fmt(100.0 * static_cast<double>(strong_same) /
                             static_cast<double>(total_same), 1)
            << " %\n";
  std::cout << "pairs with encounter history: " << model.pair_stats().size()
            << "\n\n";

  // ---- Clique structure of a synthetic arrival batch ------------------
  std::cout << "== clique cover of one ground-truth group +" << " noise ==\n";
  const auto& grp = world.truth.groups[world.truth.groups.size() / 2];
  std::vector<UserId> batch(grp.members.begin(), grp.members.end());
  for (UserId u = 0; u < 6; ++u) batch.push_back(u);  // unrelated walk-ins
  social::WeightedGraph g(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      const double th = model.theta(batch[i], batch[j]);
      if (th > 0.3) g.add_edge(i, j, th);
    }
  }
  const auto cover = social::clique_cover(g).cliques;
  std::cout << "batch of " << batch.size() << " users (group of "
            << grp.members.size() << " + 6 walk-ins) decomposes into "
            << cover.size() << " cliques:";
  for (const auto& clique : cover) std::cout << " " << clique.size();
  std::cout << "\n";
  return 0;
}
