# End-to-end test of fault-injected replay: a canned AP-churn /
# model-outage / admission-failure plan must replay identically for
# every --threads value, the stale-model freshness gate must fail loud,
# and malformed plans must be rejected. Invoked by ctest with
# -DCLI=<path-to-binary>.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<s3lb binary>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/fault_cli_test_work")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: OK")
endfunction()

# Runs the CLI expecting failure; asserts stderr mentions `needle`.
function(run_cli_expect_failure needle)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} should have failed:\n${out}")
  endif()
  if(NOT err MATCHES "${needle}")
    message(FATAL_ERROR
      "s3lb ${ARGN}: expected stderr to mention \"${needle}\", got:\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: rejected with \"${needle}\" as expected")
endfunction()

# --- world + model ----------------------------------------------------

run_cli(generate --out "${WORK}/w.csv" --users 60 --days 2
        --buildings 2 --aps 3 --seed 5)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/llf.csv"
        --policy llf --buildings 2 --aps 3)
run_cli(train --in "${WORK}/llf.csv" --out "${WORK}/model.txt")

# --- fault plan: churn + model outage + admission storm ---------------
# The trace spans 2 days (172800 s); 6 APs (ids 0-5).

file(WRITE "${WORK}/plan.txt"
"s3fault v1
# one AP per building fails for a few hours
ap-outage 1 20000 40000
ap-outage 4 60000 80000
model-outage 50000 110000
clique-budget 50000 110000 64
admission-failure 0.1 30000 90000
")

# Determinism across thread counts: the assigned output must be
# byte-identical for --threads 1 and --threads 8 under faults.
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/fault_t1.csv"
        --policy s3 --model "${WORK}/model.txt" --buildings 2 --aps 3
        --fault-plan "${WORK}/plan.txt" --fault-seed 9 --threads 1)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/fault_t8.csv"
        --policy s3 --model "${WORK}/model.txt" --buildings 2 --aps 3
        --fault-plan "${WORK}/plan.txt" --fault-seed 9 --threads 8)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK}/fault_t1.csv" "${WORK}/fault_t8.csv"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "fault-injected replay differs between --threads 1 and --threads 8")
endif()
message(STATUS "fault replay threads 1 vs 8: byte-identical")

# Contracts in abort mode stay clean through evictions and retries.
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/fault_abort.csv"
        --policy s3 --model "${WORK}/model.txt" --buildings 2 --aps 3
        --fault-plan "${WORK}/plan.txt" --fault-seed 9 --check abort)

# --- model freshness gate ---------------------------------------------

# The trained model recorded its 2-day horizon: fresh at day 3...
run_cli(check model --in "${WORK}/model.txt" --stale-days 7 --now-day 3)
# ...stale at day 60.
run_cli_expect_failure("stale"
        check model --in "${WORK}/model.txt" --stale-days 7 --now-day 60)
run_cli_expect_failure("needs --now-day"
        check model --in "${WORK}/model.txt" --stale-days 7)

# A hand-written model without trained_end_s must always fail the gate.
file(WRITE "${WORK}/old.model"
"# s3lb social model v1
alpha 0.3
co_leave_window_s 300
min_encounter_overlap_s 60
users 2
types 1
type_of_user 0 0
centroids 0.1 0.1 0.1 0.1 0.1 0.1
matrix 0.5
pairs 1
0 1 10 9 5
")
run_cli(check model --in "${WORK}/old.model")
run_cli_expect_failure("training horizon unknown"
        check model --in "${WORK}/old.model" --stale-days 7 --now-day 1)

# --- malformed plans are rejected up front ----------------------------

file(WRITE "${WORK}/bad_ap.txt"
"s3fault v1
ap-outage 999 0 100
")
run_cli_expect_failure("bad fault plan.*unknown AP"
        replay --in "${WORK}/w.csv" --out "${WORK}/x.csv"
        --policy llf --buildings 2 --aps 3
        --fault-plan "${WORK}/bad_ap.txt")

file(WRITE "${WORK}/bad_magic.txt" "not a plan\n")
run_cli_expect_failure("cannot read fault plan.*s3fault v1"
        replay --in "${WORK}/w.csv" --out "${WORK}/x.csv"
        --policy llf --buildings 2 --aps 3
        --fault-plan "${WORK}/bad_magic.txt")

run_cli_expect_failure("cannot read fault plan"
        replay --in "${WORK}/w.csv" --out "${WORK}/x.csv"
        --policy llf --buildings 2 --aps 3
        --fault-plan "${WORK}/does_not_exist.txt")
