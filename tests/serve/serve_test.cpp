// s3::serve — live pipeline and shared social model.
//
// The anchor test proves the concurrency refactor changed nothing
// semantically: a ServePipeline's live event detection drives a
// SharedSocialModel to bit-identical θ values with the single-owner
// core::OnlineSocialModel fed the same association events.

#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "s3/core/evaluation.h"
#include "s3/core/online_s3.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/serve/line_protocol.h"
#include "s3/serve/serve_pipeline.h"
#include "s3/trace/generator.h"
#include "s3/util/metrics.h"

namespace s3::serve {
namespace {

/// Small trained world shared by every test in this file.
struct World {
  trace::GeneratedTrace gen;
  social::SocialIndexModel model;

  World()
      : gen(trace::generate_campus_trace(config())),
        model(core::train_from_workload(gen.network, gen.workload, eval())) {}

  static trace::GeneratorConfig config() {
    trace::GeneratorConfig cfg;
    cfg.seed = 7;
    cfg.num_users = 200;
    cfg.num_days = 5;
    cfg.layout.num_buildings = 2;
    cfg.layout.aps_per_building = 4;
    return cfg;
  }
  static core::EvaluationConfig eval() {
    core::EvaluationConfig e;
    e.train_days = 4;
    e.test_days = 1;
    return e;
  }
};

const World& world() {
  static const World w;
  return w;
}

PlaceRequest request(std::uint64_t id, UserId user, BuildingId b,
                     std::int64_t t_s, double demand = 1.0) {
  PlaceRequest req;
  req.id = id;
  req.user = user;
  req.building = b;
  const wlan::BuildingConfig& bc = world().gen.network.building(b);
  req.pos = {bc.origin.x + 5.0 + static_cast<double>(user % 7),
             bc.origin.y + 5.0 + static_cast<double>(user % 5)};
  req.when = util::SimTime::from_seconds(t_s);
  req.demand_mbps = demand;
  return req;
}

TEST(ServePipeline, PlacesAndDeparts) {
  ServeConfig cfg;
  ServePipeline p(&world().gen.network, &world().model, cfg);
  const PlaceResult r = p.place(request(1, 0, 0, 0));
  ASSERT_TRUE(r.placed);
  EXPECT_LT(r.ap, world().gen.network.num_aps());
  EXPECT_EQ(p.active_sessions(), 1U);
  EXPECT_TRUE(p.depart(1, util::SimTime::from_seconds(100)));
  EXPECT_EQ(p.active_sessions(), 0U);
  EXPECT_EQ(p.stats().placements, 1U);
  EXPECT_EQ(p.stats().departures, 1U);
}

TEST(ServePipeline, RejectsDuplicateIdAndUnknownDeparture) {
  ServePipeline p(&world().gen.network, &world().model, {});
  ASSERT_TRUE(p.place(request(7, 0, 0, 0)).placed);
  EXPECT_FALSE(p.place(request(7, 1, 0, 10)).placed);
  EXPECT_EQ(p.stats().rejected_duplicate_id, 1U);
  EXPECT_FALSE(p.depart(999, util::SimTime::from_seconds(1)));
  EXPECT_EQ(p.stats().unknown_departures, 1U);
  // The duplicate rejection must not have clobbered the live session.
  EXPECT_TRUE(p.depart(7, util::SimTime::from_seconds(20)));
}

TEST(ServePipeline, RejectsUnknownUserUnderSocialPolicy) {
  ServePipeline p(&world().gen.network, &world().model, {});
  const UserId unknown =
      static_cast<UserId>(world().model.num_users() + 5);
  EXPECT_FALSE(p.place(request(1, unknown, 0, 0)).placed);
  EXPECT_EQ(p.stats().rejected_unknown_user, 1U);
  // Baselines have no model to miss: the same user places fine.
  ServeConfig llf;
  llf.policy = "llf";
  ServePipeline q(&world().gen.network, &world().model, llf);
  EXPECT_TRUE(q.place(request(1, unknown, 0, 0)).placed);
}

// The tentpole equivalence: pipeline-detected encounters/co-leavings
// must update the shared model to the exact θ the single-owner online
// model computes from the same events. The pipeline runs the "rssi"
// policy so AP choice is deterministic and model-independent; every
// committed (session, user, ap, t) event is mirrored into an
// OnlineSocialModel, then θ is compared bit for bit over all pairs.
TEST(SharedSocialModel, BitIdenticalWithOnlineModelOnSameEvents) {
  const World& w = world();
  ServeConfig cfg;
  cfg.policy = "rssi";
  ServePipeline pipeline(&w.gen.network, &w.model, cfg);
  core::OnlineSocialModel online(&w.model, {});

  struct Live {
    UserId user;
    ApId ap;
  };
  std::unordered_map<std::uint64_t, Live> active;
  std::uint64_t rng = 99;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  // Random arrive/depart schedule: long stays on few APs so plenty of
  // encounter-grade overlaps and co-leavings fire.
  std::int64_t now = 0;
  std::uint64_t next_id = 1;
  for (int step = 0; step < 4000; ++step) {
    now += 30 + static_cast<std::int64_t>(next() % 90);
    const util::SimTime t = util::SimTime::from_seconds(now);
    if (active.size() > 25 || (!active.empty() && next() % 3 == 0)) {
      const auto victim =
          std::next(active.begin(),
                    static_cast<std::ptrdiff_t>(next() % active.size()));
      online.on_disconnect(victim->first, victim->second.user,
                           victim->second.ap, t);
      ASSERT_TRUE(pipeline.depart(victim->first, t));
      active.erase(victim);
    } else {
      const std::uint64_t id = next_id++;
      const UserId user = static_cast<UserId>(next() % w.model.num_users());
      const BuildingId b = static_cast<BuildingId>(next() % 2);
      const PlaceResult r = pipeline.place(request(id, user, b, now));
      ASSERT_TRUE(r.placed);
      online.on_associate(id, user, r.ap, t);
      active.emplace(id, Live{user, r.ap});
    }
  }

  EXPECT_GT(pipeline.model().updated_pairs(), 0U)
      << "schedule produced no social events — test is vacuous";
  EXPECT_EQ(pipeline.model().updated_pairs(), online.updated_pairs());

  const SharedSocialModel& shared = pipeline.model();
  const std::size_t n = w.model.num_users();
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = static_cast<UserId>(u + 1); v < n; ++v) {
      ASSERT_EQ(shared.theta(u, v), online.theta(u, v))
          << "theta mismatch at (" << u << ", " << v << ")";
    }
  }
  // Row kernel agrees with the online model's row kernel too.
  std::vector<UserId> vs(n);
  for (UserId v = 0; v < n; ++v) vs[v] = v;
  std::vector<double> shared_row(n);
  std::vector<double> online_row(n);
  for (UserId u = 0; u < n; u += 17) {
    shared.theta_row(u, vs, shared_row);
    online.theta_row(u, vs, online_row);
    EXPECT_EQ(shared_row, online_row) << "theta_row mismatch at u=" << u;
  }
  // Both sides advertise a moving read snapshot — polled through the
  // base interface (direct SharedSocialModel::read_epoch is
  // deprecated in favour of the structured delta feed).
  EXPECT_GT(static_cast<const social::ThetaProvider&>(shared).read_epoch(),
            0U);
  EXPECT_GT(online.read_epoch(), 0U);

  // The structured feed replays the same history: draining it from
  // cursor 0 and keeping each pair's last record reproduces the
  // store's current θ exactly (the ThetaDelta invalidation contract).
  EXPECT_TRUE(shared.emits_theta_deltas());
  std::vector<social::ThetaDelta> deltas;
  const social::ThetaDeltaPoll poll = shared.poll_theta_deltas(0, deltas);
  ASSERT_TRUE(poll.complete);
  EXPECT_EQ(poll.cursor, deltas.size());
  EXPECT_FALSE(deltas.empty());
  std::map<UserPair, double> last;
  for (const social::ThetaDelta& d : deltas) last[d.pair] = d.theta;
  EXPECT_EQ(last.size(), shared.updated_pairs());
  for (const auto& [pair, theta] : last) {
    EXPECT_EQ(theta, shared.theta(pair.a, pair.b))
        << "stale feed tail for (" << pair.a << ", " << pair.b << ")";
  }
  // A second poll from the returned cursor is an exact empty suffix.
  deltas.clear();
  const social::ThetaDeltaPoll again =
      shared.poll_theta_deltas(poll.cursor, deltas);
  EXPECT_TRUE(again.complete);
  EXPECT_TRUE(deltas.empty());
}

// The pipeline-level maintainer consumes the shared model's ThetaDelta
// feed: the first snapshot seeds, later ones apply only the deltas live
// events produced, and the cover always partitions the population.
TEST(ServePipeline, SocialSnapshotTracksLiveEventsIncrementally) {
  const World& w = world();
  ServeConfig cfg;
  cfg.policy = "rssi";  // deterministic, model-independent placements
  ServePipeline p(&w.gen.network, &w.model, cfg);

  const SocialSnapshot first = p.social_snapshot();
  EXPECT_EQ(first.users, w.model.num_users());
  EXPECT_FALSE(first.incremental);  // first query must reseed
  EXPECT_EQ(first.reseeds, 1U);
  EXPECT_GE(first.cover_version, 1U);
  // Every user sits in exactly one cover entry.
  EXPECT_LE(first.singletons + 2 * first.cliques, first.users);
  if (first.cliques > 0) EXPECT_GE(first.largest, 2U);

  // Long co-located stays then a joint departure: encounters and
  // co-leavings stream through the shared store's delta feed.
  std::uint64_t id = 1;
  for (UserId u = 0; u < 24; ++u) {
    ASSERT_TRUE(p.place(request(id++, u, 0, 0)).placed);
  }
  for (std::uint64_t d = 1; d < id; ++d) {
    ASSERT_TRUE(p.depart(d, util::SimTime::from_seconds(3600)));
  }
  EXPECT_GT(p.model().updated_pairs(), 0U);

  const SocialSnapshot second = p.social_snapshot();
  EXPECT_TRUE(second.incremental);  // served from the feed, no reseed
  EXPECT_EQ(second.reseeds, 1U);
  EXPECT_GT(second.deltas_applied, 0U);
  EXPECT_GE(second.cohesion, 0.0);
  EXPECT_GE(second.cover_version, first.cover_version);

  // Re-querying with no new events reuses every component and every
  // cached clique score.
  const SocialSnapshot third = p.social_snapshot();
  EXPECT_TRUE(third.incremental);
  EXPECT_EQ(third.cover_version, second.cover_version);
  EXPECT_EQ(third.components_solved, second.components_solved);
  EXPECT_GE(third.scores_reused, second.scores_reused);
  EXPECT_EQ(third.scores_recomputed, second.scores_recomputed);
}

// Cohesion counts exactly the θ mass of clique pairs sharing an AP:
// co-locating users whose pairs the cover keeps together must move it.
TEST(ServePipeline, SocialSnapshotCohesionReflectsCoLocatedCliques) {
  const World& w = world();
  ServeConfig cfg;
  cfg.policy = "rssi";
  ServePipeline p(&w.gen.network, &w.model, cfg);
  // Everyone in the population parks at one spot in building 0: every
  // multi-member clique whose members share the chosen AP contributes
  // its full internal θ mass.
  std::uint64_t id = 1;
  for (UserId u = 0; u < w.model.num_users(); ++u) {
    PlaceRequest req = request(id++, u, 0, 0);
    req.pos = {w.gen.network.building(0).origin.x + 5.0,
               w.gen.network.building(0).origin.y + 5.0};
    ASSERT_TRUE(p.place(req).placed);
  }
  const SocialSnapshot snap = p.social_snapshot();
  if (snap.cliques > 0) {
    EXPECT_GT(snap.cohesion, 0.0)
        << "multi-member cliques exist but no co-located pair scored";
  }
  EXPECT_GT(snap.scores_recomputed, 0U);
}

TEST(ServePipeline, ModelOutageServesFallbackAndRecovers) {
  fault::FaultPlan plan;
  plan.model_outages.push_back(
      {util::SimTime::from_seconds(100), util::SimTime::from_seconds(200)});
  const fault::FaultInjector injector(plan, 1);
  ServeConfig cfg;
  cfg.injector = &injector;
  ServePipeline p(&world().gen.network, &world().model, cfg);

  ASSERT_TRUE(p.place(request(1, 0, 0, 10)).placed);
  EXPECT_EQ(p.stats().fallback_placements, 0U);

  const PlaceResult during = p.place(request(2, 1, 0, 150));
  ASSERT_TRUE(during.placed);
  EXPECT_TRUE(during.fallback);
  EXPECT_EQ(p.stats().fallback_placements, 1U);
  EXPECT_EQ(p.domain_health(0), fault::HealthState::kDegraded);

  // After the outage the degradation hysteresis walks back to healthy.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        p.place(request(100 + static_cast<std::uint64_t>(i),
                        static_cast<UserId>(3 + i), 0, 300 + i * 10))
            .placed);
  }
  EXPECT_EQ(p.domain_health(0), fault::HealthState::kHealthy);
}

TEST(ServePipeline, DeadApsArePrunedFromCandidates) {
  // Kill every AP of building 0's controller for the whole run: an
  // arrival there has no live candidate and must be rejected.
  const wlan::Network& net = world().gen.network;
  const ControllerId dom = net.controller_of_building(0);
  fault::FaultPlan plan;
  for (const ApId ap : net.aps_of_controller(dom)) {
    plan.ap_outages.push_back(
        {ap, util::SimTime::from_seconds(0), util::SimTime::from_days(10)});
  }
  const fault::FaultInjector injector(plan, 1);
  ServeConfig cfg;
  cfg.injector = &injector;
  ServePipeline p(&net, &world().model, cfg);
  EXPECT_FALSE(p.place(request(1, 0, 0, 50)).placed);
  EXPECT_EQ(p.stats().rejected_no_candidate, 1U);
  // The other building's domain is untouched.
  EXPECT_TRUE(p.place(request(2, 0, 1, 50)).placed);
}

TEST(ServePipeline, ConcurrentPlaceDepartKeepsBooksBalanced) {
  ServePipeline p(&world().gen.network, &world().model, {});
  constexpr unsigned kThreads = 4;
  constexpr std::size_t kOps = 300;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&p, t]() {
      const std::uint64_t base = (static_cast<std::uint64_t>(t) + 1) << 32;
      for (std::size_t i = 0; i < kOps; ++i) {
        const std::uint64_t id = base + i;
        const UserId user = static_cast<UserId>((t * 31 + i) %
                                                world().model.num_users());
        const BuildingId b = static_cast<BuildingId>(i % 2);
        const std::int64_t now = static_cast<std::int64_t>(i) * 60;
        if (p.place(request(id, user, b, now)).placed && i % 2 == 0) {
          EXPECT_TRUE(p.depart(id, util::SimTime::from_seconds(now + 30)));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const ServeStats s = p.stats();
  EXPECT_EQ(s.placements, kThreads * kOps);
  EXPECT_EQ(s.departures + p.active_sessions(), s.placements);
  EXPECT_EQ(s.rejected_duplicate_id, 0U);
  EXPECT_EQ(s.unknown_departures, 0U);
}

TEST(LineProtocol, EndToEndScript) {
  ServePipeline p(&world().gen.network, &world().model, {});
  std::istringstream in(
      "# comment\n"
      "\n"
      "arrive 1 0 0 5 5 0 1.0\n"
      "arrive 1 2 0 5 5 10 1.0\n"
      "depart 1 100\n"
      "depart 1 110\n"
      "stats\n"
      "social\n");
  std::ostringstream out;
  EXPECT_TRUE(run_line_protocol(p, in, out));
  const std::string text = out.str();
  EXPECT_NE(text.find("place 1 "), std::string::npos);
  EXPECT_NE(text.find("place 1 reject duplicate-id"), std::string::npos);
  EXPECT_NE(text.find("gone 1\n"), std::string::npos);
  EXPECT_NE(text.find("gone 1 unknown"), std::string::npos);
  EXPECT_NE(text.find("stats placements=1 departures=1 active=0"),
            std::string::npos);
  // The social verb serves the maintained cover in one line; the first
  // query is the seeding one (incremental=0, reseeds=1).
  EXPECT_NE(text.find("social users=200 "), std::string::npos);
  EXPECT_NE(text.find(" cohesion=0.000000 "), std::string::npos);
  EXPECT_NE(text.find(" incremental=0 "), std::string::npos);
  EXPECT_NE(text.find(" reseeds=1"), std::string::npos);
}

TEST(LineProtocol, MalformedLinesReportErrorsButContinue) {
  // Every malformed class gets its own structured `err <class>` reply
  // (class always the second token, so clients can branch on it), each
  // one lands on the metrics bus, and processing continues: the valid
  // line after the garbage is still served.
  ServePipeline p(&world().gen.network, &world().model, {});
  const std::uint64_t before =
      util::metrics().counter("serve.malformed_lines")->value();
  std::istringstream in(
      "arrive nope\n"
      "arrive 7 0 0 5 5 0\n"
      "depart xyz\n"
      "depart 7\n"
      "frobnicate 1\n"
      "arrive 5 0 0 5 5 0 1.0 stray\n"
      "depart 5 100 stray\n"
      "stats stray\n"
      "social stray\n"
      "arrive 5 0 0 5 5 0 1.0\n");
  std::ostringstream out;
  EXPECT_FALSE(run_line_protocol(p, in, out));
  const std::string text = out.str();
  EXPECT_NE(text.find("err malformed-arrive arrive nope"), std::string::npos);
  EXPECT_NE(text.find("err malformed-arrive arrive 7 0 0 5 5 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("err malformed-depart depart xyz"), std::string::npos);
  EXPECT_NE(text.find("err malformed-depart depart 7\n"), std::string::npos);
  EXPECT_NE(text.find("err unknown-verb frobnicate"), std::string::npos);
  EXPECT_NE(text.find("err trailing-garbage arrive 5 0 0 5 5 0 1.0 stray"),
            std::string::npos);
  EXPECT_NE(text.find("err trailing-garbage depart 5 100 stray"),
            std::string::npos);
  EXPECT_NE(text.find("err trailing-garbage stats stray"),
            std::string::npos);
  EXPECT_NE(text.find("err trailing-garbage social stray"),
            std::string::npos);
  EXPECT_NE(text.find("place 5 "), std::string::npos);

  // One err line per malformed input, mirrored on the metrics bus.
  EXPECT_EQ(util::metrics().counter("serve.malformed_lines")->value() - before,
            9u);

  // A clean script leaves the counter alone and returns true.
  std::istringstream clean_in("depart 5 100\n");
  std::ostringstream clean_out;
  EXPECT_TRUE(run_line_protocol(p, clean_in, clean_out));
  EXPECT_EQ(util::metrics().counter("serve.malformed_lines")->value() - before,
            9u);
}

}  // namespace
}  // namespace s3::serve
