#include "s3/core/oracle.h"

#include <gtest/gtest.h>

#include "s3/analysis/balance.h"
#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"
#include "s3/util/stats.h"
#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

TEST(Oracle, ValidatesConfig) {
  const auto net = mini_network(2);
  const auto t = make_trace(1, {SessionSpec{}});
  OracleConfig bad;
  bad.slot_s = 0;
  EXPECT_THROW(offline_upper_bound(net, t, bad), std::invalid_argument);
  bad = OracleConfig{};
  bad.max_passes = 0;
  EXPECT_THROW(offline_upper_bound(net, t, bad), std::invalid_argument);
}

TEST(Oracle, NeverIncreasesObjective) {
  trace::GeneratorConfig cfg;
  cfg.seed = 4;
  cfg.num_users = 150;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  const OracleResult r = offline_upper_bound(g.network, g.workload);
  EXPECT_LE(r.final_objective, r.initial_objective);
  EXPECT_TRUE(r.assigned.fully_assigned());
  EXPECT_GT(r.moves, 0u);
}

TEST(Oracle, RespectsCandidateSets) {
  trace::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_users = 100;
  cfg.num_days = 1;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 4;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  OracleConfig oc;
  const OracleResult r = offline_upper_bound(g.network, g.workload, oc);
  for (const trace::SessionRecord& s : r.assigned.sessions()) {
    const auto cands =
        wlan::candidate_aps(g.network, oc.radio, s.building, s.pos);
    EXPECT_NE(std::find(cands.begin(), cands.end(), s.ap), cands.end());
  }
}

TEST(Oracle, SolvesToyInstanceOptimally) {
  // Two simultaneous equal sessions, two APs: the optimum is one each.
  const auto net = mini_network(2);
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600,
                  .demand_mbps = 2.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600,
                  .demand_mbps = 2.0},
  });
  OracleConfig oc;
  oc.radio.association_threshold_dbm = -75.0;  // both APs audible
  const OracleResult r = offline_upper_bound(net, t, oc);
  EXPECT_NE(r.assigned.session(0).ap, r.assigned.session(1).ap);
}

TEST(Oracle, BeatsOnlinePoliciesOnBalance) {
  // The clairvoyant bound must dominate LLF and S3 on the scored mean
  // balance index (it optimizes exactly that, slot-separably).
  trace::GeneratorConfig cfg;
  cfg.seed = 6;
  cfg.num_users = 300;
  cfg.num_days = 9;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  EvaluationConfig eval;
  eval.train_days = 7;
  eval.test_days = 2;
  const ComparisonResult cmp =
      compare_s3_vs_llf(g.network, g.workload, eval);

  const trace::Trace test = g.workload.slice(util::SimTime::from_days(7),
                                             util::SimTime::from_days(9));
  const OracleResult oracle = offline_upper_bound(g.network, test);

  // Score the oracle assignment identically to score_policy.
  analysis::ThroughputOptions opts;
  opts.slot_s = eval.eval_slot_s;
  const analysis::ThroughputSeries series(
      g.network, oracle.assigned, util::SimTime::from_days(7),
      util::SimTime::from_days(9), opts);
  util::RunningStats beta;
  for (ControllerId c = 0; c < g.network.num_controllers(); ++c) {
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const double hour =
          series.slot_begin(slot).second_of_day() / 3600.0;
      if (hour < eval.score_hours_begin) continue;
      if (series.total_load(c, slot) < eval.min_slot_load_mbps) continue;
      beta.add(analysis::normalized_balance_index(series.slot_load(c, slot)));
    }
  }
  EXPECT_GT(beta.mean(), cmp.s3.mean);
  EXPECT_GT(beta.mean(), cmp.llf.mean);
}

TEST(Oracle, DeterministicInSeed) {
  trace::GeneratorConfig cfg;
  cfg.seed = 7;
  cfg.num_users = 80;
  cfg.num_days = 1;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 4;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  const OracleResult a = offline_upper_bound(g.network, g.workload);
  const OracleResult b = offline_upper_bound(g.network, g.workload);
  EXPECT_DOUBLE_EQ(a.final_objective, b.final_objective);
  for (std::size_t i = 0; i < a.assigned.size(); ++i) {
    EXPECT_EQ(a.assigned.session(i).ap, b.assigned.session(i).ap);
  }
}

}  // namespace
}  // namespace s3::core
