#include "s3/core/s3_selector.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::mini_network;

/// Model over `n` users where theta(u,v) is given by an explicit map
/// (type term zero everywhere).
social::SocialIndexModel explicit_model(
    std::size_t n,
    const std::vector<std::tuple<UserId, UserId, std::uint32_t, std::uint32_t>>&
        pair_events,
    double alpha = 0.3) {
  social::SocialModelConfig cfg;
  cfg.alpha = alpha;
  analysis::PairStatsMap stats;
  for (const auto& [u, v, enc, col] : pair_events) {
    stats[UserPair(u, v)] = {enc, col, 0};
  }
  social::UserTyping typing;
  typing.num_types = 1;
  typing.type_of_user.assign(n, 0);
  typing.centroids.assign(apps::kNumCategories, 0.0);
  social::TypeCoLeaveMatrix matrix(1);  // T = 0
  return social::SocialIndexModel::from_parts(cfg, std::move(stats),
                                              std::move(typing),
                                              std::move(matrix));
}

sim::Arrival arrival(std::size_t session, UserId user,
                     std::vector<ApId> candidates, double demand = 1.0) {
  sim::Arrival a;
  a.session_index = session;
  a.user = user;
  a.controller = 0;
  a.demand_mbps = demand;
  a.candidates = std::move(candidates);
  return a;
}

TEST(S3Selector, ValidatesConstruction) {
  const auto net = mini_network(2);
  const auto model = explicit_model(2, {});
  EXPECT_THROW(S3Selector(nullptr, &model), std::invalid_argument);
  EXPECT_THROW(S3Selector(&net, nullptr), std::invalid_argument);
  S3Config bad;
  bad.top_fraction = 0.0;
  EXPECT_THROW(S3Selector(&net, &model, bad), std::invalid_argument);
}

TEST(S3Selector, SingleUserAvoidsStrongRelation) {
  const auto net = mini_network(3);
  // User 1 (already on AP 0) is strongly tied to arriving user 0.
  const auto model = explicit_model(2, {{0, 1, 4, 4}});  // P(L|E)=1
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 1, 1.0);
  S3Selector s3(&net, &model);
  const ApId chosen = s3.select_one(arrival(0, 0, {0, 1, 2}), loads);
  EXPECT_NE(chosen, 0u);
}

TEST(S3Selector, NoRelationsFallsBackToLlf) {
  const auto net = mini_network(3);
  const auto model = explicit_model(4, {});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 1, 5.0);
  loads.associate(101, 1, 2, 1.0);  // AP 2 is completely idle
  S3Selector s3(&net, &model);
  EXPECT_EQ(s3.select_one(arrival(0, 0, {0, 1, 2}), loads), 2u);
}

TEST(S3Selector, BandwidthConstraintSkipsFullAp) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 2;
  layout.ap_capacity_mbps = 10.0;
  const auto net = wlan::make_campus(layout);
  const auto model = explicit_model(3, {{0, 2, 4, 4}});  // tie to user 2
  sim::ApLoadTracker loads(net);
  // AP 1 holds the strongly-tied user; AP 0 is nearly full.
  loads.associate(100, 0, 1, 9.5);
  loads.associate(101, 1, 2, 1.0);
  S3Selector s3(&net, &model);
  // Social cost prefers AP 0 (no ties there), but 1 Mbps does not fit:
  // infinite cost -> AP 1 despite the relation.
  EXPECT_EQ(s3.select_one(arrival(0, 0, {0, 1}, 1.0), loads), 1u);
}

TEST(S3Selector, AllFullDegradesToLlf) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 2;
  layout.ap_capacity_mbps = 5.0;
  const auto net = wlan::make_campus(layout);
  const auto model = explicit_model(3, {});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 1, 4.9);
  loads.associate(101, 1, 2, 4.5);
  S3Selector s3(&net, &model);
  // Demand 2 fits nowhere; LLF picks the lighter AP 1.
  EXPECT_EQ(s3.select_one(arrival(0, 0, {0, 1}, 2.0), loads), 1u);
}

TEST(S3Selector, BatchDispersesClique) {
  const auto net = mini_network(4);
  // Users 0..3 form a clique (all pairs strongly tied).
  std::vector<std::tuple<UserId, UserId, std::uint32_t, std::uint32_t>> pairs;
  for (UserId u = 0; u < 4; ++u) {
    for (UserId v = u + 1; v < 4; ++v) pairs.push_back({u, v, 4, 4});
  }
  const auto model = explicit_model(4, pairs);
  sim::ApLoadTracker loads(net);
  std::vector<sim::Arrival> batch;
  for (UserId u = 0; u < 4; ++u) {
    batch.push_back(arrival(u, u, {0, 1, 2, 3}));
  }
  S3Selector s3(&net, &model);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  // Four candidates, four clique members: one per AP.
  const std::set<ApId> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(S3Selector, CliqueBiggerThanCandidateSetMinimizesOverlap) {
  const auto net = mini_network(2);
  std::vector<std::tuple<UserId, UserId, std::uint32_t, std::uint32_t>> pairs;
  for (UserId u = 0; u < 4; ++u) {
    for (UserId v = u + 1; v < 4; ++v) pairs.push_back({u, v, 4, 4});
  }
  const auto model = explicit_model(4, pairs);
  sim::ApLoadTracker loads(net);
  std::vector<sim::Arrival> batch;
  for (UserId u = 0; u < 4; ++u) batch.push_back(arrival(u, u, {0, 1}));
  S3Selector s3(&net, &model);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  // Best dispersion over two APs is 2 + 2.
  EXPECT_EQ(std::count(chosen.begin(), chosen.end(), 0u), 2);
  EXPECT_EQ(std::count(chosen.begin(), chosen.end(), 1u), 2);
}

TEST(S3Selector, BatchAvoidsExistingAssociates) {
  const auto net = mini_network(3);
  // Arriving users 0,1 strongly tied to resident users 2,3.
  const auto model =
      explicit_model(4, {{0, 1, 4, 4}, {0, 2, 4, 4}, {1, 3, 4, 4}});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 2, 1.0);  // resident 2 on AP 0
  loads.associate(101, 1, 3, 1.0);  // resident 3 on AP 1
  std::vector<sim::Arrival> batch = {arrival(0, 0, {0, 1, 2}),
                                     arrival(1, 1, {0, 1, 2})};
  S3Selector s3(&net, &model);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  // User 0 must avoid AP 0 (resident friend) and user 1 must avoid
  // AP 1; they also avoid each other.
  EXPECT_NE(chosen[0], 0u);
  EXPECT_NE(chosen[1], 1u);
  EXPECT_NE(chosen[0], chosen[1]);
}

TEST(S3Selector, MixedBatchSingletonsGetLlf) {
  const auto net = mini_network(2);
  const auto model = explicit_model(3, {{0, 1, 4, 4}});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 1, 3.0);  // AP 0 loaded (resident user 1)
  // User 2 is a singleton in the batch: plain LLF -> AP 1.
  std::vector<sim::Arrival> batch = {arrival(0, 2, {0, 1})};
  S3Selector s3(&net, &model);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  EXPECT_EQ(chosen[0], 1u);
}

TEST(S3Selector, EmptyBatch) {
  const auto net = mini_network(2);
  const auto model = explicit_model(1, {});
  sim::ApLoadTracker loads(net);
  S3Selector s3(&net, &model);
  EXPECT_TRUE(s3.place_batch({}, loads).placements.empty());
}

TEST(S3Selector, BeamPathHandlesLargeClique) {
  // 12 members x 6 candidates = 6^12 >> enumeration_limit: the beam
  // path must still produce a near-even dispersion.
  const auto net = mini_network(6);
  std::vector<std::tuple<UserId, UserId, std::uint32_t, std::uint32_t>> pairs;
  for (UserId u = 0; u < 12; ++u) {
    for (UserId v = u + 1; v < 12; ++v) pairs.push_back({u, v, 4, 4});
  }
  const auto model = explicit_model(12, pairs);
  sim::ApLoadTracker loads(net);
  std::vector<sim::Arrival> batch;
  for (UserId u = 0; u < 12; ++u) {
    batch.push_back(arrival(u, u, {0, 1, 2, 3, 4, 5}));
  }
  S3Config cfg;
  cfg.enumeration_limit = 1000;
  cfg.beam_width = 64;
  S3Selector s3(&net, &model, cfg);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  std::array<int, 6> counts{};
  for (ApId a : chosen) counts[a]++;
  for (int c : counts) EXPECT_EQ(c, 2);  // perfectly even
}

TEST(S3Selector, BalanceTieBreakPrefersLighterAps) {
  // Two tied users, three candidate APs with unequal background load.
  // All zero-overlap distributions have equal social cost; the balance
  // tie-break must put them on the two *lightest* APs.
  const auto net = mini_network(3);
  const auto model = explicit_model(3, {{0, 1, 4, 4}});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 2, 2, 10.0);  // AP 2 heavily loaded (resident 2)
  std::vector<sim::Arrival> batch = {arrival(0, 0, {0, 1, 2}, 1.0),
                                     arrival(1, 1, {0, 1, 2}, 1.0)};
  S3Selector s3(&net, &model);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  EXPECT_NE(chosen[0], chosen[1]);
  EXPECT_NE(chosen[0], 2u);
  EXPECT_NE(chosen[1], 2u);
}

TEST(S3Selector, BatchDeterministic) {
  const auto net = mini_network(4);
  std::vector<std::tuple<UserId, UserId, std::uint32_t, std::uint32_t>> pairs;
  for (UserId u = 0; u < 6; ++u) {
    for (UserId v = u + 1; v < 6; ++v) {
      if ((u + v) % 2 == 0) pairs.push_back({u, v, 4, 3});
    }
  }
  const auto model = explicit_model(6, pairs);
  sim::ApLoadTracker loads(net);
  loads.associate(100, 1, 5, 2.5);
  std::vector<sim::Arrival> batch;
  for (UserId u = 0; u < 5; ++u) {
    batch.push_back(arrival(u, u, {0, 1, 2, 3}, 0.5 + 0.3 * u));
  }
  S3Selector a(&net, &model), b(&net, &model);
  EXPECT_EQ(a.place_batch({batch}, loads).placements,
            b.place_batch({batch}, loads).placements);
  // Repeated invocation on the same selector is also stable (no hidden
  // state accumulates).
  EXPECT_EQ(a.place_batch({batch}, loads).placements,
            b.place_batch({batch}, loads).placements);
}

TEST(S3Selector, TopFractionBoundaryTiesIncluded) {
  // Two tied users, three candidates, one candidate pre-loaded: every
  // zero-overlap distribution costs the same, so even with a tiny
  // top_fraction the balance tie-break must still see all of them and
  // avoid the loaded AP.
  const auto net = mini_network(3);
  const auto model = explicit_model(3, {{0, 1, 4, 4}});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 2, 2, 15.0);
  std::vector<sim::Arrival> batch = {arrival(0, 0, {0, 1, 2}, 1.0),
                                     arrival(1, 1, {0, 1, 2}, 1.0)};
  S3Config cfg;
  cfg.top_fraction = 0.01;  // would keep a single distribution pre-ties
  S3Selector s3(&net, &model, cfg);
  const auto chosen = s3.place_batch({batch}, loads).placements;
  EXPECT_NE(chosen[0], 2u);
  EXPECT_NE(chosen[1], 2u);
  EXPECT_NE(chosen[0], chosen[1]);
}

TEST(S3Selector, Name) {
  const auto net = mini_network(1);
  const auto model = explicit_model(1, {});
  S3Selector s3(&net, &model);
  EXPECT_EQ(s3.name(), "S3");
}

TEST(S3Selector, StatsCountPaths) {
  const auto net = mini_network(4);
  std::vector<std::tuple<UserId, UserId, std::uint32_t, std::uint32_t>> pairs;
  for (UserId u = 0; u < 3; ++u) {
    for (UserId v = u + 1; v < 3; ++v) pairs.push_back({u, v, 4, 4});
  }
  const auto model = explicit_model(5, pairs);
  sim::ApLoadTracker loads(net);
  // Batch: a 3-clique plus two unrelated singles.
  std::vector<sim::Arrival> batch;
  for (UserId u = 0; u < 5; ++u) batch.push_back(arrival(u, u, {0, 1, 2, 3}));
  S3Selector s3(&net, &model);
  EXPECT_EQ(s3.stats().batches, 0u);
  (void)s3.place_batch({batch}, loads);
  const S3Stats& st = s3.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.cliques, 1u);
  EXPECT_EQ(st.clique_members, 3u);
  EXPECT_EQ(st.largest_clique, 3u);
  EXPECT_EQ(st.singles, 2u);
  EXPECT_EQ(st.exact_enumerations, 1u);
  EXPECT_EQ(st.beam_searches, 0u);
  EXPECT_EQ(st.bandwidth_fallbacks, 0u);
  EXPECT_EQ(st.empty_candidate_fallbacks, 0u);
  EXPECT_EQ(st.degraded_batches, 0u);
  EXPECT_EQ(st.inexact_covers, 0u);
}

TEST(S3Selector, FallbackCountersSplitFullFromEmpty) {
  // "every candidate is over capacity" and "no candidate at all" are
  // different failures: the first is a capacity event the operator can
  // provision for, the second a radio/outage event. The stats must not
  // conflate them.
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 2;
  layout.ap_capacity_mbps = 5.0;
  const auto net = wlan::make_campus(layout);
  const auto model = explicit_model(3, {});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 1, 4.9);
  loads.associate(101, 1, 2, 4.5);
  S3Selector s3(&net, &model);

  // Candidates present, none fits: bandwidth_fallbacks only.
  (void)s3.select_one(arrival(0, 0, {0, 1}, 2.0), loads);
  EXPECT_EQ(s3.stats().bandwidth_fallbacks, 1u);
  EXPECT_EQ(s3.stats().empty_candidate_fallbacks, 0u);

  // No candidates at all: counted, then rejected as a caller error.
  EXPECT_THROW((void)s3.select_one(arrival(1, 0, {}, 1.0), loads),
               std::invalid_argument);
  EXPECT_EQ(s3.stats().bandwidth_fallbacks, 1u);
  EXPECT_EQ(s3.stats().empty_candidate_fallbacks, 1u);
}

TEST(S3Selector, FaultControlsForceLlfFallback) {
  const auto net = mini_network(3);
  // Strong tie would normally push user 0 away from user 1's AP 0...
  const auto model = explicit_model(3, {{0, 1, 4, 4}});
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 1, 1.0);
  loads.associate(101, 2, 2, 1.0);  // AP 1 idle, AP 0/2 loaded
  S3Selector s3(&net, &model);
  EXPECT_TRUE(s3.uses_social_model());

  // ...but with the model out the embedded LLF just takes the idle AP.
  std::vector<sim::Arrival> batch{arrival(0, 0, {0, 1, 2})};
  sim::BatchRequest request;
  request.arrivals = batch;
  request.faults.model_available = false;
  const sim::BatchResult degraded = s3.place_batch(request, loads);
  ASSERT_EQ(degraded.placements.size(), 1u);
  EXPECT_EQ(degraded.placements[0], 1u);
  EXPECT_EQ(s3.stats().degraded_batches, 1u);
  EXPECT_FALSE(degraded.full_fidelity);

  // Restoring the model restores full fidelity.
  request.faults = sim::FaultControls{};
  const sim::BatchResult healthy = s3.place_batch(request, loads);
  EXPECT_TRUE(healthy.full_fidelity);
  EXPECT_EQ(s3.stats().degraded_batches, 1u);
}

TEST(S3Selector, StateDigestTracksCommittedAssociations) {
  // Two instances fed the same associate/disconnect sequence agree; a
  // third that saw different history does not.
  const auto net = mini_network(3);
  const auto model = explicit_model(3, {{0, 1, 4, 4}});
  S3Selector a(&net, &model);
  S3Selector b(&net, &model);
  S3Selector c(&net, &model);
  EXPECT_EQ(a.state_digest(), b.state_digest());

  sim::ApLoadTracker loads(net);
  std::vector<sim::Arrival> batch{arrival(0, 0, {0, 1, 2})};
  sim::BatchRequest request;
  request.arrivals = batch;
  (void)a.place_batch(request, loads);
  (void)b.place_batch(request, loads);
  EXPECT_EQ(a.state_digest(), b.state_digest());

  request.faults.model_available = false;  // degraded batch mutates stats
  (void)c.place_batch(request, loads);
  EXPECT_NE(a.state_digest(), c.state_digest());
}

}  // namespace
}  // namespace s3::core
