#include "s3/core/evaluation.h"

#include <gtest/gtest.h>

namespace s3::core {
namespace {

trace::GeneratedTrace small_world(std::uint64_t seed = 1) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 300;
  cfg.num_days = 9;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  return trace::generate_campus_trace(cfg);
}

EvaluationConfig small_eval() {
  EvaluationConfig eval;
  eval.train_days = 7;
  eval.test_days = 2;
  return eval;
}

TEST(Evaluation, TrainProducesUsableModel) {
  const auto world = small_world();
  const social::SocialIndexModel model =
      train_from_workload(world.network, world.workload, small_eval());
  EXPECT_EQ(model.num_users(), 300u);
  EXPECT_GT(model.pair_stats().size(), 10u);
  EXPECT_EQ(model.typing().num_types, 4u);
}

TEST(Evaluation, ScoresAreInRange) {
  const auto world = small_world();
  const EvaluationConfig eval = small_eval();
  LlfSelector llf(eval.baseline_metric);
  const PolicyScore score =
      score_policy(world.network, world.workload, llf, eval);
  EXPECT_EQ(score.policy, "LLF");
  EXPECT_GT(score.slots_scored, 0u);
  EXPECT_GT(score.mean, 0.0);
  EXPECT_LE(score.mean, 1.0);
  EXPECT_GE(score.ci95, 0.0);
  EXPECT_EQ(score.per_controller_mean.size(), world.network.num_controllers());
  for (double m : score.per_controller_mean) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(Evaluation, ComparisonShapesAndDirection) {
  // Tiny worlds are noisy; the paper's direction (S3 beats the deployed
  // LLF) must hold on average over seeds.
  double total_gain = 0.0;
  for (std::uint64_t seed : {42ULL, 43ULL, 44ULL}) {
    const auto world = small_world(seed);
    const ComparisonResult r =
        compare_s3_vs_llf(world.network, world.workload, small_eval());
    EXPECT_EQ(r.llf.policy, "LLF");
    EXPECT_EQ(r.s3.policy, "S3");
    EXPECT_EQ(r.llf.slots_scored, r.s3.slots_scored);
    total_gain += r.balance_gain;
  }
  EXPECT_GT(total_gain / 3.0, 0.0);
}

TEST(Evaluation, DeterministicAcrossRuns) {
  const auto world = small_world(7);
  const ComparisonResult a =
      compare_s3_vs_llf(world.network, world.workload, small_eval());
  const ComparisonResult b =
      compare_s3_vs_llf(world.network, world.workload, small_eval());
  EXPECT_DOUBLE_EQ(a.llf.mean, b.llf.mean);
  EXPECT_DOUBLE_EQ(a.s3.mean, b.s3.mean);
  EXPECT_DOUBLE_EQ(a.balance_gain, b.balance_gain);
}

TEST(Evaluation, ScoreWindowRespected) {
  const auto world = small_world();
  EvaluationConfig eval = small_eval();
  eval.score_hours_begin = 0.0;
  eval.score_hours_end = 24.0;
  LlfSelector llf(eval.baseline_metric);
  const PolicyScore all_day =
      score_policy(world.network, world.workload, llf, eval);
  eval.score_hours_begin = 8.0;
  LlfSelector llf2(eval.baseline_metric);
  const PolicyScore daytime =
      score_policy(world.network, world.workload, llf2, eval);
  EXPECT_GT(all_day.slots_scored, daytime.slots_scored);
}

TEST(Evaluation, ValidatesConfig) {
  const auto world = small_world();
  EvaluationConfig bad = small_eval();
  bad.train_days = 0;
  EXPECT_THROW(train_from_workload(world.network, world.workload, bad),
               std::invalid_argument);
  bad = small_eval();
  bad.test_days = 0;
  LlfSelector llf;
  EXPECT_THROW(score_policy(world.network, world.workload, llf, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace s3::core
