#include "s3/core/baselines.h"

#include <gtest/gtest.h>

#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::mini_network;

sim::Arrival arrival(std::vector<ApId> candidates, double demand = 1.0,
                     UserId user = 0) {
  sim::Arrival a;
  a.session_index = 0;
  a.user = user;
  a.controller = 0;
  a.demand_mbps = demand;
  a.candidates = std::move(candidates);
  return a;
}

TEST(LlfSelector, PicksLeastDemand) {
  const auto net = mini_network(3);
  sim::ApLoadTracker loads(net);
  loads.associate(1, 0, 10, 5.0);
  loads.associate(2, 1, 11, 2.0);
  loads.associate(3, 2, 12, 8.0);
  LlfSelector llf(LoadMetric::kDemand);
  EXPECT_EQ(llf.select_one(arrival({0, 1, 2}), loads), 1u);
}

TEST(LlfSelector, PicksLeastStations) {
  const auto net = mini_network(3);
  sim::ApLoadTracker loads(net);
  loads.associate(1, 0, 10, 0.1);
  loads.associate(2, 0, 11, 0.1);
  loads.associate(3, 1, 12, 9.0);  // heavy but single station
  LlfSelector llf(LoadMetric::kStations);
  EXPECT_EQ(llf.select_one(arrival({0, 1}), loads), 1u);
}

TEST(LlfSelector, RestrictedToCandidates) {
  const auto net = mini_network(3);
  sim::ApLoadTracker loads(net);
  loads.associate(1, 2, 10, 0.0);  // AP 2 would win but is not audible
  LlfSelector llf;
  const ApId chosen = llf.select_one(arrival({0, 1}), loads);
  EXPECT_TRUE(chosen == 0 || chosen == 1);
}

TEST(LlfSelector, TieBreaksBySecondaryThenId) {
  const auto net = mini_network(3);
  sim::ApLoadTracker loads(net);
  // Equal demand on APs 1 and 2, but AP 2 has fewer stations.
  loads.associate(1, 1, 10, 2.0);
  loads.associate(2, 1, 11, 2.0);
  loads.associate(3, 2, 12, 4.0);
  LlfSelector llf(LoadMetric::kDemand);
  EXPECT_EQ(llf.select_one(arrival({1, 2}), loads), 2u);
  // Full tie -> lowest AP id.
  sim::ApLoadTracker empty(net);
  EXPECT_EQ(llf.select_one(arrival({2, 0, 1}), empty), 0u);
}

TEST(LlfSelector, BatchSeesOwnPlacements) {
  const auto net = mini_network(2);
  sim::ApLoadTracker loads(net);
  std::vector<sim::Arrival> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    sim::Arrival a = arrival({0, 1}, 1.0, static_cast<UserId>(i));
    a.session_index = i;
    batch.push_back(a);
  }
  LlfSelector llf;
  const auto chosen = llf.place_batch({batch}, loads).placements;
  // Alternates between the two APs: 2 each.
  EXPECT_EQ(std::count(chosen.begin(), chosen.end(), 0u), 2);
  EXPECT_EQ(std::count(chosen.begin(), chosen.end(), 1u), 2);
}

TEST(StrongestRssiSelector, PicksFirstCandidate) {
  const auto net = mini_network(2);
  sim::ApLoadTracker loads(net);
  loads.associate(1, 1, 9, 19.0);  // load is irrelevant to RSSI policy
  StrongestRssiSelector rssi;
  EXPECT_EQ(rssi.select_one(arrival({1, 0}), loads), 1u);
}

TEST(RandomSelector, StaysInCandidatesAndCoversThem) {
  const auto net = mini_network(4);
  sim::ApLoadTracker loads(net);
  RandomSelector rnd(7);
  std::set<ApId> seen;
  for (int i = 0; i < 200; ++i) {
    const ApId c = rnd.select_one(arrival({1, 2, 3}), loads);
    EXPECT_TRUE(c == 1 || c == 2 || c == 3);
    seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Selectors, EmptyCandidatesRejected) {
  const auto net = mini_network(1);
  sim::ApLoadTracker loads(net);
  LlfSelector llf;
  StrongestRssiSelector rssi;
  RandomSelector rnd(1);
  EXPECT_THROW(llf.select_one(arrival({}), loads), std::invalid_argument);
  EXPECT_THROW(rssi.select_one(arrival({}), loads), std::invalid_argument);
  EXPECT_THROW(rnd.select_one(arrival({}), loads), std::invalid_argument);
}

TEST(Selectors, Names) {
  LlfSelector llf;
  StrongestRssiSelector rssi;
  RandomSelector rnd(1);
  EXPECT_EQ(llf.name(), "LLF");
  EXPECT_EQ(rssi.name(), "RSSI");
  EXPECT_EQ(rnd.name(), "random");
}

}  // namespace
}  // namespace s3::core
