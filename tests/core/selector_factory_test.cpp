#include "s3/core/selector_factory.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "s3/social/social_index.h"
#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

/// Tiny assigned trace good enough to train a model the S3 factories
/// can hold a pointer to.
social::SocialIndexModel tiny_model() {
  const auto assigned = make_trace(4, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 30, .disconnect_s = 610, .ap = 0},
      SessionSpec{.user = 2, .connect_s = 100, .disconnect_s = 900, .ap = 1},
      SessionSpec{.user = 3, .connect_s = 120, .disconnect_s = 910, .ap = 1},
  });
  return social::SocialIndexModel::train(assigned, {});
}

TEST(SelectorRegistry, ShipsTheBuiltins) {
  const std::vector<std::string> names = registered_selectors();
  for (const char* expected : {"llf", "llf-demand", "llf-stations", "rssi",
                               "random", "s3", "s3-online"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing builtin: " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SelectorRegistry, UnknownNameThrowsListingKnownOnes) {
  try {
    make_selector_factory("no-such-policy", {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-policy"), std::string::npos);
    EXPECT_NE(msg.find("registered"), std::string::npos);
    EXPECT_NE(msg.find("llf"), std::string::npos);
  }
}

TEST(SelectorRegistry, FactoryNameMatchesInstanceName) {
  const auto net = mini_network(4);
  const social::SocialIndexModel model = tiny_model();
  SelectorSpec spec;
  spec.net = &net;
  spec.model = &model;
  spec.base_model = &model;
  for (const std::string& name : registered_selectors()) {
    const auto factory = make_selector_factory(name, spec);
    const auto instance = factory->create(0);
    EXPECT_EQ(factory->name(), instance->name()) << "policy " << name;
  }
}

TEST(SelectorRegistry, LlfRespectsSpecMetric) {
  SelectorSpec spec;
  spec.llf_metric = LoadMetric::kStations;
  const auto f = make_selector_factory("llf", spec);
  EXPECT_EQ(f->name(), "LLF");
  // "llf-demand"/"llf-stations" pin the metric regardless of the spec.
  EXPECT_NE(make_selector_factory("llf-demand", spec), nullptr);
}

TEST(SelectorRegistry, S3NeedsNetAndModel) {
  EXPECT_THROW(make_selector_factory("s3", {}), std::invalid_argument);
  EXPECT_THROW(make_selector_factory("s3-online", {}), std::invalid_argument);
}

TEST(SelectorRegistry, RegisterRejectsDuplicatesAndNullBuilders) {
  register_selector("test-llf-alias", [](const SelectorSpec& spec) {
    return std::make_unique<LlfFactory>(spec.llf_metric);
  });
  EXPECT_NO_THROW(make_selector_factory("test-llf-alias", {}));
  EXPECT_THROW(register_selector("test-llf-alias",
                                 [](const SelectorSpec&) {
                                   return std::make_unique<LlfFactory>();
                                 }),
               std::invalid_argument);
  EXPECT_THROW(register_selector("test-null", nullptr),
               std::invalid_argument);
}

/// Feeds the same arrival repeatedly and records the pick sequence.
std::vector<ApId> draw_sequence(sim::ApSelector& policy,
                                const wlan::Network& net, int draws) {
  sim::ApLoadTracker loads(net);
  sim::Arrival a;
  a.user = 0;
  a.controller = 0;
  a.demand_mbps = 1.0;
  for (ApId ap = 0; ap < 8; ++ap) a.candidates.push_back(ap);
  std::vector<ApId> picks;
  for (int i = 0; i < draws; ++i) picks.push_back(policy.select_one(a, loads));
  return picks;
}

TEST(RandomFactory, PerDomainStreamsAreDeterministicAndDistinct) {
  const auto net = mini_network(8);
  const RandomFactory f1(42), f2(42), other_seed(43);

  // Same (seed, domain) -> the same stream, independent of which
  // factory object stamped the instance.
  const auto a = draw_sequence(*f1.create(3), net, 32);
  const auto b = draw_sequence(*f2.create(3), net, 32);
  EXPECT_EQ(a, b);

  // Different domain or different base seed -> decorrelated streams.
  EXPECT_NE(a, draw_sequence(*f1.create(4), net, 32));
  EXPECT_NE(a, draw_sequence(*other_seed.create(3), net, 32));
}

}  // namespace
}  // namespace s3::core
