#include "s3/core/online_s3.h"

#include <gtest/gtest.h>

#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::mini_network;

social::SocialIndexModel empty_model(std::size_t n, double alpha = 0.3) {
  social::SocialModelConfig cfg;
  cfg.alpha = alpha;
  social::UserTyping typing;
  typing.num_types = 1;
  typing.type_of_user.assign(n, 0);
  typing.centroids.assign(apps::kNumCategories, 0.0);
  return social::SocialIndexModel::from_parts(cfg, social::PairStore{},
                                              std::move(typing),
                                              social::TypeCoLeaveMatrix(1));
}

TEST(OnlineSocialModel, StartsAtBaseTheta) {
  const auto base = empty_model(4);
  const OnlineSocialModel online(&base, {});
  EXPECT_DOUBLE_EQ(online.theta(0, 1), base.theta(0, 1));
  EXPECT_DOUBLE_EQ(online.theta(2, 2), 0.0);
  EXPECT_EQ(online.updated_pairs(), 0u);
  EXPECT_EQ(online.num_users(), 4u);
}

TEST(OnlineSocialModel, LearnsCoLeavingPair) {
  const auto base = empty_model(4);
  OnlineSocialModel online(&base, {});
  // Users 0 and 1 share AP 3 for an hour and leave a minute apart.
  online.on_associate(100, 0, 3, util::SimTime(0));
  online.on_associate(101, 1, 3, util::SimTime(60));
  online.on_disconnect(100, 0, 3, util::SimTime(3600));
  online.on_disconnect(101, 1, 3, util::SimTime(3660));
  EXPECT_GT(online.updated_pairs(), 0u);
  // One encounter, one co-leave -> P(L|E) = 1.
  EXPECT_DOUBLE_EQ(online.theta(0, 1), 1.0);
  // Untouched pairs still answer through the base.
  EXPECT_DOUBLE_EQ(online.theta(2, 3), 0.0);
}

TEST(OnlineSocialModel, EncounterWithoutCoLeave) {
  const auto base = empty_model(3);
  OnlineSocialModel online(&base, {});
  online.on_associate(1, 0, 0, util::SimTime(0));
  online.on_associate(2, 1, 0, util::SimTime(0));
  online.on_disconnect(1, 0, 0, util::SimTime(3600));
  // User 1 leaves an hour later: no co-leave.
  online.on_disconnect(2, 1, 0, util::SimTime(7200));
  EXPECT_DOUBLE_EQ(online.theta(0, 1), 0.0);  // 1 encounter, 0 co-leaves
  EXPECT_EQ(online.updated_pairs(), 1u);
}

TEST(OnlineSocialModel, ShortOverlapIsNoEncounter) {
  const auto base = empty_model(3);
  OnlineSocialModel online(&base, {});
  online.on_associate(1, 0, 0, util::SimTime(0));
  online.on_associate(2, 1, 0, util::SimTime(0));
  // Only five minutes together (< 10-minute encounter threshold).
  online.on_disconnect(1, 0, 0, util::SimTime(300));
  online.on_disconnect(2, 1, 0, util::SimTime(320));
  EXPECT_EQ(online.updated_pairs(), 0u);
}

TEST(OnlineSocialModel, DifferentApsDoNotInteract) {
  const auto base = empty_model(3);
  OnlineSocialModel online(&base, {});
  online.on_associate(1, 0, 0, util::SimTime(0));
  online.on_associate(2, 1, 1, util::SimTime(0));
  online.on_disconnect(1, 0, 0, util::SimTime(3600));
  online.on_disconnect(2, 1, 1, util::SimTime(3610));
  EXPECT_EQ(online.updated_pairs(), 0u);
}

TEST(OnlineSocialModel, RepeatedEpisodesConverge) {
  const auto base = empty_model(2);
  OnlineSocialModel online(&base, {});
  // Three meetings; the pair co-leaves in two of them.
  for (int episode = 0; episode < 3; ++episode) {
    const std::int64_t t0 = episode * 86400;
    online.on_associate(episode * 2 + 0, 0, 0, util::SimTime(t0));
    online.on_associate(episode * 2 + 1, 1, 0, util::SimTime(t0));
    online.on_disconnect(episode * 2 + 0, 0, 0, util::SimTime(t0 + 3600));
    const std::int64_t gap = episode == 2 ? 7200 : 60;
    online.on_disconnect(episode * 2 + 1, 1, 0, util::SimTime(t0 + 3600 + gap));
  }
  EXPECT_NEAR(online.theta(0, 1), 2.0 / 3.0, 1e-12);
}

TEST(OnlineSocialModel, SeedsFromTrainedCounts) {
  // Base has 3 encounters / 3 co-leaves for the pair; one more
  // encounter without a co-leave should give 3/4.
  social::SocialModelConfig cfg;
  cfg.alpha = 0.0;
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {3, 3, 0};
  social::UserTyping typing;
  typing.num_types = 1;
  typing.type_of_user.assign(2, 0);
  const auto base = social::SocialIndexModel::from_parts(
      cfg, std::move(stats), std::move(typing), social::TypeCoLeaveMatrix(1));

  OnlineSocialModel online(&base, {});
  online.on_associate(1, 0, 0, util::SimTime(0));
  online.on_associate(2, 1, 0, util::SimTime(0));
  online.on_disconnect(1, 0, 0, util::SimTime(3600));
  online.on_disconnect(2, 1, 0, util::SimTime(20000));  // no co-leave
  EXPECT_NEAR(online.theta(0, 1), 3.0 / 4.0, 1e-12);
}

TEST(OnlineSocialModel, CheckpointPersistsLiveLearning) {
  const auto base = empty_model(3, /*alpha=*/0.0);
  OnlineSocialModel online(&base, {});
  online.on_associate(1, 0, 0, util::SimTime(0));
  online.on_associate(2, 1, 0, util::SimTime(0));
  online.on_disconnect(1, 0, 0, util::SimTime(3600));
  online.on_disconnect(2, 1, 0, util::SimTime(3650));

  const social::SocialIndexModel frozen = online.checkpoint();
  EXPECT_DOUBLE_EQ(frozen.theta(0, 1), online.theta(0, 1));
  EXPECT_DOUBLE_EQ(frozen.theta(0, 1), 1.0);
  EXPECT_EQ(frozen.pair_stats().size(), 1u);
  // Typing carried over.
  EXPECT_EQ(frozen.typing().num_types, base.typing().num_types);
}

TEST(OnlineS3Selector, BehavesLikeS3WithoutEvents) {
  const auto net = mini_network(3);
  const auto base = empty_model(4);
  OnlineS3Selector online(&net, &base);
  S3Selector frozen(&net, &base);
  sim::ApLoadTracker loads(net);
  loads.associate(100, 0, 3, 2.0);
  sim::Arrival a;
  a.session_index = 0;
  a.user = 0;
  a.controller = 0;
  a.demand_mbps = 1.0;
  a.candidates = {0, 1, 2};
  EXPECT_EQ(online.select_one(a, loads), frozen.select_one(a, loads));
  EXPECT_EQ(online.name(), "S3-online");
}

TEST(OnlineSocialModel, AgreesWithOfflineExtractorExactly) {
  // The incremental detector and analysis::extract_pair_stats implement
  // the same §III-D definitions; on the same assigned trace their
  // encounter/co-leave counts must match pair for pair.
  trace::GeneratorConfig cfg;
  cfg.seed = 77;
  cfg.num_users = 120;
  cfg.num_days = 4;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  core::LlfSelector llf;
  const sim::ReplayResult run = sim::replay(g.network, g.workload, llf);

  // Offline.
  analysis::EventExtractionConfig windows;
  const analysis::PairStatsMap offline =
      analysis::extract_pair_stats(run.assigned, windows);

  // Online: feed the assigned trace's association timeline.
  const auto base = empty_model(120);
  OnlineS3Config ocfg;
  ocfg.co_leave_window = windows.co_leave_window;
  ocfg.min_encounter_overlap = windows.min_encounter_overlap;
  OnlineSocialModel online(&base, ocfg);
  struct Ev {
    util::SimTime when;
    bool arrive;
    std::size_t idx;
  };
  std::vector<Ev> events;
  const auto sessions = run.assigned.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    events.push_back({sessions[i].connect, true, i});
    events.push_back({sessions[i].disconnect, false, i});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.when < b.when; });
  for (const Ev& e : events) {
    const trace::SessionRecord& s = sessions[e.idx];
    if (e.arrive) {
      online.on_associate(e.idx, s.user, s.ap, e.when);
    } else {
      online.on_disconnect(e.idx, s.user, s.ap, e.when);
    }
  }

  // Compare the encounter/co-leave ledgers (co-comings are offline-only
  // bookkeeping the online detector does not need).
  const social::SocialIndexModel check = online.checkpoint();
  std::size_t offline_encounter_pairs = 0;
  for (const auto& [pair, off] : offline) {
    if (off.encounters == 0) continue;
    ++offline_encounter_pairs;
    const social::PairStore::Stats* live = check.pair_stats().find(pair);
    ASSERT_NE(live, nullptr)
        << "pair " << pair.a << "," << pair.b << " missing online";
    EXPECT_EQ(live->encounters, off.encounters)
        << "pair " << pair.a << "," << pair.b;
    EXPECT_EQ(live->co_leaves, off.co_leaves)
        << "pair " << pair.a << "," << pair.b;
  }
  std::size_t online_encounter_pairs = 0;
  for (const auto& [pair, live] : check.pair_stats()) {
    if (live.encounters > 0) ++online_encounter_pairs;
  }
  EXPECT_EQ(online_encounter_pairs, offline_encounter_pairs);
}

TEST(OnlineS3Selector, EndToEndReplayLearns) {
  trace::GeneratorConfig cfg;
  cfg.seed = 31;
  cfg.num_users = 250;
  cfg.num_days = 10;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace world = trace::generate_campus_trace(cfg);

  // Train on a *single* day only, then let online learning absorb the
  // rest during replay of days 1..10.
  EvaluationConfig eval;
  eval.train_days = 1;
  eval.test_days = 9;
  const social::SocialIndexModel base =
      train_from_workload(world.network, world.workload, eval);

  OnlineS3Selector online(&world.network, &base);
  const trace::Trace rest = world.workload.slice(
      util::SimTime::from_days(1), util::SimTime::from_days(10));
  const sim::ReplayResult r =
      sim::replay(world.network, rest, online, eval.replay);
  EXPECT_TRUE(r.assigned.fully_assigned());
  // The live model accumulated relationships the 1-day base missed.
  EXPECT_GT(online.model().updated_pairs(), base.pair_stats().size());
}

}  // namespace
}  // namespace s3::core
