#include "s3/core/rebalancer.h"

#include <gtest/gtest.h>

#include "s3/analysis/balance.h"
#include "s3/check/contract.h"
#include "s3/fault/fault_injector.h"
#include "s3/util/stats.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

TEST(Rebalancer, ValidatesConfig) {
  const auto net = mini_network(2);
  const auto t = make_trace(1, {SessionSpec{}});
  RebalancerConfig bad;
  bad.sweep_period_s = 0;
  EXPECT_THROW(simulate_with_migration(net, t, bad), std::invalid_argument);
  bad = RebalancerConfig{};
  bad.slot_s = 0;
  EXPECT_THROW(simulate_with_migration(net, t, bad), std::invalid_argument);
}

TEST(Rebalancer, NoMigrationWhenBalanced) {
  const auto net = mini_network(2);
  // Two equal users on two APs via LLF: nothing to migrate.
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 3600},
  });
  RebalancerConfig cfg;
  cfg.radio.association_threshold_dbm = -75.0;  // both APs audible
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_DOUBLE_EQ(r.disrupted_session_fraction, 0.0);
}

TEST(Rebalancer, MigratesAfterCoLeaving) {
  // Four users land on AP pair; two leave together from one AP later a
  // heavy user remains concentrated: the sweep should move load.
  const auto net = mini_network(2);
  const auto t = make_trace(4, {
      // Two long-stay users with unequal demands.
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 7200,
                  .demand_mbps = 4.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 7200,
                  .demand_mbps = 4.0},
      // A later arrival that unbalances whatever AP it joins after the
      // early leaver departs.
      SessionSpec{.user = 2, .connect_s = 10, .disconnect_s = 1200,
                  .demand_mbps = 4.0},
      SessionSpec{.user = 3, .connect_s = 20, .disconnect_s = 7200,
                  .demand_mbps = 8.0},
  });
  RebalancerConfig cfg;
  cfg.sweep_period_s = 600;
  cfg.radio.association_threshold_dbm = -75.0;
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  // After user 2 leaves at t=1200, loads are uneven (8 vs 4 or worse);
  // a sweep must fire at least one migration.
  EXPECT_GT(r.migrations, 0u);
  EXPECT_GT(r.disrupted_session_fraction, 0.0);
}

TEST(Rebalancer, DisruptionLedgerConsistent) {
  trace::GeneratorConfig cfg;
  cfg.seed = 12;
  cfg.num_users = 200;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  RebalancerConfig rc;
  const RebalanceResult r = simulate_with_migration(g.network, g.workload, rc);
  std::size_t ledger = 0;
  for (std::uint32_t d : r.disruptions_per_user) ledger += d;
  EXPECT_EQ(ledger, r.migrations);
  EXPECT_GE(r.disrupted_session_fraction, 0.0);
  EXPECT_LE(r.disrupted_session_fraction, 1.0);
}

TEST(Rebalancer, BetterBalanceThanPlainLlfButDisruptive) {
  // The paper's §I claim: online rebalancing achieves better balance at
  // the cost of constant disruptions.
  trace::GeneratorConfig cfg;
  cfg.seed = 13;
  cfg.num_users = 400;
  cfg.num_days = 3;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  RebalancerConfig with_migration;
  const RebalanceResult mig =
      simulate_with_migration(g.network, g.workload, with_migration);

  RebalancerConfig without = with_migration;
  without.max_migrations_per_sweep = 0;  // plain LLF arrivals only
  const RebalanceResult plain =
      simulate_with_migration(g.network, g.workload, without);
  EXPECT_EQ(plain.migrations, 0u);

  auto mean_beta = [&](const RebalanceResult& r) {
    util::RunningStats stats;
    for (ControllerId c = 0; c < g.network.num_controllers(); ++c) {
      const std::size_t width = g.network.aps_of_controller(c).size();
      for (std::size_t slot = 0; slot < r.num_slots; ++slot) {
        const auto loads = r.loads(c, slot, width);
        double total = 0.0;
        for (double v : loads) total += v;
        if (total < 5.0) continue;
        stats.add(analysis::normalized_balance_index(loads));
      }
    }
    return stats.mean();
  };
  EXPECT_GT(mean_beta(mig), mean_beta(plain));
  EXPECT_GT(mig.migrations, 50u);  // "constant disruptions"
}

TEST(Rebalancer, ApRemovalMidDomainEvictsOntoSurvivors) {
  // Satellite check: an AP failing mid-domain must land its stations on
  // the surviving APs without ever over-committing bandwidth, and the
  // whole run must stay contract-clean in abort mode.
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 3;
  layout.ap_capacity_mbps = 20.0;
  const auto net = wlan::make_campus(layout);
  const auto t = make_trace(6, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 7200,
                  .demand_mbps = 3.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 7200,
                  .demand_mbps = 3.0},
      SessionSpec{.user = 2, .connect_s = 5, .disconnect_s = 7200,
                  .demand_mbps = 3.0},
      SessionSpec{.user = 3, .connect_s = 10, .disconnect_s = 7200,
                  .demand_mbps = 3.0},
      SessionSpec{.user = 4, .connect_s = 15, .disconnect_s = 7200,
                  .demand_mbps = 3.0},
      SessionSpec{.user = 5, .connect_s = 20, .disconnect_s = 7200,
                  .demand_mbps = 3.0},
  });

  // AP 0 fails during [1000, 5000) — mid-domain, everyone connected.
  fault::FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(1000), util::SimTime(5000)});
  const fault::FaultInjector injector(plan, 1);
  RebalancerConfig cfg;
  cfg.radio.association_threshold_dbm = -75.0;  // all 3 APs audible
  cfg.slot_s = 500;
  cfg.injector = &injector;

  const check::ScopedContractMode guard(check::ContractMode::kAbort);
  const RebalanceResult r = simulate_with_migration(net, t, cfg);

  // LLF spread 6 x 3 Mbit/s over 3 APs => 2 stations on AP 0, both
  // kicked by the outage; the survivors had headroom for everyone.
  EXPECT_EQ(r.fault_evictions, 2u);
  EXPECT_EQ(r.dropped_sessions, 0u);

  // While the AP is down every session is served by a surviving AP and
  // their capacity is honored: slot covering [1500, 2000) has AP 0 at
  // zero and 18 Mbit/s split across APs 1 and 2 within the 20 cap.
  const std::size_t down_slot = 3;  // [1500, 2000)
  const auto loads = r.loads(0, down_slot, 3);
  EXPECT_NEAR(loads[0], 0.0, 1e-9);
  EXPECT_NEAR(loads[1] + loads[2], 18.0, 1e-9);
  EXPECT_LE(loads[1], 20.0 + 1e-9);
  EXPECT_LE(loads[2], 20.0 + 1e-9);

  // After recovery the sweep pulls load back onto AP 0.
  const std::size_t recovered_slot = 11;  // [5500, 6000)
  const auto after = r.loads(0, recovered_slot, 3);
  EXPECT_GT(after[0], 0.0);
}

TEST(Rebalancer, WholeDomainOutageDropsSessions) {
  const auto net = mini_network(2);
  fault::FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(0), util::SimTime(4000)});
  plan.ap_outages.push_back({1, util::SimTime(0), util::SimTime(4000)});
  const fault::FaultInjector injector(plan, 1);
  const auto t = make_trace(1, {
      SessionSpec{.user = 0, .connect_s = 100, .disconnect_s = 600},
  });
  RebalancerConfig cfg;
  cfg.radio.association_threshold_dbm = -75.0;
  cfg.injector = &injector;
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  EXPECT_EQ(r.dropped_sessions, 1u);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(Rebalancer, NoInjectorKeepsLegacyArrivalPath) {
  // Bit-parity guard: cfg.injector == nullptr must reproduce the exact
  // pre-fault arrival placement (least_loaded, no surviving-filter).
  trace::GeneratorConfig gen;
  gen.seed = 12;
  gen.num_users = 100;
  gen.num_days = 1;
  gen.layout.num_buildings = 1;
  gen.layout.aps_per_building = 4;
  // Unconstrained capacity: the fault path's headroom preference never
  // has anything to prefer, so any divergence is a real ordering bug.
  gen.layout.ap_capacity_mbps = 1e6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(gen);
  RebalancerConfig base;
  const RebalanceResult a = simulate_with_migration(g.network, g.workload, base);
  RebalancerConfig with_empty = base;
  const fault::FaultInjector injector(fault::FaultPlan{}, 1);
  with_empty.injector = &injector;
  const RebalanceResult b =
      simulate_with_migration(g.network, g.workload, with_empty);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(b.fault_evictions, 0u);
  EXPECT_EQ(b.dropped_sessions, 0u);
  ASSERT_EQ(a.slot_load.size(), b.slot_load.size());
  for (std::size_t c = 0; c < a.slot_load.size(); ++c) {
    ASSERT_EQ(a.slot_load[c].size(), b.slot_load[c].size());
    for (std::size_t i = 0; i < a.slot_load[c].size(); ++i) {
      EXPECT_DOUBLE_EQ(a.slot_load[c][i], b.slot_load[c][i]);
    }
  }
}

TEST(Rebalancer, SlotLoadsMatchDemandIntegral) {
  const auto net = mini_network(1);
  const auto t = make_trace(1, {SessionSpec{.connect_s = 0,
                                            .disconnect_s = 1200,
                                            .demand_mbps = 3.0}});
  RebalancerConfig cfg;
  cfg.slot_s = 600;
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  ASSERT_GE(r.num_slots, 2u);
  EXPECT_NEAR(r.loads(0, 0, 1)[0], 3.0, 1e-9);
  EXPECT_NEAR(r.loads(0, 1, 1)[0], 3.0, 1e-9);
}

}  // namespace
}  // namespace s3::core
