#include "s3/core/rebalancer.h"

#include <gtest/gtest.h>

#include "s3/analysis/balance.h"
#include "s3/util/stats.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::core {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

TEST(Rebalancer, ValidatesConfig) {
  const auto net = mini_network(2);
  const auto t = make_trace(1, {SessionSpec{}});
  RebalancerConfig bad;
  bad.sweep_period_s = 0;
  EXPECT_THROW(simulate_with_migration(net, t, bad), std::invalid_argument);
  bad = RebalancerConfig{};
  bad.slot_s = 0;
  EXPECT_THROW(simulate_with_migration(net, t, bad), std::invalid_argument);
}

TEST(Rebalancer, NoMigrationWhenBalanced) {
  const auto net = mini_network(2);
  // Two equal users on two APs via LLF: nothing to migrate.
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 3600},
  });
  RebalancerConfig cfg;
  cfg.radio.association_threshold_dbm = -75.0;  // both APs audible
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_DOUBLE_EQ(r.disrupted_session_fraction, 0.0);
}

TEST(Rebalancer, MigratesAfterCoLeaving) {
  // Four users land on AP pair; two leave together from one AP later a
  // heavy user remains concentrated: the sweep should move load.
  const auto net = mini_network(2);
  const auto t = make_trace(4, {
      // Two long-stay users with unequal demands.
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 7200,
                  .demand_mbps = 4.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 7200,
                  .demand_mbps = 4.0},
      // A later arrival that unbalances whatever AP it joins after the
      // early leaver departs.
      SessionSpec{.user = 2, .connect_s = 10, .disconnect_s = 1200,
                  .demand_mbps = 4.0},
      SessionSpec{.user = 3, .connect_s = 20, .disconnect_s = 7200,
                  .demand_mbps = 8.0},
  });
  RebalancerConfig cfg;
  cfg.sweep_period_s = 600;
  cfg.radio.association_threshold_dbm = -75.0;
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  // After user 2 leaves at t=1200, loads are uneven (8 vs 4 or worse);
  // a sweep must fire at least one migration.
  EXPECT_GT(r.migrations, 0u);
  EXPECT_GT(r.disrupted_session_fraction, 0.0);
}

TEST(Rebalancer, DisruptionLedgerConsistent) {
  trace::GeneratorConfig cfg;
  cfg.seed = 12;
  cfg.num_users = 200;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  RebalancerConfig rc;
  const RebalanceResult r = simulate_with_migration(g.network, g.workload, rc);
  std::size_t ledger = 0;
  for (std::uint32_t d : r.disruptions_per_user) ledger += d;
  EXPECT_EQ(ledger, r.migrations);
  EXPECT_GE(r.disrupted_session_fraction, 0.0);
  EXPECT_LE(r.disrupted_session_fraction, 1.0);
}

TEST(Rebalancer, BetterBalanceThanPlainLlfButDisruptive) {
  // The paper's §I claim: online rebalancing achieves better balance at
  // the cost of constant disruptions.
  trace::GeneratorConfig cfg;
  cfg.seed = 13;
  cfg.num_users = 400;
  cfg.num_days = 3;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  RebalancerConfig with_migration;
  const RebalanceResult mig =
      simulate_with_migration(g.network, g.workload, with_migration);

  RebalancerConfig without = with_migration;
  without.max_migrations_per_sweep = 0;  // plain LLF arrivals only
  const RebalanceResult plain =
      simulate_with_migration(g.network, g.workload, without);
  EXPECT_EQ(plain.migrations, 0u);

  auto mean_beta = [&](const RebalanceResult& r) {
    util::RunningStats stats;
    for (ControllerId c = 0; c < g.network.num_controllers(); ++c) {
      const std::size_t width = g.network.aps_of_controller(c).size();
      for (std::size_t slot = 0; slot < r.num_slots; ++slot) {
        const auto loads = r.loads(c, slot, width);
        double total = 0.0;
        for (double v : loads) total += v;
        if (total < 5.0) continue;
        stats.add(analysis::normalized_balance_index(loads));
      }
    }
    return stats.mean();
  };
  EXPECT_GT(mean_beta(mig), mean_beta(plain));
  EXPECT_GT(mig.migrations, 50u);  // "constant disruptions"
}

TEST(Rebalancer, SlotLoadsMatchDemandIntegral) {
  const auto net = mini_network(1);
  const auto t = make_trace(1, {SessionSpec{.connect_s = 0,
                                            .disconnect_s = 1200,
                                            .demand_mbps = 3.0}});
  RebalancerConfig cfg;
  cfg.slot_s = 600;
  const RebalanceResult r = simulate_with_migration(net, t, cfg);
  ASSERT_GE(r.num_slots, 2u);
  EXPECT_NEAR(r.loads(0, 0, 1)[0], 3.0, 1e-9);
  EXPECT_NEAR(r.loads(0, 1, 1)[0], 3.0, 1e-9);
}

}  // namespace
}  // namespace s3::core
