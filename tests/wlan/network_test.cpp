#include "s3/wlan/network.h"

#include <gtest/gtest.h>

namespace s3::wlan {
namespace {

TEST(MakeCampus, DefaultShape) {
  const CampusLayout layout;
  const Network net = make_campus(layout);
  EXPECT_EQ(net.num_buildings(), layout.num_buildings);
  EXPECT_EQ(net.num_controllers(), layout.num_buildings);
  EXPECT_EQ(net.num_aps(), layout.num_buildings * layout.aps_per_building);
}

TEST(MakeCampus, PaperScale) {
  CampusLayout layout;
  layout.num_buildings = 22;
  layout.aps_per_building = 15;
  const Network net = make_campus(layout);
  EXPECT_EQ(net.num_aps(), 330u);  // ~334 in the SJTU deployment
  EXPECT_EQ(net.num_controllers(), 22u);
}

TEST(MakeCampus, ApsInsideTheirBuilding) {
  const Network net = make_campus({});
  for (const ApConfig& ap : net.aps()) {
    const BuildingConfig& b = net.building(ap.building);
    EXPECT_GE(ap.pos.x, b.origin.x);
    EXPECT_LE(ap.pos.x, b.origin.x + b.width_m);
    EXPECT_GE(ap.pos.y, b.origin.y);
    EXPECT_LE(ap.pos.y, b.origin.y + b.depth_m);
  }
}

TEST(MakeCampus, DomainsPartitionAps) {
  const Network net = make_campus({});
  std::size_t total = 0;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    const auto domain = net.aps_of_controller(c);
    total += domain.size();
    for (ApId a : domain) {
      EXPECT_EQ(net.controller_of_ap(a), c);
      EXPECT_EQ(net.ap(a).building, net.controller(c).building);
    }
  }
  EXPECT_EQ(total, net.num_aps());
}

TEST(MakeCampus, ControllerOfBuildingRoundTrip) {
  const Network net = make_campus({});
  for (BuildingId b = 0; b < net.num_buildings(); ++b) {
    const ControllerId c = net.controller_of_building(b);
    EXPECT_EQ(net.controller(c).building, b);
  }
}

TEST(MakeCampus, RejectsDegenerateLayouts) {
  CampusLayout empty;
  empty.num_buildings = 0;
  EXPECT_THROW(make_campus(empty), std::invalid_argument);
  CampusLayout no_aps;
  no_aps.aps_per_building = 0;
  EXPECT_THROW(make_campus(no_aps), std::invalid_argument);
  CampusLayout bad_cap;
  bad_cap.ap_capacity_mbps = 0.0;
  EXPECT_THROW(make_campus(bad_cap), std::invalid_argument);
}

TEST(Network, ValidatesDenseIds) {
  std::vector<BuildingConfig> buildings = {{0, {0, 0}, 10, 10}};
  std::vector<ControllerConfig> controllers = {{0, 0, "c0"}};
  std::vector<ApConfig> aps(1);
  aps[0].id = 5;  // not dense
  aps[0].controller = 0;
  EXPECT_THROW(
      Network(buildings, controllers, aps), std::invalid_argument);
}

TEST(Network, RejectsEmptyDomain) {
  std::vector<BuildingConfig> buildings = {{0, {0, 0}, 10, 10},
                                           {1, {50, 0}, 10, 10}};
  std::vector<ControllerConfig> controllers = {{0, 0, "c0"}, {1, 1, "c1"}};
  std::vector<ApConfig> aps(1);
  aps[0].id = 0;
  aps[0].controller = 0;  // controller 1 has no APs
  EXPECT_THROW(Network(buildings, controllers, aps), std::invalid_argument);
}

TEST(Network, RejectsZeroCapacityAp) {
  std::vector<BuildingConfig> buildings = {{0, {0, 0}, 10, 10}};
  std::vector<ControllerConfig> controllers = {{0, 0, "c0"}};
  std::vector<ApConfig> aps(1);
  aps[0].id = 0;
  aps[0].controller = 0;
  aps[0].capacity_mbps = 0.0;
  EXPECT_THROW(Network(buildings, controllers, aps), std::invalid_argument);
}

TEST(Network, RejectsTwoControllersPerBuilding) {
  std::vector<BuildingConfig> buildings = {{0, {0, 0}, 10, 10}};
  std::vector<ControllerConfig> controllers = {{0, 0, "c0"}, {1, 0, "c1"}};
  std::vector<ApConfig> aps(2);
  aps[0].id = 0;
  aps[0].controller = 0;
  aps[1].id = 1;
  aps[1].controller = 1;
  EXPECT_THROW(Network(buildings, controllers, aps), std::invalid_argument);
}

TEST(Network, AccessorsValidateRange) {
  const Network net = make_campus({});
  EXPECT_THROW(net.ap(net.num_aps()), std::invalid_argument);
  EXPECT_THROW(net.controller(net.num_controllers()), std::invalid_argument);
  EXPECT_THROW(net.building(net.num_buildings()), std::invalid_argument);
  EXPECT_THROW(net.aps_of_controller(net.num_controllers()),
               std::invalid_argument);
}

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// Parameterized: campus shape invariants across scales.
class CampusScaleTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CampusScaleTest, DenseIdsAndConsistentDomains) {
  const auto [buildings, aps_per] = GetParam();
  CampusLayout layout;
  layout.num_buildings = buildings;
  layout.aps_per_building = aps_per;
  const Network net = make_campus(layout);
  for (std::size_t i = 0; i < net.num_aps(); ++i) {
    EXPECT_EQ(net.ap(static_cast<ApId>(i)).id, i);
  }
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    EXPECT_EQ(net.aps_of_controller(c).size(), aps_per);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CampusScaleTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{3, 5},
                      std::pair<std::size_t, std::size_t>{8, 12},
                      std::pair<std::size_t, std::size_t>{22, 15}));

}  // namespace
}  // namespace s3::wlan
