#include "s3/wlan/radio.h"

#include <gtest/gtest.h>

namespace s3::wlan {
namespace {

TEST(RadioModel, RssiDecreasesWithDistance) {
  RadioModel radio;
  ApConfig ap;
  ap.pos = {0, 0};
  double prev = radio.rssi_dbm(ap, {1, 0});
  for (double d = 2.0; d <= 64.0; d *= 2.0) {
    const double cur = radio.rssi_dbm(ap, {d, 0});
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(RadioModel, ClampsBelowReferenceDistance) {
  RadioModel radio;
  ApConfig ap;
  ap.pos = {0, 0};
  // At or inside 1 m the path loss is the reference loss.
  EXPECT_DOUBLE_EQ(radio.rssi_dbm(ap, {0, 0}),
                   ap.tx_power_dbm - radio.reference_loss_db);
  EXPECT_DOUBLE_EQ(radio.rssi_dbm(ap, {0.5, 0}),
                   radio.rssi_dbm(ap, {0, 0}));
}

TEST(RadioModel, LogDistanceFormula) {
  RadioModel radio;
  radio.path_loss_exponent = 3.0;
  radio.reference_loss_db = 40.0;
  ApConfig ap;
  ap.pos = {0, 0};
  ap.tx_power_dbm = 20.0;
  EXPECT_NEAR(radio.rssi_dbm(ap, {10, 0}), 20.0 - 40.0 - 30.0, 1e-9);
  EXPECT_NEAR(radio.rssi_dbm(ap, {100, 0}), 20.0 - 40.0 - 60.0, 1e-9);
}

TEST(CandidateAps, SortedStrongestFirst) {
  const Network net = make_campus({});
  RadioModel radio;
  const BuildingConfig& b = net.building(0);
  const Position at{b.origin.x + 5.0, b.origin.y + 5.0};
  const auto cands = candidate_aps(net, radio, 0, at);
  ASSERT_FALSE(cands.empty());
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(radio.rssi_dbm(net.ap(cands[i - 1]), at),
              radio.rssi_dbm(net.ap(cands[i]), at));
  }
}

TEST(CandidateAps, AllAboveThreshold) {
  const Network net = make_campus({});
  RadioModel radio;
  const BuildingConfig& b = net.building(2);
  const Position at{b.origin.x + 20.0, b.origin.y + 15.0};
  const auto cands = candidate_aps(net, radio, 2, at);
  if (cands.size() > 1) {
    for (ApId a : cands) {
      EXPECT_GE(radio.rssi_dbm(net.ap(a), at),
                radio.association_threshold_dbm);
    }
  }
}

TEST(CandidateAps, SameBuildingOnlyByDefault) {
  const Network net = make_campus({});
  RadioModel radio;
  const BuildingConfig& b = net.building(1);
  const Position at{b.origin.x + 10.0, b.origin.y + 10.0};
  for (ApId a : candidate_aps(net, radio, 1, at)) {
    EXPECT_EQ(net.ap(a).building, 1u);
  }
}

TEST(CandidateAps, OrphanFallsBackToStrongestInBuilding) {
  const Network net = make_campus({});
  RadioModel radio;
  radio.association_threshold_dbm = 0.0;  // nothing is audible
  const BuildingConfig& b = net.building(0);
  const Position at{b.origin.x + 1.0, b.origin.y + 1.0};
  const auto cands = candidate_aps(net, radio, 0, at);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(net.ap(cands[0]).building, 0u);
}

TEST(CandidateAps, CrossBuildingWhenAllowed) {
  CampusLayout layout;
  layout.campus_pitch_m = 20.0;  // buildings nearly touching
  const Network net = make_campus(layout);
  RadioModel radio;
  radio.same_building_only = false;
  radio.association_threshold_dbm = -90.0;
  const BuildingConfig& b = net.building(0);
  const Position at{b.origin.x + b.width_m - 1.0, b.origin.y + 1.0};
  bool cross = false;
  for (ApId a : candidate_aps(net, radio, 0, at)) {
    if (net.ap(a).building != 0u) cross = true;
  }
  EXPECT_TRUE(cross);
}

TEST(StrongestAp, IsNearestOnUniformGrid) {
  const Network net = make_campus({});
  RadioModel radio;
  // Stand exactly on an AP: that AP must win.
  const ApConfig& target = net.ap(5);
  EXPECT_EQ(strongest_ap(net, radio, target.building, target.pos), target.id);
}

TEST(CandidateAps, ThresholdShrinksSet) {
  const Network net = make_campus({});
  RadioModel loose, tight;
  loose.association_threshold_dbm = -80.0;
  tight.association_threshold_dbm = -55.0;
  const BuildingConfig& b = net.building(0);
  const Position at{b.origin.x + 30.0, b.origin.y + 20.0};
  EXPECT_GE(candidate_aps(net, loose, 0, at).size(),
            candidate_aps(net, tight, 0, at).size());
}

}  // namespace
}  // namespace s3::wlan
