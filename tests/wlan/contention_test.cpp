#include "s3/wlan/contention.h"

#include <gtest/gtest.h>

namespace s3::wlan {
namespace {

TEST(ContentionModel, SingleStationIsNominalEfficiency) {
  const ContentionModel m;
  EXPECT_DOUBLE_EQ(m.efficiency(1), m.single_station_efficiency);
  // Idle medium behaves like one station (the first arrival's view).
  EXPECT_DOUBLE_EQ(m.efficiency(0), m.single_station_efficiency);
}

TEST(ContentionModel, MonotoneDecreasing) {
  const ContentionModel m;
  double prev = m.efficiency(1);
  for (std::size_t n = 2; n <= 60; ++n) {
    const double cur = m.efficiency(n);
    EXPECT_LT(cur, prev) << "n=" << n;
    prev = cur;
  }
}

TEST(ContentionModel, BoundedByFloor) {
  const ContentionModel m;
  for (std::size_t n : {1u, 5u, 20u, 100u, 10000u}) {
    EXPECT_GE(m.efficiency(n), m.efficiency_floor);
    EXPECT_LE(m.efficiency(n), m.single_station_efficiency);
  }
  // Approaches the floor asymptotically.
  EXPECT_NEAR(m.efficiency(100000), m.efficiency_floor, 1e-3);
}

TEST(ContentionModel, EffectiveCapacityScales) {
  const ContentionModel m;
  EXPECT_DOUBLE_EQ(m.effective_capacity_mbps(20.0, 1),
                   20.0 * m.single_station_efficiency);
  EXPECT_LT(m.effective_capacity_mbps(20.0, 30),
            m.effective_capacity_mbps(20.0, 2));
}

TEST(ContentionModel, DegenerateParameters) {
  ContentionModel flat;
  flat.single_station_efficiency = 0.7;
  flat.efficiency_floor = 0.7;  // no decay span
  EXPECT_DOUBLE_EQ(flat.efficiency(1), 0.7);
  EXPECT_DOUBLE_EQ(flat.efficiency(50), 0.7);

  ContentionModel inverted;
  inverted.single_station_efficiency = 0.5;
  inverted.efficiency_floor = 0.8;  // floor above nominal: span clamps to 0
  EXPECT_DOUBLE_EQ(inverted.efficiency(10), 0.8);
}

TEST(ContentionModel, RoughlyMatchesPublishedShape) {
  // Heusse et al.-style numbers: ~0.9 at 1 station, ~0.7 around 5,
  // ~0.6 by a few dozen.
  const ContentionModel m;
  EXPECT_NEAR(m.efficiency(1), 0.90, 0.01);
  EXPECT_GT(m.efficiency(5), 0.75);
  EXPECT_LT(m.efficiency(40), 0.65);
}

}  // namespace
}  // namespace s3::wlan
