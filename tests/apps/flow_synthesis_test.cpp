#include "s3/apps/flow_synthesis.h"

#include <gtest/gtest.h>

namespace s3::apps {
namespace {

TEST(DefaultRules, NoCrossCategoryShadowing) {
  // Every rule in the default table must classify back to its own
  // category when probed at its low port (first-match-wins sanity).
  const PortClassifier c;
  for (const PortRule& rule : c.rules()) {
    FlowRecord probe;
    probe.transport = rule.transport;
    probe.src_port = 50001;
    probe.dst_port = rule.port_lo;
    EXPECT_EQ(c.classify(probe), rule.category)
        << "rule at port " << rule.port_lo << " is shadowed";
  }
}

TEST(SynthesizeFlows, RoundTripsBudgetExactly) {
  const PortClassifier classifier;
  util::Rng rng(1);
  AppMix budget{};
  budget[0] = 5.0e6;   // IM
  budget[1] = 50.0e6;  // P2P
  budget[3] = 1.0e6;   // email
  budget[5] = 20.0e6;  // web
  const auto flows = synthesize_flows(budget, classifier, rng);
  const AppMix back = accumulate_flows(classifier, flows);
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    EXPECT_NEAR(back[c], budget[c], 1e-6) << "realm " << c;
  }
}

TEST(SynthesizeFlows, EmptyBudgetGivesNoFlows) {
  const PortClassifier classifier;
  util::Rng rng(2);
  EXPECT_TRUE(synthesize_flows(AppMix{}, classifier, rng).empty());
}

TEST(SynthesizeFlows, FlowSizesFollowConfig) {
  const PortClassifier classifier;
  util::Rng rng(3);
  AppMix budget{};
  budget[5] = 1.0e9;
  FlowSynthesisConfig cfg;
  cfg.mean_flow_bytes = 1.0e6;
  cfg.sigma = 0.5;
  const auto flows = synthesize_flows(budget, classifier, rng, cfg);
  // Expect roughly budget/mean flows.
  EXPECT_GT(flows.size(), 500u);
  EXPECT_LT(flows.size(), 2000u);
  for (const FlowRecord& f : flows) {
    EXPECT_GT(f.bytes, 0.0);
    EXPECT_GE(f.src_port, cfg.ephemeral_lo);
  }
}

TEST(SynthesizeFlows, DeterministicInSeed) {
  const PortClassifier classifier;
  AppMix budget{};
  budget[2] = 3.0e6;
  budget[4] = 9.0e6;
  util::Rng a(7), b(7);
  const auto fa = synthesize_flows(budget, classifier, a);
  const auto fb = synthesize_flows(budget, classifier, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].dst_port, fb[i].dst_port);
    EXPECT_DOUBLE_EQ(fa[i].bytes, fb[i].bytes);
  }
}

TEST(SynthesizeFlows, Validation) {
  const PortClassifier classifier;
  util::Rng rng(4);
  FlowSynthesisConfig bad;
  bad.mean_flow_bytes = 0.0;
  AppMix budget{};
  budget[0] = 1.0;
  EXPECT_THROW(synthesize_flows(budget, classifier, rng, bad),
               std::invalid_argument);
}

TEST(IngestFlows, BooksOnUserDay) {
  const PortClassifier classifier;
  util::Rng rng(5);
  AppMix budget{};
  budget[1] = 10.0e6;
  budget[5] = 4.0e6;
  const auto flows = synthesize_flows(budget, classifier, rng);

  ProfileStore store(2, 3);
  ingest_flows(store, 1, 2, classifier, flows);
  const AppMix& day = store.user(1).day(2);
  EXPECT_NEAR(day[1], 10.0e6, 1e-6);
  EXPECT_NEAR(day[5], 4.0e6, 1e-6);
  EXPECT_DOUBLE_EQ(total(store.user(0).lifetime()), 0.0);
}

TEST(IngestFlows, MatchesDirectBooking) {
  // The flow-ingest path and the direct AppMix path must agree.
  const PortClassifier classifier;
  util::Rng rng(6);
  AppMix budget{};
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    budget[c] = 1.0e6 * static_cast<double>(c + 1);
  }
  const auto flows = synthesize_flows(budget, classifier, rng);

  ProfileStore via_flows(1, 1), direct(1, 1);
  ingest_flows(via_flows, 0, 0, classifier, flows);
  direct.user(0).add_mix(0, budget);
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    EXPECT_NEAR(via_flows.user(0).day(0)[c], direct.user(0).day(0)[c], 1e-6);
  }
}

}  // namespace
}  // namespace s3::apps
