#include "s3/apps/classifier.h"

#include <gtest/gtest.h>

#include <cmath>

namespace s3::apps {
namespace {

FlowRecord flow(std::uint16_t dst_port, Transport t = Transport::kTcp,
                double bytes = 100.0) {
  FlowRecord f;
  f.src_port = 50000;  // ephemeral client port
  f.dst_port = dst_port;
  f.transport = t;
  f.bytes = bytes;
  return f;
}

TEST(PortClassifier, WellKnownPortsPerCategory) {
  const PortClassifier c;
  EXPECT_EQ(c.classify(flow(80)), AppCategory::kWeb);
  EXPECT_EQ(c.classify(flow(443)), AppCategory::kWeb);
  EXPECT_EQ(c.classify(flow(25)), AppCategory::kEmail);
  EXPECT_EQ(c.classify(flow(993)), AppCategory::kEmail);
  EXPECT_EQ(c.classify(flow(5222)), AppCategory::kIm);
  EXPECT_EQ(c.classify(flow(1863)), AppCategory::kIm);
  EXPECT_EQ(c.classify(flow(6881)), AppCategory::kP2p);
  EXPECT_EQ(c.classify(flow(6999)), AppCategory::kP2p);
  EXPECT_EQ(c.classify(flow(4662)), AppCategory::kP2p);
  EXPECT_EQ(c.classify(flow(554)), AppCategory::kVideo);
  EXPECT_EQ(c.classify(flow(1935)), AppCategory::kVideo);
  EXPECT_EQ(c.classify(flow(3689)), AppCategory::kMusic);
}

TEST(PortClassifier, TransportMatters) {
  const PortClassifier c;
  // QQ IM is UDP 8000; TCP 8000 matches nothing and falls back.
  EXPECT_EQ(c.classify(flow(8000, Transport::kUdp)), AppCategory::kIm);
  EXPECT_EQ(c.classify(flow(8000, Transport::kTcp)), AppCategory::kWeb);
}

TEST(PortClassifier, MatchesEitherEndpoint) {
  const PortClassifier c;
  FlowRecord f;  // server-to-client direction: service port on src side
  f.src_port = 443;
  f.dst_port = 51234;
  EXPECT_EQ(c.classify(f), AppCategory::kWeb);
}

TEST(PortClassifier, FallbackConfigurable) {
  const PortClassifier c;
  const FlowRecord unknown = flow(9999);
  EXPECT_EQ(c.classify(unknown), AppCategory::kWeb);
  EXPECT_EQ(c.classify(unknown, AppCategory::kMusic), AppCategory::kMusic);
  EXPECT_FALSE(c.try_classify(unknown).has_value());
}

TEST(PortClassifier, FirstMatchWins) {
  const PortClassifier c({{Transport::kTcp, 80, 80, AppCategory::kMusic},
                          {Transport::kTcp, 80, 80, AppCategory::kWeb}});
  EXPECT_EQ(c.classify(flow(80)), AppCategory::kMusic);
}

TEST(PortClassifier, RangeRules) {
  const PortClassifier c({{Transport::kUdp, 100, 200, AppCategory::kVideo}});
  EXPECT_EQ(c.classify(flow(100, Transport::kUdp)), AppCategory::kVideo);
  EXPECT_EQ(c.classify(flow(150, Transport::kUdp)), AppCategory::kVideo);
  EXPECT_EQ(c.classify(flow(200, Transport::kUdp)), AppCategory::kVideo);
  EXPECT_FALSE(c.try_classify(flow(201, Transport::kUdp)).has_value());
}

TEST(AccumulateFlows, SumsBytesPerRealm) {
  const PortClassifier c;
  const std::vector<FlowRecord> flows = {
      flow(80, Transport::kTcp, 10.0), flow(443, Transport::kTcp, 5.0),
      flow(6881, Transport::kTcp, 100.0), flow(25, Transport::kTcp, 2.0)};
  const AppMix mix = accumulate_flows(c, flows);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(AppCategory::kWeb)], 15.0);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(AppCategory::kP2p)], 100.0);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(AppCategory::kEmail)], 2.0);
  EXPECT_DOUBLE_EQ(mix[static_cast<std::size_t>(AppCategory::kIm)], 0.0);
}

TEST(AppMix, TotalAndNormalize) {
  AppMix m{};
  m[0] = 2.0;
  m[5] = 6.0;
  EXPECT_DOUBLE_EQ(total(m), 8.0);
  const AppMix n = normalized(m);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[5], 0.75);
  EXPECT_DOUBLE_EQ(total(n), 1.0);
}

TEST(AppMix, NormalizeZeroStaysZero) {
  const AppMix zero{};
  EXPECT_EQ(normalized(zero), zero);
}

TEST(AppMix, Accumulate) {
  AppMix a{};
  a[1] = 1.0;
  AppMix b{};
  b[1] = 2.0;
  b[3] = 4.0;
  accumulate(a, b);
  EXPECT_DOUBLE_EQ(a[1], 3.0);
  EXPECT_DOUBLE_EQ(a[3], 4.0);
}

TEST(AppMix, Distances) {
  AppMix a{}, b{};
  a[0] = 1.0;
  b[1] = 1.0;
  EXPECT_NEAR(l2_distance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(l2_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_NEAR(cosine_similarity(a, a), 1.0, 1e-12);
  const AppMix zero{};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, zero), 0.0);
}

TEST(AppCategory, Names) {
  EXPECT_EQ(to_string(AppCategory::kIm), "IM");
  EXPECT_EQ(to_string(AppCategory::kP2p), "P2P");
  EXPECT_EQ(to_string(AppCategory::kWeb), "browsing");
  EXPECT_EQ(kAllCategories.size(), kNumCategories);
}

}  // namespace
}  // namespace s3::apps
