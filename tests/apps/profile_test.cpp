#include "s3/apps/profile.h"

#include <gtest/gtest.h>

namespace s3::apps {
namespace {

TEST(UserProfileHistory, AddAndQuery) {
  UserProfileHistory h(5);
  h.add(0, AppCategory::kWeb, 10.0);
  h.add(0, AppCategory::kWeb, 5.0);
  h.add(2, AppCategory::kP2p, 100.0);
  EXPECT_DOUBLE_EQ(h.day(0)[static_cast<std::size_t>(AppCategory::kWeb)], 15.0);
  EXPECT_DOUBLE_EQ(h.day(2)[static_cast<std::size_t>(AppCategory::kP2p)], 100.0);
  EXPECT_DOUBLE_EQ(total(h.day(1)), 0.0);
}

TEST(UserProfileHistory, OutOfRangeDaysAreZero) {
  UserProfileHistory h(3);
  h.add(1, AppCategory::kIm, 1.0);
  EXPECT_DOUBLE_EQ(total(h.day(-5)), 0.0);
  EXPECT_DOUBLE_EQ(total(h.day(99)), 0.0);
}

TEST(UserProfileHistory, GrowsOnDemand) {
  UserProfileHistory h;  // zero days
  h.add(7, AppCategory::kVideo, 3.0);
  EXPECT_EQ(h.num_days(), 8u);
  EXPECT_DOUBLE_EQ(total(h.day(7)), 3.0);
}

TEST(UserProfileHistory, RejectsBadInput) {
  UserProfileHistory h(2);
  EXPECT_THROW(h.add(-1, AppCategory::kIm, 1.0), std::invalid_argument);
  EXPECT_THROW(h.add(0, AppCategory::kIm, -1.0), std::invalid_argument);
}

TEST(UserProfileHistory, CumulativeClampsBounds) {
  UserProfileHistory h(4);
  for (std::int64_t d = 0; d < 4; ++d) h.add(d, AppCategory::kEmail, 1.0);
  EXPECT_DOUBLE_EQ(total(h.cumulative(1, 2)), 2.0);
  EXPECT_DOUBLE_EQ(total(h.cumulative(-10, 10)), 4.0);
  EXPECT_DOUBLE_EQ(total(h.cumulative(3, 1)), 0.0);  // inverted range
}

TEST(UserProfileHistory, LifetimeAndEmpty) {
  UserProfileHistory h(3);
  EXPECT_TRUE(h.empty());
  h.add(1, AppCategory::kMusic, 2.0);
  EXPECT_FALSE(h.empty());
  EXPECT_DOUBLE_EQ(total(h.lifetime()), 2.0);
}

TEST(UserProfileHistory, AddMix) {
  UserProfileHistory h(2);
  AppMix m{};
  m[0] = 1.0;
  m[5] = 2.0;
  h.add_mix(1, m);
  h.add_mix(1, m);
  EXPECT_DOUBLE_EQ(h.day(1)[0], 2.0);
  EXPECT_DOUBLE_EQ(h.day(1)[5], 4.0);
}

TEST(ProfileStore, PerUserIsolation) {
  ProfileStore store(3, 2);
  store.user(0).add(0, AppCategory::kWeb, 10.0);
  store.user(2).add(1, AppCategory::kP2p, 20.0);
  EXPECT_DOUBLE_EQ(total(store.user(0).lifetime()), 10.0);
  EXPECT_DOUBLE_EQ(total(store.user(1).lifetime()), 0.0);
  EXPECT_DOUBLE_EQ(total(store.user(2).lifetime()), 20.0);
  EXPECT_THROW(store.user(3), std::invalid_argument);
}

TEST(ProfileStore, NormalizedProfiles) {
  ProfileStore store(2, 2);
  store.user(0).add(0, AppCategory::kWeb, 3.0);
  store.user(0).add(1, AppCategory::kIm, 1.0);
  const auto profiles = store.normalized_profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_DOUBLE_EQ(profiles[0][static_cast<std::size_t>(AppCategory::kWeb)],
                   0.75);
  EXPECT_DOUBLE_EQ(profiles[0][static_cast<std::size_t>(AppCategory::kIm)],
                   0.25);
  EXPECT_DOUBLE_EQ(total(profiles[1]), 0.0);  // inactive user stays zero
}

TEST(ProfileStore, WindowedProfiles) {
  ProfileStore store(1, 4);
  store.user(0).add(0, AppCategory::kWeb, 100.0);
  store.user(0).add(3, AppCategory::kIm, 50.0);
  const auto windowed = store.normalized_profiles(2, 3);
  EXPECT_DOUBLE_EQ(windowed[0][static_cast<std::size_t>(AppCategory::kIm)],
                   1.0);
}

}  // namespace
}  // namespace s3::apps
