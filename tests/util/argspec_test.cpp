#include "s3/util/argspec.h"

#include <gtest/gtest.h>

#include <vector>

namespace s3::util {
namespace {

constexpr ArgSpec kSpecs[] = {
    {"users", ArgKind::kInt, "population"},
    {"alpha", ArgKind::kReal, "weight"},
    {"out", ArgKind::kString, "output file"},
    {"metrics", ArgKind::kFlag, "dump counters"},
};

ArgParseResult parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return parse_args(kSpecs, static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()), 1);
}

TEST(ArgSpec, AcceptsBothOperandForms) {
  const ArgParseResult r =
      parse({"--users", "12", "--alpha=0.5", "--out", "x.csv"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.args.num("users", 0), 12);
  EXPECT_DOUBLE_EQ(r.args.real("alpha", 0.0), 0.5);
  EXPECT_EQ(r.args.get("out"), "x.csv");
}

TEST(ArgSpec, DefaultsWhenAbsent) {
  const ArgParseResult r = parse({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.args.num("users", 7), 7);
  EXPECT_DOUBLE_EQ(r.args.real("alpha", 0.25), 0.25);
  EXPECT_EQ(r.args.get("out", "def"), "def");
  EXPECT_FALSE(r.args.has("metrics"));
}

TEST(ArgSpec, BareFlagNeedsNoOperand) {
  const ArgParseResult r = parse({"--metrics", "--users", "3"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.args.has("metrics"));
  EXPECT_EQ(r.args.num("users", 0), 3);
}

TEST(ArgSpec, FlagRejectsOperand) {
  const ArgParseResult r = parse({"--metrics=yes"});
  EXPECT_EQ(r.error_kind, ArgErrorKind::kValue);
  EXPECT_EQ(r.error, "--metrics: takes no value");
}

TEST(ArgSpec, UnknownFlagIsUsageError) {
  const ArgParseResult r = parse({"--thread", "4"});
  EXPECT_EQ(r.error_kind, ArgErrorKind::kUsage);
  EXPECT_EQ(r.error, "unknown flag: --thread");
}

TEST(ArgSpec, StrayPositionalIsUsageError) {
  const ArgParseResult r = parse({"frob"});
  EXPECT_EQ(r.error_kind, ArgErrorKind::kUsage);
  EXPECT_EQ(r.error, "unexpected argument: frob");
}

TEST(ArgSpec, IntegerValidationIsEagerAndStrict) {
  // The exact message shape the CLI end-to-end scripts grep for.
  ArgParseResult r = parse({"--users", "12abc"});
  EXPECT_EQ(r.error_kind, ArgErrorKind::kValue);
  EXPECT_EQ(r.error, "--users: expected an integer, got \"12abc\"");
  r = parse({"--users", "99999999999999999999999"});
  EXPECT_EQ(r.error,
            "--users: integer out of range: \"99999999999999999999999\"");
  r = parse({"--users", "-3"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.args.num("users", 0), -3);
}

TEST(ArgSpec, RealValidationIsEagerAndStrict) {
  ArgParseResult r = parse({"--alpha", "0.3x"});
  EXPECT_EQ(r.error_kind, ArgErrorKind::kValue);
  EXPECT_EQ(r.error, "--alpha: expected a number, got \"0.3x\"");
  r = parse({"--alpha=-1.5e2"});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.args.real("alpha", 0.0), -150.0);
}

TEST(ArgSpec, MissingOperandIsValueError) {
  ArgParseResult r = parse({"--out"});
  EXPECT_EQ(r.error_kind, ArgErrorKind::kValue);
  EXPECT_EQ(r.error, "--out: expected a value");
  // A following flag does not count as the operand.
  r = parse({"--out", "--metrics"});
  EXPECT_EQ(r.error, "--out: expected a value");
}

TEST(ArgSpec, EmptyEqualsOperandIsAllowedForStrings) {
  const ArgParseResult r = parse({"--out="});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.args.has("out"));
  EXPECT_EQ(r.args.get("out", "def"), "");
}

TEST(ArgSpec, HelpShortCircuits) {
  ArgParseResult r = parse({"--help"});
  EXPECT_TRUE(r.want_help);
  EXPECT_TRUE(r.ok());
  r = parse({"-h", "--users", "12abc"});
  EXPECT_TRUE(r.want_help);  // stops before the bad operand
  EXPECT_TRUE(r.ok());
}

TEST(ArgSpec, LastOccurrenceWins) {
  const ArgParseResult r = parse({"--users", "1", "--users=2"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.args.num("users", 0), 2);
}

TEST(ArgSpec, ParseHelpersReportErrorsWithoutDying) {
  long l = 0;
  EXPECT_EQ(parse_integer("users", "42", l), "");
  EXPECT_EQ(l, 42);
  EXPECT_NE(parse_integer("users", "", l), "");
  double d = 0.0;
  EXPECT_EQ(parse_number("alpha", "0.25", d), "");
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_NE(parse_number("alpha", "x", d), "");
}

TEST(ArgSpec, FormatSpecsListsEveryFlag) {
  const std::string text = format_arg_specs(kSpecs);
  EXPECT_NE(text.find("--users N"), std::string::npos);
  EXPECT_NE(text.find("--alpha X"), std::string::npos);
  EXPECT_NE(text.find("--out VALUE"), std::string::npos);
  EXPECT_NE(text.find("--metrics"), std::string::npos);
  EXPECT_NE(text.find("population"), std::string::npos);
}

}  // namespace
}  // namespace s3::util
