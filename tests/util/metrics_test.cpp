#include "s3/util/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace s3::util {
namespace {

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAllLand) {
  Counter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Timer, RecordAndMean) {
  Timer t;
  EXPECT_DOUBLE_EQ(t.mean_ns(), 0.0);  // no division by zero on empty
  t.record_ns(100);
  t.record_ns(300);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.total_ns(), 400u);
  EXPECT_DOUBLE_EQ(t.mean_ns(), 200.0);
  t.reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.total_ns(), 0u);
}

TEST(Timer, ScopedTimerRecordsOneSample) {
  Timer t;
  { ScopedTimer scope(&t); }
  EXPECT_EQ(t.count(), 1u);
}

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  // Saturates in the last bucket instead of indexing out of range.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordAggregates) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0);
  h.record(3);
  h.record(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(2), 1u);  // value 3
  EXPECT_EQ(h.bucket(4), 1u);  // value 9
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, PercentileSingleValueClampsToMax) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(42);
  // Every rank lands in 42's sub-bucket and the estimate is clamped to
  // the recorded maximum, so all percentiles are exact here.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
}

TEST(Histogram, PercentileUniformWithinSubBucketResolution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  // kSub log-linear sub-buckets bound relative error to ~1/kSub.
  const double tol = 1.5 / static_cast<double>(Histogram::kSub);
  EXPECT_NEAR(h.percentile(50.0), 50000.0, 50000.0 * tol);
  EXPECT_NEAR(h.percentile(95.0), 95000.0, 95000.0 * tol);
  EXPECT_NEAR(h.percentile(99.0), 99000.0, 99000.0 * tol);
  EXPECT_LE(h.percentile(100.0), 100000.0);
}

TEST(Histogram, PercentileIsMonotoneInP) {
  Histogram h;
  for (std::uint64_t v = 0; v < 5000; v += 7) h.record(v * v % 4096);
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev) << "p=" << p;
    prev = q;
  }
  EXPECT_LE(prev, static_cast<double>(h.max()));
}

TEST(Histogram, SnapshotCarriesPercentiles) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("p.lat");
  for (std::uint64_t v = 1; v <= 1000; ++v) h->record(v);
  const std::vector<MetricSample> s = reg.snapshot();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0].p50, 500.0, 500.0 * 0.1);
  EXPECT_NEAR(s[0].p95, 950.0, 950.0 * 0.1);
  EXPECT_NEAR(s[0].p99, 990.0, 990.0 * 0.1);
  EXPECT_LE(s[0].p50, s[0].p95);
  EXPECT_LE(s[0].p95, s[0].p99);
}

TEST(Registry, SameNameSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x.events");
  Counter* b = reg.counter("x.events");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("x.other"), a);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x.thing");
  EXPECT_THROW(reg.timer("x.thing"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x.thing"), std::invalid_argument);
}

TEST(Registry, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("z.last")->add(1);
  reg.timer("a.first")->record_ns(5);
  reg.histogram("m.middle")->record(7);
  const std::vector<MetricSample> s = reg.snapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].name, "a.first");
  EXPECT_EQ(s[0].kind, MetricKind::kTimer);
  EXPECT_EQ(s[1].name, "m.middle");
  EXPECT_EQ(s[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(s[1].max, 7u);
  EXPECT_EQ(s[2].name, "z.last");
  EXPECT_EQ(s[2].count, 1u);
}

TEST(Registry, ResetZeroesButKeepsPointers) {
  MetricsRegistry reg;
  Counter* c = reg.counter("r.count");
  c->add(9);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.counter("r.count"), c);
}

TEST(Registry, DumpRendersOneLinePerMetric) {
  MetricsRegistry reg;
  reg.counter("d.count")->add(3);
  reg.histogram("d.sizes")->record(4);
  std::ostringstream out;
  reg.dump(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("d.count"), std::string::npos);
  EXPECT_NE(text.find("d.sizes"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

class CapturingSink final : public MetricsSink {
 public:
  void write(std::span<const MetricSample> samples) override {
    last.assign(samples.begin(), samples.end());
    ++flushes;
  }
  std::vector<MetricSample> last;
  int flushes = 0;
};

TEST(Registry, FlushPushesSnapshotToSink) {
  MetricsRegistry reg;
  auto sink = std::make_shared<CapturingSink>();
  reg.set_sink(sink);
  reg.counter("f.count")->add(2);
  reg.flush();
  EXPECT_EQ(sink->flushes, 1);
  ASSERT_EQ(sink->last.size(), 1u);
  EXPECT_EQ(sink->last[0].name, "f.count");
  EXPECT_EQ(sink->last[0].count, 2u);
}

TEST(Registry, GlobalBusIsSingleInstance) {
  EXPECT_EQ(&metrics(), &metrics());
}

}  // namespace
}  // namespace s3::util
