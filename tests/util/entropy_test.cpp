#include "s3/util/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "s3/util/rng.h"

namespace s3::util {
namespace {

TEST(Entropy, UniformIsLogN) {
  const std::vector<double> p = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(entropy(p), std::log(4.0), 1e-12);
}

TEST(Entropy, DegenerateIsZero) {
  const std::vector<double> p = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy(p), 0.0);
}

TEST(Entropy, AllZeroIsZero) {
  const std::vector<double> p = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy(p), 0.0);
}

TEST(Entropy, ScaleInvariant) {
  const std::vector<double> p = {1.0, 2.0, 3.0};
  const std::vector<double> q = {10.0, 20.0, 30.0};
  EXPECT_NEAR(entropy(p), entropy(q), 1e-12);
}

TEST(Entropy, RejectsNegativeWeights) {
  const std::vector<double> p = {0.5, -0.5};
  EXPECT_THROW(entropy(p), std::invalid_argument);
}

TEST(JointEntropy, SizeValidation) {
  const std::vector<double> joint = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(joint_entropy(joint, 2, 2), std::log(4.0), 1e-12);
  EXPECT_THROW(joint_entropy(joint, 2, 3), std::invalid_argument);
}

TEST(Quantize, BinAssignment) {
  const std::vector<double> v = {0.0, 0.24, 0.25, 0.5, 0.74, 0.99, 1.0};
  const auto b = quantize(v, 4);
  EXPECT_EQ(b, (std::vector<std::size_t>{0, 0, 1, 2, 2, 3, 3}));
}

TEST(Quantize, ClampsOutOfRange) {
  const std::vector<double> v = {-0.5, 1.5};
  const auto b = quantize(v, 4);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 3u);
}

TEST(MutualInformation, IdenticalSymbolsEqualEntropy) {
  const std::vector<std::size_t> x = {0, 1, 2, 0, 1, 2, 0, 1};
  const double mi = mutual_information(x, x, 3, 3);
  std::vector<double> counts = {3, 3, 2};
  EXPECT_NEAR(mi, entropy(counts), 1e-12);
}

TEST(MutualInformation, IndependentIsNearZero) {
  Rng rng(1);
  std::vector<std::size_t> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.index(4));
    y.push_back(rng.index(4));
  }
  EXPECT_LT(mutual_information(x, y, 4, 4), 0.01);
}

TEST(MutualInformation, NonNegative) {
  Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    std::vector<std::size_t> x, y;
    for (int i = 0; i < 10; ++i) {
      x.push_back(rng.index(3));
      y.push_back(rng.index(3));
    }
    EXPECT_GE(mutual_information(x, y, 3, 3), 0.0);
  }
}

TEST(MutualInformation, Validation) {
  const std::vector<std::size_t> x = {0, 1};
  const std::vector<std::size_t> bad = {0, 5};
  EXPECT_THROW(mutual_information(x, bad, 2, 2), std::invalid_argument);
  const std::vector<std::size_t> shorter = {0};
  EXPECT_THROW(mutual_information(x, shorter, 2, 2), std::invalid_argument);
}

TEST(Nmi, IdenticalProfilesScoreHigh) {
  const std::vector<double> p = {0.4, 0.05, 0.05, 0.1, 0.1, 0.3};
  EXPECT_NEAR(nmi(p, p, 4), 1.0, 1e-9);
}

TEST(Nmi, ZeroProfileIsZero) {
  const std::vector<double> zero(6, 0.0);
  const std::vector<double> p = {1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(nmi(zero, p), 0.0);
}

TEST(Nmi, ScaleInvariantInTotals) {
  const std::vector<double> p = {4.0, 1.0, 0.2, 1.5, 2.0, 3.0};
  std::vector<double> q = p;
  for (double& v : q) v *= 1000.0;  // same distribution, more traffic
  EXPECT_NEAR(nmi(p, q, 4), nmi(p, p, 4), 1e-9);
}

TEST(Nmi, ConvergesWithAveraging) {
  // Cumulative noisy copies of a base profile approach the base, so NMI
  // against the sum should (on average) beat NMI against one noisy day.
  Rng rng(3);
  const std::vector<double> base = {0.35, 0.05, 0.1, 0.15, 0.05, 0.3};
  double one_day = 0.0, twenty_days = 0.0;
  const int trials = 300;
  auto noisy = [&]() {
    std::vector<double> alpha(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) alpha[i] = 6.0 * base[i] + 0.02;
    return rng.dirichlet(alpha);
  };
  for (int t = 0; t < trials; ++t) {
    const std::vector<double> today = noisy();
    one_day += nmi(today, noisy(), 4);
    std::vector<double> sum(base.size(), 0.0);
    for (int d = 0; d < 20; ++d) {
      const auto day = noisy();
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += day[i];
    }
    twenty_days += nmi(today, sum, 4);
  }
  EXPECT_GT(twenty_days / trials, one_day / trials);
}

TEST(Nmi, RejectsLengthMismatch) {
  const std::vector<double> p = {1, 2};
  const std::vector<double> q = {1, 2, 3};
  EXPECT_THROW(nmi(p, q), std::invalid_argument);
}

}  // namespace
}  // namespace s3::util
