#include "s3/util/sim_time.h"

#include <gtest/gtest.h>

namespace s3::util {
namespace {

TEST(SimTime, Constructors) {
  EXPECT_EQ(SimTime::from_seconds(90).seconds(), 90);
  EXPECT_EQ(SimTime::from_minutes(2).seconds(), 120);
  EXPECT_EQ(SimTime::from_hours(1).seconds(), 3600);
  EXPECT_EQ(SimTime::from_days(2).seconds(), 172800);
  EXPECT_EQ(SimTime::at(1, 8, 30, 15).seconds(), 86400 + 8 * 3600 + 30 * 60 + 15);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_hours(2);
  const SimTime b = SimTime::from_minutes(30);
  EXPECT_EQ((a + b).seconds(), 9000);
  EXPECT_EQ((a - b).seconds(), 5400);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.seconds(), 9000);
  c -= a;
  EXPECT_EQ(c.seconds(), 1800);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime(5), SimTime(6));
  EXPECT_EQ(SimTime(5), SimTime(5));
  EXPECT_GE(SimTime(7), SimTime(7));
}

TEST(SimTime, DayAndSecondOfDay) {
  const SimTime t = SimTime::at(3, 14, 25, 9);
  EXPECT_EQ(t.day(), 3);
  EXPECT_EQ(t.second_of_day(), 14 * 3600 + 25 * 60 + 9);
  EXPECT_EQ(t.hour_of_day(), 14);
}

TEST(SimTime, NegativeTimesFloorCorrectly) {
  const SimTime t(-1);  // one second before epoch
  EXPECT_EQ(t.day(), -1);
  EXPECT_EQ(t.second_of_day(), 86399);
}

TEST(SimTime, UnitConversions) {
  const SimTime t = SimTime::from_minutes(90);
  EXPECT_DOUBLE_EQ(t.minutes(), 90.0);
  EXPECT_DOUBLE_EQ(t.hours(), 1.5);
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::at(2, 9, 5, 3).to_string(), "2 09:05:03");
  EXPECT_EQ(SimTime(0).to_string(), "0 00:00:00");
}

TEST(TimeInterval, ContainsHalfOpen) {
  const TimeInterval iv{SimTime(10), SimTime(20)};
  EXPECT_FALSE(iv.contains(SimTime(9)));
  EXPECT_TRUE(iv.contains(SimTime(10)));
  EXPECT_TRUE(iv.contains(SimTime(19)));
  EXPECT_FALSE(iv.contains(SimTime(20)));
  EXPECT_EQ(iv.duration().seconds(), 10);
  EXPECT_FALSE(iv.empty());
}

TEST(TimeInterval, EmptyInterval) {
  const TimeInterval iv{SimTime(5), SimTime(5)};
  EXPECT_TRUE(iv.empty());
  EXPECT_FALSE(iv.contains(SimTime(5)));
}

TEST(TimeInterval, OverlapSeconds) {
  const TimeInterval iv{SimTime(10), SimTime(20)};
  EXPECT_EQ(iv.overlap_seconds(SimTime(0), SimTime(5)), 0);
  EXPECT_EQ(iv.overlap_seconds(SimTime(0), SimTime(15)), 5);
  EXPECT_EQ(iv.overlap_seconds(SimTime(12), SimTime(18)), 6);
  EXPECT_EQ(iv.overlap_seconds(SimTime(15), SimTime(30)), 5);
  EXPECT_EQ(iv.overlap_seconds(SimTime(20), SimTime(30)), 0);
  EXPECT_EQ(iv.overlap_seconds(SimTime(0), SimTime(100)), 10);
}

}  // namespace
}  // namespace s3::util
