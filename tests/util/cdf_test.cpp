#include "s3/util/cdf.h"

#include <gtest/gtest.h>

#include "s3/util/rng.h"

namespace s3::util {
namespace {

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(0.0), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
  EXPECT_THROW(cdf.min(), std::invalid_argument);
  EXPECT_THROW(cdf.max(), std::invalid_argument);
}

TEST(EmpiricalCdf, StepValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);   // P[X <= 1]
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, DuplicatesAccumulate) {
  EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(1.9), 0.0);
}

TEST(EmpiricalCdf, AddKeepsConsistency) {
  EmpiricalCdf cdf;
  cdf.add(3.0);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 1.0);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.5);
  cdf.add_all({0.0, 2.0});
  EXPECT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.min(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
}

TEST(EmpiricalCdf, CurveEndpointsAndMonotonicity) {
  Rng rng(5);
  EmpiricalCdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add(rng.normal(10.0, 2.0));
  const auto pts = cdf.curve(40);
  ASSERT_EQ(pts.size(), 40u);
  EXPECT_DOUBLE_EQ(pts.front().first, cdf.min());
  EXPECT_DOUBLE_EQ(pts.back().first, cdf.max());
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
}

TEST(EmpiricalCdf, CurveRejectsTooFewPoints) {
  EmpiricalCdf cdf({1.0, 2.0});
  EXPECT_THROW(cdf.curve(1), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileInverse) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 30.0);
}

TEST(EmpiricalCdf, SortedSamples) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0});
  const auto s = cdf.sorted_samples();
  EXPECT_EQ(s, (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace s3::util
