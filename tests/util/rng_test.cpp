#include "s3/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace s3::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DeterministicInSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(9);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  // Streams differ from each other.
  bool differ = false;
  for (int i = 0; i < 16 && !differ; ++i) {
    differ = c1.uniform() != c2.uniform();
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformRejectsBadRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(5.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(3, 1), std::invalid_argument);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, NormalZeroStddevIsMean) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, LognormalMeanMatches) {
  // E[lognormal(mu, s)] = exp(mu + s^2/2); with mu = -s^2/2 the mean is 1.
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  const double sigma = 0.5;
  for (int i = 0; i < n; ++i) {
    sum += rng.lognormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ParetoBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(12);
  const std::vector<double> w = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(13);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(14);
  const std::vector<double> alpha = {2.0, 3.0, 5.0};
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> p = rng.dirichlet(alpha);
    ASSERT_EQ(p.size(), 3u);
    const double sum = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double v : p) EXPECT_GE(v, 0.0);
  }
}

TEST(Rng, DirichletMeanMatchesAlpha) {
  Rng rng(15);
  const std::vector<double> alpha = {1.0, 3.0};
  double mean0 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean0 += rng.dirichlet(alpha)[0];
  EXPECT_NEAR(mean0 / n, 0.25, 0.01);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(16);
  for (int trial = 0; trial < 50; ++trial) {
    const auto idx = rng.sample_indices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::size_t i : idx) EXPECT_LT(i, 20u);
  }
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIndicesFullPermutation) {
  Rng rng(17);
  const auto idx = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(18);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// Property sweep: every distribution is deterministic in the seed.
class RngDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDeterminismTest, AllDistributionsReproducible) {
  const std::uint64_t seed = GetParam();
  Rng a(seed), b(seed);
  const std::vector<double> alpha = {1.0, 2.0, 3.0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    EXPECT_DOUBLE_EQ(a.normal(0, 1), b.normal(0, 1));
    EXPECT_DOUBLE_EQ(a.lognormal(0, 1), b.lognormal(0, 1));
    EXPECT_EQ(a.poisson(4.0), b.poisson(4.0));
    EXPECT_EQ(a.dirichlet(alpha), b.dirichlet(alpha));
    EXPECT_EQ(a.sample_indices(30, 5), b.sample_indices(30, 5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDeterminismTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace s3::util
