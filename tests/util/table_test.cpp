#include "s3/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace s3::util {
namespace {

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(CsvEscape, PlainPassthrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable(std::vector<std::string>{}), std::invalid_argument);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  std::istringstream is(s);
  std::string l1, l2, l3, l4;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  std::getline(is, l4);
  // 'v' column starts at the same offset in every row.
  EXPECT_EQ(l1.find('v'), l3.find('1'));
  EXPECT_EQ(l3.find('1'), l4.find('2'));
  EXPECT_EQ(l2.find_first_not_of('-'), std::string::npos);  // rule line
}

TEST(TextTable, DoubleRowsUsePrecision) {
  TextTable t({"a", "b"});
  t.add_numeric_row(std::vector<double>{1.23456, 2.0}, 2);
  const std::string s = t.to_csv();
  EXPECT_NE(s.find("1.23,2.00"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"x", "note"});
  t.add_row({"1", "a,b"});
  EXPECT_EQ(t.to_csv(), "x,note\n1,\"a,b\"\n");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, StreamOperator) {
  TextTable t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace s3::util
