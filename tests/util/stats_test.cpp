#include "s3/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "s3/util/rng.h"

namespace s3::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, MatchesBatchFormulas) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, 3.5, -2.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(3);
  std::vector<double> all;
  RunningStats a, b, whole;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 5.0);
    all.push_back(x);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double m = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), m);
  b.merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), m);
  EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(4);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(BatchStats, EmptyInputs) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(quantile(empty, 0.5), 0.0);
}

TEST(BatchStats, VarianceNeedsTwo) {
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Quantile, KnownValues) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.37), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 7.0);
}

TEST(Quantile, RejectsOutOfRangeQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Pearson, RejectsLengthMismatch) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
}

// Property sweep: quantile is monotone in q and bounded by min/max.
class QuantileMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotoneTest, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(0, 10));
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), *std::max_element(xs.begin(), xs.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace s3::util
