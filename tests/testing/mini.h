// Shared test fixtures: tiny deterministic networks and traces.
#pragma once

#include <vector>

#include "s3/trace/trace.h"
#include "s3/wlan/network.h"

namespace s3::testing {

/// One-building campus with `aps` access points, 20 Mbit/s each.
inline wlan::Network mini_network(std::size_t aps = 4,
                                  std::size_t buildings = 1) {
  wlan::CampusLayout layout;
  layout.num_buildings = buildings;
  layout.aps_per_building = aps;
  return wlan::make_campus(layout);
}

struct SessionSpec {
  UserId user = 0;
  std::int64_t connect_s = 0;
  std::int64_t disconnect_s = 600;
  ApId ap = kInvalidAp;
  double demand_mbps = 1.0;
  BuildingId building = 0;
  double web_bytes = 1000.0;
  GroupId group = kInvalidGroup;
};

inline trace::SessionRecord make_session(const SessionSpec& spec) {
  trace::SessionRecord s;
  s.user = spec.user;
  s.ap = spec.ap;
  s.building = spec.building;
  s.pos = {10.0, 10.0};
  s.connect = util::SimTime(spec.connect_s);
  s.disconnect = util::SimTime(spec.disconnect_s);
  s.demand_mbps = spec.demand_mbps;
  s.traffic[static_cast<std::size_t>(apps::AppCategory::kWeb)] =
      spec.web_bytes;
  s.group = spec.group;
  s.rate_seed = 0x1234 + spec.user;
  return s;
}

inline trace::Trace make_trace(std::size_t num_users,
                               const std::vector<SessionSpec>& specs,
                               std::size_t num_days = 1) {
  std::vector<trace::SessionRecord> sessions;
  sessions.reserve(specs.size());
  for (const SessionSpec& sp : specs) sessions.push_back(make_session(sp));
  return trace::Trace(num_users, num_days, std::move(sessions));
}

}  // namespace s3::testing
