#include "s3/social/graph.h"

#include <gtest/gtest.h>

namespace s3::social {
namespace {

TEST(Bitset, SetResetTest) {
  Bitset b(100);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, FirstBit) {
  Bitset b(130);
  EXPECT_EQ(b.first(), 130u);  // empty -> capacity
  b.set(90);
  b.set(120);
  EXPECT_EQ(b.first(), 90u);
  b.set(5);
  EXPECT_EQ(b.first(), 5u);
}

TEST(Bitset, Intersection) {
  Bitset a(70), b(70);
  a.set(3);
  a.set(65);
  a.set(20);
  b.set(65);
  b.set(20);
  b.set(1);
  const Bitset c = a & b;
  EXPECT_EQ(c.count(), 2u);
  EXPECT_TRUE(c.test(65));
  EXPECT_TRUE(c.test(20));
  EXPECT_FALSE(c.test(3));
}

TEST(Bitset, BoundsChecked) {
  Bitset b(10);
  EXPECT_THROW(b.set(10), std::invalid_argument);
  EXPECT_THROW(b.test(10), std::invalid_argument);
  Bitset other(11);
  EXPECT_THROW(b &= other, std::invalid_argument);
}

TEST(WeightedGraph, EdgesAndWeights) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2, 0.9);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));  // undirected
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_DOUBLE_EQ(g.weight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g.weight(1, 0), 0.5);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(WeightedGraph, RejectsSelfLoopAndBadVertices) {
  WeightedGraph g(3);
  EXPECT_THROW(g.add_edge(1, 1, 0.5), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3, 0.5), std::invalid_argument);
  EXPECT_THROW(g.adjacent(0, 9), std::invalid_argument);
}

TEST(WeightedGraph, InternalWeight) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 0.5);
  g.add_edge(1, 2, 0.9);
  g.add_edge(0, 2, 0.4);
  EXPECT_DOUBLE_EQ(g.internal_weight({0, 1, 2}), 1.8);
  EXPECT_DOUBLE_EQ(g.internal_weight({0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(g.internal_weight({0, 3}), 0.0);
}

TEST(WeightedGraph, IsClique) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  EXPECT_TRUE(g.is_clique({0, 1, 2}));
  EXPECT_TRUE(g.is_clique({0, 1}));
  EXPECT_TRUE(g.is_clique({3}));
  EXPECT_FALSE(g.is_clique({0, 1, 3}));
}

TEST(WeightedGraph, WithoutRemovesAndRemaps) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 0.1);
  g.add_edge(2, 3, 0.2);
  g.add_edge(3, 4, 0.3);
  std::vector<std::size_t> remap;
  const WeightedGraph h = g.without({0, 1}, &remap);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(remap, (std::vector<std::size_t>{2, 3, 4}));
  EXPECT_TRUE(h.adjacent(0, 1));   // old (2,3)
  EXPECT_TRUE(h.adjacent(1, 2));   // old (3,4)
  EXPECT_DOUBLE_EQ(h.weight(1, 2), 0.3);
  EXPECT_EQ(h.num_edges(), 2u);
}

TEST(WeightedGraph, WithoutEverything) {
  WeightedGraph g(2);
  g.add_edge(0, 1, 1.0);
  const WeightedGraph h = g.without({0, 1});
  EXPECT_EQ(h.size(), 0u);
}

TEST(WeightedGraph, NeighborsBitset) {
  WeightedGraph g(4);
  g.add_edge(2, 0, 1.0);
  g.add_edge(2, 3, 1.0);
  const Bitset& n = g.neighbors(2);
  EXPECT_TRUE(n.test(0));
  EXPECT_TRUE(n.test(3));
  EXPECT_FALSE(n.test(1));
  EXPECT_FALSE(n.test(2));
}

}  // namespace
}  // namespace s3::social
