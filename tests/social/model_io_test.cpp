#include "s3/social/model_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "s3/trace/generator.h"
#include "s3/wlan/radio.h"

namespace s3::social {
namespace {

SocialIndexModel sample_model() {
  SocialModelConfig cfg;
  cfg.alpha = 0.25;
  cfg.events.co_leave_window = util::SimTime::from_minutes(5);
  cfg.events.min_encounter_overlap = util::SimTime::from_minutes(10);
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {5, 3, 2};
  stats[UserPair(2, 4)] = {2, 2, 0};
  UserTyping typing;
  typing.num_types = 2;
  typing.type_of_user = {0, 1, 0, 1, 0};
  typing.centroids.assign(2 * apps::kNumCategories, 0.1);
  typing.centroids[0] = 0.5;
  TypeCoLeaveMatrix matrix(2);
  matrix.set(0, 0, 0.6);
  matrix.set(1, 1, 0.4);
  matrix.set(0, 1, 0.1);
  return SocialIndexModel::from_parts(cfg, std::move(stats), std::move(typing),
                                      std::move(matrix));
}

TEST(ModelIo, RoundTripPreservesEverything) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  ASSERT_TRUE(write_model(ss, original));
  const ModelReadResult r = read_model(ss);
  ASSERT_TRUE(r.model.has_value()) << r.error;
  const SocialIndexModel& back = *r.model;

  EXPECT_DOUBLE_EQ(back.alpha(), original.alpha());
  EXPECT_EQ(back.config().events.co_leave_window,
            original.config().events.co_leave_window);
  EXPECT_EQ(back.num_users(), original.num_users());
  EXPECT_EQ(back.typing().num_types, original.typing().num_types);
  EXPECT_EQ(back.typing().type_of_user, original.typing().type_of_user);
  EXPECT_EQ(back.typing().centroids, original.typing().centroids);
  EXPECT_EQ(back.pair_stats().size(), original.pair_stats().size());
  for (UserId u = 0; u < 5; ++u) {
    for (UserId v = u + 1; v < 5; ++v) {
      EXPECT_DOUBLE_EQ(back.theta(u, v), original.theta(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST(ModelIo, RoundTripTrainedModel) {
  trace::GeneratorConfig cfg;
  cfg.seed = 8;
  cfg.num_users = 150;
  cfg.num_days = 6;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  std::vector<ApId> aps;
  wlan::RadioModel radio;
  for (const trace::SessionRecord& s : g.workload.sessions()) {
    aps.push_back(wlan::strongest_ap(g.network, radio, s.building, s.pos));
  }
  const SocialIndexModel trained =
      SocialIndexModel::train(g.workload.with_assignments(aps), {});

  std::stringstream ss;
  ASSERT_TRUE(write_model(ss, trained));
  const ModelReadResult r = read_model(ss);
  ASSERT_TRUE(r.model.has_value()) << r.error;
  EXPECT_EQ(r.model->pair_stats().size(), trained.pair_stats().size());
  // Spot-check thetas.
  for (UserId u = 0; u < 150; u += 17) {
    for (UserId v = u + 1; v < 150; v += 23) {
      EXPECT_DOUBLE_EQ(r.model->theta(u, v), trained.theta(u, v));
    }
  }
}

TEST(ModelIo, TrainedEndSurvivesRoundTrip) {
  SocialModelConfig cfg;
  cfg.trained_end_s = 2 * 86400;
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {5, 3, 2};
  UserTyping typing;
  typing.num_types = 1;
  typing.type_of_user = {0, 0};
  typing.centroids.assign(apps::kNumCategories, 0.1);
  TypeCoLeaveMatrix matrix(1);
  matrix.set(0, 0, 0.5);
  const SocialIndexModel original = SocialIndexModel::from_parts(
      cfg, std::move(stats), std::move(typing), std::move(matrix));

  std::stringstream ss;
  ASSERT_TRUE(write_model(ss, original));
  EXPECT_NE(ss.str().find("trained_end_s 172800"), std::string::npos);
  const ModelReadResult r = read_model(ss);
  ASSERT_TRUE(r.model.has_value()) << r.error;
  EXPECT_EQ(r.model->config().trained_end_s, 2 * 86400);
}

TEST(ModelIo, OmitsUnknownTrainingHorizonForBackCompat) {
  // sample_model() leaves trained_end_s at its default (-1): the line
  // must be absent so pre-existing golden files stay byte-identical,
  // and reading such a file must preserve the "unknown" sentinel.
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  ASSERT_TRUE(write_model(ss, original));
  EXPECT_EQ(ss.str().find("trained_end_s"), std::string::npos);
  const ModelReadResult r = read_model(ss);
  ASSERT_TRUE(r.model.has_value()) << r.error;
  EXPECT_EQ(r.model->config().trained_end_s, -1);
}

TEST(ModelIo, RejectsNegativeTrainedEnd) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  write_model(ss, original);
  std::string text = ss.str();
  const std::size_t pos = text.find("users ");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "trained_end_s -7\n");
  std::stringstream bad(text);
  const ModelReadResult r = read_model(bad);
  EXPECT_FALSE(r.model.has_value());
  EXPECT_NE(r.error.find("trained_end_s"), std::string::npos);
}

TEST(ModelIo, RejectsGarbage) {
  std::stringstream ss("not a model\n");
  const ModelReadResult r = read_model(ss);
  EXPECT_FALSE(r.model.has_value());
  EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(ModelIo, RejectsTruncatedPairList) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  write_model(ss, original);
  std::string text = ss.str();
  text.erase(text.rfind('\n', text.size() - 2));  // drop last pair row
  std::stringstream cut(text);
  const ModelReadResult r = read_model(cut);
  EXPECT_FALSE(r.model.has_value());
}

TEST(ModelIo, RejectsInconsistentCounts) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  write_model(ss, original);
  std::string text = ss.str();
  // Corrupt a pair row: co_leaves > encounters.
  const std::size_t pos = text.find("5 3 2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "2 9 0");
  std::stringstream bad(text);
  const ModelReadResult r = read_model(bad);
  EXPECT_FALSE(r.model.has_value());
  EXPECT_NE(r.error.find("exceed"), std::string::npos);
}

TEST(ModelIo, RejectsUserIdOutOfRange) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  write_model(ss, original);
  std::string text = ss.str();
  const std::size_t pos = text.find("2 4 2 2 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "2 9 2 2 0");  // user 9 > num_users
  std::stringstream bad(text);
  const ModelReadResult r = read_model(bad);
  EXPECT_FALSE(r.model.has_value());
}

TEST(ModelIo, ParseModelFormatVocabulary) {
  EXPECT_EQ(parse_model_format("text"), ModelFormat::kTextV1);
  EXPECT_EQ(parse_model_format("binary"), ModelFormat::kBinaryV1);
  EXPECT_EQ(parse_model_format("auto"), ModelFormat::kAuto);
  EXPECT_FALSE(parse_model_format("csv").has_value());
  EXPECT_FALSE(parse_model_format("").has_value());
}

TEST(ModelIo, BinaryRoundTripPreservesEverything) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  ASSERT_TRUE(write_model_binary(ss, original));
  const ModelReadResult r = read_model_binary(ss);
  ASSERT_TRUE(r.model.has_value()) << r.error;
  const SocialIndexModel& back = *r.model;
  EXPECT_DOUBLE_EQ(back.alpha(), original.alpha());
  EXPECT_EQ(back.num_users(), original.num_users());
  EXPECT_EQ(back.typing().type_of_user, original.typing().type_of_user);
  EXPECT_EQ(back.typing().centroids, original.typing().centroids);
  EXPECT_EQ(back.pair_stats().size(), original.pair_stats().size());
  for (UserId u = 0; u < 5; ++u) {
    for (UserId v = u + 1; v < 5; ++v) {
      // Binary stores the doubles verbatim: exact equality.
      EXPECT_EQ(back.theta(u, v), original.theta(u, v));
    }
  }
}

TEST(ModelIo, BinaryRejectsTruncation) {
  const SocialIndexModel original = sample_model();
  std::stringstream ss;
  ASSERT_TRUE(write_model_binary(ss, original));
  const std::string full = ss.str();
  for (const std::size_t cut : {std::size_t{4}, full.size() / 2,
                                full.size() - 3}) {
    std::stringstream trunc(full.substr(0, cut));
    EXPECT_FALSE(read_model_binary(trunc).model.has_value()) << cut;
  }
}

TEST(ModelIo, SaveLoadDispatchAndAutoSniff) {
  const SocialIndexModel original = sample_model();
  const std::string text_path = ::testing::TempDir() + "/s3lb_fmt.txt";
  const std::string bin_path = ::testing::TempDir() + "/s3lb_fmt.bin";
  ASSERT_TRUE(save_model(text_path, original, ModelFormat::kTextV1));
  ASSERT_TRUE(save_model(bin_path, original, ModelFormat::kBinaryV1));

  // kAuto sniffs either encoding from the leading bytes.
  for (const std::string& path : {text_path, bin_path}) {
    const ModelReadResult r = load_model(path);
    ASSERT_TRUE(r.model.has_value()) << path << ": " << r.error;
    EXPECT_DOUBLE_EQ(r.model->theta(0, 1), original.theta(0, 1)) << path;
  }
  // Concrete formats reject files of the other encoding.
  EXPECT_FALSE(load_model(text_path, ModelFormat::kBinaryV1).model);
  EXPECT_FALSE(load_model(bin_path, ModelFormat::kTextV1).model);
  EXPECT_TRUE(load_model(text_path, ModelFormat::kTextV1).model.has_value());
  EXPECT_TRUE(load_model(bin_path, ModelFormat::kBinaryV1).model.has_value());
  // Saving needs a concrete format.
  EXPECT_THROW(save_model(text_path, original, ModelFormat::kAuto),
               std::invalid_argument);
}

TEST(ModelIo, SerializationIsIdenticalAcrossStorageBackends) {
  // The same logical model assembled through the PairStatsMap overload
  // and through a hand-built PairStore must serialize to identical
  // bytes in both formats — written models depend only on contents,
  // never on hash-table capacity or insertion order.
  const SocialIndexModel via_map = sample_model();

  SocialModelConfig cfg = via_map.config();
  PairStore store;
  // Insert in the opposite order, with extra churn to shift capacity.
  store.assign(UserPair(2, 4), {2, 2, 0});
  for (UserId v = 1; v < 40; ++v) store.upsert(UserPair(50 + v, 200 + v));
  for (UserId v = 1; v < 40; ++v) store.erase(UserPair(50 + v, 200 + v));
  store.assign(UserPair(0, 1), {5, 3, 2});
  const SocialIndexModel via_store = SocialIndexModel::from_parts(
      cfg, std::move(store), via_map.typing(), via_map.type_matrix());

  std::stringstream text_a, text_b, bin_a, bin_b;
  ASSERT_TRUE(write_model(text_a, via_map));
  ASSERT_TRUE(write_model(text_b, via_store));
  EXPECT_EQ(text_a.str(), text_b.str());
  ASSERT_TRUE(write_model_binary(bin_a, via_map));
  ASSERT_TRUE(write_model_binary(bin_b, via_store));
  EXPECT_EQ(bin_a.str(), bin_b.str());
}

TEST(ModelIo, BinaryRoundTripTrainedModelAcrossFormats) {
  trace::GeneratorConfig cfg;
  cfg.seed = 13;
  cfg.num_users = 120;
  cfg.num_days = 5;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  std::vector<ApId> aps;
  wlan::RadioModel radio;
  for (const trace::SessionRecord& s : g.workload.sessions()) {
    aps.push_back(wlan::strongest_ap(g.network, radio, s.building, s.pos));
  }
  const SocialIndexModel trained =
      SocialIndexModel::train(g.workload.with_assignments(aps), {});

  // text -> model -> binary -> model: every theta must survive both
  // hops exactly (text rounds through max_digits10, binary verbatim).
  std::stringstream text;
  ASSERT_TRUE(write_model(text, trained));
  const ModelReadResult via_text = read_model(text);
  ASSERT_TRUE(via_text.model.has_value()) << via_text.error;
  std::stringstream bin;
  ASSERT_TRUE(write_model_binary(bin, *via_text.model));
  const ModelReadResult via_bin = read_model_binary(bin);
  ASSERT_TRUE(via_bin.model.has_value()) << via_bin.error;
  EXPECT_EQ(via_bin.model->pair_stats().size(), trained.pair_stats().size());
  for (UserId u = 0; u < 120; u += 7) {
    for (UserId v = u + 1; v < 120; v += 11) {
      EXPECT_EQ(via_bin.model->theta(u, v), via_text.model->theta(u, v));
    }
  }
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/s3lb_model.txt";
  const SocialIndexModel original = sample_model();
  ASSERT_TRUE(write_model_file(path, original));
  const ModelReadResult r = read_model_file(path);
  ASSERT_TRUE(r.model.has_value()) << r.error;
  EXPECT_DOUBLE_EQ(r.model->theta(0, 1), original.theta(0, 1));
  EXPECT_FALSE(read_model_file("/nonexistent/model.txt").model.has_value());
}

}  // namespace
}  // namespace s3::social
