#include "s3/social/typing.h"

#include <gtest/gtest.h>

#include "s3/util/rng.h"

namespace s3::social {
namespace {

/// Users drawn from `k` sharply different app-mix archetypes.
std::vector<apps::AppMix> typed_profiles(std::size_t per_type,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  const std::array<apps::AppMix, 3> archetypes = {{
      {0.8, 0.05, 0.05, 0.02, 0.03, 0.05},
      {0.05, 0.8, 0.05, 0.02, 0.03, 0.05},
      {0.05, 0.05, 0.05, 0.02, 0.03, 0.8},
  }};
  std::vector<apps::AppMix> out;
  for (const apps::AppMix& a : archetypes) {
    for (std::size_t i = 0; i < per_type; ++i) {
      apps::AppMix m{};
      for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
        m[c] = std::max(0.0, a[c] + rng.normal(0.0, 0.02)) * 1000.0;
      }
      out.push_back(m);
    }
  }
  return out;
}

TEST(ClusterUsers, RecoversTypes) {
  const auto profiles = typed_profiles(40, 1);
  UserTypingConfig cfg;
  cfg.k = 3;
  const UserTyping typing = cluster_users(profiles, cfg);
  EXPECT_EQ(typing.num_types, 3u);
  ASSERT_EQ(typing.type_of_user.size(), 120u);
  // Users of the same archetype share a type.
  for (std::size_t t = 0; t < 3; ++t) {
    const std::size_t first = typing.type_of_user[t * 40];
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(typing.type_of_user[t * 40 + i], first);
    }
  }
  // And the three archetypes get distinct types.
  EXPECT_NE(typing.type_of_user[0], typing.type_of_user[40]);
  EXPECT_NE(typing.type_of_user[40], typing.type_of_user[80]);
}

TEST(ClusterUsers, AutoKViaGapStatistic) {
  const auto profiles = typed_profiles(50, 2);
  UserTypingConfig cfg;
  cfg.k = 0;  // auto
  cfg.max_k_for_gap = 6;
  const UserTyping typing = cluster_users(profiles, cfg);
  EXPECT_EQ(typing.num_types, 3u);
}

TEST(ClusterUsers, InactiveUsersGetStableType) {
  auto profiles = typed_profiles(20, 3);
  profiles.push_back(apps::AppMix{});  // silent user
  UserTypingConfig cfg;
  cfg.k = 3;
  const UserTyping typing = cluster_users(profiles, cfg);
  EXPECT_LT(typing.type_of_user.back(), 3u);
}

TEST(ClusterUsers, Validation) {
  EXPECT_THROW(cluster_users({}, {}), std::invalid_argument);
  std::vector<apps::AppMix> all_zero(5);
  EXPECT_THROW(cluster_users(all_zero, {}), std::invalid_argument);
}

TEST(ClusterUsers, CentroidAccessors) {
  const auto profiles = typed_profiles(30, 4);
  UserTypingConfig cfg;
  cfg.k = 3;
  const UserTyping typing = cluster_users(profiles, cfg);
  for (std::size_t t = 0; t < 3; ++t) {
    const auto c = typing.centroid(t);
    EXPECT_EQ(c.size(), apps::kNumCategories);
    double sum = 0.0;
    for (double v : c) sum += v;
    EXPECT_NEAR(sum, 1.0, 0.05);  // centroids of normalized profiles
  }
  EXPECT_THROW(typing.centroid(3), std::invalid_argument);
  EXPECT_THROW(typing.type(9999), std::invalid_argument);
}

TEST(TypeCoLeaveMatrix, SymmetricSetGet) {
  TypeCoLeaveMatrix m(3);
  m.set(0, 1, 0.4);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.4);
  EXPECT_THROW(m.at(3, 0), std::invalid_argument);
  EXPECT_THROW(m.set(0, 3, 0.1), std::invalid_argument);
}

TEST(TypeCoLeaveMatrix, DiagonalDominance) {
  TypeCoLeaveMatrix m(2);
  m.set(0, 0, 0.6);
  m.set(1, 1, 0.5);
  m.set(0, 1, 0.2);
  EXPECT_NEAR(m.diagonal_dominance(), 0.55 - 0.2, 1e-12);
  const TypeCoLeaveMatrix tiny(1);
  EXPECT_DOUBLE_EQ(tiny.diagonal_dominance(), 0.0);
}

TEST(EstimateTypeMatrix, RatiosFromPairStats) {
  UserTyping typing;
  typing.num_types = 2;
  typing.type_of_user = {0, 0, 1, 1};
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {/*encounters=*/4, /*co_leaves=*/3, 0};   // type 0-0
  stats[UserPair(2, 3)] = {/*encounters=*/2, /*co_leaves=*/1, 0};   // type 1-1
  stats[UserPair(0, 2)] = {/*encounters=*/5, /*co_leaves=*/1, 0};   // type 0-1
  stats[UserPair(1, 3)] = {/*encounters=*/5, /*co_leaves=*/0, 0};   // type 0-1
  const TypeCoLeaveMatrix m = estimate_type_matrix(typing, stats);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.1);  // (1+0)/(5+5)
  EXPECT_GT(m.diagonal_dominance(), 0.0);
}

TEST(EstimateTypeMatrix, NoEncountersGivesZero) {
  UserTyping typing;
  typing.num_types = 2;
  typing.type_of_user = {0, 1};
  const TypeCoLeaveMatrix m =
      estimate_type_matrix(typing, analysis::PairStatsMap{});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

}  // namespace
}  // namespace s3::social
