#include "s3/social/pair_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>

namespace s3::social {
namespace {

using Stats = PairStore::Stats;

UserPair random_pair(std::mt19937_64& rng, UserId universe) {
  std::uniform_int_distribution<UserId> pick(0, universe - 1);
  UserId a = pick(rng);
  UserId b = pick(rng);
  while (b == a) b = pick(rng);
  return UserPair(a, b);
}

TEST(PairStore, PackUnpackRoundTrip) {
  const UserPair p(3, 0x7fffffffu);
  EXPECT_EQ(PairStore::unpack(PairStore::pack(p)), p);
  EXPECT_EQ(PairStore::pack(UserPair(0, 1)), 1u);
}

TEST(PairStore, EmptyTableBehaves) {
  PairStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.capacity(), 0u);
  EXPECT_EQ(store.find(UserPair(0, 1)), nullptr);
  EXPECT_FALSE(store.erase(UserPair(0, 1)));
  EXPECT_EQ(store.begin(), store.end());
  std::size_t visited = 0;
  store.for_each([&](UserPair, const Stats&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(PairStore, UpsertFindEraseBasics) {
  PairStore store;
  Stats& s = store.upsert(UserPair(1, 2));
  s.encounters = 7;
  s.co_leaves = 3;
  EXPECT_EQ(store.size(), 1u);
  const Stats* found = store.find(UserPair(2, 1));  // canonical order
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->encounters, 7u);
  EXPECT_TRUE(store.erase(UserPair(1, 2)));
  EXPECT_EQ(store.find(UserPair(1, 2)), nullptr);
  EXPECT_TRUE(store.empty());
}

TEST(PairStore, AssignReportsNewVsOverwrite) {
  PairStore store;
  EXPECT_TRUE(store.assign(UserPair(0, 1), {1, 1, 0}));
  EXPECT_FALSE(store.assign(UserPair(0, 1), {9, 2, 0}));
  EXPECT_EQ(store.find(UserPair(0, 1))->encounters, 9u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(PairStore, GrowsThroughRehashesKeepingEntries) {
  PairStore store;
  // Far past kMinCapacity so several rehashes happen.
  for (UserId v = 1; v <= 3000; ++v) {
    store.upsert(UserPair(0, v)).encounters = v;
  }
  EXPECT_EQ(store.size(), 3000u);
  // Power-of-two capacity with headroom.
  EXPECT_EQ(store.capacity() & (store.capacity() - 1), 0u);
  EXPECT_GT(store.capacity(), store.size());
  for (UserId v = 1; v <= 3000; ++v) {
    const Stats* s = store.find(UserPair(0, v));
    ASSERT_NE(s, nullptr) << v;
    EXPECT_EQ(s->encounters, v);
  }
}

TEST(PairStore, RandomizedDifferentialAgainstUnorderedMap) {
  // 1e5 random upsert/assign/erase/find operations over a small id
  // universe (forcing dense collision chains and backward-shift
  // deletions), mirrored into the reference std::unordered_map. The
  // two backends must agree after every mutation batch and at the end.
  std::mt19937_64 rng(20260805);
  PairStore store;
  analysis::PairStatsMap reference;
  constexpr UserId kUniverse = 64;  // ~2016 distinct pairs
  constexpr std::size_t kOps = 100'000;
  std::uniform_int_distribution<int> op(0, 9);
  for (std::size_t i = 0; i < kOps; ++i) {
    const UserPair p = random_pair(rng, kUniverse);
    switch (op(rng)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // upsert + bump
        Stats& s = store.upsert(p);
        Stats& r = reference[p];
        ++s.encounters;
        ++r.encounters;
        break;
      }
      case 4:
      case 5: {  // co-leave bump through upsert
        Stats& s = store.upsert(p);
        Stats& r = reference[p];
        ++s.co_leaves;
        ++r.co_leaves;
        break;
      }
      case 6: {  // assign (overwrite)
        const Stats fresh{static_cast<std::uint32_t>(i % 97), 0, 1};
        store.assign(p, fresh);
        reference[p] = fresh;
        break;
      }
      case 7:
      case 8: {  // erase
        const bool a = store.erase(p);
        const bool b = reference.erase(p) > 0;
        ASSERT_EQ(a, b) << "op " << i;
        break;
      }
      default: {  // find
        const Stats* s = store.find(p);
        const auto it = reference.find(p);
        ASSERT_EQ(s != nullptr, it != reference.end()) << "op " << i;
        if (s != nullptr) {
          ASSERT_EQ(s->encounters, it->second.encounters) << "op " << i;
          ASSERT_EQ(s->co_leaves, it->second.co_leaves) << "op " << i;
        }
        break;
      }
    }
    if (i % 10'000 == 0) {
      ASSERT_EQ(store.size(), reference.size()) << "op " << i;
    }
  }
  // Full-state equivalence both directions.
  ASSERT_EQ(store.size(), reference.size());
  store.for_each([&](UserPair p, const Stats& s) {
    const auto it = reference.find(p);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(s.encounters, it->second.encounters);
    EXPECT_EQ(s.co_leaves, it->second.co_leaves);
    EXPECT_EQ(s.co_comings, it->second.co_comings);
  });
  for (const auto& [p, r] : reference) {
    const Stats* s = store.find(p);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->encounters, r.encounters);
  }
}

TEST(PairStore, SortedEntriesAreCanonicallyOrdered) {
  std::mt19937_64 rng(7);
  PairStore store;
  for (int i = 0; i < 500; ++i) {
    store.upsert(random_pair(rng, 40)).encounters = 1;
  }
  const std::vector<PairStore::Entry> entries = store.sorted_entries();
  EXPECT_EQ(entries.size(), store.size());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const UserPair& a = entries[i - 1].pair;
    const UserPair& b = entries[i].pair;
    EXPECT_TRUE(a.a < b.a || (a.a == b.a && a.b < b.b));
  }
}

TEST(PairStore, MapConversionsRoundTrip) {
  std::mt19937_64 rng(11);
  analysis::PairStatsMap map;
  for (int i = 0; i < 800; ++i) {
    map[random_pair(rng, 60)] = {static_cast<std::uint32_t>(i), 2, 1};
  }
  const PairStore store = PairStore::from_map(map);
  EXPECT_EQ(store.size(), map.size());
  const analysis::PairStatsMap back = store.to_map();
  EXPECT_EQ(back.size(), map.size());
  for (const auto& [p, s] : map) {
    const auto it = back.find(p);
    ASSERT_NE(it, back.end());
    EXPECT_EQ(it->second.encounters, s.encounters);
  }
}

TEST(PairStore, RangeForIterationMatchesForEach) {
  std::mt19937_64 rng(3);
  PairStore store;
  for (int i = 0; i < 200; ++i) store.upsert(random_pair(rng, 30));
  std::vector<UserPair> via_for_each;
  store.for_each(
      [&](UserPair p, const Stats&) { via_for_each.push_back(p); });
  std::vector<UserPair> via_range;
  for (const auto& [pair, stats] : store) {
    via_range.push_back(pair);
    (void)stats;
  }
  EXPECT_EQ(via_range, via_for_each);  // same slot order
}

TEST(PairStore, NeighborIndexListsSortedPartners) {
  PairStore store;
  store.upsert(UserPair(0, 3)).encounters = 1;
  store.upsert(UserPair(0, 1)).encounters = 2;
  store.upsert(UserPair(2, 3)).encounters = 3;
  EXPECT_FALSE(store.has_neighbor_index());
  store.build_neighbor_index(5);
  ASSERT_TRUE(store.has_neighbor_index());

  const std::span<const UserId> n0 = store.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 3u);
  EXPECT_TRUE(store.neighbors(4).empty());

  // neighbor_slots parallels neighbors: slot -> the pair's counters.
  const std::span<const std::uint32_t> s3v = store.neighbor_slots(3);
  const std::span<const UserId> n3 = store.neighbors(3);
  ASSERT_EQ(s3v.size(), n3.size());
  for (std::size_t i = 0; i < n3.size(); ++i) {
    const Stats* direct = store.find(UserPair(3, n3[i]));
    ASSERT_NE(direct, nullptr);
    EXPECT_EQ(&store.stats_at(s3v[i]), direct);
  }
}

TEST(PairStore, NeighborIndexMatchesBruteForceOnRandomTable) {
  std::mt19937_64 rng(17);
  PairStore store;
  constexpr UserId kUsers = 50;
  for (int i = 0; i < 400; ++i) store.upsert(random_pair(rng, kUsers));
  store.build_neighbor_index(kUsers);
  for (UserId u = 0; u < kUsers; ++u) {
    std::vector<UserId> expected;
    store.for_each([&](UserPair p, const Stats&) {
      if (p.a == u) expected.push_back(p.b);
      if (p.b == u) expected.push_back(p.a);
    });
    std::sort(expected.begin(), expected.end());
    const std::span<const UserId> got = store.neighbors(u);
    ASSERT_EQ(got.size(), expected.size()) << "u=" << u;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
  }
}

TEST(PairStore, MutationInvalidatesNeighborIndex) {
  PairStore store;
  store.upsert(UserPair(0, 1));
  store.build_neighbor_index(2);
  EXPECT_TRUE(store.has_neighbor_index());
  ++store.upsert(UserPair(0, 1)).encounters;  // existing pair: index kept
  EXPECT_TRUE(store.has_neighbor_index());
  store.upsert(UserPair(0, 2));  // fresh pair: dropped
  EXPECT_FALSE(store.has_neighbor_index());

  store.build_neighbor_index(3);
  store.erase(UserPair(0, 2));
  EXPECT_FALSE(store.has_neighbor_index());
  EXPECT_THROW(store.neighbors(0), std::invalid_argument);
}

TEST(PairStore, ReservePreventsRehash) {
  PairStore store;
  store.reserve(1000);
  const std::size_t cap = store.capacity();
  for (UserId v = 1; v <= 1000; ++v) store.upsert(UserPair(0, v));
  EXPECT_EQ(store.capacity(), cap);
}

TEST(PairStore, ClearResetsEverything) {
  PairStore store;
  store.upsert(UserPair(0, 1));
  store.build_neighbor_index(2);
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.capacity(), 0u);
  EXPECT_FALSE(store.has_neighbor_index());
  EXPECT_EQ(store.find(UserPair(0, 1)), nullptr);
}

}  // namespace
}  // namespace s3::social
