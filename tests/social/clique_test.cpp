#include "s3/social/clique.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "s3/util/metrics.h"
#include "s3/util/rng.h"

namespace s3::social {
namespace {

/// Exhaustive maximum-clique for cross-checking (n <= ~20).
std::size_t brute_force_max_clique_size(const WeightedGraph& g) {
  const std::size_t n = g.size();
  std::size_t best = 0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<std::size_t> vs;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) vs.push_back(v);
    }
    if (vs.size() > best && g.is_clique(vs)) best = vs.size();
  }
  return best;
}

WeightedGraph random_graph(std::size_t n, double p, util::Rng& rng) {
  WeightedGraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) g.add_edge(i, j, rng.uniform(0.1, 1.0));
    }
  }
  return g;
}

TEST(MaxClique, EmptyGraph) {
  const CliqueResult r = max_clique(WeightedGraph(0));
  EXPECT_TRUE(r.vertices.empty());
  EXPECT_TRUE(r.exact);
}

TEST(MaxClique, SingleVertex) {
  const CliqueResult r = max_clique(WeightedGraph(1));
  EXPECT_EQ(r.vertices, (std::vector<std::size_t>{0}));
}

TEST(MaxClique, NoEdgesGivesSingleton) {
  const CliqueResult r = max_clique(WeightedGraph(5));
  EXPECT_EQ(r.vertices.size(), 1u);
}

TEST(MaxClique, Triangle) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const CliqueResult r = max_clique(g);
  EXPECT_EQ(r.vertices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(r.internal_weight, 3.0);
}

TEST(MaxClique, CompleteGraph) {
  WeightedGraph g(8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) g.add_edge(i, j, 0.5);
  }
  const CliqueResult r = max_clique(g);
  EXPECT_EQ(r.vertices.size(), 8u);
  EXPECT_TRUE(r.exact);
}

TEST(MaxClique, StarGraphGivesPair) {
  WeightedGraph g(6);
  for (std::size_t leaf = 1; leaf < 6; ++leaf) g.add_edge(0, leaf, 1.0);
  const CliqueResult r = max_clique(g);
  EXPECT_EQ(r.vertices.size(), 2u);
}

TEST(MaxClique, WeightTieBreakPicksHeavier) {
  // Two disjoint triangles; the second is heavier.
  WeightedGraph g(6);
  g.add_edge(0, 1, 0.1);
  g.add_edge(1, 2, 0.1);
  g.add_edge(0, 2, 0.1);
  g.add_edge(3, 4, 0.9);
  g.add_edge(4, 5, 0.9);
  g.add_edge(3, 5, 0.9);
  CliqueConfig cfg;
  cfg.weight_tie_break = true;
  const CliqueResult r = max_clique(g, cfg);
  EXPECT_EQ(r.vertices, (std::vector<std::size_t>{3, 4, 5}));
  EXPECT_NEAR(r.internal_weight, 2.7, 1e-12);
}

TEST(MaxClique, MatchesBruteForceOnRandomGraphs) {
  util::Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 4 + rng.index(12);
    const double p = rng.uniform(0.2, 0.8);
    const WeightedGraph g = random_graph(n, p, rng);
    const CliqueResult r = max_clique(g);
    ASSERT_TRUE(r.exact);
    EXPECT_TRUE(g.is_clique(r.vertices));
    EXPECT_EQ(r.vertices.size(), brute_force_max_clique_size(g))
        << "n=" << n << " p=" << p << " trial=" << trial;
  }
}

TEST(MaxClique, ResultIsAlwaysAClique) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const WeightedGraph g = random_graph(30, 0.5, rng);
    const CliqueResult r = max_clique(g);
    EXPECT_TRUE(g.is_clique(r.vertices));
    EXPECT_NEAR(r.internal_weight, g.internal_weight(r.vertices), 1e-9);
  }
}

TEST(MaxClique, NodeBudgetFallsBackGracefully) {
  util::Rng rng(9);
  const WeightedGraph g = random_graph(40, 0.7, rng);
  CliqueConfig cfg;
  cfg.node_budget = 50;  // absurdly small
  const CliqueResult r = max_clique(g, cfg);
  EXPECT_FALSE(r.exact);
  EXPECT_FALSE(r.vertices.empty());
  EXPECT_TRUE(g.is_clique(r.vertices));
}

TEST(MaxClique, BudgetExhaustionBumpsTheMetricsCounter) {
  util::Rng rng(9);
  const WeightedGraph g = random_graph(40, 0.7, rng);
  CliqueConfig cfg;
  cfg.node_budget = 50;
  util::metrics().reset();
  (void)max_clique(g, cfg);
  std::uint64_t exhausted = 0;
  for (const util::MetricSample& s : util::metrics().snapshot()) {
    if (s.name == "social.clique_budget_exhausted") exhausted = s.count;
  }
  EXPECT_EQ(exhausted, 1u);
}

TEST(GreedyColoring, ProperColoring) {
  util::Rng rng(5);
  const WeightedGraph g = random_graph(25, 0.4, rng);
  const auto color = greedy_coloring(g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t j = i + 1; j < g.size(); ++j) {
      if (g.adjacent(i, j)) {
        EXPECT_NE(color[i], color[j]);
      }
    }
  }
}

TEST(GreedyColoring, CompleteGraphUsesNColors) {
  WeightedGraph g(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) g.add_edge(i, j, 1.0);
  }
  const auto color = greedy_coloring(g);
  std::set<std::size_t> used(color.begin(), color.end());
  EXPECT_EQ(used.size(), 5u);
}

TEST(CliqueCover, PartitionsAllVertices) {
  util::Rng rng(11);
  const WeightedGraph g = random_graph(20, 0.4, rng);
  const auto cover = clique_cover(g).cliques;
  std::vector<bool> seen(20, false);
  for (const auto& clique : cover) {
    EXPECT_TRUE(g.is_clique(clique));
    for (std::size_t v : clique) {
      EXPECT_FALSE(seen[v]) << "vertex covered twice";
      seen[v] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(CliqueCover, ExtractionOrderIsNonIncreasingSize) {
  util::Rng rng(13);
  const WeightedGraph g = random_graph(24, 0.5, rng);
  const auto cover = clique_cover(g).cliques;
  for (std::size_t i = 1; i < cover.size(); ++i) {
    EXPECT_LE(cover[i].size(), cover[i - 1].size());
  }
}

TEST(CliqueCover, TwoTrianglesAndIsolated) {
  WeightedGraph g(7);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(4, 5, 2.0);
  g.add_edge(3, 5, 2.0);
  const auto cover = clique_cover(g).cliques;
  ASSERT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover[0], (std::vector<std::size_t>{3, 4, 5}));  // heavier first
  EXPECT_EQ(cover[1], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(cover[2], (std::vector<std::size_t>{6}));
}

TEST(CliqueCover, EmptyGraph) {
  EXPECT_TRUE(clique_cover(WeightedGraph(0)).cliques.empty());
}

TEST(CliqueCover, AllIsolatedVertices) {
  const auto cover = clique_cover(WeightedGraph(4)).cliques;
  EXPECT_EQ(cover.size(), 4u);
  for (const auto& c : cover) EXPECT_EQ(c.size(), 1u);
}

TEST(GreedyClique, EmptyAndTrivial) {
  EXPECT_TRUE(greedy_clique(WeightedGraph(0)).vertices.empty());
  EXPECT_EQ(greedy_clique(WeightedGraph(1)).vertices.size(), 1u);
  EXPECT_EQ(greedy_clique(WeightedGraph(4)).vertices.size(), 1u);  // no edges
}

TEST(GreedyClique, FindsTheObviousClique) {
  WeightedGraph g(6);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) g.add_edge(i, j, 1.0);
  }
  g.add_edge(4, 5, 1.0);
  const CliqueResult r = greedy_clique(g);
  EXPECT_EQ(r.vertices, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_FALSE(r.exact);
}

TEST(GreedyClique, AlwaysACliqueNeverLargerThanExact) {
  util::Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 6 + rng.index(30);
    const WeightedGraph g = random_graph(n, rng.uniform(0.2, 0.7), rng);
    const CliqueResult greedy = greedy_clique(g);
    EXPECT_TRUE(g.is_clique(greedy.vertices));
    EXPECT_FALSE(greedy.vertices.empty());
    const CliqueResult exact = max_clique(g);
    EXPECT_LE(greedy.vertices.size(), exact.vertices.size());
  }
}

TEST(GreedyClique, ResultIsMaximal) {
  // No vertex outside the greedy clique is adjacent to all of it.
  util::Rng rng(23);
  const WeightedGraph g = random_graph(25, 0.5, rng);
  const CliqueResult r = greedy_clique(g);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (std::find(r.vertices.begin(), r.vertices.end(), v) !=
        r.vertices.end()) {
      continue;
    }
    bool adjacent_to_all = true;
    for (std::size_t u : r.vertices) {
      if (!g.adjacent(u, v)) {
        adjacent_to_all = false;
        break;
      }
    }
    EXPECT_FALSE(adjacent_to_all) << "greedy clique not maximal at " << v;
  }
}

// Property sweep across densities: solver exactness and cover sanity.
class CliquePropertyTest
    : public ::testing::TestWithParam<std::pair<std::size_t, double>> {};

TEST_P(CliquePropertyTest, ExactAndConsistent) {
  const auto [n, p] = GetParam();
  util::Rng rng(n * 1000 + static_cast<std::uint64_t>(p * 100));
  const WeightedGraph g = random_graph(n, p, rng);
  const CliqueResult r = max_clique(g);
  EXPECT_TRUE(r.exact);
  EXPECT_TRUE(g.is_clique(r.vertices));
  if (n <= 16) {
    EXPECT_EQ(r.vertices.size(), brute_force_max_clique_size(g));
  }
  const auto cover = clique_cover(g).cliques;
  std::size_t covered = 0;
  for (const auto& c : cover) covered += c.size();
  EXPECT_EQ(covered, n);
  EXPECT_EQ(cover.front().size(), r.vertices.size());
}

INSTANTIATE_TEST_SUITE_P(
    Densities, CliquePropertyTest,
    ::testing::Values(std::pair<std::size_t, double>{8, 0.2},
                      std::pair<std::size_t, double>{12, 0.5},
                      std::pair<std::size_t, double>{16, 0.8},
                      std::pair<std::size_t, double>{32, 0.3},
                      std::pair<std::size_t, double>{48, 0.15}));

}  // namespace
}  // namespace s3::social
