#include "s3/social/clique_maintainer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "s3/check/validators.h"
#include "s3/core/evaluation.h"
#include "s3/core/online_s3.h"
#include "s3/core/selector_factory.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "s3/util/rng.h"

namespace s3::social {
namespace {

/// Both assemblies must agree bit for bit — clique lists, exactness,
/// and the search-tree size — or the incremental bookkeeping diverged.
void expect_bitwise_equal(const CliqueCoverResult& a,
                          const CliqueCoverResult& b) {
  ASSERT_EQ(a.cliques, b.cliques);
  ASSERT_EQ(a.exact, b.exact);
  ASSERT_EQ(a.nodes_explored, b.nodes_explored);
}

/// The maintainer's edge set as a dense graph over all users, for
/// feeding check::validate_clique_cover.
WeightedGraph dense_view(const CliqueMaintainer& m) {
  WeightedGraph g(m.num_users());
  for (UserId u = 0; u < m.num_users(); ++u) {
    for (const CliqueMaintainer::Neighbor& nb : m.neighbors(u)) {
      if (nb.id > u) g.add_edge(u, nb.id, nb.weight);
    }
  }
  return g;
}

// --- randomized differential suite ----------------------------------

/// 1e5 seeded insert/delete/re-weight ops with community structure
/// (intra-community pairs are favored, so components merge and split
/// constantly). The cover is compared bitwise against the cache-free
/// from-scratch solve at regular intervals, and validated as an exact
/// partition (including the stale-cover rule) at the end.
TEST(CliqueMaintainer, RandomChurnMatchesFromScratch) {
  constexpr std::size_t kUsers = 48;
  constexpr std::size_t kCommunity = 6;
  constexpr std::size_t kOps = 100000;
  CliqueMaintainerConfig cfg;
  cfg.theta_threshold = 0.3;
  CliqueMaintainer m(kUsers, cfg);
  util::Rng rng(20130708);  // ICDCS'13 vintage

  const auto random_pair = [&](UserId& u, UserId& v) {
    if (rng.bernoulli(0.8)) {
      // Intra-community: dense, clique-friendly neighborhoods.
      const std::size_t c = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kUsers / kCommunity) - 1));
      u = static_cast<UserId>(c * kCommunity +
                              static_cast<std::size_t>(rng.uniform_int(
                                  0, static_cast<std::int64_t>(kCommunity) - 1)));
      do {
        v = static_cast<UserId>(
            c * kCommunity +
            static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(kCommunity) - 1)));
      } while (v == u);
    } else {
      // Cross-community bridges: merge, then (on decay) split again.
      u = static_cast<UserId>(rng.uniform_int(0, kUsers - 1));
      do {
        v = static_cast<UserId>(rng.uniform_int(0, kUsers - 1));
      } while (v == u);
    }
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    UserId u = 0;
    UserId v = 0;
    random_pair(u, v);
    // Uniform over [0, 0.6): roughly half the writes land above the
    // 0.3 threshold, so inserts, deletes, and re-weights all flow.
    m.set_theta(u, v, rng.uniform(0.0, 0.6));
    if (op % 977 == 0 || op + 1 == kOps) {
      expect_bitwise_equal(m.cover(), m.solve_from_scratch());
    }
  }

  // The churn must actually have exercised every structural path.
  const CliqueMaintainerStats& st = m.stats();
  EXPECT_GT(st.edges_inserted, 0u);
  EXPECT_GT(st.edges_removed, 0u);
  EXPECT_GT(st.edges_reweighted, 0u);
  EXPECT_GT(st.component_merges, 0u);
  EXPECT_GT(st.component_splits, 0u);

  // Carve community 0 out of the graph entirely — its six users become
  // isolated singleton components next to the (densely connected)
  // remainder — then touch only the remainder: the singletons must be
  // served from cache.
  for (UserId u = 0; u < kCommunity; ++u) {
    for (UserId v = 0; v < kUsers; ++v) {
      if (v != u) m.set_theta(u, v, 0.0);
    }
  }
  expect_bitwise_equal(m.cover(), m.solve_from_scratch());
  const std::uint64_t reused_before = m.stats().components_reused;
  m.set_theta(static_cast<UserId>(kCommunity),
              static_cast<UserId>(kCommunity + 1), 0.99);
  expect_bitwise_equal(m.cover(), m.solve_from_scratch());
  EXPECT_GT(m.stats().components_reused, reused_before);

  // The final cover is a valid, non-stale partition of the edge set.
  const CliqueCoverResult& final_cover = m.cover();
  EXPECT_TRUE(
      check::validate_clique_cover(dense_view(m), final_cover.cliques).ok());
}

TEST(CliqueMaintainer, ExactEqualReweightLeavesEverythingClean) {
  CliqueMaintainer m(4);
  m.set_theta(0, 1, 0.9);
  m.set_theta(2, 3, 0.8);
  m.cover();
  const std::uint64_t version = m.cover_version();
  m.set_theta(0, 1, 0.9);  // bitwise-identical θ: must be a no-op
  EXPECT_EQ(m.dirty_components(), 0u);
  m.cover();
  EXPECT_EQ(m.cover_version(), version);
  EXPECT_EQ(m.stats().edges_reweighted, 0u);
}

TEST(CliqueMaintainer, CleanComponentsAreServedFromCache) {
  CliqueMaintainer m(6);
  m.set_theta(0, 1, 0.9);
  m.set_theta(2, 3, 0.8);
  m.set_theta(4, 5, 0.7);
  m.cover();
  m.set_theta(0, 1, 0.95);  // only {0, 1} goes dirty
  const std::uint64_t solved_before = m.stats().components_solved;
  const std::uint64_t reused_before = m.stats().components_reused;
  expect_bitwise_equal(m.cover(), m.solve_from_scratch());
  EXPECT_EQ(m.stats().components_solved - solved_before, 1u);
  EXPECT_EQ(m.stats().components_reused - reused_before, 2u);
}

// --- ThetaDelta sync paths ------------------------------------------

TEST(CliqueMaintainer, SyncAgainstFrozenModelSeedsOnceThenIdles) {
  trace::GeneratorConfig gc;
  gc.seed = 11;
  gc.num_users = 80;
  gc.num_days = 3;
  gc.layout.num_buildings = 2;
  gc.layout.aps_per_building = 4;
  const trace::GeneratedTrace world = trace::generate_campus_trace(gc);
  core::EvaluationConfig eval;
  eval.train_days = 2;
  eval.test_days = 1;
  const SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  CliqueMaintainer m;
  EXPECT_FALSE(m.sync(model));  // first contact: reseed
  EXPECT_EQ(m.stats().reseeds, 1u);
  EXPECT_EQ(m.num_users(), model.num_users());
  EXPECT_TRUE(m.sync(model));  // frozen feed: complete and empty
  EXPECT_EQ(m.stats().reseeds, 1u);

  // The mirrored edge set obeys the strict threshold rule bit for bit.
  std::size_t edges_seen = 0;
  for (UserId u = 0; u < m.num_users(); ++u) {
    for (const CliqueMaintainer::Neighbor& nb : m.neighbors(u)) {
      if (nb.id < u) continue;
      ++edges_seen;
      EXPECT_EQ(nb.weight, model.theta(u, nb.id));
      EXPECT_GT(nb.weight, m.config().theta_threshold);
    }
  }
  EXPECT_EQ(edges_seen, m.num_edges());
  expect_bitwise_equal(m.cover(), m.solve_from_scratch());
}

TEST(CliqueMaintainer, SyncFollowsOnlineModelDeltas) {
  trace::GeneratorConfig gc;
  gc.seed = 5;
  gc.num_users = 60;
  gc.num_days = 3;
  gc.layout.num_buildings = 2;
  gc.layout.aps_per_building = 3;
  const trace::GeneratedTrace world = trace::generate_campus_trace(gc);
  core::EvaluationConfig eval;
  eval.train_days = 2;
  eval.test_days = 1;
  const SocialIndexModel base =
      core::train_from_workload(world.network, world.workload, eval);

  core::OnlineSocialModel online(&base, core::OnlineS3Config{});
  CliqueMaintainer m;
  EXPECT_FALSE(m.sync(online));

  // Replay the test window's sessions as live events; sync after each
  // burst must follow the feed without reseeding, and the maintained
  // structure must stay bit-identical to a from-scratch solve.
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < world.workload.size() && replayed < 400; ++i) {
    const trace::SessionRecord& s = world.workload.session(i);
    online.on_associate(i, s.user, s.ap, s.connect);
    online.on_disconnect(i, s.user, s.ap, s.disconnect);
    ++replayed;
    if (replayed % 97 == 0) {
      EXPECT_TRUE(m.sync(online));
      expect_bitwise_equal(m.cover(), m.solve_from_scratch());
    }
  }
  EXPECT_TRUE(m.sync(online));
  EXPECT_EQ(m.stats().reseeds, 1u);
  expect_bitwise_equal(m.cover(), m.solve_from_scratch());

  // Spot-check the mirror against the provider's current θ.
  for (UserId u = 0; u < m.num_users(); ++u) {
    for (const CliqueMaintainer::Neighbor& nb : m.neighbors(u)) {
      if (nb.id > u) EXPECT_EQ(nb.weight, online.theta(u, nb.id));
    }
  }
}

/// A provider whose feed can be truncated under the consumer, per the
/// ThetaDelta retention contract.
class TruncatingProvider : public ThetaProvider {
 public:
  explicit TruncatingProvider(std::size_t n) : n_(n) {}

  double theta(UserId u, UserId v) const override {
    const auto it = thetas_.find(UserPair(u, v));
    return it == thetas_.end() ? 0.0 : it->second;
  }
  std::size_t num_users() const override { return n_; }
  std::uint64_t read_epoch() const noexcept override { return epoch_; }
  bool emits_theta_deltas() const noexcept override { return true; }
  ThetaDeltaPoll poll_theta_deltas(
      std::uint64_t cursor, std::vector<ThetaDelta>& out) const override {
    const std::uint64_t end = base_ + feed_.size();
    if (cursor < base_ || cursor > end) return ThetaDeltaPoll{end, false};
    out.insert(out.end(),
               feed_.begin() + static_cast<std::ptrdiff_t>(cursor - base_),
               feed_.end());
    return ThetaDeltaPoll{end, true};
  }

  void set(UserId u, UserId v, double theta) {
    thetas_[UserPair(u, v)] = theta;
    feed_.push_back(ThetaDelta{UserPair(u, v), theta, ++epoch_});
  }
  void truncate_log() {
    base_ += feed_.size();
    feed_.clear();
  }

 private:
  std::size_t n_;
  std::map<UserPair, double> thetas_;
  std::vector<ThetaDelta> feed_;
  std::uint64_t base_ = 0;
  std::uint64_t epoch_ = 0;
};

TEST(CliqueMaintainer, IncompletePollForcesReseed) {
  TruncatingProvider p(6);
  p.set(0, 1, 0.9);
  CliqueMaintainer m;
  EXPECT_FALSE(m.sync(p));
  EXPECT_TRUE(m.has_edge(0, 1));

  p.set(2, 3, 0.8);
  EXPECT_TRUE(m.sync(p));  // normal incremental drain
  EXPECT_TRUE(m.has_edge(2, 3));

  // Records lost behind the consumer's cursor: the poll is incomplete
  // and the maintainer must rebuild rather than trust its mirror.
  p.set(4, 5, 0.7);
  p.set(0, 1, 0.0);
  p.truncate_log();
  EXPECT_FALSE(m.sync(p));
  EXPECT_EQ(m.stats().reseeds, 2u);
  EXPECT_FALSE(m.has_edge(0, 1));
  EXPECT_TRUE(m.has_edge(4, 5));
  expect_bitwise_equal(m.cover(), m.solve_from_scratch());
}

// --- induced batch graphs and placement identity --------------------

TEST(CliqueMaintainer, InducedBatchGraphMatchesPairwiseProbes) {
  CliqueMaintainer m(8);
  m.set_theta(0, 1, 0.9);
  m.set_theta(1, 2, 0.8);
  m.set_theta(3, 4, 0.7);
  m.set_theta(5, 6, 0.4);
  const std::vector<UserId> batch = {6, 0, 2, 1, 3, 0};  // dup user 0
  const WeightedGraph g = m.induced_batch_graph(batch);
  ASSERT_EQ(g.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      const bool expect_edge =
          batch[i] != batch[j] && m.has_edge(batch[i], batch[j]);
      EXPECT_EQ(g.adjacent(i, j), expect_edge) << i << "," << j;
      if (expect_edge) {
        EXPECT_EQ(g.weight(i, j), m.edge_weight(batch[i], batch[j]));
      }
    }
  }
}

/// The incremental batch-graph path changes how edges are *found*,
/// never which placements come out: replays with the flag on and off,
/// at 1 and 8 threads, must agree assignment for assignment.
TEST(CliqueMaintainer, S3PlacementsIdenticalWithIncrementalCliques) {
  trace::GeneratorConfig gc;
  gc.seed = 7;
  gc.num_users = 150;
  gc.num_days = 3;
  gc.layout.num_buildings = 3;
  gc.layout.aps_per_building = 5;
  const trace::GeneratedTrace world = trace::generate_campus_trace(gc);
  core::EvaluationConfig eval;
  eval.train_days = 2;
  eval.test_days = 1;
  const SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  const auto run = [&](bool incremental, unsigned threads) {
    core::S3Config sc;
    sc.incremental_cliques = incremental;
    const core::S3Factory factory(&world.network, &model, sc);
    runtime::ReplayDriverConfig rc;
    rc.threads = threads;
    return runtime::ReplayDriver(world.network, rc)
        .run(world.workload, factory);
  };

  const sim::ReplayResult probe = run(false, 1);
  ASSERT_GE(probe.stats.max_batch_size, 2u);  // the maintainer path ran
  for (const unsigned threads : {1u, 8u}) {
    const sim::ReplayResult inc = run(true, threads);
    ASSERT_EQ(probe.assigned.size(), inc.assigned.size());
    for (std::size_t i = 0; i < probe.assigned.size(); ++i) {
      ASSERT_EQ(probe.assigned.session(i).ap, inc.assigned.session(i).ap)
          << "session " << i << " threads " << threads;
    }
  }
}

// --- CliqueScoreCache -----------------------------------------------

TEST(CliqueScoreCache, InvalidatesPerUserAndPerVersion) {
  CliqueMaintainer m(5);
  m.set_theta(0, 1, 0.9);
  m.set_theta(3, 4, 0.8);
  CliqueScoreCache cache;
  cache.bind(m.cover(), m.cover_version());
  const auto score_all = [&] {
    double total = 0.0;
    for (std::size_t i = 0; i < m.cover().cliques.size(); ++i) {
      total += cache.score(i, [](std::size_t) { return 1.0; });
    }
    return total;
  };
  score_all();
  const std::uint64_t computed_cold = cache.recomputed();
  score_all();
  EXPECT_EQ(cache.recomputed(), computed_cold);  // all hits
  EXPECT_GT(cache.reused(), 0u);

  // One user invalidated -> exactly one clique recomputed.
  cache.invalidate_user(0);
  score_all();
  EXPECT_EQ(cache.recomputed(), computed_cold + 1);

  // A structural change bumps the version; rebinding drops everything.
  m.set_theta(1, 2, 0.7);
  cache.bind(m.cover(), m.cover_version());
  score_all();
  EXPECT_EQ(cache.recomputed(), computed_cold + 1 + m.cover().cliques.size());
}

}  // namespace
}  // namespace s3::social
