// ConcurrentPairStore correctness:
//  - randomized differential test against the sequential PairStore
//    (interleaved upsert-style update / assign / erase / find), proving
//    the two backends are observationally identical single-threaded;
//  - multi-thread stress tests (disjoint-key writers, mixed
//    reader/writer/eraser traffic) designed to run under the TSan CI
//    job: they assert counter totals and snapshot consistency, and TSan
//    asserts the absence of data races in the seqlock/striped-lock
//    machinery.
#include "s3/social/concurrent_pair_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "s3/social/pair_store.h"

namespace s3::social {
namespace {

UserPair pair_of(UserId x, UserId y) { return UserPair(x, y); }

TEST(ConcurrentPairStore, EmptyFindsNothing) {
  ConcurrentPairStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.find(pair_of(1, 2)).has_value());
  EXPECT_FALSE(store.erase(pair_of(1, 2)));
}

TEST(ConcurrentPairStore, PackMatchesPairStore) {
  const UserPair p = pair_of(7, 3);
  EXPECT_EQ(ConcurrentPairStore::pack(p), PairStore::pack(p));
  EXPECT_EQ(ConcurrentPairStore::unpack(ConcurrentPairStore::pack(p)), p);
}

TEST(ConcurrentPairStore, UpdateInsertsThenMutates) {
  ConcurrentPairStore store;
  EXPECT_TRUE(store.update(pair_of(1, 2), [](ConcurrentPairStore::Stats& s) {
    s.encounters = 3;
  }));
  EXPECT_FALSE(store.update(pair_of(2, 1), [](ConcurrentPairStore::Stats& s) {
    s.co_leaves = 2;
  }));
  const auto got = store.find(pair_of(1, 2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->encounters, 3u);
  EXPECT_EQ(got->co_leaves, 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ConcurrentPairStore, EpochAdvancesOnEveryMutation) {
  ConcurrentPairStore store;
  const std::uint64_t e0 = store.epoch();
  store.update(pair_of(1, 2), [](ConcurrentPairStore::Stats& s) {
    ++s.encounters;
  });
  const std::uint64_t e1 = store.epoch();
  EXPECT_GT(e1, e0);
  store.erase(pair_of(1, 2));
  EXPECT_GT(store.epoch(), e1);
  // Pure reads do not advance the epoch.
  const std::uint64_t e2 = store.epoch();
  (void)store.find(pair_of(1, 2));
  EXPECT_EQ(store.epoch(), e2);
}

TEST(ConcurrentPairStore, GrowsPastInlineBudgetAndKeepsEntries) {
  ConcurrentPairStore store;
  const std::size_t initial_buckets = store.bucket_count();
  constexpr std::uint32_t kPairs = 2000;
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    store.update(pair_of(i, i + 100000), [i](ConcurrentPairStore::Stats& s) {
      s.encounters = i + 1;
    });
  }
  EXPECT_EQ(store.size(), kPairs);
  EXPECT_GT(store.bucket_count(), initial_buckets);
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    const auto got = store.find(pair_of(i, i + 100000));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(got->encounters, i + 1) << i;
  }
}

TEST(ConcurrentPairStore, ClearEmptiesAndBumpsEpoch) {
  ConcurrentPairStore store;
  for (std::uint32_t i = 0; i < 100; ++i) {
    store.assign(pair_of(i, i + 1000), {1, 1, 1});
  }
  const std::uint64_t e = store.epoch();
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_GT(store.epoch(), e);
  EXPECT_FALSE(store.find(pair_of(0, 1000)).has_value());
}

// The core single-threaded contract: driven by the same random op
// sequence, ConcurrentPairStore and PairStore agree on every find
// result, on size(), and on the full sorted entry dump.
TEST(ConcurrentPairStore, RandomizedDifferentialVsPairStore) {
  ConcurrentPairStore concurrent;
  PairStore sequential;
  std::mt19937_64 rng(20260809);
  std::uniform_int_distribution<std::uint32_t> user(0, 299);
  std::uniform_int_distribution<int> op(0, 99);
  std::uniform_int_distribution<std::uint32_t> bump(1, 4);

  for (int step = 0; step < 100000; ++step) {
    UserId a = user(rng);
    UserId b = user(rng);
    if (a == b) b = a + 1;
    const UserPair p = pair_of(a, b);
    const int o = op(rng);
    if (o < 45) {  // upsert-style counter bump
      const std::uint32_t enc = bump(rng);
      const std::uint32_t col = bump(rng) % 2;
      concurrent.update(p, [&](ConcurrentPairStore::Stats& s) {
        s.encounters += enc;
        s.co_leaves += col;
        ++s.co_comings;
      });
      PairStore::Stats& s = sequential.upsert(p);
      s.encounters += enc;
      s.co_leaves += col;
      ++s.co_comings;
    } else if (o < 55) {  // overwrite
      const PairStore::Stats v{bump(rng), bump(rng) % 3, bump(rng) % 2};
      EXPECT_EQ(concurrent.assign(p, v), sequential.assign(p, v));
    } else if (o < 75) {  // erase
      EXPECT_EQ(concurrent.erase(p), sequential.erase(p)) << "step " << step;
    } else {  // lookup
      const auto got = concurrent.find(p);
      const PairStore::Stats* want = sequential.find(p);
      ASSERT_EQ(got.has_value(), want != nullptr) << "step " << step;
      if (want != nullptr) {
        EXPECT_EQ(got->encounters, want->encounters);
        EXPECT_EQ(got->co_leaves, want->co_leaves);
        EXPECT_EQ(got->co_comings, want->co_comings);
      }
    }
    ASSERT_EQ(concurrent.size(), sequential.size()) << "step " << step;
  }

  const auto got = concurrent.sorted_entries();
  const auto want = sequential.sorted_entries();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].pair, want[i].pair) << "entry " << i;
    EXPECT_EQ(got[i].stats.encounters, want[i].stats.encounters);
    EXPECT_EQ(got[i].stats.co_leaves, want[i].stats.co_leaves);
    EXPECT_EQ(got[i].stats.co_comings, want[i].stats.co_comings);
  }
}

// Writers on disjoint key ranges: every increment must land exactly
// once even across concurrent resizes.
TEST(ConcurrentPairStoreStress, DisjointWritersLoseNothing) {
  ConcurrentPairStore store;
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 400;
  constexpr int kRounds = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          const UserId a = static_cast<UserId>(t * kPerThread + i);
          store.update(pair_of(a, a + 1000000),
                       [](ConcurrentPairStore::Stats& s) {
                         ++s.encounters;
                         s.co_leaves += 2;
                       });
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(store.size(), std::size_t{kThreads} * kPerThread);
  for (std::uint32_t a = 0; a < kThreads * kPerThread; ++a) {
    const auto got = store.find(pair_of(a, a + 1000000));
    ASSERT_TRUE(got.has_value()) << a;
    EXPECT_EQ(got->encounters, static_cast<std::uint32_t>(kRounds)) << a;
    EXPECT_EQ(got->co_leaves, static_cast<std::uint32_t>(2 * kRounds)) << a;
  }
}

// Readers race writers and erasers on a shared key set. Every snapshot
// a reader observes must be internally consistent: writers keep
// co_leaves == 2 * encounters, so any torn read would break the
// invariant even though the two counters are separate words.
TEST(ConcurrentPairStoreStress, ReadersSeeConsistentSnapshots) {
  ConcurrentPairStore store;
  constexpr std::uint32_t kKeys = 64;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    store.assign(pair_of(i, i + 500), {1, 2, 0});
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&store, &stop] {
    std::mt19937 rng(11);
    std::uniform_int_distribution<std::uint32_t> key(0, kKeys - 1);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t k = key(rng);
      store.update(pair_of(k, k + 500), [](ConcurrentPairStore::Stats& s) {
        ++s.encounters;
        s.co_leaves = 2 * s.encounters;
      });
    }
  });
  std::thread eraser([&store, &stop] {
    std::mt19937 rng(13);
    std::uniform_int_distribution<std::uint32_t> key(0, kKeys - 1);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t k = key(rng);
      store.erase(pair_of(k, k + 500));
      store.update(pair_of(k, k + 500), [](ConcurrentPairStore::Stats& s) {
        ++s.encounters;
        s.co_leaves = 2 * s.encounters;
      });
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&store, &stop, &torn, &reads, t] {
      std::mt19937 rng(17 + t);
      std::uniform_int_distribution<std::uint32_t> key(0, kKeys - 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint32_t k = key(rng);
        const auto got = store.find(pair_of(k, k + 500));
        reads.fetch_add(1, std::memory_order_relaxed);
        if (got.has_value() && got->co_leaves != 2 * got->encounters) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  writer.join();
  eraser.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace s3::social
