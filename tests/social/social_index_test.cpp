#include "s3/social/social_index.h"

#include <gtest/gtest.h>

#include <numeric>

#include "s3/trace/generator.h"
#include "s3/util/stats.h"
#include "s3/wlan/radio.h"
#include "testing/mini.h"

namespace s3::social {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;

SocialIndexModel toy_model(double alpha = 0.3) {
  // Two users of type 0, one of type 1; pair (0,1) encountered 4 times
  // and co-left 2 times.
  SocialModelConfig cfg;
  cfg.alpha = alpha;
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {4, 2, 0};
  UserTyping typing;
  typing.num_types = 2;
  typing.type_of_user = {0, 0, 1};
  typing.centroids.assign(2 * apps::kNumCategories, 0.0);
  TypeCoLeaveMatrix matrix(2);
  matrix.set(0, 0, 0.6);
  matrix.set(1, 1, 0.5);
  matrix.set(0, 1, 0.1);
  return SocialIndexModel::from_parts(cfg, std::move(stats), std::move(typing),
                                      std::move(matrix));
}

TEST(SocialIndexModel, ThetaCombinesHistoryAndTypePrior) {
  const SocialIndexModel m = toy_model(0.3);
  // theta(0,1) = P(L|E) + alpha * T(0,0) = 0.5 + 0.3*0.6.
  EXPECT_NEAR(m.theta(0, 1), 0.5 + 0.18, 1e-12);
  // Pair (0,2) never met: type prior only.
  EXPECT_NEAR(m.theta(0, 2), 0.3 * 0.1, 1e-12);
  // Symmetry and self.
  EXPECT_DOUBLE_EQ(m.theta(0, 1), m.theta(1, 0));
  EXPECT_DOUBLE_EQ(m.theta(1, 1), 0.0);
}

TEST(SocialIndexModel, AlphaScalesTypeTerm) {
  const SocialIndexModel a = toy_model(0.1);
  const SocialIndexModel b = toy_model(0.5);
  EXPECT_NEAR(b.theta(0, 2) - a.theta(0, 2), 0.4 * 0.1, 1e-12);
}

TEST(SocialIndexModel, CoLeaveProbability) {
  const SocialIndexModel m = toy_model();
  EXPECT_DOUBLE_EQ(m.co_leave_probability(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.co_leave_probability(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.co_leave_probability(1, 1), 0.0);
}

TEST(SocialIndexModel, MinEncountersSuppressesThinPairs) {
  // The (0,1) pair has 4 encounters; with min_encounters = 5 its
  // history term vanishes and only the type prior remains.
  SocialModelConfig cfg;
  cfg.alpha = 0.3;
  cfg.min_encounters = 5;
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {4, 2, 0};
  UserTyping typing;
  typing.num_types = 2;
  typing.type_of_user = {0, 0, 1};
  TypeCoLeaveMatrix matrix(2);
  matrix.set(0, 0, 0.6);
  const SocialIndexModel m = SocialIndexModel::from_parts(
      cfg, std::move(stats), std::move(typing), std::move(matrix));
  EXPECT_DOUBLE_EQ(m.co_leave_probability(0, 1), 0.0);
  EXPECT_NEAR(m.theta(0, 1), 0.3 * 0.6, 1e-12);
}

TEST(SocialIndexModel, ThetaValidatesUsers) {
  const SocialIndexModel m = toy_model();
  EXPECT_THROW(m.theta(0, 99), std::invalid_argument);
}

TEST(SocialIndexModel, TrainRequiresAssignedTrace) {
  const auto unassigned = make_trace(2, {SessionSpec{}});
  EXPECT_THROW(SocialIndexModel::train(unassigned, {}),
               std::invalid_argument);
}

TEST(SocialIndexModel, TrainValidatesConfig) {
  const auto t = make_trace(2, {SessionSpec{.ap = 0}});
  SocialModelConfig bad;
  bad.alpha = -0.1;
  EXPECT_THROW(SocialIndexModel::train(t, bad), std::invalid_argument);
  bad = SocialModelConfig{};
  bad.history_days = -1;
  EXPECT_THROW(SocialIndexModel::train(t, bad), std::invalid_argument);
}

TEST(SocialIndexModel, TrainOnToyTrace) {
  // Users 0 and 1 repeatedly meet and co-leave on AP 0; user 2 is a
  // loner with a very different app profile.
  std::vector<SessionSpec> specs;
  for (int d = 0; d < 5; ++d) {
    const std::int64_t base = d * 86400 + 8 * 3600;
    specs.push_back(SessionSpec{.user = 0, .connect_s = base,
                                .disconnect_s = base + 3600, .ap = 0,
                                .web_bytes = 1000.0});
    specs.push_back(SessionSpec{.user = 1, .connect_s = base + 60,
                                .disconnect_s = base + 3660, .ap = 0,
                                .web_bytes = 900.0});
    specs.push_back(SessionSpec{.user = 2, .connect_s = base,
                                .disconnect_s = base + 7200, .ap = 1,
                                .web_bytes = 10.0});
  }
  const auto t = make_trace(3, specs, 5);
  SocialModelConfig cfg;
  cfg.typing.k = 2;
  const SocialIndexModel m = SocialIndexModel::train(t, cfg);
  EXPECT_EQ(m.num_users(), 3u);
  // The bonded pair has high theta; the loner never met anyone.
  EXPECT_GT(m.theta(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.co_leave_probability(0, 2), 0.0);
  EXPECT_GE(m.theta(0, 2), 0.0);
}

TEST(SocialIndexModel, HistoryDaysRestrictsLearning) {
  // Pair co-leaves only on day 0; with a 1-day look-back from the end
  // of a 5-day trace, that evidence is forgotten.
  std::vector<SessionSpec> specs;
  specs.push_back(SessionSpec{.user = 0, .connect_s = 8 * 3600,
                              .disconnect_s = 9 * 3600, .ap = 0});
  specs.push_back(SessionSpec{.user = 1, .connect_s = 8 * 3600 + 30,
                              .disconnect_s = 9 * 3600 + 30, .ap = 0});
  // Keep both users alive on later days (solo sessions, different APs).
  for (int d = 1; d < 5; ++d) {
    specs.push_back(SessionSpec{.user = 0,
                                .connect_s = d * 86400 + 8 * 3600,
                                .disconnect_s = d * 86400 + 9 * 3600,
                                .ap = 0});
    specs.push_back(SessionSpec{.user = 1,
                                .connect_s = d * 86400 + 10 * 3600,
                                .disconnect_s = d * 86400 + 11 * 3600,
                                .ap = 1});
  }
  const auto t = make_trace(2, specs, 5);
  SocialModelConfig full;
  full.typing.k = 1;
  const SocialIndexModel with_history = SocialIndexModel::train(t, full);
  EXPECT_GT(with_history.co_leave_probability(0, 1), 0.9);

  SocialModelConfig limited = full;
  limited.history_days = 1;
  const SocialIndexModel without = SocialIndexModel::train(t, limited);
  EXPECT_DOUBLE_EQ(without.co_leave_probability(0, 1), 0.0);
}

TEST(SocialIndexModel, ThetaRowMatchesScalarBitwise) {
  // The batched kernel is a perf path, not a semantics path: over a
  // *trained* model (real pair table, real type matrix) every row
  // entry must equal the scalar theta() bit for bit — replay
  // byte-identity depends on it.
  trace::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_users = 120;
  cfg.num_days = 5;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  std::vector<ApId> aps;
  wlan::RadioModel radio;
  for (const trace::SessionRecord& s : g.workload.sessions()) {
    aps.push_back(wlan::strongest_ap(g.network, radio, s.building, s.pos));
  }
  const SocialIndexModel m =
      SocialIndexModel::train(g.workload.with_assignments(aps), {});

  std::vector<UserId> vs(m.num_users());
  std::iota(vs.begin(), vs.end(), UserId{0});
  std::vector<double> out(vs.size());
  std::vector<double> base_out(vs.size());
  for (UserId u = 0; u < m.num_users(); ++u) {
    m.theta_row(u, vs, out);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      // operator== — bit identity, not EXPECT_NEAR.
      ASSERT_TRUE(out[i] == m.theta(u, vs[i]))
          << "u=" << u << " v=" << vs[i];
    }
    // The unoverridden ThetaProvider default (a theta() loop) must
    // agree with the flat-probe override exactly.
    m.ThetaProvider::theta_row(u, vs, base_out);
    ASSERT_TRUE(base_out == out) << "u=" << u;
  }
}

TEST(SocialIndexModel, ThetaRowSupportsPartialAndEmptyRows) {
  const SocialIndexModel m = toy_model(0.3);
  const std::vector<UserId> vs = {2, 0, 1};
  std::vector<double> out(vs.size());
  m.theta_row(1, vs, out);
  EXPECT_DOUBLE_EQ(out[0], m.theta(1, 2));
  EXPECT_DOUBLE_EQ(out[1], m.theta(1, 0));
  EXPECT_DOUBLE_EQ(out[2], 0.0);  // self
  m.theta_row(0, std::span<const UserId>{}, std::span<double>{});
}

TEST(SocialIndexModel, MaxTypeTermBoundsThePrior) {
  const SocialIndexModel m = toy_model(0.3);
  EXPECT_NEAR(m.max_type_term(), 0.3 * 0.6, 1e-12);
  for (UserId u = 0; u < 3; ++u) {
    for (UserId v = 0; v < 3; ++v) {
      if (u == v) continue;
      EXPECT_LE(m.theta(u, v) - m.co_leave_probability(u, v),
                m.max_type_term() + 1e-12);
    }
  }
}

TEST(SocialIndexModel, EndToEndOnGeneratedTrace) {
  trace::GeneratorConfig cfg;
  cfg.seed = 21;
  cfg.num_users = 200;
  cfg.num_days = 8;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  // "Collected" trace: strongest-RSSI assignment is enough here.
  std::vector<ApId> aps;
  wlan::RadioModel radio;
  for (const trace::SessionRecord& s : g.workload.sessions()) {
    aps.push_back(wlan::strongest_ap(g.network, radio, s.building, s.pos));
  }
  const trace::Trace assigned = g.workload.with_assignments(aps);
  const SocialIndexModel m = SocialIndexModel::train(assigned, {});

  // Same-group pairs should carry a much stronger mean theta than
  // random pairs.
  util::RunningStats same, random_pairs;
  util::Rng rng(1);
  for (const auto& grp : g.truth.groups) {
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
      for (std::size_t j = i + 1; j < grp.members.size(); ++j) {
        same.add(m.theta(grp.members[i], grp.members[j]));
      }
    }
  }
  for (int k = 0; k < 2000; ++k) {
    const UserId u = static_cast<UserId>(rng.index(200));
    const UserId v = static_cast<UserId>(rng.index(200));
    if (u != v) random_pairs.add(m.theta(u, v));
  }
  EXPECT_GT(same.mean(), 3.0 * random_pairs.mean());
}

}  // namespace
}  // namespace s3::social
