#include "s3/runtime/replay_driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "s3/core/evaluation.h"
#include "s3/core/selector_factory.h"
#include "s3/sim/replay.h"
#include "s3/trace/generator.h"
#include "s3/util/metrics.h"
#include "testing/mini.h"

namespace s3::runtime {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

/// Multi-building campus so the driver actually has several shards.
const trace::GeneratedTrace& shared_world() {
  static const trace::GeneratedTrace world = [] {
    trace::GeneratorConfig cfg;
    cfg.seed = 7;
    cfg.num_users = 150;
    cfg.num_days = 3;
    cfg.layout.num_buildings = 3;
    cfg.layout.aps_per_building = 5;
    return trace::generate_campus_trace(cfg);
  }();
  return world;
}

sim::ReplayResult run_with(const sim::SelectorFactory& factory,
                           unsigned threads) {
  const trace::GeneratedTrace& w = shared_world();
  ReplayDriverConfig rc;
  rc.threads = threads;
  return ReplayDriver(w.network, rc).run(w.workload, factory);
}

void expect_identical(const sim::ReplayResult& a, const sim::ReplayResult& b) {
  ASSERT_EQ(a.assigned.size(), b.assigned.size());
  for (std::size_t i = 0; i < a.assigned.size(); ++i) {
    ASSERT_EQ(a.assigned.session(i).ap, b.assigned.session(i).ap)
        << "session " << i;
  }
  EXPECT_EQ(a.stats.num_sessions, b.stats.num_sessions);
  EXPECT_EQ(a.stats.num_batches, b.stats.num_batches);
  EXPECT_EQ(a.stats.max_batch_size, b.stats.max_batch_size);
  EXPECT_DOUBLE_EQ(a.stats.mean_batch_size, b.stats.mean_batch_size);
  EXPECT_EQ(a.stats.forced_overloads, b.stats.forced_overloads);
  EXPECT_EQ(a.stats.candidate_violations, b.stats.candidate_violations);
}

TEST(ReplayDriver, ThreadCountInvariantForLlf) {
  const core::LlfFactory f(core::LoadMetric::kStations);
  expect_identical(run_with(f, 1), run_with(f, 4));
}

TEST(ReplayDriver, ThreadCountInvariantForRssi) {
  const core::StrongestRssiFactory f;
  expect_identical(run_with(f, 1), run_with(f, 4));
}

TEST(ReplayDriver, ThreadCountInvariantForRandom) {
  // Per-domain RNG streams are derived from (seed, domain), never from
  // thread identity — the whole point of the factory contract.
  const core::RandomFactory f(99);
  expect_identical(run_with(f, 1), run_with(f, 4));
}

TEST(ReplayDriver, ThreadCountInvariantForS3AndOnlineS3) {
  const trace::GeneratedTrace& w = shared_world();
  core::EvaluationConfig eval;
  eval.train_days = 2;
  eval.test_days = 1;
  const social::SocialIndexModel model =
      core::train_from_workload(w.network, w.workload, eval);

  const core::S3Factory s3(&w.network, &model);
  expect_identical(run_with(s3, 1), run_with(s3, 4));

  // Online-S3 learns, but each domain instance only ever sees its own
  // domain's events, so sharding is still schedule-independent.
  const core::OnlineS3Factory online(&w.network, &model);
  expect_identical(run_with(online, 1), run_with(online, 4));
}

TEST(ReplayDriver, SequentialMatchesShardedForStatelessPolicy) {
  const trace::GeneratedTrace& w = shared_world();
  const core::LlfFactory f(core::LoadMetric::kStations);
  core::LlfSelector shared(core::LoadMetric::kStations);
  const ReplayDriver driver(w.network);
  expect_identical(driver.run(w.workload, f),
                   driver.run_sequential(w.workload, shared));
}

TEST(ReplayDriver, CompatShimIsTheSequentialDriver) {
  const trace::GeneratedTrace& w = shared_world();
  core::LlfSelector a, b;
  const sim::ReplayResult via_shim = sim::replay(w.network, w.workload, a);
  const sim::ReplayResult via_driver =
      ReplayDriver(w.network).run_sequential(w.workload, b);
  expect_identical(via_shim, via_driver);
}

TEST(ReplayDriver, EffectiveThreadsResolvesZeroToAtLeastOne) {
  const auto net = mini_network(2);
  ReplayDriverConfig rc;
  rc.threads = 0;
  EXPECT_GE(ReplayDriver(net, rc).effective_threads(), 1u);
  rc.threads = 3;
  EXPECT_EQ(ReplayDriver(net, rc).effective_threads(), 3u);
}

TEST(ReplayDriver, EmptyWorkload) {
  const auto net = mini_network(2);
  const trace::Trace workload(1, 1, {});
  const core::LlfFactory f;
  const sim::ReplayResult r = ReplayDriver(net).run(workload, f);
  EXPECT_EQ(r.stats.num_sessions, 0u);
  EXPECT_EQ(r.stats.num_batches, 0u);
  EXPECT_DOUBLE_EQ(r.stats.mean_batch_size, 0.0);  // no 0/0
}

TEST(MergeStats, EmptyAndZeroBatchShardsDoNotDivide) {
  EXPECT_DOUBLE_EQ(merge_stats(std::span<const sim::ReplayStats>{})
                       .mean_batch_size,
                   0.0);

  // Shards that saw sessions but never flushed a batch.
  const sim::ReplayStats idle[2]{};
  const sim::ReplayStats merged = merge_stats(idle);
  EXPECT_EQ(merged.num_batches, 0u);
  EXPECT_DOUBLE_EQ(merged.mean_batch_size, 0.0);
}

TEST(MergeStats, SumsAndMaxes) {
  sim::ReplayStats a, b;
  a.num_sessions = 6;
  a.num_batches = 2;
  a.max_batch_size = 4;
  a.forced_overloads = 1;
  a.candidate_violations = 2;
  b.num_sessions = 4;
  b.num_batches = 3;
  b.max_batch_size = 2;
  b.forced_overloads = 2;
  b.candidate_violations = 0;
  const sim::ReplayStats shards[] = {a, b};
  const sim::ReplayStats m = merge_stats(shards);
  EXPECT_EQ(m.num_sessions, 10u);
  EXPECT_EQ(m.num_batches, 5u);
  EXPECT_EQ(m.max_batch_size, 4u);
  EXPECT_EQ(m.forced_overloads, 3u);
  EXPECT_EQ(m.candidate_violations, 2u);
  EXPECT_DOUBLE_EQ(m.mean_batch_size, 2.0);
}

/// Deliberately broken policy: always answers with an AP from the
/// other building, violating the candidate-set contract.
class OutOfCandidatesSelector final : public sim::ApSelector {
 public:
  std::string_view name() const override { return "broken"; }
  ApId select_one(const sim::Arrival& a, const sim::ApLoadTracker&) override {
    ApId worst = 0;
    while (std::find(a.candidates.begin(), a.candidates.end(), worst) !=
           a.candidates.end()) {
      ++worst;
    }
    return worst;
  }
};

TEST(ReplayDriver, CandidateViolationObservable) {
  const auto net = mini_network(4, 2);  // 2 buildings: 4 foreign APs
  const auto workload = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600},
      SessionSpec{.user = 1, .connect_s = 30, .disconnect_s = 900},
  });
  OutOfCandidatesSelector broken;
  const ReplayDriver driver(net);
#ifdef NDEBUG
  // Release: the breach is kept (the association already happened) but
  // surfaces as a counted stat.
  const sim::ReplayResult r = driver.run_sequential(workload, broken);
  EXPECT_EQ(r.stats.candidate_violations, 2u);
  EXPECT_TRUE(r.assigned.fully_assigned());
#else
  // Debug: the S3_DEBUG_ASSERT trips immediately.
  EXPECT_THROW(driver.run_sequential(workload, broken), std::logic_error);
#endif
}

/// Counter/histogram values on the global bus, keyed by name. Timer
/// durations are wall clock and excluded; their call counts are kept.
std::map<std::string, std::uint64_t> deterministic_metrics() {
  std::map<std::string, std::uint64_t> out;
  for (const util::MetricSample& s : util::metrics().snapshot()) {
    if (s.name.rfind("sim.", 0) != 0) continue;
    switch (s.kind) {
      case util::MetricKind::kCounter:
        out[s.name] = s.count;
        break;
      case util::MetricKind::kHistogram:
        out[s.name + ".count"] = s.count;
        out[s.name + ".sum"] = s.total;
        out[s.name + ".max"] = s.max;
        break;
      case util::MetricKind::kTimer:
        out[s.name + ".calls"] = s.count;
        break;
    }
  }
  return out;
}

TEST(ReplayDriver, InstrumentationCountersStableAcrossRunsAndThreads) {
  const core::LlfFactory f;

  util::metrics().reset();
  (void)run_with(f, 1);
  const auto first = deterministic_metrics();
  ASSERT_GT(first.at("sim.sessions"), 0u);
  ASSERT_GT(first.at("sim.batches"), 0u);
  ASSERT_GT(first.at("sim.batch_size.count"), 0u);

  util::metrics().reset();
  (void)run_with(f, 1);
  EXPECT_EQ(deterministic_metrics(), first) << "not stable across runs";

  util::metrics().reset();
  (void)run_with(f, 4);
  EXPECT_EQ(deterministic_metrics(), first) << "not stable across threads";
}

}  // namespace
}  // namespace s3::runtime
