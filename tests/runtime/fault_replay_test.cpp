// Fault-injected replay: determinism across thread counts, degraded-
// mode fallback + recovery, AP-outage eviction/re-association, and the
// admission-storm abandonment path.

#include <gtest/gtest.h>

#include <limits>

#include "s3/check/contract.h"
#include "s3/core/evaluation.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::runtime {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

const trace::GeneratedTrace& shared_world() {
  static const trace::GeneratedTrace world = [] {
    trace::GeneratorConfig cfg;
    cfg.seed = 11;
    cfg.num_users = 150;
    cfg.num_days = 3;
    cfg.layout.num_buildings = 3;
    cfg.layout.aps_per_building = 5;
    return trace::generate_campus_trace(cfg);
  }();
  return world;
}

const social::SocialIndexModel& shared_model() {
  static const social::SocialIndexModel model = [] {
    const trace::GeneratedTrace& w = shared_world();
    core::EvaluationConfig eval;
    eval.train_days = 2;
    eval.test_days = 1;
    return core::train_from_workload(w.network, w.workload, eval);
  }();
  return model;
}

/// A plan exercising every fault class over the shared world's 3 days.
fault::FaultPlan everything_plan() {
  const trace::GeneratedTrace& w = shared_world();
  const util::SimTime begin(0);
  const util::SimTime end = w.workload.end_time();
  fault::FaultPlan plan =
      fault::canned_ap_churn_plan(w.network, begin, end, 4, 2 * 3600);
  const fault::FaultPlan model = fault::canned_model_outage_plan(begin, end);
  plan.model_outages = model.model_outages;
  plan.admission.failure_probability = 0.2;
  plan.admission.begin = util::SimTime(end.seconds() / 4);
  plan.admission.end = util::SimTime(end.seconds() / 2);
  return plan;
}

sim::ReplayResult run_faulted(const sim::SelectorFactory& factory,
                              const fault::FaultInjector* injector,
                              unsigned threads) {
  const trace::GeneratedTrace& w = shared_world();
  ReplayDriverConfig rc;
  rc.threads = threads;
  rc.injector = injector;
  return ReplayDriver(w.network, rc).run(w.workload, factory);
}

void expect_identical(const sim::ReplayResult& a, const sim::ReplayResult& b) {
  ASSERT_EQ(a.assigned.size(), b.assigned.size());
  for (std::size_t i = 0; i < a.assigned.size(); ++i) {
    ASSERT_EQ(a.assigned.session(i).ap, b.assigned.session(i).ap)
        << "session " << i;
  }
  EXPECT_EQ(a.stats.num_sessions, b.stats.num_sessions);
  EXPECT_EQ(a.stats.num_batches, b.stats.num_batches);
  EXPECT_EQ(a.stats.forced_overloads, b.stats.forced_overloads);
  EXPECT_EQ(a.stats.fault_evictions, b.stats.fault_evictions);
  EXPECT_EQ(a.stats.reassociations, b.stats.reassociations);
  EXPECT_EQ(a.stats.retry_attempts, b.stats.retry_attempts);
  EXPECT_EQ(a.stats.admission_rejections, b.stats.admission_rejections);
  EXPECT_EQ(a.stats.abandoned_sessions, b.stats.abandoned_sessions);
  EXPECT_EQ(a.stats.degraded_batches, b.stats.degraded_batches);
  EXPECT_EQ(a.stats.transitions_to_degraded, b.stats.transitions_to_degraded);
  EXPECT_EQ(a.stats.transitions_to_recovering,
            b.stats.transitions_to_recovering);
  EXPECT_EQ(a.stats.transitions_to_healthy, b.stats.transitions_to_healthy);
  EXPECT_EQ(a.stats.recovery_migrations, b.stats.recovery_migrations);
}

TEST(FaultReplay, ThreadCountInvariantUnderFaultsForLlf) {
  const fault::FaultInjector injector(everything_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  expect_identical(run_faulted(f, &injector, 1), run_faulted(f, &injector, 8));
}

TEST(FaultReplay, ThreadCountInvariantUnderFaultsForS3) {
  const fault::FaultInjector injector(everything_plan(), 5);
  const core::S3Factory s3(&shared_world().network, &shared_model());
  expect_identical(run_faulted(s3, &injector, 1),
                   run_faulted(s3, &injector, 8));
}

TEST(FaultReplay, EmptyPlanMatchesNoInjectorBitForBit) {
  // The fault-aware event loop with nothing scheduled must reproduce
  // the legacy loop exactly — same batches, same assignment.
  const fault::FaultInjector injector(fault::FaultPlan{}, 1);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const sim::ReplayResult with = run_faulted(f, &injector, 2);
  const sim::ReplayResult without = run_faulted(f, nullptr, 2);
  expect_identical(with, without);
  EXPECT_EQ(with.stats.fault_evictions, 0u);
  EXPECT_EQ(with.stats.degraded_batches, 0u);
  EXPECT_TRUE(with.assigned.fully_assigned());
}

TEST(FaultReplay, ModelOutageDegradesS3ToLlfAndRecovers) {
  const trace::GeneratedTrace& w = shared_world();
  const fault::FaultPlan plan =
      fault::canned_model_outage_plan(util::SimTime(0), w.workload.end_time());
  const fault::FaultInjector injector(plan, 1);
  const core::S3Factory s3(&w.network, &shared_model());

  // Contract abort mode: any load-conservation or candidate-set breach
  // during the degraded window throws and fails the test.
  const check::ScopedContractMode guard(check::ContractMode::kAbort);
  const sim::ReplayResult r = run_faulted(s3, &injector, 4);

  // The outage forced the embedded LLF fallback...
  EXPECT_GT(r.stats.degraded_batches, 0u);
  EXPECT_GT(r.stats.transitions_to_degraded, 0u);
  // ...and the hysteresis path brought S3 back once the model returned.
  EXPECT_GT(r.stats.transitions_to_recovering, 0u);
  EXPECT_GT(r.stats.transitions_to_healthy, 0u);
  // A model outage alone never unassigns anybody.
  EXPECT_TRUE(r.assigned.fully_assigned());
  EXPECT_EQ(r.stats.fault_evictions, 0u);
}

TEST(FaultReplay, LlfNeverDegradesOnModelOutage) {
  // LLF does not consult the social model; a model outage is a no-op.
  const trace::GeneratedTrace& w = shared_world();
  const fault::FaultPlan plan =
      fault::canned_model_outage_plan(util::SimTime(0), w.workload.end_time());
  const fault::FaultInjector injector(plan, 1);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const sim::ReplayResult r = run_faulted(f, &injector, 2);
  EXPECT_EQ(r.stats.degraded_batches, 0u);
  EXPECT_EQ(r.stats.transitions_to_degraded, 0u);
}

TEST(FaultReplay, ApOutageEvictsAndReassociatesOntoSurvivor) {
  const auto net = mini_network(2);  // 2 APs, both audible
  // One long session spanning the outage; one short helper so both APs
  // carry load before the outage.
  const auto workload = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 10'000},
      SessionSpec{.user = 1, .connect_s = 10, .disconnect_s = 500},
  });

  // Whichever AP user 0 landed on fails during [1000, 2000). Both APs
  // must be audible or there is no survivor to re-associate onto.
  const core::LlfFactory f(core::LoadMetric::kStations);
  ReplayDriverConfig probe_rc;
  probe_rc.replay.dispatch_window_s = 0;
  probe_rc.replay.radio.association_threshold_dbm = -75.0;
  const sim::ReplayResult probe =
      ReplayDriver(net, probe_rc).run(workload, f);
  const ApId original = probe.assigned.session(0).ap;
  ASSERT_NE(original, kInvalidAp);

  fault::FaultPlan plan;
  plan.ap_outages.push_back(
      {original, util::SimTime(1000), util::SimTime(2000)});
  const fault::FaultInjector injector(plan, 1);
  ReplayDriverConfig rc = probe_rc;
  rc.injector = &injector;
  const sim::ReplayResult r = ReplayDriver(net, rc).run(workload, f);

  EXPECT_EQ(r.stats.fault_evictions, 1u);
  EXPECT_GE(r.stats.retry_attempts, 1u);
  EXPECT_EQ(r.stats.reassociations, 1u);
  EXPECT_EQ(r.stats.abandoned_sessions, 0u);
  // The published assignment reflects the post-eviction AP.
  EXPECT_NE(r.assigned.session(0).ap, original);
  EXPECT_NE(r.assigned.session(0).ap, kInvalidAp);
}

TEST(FaultReplay, WholeCandidateSetDownAbandonsAfterBackoff) {
  const auto net = mini_network(2);
  const auto workload = make_trace(1, {
      SessionSpec{.user = 0, .connect_s = 100, .disconnect_s = 400},
  });
  // Both APs down for the session's whole lifetime: admission is
  // impossible and the retry loop must give up cleanly.
  fault::FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(0), util::SimTime(1000)});
  plan.ap_outages.push_back({1, util::SimTime(0), util::SimTime(1000)});
  const fault::FaultInjector injector(plan, 1);
  ReplayDriverConfig rc;
  rc.replay.dispatch_window_s = 0;
  rc.injector = &injector;
  const core::LlfFactory f;
  const sim::ReplayResult r = ReplayDriver(net, rc).run(workload, f);
  EXPECT_EQ(r.stats.abandoned_sessions, 1u);
  EXPECT_EQ(r.assigned.session(0).ap, kInvalidAp);
  EXPECT_FALSE(r.assigned.fully_assigned());
}

TEST(FaultReplay, CertainAdmissionFailureAbandonsEverySession) {
  const auto net = mini_network(3);
  const auto workload = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600},
      SessionSpec{.user = 1, .connect_s = 50, .disconnect_s = 700},
  });
  fault::FaultPlan plan;
  plan.admission.failure_probability = 1.0;
  plan.admission.begin = util::SimTime(0);
  const fault::FaultInjector injector(plan, 1);
  ReplayDriverConfig rc;
  rc.replay.dispatch_window_s = 0;
  rc.injector = &injector;
  const core::LlfFactory f;
  const sim::ReplayResult r = ReplayDriver(net, rc).run(workload, f);
  EXPECT_EQ(r.stats.abandoned_sessions, 2u);
  EXPECT_GT(r.stats.admission_rejections, 0u);
  EXPECT_EQ(r.stats.reassociations, 0u);
  EXPECT_FALSE(r.assigned.fully_assigned());
}

TEST(FaultReplay, SequentialDriverRejectsInjector) {
  const auto net = mini_network(2);
  const trace::Trace workload(1, 1, {});
  const fault::FaultInjector injector(fault::FaultPlan{}, 1);
  ReplayDriverConfig rc;
  rc.injector = &injector;
  core::LlfSelector policy;
  EXPECT_THROW(ReplayDriver(net, rc).run_sequential(workload, policy),
               std::invalid_argument);
}

TEST(FaultReplay, AbortModeCleanUnderFullChurnPlan) {
  // The acceptance gate: a full churn + outage + storm plan replayed
  // with contracts in abort mode must finish without a single
  // violation (load conservation holds through evictions/migrations).
  const fault::FaultInjector injector(everything_plan(), 3);
  const core::S3Factory s3(&shared_world().network, &shared_model());
  const check::ScopedContractMode guard(check::ContractMode::kAbort);
  EXPECT_NO_THROW({
    const sim::ReplayResult r = run_faulted(s3, &injector, 4);
    EXPECT_GT(r.stats.fault_evictions, 0u);
  });
}

}  // namespace
}  // namespace s3::runtime
