#include "s3/sim/replay.h"

#include <gtest/gtest.h>

#include "s3/core/baselines.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::sim {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

/// Policy that records what it saw and always picks the first candidate.
class RecordingSelector final : public ApSelector {
 public:
  std::string_view name() const override { return "recording"; }
  ApId select_one(const Arrival& a, const ApLoadTracker&) override {
    arrivals.push_back(a);
    return a.candidates.front();
  }
  void on_disconnect(std::size_t, UserId, ApId, util::SimTime when) override {
    disconnects.push_back(when);
  }
  std::vector<Arrival> arrivals;
  std::vector<util::SimTime> disconnects;
};

TEST(Replay, AssignsEverySession) {
  const auto net = mini_network(4);
  const auto workload = make_trace(4, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600},
      SessionSpec{.user = 1, .connect_s = 30, .disconnect_s = 900},
      SessionSpec{.user = 2, .connect_s = 60, .disconnect_s = 1200},
  });
  core::LlfSelector llf;
  const ReplayResult r = replay(net, workload, llf);
  EXPECT_TRUE(r.assigned.fully_assigned());
  EXPECT_EQ(r.stats.num_sessions, 3u);
  EXPECT_EQ(r.assigned.size(), workload.size());
}

TEST(Replay, ChosenApAlwaysInCandidates) {
  trace::GeneratorConfig cfg;
  cfg.num_users = 100;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  core::LlfSelector llf;
  ReplayConfig rc;
  const ReplayResult r = replay(g.network, g.workload, llf, rc);
  for (const trace::SessionRecord& s : r.assigned.sessions()) {
    const auto cands =
        wlan::candidate_aps(g.network, rc.radio, s.building, s.pos);
    EXPECT_NE(std::find(cands.begin(), cands.end(), s.ap), cands.end());
  }
}

TEST(Replay, DeterministicAcrossRuns) {
  trace::GeneratorConfig cfg;
  cfg.num_users = 80;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  core::LlfSelector llf1, llf2;
  const ReplayResult a = replay(g.network, g.workload, llf1);
  const ReplayResult b = replay(g.network, g.workload, llf2);
  for (std::size_t i = 0; i < a.assigned.size(); ++i) {
    EXPECT_EQ(a.assigned.session(i).ap, b.assigned.session(i).ap);
  }
}

TEST(Replay, ImmediateDispatchWithZeroWindow) {
  const auto net = mini_network(3);
  const auto workload = make_trace(3, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600},
      SessionSpec{.user = 2, .connect_s = 1, .disconnect_s = 600},
  });
  RecordingSelector rec;
  ReplayConfig rc;
  rc.dispatch_window_s = 0;
  const ReplayResult r = replay(net, workload, rec, rc);
  EXPECT_EQ(r.stats.num_batches, 3u);  // one batch per arrival
  EXPECT_EQ(r.stats.max_batch_size, 1u);
}

TEST(Replay, WindowBatchesCoArrivals) {
  const auto net = mini_network(3);
  const auto workload = make_trace(4, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 900},
      SessionSpec{.user = 1, .connect_s = 20, .disconnect_s = 900},
      SessionSpec{.user = 2, .connect_s = 40, .disconnect_s = 900},
      SessionSpec{.user = 3, .connect_s = 500, .disconnect_s = 1200},
  });
  RecordingSelector rec;
  ReplayConfig rc;
  rc.dispatch_window_s = 60;
  const ReplayResult r = replay(net, workload, rec, rc);
  // First three arrive within one window; the fourth after the flush.
  EXPECT_EQ(r.stats.num_batches, 2u);
  EXPECT_EQ(r.stats.max_batch_size, 3u);
  EXPECT_DOUBLE_EQ(r.stats.mean_batch_size, 2.0);
}

TEST(Replay, DepartureFreesCapacityBeforeArrivalAtSameInstant) {
  // Single AP, capacity 20; first user takes 18. Second user (demand
  // 18) arrives exactly when the first leaves: departures must be
  // processed first at equal timestamps, so no overload is recorded.
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 1;
  const auto net = wlan::make_campus(layout);
  const auto workload = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600,
                  .demand_mbps = 18.0},
      SessionSpec{.user = 1, .connect_s = 600, .disconnect_s = 1200,
                  .demand_mbps = 18.0},
  });
  core::LlfSelector llf;
  ReplayConfig rc;
  rc.dispatch_window_s = 0;
  const ReplayResult r = replay(net, workload, llf, rc);
  EXPECT_EQ(r.stats.forced_overloads, 0u);
}

TEST(Replay, ForcedOverloadCounted) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 1;
  layout.ap_capacity_mbps = 5.0;
  const auto net = wlan::make_campus(layout);
  const auto workload = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600,
                  .demand_mbps = 4.0},
      SessionSpec{.user = 1, .connect_s = 10, .disconnect_s = 600,
                  .demand_mbps = 4.0},
  });
  core::LlfSelector llf;
  ReplayConfig rc;
  rc.dispatch_window_s = 0;
  const ReplayResult r = replay(net, workload, llf, rc);
  EXPECT_EQ(r.stats.forced_overloads, 1u);
}

TEST(Replay, ArrivalContextFields) {
  const auto net = mini_network(4);
  const auto workload = make_trace(2, {
      SessionSpec{.user = 1, .connect_s = 120, .disconnect_s = 900,
                  .demand_mbps = 2.5},
  });
  RecordingSelector rec;
  ReplayConfig rc;
  rc.dispatch_window_s = 0;
  replay(net, workload, rec, rc);
  ASSERT_EQ(rec.arrivals.size(), 1u);
  const Arrival& a = rec.arrivals[0];
  EXPECT_EQ(a.user, 1u);
  EXPECT_EQ(a.controller, 0u);
  EXPECT_EQ(a.connect.seconds(), 120);
  EXPECT_DOUBLE_EQ(a.demand_mbps, 2.5);
  EXPECT_FALSE(a.candidates.empty());
}

TEST(Replay, DisconnectNotificationsDelivered) {
  const auto net = mini_network(2);
  const auto workload = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600},
      SessionSpec{.user = 1, .connect_s = 10, .disconnect_s = 800},
  });
  RecordingSelector rec;
  replay(net, workload, rec);
  ASSERT_EQ(rec.disconnects.size(), 2u);
  EXPECT_EQ(rec.disconnects[0].seconds(), 600);
  EXPECT_EQ(rec.disconnects[1].seconds(), 800);
}

TEST(Replay, LlfSpreadsSimultaneousBurst) {
  // 4 identical users arriving together on a 4-AP domain must not all
  // land on one AP (the default batch loop applies scratch updates).
  const auto net = mini_network(4);
  std::vector<SessionSpec> specs;
  for (UserId u = 0; u < 4; ++u) {
    specs.push_back(SessionSpec{.user = u, .connect_s = 0,
                                .disconnect_s = 600, .demand_mbps = 1.0});
  }
  const auto workload = make_trace(4, specs);
  core::LlfSelector llf;
  ReplayConfig rc;
  rc.radio.association_threshold_dbm = -75.0;  // whole building audible
  const ReplayResult r = replay(net, workload, llf, rc);
  std::set<ApId> used;
  for (const trace::SessionRecord& s : r.assigned.sessions()) {
    used.insert(s.ap);
  }
  EXPECT_EQ(used.size(), 4u);  // equal demands spread one per AP
}

TEST(Replay, EmptyWorkload) {
  const auto net = mini_network(2);
  const trace::Trace workload(1, 1, {});
  core::LlfSelector llf;
  const ReplayResult r = replay(net, workload, llf);
  EXPECT_EQ(r.stats.num_sessions, 0u);
  EXPECT_EQ(r.stats.num_batches, 0u);
  EXPECT_DOUBLE_EQ(r.stats.mean_batch_size, 0.0);
}

TEST(Replay, RejectsNegativeWindow) {
  const auto net = mini_network(2);
  const trace::Trace workload(1, 1, {});
  core::LlfSelector llf;
  ReplayConfig rc;
  rc.dispatch_window_s = -1;
  EXPECT_THROW(replay(net, workload, llf, rc), std::invalid_argument);
}

}  // namespace
}  // namespace s3::sim
