#include "s3/sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>

#include "s3/util/rng.h"

namespace s3::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(util::SimTime(30), 3);
  q.push(util::SimTime(10), 1);
  q.push(util::SimTime(20), 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StableAtEqualTimestamps) {
  EventQueue<std::string> q;
  q.push(util::SimTime(5), "first");
  q.push(util::SimTime(5), "second");
  q.push(util::SimTime(5), "third");
  EXPECT_EQ(q.pop().payload, "first");
  EXPECT_EQ(q.pop().payload, "second");
  EXPECT_EQ(q.pop().payload, "third");
}

TEST(EventQueue, NextTimeAndTop) {
  EventQueue<int> q;
  q.push(util::SimTime(42), 7);
  EXPECT_EQ(q.next_time().seconds(), 42);
  EXPECT_EQ(q.top().payload, 7);
  EXPECT_EQ(q.size(), 1u);  // top does not pop
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(util::SimTime(10), 1);
  q.push(util::SimTime(30), 3);
  EXPECT_EQ(q.pop().payload, 1);
  q.push(util::SimTime(20), 2);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, RandomizedOrderingProperty) {
  util::Rng rng(11);
  EventQueue<std::size_t> q;
  for (std::size_t i = 0; i < 1000; ++i) {
    q.push(util::SimTime(rng.uniform_int(0, 100)), i);
  }
  util::SimTime prev(-1);
  std::size_t prev_seq = 0;
  bool first = true;
  while (!q.empty()) {
    const auto e = q.pop();
    EXPECT_GE(e.time, prev);
    if (!first && e.time == prev) {
      EXPECT_GT(e.seq, prev_seq);  // stable within a timestamp
    }
    prev = e.time;
    prev_seq = e.seq;
    first = false;
  }
}

TEST(EventQueue, MovesPayload) {
  EventQueue<std::unique_ptr<int>> q;
  q.push(util::SimTime(1), std::make_unique<int>(5));
  auto e = q.pop();
  ASSERT_TRUE(e.payload);
  EXPECT_EQ(*e.payload, 5);
}

}  // namespace
}  // namespace s3::sim
