#include "s3/sim/load_state.h"

#include <gtest/gtest.h>

#include "testing/mini.h"

namespace s3::sim {
namespace {

TEST(ApLoadTracker, StartsEmpty) {
  const ApLoadTracker t(testing::mini_network(4));
  EXPECT_EQ(t.num_aps(), 4u);
  EXPECT_EQ(t.total_stations(), 0u);
  for (ApId a = 0; a < 4; ++a) {
    EXPECT_EQ(t.station_count(a), 0u);
    EXPECT_DOUBLE_EQ(t.demand_mbps(a), 0.0);
    EXPECT_DOUBLE_EQ(t.capacity_mbps(a), 20.0);
    EXPECT_DOUBLE_EQ(t.headroom_mbps(a), 20.0);
  }
}

TEST(ApLoadTracker, AssociateAndDisconnect) {
  ApLoadTracker t(testing::mini_network(2));
  t.associate(100, 0, 7, 1.5);
  t.associate(101, 0, 8, 2.5);
  t.associate(102, 1, 9, 4.0);
  EXPECT_EQ(t.station_count(0), 2u);
  EXPECT_DOUBLE_EQ(t.demand_mbps(0), 4.0);
  EXPECT_DOUBLE_EQ(t.headroom_mbps(0), 16.0);
  EXPECT_EQ(t.total_stations(), 3u);

  t.disconnect(100, 0);
  EXPECT_EQ(t.station_count(0), 1u);
  EXPECT_DOUBLE_EQ(t.demand_mbps(0), 2.5);
}

TEST(ApLoadTracker, ForEachStation) {
  ApLoadTracker t(testing::mini_network(2));
  t.associate(1, 0, 10, 1.0);
  t.associate(2, 0, 11, 2.0);
  double demand_sum = 0.0;
  std::set<UserId> users;
  t.for_each_station(0, [&](const ActiveStation& st) {
    demand_sum += st.demand_mbps;
    users.insert(st.user);
  });
  EXPECT_DOUBLE_EQ(demand_sum, 3.0);
  EXPECT_EQ(users, (std::set<UserId>{10, 11}));
}

TEST(ApLoadTracker, RejectsDuplicateSessionOnAp) {
  ApLoadTracker t(testing::mini_network(2));
  t.associate(1, 0, 10, 1.0);
  EXPECT_THROW(t.associate(1, 0, 10, 1.0), std::invalid_argument);
}

TEST(ApLoadTracker, RejectsUnknownDisconnect) {
  ApLoadTracker t(testing::mini_network(2));
  EXPECT_THROW(t.disconnect(99, 0), std::invalid_argument);
  t.associate(1, 0, 10, 1.0);
  EXPECT_THROW(t.disconnect(1, 1), std::invalid_argument);  // wrong AP
}

TEST(ApLoadTracker, RejectsOutOfRangeAp) {
  ApLoadTracker t(testing::mini_network(2));
  EXPECT_THROW(t.associate(1, 5, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.demand_mbps(5), std::invalid_argument);
  EXPECT_THROW(t.station_count(5), std::invalid_argument);
}

TEST(ApLoadTracker, CopyIsIndependent) {
  ApLoadTracker t(testing::mini_network(1));
  t.associate(1, 0, 0, 1.0);
  ApLoadTracker copy = t;
  copy.associate(2, 0, 1, 2.0);
  EXPECT_EQ(t.station_count(0), 1u);
  EXPECT_EQ(copy.station_count(0), 2u);
}

TEST(ApLoadTracker, FloatingPointDustClamped) {
  ApLoadTracker t(testing::mini_network(1));
  t.associate(1, 0, 0, 0.1);
  t.associate(2, 0, 1, 0.2);
  t.disconnect(1, 0);
  t.disconnect(2, 0);
  EXPECT_GE(t.demand_mbps(0), 0.0);
  EXPECT_EQ(t.station_count(0), 0u);
}

TEST(ApLoadTracker, HeadroomTracksCapacity) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 1;
  layout.ap_capacity_mbps = 10.0;
  ApLoadTracker t{wlan::make_campus(layout)};
  t.associate(1, 0, 0, 7.0);
  EXPECT_DOUBLE_EQ(t.headroom_mbps(0), 3.0);
  t.associate(2, 0, 1, 5.0);
  EXPECT_DOUBLE_EQ(t.headroom_mbps(0), -2.0);  // oversubscribed
}

}  // namespace
}  // namespace s3::sim
