#include "s3/trace/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace s3::trace {
namespace {

GeneratorConfig small_config(std::uint64_t seed = 1) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 200;
  cfg.num_days = 7;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  return cfg;
}

TEST(Generator, DeterministicInSeed) {
  const GeneratedTrace a = generate_campus_trace(small_config(9));
  const GeneratedTrace b = generate_campus_trace(small_config(9));
  ASSERT_EQ(a.workload.size(), b.workload.size());
  for (std::size_t i = 0; i < a.workload.size(); ++i) {
    const SessionRecord& sa = a.workload.session(i);
    const SessionRecord& sb = b.workload.session(i);
    EXPECT_EQ(sa.user, sb.user);
    EXPECT_EQ(sa.connect, sb.connect);
    EXPECT_EQ(sa.disconnect, sb.disconnect);
    EXPECT_DOUBLE_EQ(sa.demand_mbps, sb.demand_mbps);
    EXPECT_EQ(sa.traffic, sb.traffic);
  }
  EXPECT_EQ(a.truth.groups.size(), b.truth.groups.size());
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratedTrace a = generate_campus_trace(small_config(1));
  const GeneratedTrace b = generate_campus_trace(small_config(2));
  bool differs = a.workload.size() != b.workload.size();
  if (!differs) {
    for (std::size_t i = 0; i < a.workload.size() && !differs; ++i) {
      differs = a.workload.session(i).connect != b.workload.session(i).connect;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, WorkloadIsUnassigned) {
  const GeneratedTrace g = generate_campus_trace(small_config());
  EXPECT_FALSE(g.workload.empty());
  for (const SessionRecord& s : g.workload.sessions()) {
    EXPECT_EQ(s.ap, kInvalidAp);
  }
}

TEST(Generator, SessionsWithinConfiguredRanges) {
  const GeneratorConfig cfg = small_config();
  const GeneratedTrace g = generate_campus_trace(cfg);
  for (const SessionRecord& s : g.workload.sessions()) {
    EXPECT_LT(s.user, cfg.num_users);
    EXPECT_LT(s.building, cfg.layout.num_buildings);
    EXPECT_GT(s.demand_mbps, 0.0);
    EXPECT_LE(s.demand_mbps, cfg.per_user_rate_cap_mbps + 1e-12);
    EXPECT_GE(s.connect.seconds(), 0);
    EXPECT_GE(s.duration_s(), 300.0);  // 5-minute floor
    // Position inside the building.
    const wlan::BuildingConfig& b = g.network.building(s.building);
    EXPECT_GE(s.pos.x, b.origin.x);
    EXPECT_LE(s.pos.x, b.origin.x + b.width_m);
    EXPECT_GE(s.pos.y, b.origin.y);
    EXPECT_LE(s.pos.y, b.origin.y + b.depth_m);
  }
}

TEST(Generator, TrafficMatchesDemandIntegral) {
  const GeneratedTrace g = generate_campus_trace(small_config());
  for (const SessionRecord& s : g.workload.sessions()) {
    const double expected_bytes =
        s.demand_mbps * s.duration_s() / 8.0 * 1.0e6;
    EXPECT_NEAR(apps::total(s.traffic), expected_bytes,
                expected_bytes * 1e-9 + 1.0);
  }
}

TEST(Generator, GroundTruthConsistent) {
  const GeneratorConfig cfg = small_config();
  const GeneratedTrace g = generate_campus_trace(cfg);
  EXPECT_EQ(g.truth.user_archetype.size(), cfg.num_users);
  EXPECT_EQ(g.truth.user_groups.size(), cfg.num_users);
  for (const SocialGroupTruth& grp : g.truth.groups) {
    EXPECT_GE(grp.members.size(), cfg.min_group_size);
    EXPECT_LT(grp.archetype, kNumArchetypes);
    for (UserId m : grp.members) {
      const auto& ug = g.truth.user_groups[m];
      EXPECT_NE(std::find(ug.begin(), ug.end(), grp.id), ug.end());
    }
  }
  for (std::size_t a : g.truth.user_archetype) {
    EXPECT_LT(a, kNumArchetypes);
  }
}

TEST(Generator, GroupSessionsShareMeetingWindows) {
  // Sessions of one group with overlapping times should sit in the
  // group's building, close together in space.
  const GeneratedTrace g = generate_campus_trace(small_config());
  for (const SessionRecord& s : g.workload.sessions()) {
    if (s.group == kInvalidGroup) continue;
    EXPECT_EQ(s.building, g.truth.groups[s.group].building);
  }
}

TEST(Generator, CoLeavingStructureExists) {
  // Within a group's meeting, departures cluster: for a sample of group
  // sessions, another member should leave within 5 minutes.
  const GeneratedTrace g = generate_campus_trace(small_config());
  std::size_t clustered = 0, total = 0;
  const auto sessions = g.workload.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (sessions[i].group == kInvalidGroup) continue;
    ++total;
    for (std::size_t j = 0; j < sessions.size(); ++j) {
      if (j == i || sessions[j].group != sessions[i].group) continue;
      if (sessions[j].user == sessions[i].user) continue;
      if (std::llabs(sessions[j].disconnect.seconds() -
                     sessions[i].disconnect.seconds()) <= 300) {
        ++clustered;
        break;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(clustered) / static_cast<double>(total), 0.5);
}

TEST(Generator, ProfilesReflectArchetypes) {
  // A user's aggregate traffic mix should be closer to its own
  // archetype centroid than to the average other centroid.
  const GeneratedTrace g = generate_campus_trace(small_config());
  const auto centroids = archetype_centroids();
  std::vector<apps::AppMix> totals(200);
  for (const SessionRecord& s : g.workload.sessions()) {
    apps::accumulate(totals[s.user], s.traffic);
  }
  std::size_t closer = 0, counted = 0;
  for (UserId u = 0; u < 200; ++u) {
    if (apps::total(totals[u]) <= 0.0) continue;
    ++counted;
    const apps::AppMix norm = apps::normalized(totals[u]);
    const std::size_t own = g.truth.user_archetype[u];
    const double own_d = apps::l2_distance(norm, centroids[own]);
    double other_d = 0.0;
    for (std::size_t a = 0; a < kNumArchetypes; ++a) {
      if (a != own) other_d += apps::l2_distance(norm, centroids[a]);
    }
    other_d /= static_cast<double>(kNumArchetypes - 1);
    if (own_d < other_d) ++closer;
  }
  ASSERT_GT(counted, 100u);
  EXPECT_GT(static_cast<double>(closer) / static_cast<double>(counted), 0.9);
}

TEST(Generator, MeetingsStartNearClassHours) {
  const GeneratorConfig cfg = small_config();
  const GeneratedTrace g = generate_campus_trace(cfg);
  std::size_t near = 0, total = 0;
  for (const SessionRecord& s : g.workload.sessions()) {
    if (s.group == kInvalidGroup) continue;
    ++total;
    const std::int64_t sod = s.connect.second_of_day();
    for (int h : cfg.class_start_hours) {
      // Start jitter (±5 min) + arrival jitter (sigma 150 s).
      if (std::llabs(sod - h * 3600) <= 20 * 60) {
        ++near;
        break;
      }
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.95);
}

TEST(Generator, LongStaySessionsExist) {
  const GeneratedTrace g = generate_campus_trace(small_config());
  std::size_t long_background = 0;
  for (const SessionRecord& s : g.workload.sessions()) {
    if (s.group == kInvalidGroup && s.duration_s() >= 2.0 * 3600.0) {
      ++long_background;
    }
  }
  EXPECT_GT(long_background, 20u);  // dorm/library population exists
}

TEST(Generator, GroupMembersSitTogether) {
  // Sessions of the same group overlapping in time sit within a few
  // metres of each other (same room), so their candidate APs coincide.
  const GeneratedTrace g = generate_campus_trace(small_config());
  const auto sessions = g.workload.sessions();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < sessions.size() && checked < 200; ++i) {
    if (sessions[i].group == kInvalidGroup) continue;
    for (std::size_t j = i + 1; j < sessions.size(); ++j) {
      if (sessions[j].connect >= sessions[i].disconnect) break;
      if (sessions[j].group != sessions[i].group) continue;
      if (sessions[j].user == sessions[i].user) continue;
      // Same meeting: arrivals within the jitter envelope.
      if (std::llabs(sessions[j].connect.seconds() -
                     sessions[i].connect.seconds()) > 900) {
        continue;
      }
      EXPECT_LT(wlan::distance(sessions[i].pos, sessions[j].pos), 30.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 50u);
}

TEST(Generator, WeekendQuieter) {
  GeneratorConfig cfg = small_config();
  cfg.num_days = 14;
  const GeneratedTrace g = generate_campus_trace(cfg);
  std::size_t weekday = 0, weekend = 0;
  for (const SessionRecord& s : g.workload.sessions()) {
    (s.connect.day() % 7 < 5 ? weekday : weekend) += 1;
  }
  // 5 weekdays vs 2 weekend days; weekend activity also damped.
  EXPECT_GT(static_cast<double>(weekday) / 5.0,
            2.0 * static_cast<double>(weekend) / 2.0);
}

TEST(Generator, DiurnalWeightShape) {
  // Peaks at 10:00-11:00 and 15:00-16:00 beat 3am and noon-lull levels.
  const double morning_peak = diurnal_arrival_weight(10 * 3600 + 1800);
  const double afternoon_peak = diurnal_arrival_weight(15 * 3600 + 1800);
  const double night = diurnal_arrival_weight(3 * 3600);
  EXPECT_GT(morning_peak, 5.0 * night);
  EXPECT_GT(afternoon_peak, 5.0 * night);
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg = small_config();
  cfg.num_users = 4;
  EXPECT_THROW(generate_campus_trace(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.users_in_groups_fraction = 1.5;
  EXPECT_THROW(generate_campus_trace(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.class_start_hours.clear();
  EXPECT_THROW(generate_campus_trace(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.min_group_size = 1;
  EXPECT_THROW(generate_campus_trace(cfg), std::invalid_argument);
}

TEST(Generator, RateScaleScalesDemand) {
  GeneratorConfig a = small_config();
  GeneratorConfig b = small_config();
  b.rate_scale = 0.5;
  b.per_user_rate_cap_mbps = 1e9;  // disable cap to see pure scaling
  a.per_user_rate_cap_mbps = 1e9;
  const GeneratedTrace ga = generate_campus_trace(a);
  const GeneratedTrace gb = generate_campus_trace(b);
  ASSERT_EQ(ga.workload.size(), gb.workload.size());
  for (std::size_t i = 0; i < ga.workload.size(); i += 17) {
    EXPECT_NEAR(gb.workload.session(i).demand_mbps,
                0.5 * ga.workload.session(i).demand_mbps, 1e-9);
  }
}

TEST(Generator, ArchetypeTablesConsistent) {
  const auto centroids = archetype_centroids();
  for (const apps::AppMix& c : centroids) {
    EXPECT_NEAR(apps::total(c), 1.0, 1e-9);
  }
  for (double r : archetype_mean_rate_mbps()) {
    EXPECT_GT(r, 0.0);
  }
}

// Property sweep: structural invariants hold across seeds and scales.
struct GenParam {
  std::uint64_t seed;
  std::size_t users;
  std::size_t buildings;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorPropertyTest, StructuralInvariants) {
  const GenParam p = GetParam();
  GeneratorConfig cfg;
  cfg.seed = p.seed;
  cfg.num_users = p.users;
  cfg.num_days = 3;
  cfg.layout.num_buildings = p.buildings;
  cfg.layout.aps_per_building = 4;
  const GeneratedTrace g = generate_campus_trace(cfg);

  // Every user belongs to at most one group, and group members are
  // within the user population.
  std::set<UserId> seen;
  for (const SocialGroupTruth& grp : g.truth.groups) {
    for (UserId m : grp.members) {
      EXPECT_LT(m, p.users);
      EXPECT_TRUE(seen.insert(m).second) << "user in two groups";
    }
  }
  // Session timestamps ordered, positive durations.
  for (const SessionRecord& s : g.workload.sessions()) {
    EXPECT_LT(s.connect, s.disconnect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, GeneratorPropertyTest,
    ::testing::Values(GenParam{1, 64, 1}, GenParam{2, 200, 2},
                      GenParam{3, 500, 4}, GenParam{17, 128, 3}));

}  // namespace
}  // namespace s3::trace
