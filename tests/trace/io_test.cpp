#include "s3/trace/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::trace {
namespace {

using testing::SessionSpec;
using testing::make_trace;

TEST(TraceIo, RoundTripMiniTrace) {
  const Trace t = make_trace(3, {
      SessionSpec{.user = 0, .connect_s = 10, .disconnect_s = 700, .ap = 2},
      SessionSpec{.user = 2, .connect_s = 20, .disconnect_s = 900,
                  .demand_mbps = 2.5, .group = 4},
  }, 2);
  std::stringstream ss;
  ASSERT_TRUE(write_csv(ss, t));
  const ReadResult r = read_csv(ss);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  const Trace& back = *r.trace;
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.num_users(), 3u);
  EXPECT_EQ(back.num_days(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const SessionRecord& a = t.session(i);
    const SessionRecord& b = back.session(i);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.ap, b.ap);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.connect, b.connect);
    EXPECT_EQ(a.disconnect, b.disconnect);
    EXPECT_DOUBLE_EQ(a.demand_mbps, b.demand_mbps);
    EXPECT_EQ(a.rate_seed, b.rate_seed);
    for (std::size_t c = 0; c < apps::kNumCategories; ++c) {
      EXPECT_NEAR(a.traffic[c], b.traffic[c], 1e-6 * (1.0 + a.traffic[c]));
    }
  }
}

TEST(TraceIo, RoundTripGeneratedWorkload) {
  GeneratorConfig cfg;
  cfg.num_users = 64;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 4;
  const GeneratedTrace g = generate_campus_trace(cfg);
  std::stringstream ss;
  ASSERT_TRUE(write_csv(ss, g.workload));
  const ReadResult r = read_csv(ss);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  EXPECT_EQ(r.trace->size(), g.workload.size());
  EXPECT_FALSE(r.trace->fully_assigned());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const Trace t(5, 1, {});
  std::stringstream ss;
  ASSERT_TRUE(write_csv(ss, t));
  const ReadResult r = read_csv(ss);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  EXPECT_EQ(r.trace->size(), 0u);
  EXPECT_EQ(r.trace->num_users(), 5u);
}

TEST(TraceIo, RejectsMissingMetadata) {
  std::stringstream ss("not a trace\n");
  const ReadResult r = read_csv(ss);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("metadata"), std::string::npos);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("# s3lb trace v1 users=2 days=1\nwrong,header\n");
  const ReadResult r = read_csv(ss);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream good;
  write_csv(good, make_trace(1, {SessionSpec{.ap = 0}}));
  std::string text = good.str();
  text += "1,2,3\n";  // short row appended
  std::stringstream ss(text);
  const ReadResult r = read_csv(ss);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("fields"), std::string::npos);
}

TEST(TraceIo, RejectsUserOutOfRange) {
  std::stringstream good;
  write_csv(good, make_trace(1, {SessionSpec{.ap = 0}}));
  std::string text = good.str();
  // Duplicate the data row but bump the user id to 7 (> num_users).
  const std::size_t last_row = text.rfind("0,");
  std::string row = text.substr(last_row);
  row[0] = '7';
  text += row;
  std::stringstream ss(text);
  const ReadResult r = read_csv(ss);
  EXPECT_FALSE(r.trace.has_value());
}

TEST(TraceIo, RejectsNonPositiveDuration) {
  std::stringstream ss(
      "# s3lb trace v1 users=1 days=1\n"
      "user,ap,building,pos_x,pos_y,connect_s,disconnect_s,"
      "im_bytes,p2p_bytes,music_bytes,email_bytes,video_bytes,web_bytes,"
      "demand_mbps,group,rate_seed\n"
      "0,-,0,1,1,500,500,0,0,0,0,0,0,1.0,-,7\n");
  const ReadResult r = read_csv(ss);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("duration"), std::string::npos);
}

TEST(TraceIo, RejectsGarbageNumbers) {
  std::stringstream ss(
      "# s3lb trace v1 users=1 days=1\n"
      "user,ap,building,pos_x,pos_y,connect_s,disconnect_s,"
      "im_bytes,p2p_bytes,music_bytes,email_bytes,video_bytes,web_bytes,"
      "demand_mbps,group,rate_seed\n"
      "0,-,0,xx,1,0,600,0,0,0,0,0,0,1.0,-,7\n");
  const ReadResult r = read_csv(ss);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("parse"), std::string::npos);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/s3lb_io_test.csv";
  const Trace t = make_trace(2, {SessionSpec{.user = 1, .ap = 3}});
  ASSERT_TRUE(write_csv_file(path, t));
  const ReadResult r = read_csv_file(path);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  EXPECT_EQ(r.trace->size(), 1u);
  EXPECT_EQ(r.trace->session(0).ap, 3u);
}

TEST(TraceIo, MissingFileReportsError) {
  const ReadResult r = read_csv_file("/nonexistent/path/trace.csv");
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace s3::trace
