#include "s3/trace/trace.h"

#include <gtest/gtest.h>

#include "testing/mini.h"

namespace s3::trace {
namespace {

using testing::SessionSpec;
using testing::make_trace;

TEST(Trace, SortsByConnectThenUser) {
  const Trace t = make_trace(3, {
      SessionSpec{.user = 2, .connect_s = 100, .disconnect_s = 700},
      SessionSpec{.user = 0, .connect_s = 50, .disconnect_s = 600},
      SessionSpec{.user = 1, .connect_s = 100, .disconnect_s = 800},
  });
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.session(0).user, 0u);
  EXPECT_EQ(t.session(1).user, 1u);  // equal connect: lower user first
  EXPECT_EQ(t.session(2).user, 2u);
}

TEST(Trace, ValidatesRecords) {
  EXPECT_THROW(make_trace(1, {SessionSpec{.user = 5}}),
               std::invalid_argument);  // user out of range
  EXPECT_THROW(
      make_trace(1, {SessionSpec{.connect_s = 100, .disconnect_s = 100}}),
      std::invalid_argument);  // zero duration
  EXPECT_THROW(
      make_trace(1, {SessionSpec{.demand_mbps = -1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      make_trace(1, {SessionSpec{.web_bytes = -2.0}}),
      std::invalid_argument);
  EXPECT_THROW(Trace(0, 1, {}), std::invalid_argument);  // no users
}

TEST(Trace, FullyAssigned) {
  EXPECT_FALSE(make_trace(1, {SessionSpec{}}).fully_assigned());
  EXPECT_TRUE(make_trace(1, {SessionSpec{.ap = 0}}).fully_assigned());
  EXPECT_TRUE(Trace(1, 1, {}).fully_assigned());  // vacuously
}

TEST(Trace, SessionsOfUser) {
  const Trace t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 300},
      SessionSpec{.user = 1, .connect_s = 10, .disconnect_s = 310},
      SessionSpec{.user = 0, .connect_s = 400, .disconnect_s = 900},
  });
  const auto idx = t.sessions_of_user(0);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(t.session(idx[0]).connect.seconds(), 0);
  EXPECT_EQ(t.session(idx[1]).connect.seconds(), 400);
  EXPECT_THROW(t.sessions_of_user(2), std::invalid_argument);
}

TEST(Trace, WithAssignments) {
  const Trace t = make_trace(2, {
      SessionSpec{.user = 0},
      SessionSpec{.user = 1, .connect_s = 5, .disconnect_s = 700},
  });
  const std::vector<ApId> aps = {3, 1};
  const Trace assigned = t.with_assignments(aps);
  EXPECT_TRUE(assigned.fully_assigned());
  EXPECT_EQ(assigned.session(0).ap, 3u);
  EXPECT_EQ(assigned.session(1).ap, 1u);
  // Original untouched.
  EXPECT_FALSE(t.fully_assigned());
  EXPECT_THROW(t.with_assignments(std::vector<ApId>{1}),
               std::invalid_argument);
}

TEST(Trace, SliceKeepsOverlappingWhole) {
  const Trace t = make_trace(1, {
      SessionSpec{.connect_s = 0, .disconnect_s = 1000},
      SessionSpec{.connect_s = 2000, .disconnect_s = 2600},
      SessionSpec{.connect_s = 900, .disconnect_s = 2100},
  });
  const Trace sliced = t.slice(util::SimTime(950), util::SimTime(1500));
  ASSERT_EQ(sliced.size(), 2u);
  // Timestamps are not clipped.
  EXPECT_EQ(sliced.session(0).connect.seconds(), 0);
  EXPECT_EQ(sliced.session(1).disconnect.seconds(), 2100);
}

TEST(Trace, SliceHalfOpenBoundaries) {
  const Trace t = make_trace(1, {
      SessionSpec{.connect_s = 100, .disconnect_s = 200},
  });
  // Session [100, 200) does not overlap [200, 300) or [0, 100).
  EXPECT_EQ(t.slice(util::SimTime(200), util::SimTime(300)).size(), 0u);
  EXPECT_EQ(t.slice(util::SimTime(0), util::SimTime(100)).size(), 0u);
  EXPECT_EQ(t.slice(util::SimTime(199), util::SimTime(200)).size(), 1u);
}

TEST(Trace, EndTime) {
  EXPECT_EQ(Trace(1, 1, {}).end_time().seconds(), 0);
  const Trace t = make_trace(1, {
      SessionSpec{.connect_s = 0, .disconnect_s = 500},
      SessionSpec{.connect_s = 100, .disconnect_s = 2000},
  });
  EXPECT_EQ(t.end_time().seconds(), 2000);
}

TEST(SessionRecord, Helpers) {
  const SessionRecord s =
      testing::make_session(SessionSpec{.connect_s = 100, .disconnect_s = 400});
  EXPECT_DOUBLE_EQ(s.duration_s(), 300.0);
  EXPECT_FALSE(s.assigned());
  EXPECT_TRUE(s.overlaps(util::SimTime(0), util::SimTime(101)));
  EXPECT_FALSE(s.overlaps(util::SimTime(400), util::SimTime(500)));
  EXPECT_FALSE(s.overlaps(util::SimTime(0), util::SimTime(100)));
}

}  // namespace
}  // namespace s3::trace
