#include "s3/trace/binary_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "s3/trace/generator.h"
#include "s3/trace/io.h"
#include "testing/mini.h"

namespace s3::trace {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;

TEST(BinaryIo, RoundTripIsBitExact) {
  GeneratorConfig cfg;
  cfg.seed = 19;
  cfg.num_users = 120;
  cfg.num_days = 3;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 4;
  const GeneratedTrace g = generate_campus_trace(cfg);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(write_binary(ss, g.workload));
  const BinaryReadResult r = read_binary(ss);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  ASSERT_EQ(r.trace->size(), g.workload.size());
  EXPECT_EQ(r.trace->num_users(), g.workload.num_users());
  EXPECT_EQ(r.trace->num_days(), g.workload.num_days());
  for (std::size_t i = 0; i < g.workload.size(); ++i) {
    const SessionRecord& a = g.workload.session(i);
    const SessionRecord& b = r.trace->session(i);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.ap, b.ap);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.connect, b.connect);
    EXPECT_EQ(a.disconnect, b.disconnect);
    // Bit-exact doubles — the point of the binary format.
    EXPECT_EQ(a.demand_mbps, b.demand_mbps);
    EXPECT_EQ(a.pos.x, b.pos.x);
    EXPECT_EQ(a.traffic, b.traffic);
    EXPECT_EQ(a.rate_seed, b.rate_seed);
  }
}

TEST(BinaryIo, AssignedTraceKeepsAps) {
  const Trace t = make_trace(2, {
      SessionSpec{.user = 0, .ap = 3},
      SessionSpec{.user = 1, .connect_s = 5, .disconnect_s = 700},
  });
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(write_binary(ss, t));
  const BinaryReadResult r = read_binary(ss);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  EXPECT_EQ(r.trace->session(0).ap, 3u);
  EXPECT_EQ(r.trace->session(1).ap, kInvalidAp);
}

TEST(BinaryIo, SniffDetectsFormat) {
  const Trace t = make_trace(1, {SessionSpec{}});
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(bin, t);
  EXPECT_TRUE(sniff_binary(bin));
  // Sniffing must not consume the stream.
  const BinaryReadResult r = read_binary(bin);
  EXPECT_TRUE(r.trace.has_value()) << r.error;

  std::stringstream csv;
  write_csv(csv, t);
  EXPECT_FALSE(sniff_binary(csv));
  const ReadResult rc = read_csv(csv);
  EXPECT_TRUE(rc.trace.has_value()) << rc.error;
}

TEST(BinaryIo, RejectsGarbage) {
  std::stringstream ss("definitely not binary");
  const BinaryReadResult r = read_binary(ss);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_NE(r.error.find("magic"), std::string::npos);
  EXPECT_EQ(r.code, BinaryReadError::kBadMagic);
}

TEST(BinaryIo, RejectsTruncation) {
  const Trace t = make_trace(2, {
      SessionSpec{.user = 0},
      SessionSpec{.user = 1, .connect_s = 3, .disconnect_s = 700},
  });
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, t);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 10);  // chop mid-record
  std::stringstream cut(bytes,
                        std::ios::in | std::ios::out | std::ios::binary);
  const BinaryReadResult r = read_binary(cut);
  EXPECT_FALSE(r.trace.has_value());
  // A seekable stream is rejected up front: the header's session count
  // no longer fits the bytes present.
  EXPECT_NE(r.error.find("truncated"), std::string::npos);
  EXPECT_EQ(r.code, BinaryReadError::kSizeMismatch);
}

TEST(BinaryIo, RejectsHeaderCountInconsistentWithStreamSize) {
  const Trace t = make_trace(1, {SessionSpec{.user = 0}});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, t);
  std::string bytes = ss.str();
  // Inflate the header's num_sessions (offset 24, little-endian u64)
  // without adding record bytes.
  bytes[24] = 9;
  std::stringstream lying(bytes,
                          std::ios::in | std::ios::out | std::ios::binary);
  const BinaryReadResult r = read_binary(lying);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_EQ(r.code, BinaryReadError::kSizeMismatch);
  EXPECT_NE(r.error.find("9 sessions"), std::string::npos);
}

TEST(BinaryIo, RejectsBadHeaderAndBadRecordWithTypedCodes) {
  const Trace t = make_trace(1, {SessionSpec{.user = 0}});
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, t);
  std::string bytes = ss.str();

  std::string zero_users = bytes;
  zero_users[8] = 0;  // num_users u64 at offset 8
  std::stringstream zu(zero_users,
                       std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_EQ(read_binary(zu).code, BinaryReadError::kBadHeader);

  std::string bad_user = bytes;
  bad_user[sizeof(char[8]) + 3 * sizeof(std::uint64_t)] = 7;  // record.user
  std::stringstream bu(bad_user,
                       std::ios::in | std::ios::out | std::ios::binary);
  const BinaryReadResult r = read_binary(bu);
  EXPECT_EQ(r.code, BinaryReadError::kBadRecord);
  EXPECT_NE(r.error.find("user id out of range"), std::string::npos);
}

TEST(BinaryIo, ErrorCodesHaveNames) {
  EXPECT_EQ(to_string(BinaryReadError::kNone), "none");
  EXPECT_EQ(to_string(BinaryReadError::kSizeMismatch), "size-mismatch");
  EXPECT_EQ(to_string(BinaryReadError::kTruncatedRecord), "truncated-record");
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/s3lb_trace.bin";
  const Trace t = make_trace(2, {SessionSpec{.user = 1, .ap = 0}});
  ASSERT_TRUE(write_binary_file(path, t));
  const BinaryReadResult r = read_binary_file(path);
  ASSERT_TRUE(r.trace.has_value()) << r.error;
  EXPECT_EQ(r.trace->size(), 1u);
  EXPECT_FALSE(read_binary_file("/nonexistent.bin").trace.has_value());
}

}  // namespace
}  // namespace s3::trace
