# End-to-end test of `s3lb serve`: train a model, drive the line
# protocol from a request script, and hold the responses to a golden.
# The pipeline is deterministic for a fixed model + script, so two runs
# must produce byte-identical output. Invoked by ctest with
# -DCLI=<path-to-binary>.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<s3lb binary>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/serve_cli_test_work")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: OK")
endfunction()

# Model pipeline: generate -> replay(llf) -> train.
run_cli(generate --out "${WORK}/w.csv" --users 300 --days 5
        --buildings 2 --aps 1 --seed 3)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/collected.csv"
        --policy llf --buildings 2 --aps 1)
run_cli(train --in "${WORK}/collected.csv" --out "${WORK}/model.txt")

# Request script: two users share an AP neighbourhood for >10 min and
# leave within 5 min of each other — an encounter and a co-leaving the
# live model must record (visible as updated_pairs in `stats`).
file(WRITE "${WORK}/requests.txt"
"# serve protocol script
arrive 1 10 0 8 6 0 1.5
arrive 2 11 0 9 6 30 1.0
arrive 3 12 1 8 6 60 2.0
stats
depart 1 900
depart 2 1000
depart 3 1200
stats
depart 9 1300
arrive 1 10 0 8 6 1400 1.5
depart 1 1500
")

run_cli(serve --model "${WORK}/model.txt" --buildings 2 --aps 1
        --in "${WORK}/requests.txt" --out "${WORK}/responses.txt")
run_cli(serve --model "${WORK}/model.txt" --buildings 2 --aps 1
        --in "${WORK}/requests.txt" --out "${WORK}/responses2.txt")

# Determinism: identical runs, byte for byte.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK}/responses.txt" "${WORK}/responses2.txt"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "serve responses differ between identical runs")
endif()

# Response golden: one line per request, in request order.
file(READ "${WORK}/responses.txt" responses)
string(REGEX MATCHALL "[^\n]+" lines "${responses}")
list(LENGTH lines nlines)
if(NOT nlines EQUAL 11)
  message(FATAL_ERROR "expected 11 response lines, got ${nlines}:\n${responses}")
endif()
set(expected_patterns
    "^place 1 [0-9]+$"
    "^place 2 [0-9]+$"
    "^place 3 [0-9]+$"
    "^stats placements=3 departures=0 active=3 fallback=0 overloads=0 rejected=0 updated_pairs=0$"
    "^gone 1$"
    "^gone 2$"
    "^gone 3$"
    "^stats placements=3 departures=3 active=0 fallback=0 overloads=0 rejected=0 updated_pairs=1$"
    "^gone 9 unknown$"
    "^place 1 [0-9]+$"
    "^gone 1$")
set(i 0)
foreach(pattern IN LISTS expected_patterns)
  list(GET lines ${i} line)
  if(NOT line MATCHES "${pattern}")
    message(FATAL_ERROR
            "response line ${i} mismatch: got \"${line}\", want ${pattern}")
  endif()
  math(EXPR i "${i} + 1")
endforeach()
message(STATUS "serve golden: 11/11 response lines match")

# A social policy without a model must be refused.
execute_process(COMMAND ${CLI} serve --buildings 2 --aps 1
                        --in "${WORK}/requests.txt"
                RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve --policy s3 without --model should fail")
endif()

# Baselines need no model.
run_cli(serve --policy llf --buildings 2 --aps 1
        --in "${WORK}/requests.txt" --out "${WORK}/llf_responses.txt")
