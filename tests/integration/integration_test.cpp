// End-to-end pipeline tests on a small campus: generate -> persist ->
// replay -> learn -> compare, plus whole-pipeline determinism.

#include <gtest/gtest.h>

#include <sstream>

#include "s3/analysis/events.h"
#include "s3/analysis/profiles.h"
#include "s3/core/evaluation.h"
#include "s3/trace/io.h"

namespace s3 {
namespace {

trace::GeneratedTrace make_world(std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_users = 250;
  cfg.num_days = 10;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  return trace::generate_campus_trace(cfg);
}

TEST(Integration, FullPipelineRuns) {
  const auto world = make_world(3);

  core::EvaluationConfig eval;
  eval.train_days = 8;
  eval.test_days = 2;

  const core::ComparisonResult r =
      core::compare_s3_vs_llf(world.network, world.workload, eval);
  EXPECT_GT(r.llf.slots_scored, 50u);
  EXPECT_GT(r.s3.mean, 0.2);
  EXPECT_LT(r.s3.mean, 1.0);
}

TEST(Integration, PipelineSurvivesCsvRoundTrip) {
  const auto world = make_world(4);

  std::stringstream ss;
  ASSERT_TRUE(trace::write_csv(ss, world.workload));
  const trace::ReadResult rr = trace::read_csv(ss);
  ASSERT_TRUE(rr.trace.has_value()) << rr.error;

  core::EvaluationConfig eval;
  eval.train_days = 8;
  eval.test_days = 2;
  core::LlfSelector a_llf(eval.baseline_metric), b_llf(eval.baseline_metric);
  const core::PolicyScore a =
      core::score_policy(world.network, world.workload, a_llf, eval);
  const core::PolicyScore b =
      core::score_policy(world.network, *rr.trace, b_llf, eval);
  EXPECT_NEAR(a.mean, b.mean, 1e-9);  // CSV round trip changed nothing
}

TEST(Integration, TrainedModelReflectsGroundTruthGroups) {
  const auto world = make_world(5);
  core::EvaluationConfig eval;
  eval.train_days = 8;
  eval.test_days = 2;
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  // At least half of same-group pairs cross the theta threshold.
  std::size_t strong = 0, total = 0;
  for (const auto& grp : world.truth.groups) {
    for (std::size_t i = 0; i < grp.members.size(); ++i) {
      for (std::size_t j = i + 1; j < grp.members.size(); ++j) {
        ++total;
        if (model.theta(grp.members[i], grp.members[j]) > 0.3) ++strong;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(strong) / static_cast<double>(total), 0.5);
}

TEST(Integration, AnalysisChainOnAssignedTrace) {
  const auto world = make_world(6);
  core::LlfSelector llf;
  const sim::ReplayResult r =
      sim::replay(world.network, world.workload, llf);
  ASSERT_TRUE(r.assigned.fully_assigned());

  // Event extraction and profile building run cleanly on the result.
  const auto stats = analysis::extract_pair_stats(r.assigned, {});
  EXPECT_GT(stats.size(), 10u);
  const auto leave = analysis::per_user_leave_stats(
      r.assigned, util::SimTime::from_minutes(5));
  EXPECT_EQ(leave.size(), r.assigned.num_users());
  const apps::ProfileStore profiles = analysis::build_profiles(r.assigned);
  EXPECT_EQ(profiles.num_users(), r.assigned.num_users());

  // Most users show some co-leaving (Fig. 5's qualitative claim).
  std::size_t social_users = 0, active_users = 0;
  for (const auto& s : leave) {
    if (s.leavings == 0) continue;
    ++active_users;
    if (s.co_leavings > 0) ++social_users;
  }
  ASSERT_GT(active_users, 100u);
  EXPECT_GT(static_cast<double>(social_users) /
                static_cast<double>(active_users),
            0.5);
}

TEST(Integration, WholePipelineDeterministic) {
  const auto w1 = make_world(9);
  const auto w2 = make_world(9);
  core::EvaluationConfig eval;
  eval.train_days = 8;
  eval.test_days = 2;
  const core::ComparisonResult a =
      core::compare_s3_vs_llf(w1.network, w1.workload, eval);
  const core::ComparisonResult b =
      core::compare_s3_vs_llf(w2.network, w2.workload, eval);
  EXPECT_DOUBLE_EQ(a.s3.mean, b.s3.mean);
  EXPECT_DOUBLE_EQ(a.llf.mean, b.llf.mean);
  EXPECT_DOUBLE_EQ(a.balance_gain, b.balance_gain);
}

TEST(Integration, S3NeverViolatesCandidates) {
  const auto world = make_world(10);
  core::EvaluationConfig eval;
  eval.train_days = 8;
  eval.test_days = 2;
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);
  core::S3Selector s3(&world.network, &model, eval.s3);
  const trace::Trace test = world.workload.slice(
      util::SimTime::from_days(8), util::SimTime::from_days(10));
  const sim::ReplayResult r =
      sim::replay(world.network, test, s3, eval.replay);
  for (const trace::SessionRecord& s : r.assigned.sessions()) {
    const auto cands = wlan::candidate_aps(world.network, eval.replay.radio,
                                           s.building, s.pos);
    EXPECT_NE(std::find(cands.begin(), cands.end(), s.ap), cands.end());
  }
}

}  // namespace
}  // namespace s3
