// Boundary cases of the fault/recovery machinery: abandonment at
// exactly max_attempts, an outage window ending exactly on a batch
// flush boundary, and the RECOVERING -> DEGRADED relapse one clean
// batch short of healthy.

#include <gtest/gtest.h>

#include "s3/core/selector_factory.h"
#include "s3/fault/degradation.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/runtime/replay_driver.h"
#include "testing/mini.h"

namespace s3::fault {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

/// One user on a one-AP domain so every retry timing is hand-checkable:
/// eviction retries immediately, then backs off 5 s, 10 s, 20 s, ...
sim::ReplayResult run_one_session(const FaultInjector& injector,
                                  const RecoveryPolicy& recovery,
                                  std::int64_t window_s) {
  const wlan::Network net = mini_network(1, 1);
  const trace::Trace workload =
      make_trace(1, {SessionSpec{.user = 0, .connect_s = 0,
                                 .disconnect_s = 10000}});
  const core::LlfFactory factory(core::LoadMetric::kStations);
  runtime::ReplayDriverConfig rc;
  rc.replay.dispatch_window_s = window_s;
  rc.threads = 1;
  rc.injector = &injector;
  rc.recovery = recovery;
  return runtime::ReplayDriver(net, rc).run(workload, factory);
}

TEST(RecoveryBoundary, AbandonsAtExactlyMaxAttempts) {
  // Eviction at 100 retries at 100 (attempt 1, due 105), 105 (attempt
  // 2, due 115) and 115 — where attempt 3 == max_attempts abandons the
  // session even though the AP comes back later.
  FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(100), util::SimTime(9000)});
  const FaultInjector injector(plan, 1);
  RecoveryPolicy recovery;
  recovery.max_attempts = 3;
  const sim::ReplayResult r = run_one_session(injector, recovery, 0);
  EXPECT_EQ(r.stats.fault_evictions, 1u);
  EXPECT_EQ(r.stats.abandoned_sessions, 1u);
  EXPECT_EQ(r.stats.reassociations, 0u);
  // Eviction's immediate re-scan plus the two backoff requeues; the
  // abandoning attempt itself is not a retry.
  EXPECT_EQ(r.stats.retry_attempts, 3u);
}

TEST(RecoveryBoundary, OneAttemptAboveTheCapReassociates) {
  // Same timeline with max_attempts 4: attempt 3 requeues for 135, the
  // outage ends at 130, and the 135 re-scan succeeds.
  FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(100), util::SimTime(130)});
  const FaultInjector injector(plan, 1);
  RecoveryPolicy recovery;
  recovery.max_attempts = 4;
  const sim::ReplayResult r = run_one_session(injector, recovery, 0);
  EXPECT_EQ(r.stats.fault_evictions, 1u);
  EXPECT_EQ(r.stats.abandoned_sessions, 0u);
  EXPECT_EQ(r.stats.reassociations, 1u);
  EXPECT_EQ(r.stats.retry_attempts, 4u);
  EXPECT_TRUE(r.assigned.fully_assigned());
}

TEST(RecoveryBoundary, OutageEndingOnFlushBoundaryServesTheBatch) {
  // Windows are half-open: an outage ending exactly at the batch's
  // flush deadline (t = 120) leaves the AP up when the flush filters
  // candidates, so the batch is served with no retry detour.
  FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(60), util::SimTime(120)});
  const FaultInjector injector(plan, 1);
  const sim::ReplayResult r = run_one_session(injector, RecoveryPolicy{}, 120);
  EXPECT_EQ(r.stats.retry_attempts, 0u);
  EXPECT_EQ(r.stats.abandoned_sessions, 0u);
  EXPECT_TRUE(r.assigned.fully_assigned());
}

TEST(RecoveryBoundary, OutageOverlappingFlushBoundaryDefersTheBatch) {
  // One second longer and the flush at 120 sees the AP down: the whole
  // candidate set is filtered, the session takes the retry path and
  // re-associates once the window closes.
  FaultPlan plan;
  plan.ap_outages.push_back({0, util::SimTime(60), util::SimTime(121)});
  const FaultInjector injector(plan, 1);
  const sim::ReplayResult r = run_one_session(injector, RecoveryPolicy{}, 120);
  EXPECT_EQ(r.stats.retry_attempts, 1u);
  EXPECT_EQ(r.stats.reassociations, 1u);
  EXPECT_EQ(r.stats.abandoned_sessions, 0u);
  EXPECT_TRUE(r.assigned.fully_assigned());
}

TEST(RecoveryBoundary, RelapseOneCleanBatchShortOfHealthy) {
  DegradationTracker t(3);
  EXPECT_TRUE(t.on_batch_start(true));   // HEALTHY -> DEGRADED
  EXPECT_FALSE(t.on_batch_start(false)); // DEGRADED -> RECOVERING
  t.on_batch_end(true);                  // clean 1
  t.on_batch_start(false);
  t.on_batch_end(true);                  // clean 2 — one short of healthy
  ASSERT_EQ(t.state(), HealthState::kRecovering);
  ASSERT_EQ(t.clean_run(), 2u);

  // Stress right at the boundary relapses and resets the clean run.
  EXPECT_TRUE(t.on_batch_start(true));
  EXPECT_EQ(t.state(), HealthState::kDegraded);
  EXPECT_EQ(t.clean_run(), 0u);
  EXPECT_EQ(t.stats().to_degraded, 2u);
  EXPECT_EQ(t.stats().to_healthy, 0u);

  // The re-recovery needs the full three clean batches again.
  t.on_batch_start(false);  // -> RECOVERING
  t.on_batch_end(true);
  t.on_batch_start(false);
  t.on_batch_end(true);
  EXPECT_EQ(t.state(), HealthState::kRecovering);
  t.on_batch_start(false);
  t.on_batch_end(true);  // clean 3 flips exactly here
  EXPECT_EQ(t.state(), HealthState::kHealthy);
  EXPECT_EQ(t.stats().to_healthy, 1u);
}

}  // namespace
}  // namespace s3::fault
