#include "s3/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testing/mini.h"

namespace s3::fault {
namespace {

using s3::testing::mini_network;

TEST(FaultPlanParse, FullPlanRoundTrips) {
  const std::string text =
      "# resilience drill\n"
      "s3fault v1\n"
      "ap-outage 3 100 200\n"
      "ap-outage 1 50 75\n"
      "model-outage 10 20\n"
      "clique-budget 5 15 64\n"
      "admission-failure 0.25 100 400\n";
  const FaultPlanParseResult r = parse_fault_plan(text);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.plan.ap_outages.size(), 2u);
  EXPECT_EQ(r.plan.ap_outages[0].ap, 3u);
  EXPECT_EQ(r.plan.ap_outages[0].begin.seconds(), 100);
  EXPECT_EQ(r.plan.ap_outages[0].end.seconds(), 200);
  ASSERT_EQ(r.plan.model_outages.size(), 1u);
  ASSERT_EQ(r.plan.clique_squeezes.size(), 1u);
  EXPECT_EQ(r.plan.clique_squeezes[0].node_budget, 64u);
  EXPECT_DOUBLE_EQ(r.plan.admission.failure_probability, 0.25);
  EXPECT_EQ(r.plan.admission.begin.seconds(), 100);
  EXPECT_EQ(r.plan.admission.end.seconds(), 400);

  // write -> parse is the identity on the plan content.
  const FaultPlanParseResult again = parse_fault_plan(write_fault_plan(r.plan));
  ASSERT_TRUE(again.ok()) << again.error;
  ASSERT_EQ(again.plan.ap_outages.size(), 2u);
  EXPECT_EQ(again.plan.ap_outages[1].ap, 1u);
  EXPECT_DOUBLE_EQ(again.plan.admission.failure_probability, 0.25);
}

TEST(FaultPlanParse, ModelStaleIsAnAliasForModelOutage) {
  const FaultPlanParseResult r =
      parse_fault_plan("s3fault v1\nmodel-stale 0 10\n");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.plan.model_outages.size(), 1u);
}

TEST(FaultPlanParse, ErrorsNameTheLine) {
  const FaultPlanParseResult no_magic = parse_fault_plan("ap-outage 0 1 2\n");
  EXPECT_FALSE(no_magic.ok());
  EXPECT_NE(no_magic.error.find("s3fault v1"), std::string::npos);

  const FaultPlanParseResult bad_window =
      parse_fault_plan("s3fault v1\nap-outage 0 200 100\n");
  EXPECT_FALSE(bad_window.ok());
  EXPECT_NE(bad_window.error.find("line 2"), std::string::npos);

  const FaultPlanParseResult bad_p =
      parse_fault_plan("s3fault v1\nadmission-failure 1.5\n");
  EXPECT_FALSE(bad_p.ok());

  const FaultPlanParseResult junk =
      parse_fault_plan("s3fault v1\nap-outage 0 1 2trailing\n");
  EXPECT_FALSE(junk.ok());

  const FaultPlanParseResult unknown =
      parse_fault_plan("s3fault v1\npower-cut 0 1\n");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error.find("power-cut"), std::string::npos);
}

TEST(FaultPlanParse, EmptyPlanPredicate) {
  const FaultPlanParseResult r = parse_fault_plan("s3fault v1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.plan.empty());
  FaultPlan p = r.plan;
  p.admission.failure_probability = 0.1;
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlanValidate, RejectsUnknownApAgainstTopology) {
  const auto net = mini_network(4);
  FaultPlan plan;
  plan.ap_outages.push_back({99, util::SimTime(0), util::SimTime(10)});
  EXPECT_NO_THROW(validate_plan(plan));  // no topology: ids unbounded
  EXPECT_THROW(validate_plan(plan, &net), std::invalid_argument);
}

TEST(FaultPlanCanned, ApChurnStaysInsideHorizonAndTopology) {
  const auto net = mini_network(4, 3);  // 12 APs over 3 controllers
  const util::SimTime begin(1000), end(1000 + 24 * 3600);
  const FaultPlan plan = canned_ap_churn_plan(net, begin, end);
  ASSERT_FALSE(plan.ap_outages.empty());
  for (const ApOutage& o : plan.ap_outages) {
    EXPECT_LT(o.ap, net.num_aps());
    EXPECT_GE(o.begin, begin);
    EXPECT_LE(o.end, end);
    EXPECT_LT(o.begin, o.end);
  }
}

TEST(FaultPlanParse, ControllerOutageRoundTrips) {
  const std::string text =
      "s3fault v1\n"
      "controller-outage 2 100 200\n"
      "controller-outage 0 300 400\n";
  const FaultPlanParseResult r = parse_fault_plan(text);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.plan.controller_outages.size(), 2u);
  EXPECT_EQ(r.plan.controller_outages[0].controller, 2u);
  EXPECT_EQ(r.plan.controller_outages[0].begin.seconds(), 100);
  EXPECT_EQ(r.plan.controller_outages[0].end.seconds(), 200);
  EXPECT_FALSE(r.plan.empty());

  const FaultPlanParseResult again = parse_fault_plan(write_fault_plan(r.plan));
  ASSERT_TRUE(again.ok()) << again.error;
  ASSERT_EQ(again.plan.controller_outages.size(), 2u);
  EXPECT_EQ(again.plan.controller_outages[1].controller, 0u);
  EXPECT_EQ(again.plan.controller_outages[1].begin.seconds(), 300);
}

TEST(FaultPlanParse, ControllerOutageErrorsNameTheLine) {
  const FaultPlanParseResult short_line =
      parse_fault_plan("s3fault v1\ncontroller-outage 0 100\n");
  EXPECT_FALSE(short_line.ok());
  EXPECT_NE(short_line.error.find("line 2"), std::string::npos);

  const FaultPlanParseResult inverted =
      parse_fault_plan("s3fault v1\ncontroller-outage 0 200 100\n");
  EXPECT_FALSE(inverted.ok());

  const FaultPlanParseResult negative =
      parse_fault_plan("s3fault v1\ncontroller-outage 0 -5 100\n");
  EXPECT_FALSE(negative.ok());
}

TEST(FaultPlanValidate, RejectsOverlappingControllerWindows) {
  // Overlap for one controller is nonsensical — the window's begin
  // crashes the replica its end restarts — so it is a hard error even
  // without a topology.
  FaultPlan plan;
  plan.controller_outages.push_back({0, util::SimTime(0), util::SimTime(100)});
  plan.controller_outages.push_back({0, util::SimTime(50), util::SimTime(150)});
  EXPECT_THROW(validate_plan(plan), std::invalid_argument);

  // The same windows on different controllers are fine.
  plan.controller_outages[1].controller = 1;
  EXPECT_NO_THROW(validate_plan(plan));

  // Touching half-open windows on one controller are fine too.
  plan.controller_outages[1].controller = 0;
  plan.controller_outages[1].begin = util::SimTime(100);
  EXPECT_NO_THROW(validate_plan(plan));
}

TEST(FaultPlanValidate, RejectsUnknownControllerAgainstTopology) {
  const auto net = mini_network(4, 2);  // 2 controllers
  FaultPlan plan;
  plan.controller_outages.push_back({7, util::SimTime(0), util::SimTime(10)});
  EXPECT_NO_THROW(validate_plan(plan));
  EXPECT_THROW(validate_plan(plan, &net), std::invalid_argument);
}

TEST(FaultPlanCanned, ControllerChurnStridesDisjointWindows) {
  const auto net = mini_network(4, 4);
  const util::SimTime begin(1000), end(1000 + 24 * 3600);
  const FaultPlan plan = canned_controller_churn_plan(net, begin, end);
  ASSERT_FALSE(plan.controller_outages.empty());
  for (const ControllerOutage& o : plan.controller_outages) {
    EXPECT_LT(o.controller, net.num_controllers());
    EXPECT_GE(o.begin, begin);
    EXPECT_LE(o.end, end);
    EXPECT_LT(o.begin, o.end);
  }
  // Staggered starts never go backwards, and validate_plan accepted the
  // per-controller disjointness by construction.
  for (std::size_t i = 1; i < plan.controller_outages.size(); ++i) {
    EXPECT_LE(plan.controller_outages[i - 1].begin,
              plan.controller_outages[i].begin);
  }
  EXPECT_NO_THROW(validate_plan(plan, &net));
}

TEST(FaultPlanParse, ControllerLossRoundTrips) {
  const std::string text =
      "s3fault v1\n"
      "controller-loss 1 500 900\n"
      "controller-outage 1 100 200\n";
  const FaultPlanParseResult r = parse_fault_plan(text);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.plan.controller_losses.size(), 1u);
  EXPECT_EQ(r.plan.controller_losses[0].controller, 1u);
  EXPECT_EQ(r.plan.controller_losses[0].begin.seconds(), 500);
  EXPECT_EQ(r.plan.controller_losses[0].end.seconds(), 900);
  EXPECT_FALSE(r.plan.empty());

  const FaultPlanParseResult again = parse_fault_plan(write_fault_plan(r.plan));
  ASSERT_TRUE(again.ok()) << again.error;
  ASSERT_EQ(again.plan.controller_losses.size(), 1u);
  EXPECT_EQ(again.plan.controller_losses[0].end.seconds(), 900);

  EXPECT_FALSE(parse_fault_plan("s3fault v1\ncontroller-loss 0 100\n").ok());
  EXPECT_FALSE(
      parse_fault_plan("s3fault v1\ncontroller-loss 0 200 100\n").ok());
}

TEST(FaultPlanValidate, RejectsLossOverlappingLossOrOutage) {
  // A loss window overlapping another loss — or an outage — of the same
  // controller is nonsensical: the replica set cannot die twice at once.
  FaultPlan plan;
  plan.controller_losses.push_back({0, util::SimTime(0), util::SimTime(100)});
  plan.controller_losses.push_back({0, util::SimTime(50), util::SimTime(150)});
  EXPECT_THROW(validate_plan(plan), std::invalid_argument);

  plan.controller_losses.pop_back();
  plan.controller_outages.push_back({0, util::SimTime(50), util::SimTime(150)});
  EXPECT_THROW(validate_plan(plan), std::invalid_argument);

  // Different controllers, or touching half-open windows, are fine.
  plan.controller_outages[0].controller = 1;
  EXPECT_NO_THROW(validate_plan(plan));
  plan.controller_outages[0].controller = 0;
  plan.controller_outages[0].begin = util::SimTime(100);
  EXPECT_NO_THROW(validate_plan(plan));

  const auto net = mini_network(4, 2);
  plan.controller_losses[0].controller = 9;
  EXPECT_THROW(validate_plan(plan, &net), std::invalid_argument);
}

TEST(FaultPlanCanned, ControllerLossStaggersDisjointWindows) {
  const auto net = mini_network(4, 3);
  const util::SimTime begin(0), end(24 * 3600);
  const FaultPlan plan = canned_controller_loss_plan(net, begin, end);
  ASSERT_FALSE(plan.controller_losses.empty());
  EXPECT_LE(plan.controller_losses.size(), net.num_controllers());
  for (const ControllerLoss& o : plan.controller_losses) {
    EXPECT_LT(o.controller, net.num_controllers());
    EXPECT_GE(o.begin, begin);
    EXPECT_LE(o.end, end);
    EXPECT_LT(o.begin, o.end);
  }
  // Windows never overlap *across* controllers either, so an alive
  // neighbor (the adopter) always exists.
  for (std::size_t i = 1; i < plan.controller_losses.size(); ++i) {
    EXPECT_LE(plan.controller_losses[i - 1].end,
              plan.controller_losses[i].begin);
  }
  EXPECT_NO_THROW(validate_plan(plan, &net));
}

TEST(FaultPlanCanned, ModelOutageCoversTheMiddleThird) {
  const FaultPlan plan =
      canned_model_outage_plan(util::SimTime(0), util::SimTime(900));
  ASSERT_EQ(plan.model_outages.size(), 1u);
  EXPECT_EQ(plan.model_outages[0].begin.seconds(), 300);
  EXPECT_EQ(plan.model_outages[0].end.seconds(), 600);
}

TEST(FaultPlanCanned, AdmissionStormPairsFailuresWithASqueeze) {
  const FaultPlan plan =
      canned_admission_storm_plan(util::SimTime(0), util::SimTime(1000));
  EXPECT_DOUBLE_EQ(plan.admission.failure_probability, 0.3);
  ASSERT_EQ(plan.clique_squeezes.size(), 1u);
  EXPECT_EQ(plan.clique_squeezes[0].begin, plan.admission.begin);
  EXPECT_EQ(plan.clique_squeezes[0].end, plan.admission.end);
}

}  // namespace
}  // namespace s3::fault
