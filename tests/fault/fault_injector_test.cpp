#include "s3/fault/fault_injector.h"

#include <gtest/gtest.h>

#include "s3/fault/degradation.h"
#include "s3/fault/retry_queue.h"
#include "testing/mini.h"

namespace s3::fault {
namespace {

using s3::testing::mini_network;

TEST(FaultInjector, ApOutageWindowsAreHalfOpen) {
  FaultPlan plan;
  plan.ap_outages.push_back({2, util::SimTime(100), util::SimTime(200)});
  plan.ap_outages.push_back({2, util::SimTime(300), util::SimTime(400)});
  const FaultInjector inj(plan);

  EXPECT_FALSE(inj.ap_down(2, util::SimTime(99)));
  EXPECT_TRUE(inj.ap_down(2, util::SimTime(100)));  // begin inclusive
  EXPECT_TRUE(inj.ap_down(2, util::SimTime(199)));
  EXPECT_FALSE(inj.ap_down(2, util::SimTime(200)));  // end exclusive
  EXPECT_TRUE(inj.ap_down(2, util::SimTime(350)));
  EXPECT_FALSE(inj.ap_down(2, util::SimTime(250)));
  EXPECT_FALSE(inj.ap_down(0, util::SimTime(150)));  // other AP untouched
}

TEST(FaultInjector, ModelAvailabilityAndCliqueBudget) {
  FaultPlan plan;
  plan.model_outages.push_back({util::SimTime(10), util::SimTime(20)});
  plan.clique_squeezes.push_back({util::SimTime(0), util::SimTime(50), 100});
  plan.clique_squeezes.push_back({util::SimTime(5), util::SimTime(15), 32});
  const FaultInjector inj(plan);

  EXPECT_TRUE(inj.model_available(util::SimTime(9)));
  EXPECT_FALSE(inj.model_available(util::SimTime(10)));
  EXPECT_FALSE(inj.model_available(util::SimTime(19)));
  EXPECT_TRUE(inj.model_available(util::SimTime(20)));

  EXPECT_EQ(inj.clique_budget(util::SimTime(2)), 100u);
  EXPECT_EQ(inj.clique_budget(util::SimTime(10)), 32u);  // tightest wins
  EXPECT_EQ(inj.clique_budget(util::SimTime(40)), 100u);
  EXPECT_EQ(inj.clique_budget(util::SimTime(60)), 0u);  // no squeeze
}

TEST(FaultInjector, ControllerOutageWindowsAreHalfOpen) {
  FaultPlan plan;
  plan.controller_outages.push_back({1, util::SimTime(100), util::SimTime(200)});
  plan.controller_outages.push_back({1, util::SimTime(300), util::SimTime(400)});
  plan.controller_outages.push_back({0, util::SimTime(50), util::SimTime(60)});
  const FaultInjector inj(plan);

  EXPECT_FALSE(inj.controller_down(1, util::SimTime(99)));
  EXPECT_TRUE(inj.controller_down(1, util::SimTime(100)));  // begin inclusive
  EXPECT_TRUE(inj.controller_down(1, util::SimTime(199)));
  EXPECT_FALSE(inj.controller_down(1, util::SimTime(200)));  // end exclusive
  EXPECT_TRUE(inj.controller_down(1, util::SimTime(350)));
  EXPECT_FALSE(inj.controller_down(0, util::SimTime(150)));  // other domain

  // Per-domain windows come back sorted by begin regardless of plan
  // order — the replication layer walks them front to back.
  const std::vector<util::TimeInterval> windows = inj.controller_outages(1);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].begin.seconds(), 100);
  EXPECT_EQ(windows[1].begin.seconds(), 300);
  EXPECT_TRUE(inj.controller_outages(2).empty());
}

TEST(FaultInjector, ControllerLossWindowsCountAsDownToo) {
  // A loss (whole replica set gone) makes the controller "down" for
  // every observer — including a neighbor domain probing for an alive
  // adopter — but stays a separate window list from plain outages.
  FaultPlan plan;
  plan.controller_losses.push_back({1, util::SimTime(100), util::SimTime(200)});
  plan.controller_losses.push_back({1, util::SimTime(400), util::SimTime(500)});
  plan.controller_outages.push_back({1, util::SimTime(250), util::SimTime(300)});
  const FaultInjector inj(plan);

  EXPECT_TRUE(inj.controller_down(1, util::SimTime(100)));  // loss
  EXPECT_FALSE(inj.controller_down(1, util::SimTime(200)));
  EXPECT_TRUE(inj.controller_down(1, util::SimTime(250)));  // outage
  EXPECT_FALSE(inj.controller_down(0, util::SimTime(150)));

  const std::vector<util::TimeInterval> losses = inj.controller_losses(1);
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_EQ(losses[0].begin.seconds(), 100);
  EXPECT_EQ(losses[1].begin.seconds(), 400);
  const std::vector<util::TimeInterval> outages = inj.controller_outages(1);
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_TRUE(inj.controller_losses(0).empty());
}

TEST(FaultInjector, AdmissionDrawsAreDeterministicAndWindowed) {
  FaultPlan plan;
  plan.admission.failure_probability = 0.5;
  plan.admission.begin = util::SimTime(100);
  plan.admission.end = util::SimTime(200);
  const FaultInjector a(plan, 7);
  const FaultInjector b(plan, 7);
  const FaultInjector other_seed(plan, 8);

  // Identical (seed, session, attempt) => identical draw; outside the
  // window nothing ever fails.
  bool any_differs_by_seed = false;
  for (std::size_t s = 0; s < 200; ++s) {
    EXPECT_EQ(a.admission_fails(s, 0, util::SimTime(150)),
              b.admission_fails(s, 0, util::SimTime(150)));
    EXPECT_FALSE(a.admission_fails(s, 0, util::SimTime(99)));
    EXPECT_FALSE(a.admission_fails(s, 0, util::SimTime(200)));
    if (a.admission_fails(s, 0, util::SimTime(150)) !=
        other_seed.admission_fails(s, 0, util::SimTime(150))) {
      any_differs_by_seed = true;
    }
  }
  EXPECT_TRUE(any_differs_by_seed);

  // Empirical frequency tracks p (hash quality, not statistics: 2000
  // draws at p=0.5 land well inside [0.4, 0.6]).
  std::size_t failures = 0;
  for (std::size_t s = 0; s < 1000; ++s) {
    for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
      if (a.admission_fails(s, attempt, util::SimTime(150))) ++failures;
    }
  }
  EXPECT_GT(failures, 800u);
  EXPECT_LT(failures, 1200u);
}

TEST(FaultInjector, AdmissionProbabilityExtremes) {
  FaultPlan zero;
  zero.admission.failure_probability = 0.0;
  zero.admission.begin = util::SimTime(0);
  FaultPlan one;
  one.admission.failure_probability = 1.0;
  one.admission.begin = util::SimTime(0);
  const FaultInjector never(zero), always(one);
  for (std::size_t s = 0; s < 50; ++s) {
    EXPECT_FALSE(never.admission_fails(s, 0, util::SimTime(10)));
    EXPECT_TRUE(always.admission_fails(s, 0, util::SimTime(10)));
  }
}

TEST(FaultInjector, DomainEventsAreSortedWithRecoveryFirst) {
  const auto net = mini_network(4, 2);  // APs 0-3 ctrl 0, 4-7 ctrl 1
  FaultPlan plan;
  plan.ap_outages.push_back({1, util::SimTime(100), util::SimTime(300)});
  plan.ap_outages.push_back({2, util::SimTime(300), util::SimTime(400)});
  plan.ap_outages.push_back({5, util::SimTime(50), util::SimTime(60)});
  const FaultInjector inj(plan);

  const auto events = inj.events_for_domain(net, 0);
  ASSERT_EQ(events.size(), 4u);  // only the domain's APs
  EXPECT_EQ(events[0].ap, 1u);
  EXPECT_EQ(events[0].kind, ApFaultEvent::Kind::kDown);
  // At t=300 AP 1 recovers before AP 2 fails: a station evicted from
  // AP 2 may immediately land on the restored AP 1.
  EXPECT_EQ(events[1].when.seconds(), 300);
  EXPECT_EQ(events[1].kind, ApFaultEvent::Kind::kUp);
  EXPECT_EQ(events[1].ap, 1u);
  EXPECT_EQ(events[2].when.seconds(), 300);
  EXPECT_EQ(events[2].kind, ApFaultEvent::Kind::kDown);
  EXPECT_EQ(events[2].ap, 2u);

  const auto other = inj.events_for_domain(net, 1);
  ASSERT_EQ(other.size(), 2u);
  EXPECT_EQ(other[0].ap, 5u);
}

TEST(RetryQueue, DrainsInDueThenSessionOrder) {
  RetryQueue q;
  EXPECT_TRUE(q.empty());
  q.push(7, util::SimTime(100));
  q.push(3, util::SimTime(100));
  q.push(9, util::SimTime(50));
  q.push(1, util::SimTime(200));
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.next_due().seconds(), 50);

  const auto due = q.pop_due(util::SimTime(100));
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0], 9u);  // earliest due first
  EXPECT_EQ(due[1], 3u);  // ties broken by session index
  EXPECT_EQ(due[2], 7u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.pop_due(util::SimTime(150)).empty());
  EXPECT_EQ(q.pop_due(util::SimTime(200)).size(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(RecoveryPolicy, BackoffIsExponentialAndCapped) {
  RecoveryPolicy p;
  p.initial_backoff_s = 5;
  p.backoff_multiplier = 2.0;
  p.max_backoff_s = 30;
  EXPECT_EQ(p.backoff(1).seconds(), 5);
  EXPECT_EQ(p.backoff(2).seconds(), 10);
  EXPECT_EQ(p.backoff(3).seconds(), 20);
  EXPECT_EQ(p.backoff(4).seconds(), 30);   // capped
  EXPECT_EQ(p.backoff(40).seconds(), 30);  // stays capped, no overflow
}

TEST(DegradationTracker, TransitionsWithHysteresis) {
  DegradationTracker t(2);
  EXPECT_EQ(t.state(), HealthState::kHealthy);

  // Stress degrades and routes the batch to the fallback.
  EXPECT_TRUE(t.on_batch_start(true));
  EXPECT_EQ(t.state(), HealthState::kDegraded);
  EXPECT_TRUE(t.on_batch_start(true));

  // First unstressed batch: RECOVERING, but served at full fidelity.
  EXPECT_FALSE(t.on_batch_start(false));
  EXPECT_EQ(t.state(), HealthState::kRecovering);
  t.on_batch_end(true);

  // One clean batch is not enough with hysteresis 2...
  EXPECT_EQ(t.state(), HealthState::kRecovering);
  EXPECT_FALSE(t.on_batch_start(false));
  t.on_batch_end(true);
  EXPECT_EQ(t.state(), HealthState::kHealthy);

  const DegradationStats& s = t.stats();
  EXPECT_EQ(s.to_degraded, 1u);
  EXPECT_EQ(s.to_recovering, 1u);
  EXPECT_EQ(s.to_healthy, 1u);
  EXPECT_EQ(s.degraded_batches, 2u);
  EXPECT_EQ(s.observed_batches, 4u);
}

TEST(DegradationTracker, NonExactResultWhileRecoveringDegradesAgain) {
  DegradationTracker t(3);
  EXPECT_TRUE(t.on_batch_start(true));
  EXPECT_FALSE(t.on_batch_start(false));
  EXPECT_EQ(t.state(), HealthState::kRecovering);
  // The cover came back non-exact: not actually recovered.
  t.on_batch_end(false);
  EXPECT_EQ(t.state(), HealthState::kDegraded);
  EXPECT_EQ(t.stats().to_degraded, 2u);
}

}  // namespace
}  // namespace s3::fault
