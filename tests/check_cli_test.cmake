# End-to-end test of `s3lb check` and the strict flag parsers: every
# corrupted fixture must be rejected with a non-zero exit and a
# validator-specific message; the intact inputs must pass. Invoked by
# ctest with -DCLI=<path-to-binary>.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<s3lb binary>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/check_cli_test_work")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: OK")
endfunction()

# Runs the CLI expecting failure; asserts stderr mentions `needle`.
function(run_cli_expect_failure needle)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} should have failed:\n${out}")
  endif()
  if(NOT err MATCHES "${needle}")
    message(FATAL_ERROR
      "s3lb ${ARGN}: expected stderr to mention \"${needle}\", got:\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: rejected with \"${needle}\" as expected")
endfunction()

# --- intact inputs pass ----------------------------------------------

run_cli(generate --out "${WORK}/w.csv" --users 40 --days 3
        --buildings 2 --aps 3 --seed 7)
run_cli(check trace --in "${WORK}/w.csv" --buildings 2 --aps 3)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/a.csv"
        --policy llf --buildings 2 --aps 3 --check count)
run_cli(check trace --in "${WORK}/a.csv" --buildings 2 --aps 3)

# --- fixture 1: trace referencing an AP outside the topology ---------

file(STRINGS "${WORK}/a.csv" lines)
set(row 0)
set(bad_ap "")
set(bad_load "")
foreach(line IN LISTS lines)
  math(EXPR row "${row} + 1")
  if(row LESS_EQUAL 2)  # format + column header lines
    string(APPEND bad_ap "${line}\n")
    string(APPEND bad_load "${line}\n")
  elseif(row EQUAL 3)
    # user,ap,building,... — aim the AP id far past buildings*aps = 6.
    string(REGEX REPLACE "^([0-9]+),([0-9]+)," "\\1,999," corrupted "${line}")
    string(APPEND bad_ap "${corrupted}\n")
    # ...,demand_mbps,group,rate_seed — blow up the demand field.
    string(REGEX REPLACE
           "^(.*),([0-9.eE+-]+),([0-9-]+|-),([0-9]+)$"
           "\\1,inf,\\3,\\4" corrupted "${line}")
    string(APPEND bad_load "${corrupted}\n")
  else()
    string(APPEND bad_ap "${line}\n")
    string(APPEND bad_load "${line}\n")
  endif()
endforeach()
file(WRITE "${WORK}/bad_ap.csv" "${bad_ap}")
file(WRITE "${WORK}/bad_load.csv" "${bad_load}")

run_cli_expect_failure("validate_trace.*unknown AP"
        check trace --in "${WORK}/bad_ap.csv" --buildings 2 --aps 3)

# --- fixture 2: assigned trace whose load breaks beta ∈ [1/n, 1] -----

run_cli_expect_failure("validate_load_state"
        check trace --in "${WORK}/bad_load.csv" --buildings 2 --aps 3)

# --- fixture 3: social model with a negative theta -------------------

# Hand-written 3-user model: the (0,1) pair has strong co-leaving
# history; every other tie is the type prior alone.
file(WRITE "${WORK}/good.model"
"# s3lb social model v1
alpha 0.3
co_leave_window_s 300
min_encounter_overlap_s 60
users 3
types 1
type_of_user 0 0 0
centroids 0.1 0.1 0.1 0.1 0.1 0.1
matrix 0.5
pairs 1
0 1 10 9 5
")
run_cli(check model --in "${WORK}/good.model")

# A negative type-matrix entry drives theta below zero for every pair
# without history (read_model does not range-check values).
file(READ "${WORK}/good.model" model_text)
string(REPLACE "matrix 0.5" "matrix -0.5" model_text "${model_text}")
file(WRITE "${WORK}/bad.model" "${model_text}")
run_cli_expect_failure("validate_social_graph.*negative"
        check model --in "${WORK}/bad.model")

# Abort mode stops at the first violation but still exits non-zero
# with the validator named.
run_cli_expect_failure("validate_social_graph"
        check model --in "${WORK}/bad.model" --mode abort)

# --- fixture 4: clique cover that does not partition the graph -------

file(WRITE "${WORK}/good.cover" "0 1\n2\n")
run_cli(check model --in "${WORK}/good.model" --cover "${WORK}/good.cover")

file(WRITE "${WORK}/bad.cover" "0 1\n")
run_cli_expect_failure("validate_clique_cover.*uncovered"
        check model --in "${WORK}/good.model" --cover "${WORK}/bad.cover")

# --- strict flag parsing ---------------------------------------------

run_cli_expect_failure("--users.*12abc"
        generate --out "${WORK}/x.csv" --users 12abc)
run_cli_expect_failure("--alpha.*number"
        train --in "${WORK}/a.csv" --out "${WORK}/m.model" --alpha 0.3x)
run_cli_expect_failure("--check must be"
        replay --in "${WORK}/w.csv" --out "${WORK}/y.csv"
        --policy llf --buildings 2 --aps 3 --check verbose)
run_cli_expect_failure("expected .s3lb check"
        check --in "${WORK}/w.csv")
