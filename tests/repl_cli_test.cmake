# End-to-end test of the replication layer through the CLI: `s3lb check
# fault-plan` linting (clean plan, line-numbered parse errors,
# overlapping windows, topology checks) and `s3lb replay --replicas`
# (deterministic across thread counts, transparent vs the outage-free
# run, flag validation). Invoked by ctest with -DCLI=<path-to-binary>.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<s3lb binary>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/repl_cli_test_work")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  set(CLI_OUT "${out}" PARENT_SCOPE)
  message(STATUS "s3lb ${ARGN}: OK")
endfunction()

# Runs the CLI expecting failure; asserts stderr mentions `needle`.
function(run_cli_expect_failure needle)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} should have failed:\n${out}")
  endif()
  if(NOT err MATCHES "${needle}")
    message(FATAL_ERROR
      "s3lb ${ARGN}: expected stderr to mention \"${needle}\", got:\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: rejected with \"${needle}\" as expected")
endfunction()

# --- check fault-plan -------------------------------------------------
# 2 buildings -> controllers 0 and 1; the trace below spans 2 days.

file(WRITE "${WORK}/churn.txt"
"s3fault v1
# one midday controller crash per domain, one per day
controller-outage 0 36000 50400
controller-outage 1 122400 136800
ap-outage 1 20000 40000
")
run_cli(check fault-plan --in "${WORK}/churn.txt" --buildings 2 --aps 3)

file(WRITE "${WORK}/inverted.txt"
"s3fault v1
controller-outage 0 500 100
")
run_cli_expect_failure("fault plan line 2"
        check fault-plan --in "${WORK}/inverted.txt")

file(WRITE "${WORK}/overlap.txt"
"s3fault v1
controller-outage 0 100 300
controller-outage 0 200 400
")
run_cli_expect_failure("outage windows overlap"
        check fault-plan --in "${WORK}/overlap.txt")

# Ids are only checkable against a topology: clean bare, flagged pinned.
file(WRITE "${WORK}/unknown.txt"
"s3fault v1
controller-outage 7 0 100
")
run_cli(check fault-plan --in "${WORK}/unknown.txt")
run_cli_expect_failure("unknown controller 7"
        check fault-plan --in "${WORK}/unknown.txt" --buildings 2 --aps 3)

# --- replicated replay ------------------------------------------------

run_cli(generate --out "${WORK}/w.csv" --users 60 --days 2
        --buildings 2 --aps 3 --seed 5)

# Deterministic across thread counts with backups and controller churn.
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/repl_t1.csv"
        --policy llf --buildings 2 --aps 3 --replicas 2
        --fault-plan "${WORK}/churn.txt" --fault-seed 9 --threads 1)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/repl_t8.csv"
        --policy llf --buildings 2 --aps 3 --replicas 2
        --fault-plan "${WORK}/churn.txt" --fault-seed 9 --threads 8)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK}/repl_t1.csv" "${WORK}/repl_t8.csv"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "replicated replay differs between --threads 1 and --threads 8")
endif()
message(STATUS "replicated replay threads 1 vs 8: byte-identical")

# Transparency: with a backup per domain, the run under controller
# churn is byte-identical to the same run with only the AP outage.
file(WRITE "${WORK}/no_churn.txt"
"s3fault v1
ap-outage 1 20000 40000
")
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/plain.csv"
        --policy llf --buildings 2 --aps 3
        --fault-plan "${WORK}/no_churn.txt" --fault-seed 9)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK}/repl_t1.csv" "${WORK}/plain.csv"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "failover with backups is not transparent: replicated run differs "
    "from the outage-free run")
endif()
message(STATUS "failover with backups: transparent (byte-identical)")

# A plan with controller outages switches replay to the replicated
# driver even without --replicas (defaulting to one backup).
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/implicit.csv"
        --policy llf --buildings 2 --aps 3
        --fault-plan "${WORK}/churn.txt" --fault-seed 9)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK}/implicit.csv" "${WORK}/plain.csv"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "implicit replication (no --replicas) diverged")
endif()
message(STATUS "implicit replication on controller-outage plans: OK")

# Snapshots + truncation stay transparent, and a whole-replica-set
# loss routes to the replicated driver (adoption) even without
# --replicas — still byte-identical to the controller-fault-free run.
file(WRITE "${WORK}/loss.txt"
"s3fault v1
controller-outage 0 36000 50400
controller-loss 1 54000 64800
ap-outage 1 20000 40000
")
run_cli(check fault-plan --in "${WORK}/loss.txt" --buildings 2 --aps 3)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/snap.csv"
        --policy llf --buildings 2 --aps 3 --replicas 2
        --fault-plan "${WORK}/loss.txt" --fault-seed 9
        --snapshot-every 40 --truncate)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK}/snap.csv" "${WORK}/plain.csv"
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR
    "snapshot catch-up + truncation + adoption is not transparent")
endif()
message(STATUS "snapshots, truncation and controller-loss adoption: "
               "transparent (byte-identical)")

# --- flag validation --------------------------------------------------

run_cli_expect_failure("--replicas needs --fault-plan"
        replay --in "${WORK}/w.csv" --out "${WORK}/x.csv"
        --policy llf --buildings 2 --aps 3 --replicas 2)
run_cli_expect_failure("heartbeat"
        replay --in "${WORK}/w.csv" --out "${WORK}/x.csv"
        --policy llf --buildings 2 --aps 3 --replicas 2
        --fault-plan "${WORK}/churn.txt" --heartbeat 0)
run_cli_expect_failure("--truncate needs --snapshot-every"
        replay --in "${WORK}/w.csv" --out "${WORK}/x.csv"
        --policy llf --buildings 2 --aps 3 --replicas 2
        --fault-plan "${WORK}/churn.txt" --truncate)
