#include "s3/check/validators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "s3/fault/fault_plan.h"
#include "s3/fault/replica_snapshot.h"
#include "s3/util/metrics.h"
#include "testing/mini.h"

namespace s3::check {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t counter(const char* name) {
  return util::metrics().counter(name)->value();
}

bool mentions(const CheckReport& report, const std::string& needle) {
  for (const CheckIssue& issue : report.issues()) {
    if (issue.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

class ValidatorsTest : public ::testing::Test {
 protected:
  void SetUp() override { util::metrics().reset(); }
  void TearDown() override {
    set_contract_mode(ContractMode::kOff);
    util::metrics().reset();
  }
};

// --- validate_trace -------------------------------------------------

std::vector<trace::SessionRecord> corrupted_sessions() {
  // Record 1 regresses in time relative to record 0; record 2 names an
  // AP the topology does not have.
  return {
      testing::make_session({.user = 0, .connect_s = 500, .disconnect_s = 900}),
      testing::make_session({.user = 1, .connect_s = 100, .disconnect_s = 400}),
      testing::make_session(
          {.user = 2, .connect_s = 600, .disconnect_s = 700, .ap = 9}),
  };
}

TEST_F(ValidatorsTest, TraceCountModeReportsRegressionAndUnknownAp) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const wlan::Network net = testing::mini_network(4);
  const std::vector<trace::SessionRecord> sessions = corrupted_sessions();
  const CheckReport report = validate_trace(sessions, 3, &net);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "regress"));
  EXPECT_TRUE(mentions(report, "unknown AP id 9"));
  EXPECT_EQ(counter("check.validate_trace.violations"),
            report.issues().size());
}

TEST_F(ValidatorsTest, TraceAbortModeThrowsOnTheFirstViolation) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  const wlan::Network net = testing::mini_network(4);
  const std::vector<trace::SessionRecord> sessions = corrupted_sessions();
  EXPECT_THROW(validate_trace(sessions, 3, &net), ContractViolation);
}

TEST_F(ValidatorsTest, TraceAcceptsAWellFormedWorkload) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const wlan::Network net = testing::mini_network(4);
  const trace::Trace t = testing::make_trace(
      2, {{.user = 0, .connect_s = 0, .disconnect_s = 300},
          {.user = 1, .connect_s = 100, .disconnect_s = 400, .ap = 2}});
  EXPECT_TRUE(validate_trace(t, &net).ok());
  EXPECT_EQ(counter("check.validate_trace.violations"), 0u);
}

TEST_F(ValidatorsTest, TraceRejectsUnknownUserAndZeroUsers) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const std::vector<trace::SessionRecord> sessions = {
      testing::make_session({.user = 7})};
  EXPECT_TRUE(mentions(validate_trace(sessions, 3), "unknown user id 7"));
  EXPECT_TRUE(mentions(validate_trace(sessions, 0), "zero users"));
}

// --- validate_social_graph ------------------------------------------

/// A θ provider with an injectable (and deliberately breakable) rule.
class FakeTheta : public social::ThetaProvider {
 public:
  FakeTheta(std::size_t n, double (*rule)(UserId, UserId))
      : n_(n), rule_(rule) {}
  double theta(UserId u, UserId v) const override { return rule_(u, v); }
  std::size_t num_users() const override { return n_; }

 private:
  std::size_t n_;
  double (*rule_)(UserId, UserId);
};

TEST_F(ValidatorsTest, SocialGraphCountModeReportsAsymmetricTheta) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const FakeTheta theta(3, [](UserId u, UserId v) {
    if (u == v) return 0.0;
    return u < v ? 0.5 : 0.4;  // θ(u,v) ≠ θ(v,u)
  });
  const CheckReport report = validate_social_graph(theta);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "asymmetric"));
  EXPECT_EQ(counter("check.validate_social_graph.violations"),
            report.issues().size());
}

TEST_F(ValidatorsTest, SocialGraphAbortModeThrowsOnAsymmetricTheta) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  const FakeTheta theta(2, [](UserId u, UserId v) {
    if (u == v) return 0.0;
    return u < v ? 0.5 : 0.4;
  });
  EXPECT_THROW(validate_social_graph(theta), ContractViolation);
}

TEST_F(ValidatorsTest, SocialGraphReportsNegativeAndNonZeroDiagonal) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const FakeTheta theta(2, [](UserId u, UserId v) {
    if (u == v) return 0.25;  // θ(u,u) must be 0
    return -0.15;             // θ must be non-negative
  });
  const CheckReport report = validate_social_graph(theta);
  EXPECT_TRUE(mentions(report, "expected 0"));
  EXPECT_TRUE(mentions(report, "negative"));
}

TEST_F(ValidatorsTest, SocialGraphAcceptsAConsistentProviderAndGraph) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const FakeTheta theta(3, [](UserId u, UserId v) {
    if (u == v) return 0.0;
    return (u + v == 1) ? 0.9 : 0.1;  // only the (0,1) tie is social
  });
  EXPECT_TRUE(validate_social_graph(theta).ok());
  const social::WeightedGraph g = build_social_graph(theta, 0.3);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(validate_social_graph(g, &theta).ok());
}

TEST_F(ValidatorsTest, SocialGraphReportsEdgesDisagreeingWithTheta) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const FakeTheta theta(3, [](UserId u, UserId v) {
    if (u == v) return 0.0;
    return (u + v == 1) ? 0.9 : 0.1;
  });
  social::WeightedGraph g(3);
  g.add_edge(0, 2, 0.8);  // θ(0,2) = 0.1: neither weight nor edge belong
  const CheckReport report = validate_social_graph(g, &theta);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "disagrees with theta"));
  EXPECT_TRUE(mentions(report, "missing although theta"));
}

// --- validate_clique_cover ------------------------------------------

social::WeightedGraph two_pairs_graph() {
  social::WeightedGraph g(4);
  g.add_edge(0, 1, 0.9);
  g.add_edge(2, 3, 0.8);
  return g;
}

TEST_F(ValidatorsTest, CliqueCoverAcceptsAnExactPartition) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const std::vector<std::vector<std::size_t>> cover = {{0, 1}, {2, 3}};
  EXPECT_TRUE(validate_clique_cover(two_pairs_graph(), cover).ok());
  EXPECT_EQ(counter("check.validate_clique_cover.violations"), 0u);
}

TEST_F(ValidatorsTest, CliqueCoverCountModeReportsNonPartition) {
  const ScopedContractMode scoped(ContractMode::kCount);
  // Vertex 3 uncovered, vertex 0 covered twice, {0, 2} not a clique.
  const std::vector<std::vector<std::size_t>> cover = {{0, 1}, {0, 2}};
  const CheckReport report = validate_clique_cover(two_pairs_graph(), cover);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "not a clique"));
  EXPECT_TRUE(mentions(report, "vertex 3 is uncovered"));
  EXPECT_TRUE(mentions(report, "vertex 0 is covered 2 times"));
  EXPECT_EQ(counter("check.validate_clique_cover.violations"),
            report.issues().size());
}

TEST_F(ValidatorsTest, CliqueCoverAbortModeThrowsOnNonPartition) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  const std::vector<std::vector<std::size_t>> cover = {{0, 1}};
  EXPECT_THROW(validate_clique_cover(two_pairs_graph(), cover),
               ContractViolation);
}

TEST_F(ValidatorsTest, CliqueCoverFlagsStaleCoverAfterEdgeDeletions) {
  const ScopedContractMode scoped(ContractMode::kCount);
  // The cover {0,1},{2,3} was valid before every θ-edge at vertex 1
  // decayed away; against the current graph it must be reported as
  // stale, naming the dead vertex — not just as a generic non-clique.
  social::WeightedGraph g(4);
  g.add_edge(2, 3, 0.8);  // the (0, 1) edge is gone
  const std::vector<std::vector<std::size_t>> cover = {{0, 1}, {2, 3}};
  const CheckReport report = validate_clique_cover(g, cover);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "clique 0 is stale"));
  EXPECT_TRUE(mentions(report, "vertex 0 has no remaining theta-edges"));
  EXPECT_TRUE(mentions(report, "vertex 1 has no remaining theta-edges"));
  EXPECT_TRUE(mentions(report, "not a clique"));
}

TEST_F(ValidatorsTest, CliqueCoverDoesNotFlagIsolatedSingletonsAsStale) {
  const ScopedContractMode scoped(ContractMode::kCount);
  // A degree-0 vertex in its own singleton clique is the *correct*
  // cover for an isolated vertex — only multi-member cliques go stale.
  social::WeightedGraph g(3);
  g.add_edge(0, 1, 0.9);
  const std::vector<std::vector<std::size_t>> cover = {{0, 1}, {2}};
  EXPECT_TRUE(validate_clique_cover(g, cover).ok());
}

TEST_F(ValidatorsTest, CliqueCoverReportsOutOfRangeAndEmptyCliques) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const std::vector<std::vector<std::size_t>> cover = {
      {0, 1}, {2, 3}, {}, {17}};
  const CheckReport report = validate_clique_cover(two_pairs_graph(), cover);
  EXPECT_TRUE(mentions(report, "is empty"));
  EXPECT_TRUE(mentions(report, "out of range"));
}

// --- validate_load_state --------------------------------------------

TEST_F(ValidatorsTest, LoadStateAcceptsABalancedVector) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const std::vector<double> demand = {2.0, 2.0, 2.0};
  EXPECT_TRUE(validate_load_state(demand).ok());
  EXPECT_EQ(counter("check.validate_load_state.violations"), 0u);
}

TEST_F(ValidatorsTest, LoadStateCountModeReportsBetaOutsideRange) {
  const ScopedContractMode scoped(ContractMode::kCount);
  // Infinite load drives β = (ΣT)²/(n·ΣT²) to NaN — the only way the
  // Chiu–Jain index leaves [1/n, 1].
  const std::vector<double> demand = {kInf, 1.0};
  const CheckReport report = validate_load_state(demand);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "non-finite load"));
  EXPECT_TRUE(mentions(report, "outside [1/n, 1]"));
  EXPECT_EQ(counter("check.validate_load_state.violations"),
            report.issues().size());
}

TEST_F(ValidatorsTest, LoadStateAbortModeThrowsOnNonFiniteLoad) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  const std::vector<double> demand = {kInf, 1.0};
  EXPECT_THROW(validate_load_state(demand), ContractViolation);
}

TEST_F(ValidatorsTest, LoadStateReportsNegativeLoad) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const std::vector<double> demand = {-3.0, 1.0};
  EXPECT_TRUE(mentions(validate_load_state(demand), "negative load"));
}

TEST_F(ValidatorsTest, LoadStateAcceptsALiveTracker) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const wlan::Network net = testing::mini_network(3);
  sim::ApLoadTracker tracker(net);
  tracker.associate(0, 0, 0, 2.0);
  tracker.associate(1, 1, 1, 3.0);
  tracker.associate(2, 1, 2, 1.0);
  EXPECT_TRUE(validate_load_state(tracker).ok());
  tracker.disconnect(2, 1);
  EXPECT_TRUE(validate_load_state(tracker).ok());
}

TEST_F(ValidatorsTest, LoadStateChecksAnAssignedTrace) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const wlan::Network net = testing::mini_network(4);
  const trace::Trace ok = testing::make_trace(
      2, {{.user = 0, .ap = 0, .demand_mbps = 1.5},
          {.user = 1, .ap = 1, .demand_mbps = 2.5}});
  EXPECT_TRUE(validate_load_state(net, ok).ok());

  // An unassigned workload carries no load to validate.
  const trace::Trace unassigned = testing::make_trace(1, {{.user = 0}});
  EXPECT_TRUE(
      mentions(validate_load_state(net, unassigned), "not fully assigned"));

  // Infinite per-session demand survives trace construction (inf ≥ 0)
  // but must be caught here.
  const trace::Trace inf_demand = testing::make_trace(
      1, {{.user = 0, .ap = 0, .demand_mbps = kInf}});
  const CheckReport report = validate_load_state(net, inf_demand);
  EXPECT_TRUE(mentions(report, "non-finite load"));
}

// --- validate_model_freshness ---------------------------------------

social::SocialIndexModel model_trained_until(std::int64_t trained_end_s) {
  social::SocialModelConfig cfg;
  cfg.trained_end_s = trained_end_s;
  analysis::PairStatsMap stats;
  stats[UserPair(0, 1)] = {4, 2, 1};
  social::UserTyping typing;
  typing.num_types = 1;
  typing.type_of_user = {0, 0};
  typing.centroids.assign(apps::kNumCategories, 0.1);
  social::TypeCoLeaveMatrix matrix(1);
  matrix.set(0, 0, 0.5);
  return social::SocialIndexModel::from_parts(
      cfg, std::move(stats), std::move(typing), std::move(matrix));
}

TEST_F(ValidatorsTest, ModelFreshnessAcceptsARecentModel) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const auto model = model_trained_until(util::SimTime::from_days(10).seconds());
  EXPECT_TRUE(validate_model_freshness(model, util::SimTime::from_days(12),
                                       util::SimTime::from_days(7))
                  .ok());
  EXPECT_EQ(counter("check.validate_model_freshness.violations"), 0u);
}

TEST_F(ValidatorsTest, ModelFreshnessFlagsAStaleModel) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const auto model = model_trained_until(util::SimTime::from_days(2).seconds());
  const CheckReport report = validate_model_freshness(
      model, util::SimTime::from_days(30), util::SimTime::from_days(7));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "stale"));
  EXPECT_EQ(counter("check.validate_model_freshness.violations"),
            report.issues().size());
}

TEST_F(ValidatorsTest, ModelFreshnessFlagsAnUnknownHorizon) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const auto model = model_trained_until(-1);
  const CheckReport report = validate_model_freshness(
      model, util::SimTime::from_days(1), util::SimTime::from_days(7));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "training horizon unknown"));
}

TEST_F(ValidatorsTest, ModelFreshnessFlagsAFutureHorizon) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const auto model = model_trained_until(util::SimTime::from_days(9).seconds());
  const CheckReport report = validate_model_freshness(
      model, util::SimTime::from_days(1), util::SimTime::from_days(7));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "future"));
}

TEST_F(ValidatorsTest, ModelFreshnessAbortModeThrowsOnStale) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  const auto model = model_trained_until(0);
  EXPECT_THROW(validate_model_freshness(model, util::SimTime::from_days(30),
                                        util::SimTime::from_days(7)),
               ContractViolation);
}

// --- validate_fault_plan --------------------------------------------

TEST_F(ValidatorsTest, FaultPlanAcceptsACleanPlan) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const wlan::Network net = testing::mini_network(4, 2);
  fault::FaultPlan plan;
  plan.ap_outages.push_back({1, util::SimTime(100), util::SimTime(200)});
  plan.ap_outages.push_back({1, util::SimTime(200), util::SimTime(300)});
  plan.controller_outages.push_back({0, util::SimTime(50), util::SimTime(150)});
  plan.controller_outages.push_back({1, util::SimTime(50), util::SimTime(150)});
  plan.model_outages.push_back({util::SimTime(0), util::SimTime(10)});
  plan.admission.failure_probability = 0.5;
  plan.admission.begin = util::SimTime(0);
  plan.admission.end = util::SimTime(100);
  EXPECT_TRUE(validate_fault_plan(plan, &net).ok());
  EXPECT_EQ(counter("check.validate_fault_plan.violations"), 0u);
}

TEST_F(ValidatorsTest, FaultPlanFlagsWindowProblems) {
  const ScopedContractMode scoped(ContractMode::kCount);
  fault::FaultPlan plan;
  // Inverted AP window; overlapping controller windows (touching ones,
  // as in the clean-plan test above, are fine — windows are half-open).
  plan.ap_outages.push_back({0, util::SimTime(200), util::SimTime(100)});
  plan.controller_outages.push_back({3, util::SimTime(0), util::SimTime(150)});
  plan.controller_outages.push_back({3, util::SimTime(100), util::SimTime(250)});
  plan.clique_squeezes.push_back({util::SimTime(0), util::SimTime(10), 0});
  plan.admission.failure_probability = 1.5;
  const CheckReport report = validate_fault_plan(plan);
  EXPECT_TRUE(mentions(report, "ap 0: empty outage window"));
  EXPECT_TRUE(mentions(report, "controller 3: outage windows overlap"));
  EXPECT_TRUE(mentions(report, "budget must be positive"));
  EXPECT_TRUE(mentions(report, "probability 1.5 outside [0, 1]"));
  EXPECT_EQ(counter("check.validate_fault_plan.violations"),
            report.issues().size());
}

TEST_F(ValidatorsTest, FaultPlanFlagsUnknownIdsOnlyWithATopology) {
  const ScopedContractMode scoped(ContractMode::kCount);
  fault::FaultPlan plan;
  plan.ap_outages.push_back({99, util::SimTime(0), util::SimTime(10)});
  plan.controller_outages.push_back({7, util::SimTime(0), util::SimTime(10)});
  // Without a network the ids cannot be checked — plan is clean.
  EXPECT_TRUE(validate_fault_plan(plan).ok());

  const wlan::Network net = testing::mini_network(4, 2);
  const CheckReport report = validate_fault_plan(plan, &net);
  EXPECT_TRUE(mentions(report, "unknown AP 99"));
  EXPECT_TRUE(mentions(report, "unknown controller 7"));
}

// --- validate_replica_convergence -----------------------------------

fault::ReplicaSnapshot converged_snapshot() {
  fault::ReplicaSnapshot s;
  s.controller = 1;
  s.term = 3;
  s.applied_records = 40;
  s.placements = {{0, 2}, {5, 1}};
  s.retries = {{util::SimTime(500), 7}};
  s.attempts = {{7, 2}};
  s.health = fault::HealthState::kRecovering;
  s.clean_run = 1;
  s.policy_digest = 0xfeedULL;
  s.stats.num_sessions = 6;
  return s;
}

TEST_F(ValidatorsTest, ReplicaConvergenceAcceptsIdenticalSnapshots) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const fault::ReplicaSnapshot a = converged_snapshot();
  fault::ReplicaSnapshot b = converged_snapshot();
  EXPECT_TRUE(validate_replica_convergence(a, b).ok());
  EXPECT_EQ(a.digest(), b.digest());

  // A promoted backup is one term ahead of the snapshot the crashed
  // primary left behind; that only matters under require_equal_terms.
  b.term = 4;
  b.applied_records = 43;
  EXPECT_TRUE(validate_replica_convergence(a, b).ok());
  ReplicaConvergenceOptions strict;
  strict.require_equal_terms = true;
  EXPECT_TRUE(mentions(validate_replica_convergence(a, b, strict),
                       "replication positions differ"));
}

TEST_F(ValidatorsTest, ReplicaConvergenceNamesDivergentState) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const fault::ReplicaSnapshot a = converged_snapshot();

  fault::ReplicaSnapshot placed = converged_snapshot();
  placed.placements[1].ap = 3;
  const CheckReport p = validate_replica_convergence(a, placed);
  EXPECT_TRUE(mentions(p, "placement diverges at session 5: ap 1 vs 3"));
  EXPECT_NE(a.digest(), placed.digest());

  fault::ReplicaSnapshot drifted = converged_snapshot();
  drifted.retries.clear();
  drifted.attempts[0].attempts = 3;
  drifted.health = fault::HealthState::kDegraded;
  drifted.policy_digest = 0xbeefULL;
  drifted.stats.num_sessions = 7;
  const CheckReport d = validate_replica_convergence(a, drifted);
  EXPECT_TRUE(mentions(d, "retry queues differ"));
  EXPECT_TRUE(mentions(d, "attempt counters differ"));
  EXPECT_TRUE(mentions(d, "degradation state differs"));
  EXPECT_TRUE(mentions(d, "policy state digests differ"));
  EXPECT_TRUE(mentions(d, "replay stats differ"));
  EXPECT_EQ(counter("check.validate_replica_convergence.violations"),
            p.issues().size() + d.issues().size());
}

TEST_F(ValidatorsTest, ReplicaConvergenceRejectsCrossDomainComparison) {
  const ScopedContractMode scoped(ContractMode::kCount);
  const fault::ReplicaSnapshot a = converged_snapshot();
  fault::ReplicaSnapshot other = converged_snapshot();
  other.controller = 2;
  other.placements[0].ap = 9;  // masked: cross-domain returns early
  const CheckReport report = validate_replica_convergence(a, other);
  EXPECT_TRUE(mentions(report, "different domains"));
  EXPECT_EQ(report.issues().size(), 1u);
}

// --- validate_log_truncation ----------------------------------------

TEST_F(ValidatorsTest, LogTruncationAcceptsACoveredCut) {
  const ScopedContractMode scoped(ContractMode::kCount);
  // Cut at 40: the latest snapshot (50) survives, every alive replica
  // is past it, and the dead replica behind it will re-seed from the
  // snapshot.
  const std::vector<ReplicaLogPosition> replicas = {
      {0, true, 100}, {1, true, 40}, {2, false, 10}};
  EXPECT_TRUE(
      validate_log_truncation(40, 100, true, 50, replicas).ok());
  EXPECT_EQ(counter("check.validate_log_truncation.violations"), 0u);
}

TEST_F(ValidatorsTest, LogTruncationFlagsEveryWayACutCanOrphan) {
  const ScopedContractMode scoped(ContractMode::kCount);
  // An alive replica behind the base; a snapshot the cut would drop; a
  // replica claiming a position past the end.
  const std::vector<ReplicaLogPosition> replicas = {
      {0, true, 100}, {1, true, 30}, {2, true, 120}};
  const CheckReport report =
      validate_log_truncation(40, 100, true, 35, replicas);
  EXPECT_TRUE(mentions(report, "alive replica 1 still needs record 30"));
  EXPECT_TRUE(mentions(report, "latest snapshot at index 35 precedes"));
  EXPECT_TRUE(mentions(report, "replica 2 claims applied 120 past the log"));
  EXPECT_EQ(counter("check.validate_log_truncation.violations"),
            report.issues().size());

  // A cut without any snapshot at all, and one past the log end.
  EXPECT_TRUE(mentions(validate_log_truncation(10, 100, false, 0, {}),
                       "without any snapshot"));
  EXPECT_TRUE(mentions(validate_log_truncation(200, 100, true, 90, {}),
                       "past the log end"));
  // Base 0 is always safe: nothing is dropped.
  const std::vector<ReplicaLogPosition> sane = {{0, true, 100}, {1, true, 30}};
  EXPECT_TRUE(validate_log_truncation(0, 100, false, 0, sane).ok());
}

TEST_F(ValidatorsTest, FaultPlanFlagsLossWindows) {
  const ScopedContractMode scoped(ContractMode::kCount);
  fault::FaultPlan plan;
  plan.controller_losses.push_back({2, util::SimTime(0), util::SimTime(100)});
  plan.controller_losses.push_back({2, util::SimTime(50), util::SimTime(150)});
  plan.controller_losses.push_back({9, util::SimTime(200), util::SimTime(300)});
  const wlan::Network net = testing::mini_network(4, 2);
  const CheckReport report = validate_fault_plan(plan, &net);
  EXPECT_TRUE(mentions(report, "controller-loss 2: outage windows overlap"));
  EXPECT_TRUE(mentions(report, "unknown controller 9"));
}

// --- report mechanics -----------------------------------------------

TEST_F(ValidatorsTest, ReportCapsIssuesAndCountsTheRest) {
  const ScopedContractMode scoped(ContractMode::kCount);
  TraceCheckOptions options;
  options.max_issues = 2;
  std::vector<trace::SessionRecord> sessions;
  for (int i = 0; i < 5; ++i) {
    sessions.push_back(testing::make_session({.user = 9}));  // all unknown
  }
  const CheckReport report = validate_trace(sessions, 1, nullptr, options);
  EXPECT_EQ(report.issues().size(), 2u);
  EXPECT_EQ(report.dropped(), 3u);
  EXPECT_FALSE(report.ok());
}

TEST_F(ValidatorsTest, OffModeStillReturnsFindingsWithoutCounting) {
  const ScopedContractMode scoped(ContractMode::kOff);
  const std::vector<double> demand = {-1.0};
  EXPECT_FALSE(validate_load_state(demand).ok());
  EXPECT_EQ(counter("check.validate_load_state.violations"), 0u);
}

}  // namespace
}  // namespace s3::check
