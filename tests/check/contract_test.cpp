#include "s3/check/contract.h"

#include <gtest/gtest.h>

#include "s3/util/metrics.h"

namespace s3::check {
namespace {

class ContractTest : public ::testing::Test {
 protected:
  void SetUp() override { util::metrics().reset(); }
  void TearDown() override {
    set_contract_mode(ContractMode::kOff);
    util::metrics().reset();
  }
};

TEST_F(ContractTest, OffModeDoesNotEvaluateTheExpression) {
  const ScopedContractMode scoped(ContractMode::kOff);
  int evaluations = 0;
  S3_INVARIANT(++evaluations > 0, "never reached");
  EXPECT_EQ(evaluations, 0);
  EXPECT_FALSE(contracts_enabled());
}

TEST_F(ContractTest, CountModeBumpsCountersWithoutThrowing) {
  const ScopedContractMode scoped(ContractMode::kCount);
  EXPECT_TRUE(contracts_enabled());
  S3_PRECONDITION(1 + 1 == 3, "arithmetic is broken");
  S3_POSTCONDITION(false, "always fires");
  S3_INVARIANT(true, "holds, no violation");
  EXPECT_EQ(util::metrics().counter("check.violations")->value(), 2u);
  EXPECT_EQ(util::metrics().counter("check.violations.precondition")->value(),
            1u);
  EXPECT_EQ(util::metrics().counter("check.violations.postcondition")->value(),
            1u);
  EXPECT_EQ(util::metrics().counter("check.violations.invariant")->value(),
            0u);
}

TEST_F(ContractTest, AbortModeThrowsContractViolation) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  try {
    S3_PRECONDITION(false, "should throw");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractKind::kPrecondition);
    EXPECT_NE(std::string(e.what()).find("should throw"), std::string::npos);
  }
  // The violation is still counted before the throw.
  EXPECT_EQ(util::metrics().counter("check.violations")->value(), 1u);
}

TEST_F(ContractTest, LogModeCountsAndDoesNotThrow) {
  const ScopedContractMode scoped(ContractMode::kLog);
  EXPECT_NO_THROW(S3_INVARIANT(false, "logged only"));
  EXPECT_EQ(util::metrics().counter("check.violations.invariant")->value(),
            1u);
}

TEST_F(ContractTest, ValidatorIssuesGetPerValidatorCounters) {
  const ScopedContractMode scoped(ContractMode::kCount);
  report_validator_issue("validate_trace", "synthetic issue");
  EXPECT_EQ(
      util::metrics().counter("check.validate_trace.violations")->value(),
      1u);
  EXPECT_EQ(util::metrics().counter("check.violations")->value(), 1u);
}

TEST_F(ContractTest, ValidatorIssueThrowsInAbortMode) {
  const ScopedContractMode scoped(ContractMode::kAbort);
  EXPECT_THROW(report_validator_issue("validate_load_state", "boom"),
               ContractViolation);
}

TEST_F(ContractTest, ScopedModeRestoresThePreviousMode) {
  set_contract_mode(ContractMode::kCount);
  {
    const ScopedContractMode scoped(ContractMode::kAbort);
    EXPECT_EQ(contract_mode(), ContractMode::kAbort);
  }
  EXPECT_EQ(contract_mode(), ContractMode::kCount);
}

TEST(ContractModeTest, ParseAcceptsTheFourModes) {
  EXPECT_EQ(parse_contract_mode("off"), ContractMode::kOff);
  EXPECT_EQ(parse_contract_mode("count"), ContractMode::kCount);
  EXPECT_EQ(parse_contract_mode("log"), ContractMode::kLog);
  EXPECT_EQ(parse_contract_mode("abort"), ContractMode::kAbort);
  EXPECT_EQ(parse_contract_mode("verbose"), std::nullopt);
  EXPECT_EQ(parse_contract_mode(""), std::nullopt);
}

TEST(ContractModeTest, ToStringRoundTrips) {
  for (const ContractMode m : {ContractMode::kOff, ContractMode::kCount,
                               ContractMode::kLog, ContractMode::kAbort}) {
    EXPECT_EQ(parse_contract_mode(to_string(m)), m);
  }
}

}  // namespace
}  // namespace s3::check
