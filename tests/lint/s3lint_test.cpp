// s3lint fixture suite: lexer, `.s3lint` config parsing, and every
// rule id against the positive / suppressed / clean fixture triples in
// tests/lint/fixtures. The fixtures are lexed, never compiled — the
// root `.s3lint` excludes them from the tree walk precisely so they
// can contain the violations the rules exist to catch.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "s3lint/config.h"
#include "s3lint/lexer.h"
#include "s3lint/rules.h"

namespace s3::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(S3LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

Config output_scope_config() {
  Config c;
  c.output_scope = true;
  return c;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const Config& config = Config{}) {
  const std::string content = read_fixture(name);
  return lint_file({name, content}, config);
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Rule registry.

TEST(Rules, RegistryIsSortedAndComplete) {
  const auto rules = all_rules();
  ASSERT_EQ(rules.size(), 11u);
  EXPECT_TRUE(std::is_sorted(
      rules.begin(), rules.end(),
      [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; }));
  for (const RuleInfo& rule : rules) {
    EXPECT_EQ(find_rule(rule.id), &rule);
    EXPECT_FALSE(rule.summary.empty());
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(Rules, FindingFormatMatchesDiagnosticGrammar) {
  const Finding f{"src/foo.cpp", 12, "det-rand", Severity::kError, "boom"};
  EXPECT_EQ(f.format(), "src/foo.cpp:12: [det-rand] error: boom");
}

// ---------------------------------------------------------------------------
// Lexer.

TEST(Lexer, ClassifiesTokensAndSkipsLiteralContents) {
  const LexResult r = lex("int rand_count = 3; f(\"rand()\", 'x');");
  std::vector<std::string> idents;
  for (const Token& t : r.tokens) {
    if (t.kind == TokenKind::kIdentifier) idents.push_back(t.text);
  }
  // "rand()" inside the string literal must not surface as tokens.
  EXPECT_EQ(idents, (std::vector<std::string>{"int", "rand_count", "f"}));
  const auto is_string = [](const Token& t) {
    return t.kind == TokenKind::kString;
  };
  ASSERT_EQ(std::count_if(r.tokens.begin(), r.tokens.end(), is_string), 1);
}

TEST(Lexer, CommentsCarryLineAndOwnLineFlag) {
  const LexResult r = lex(
      "// own-line first\n"
      "int x = 0;  // trailing\n");
  ASSERT_EQ(r.comments.size(), 2u);
  EXPECT_EQ(r.comments[0].line, 1u);
  EXPECT_TRUE(r.comments[0].own_line);
  EXPECT_EQ(r.comments[1].line, 2u);
  EXPECT_FALSE(r.comments[1].own_line);
}

TEST(Lexer, DirectivesAreWholeLogicalLines) {
  const LexResult r = lex("#pragma once\nint y;\n");
  ASSERT_FALSE(r.tokens.empty());
  EXPECT_EQ(r.tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(r.tokens[0].text.substr(0, 7), "#pragma");
}

TEST(Lexer, NeverFailsOnMalformedInput) {
  // Unterminated string: best-effort consumption, no crash.
  const LexResult r = lex("const char* s = \"unterminated\nint z;");
  EXPECT_FALSE(r.tokens.empty());
}

// ---------------------------------------------------------------------------
// `.s3lint` config.

TEST(Config, ParsesEveryDirective) {
  const ConfigParseResult r = parse_config(
      "# comment\n"
      "disable det-unordered-iter\n"
      "severity lock-atomic-mix error\n"
      "allow det-rand s3/util/rng.cpp\n"
      "exclude tests/lint/fixtures\n"
      "output-scope on\n",
      ".s3lint", Config{});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.config.output_scope);
  EXPECT_TRUE(r.config.excluded("tests/lint/fixtures/det_rand_positive.cpp"));
  EXPECT_FALSE(r.config.excluded("src/core/s3/core/online_s3.cpp"));
  EXPECT_EQ(r.config.severity_for("det-unordered-iter", "src/x.cpp",
                                  Severity::kError),
            Severity::kOff);
  EXPECT_EQ(
      r.config.severity_for("lock-atomic-mix", "src/x.cpp", Severity::kWarning),
      Severity::kError);
  EXPECT_EQ(r.config.severity_for("det-rand", "s3/util/rng.cpp",
                                  Severity::kError),
            Severity::kOff);
  EXPECT_EQ(r.config.severity_for("det-rand", "s3/util/other.cpp",
                                  Severity::kError),
            Severity::kError);
}

TEST(Config, ErrorsNameTheFileAndLine) {
  const ConfigParseResult unknown =
      parse_config("disable not-a-rule\n", "src/.s3lint", Config{});
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error, "src/.s3lint line 1: unknown rule \"not-a-rule\"");

  const ConfigParseResult verb =
      parse_config("# fine\nfrobnicate det-rand\n", ".s3lint", Config{});
  EXPECT_FALSE(verb.ok());
  EXPECT_EQ(verb.error, ".s3lint line 2: unknown directive \"frobnicate\"");

  const ConfigParseResult arity =
      parse_config("output-scope maybe\n", ".s3lint", Config{});
  EXPECT_FALSE(arity.ok());
  EXPECT_EQ(arity.error, ".s3lint line 1: output-scope wants on or off");
}

TEST(Config, WildcardPatternsAndLaterOverridesWin) {
  EXPECT_TRUE(Config::pattern_matches("det-*", "det-rand"));
  EXPECT_TRUE(Config::pattern_matches("*", "hyg-assert"));
  EXPECT_FALSE(Config::pattern_matches("det-*", "lock-raw-mutex"));
  EXPECT_TRUE(Config::pattern_matches("det-rand", "det-rand"));

  const ConfigParseResult r = parse_config(
      "disable det-*\n"
      "severity det-rand warning\n",
      ".s3lint", Config{});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.config.severity_for("det-rand", "x.cpp", Severity::kError),
            Severity::kWarning);
  EXPECT_EQ(r.config.severity_for("det-time", "x.cpp", Severity::kError),
            Severity::kOff);
}

TEST(Config, ChildConfigMergesOnTopOfParent) {
  const ConfigParseResult parent =
      parse_config("disable hyg-assert\n", ".s3lint", Config{});
  ASSERT_TRUE(parent.ok());
  const ConfigParseResult child = parse_config(
      "severity hyg-assert error\noutput-scope on\n", "src/.s3lint",
      parent.config);
  ASSERT_TRUE(child.ok()) << child.error;
  // The child's later override wins; the parent alone stays off.
  EXPECT_EQ(child.config.severity_for("hyg-assert", "x.cpp", Severity::kError),
            Severity::kError);
  EXPECT_EQ(parent.config.severity_for("hyg-assert", "x.cpp", Severity::kError),
            Severity::kOff);
  EXPECT_TRUE(child.config.output_scope);
  EXPECT_FALSE(parent.config.output_scope);
}

// ---------------------------------------------------------------------------
// Every rule id: positive fires, suppressed is silent, clean is clean.

struct RuleFixture {
  std::string_view rule;
  std::string_view stem;  ///< fixture file stem
  std::string_view ext;   ///< ".cpp" or ".h" (hygiene rules are header-only)
  bool output_scope;      ///< lint under `output-scope on`
  std::size_t positive_findings;  ///< expected count in the positive fixture
};

constexpr RuleFixture kRuleFixtures[] = {
    {"det-rand", "det_rand", ".cpp", false, 2},
    {"det-random-device", "det_random_device", ".cpp", false, 1},
    {"det-time", "det_time", ".cpp", false, 2},
    {"det-unordered-iter", "det_unordered_iter", ".cpp", true, 2},
    {"hyg-assert", "hyg_assert", ".cpp", false, 1},
    {"hyg-pragma-once", "hyg_pragma_once", ".h", false, 1},
    {"hyg-using-namespace", "hyg_using_namespace", ".h", false, 1},
    {"lint-suppression", "lint_suppression", ".cpp", false, 5},
    {"lock-atomic-mix", "lock_atomic_mix", ".cpp", false, 3},
    {"lock-raw-mutex", "lock_raw_mutex", ".cpp", false, 3},
    {"lock-unguarded-field", "lock_unguarded_field", ".cpp", false, 1},
};

class RuleFixtureTest : public ::testing::TestWithParam<RuleFixture> {};

TEST_P(RuleFixtureTest, PositiveFixtureFires) {
  const RuleFixture& p = GetParam();
  const Config config = p.output_scope ? output_scope_config() : Config{};
  const auto findings = lint_fixture(
      std::string(p.stem) + "_positive" + std::string(p.ext), config);
  EXPECT_EQ(count_rule(findings, p.rule), p.positive_findings);
}

TEST_P(RuleFixtureTest, SuppressedFixtureIsSilentForTheRule) {
  const RuleFixture& p = GetParam();
  const Config config = p.output_scope ? output_scope_config() : Config{};
  const auto findings = lint_fixture(
      std::string(p.stem) + "_suppressed" + std::string(p.ext), config);
  if (p.rule == "lint-suppression") {
    // The exception: suppression findings are the audit trail and are
    // exempt from suppression — the malformed comment is still reported.
    EXPECT_EQ(count_rule(findings, p.rule), 1u);
  } else {
    EXPECT_EQ(count_rule(findings, p.rule), 0u)
        << findings.front().format();
  }
}

TEST_P(RuleFixtureTest, CleanFixtureHasNoFindingsAtAll) {
  const RuleFixture& p = GetParam();
  const Config config = p.output_scope ? output_scope_config() : Config{};
  const auto findings = lint_fixture(
      std::string(p.stem) + "_clean" + std::string(p.ext), config);
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : findings.front().format());
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RuleFixtureTest, ::testing::ValuesIn(kRuleFixtures),
    [](const ::testing::TestParamInfo<RuleFixture>& param_info) {
      return std::string(param_info.param.stem);
    });

// Fixture coverage is total: every registered rule appears in the
// table above, so adding a rule without fixtures fails here.
TEST(RuleFixtures, CoverEveryRegisteredRule) {
  std::set<std::string_view> covered;
  for (const RuleFixture& p : kRuleFixtures) covered.insert(p.rule);
  for (const RuleInfo& rule : all_rules()) {
    EXPECT_TRUE(covered.count(rule.id) == 1)
        << "rule " << rule.id << " has no fixture triple";
  }
}

// ---------------------------------------------------------------------------
// Cross-cutting behaviors.

TEST(Findings, OrderedByLineThenRule) {
  const auto findings = lint_fixture("lint_suppression_positive.cpp");
  ASSERT_GE(findings.size(), 2u);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               if (a.line != b.line) return a.line < b.line;
                               return a.rule < b.rule;
                             }));
}

TEST(Findings, MalformedSuppressionAlsoLeavesTheTargetRuleLive) {
  // Every suppression in the positive fixture is malformed, so the
  // rand() calls it fails to cover are reported too.
  const auto findings = lint_fixture("lint_suppression_positive.cpp");
  EXPECT_EQ(count_rule(findings, "det-rand"), 5u);
}

TEST(DetUnorderedIter, FiresOnlyUnderOutputScope) {
  const std::string name = "det_unordered_iter_positive.cpp";
  EXPECT_EQ(count_rule(lint_fixture(name, output_scope_config()),
                       "det-unordered-iter"),
            2u);
  EXPECT_EQ(count_rule(lint_fixture(name), "det-unordered-iter"), 0u);
}

TEST(HeaderContext, SiblingHeaderDeclaresTheUnorderedMember) {
  const std::string header = read_fixture("header_context_store.h");
  const std::string source = read_fixture("header_context_store.cpp");
  const Config config = output_scope_config();

  FileInput with_header{"header_context_store.cpp", source, header};
  EXPECT_EQ(count_rule(lint_file(with_header, config), "det-unordered-iter"),
            1u);

  // Without the sibling header the member's type is unknown — the rule
  // stays quiet rather than guessing.
  FileInput without{"header_context_store.cpp", source};
  EXPECT_EQ(count_rule(lint_file(without, config), "det-unordered-iter"), 0u);
}

TEST(SeverityOverride, ConfigDowngradesAndDisablesRuleFindings) {
  const std::string content = read_fixture("det_rand_positive.cpp");

  ConfigParseResult warn =
      parse_config("severity det-rand warning\n", ".s3lint", Config{});
  ASSERT_TRUE(warn.ok());
  const auto downgraded =
      lint_file({"det_rand_positive.cpp", content}, warn.config);
  ASSERT_EQ(count_rule(downgraded, "det-rand"), 2u);
  for (const Finding& f : downgraded) {
    EXPECT_EQ(f.severity, Severity::kWarning);
  }

  ConfigParseResult off =
      parse_config("disable det-rand\n", ".s3lint", Config{});
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(count_rule(lint_file({"det_rand_positive.cpp", content},
                                 off.config),
                       "det-rand"),
            0u);
}

TEST(AllowDirective, ExemptsByPathSuffixOnly) {
  const std::string content = read_fixture("det_rand_positive.cpp");
  ConfigParseResult r = parse_config("allow det-rand util/rng.cpp\n",
                                     ".s3lint", Config{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(
      count_rule(lint_file({"src/util/rng.cpp", content}, r.config),
                 "det-rand"),
      0u);
  EXPECT_EQ(
      count_rule(lint_file({"src/core/online.cpp", content}, r.config),
                 "det-rand"),
      2u);
}

}  // namespace
}  // namespace s3::lint
