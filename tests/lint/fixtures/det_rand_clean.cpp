// Fixture: seeded project RNG and lookalike call sites must not fire
// det-rand. (Fixtures are lexed, never compiled, so the callees need
// no declarations.)
#include "s3/util/rng.h"

struct Dice;

int roll_dice(s3::util::Rng& rng, const Dice& dice) {
  const int a = static_cast<int>(rng.next_u64() % 6);  // seeded — fine
  const int b = dice.rand();     // member call — fine
  const int c = vendor::rand();  // foreign namespace — fine
  int rand = a;                  // identifier, never called — fine
  return rand + b + c;
}
