// Fixture: a reasoned suppression silences lock-raw-mutex.
#include <mutex>

struct RawLocked {
  std::mutex mu;  // s3lint: allow(lock-raw-mutex): fixture wraps the raw type
  int value S3_GUARDED_BY(mu) = 0;

  void set(int v) {
    // s3lint: allow(lock-raw-mutex): fixture exercises own-line coverage
    std::lock_guard<std::mutex> g(mu);
    value = v;
  }
};
