// Fixture: a header opening with #pragma once is clean.
#pragma once

#include <cstddef>

std::size_t guarded_the_project_way();
