// Fixture: lint-suppression findings cannot themselves be suppressed —
// the audit trail stays intact. Both comments below share a line; the
// second one is malformed (missing reason) and must still be reported.
/* s3lint: allow(lint-suppression): tries to silence the auditor */ // s3lint: allow(hyg-assert)

int nothing_else_here() { return 0; }
