// Fixture: a reasoned suppression silences lock-atomic-mix.
#include <atomic>
#include <cstdint>

struct Counter {
  std::atomic<std::uint64_t> hits{0};

  void bump() {
    hits++;  // s3lint: allow(lock-atomic-mix): fixture reason
  }
};
