// Fixture: explicit-memory-order accesses and name-shadowing locals
// must not fire lock-atomic-mix.
#include <atomic>
#include <cstdint>

struct Counter {
  std::atomic<std::uint64_t> hits{0};

  void bump() {
    hits.fetch_add(1, std::memory_order_relaxed);  // explicit order — fine
  }
  void reset() {
    hits.store(0, std::memory_order_release);
  }
  std::uint64_t snapshot() {
    std::uint64_t hits = this->hits.load(std::memory_order_acquire);
    return hits;  // declaring a shadowing local is fine
  }
};
