// Fixture: a well-formed suppression — rule id in the registry, colon,
// non-empty reason — produces no lint-suppression finding (and
// silences its target).
#include <cstdlib>

int roll_dice() {
  return rand() % 6;  // s3lint: allow(det-rand): well-formed fixture example
}
