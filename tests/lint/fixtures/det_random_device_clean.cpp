// Fixture: run-seeded generators must not fire det-random-device.
#include <random>

std::uint64_t seeded_draw(std::uint64_t run_seed) {
  std::mt19937_64 gen(run_seed);
  return gen();
}
