// Fixture: using namespace in a header must fire hyg-using-namespace.
#pragma once

#include <vector>

using namespace std;  // line 6: hyg-using-namespace

inline vector<int> make_empty() { return {}; }
