// Fixture: range-for over a member whose unordered type is declared
// only in the sibling header (header_context_store.h).
#include <cstdio>

void dump_impl(const SessionStore& store);

void SessionStore::dump() const {
  for (const auto& [id, user] : sessions_) {  // det-unordered-iter with header
    std::printf("%d %s\n", id, user.c_str());
  }
}
