// Fixture: the contract macros and member-call lookalikes must not
// fire hyg-assert. (Fixtures are lexed, never compiled, so the callee
// needs no declaration.)
#include "s3/util/error.h"

struct Checker;

int checked_halve(int n, const Checker& c) {
  S3_REQUIRE(n % 2 == 0, "checked_halve: odd input");
  c.assert(true);  // member call — fine
  return n / 2;
}
