// Fixture: a reasoned suppression silences det-rand.
#include <cstdlib>

int roll_dice() {
  return rand() % 6;  // s3lint: allow(det-rand): fixture exercises suppression
}

int roll_again() {
  // s3lint: allow(det-rand): own-line comment covers the next line
  return rand() % 6;
}
