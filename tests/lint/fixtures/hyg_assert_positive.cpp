// Fixture: bare assert() must fire hyg-assert.
#include <cassert>

int checked_halve(int n) {
  assert(n % 2 == 0);  // line 5: hyg-assert
  return n / 2;
}
