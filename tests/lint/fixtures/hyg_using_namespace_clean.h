// Fixture: using-declarations and namespace aliases are fine in a
// header; only using-directives leak wholesale.
#pragma once

#include <vector>

using std::vector;
namespace vec = std;

inline vector<int> make_empty() { return {}; }
