// Fixture: unseeded libc RNG must fire det-rand.
#include <cstdlib>

int roll_dice() {
  return rand() % 6;  // line 5: det-rand
}

void reseed() {
  srand(42);  // line 9: det-rand
}
