// Fixture: wall-clock reads must fire det-time.
#include <chrono>
#include <ctime>

long wall_seconds() {
  return static_cast<long>(time(nullptr));  // line 6: det-time
}

auto wall_now() {
  return std::chrono::system_clock::now();  // line 10: det-time
}
