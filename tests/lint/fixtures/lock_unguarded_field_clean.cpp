// Fixture: annotated, atomic, const and static members of a
// lock-owning class must not fire lock-unguarded-field.
#include <atomic>

#include "s3/util/thread_annotations.h"

class Tally {
 public:
  void bump();

 private:
  static constexpr int kStep = 1;

  mutable s3::util::Mutex mu_;
  int count_ S3_GUARDED_BY(mu_) = 0;
  int* slot_ S3_PT_GUARDED_BY(mu_) = nullptr;
  std::atomic<int> fast_count_{0};
  const int capacity_ = 16;
};
