// Fixture: a reasoned suppression silences det-unordered-iter.
#include <unordered_map>

double sum_demand(const std::unordered_map<int, double>& sessions) {
  double total = 0.0;
  // s3lint: allow(det-unordered-iter): summation is commutative
  for (const auto& [id, demand] : sessions) {
    total += demand;
  }
  return total;
}
