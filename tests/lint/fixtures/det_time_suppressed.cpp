// Fixture: a reasoned suppression silences det-time.
#include <ctime>

long wall_seconds() {
  return static_cast<long>(time(nullptr));  // s3lint: allow(det-time): fixture
}
