// Fixture: steady_clock, member calls and foreign namespaces must not
// fire det-time. (Fixtures are lexed, never compiled, so the callees
// need no declarations.)
#include <chrono>

struct Stopwatch;

long elapsed_ns(const Stopwatch& w) {
  const auto t0 = std::chrono::steady_clock::now();  // measurement — fine
  const long a = w.time();                           // member call — fine
  const long b = sim::time();                        // own namespace — fine
  const auto t1 = std::chrono::steady_clock::now();
  return (t1 - t0).count() + a + b;
}
