// Fixture: a reasoned suppression silences lock-unguarded-field.
#include "s3/util/thread_annotations.h"

class Tally {
 public:
  void bump();

 private:
  mutable s3::util::Mutex mu_;
  // s3lint: allow(lock-unguarded-field): fixture documents a seqlock field
  int count_ = 0;
};
