// Fixture: malformed suppression comments must fire lint-suppression.
#include <cstdlib>

int a() {
  return rand() % 6;  // s3lint: allow(det-rand)
}

int b() {
  return rand() % 6;  // s3lint: allow(no-such-rule): typoed rule id
}

int c() {
  return rand() % 6;  // s3lint: disable det-rand
}

int d() {
  return rand() % 6;  // s3lint: allow(det-rand
}

int e() {
  return rand() % 6;  // s3lint: allow(det-rand):
}
