// Fixture: raw std::mutex / std::lock_guard must fire lock-raw-mutex.
#include <mutex>

struct RawLocked {
  std::mutex mu;  // line 5: lock-raw-mutex
  int value S3_GUARDED_BY(mu) = 0;

  void set(int v) {
    std::lock_guard<std::mutex> g(mu);  // line 9: two findings
    value = v;
  }
};
