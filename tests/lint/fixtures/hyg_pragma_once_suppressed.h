// Fixture: a reasoned suppression silences hyg-pragma-once.
// s3lint: allow(hyg-pragma-once): fixture keeps a legacy guard
#ifndef HYG_PRAGMA_ONCE_SUPPRESSED_H
#define HYG_PRAGMA_ONCE_SUPPRESSED_H

int guarded_the_old_way();

#endif
