// Fixture: a reasoned suppression silences det-random-device.
#include <random>

std::uint64_t entropy_seed() {
  std::random_device rd;  // s3lint: allow(det-random-device): fixture reason
  return rd();
}
