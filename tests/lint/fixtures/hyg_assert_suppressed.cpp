// Fixture: a reasoned suppression silences hyg-assert.
#include <cassert>

int checked_halve(int n) {
  assert(n % 2 == 0);  // s3lint: allow(hyg-assert): fixture reason
  return n / 2;
}
