// Fixture: a mutable field of a lock-owning class without
// S3_GUARDED_BY must fire lock-unguarded-field.
#include "s3/util/thread_annotations.h"

class Tally {
 public:
  void bump();

 private:
  mutable s3::util::Mutex mu_;
  int count_ = 0;  // line 11: lock-unguarded-field
};
