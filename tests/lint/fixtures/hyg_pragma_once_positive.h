// Fixture: a classic include guard (not #pragma once) must fire
// hyg-pragma-once on the first directive.
#ifndef HYG_PRAGMA_ONCE_POSITIVE_H
#define HYG_PRAGMA_ONCE_POSITIVE_H

int guarded_the_old_way();

#endif
