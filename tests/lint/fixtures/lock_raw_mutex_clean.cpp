// Fixture: the annotated util wrappers must not fire lock-raw-mutex.
#include "s3/util/thread_annotations.h"

struct WrapperLocked {
  mutable s3::util::Mutex mu;
  int value S3_GUARDED_BY(mu) = 0;

  void set(int v) {
    s3::util::MutexLock lock(&mu);
    value = v;
  }
};
