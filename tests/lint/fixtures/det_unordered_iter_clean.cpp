// Fixture: ordered iteration and mapped-value element access must not
// fire det-unordered-iter even under `output-scope on`.
#include <algorithm>
#include <unordered_map>
#include <vector>

std::vector<int> sorted_keys(const std::unordered_map<int, double>& sessions) {
  std::vector<int> keys;
  keys.reserve(sessions.size());
  // s3lint: allow(det-unordered-iter): keys are collected then sorted
  for (const auto& [id, demand] : sessions) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  return keys;
}

double sum_one_bucket(
    const std::unordered_map<int, std::vector<double>>& by_ap, int ap) {
  double total = 0.0;
  for (const double demand : by_ap.at(ap)) {  // mapped value, not the map
    total += demand;
  }
  return total;
}
