// Fixture: iteration over unordered containers in output-scope code
// must fire det-unordered-iter (the test lints this with
// `output-scope on`).
#include <cstdio>
#include <unordered_map>

void print_sessions(const std::unordered_map<int, double>& sessions) {
  for (const auto& [id, demand] : sessions) {  // line 8: det-unordered-iter
    std::printf("%d %f\n", id, demand);
  }
}

double sum_iterator_style(const std::unordered_map<int, double>& sessions) {
  double total = 0.0;
  for (auto it = sessions.begin(); it != sessions.end(); ++it) {  // line 15
    total += it->second;
  }
  return total;
}
