// Fixture: the member declaration lives here; the sibling .cpp
// iterates it. Only with this header as header_context can the
// det-unordered-iter rule know the member's type.
#pragma once

#include <string>
#include <unordered_map>

class SessionStore {
 public:
  void dump() const;

 private:
  std::unordered_map<int, std::string> sessions_;
};
