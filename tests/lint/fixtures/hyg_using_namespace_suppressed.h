// Fixture: a reasoned suppression silences hyg-using-namespace.
#pragma once

#include <vector>

using namespace std;  // s3lint: allow(hyg-using-namespace): fixture reason

inline vector<int> make_empty() { return {}; }
