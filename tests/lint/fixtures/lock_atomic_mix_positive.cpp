// Fixture: writing an atomic through implicit-seq_cst operators must
// fire lock-atomic-mix.
#include <atomic>
#include <cstdint>

struct Counter {
  std::atomic<std::uint64_t> hits{0};

  void bump() {
    hits++;  // line 10: lock-atomic-mix
  }
  void reset() {
    hits = 0;  // line 13: lock-atomic-mix
  }
  void add(std::uint64_t n) {
    hits += n;  // line 16: lock-atomic-mix
  }
};
