// Fixture: real-entropy seeding must fire det-random-device.
#include <random>

std::uint64_t entropy_seed() {
  std::random_device rd;  // line 5: det-random-device
  return rd();
}
