// s3::repl determinism: a replicated replay is bit-identical across
// thread counts and backup counts, a promoted backup provably converges
// to the crashed primary, failover with >= 1 backup is transparent
// (identical to the same run without controller outages), and a
// headless domain drops exactly the in-window arrivals.
//
// Snapshot/truncation/adoption coverage: snapshot-seeded catch-up and
// prefix truncation are invisible to the replay outcome, catch-up work
// stays bounded by the snapshot interval, a corrupted log record is
// rejected + counted + healed by a snapshot resync, and a whole-set
// controller loss is adopted by a neighbor domain and handed back —
// all bit-identically.

#include <gtest/gtest.h>

#include <stdexcept>

#include "s3/util/metrics.h"

#include "s3/core/evaluation.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/repl/replicated_driver.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::repl {
namespace {

const trace::GeneratedTrace& shared_world() {
  static const trace::GeneratedTrace world = [] {
    trace::GeneratorConfig cfg;
    cfg.seed = 11;
    cfg.num_users = 150;
    cfg.num_days = 3;
    cfg.layout.num_buildings = 3;
    cfg.layout.aps_per_building = 5;
    return trace::generate_campus_trace(cfg);
  }();
  return world;
}

const social::SocialIndexModel& shared_model() {
  static const social::SocialIndexModel model = [] {
    const trace::GeneratedTrace& w = shared_world();
    core::EvaluationConfig eval;
    eval.train_days = 2;
    eval.test_days = 1;
    return core::train_from_workload(w.network, w.workload, eval);
  }();
  return model;
}

/// Controller churn over every domain, stacked on AP churn, a model
/// outage and admission failures — replication has to preserve the
/// whole fault state machine, not just placements.
fault::FaultPlan churn_plan() {
  const trace::GeneratedTrace& w = shared_world();
  const util::SimTime begin(0);
  const util::SimTime end = w.workload.end_time();
  fault::FaultPlan plan;
  // One midday 4-hour crash per domain (one per day) — midday so the
  // windows actually contain arrivals, unlike the canned midnight
  // stagger would on this 3-day world.
  for (ControllerId c = 0; c < w.network.num_controllers(); ++c) {
    const std::int64_t day = static_cast<std::int64_t>(c) * 86400;
    plan.controller_outages.push_back({c, util::SimTime(day + 10 * 3600),
                                       util::SimTime(day + 14 * 3600)});
  }
  const fault::FaultPlan ap =
      fault::canned_ap_churn_plan(w.network, begin, end, 4, 2 * 3600);
  plan.ap_outages = ap.ap_outages;
  const fault::FaultPlan model = fault::canned_model_outage_plan(begin, end);
  plan.model_outages = model.model_outages;
  plan.admission.failure_probability = 0.2;
  plan.admission.begin = util::SimTime(end.seconds() / 4);
  plan.admission.end = util::SimTime(end.seconds() / 2);
  return plan;
}

/// churn_plan() plus one whole-replica-set loss per domain, placed in
/// the late afternoon so it never overlaps the same controller's midday
/// outage and the next controller (the deterministic adopter candidate)
/// is alive at the loss begin.
fault::FaultPlan loss_plan() {
  fault::FaultPlan plan = churn_plan();
  const trace::GeneratedTrace& w = shared_world();
  for (ControllerId c = 0; c < w.network.num_controllers(); ++c) {
    const std::int64_t day = static_cast<std::int64_t>(c) * 86400;
    plan.controller_losses.push_back({c, util::SimTime(day + 16 * 3600),
                                      util::SimTime(day + 19 * 3600)});
  }
  return plan;
}

ReplicatedReplayResult run_replicated(const sim::SelectorFactory& factory,
                                      const fault::FaultInjector& injector,
                                      std::size_t backups, unsigned threads,
                                      const ReplicationConfig& repl = {}) {
  const trace::GeneratedTrace& w = shared_world();
  ReplicatedDriverConfig rc;
  rc.threads = threads;
  rc.injector = &injector;
  rc.repl = repl;
  rc.repl.backups = backups;
  return ReplicatedReplayDriver(w.network, rc).run(w.workload, factory);
}

void expect_identical(const sim::ReplayResult& a, const sim::ReplayResult& b) {
  ASSERT_EQ(a.assigned.size(), b.assigned.size());
  for (std::size_t i = 0; i < a.assigned.size(); ++i) {
    ASSERT_EQ(a.assigned.session(i).ap, b.assigned.session(i).ap)
        << "session " << i;
  }
  EXPECT_EQ(a.stats, b.stats);
}

TEST(Replication, ThreadCountInvariant) {
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult one = run_replicated(f, injector, 1, 1);
  const ReplicatedReplayResult eight = run_replicated(f, injector, 1, 8);
  expect_identical(one.result, eight.result);
  EXPECT_EQ(one.repl.failovers, eight.repl.failovers);
  EXPECT_EQ(one.repl.log_records, eight.repl.log_records);
  EXPECT_EQ(one.repl.final_term, eight.repl.final_term);
  ASSERT_EQ(one.failovers.size(), eight.failovers.size());
  for (std::size_t i = 0; i < one.failovers.size(); ++i) {
    EXPECT_EQ(one.failovers[i].when, eight.failovers[i].when);
    EXPECT_EQ(one.failovers[i].promoted_replica,
              eight.failovers[i].promoted_replica);
    EXPECT_EQ(one.failovers[i].new_term, eight.failovers[i].new_term);
  }
}

TEST(Replication, BackupCountInvariant) {
  // One backup or two — the promoted state is the same, so the whole
  // replay is. Only the replica count in the ledger may differ.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult one = run_replicated(f, injector, 1, 4);
  const ReplicatedReplayResult two = run_replicated(f, injector, 2, 4);
  expect_identical(one.result, two.result);
  EXPECT_EQ(one.repl.failovers, two.repl.failovers);
  EXPECT_EQ(two.repl.replicas, 3u);
}

TEST(Replication, PromotionsConvergeAndPreserveTheSocialModel) {
  // S3 with a live model outage in the plan: the promoted backup must
  // carry the degradation machine and the policy's internal state —
  // every FailoverEvent records the convergence check it passed.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::S3Factory s3(&shared_world().network, &shared_model());
  const ReplicatedReplayResult r = run_replicated(s3, injector, 1, 4);
  EXPECT_GT(r.repl.failovers, 0u);
  EXPECT_EQ(r.repl.failovers, r.repl.rejoins);
  for (const FailoverEvent& ev : r.failovers) {
    EXPECT_TRUE(ev.converged) << "domain " << ev.domain;
    EXPECT_FALSE(ev.headless);
    EXPECT_GE(ev.new_term, 2u);
  }
  EXPECT_EQ(r.result.stats.dropped_sessions, 0u);
}

TEST(Replication, FailoverWithBackupsIsTransparent) {
  // The same plan with the controller outages stripped, run through the
  // plain driver, must match the replicated run byte for byte: a crash
  // with a backup costs nothing.
  const trace::GeneratedTrace& w = shared_world();
  fault::FaultPlan plan = churn_plan();
  const fault::FaultInjector replicated_injector(plan, 5);
  plan.controller_outages.clear();
  const fault::FaultInjector plain_injector(plan, 5);

  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult replicated =
      run_replicated(f, replicated_injector, 1, 4);
  runtime::ReplayDriverConfig rc;
  rc.threads = 4;
  rc.injector = &plain_injector;
  const sim::ReplayResult plain =
      runtime::ReplayDriver(w.network, rc).run(w.workload, f);
  expect_identical(replicated.result, plain);
}

TEST(Replication, HeadlessDomainsDropInWindowArrivals) {
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult r = run_replicated(f, injector, 0, 4);
  EXPECT_EQ(r.repl.failovers, 0u);
  EXPECT_GT(r.repl.headless_windows, 0u);
  EXPECT_GT(r.result.stats.dropped_sessions, 0u);
  for (const FailoverEvent& ev : r.failovers) EXPECT_TRUE(ev.headless);
  // Headless runs stay deterministic too.
  const ReplicatedReplayResult again = run_replicated(f, injector, 0, 1);
  expect_identical(r.result, again.result);
}

TEST(Replication, PlainDriverRejectsControllerOutagePlans) {
  const trace::GeneratedTrace& w = shared_world();
  const fault::FaultInjector injector(churn_plan(), 5);
  runtime::ReplayDriverConfig rc;
  rc.injector = &injector;
  const core::LlfFactory f(core::LoadMetric::kStations);
  EXPECT_THROW(runtime::ReplayDriver(w.network, rc).run(w.workload, f),
               std::invalid_argument);

  // Loss-only plans are just as much the replicated driver's business.
  fault::FaultPlan losses;
  losses.controller_losses.push_back(
      {0, util::SimTime(3600), util::SimTime(7200)});
  const fault::FaultInjector loss_injector(losses, 5);
  rc.injector = &loss_injector;
  EXPECT_THROW(runtime::ReplayDriver(w.network, rc).run(w.workload, f),
               std::invalid_argument);
}

TEST(Replication, SnapshotCatchUpIsTransparentAndBounded) {
  // Same churn, with and without snapshots in the log: a rejoin that
  // installs a checkpoint instead of replaying from record zero must
  // change nothing about the replay — and no single catch-up may
  // replay more than ~two snapshot intervals of records, however long
  // the log is.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::S3Factory s3(&shared_world().network, &shared_model());
  const ReplicatedReplayResult plain = run_replicated(s3, injector, 1, 4);
  ReplicationConfig repl;
  repl.snapshot_every = 25;
  const ReplicatedReplayResult snap = run_replicated(s3, injector, 1, 4, repl);
  expect_identical(plain.result, snap.result);
  EXPECT_EQ(plain.repl.failovers, snap.repl.failovers);
  EXPECT_GT(snap.repl.snapshots, 0u);
  EXPECT_GT(snap.repl.snapshot_installs, 0u);
  EXPECT_EQ(snap.repl.digest_mismatches, 0u);
  // Control records (crash/promotion/restart/snapshot) ride along in
  // the replayed suffix; a small constant covers them.
  EXPECT_LE(snap.repl.max_catchup_records, 2 * repl.snapshot_every + 64);
  EXPECT_GT(plain.repl.max_catchup_records, snap.repl.max_catchup_records);
}

TEST(Replication, TruncationBoundsTheLiveLogTransparently) {
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult plain = run_replicated(f, injector, 1, 4);
  ReplicationConfig repl;
  repl.snapshot_every = 200;
  repl.truncate = true;
  const ReplicatedReplayResult cut = run_replicated(f, injector, 1, 4, repl);
  expect_identical(plain.result, cut.result);
  EXPECT_GT(cut.repl.truncated_records, 0u);
  // Snapshots are the only extra records a snapshotting log carries.
  EXPECT_EQ(cut.repl.log_records, plain.repl.log_records + cut.repl.snapshots);
  EXPECT_LT(cut.repl.live_log_records, cut.repl.log_records);
  EXPECT_EQ(cut.repl.live_log_records + cut.repl.truncated_records,
            cut.repl.log_records);
}

TEST(Replication, TruncationRequiresSnapshots) {
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  ReplicationConfig repl;
  repl.truncate = true;  // snapshot_every left 0
  EXPECT_THROW(run_replicated(f, injector, 1, 1, repl), std::invalid_argument);
}

TEST(Replication, CorruptedRecordIsRejectedCountedAndHealed) {
  // Tamper with one mid-log record at append time. The backups must
  // reject it on replay (digest mismatch), the rejection must land on
  // the metrics bus, a snapshot resync must heal them — and the replay
  // outcome must be identical to the untampered run, because the
  // primary's own state was never corrupt.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  ReplicationConfig repl;
  repl.snapshot_every = 200;
  const ReplicatedReplayResult clean = run_replicated(f, injector, 1, 4, repl);
  ASSERT_GT(clean.repl.log_records, 600u);

  util::Counter* const mismatches =
      util::metrics().counter("repl.digest_mismatches");
  const std::uint64_t bus_before = mismatches->value();
  repl.corrupt_record = 500;
  const ReplicatedReplayResult healed = run_replicated(f, injector, 1, 4, repl);
  expect_identical(clean.result, healed.result);
  EXPECT_GT(healed.repl.digest_mismatches, 0u);
  EXPECT_GT(healed.repl.resyncs, 0u);
  EXPECT_EQ(mismatches->value() - bus_before, healed.repl.digest_mismatches);
}

TEST(Replication, CorruptedRecordWithoutSnapshotsIsFatal) {
  // Without snapshots there is no resync path: the old fail-stop
  // behavior must survive.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  ReplicationConfig repl;
  repl.corrupt_record = 500;
  EXPECT_THROW(run_replicated(f, injector, 1, 1, repl), std::logic_error);
}

TEST(Replication, ControllerLossIsAdoptedAndHandedBackTransparently) {
  // A whole replica set dies; the neighbor domain adopts from the last
  // replicated snapshot and hands back at the window end. Sessions of
  // the lost domain keep flowing — the result matches a run whose plan
  // has no controller faults at all.
  const trace::GeneratedTrace& w = shared_world();
  fault::FaultPlan plan = loss_plan();
  const fault::FaultInjector injector(plan, 5);
  plan.controller_outages.clear();
  plan.controller_losses.clear();
  const fault::FaultInjector no_controller_faults(plan, 5);

  const core::LlfFactory f(core::LoadMetric::kStations);
  ReplicationConfig repl;
  repl.snapshot_every = 150;
  repl.truncate = true;
  const ReplicatedReplayResult lost = run_replicated(f, injector, 1, 4, repl);
  runtime::ReplayDriverConfig rc;
  rc.threads = 4;
  rc.injector = &no_controller_faults;
  const sim::ReplayResult baseline =
      runtime::ReplayDriver(w.network, rc).run(w.workload, f);
  expect_identical(lost.result, baseline);

  EXPECT_EQ(lost.repl.adoptions, w.network.num_controllers());
  EXPECT_EQ(lost.repl.adoptions, lost.repl.handbacks);
  EXPECT_EQ(lost.result.stats.dropped_sessions, 0u);
  std::size_t adoptions = 0;
  std::size_t handbacks = 0;
  for (const FailoverEvent& ev : lost.failovers) {
    EXPECT_TRUE(ev.converged) << "domain " << ev.domain;
    if (ev.kind == FailoverKind::kAdoption) {
      ++adoptions;
      EXPECT_NE(ev.adopter, ev.domain);
      EXPECT_NE(ev.adopter, kInvalidController);
    } else if (ev.kind == FailoverKind::kHandback) {
      ++handbacks;
      EXPECT_NE(ev.adopter, kInvalidController);
    }
  }
  EXPECT_EQ(adoptions, lost.repl.adoptions);
  EXPECT_EQ(handbacks, lost.repl.handbacks);

  // Deterministic adoption order: same run, same adopters, any thread
  // count.
  const ReplicatedReplayResult again = run_replicated(f, injector, 1, 1, repl);
  expect_identical(lost.result, again.result);
  ASSERT_EQ(lost.failovers.size(), again.failovers.size());
  for (std::size_t i = 0; i < lost.failovers.size(); ++i) {
    EXPECT_EQ(lost.failovers[i].kind, again.failovers[i].kind);
    EXPECT_EQ(lost.failovers[i].adopter, again.failovers[i].adopter);
  }
}

TEST(Replication, AdoptionBeforeTheFirstSnapshotReplaysTheFullLog) {
  // Losses with snapshots disabled: the adopter rebuilds the orphaned
  // domain from record zero, like a day-zero replica, and still
  // converges bit-identically.
  const fault::FaultInjector injector(loss_plan(), 5);
  const core::S3Factory s3(&shared_world().network, &shared_model());
  const ReplicatedReplayResult r = run_replicated(s3, injector, 1, 4);
  EXPECT_GT(r.repl.adoptions, 0u);
  EXPECT_EQ(r.repl.snapshot_installs, 0u);
  for (const FailoverEvent& ev : r.failovers) {
    EXPECT_TRUE(ev.converged);
    if (ev.kind == FailoverKind::kAdoption) {
      EXPECT_FALSE(ev.snapshot_install);
    }
  }
  EXPECT_EQ(r.result.stats.dropped_sessions, 0u);
}

TEST(EventLog, SuffixAndKindPredicates) {
  EventLog log;
  log.append(RecordKind::kArrival, 1, util::SimTime(10), 0xa);
  log.append(RecordKind::kFlush, 1, util::SimTime(20), 0xb);
  log.append(RecordKind::kCrash, 1, util::SimTime(30), 0xc);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.suffix(1).size(), 2u);
  EXPECT_EQ(log.suffix(3).size(), 0u);
  EXPECT_THROW(log.suffix(4), std::invalid_argument);
  EXPECT_EQ(log.records()[1].index, 1u);

  EXPECT_TRUE(is_engine_step(RecordKind::kFault));
  EXPECT_TRUE(is_engine_step(RecordKind::kFlush));
  EXPECT_FALSE(is_engine_step(RecordKind::kDroppedArrival));
  EXPECT_TRUE(is_headless_step(RecordKind::kPostponedRetries));
  EXPECT_FALSE(is_headless_step(RecordKind::kPromotion));
  using StepKind = runtime::ControllerEngine::StepKind;
  EXPECT_EQ(to_step_kind(RecordKind::kRetries), StepKind::kRetries);
  EXPECT_EQ(from_step_kind(StepKind::kDeparture), RecordKind::kDeparture);
  EXPECT_FALSE(is_engine_step(RecordKind::kSnapshot));
  EXPECT_FALSE(is_headless_step(RecordKind::kAdoption));
}

TEST(EventLog, TruncationKeepsIndicesGlobal) {
  EventLog log;
  for (int i = 0; i < 6; ++i) {
    log.append(RecordKind::kArrival, 1, util::SimTime(10 * i),
               static_cast<std::uint64_t>(i));
  }
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log.truncate_prefix(4), 4u);
  EXPECT_EQ(log.base(), 4u);
  EXPECT_EQ(log.size(), 6u);  // total ever appended, not retained
  EXPECT_EQ(log.live_size(), 2u);
  EXPECT_EQ(log.records().front().index, 4u);
  EXPECT_EQ(log.record(5).digest, 5u);
  EXPECT_EQ(log.suffix(4).size(), 2u);
  EXPECT_EQ(log.suffix(6).size(), 0u);
  // The truncated prefix is gone for good.
  EXPECT_THROW(log.suffix(3), std::invalid_argument);
  EXPECT_THROW(log.record(3), std::invalid_argument);
  EXPECT_THROW(log.truncate_prefix(7), std::invalid_argument);
  // Re-truncating at or below the base is a no-op.
  EXPECT_EQ(log.truncate_prefix(4), 0u);
  EXPECT_EQ(log.truncate_prefix(2), 0u);
  // New appends keep counting from the global index.
  log.append(RecordKind::kFlush, 2, util::SimTime(100), 0xf);
  EXPECT_EQ(log.records().back().index, 6u);
  EXPECT_EQ(log.size(), 7u);
}

TEST(EventLog, TamperFlipsOneDigest) {
  EventLog log;
  log.append(RecordKind::kArrival, 1, util::SimTime(10), 0xaa);
  log.append(RecordKind::kFlush, 1, util::SimTime(20), 0xbb);
  log.tamper_digest(1);
  EXPECT_EQ(log.record(0).digest, 0xaau);
  EXPECT_NE(log.record(1).digest, 0xbbu);
  EXPECT_THROW(log.tamper_digest(2), std::invalid_argument);
}

}  // namespace
}  // namespace s3::repl
