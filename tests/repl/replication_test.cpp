// s3::repl determinism: a replicated replay is bit-identical across
// thread counts and backup counts, a promoted backup provably converges
// to the crashed primary, failover with >= 1 backup is transparent
// (identical to the same run without controller outages), and a
// headless domain drops exactly the in-window arrivals.

#include <gtest/gtest.h>

#include <stdexcept>

#include "s3/core/evaluation.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/repl/replicated_driver.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::repl {
namespace {

const trace::GeneratedTrace& shared_world() {
  static const trace::GeneratedTrace world = [] {
    trace::GeneratorConfig cfg;
    cfg.seed = 11;
    cfg.num_users = 150;
    cfg.num_days = 3;
    cfg.layout.num_buildings = 3;
    cfg.layout.aps_per_building = 5;
    return trace::generate_campus_trace(cfg);
  }();
  return world;
}

const social::SocialIndexModel& shared_model() {
  static const social::SocialIndexModel model = [] {
    const trace::GeneratedTrace& w = shared_world();
    core::EvaluationConfig eval;
    eval.train_days = 2;
    eval.test_days = 1;
    return core::train_from_workload(w.network, w.workload, eval);
  }();
  return model;
}

/// Controller churn over every domain, stacked on AP churn, a model
/// outage and admission failures — replication has to preserve the
/// whole fault state machine, not just placements.
fault::FaultPlan churn_plan() {
  const trace::GeneratedTrace& w = shared_world();
  const util::SimTime begin(0);
  const util::SimTime end = w.workload.end_time();
  fault::FaultPlan plan;
  // One midday 4-hour crash per domain (one per day) — midday so the
  // windows actually contain arrivals, unlike the canned midnight
  // stagger would on this 3-day world.
  for (ControllerId c = 0; c < w.network.num_controllers(); ++c) {
    const std::int64_t day = static_cast<std::int64_t>(c) * 86400;
    plan.controller_outages.push_back({c, util::SimTime(day + 10 * 3600),
                                       util::SimTime(day + 14 * 3600)});
  }
  const fault::FaultPlan ap =
      fault::canned_ap_churn_plan(w.network, begin, end, 4, 2 * 3600);
  plan.ap_outages = ap.ap_outages;
  const fault::FaultPlan model = fault::canned_model_outage_plan(begin, end);
  plan.model_outages = model.model_outages;
  plan.admission.failure_probability = 0.2;
  plan.admission.begin = util::SimTime(end.seconds() / 4);
  plan.admission.end = util::SimTime(end.seconds() / 2);
  return plan;
}

ReplicatedReplayResult run_replicated(const sim::SelectorFactory& factory,
                                      const fault::FaultInjector& injector,
                                      std::size_t backups, unsigned threads) {
  const trace::GeneratedTrace& w = shared_world();
  ReplicatedDriverConfig rc;
  rc.threads = threads;
  rc.injector = &injector;
  rc.repl.backups = backups;
  return ReplicatedReplayDriver(w.network, rc).run(w.workload, factory);
}

void expect_identical(const sim::ReplayResult& a, const sim::ReplayResult& b) {
  ASSERT_EQ(a.assigned.size(), b.assigned.size());
  for (std::size_t i = 0; i < a.assigned.size(); ++i) {
    ASSERT_EQ(a.assigned.session(i).ap, b.assigned.session(i).ap)
        << "session " << i;
  }
  EXPECT_EQ(a.stats, b.stats);
}

TEST(Replication, ThreadCountInvariant) {
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult one = run_replicated(f, injector, 1, 1);
  const ReplicatedReplayResult eight = run_replicated(f, injector, 1, 8);
  expect_identical(one.result, eight.result);
  EXPECT_EQ(one.repl.failovers, eight.repl.failovers);
  EXPECT_EQ(one.repl.log_records, eight.repl.log_records);
  EXPECT_EQ(one.repl.final_term, eight.repl.final_term);
  ASSERT_EQ(one.failovers.size(), eight.failovers.size());
  for (std::size_t i = 0; i < one.failovers.size(); ++i) {
    EXPECT_EQ(one.failovers[i].when, eight.failovers[i].when);
    EXPECT_EQ(one.failovers[i].promoted_replica,
              eight.failovers[i].promoted_replica);
    EXPECT_EQ(one.failovers[i].new_term, eight.failovers[i].new_term);
  }
}

TEST(Replication, BackupCountInvariant) {
  // One backup or two — the promoted state is the same, so the whole
  // replay is. Only the replica count in the ledger may differ.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult one = run_replicated(f, injector, 1, 4);
  const ReplicatedReplayResult two = run_replicated(f, injector, 2, 4);
  expect_identical(one.result, two.result);
  EXPECT_EQ(one.repl.failovers, two.repl.failovers);
  EXPECT_EQ(two.repl.replicas, 3u);
}

TEST(Replication, PromotionsConvergeAndPreserveTheSocialModel) {
  // S3 with a live model outage in the plan: the promoted backup must
  // carry the degradation machine and the policy's internal state —
  // every FailoverEvent records the convergence check it passed.
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::S3Factory s3(&shared_world().network, &shared_model());
  const ReplicatedReplayResult r = run_replicated(s3, injector, 1, 4);
  EXPECT_GT(r.repl.failovers, 0u);
  EXPECT_EQ(r.repl.failovers, r.repl.rejoins);
  for (const FailoverEvent& ev : r.failovers) {
    EXPECT_TRUE(ev.converged) << "domain " << ev.domain;
    EXPECT_FALSE(ev.headless);
    EXPECT_GE(ev.new_term, 2u);
  }
  EXPECT_EQ(r.result.stats.dropped_sessions, 0u);
}

TEST(Replication, FailoverWithBackupsIsTransparent) {
  // The same plan with the controller outages stripped, run through the
  // plain driver, must match the replicated run byte for byte: a crash
  // with a backup costs nothing.
  const trace::GeneratedTrace& w = shared_world();
  fault::FaultPlan plan = churn_plan();
  const fault::FaultInjector replicated_injector(plan, 5);
  plan.controller_outages.clear();
  const fault::FaultInjector plain_injector(plan, 5);

  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult replicated =
      run_replicated(f, replicated_injector, 1, 4);
  runtime::ReplayDriverConfig rc;
  rc.threads = 4;
  rc.injector = &plain_injector;
  const sim::ReplayResult plain =
      runtime::ReplayDriver(w.network, rc).run(w.workload, f);
  expect_identical(replicated.result, plain);
}

TEST(Replication, HeadlessDomainsDropInWindowArrivals) {
  const fault::FaultInjector injector(churn_plan(), 5);
  const core::LlfFactory f(core::LoadMetric::kStations);
  const ReplicatedReplayResult r = run_replicated(f, injector, 0, 4);
  EXPECT_EQ(r.repl.failovers, 0u);
  EXPECT_GT(r.repl.headless_windows, 0u);
  EXPECT_GT(r.result.stats.dropped_sessions, 0u);
  for (const FailoverEvent& ev : r.failovers) EXPECT_TRUE(ev.headless);
  // Headless runs stay deterministic too.
  const ReplicatedReplayResult again = run_replicated(f, injector, 0, 1);
  expect_identical(r.result, again.result);
}

TEST(Replication, PlainDriverRejectsControllerOutagePlans) {
  const trace::GeneratedTrace& w = shared_world();
  const fault::FaultInjector injector(churn_plan(), 5);
  runtime::ReplayDriverConfig rc;
  rc.injector = &injector;
  const core::LlfFactory f(core::LoadMetric::kStations);
  EXPECT_THROW(runtime::ReplayDriver(w.network, rc).run(w.workload, f),
               std::invalid_argument);
}

TEST(EventLog, SuffixAndKindPredicates) {
  EventLog log;
  log.append(RecordKind::kArrival, 1, util::SimTime(10), 0xa);
  log.append(RecordKind::kFlush, 1, util::SimTime(20), 0xb);
  log.append(RecordKind::kCrash, 1, util::SimTime(30), 0xc);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.suffix(1).size(), 2u);
  EXPECT_EQ(log.suffix(3).size(), 0u);
  EXPECT_THROW(log.suffix(4), std::invalid_argument);
  EXPECT_EQ(log.records()[1].index, 1u);

  EXPECT_TRUE(is_engine_step(RecordKind::kFault));
  EXPECT_TRUE(is_engine_step(RecordKind::kFlush));
  EXPECT_FALSE(is_engine_step(RecordKind::kDroppedArrival));
  EXPECT_TRUE(is_headless_step(RecordKind::kPostponedRetries));
  EXPECT_FALSE(is_headless_step(RecordKind::kPromotion));
  using StepKind = runtime::ControllerEngine::StepKind;
  EXPECT_EQ(to_step_kind(RecordKind::kRetries), StepKind::kRetries);
  EXPECT_EQ(from_step_kind(StepKind::kDeparture), RecordKind::kDeparture);
}

}  // namespace
}  // namespace s3::repl
