#include "s3/cluster/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "s3/util/rng.h"

namespace s3::cluster {
namespace {

TEST(SymmetricEigen, DiagonalMatrix) {
  const std::vector<double> m = {3.0, 0.0, 0.0,
                                 0.0, 1.0, 0.0,
                                 0.0, 0.0, 2.0};
  const EigenResult r = symmetric_eigen(m, 3);
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[2], 1.0, 1e-10);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2,
  // (1,-1)/sqrt2.
  const std::vector<double> m = {2.0, 1.0, 1.0, 2.0};
  const EigenResult r = symmetric_eigen(m, 2);
  EXPECT_NEAR(r.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(r.eigenvectors[0]), std::abs(r.eigenvectors[1]),
              1e-10);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  util::Rng rng(3);
  const std::size_t d = 5;
  std::vector<double> m(d * d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      m[i * d + j] = m[j * d + i] = rng.normal(0.0, 1.0);
    }
  }
  const EigenResult r = symmetric_eigen(m, d);
  // A = sum_k lambda_k v_k v_k^T
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        s += r.eigenvalues[k] * r.eigenvectors[k * d + i] *
             r.eigenvectors[k * d + j];
      }
      EXPECT_NEAR(s, m[i * d + j], 1e-8);
    }
  }
}

TEST(SymmetricEigen, VectorsOrthonormal) {
  util::Rng rng(4);
  const std::size_t d = 6;
  std::vector<double> m(d * d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      m[i * d + j] = m[j * d + i] = rng.uniform(-1.0, 1.0);
    }
  }
  const EigenResult r = symmetric_eigen(m, d);
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < d; ++b) {
      double dot = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        dot += r.eigenvectors[a * d + k] * r.eigenvectors[b * d + k];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(SymmetricEigen, Validation) {
  EXPECT_THROW(symmetric_eigen({1.0, 2.0, 3.0}, 2), std::invalid_argument);
}

TEST(Pca, RecoversDominantDirection) {
  // Points spread along (1,1)/sqrt2 with tiny orthogonal noise.
  util::Rng rng(5);
  const std::size_t n = 500;
  std::vector<double> data;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.normal(0.0, 3.0);
    const double o = rng.normal(0.0, 0.1);
    data.push_back(t + o + 10.0);
    data.push_back(t - o - 4.0);
  }
  const PcaBasis basis = pca(data, n, 2);
  EXPECT_NEAR(basis.mean[0], 10.0, 0.5);
  EXPECT_NEAR(basis.mean[1], -4.0, 0.5);
  EXPECT_GT(basis.variances[0], 50.0 * basis.variances[1]);
  EXPECT_NEAR(std::abs(basis.components[0]), std::abs(basis.components[1]),
              0.05);
}

TEST(Pca, RoundTripFrames) {
  util::Rng rng(6);
  const std::size_t n = 60, d = 4;
  std::vector<double> data(n * d);
  for (double& v : data) v = rng.normal(1.0, 2.0);
  const PcaBasis basis = pca(data, n, d);
  std::vector<double> y(d), back(d);
  for (std::size_t i = 0; i < n; i += 7) {
    to_pca_frame(basis, data.data() + i * d, y.data());
    from_pca_frame(basis, y.data(), back.data());
    for (std::size_t k = 0; k < d; ++k) {
      EXPECT_NEAR(back[k], data[i * d + k], 1e-9);
    }
  }
}

TEST(Pca, DegenerateDimensionGetsZeroVariance) {
  // Data on the x-axis only.
  util::Rng rng(7);
  const std::size_t n = 100;
  std::vector<double> data;
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back(rng.normal(0.0, 2.0));
    data.push_back(5.0);  // constant second coordinate
  }
  const PcaBasis basis = pca(data, n, 2);
  EXPECT_NEAR(basis.variances[1], 0.0, 1e-9);
}

TEST(Pca, Validation) {
  EXPECT_THROW(pca({1.0, 2.0}, 1, 2), std::invalid_argument);  // n < 2
  EXPECT_THROW(pca({1.0, 2.0, 3.0}, 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace s3::cluster
