#include "s3/cluster/gap_statistic.h"

#include <gtest/gtest.h>

#include "s3/util/rng.h"

namespace s3::cluster {
namespace {

Dataset blobs(std::size_t k, std::size_t per_cluster, double spread,
              double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  d.dim = 2;
  d.num_points = k * per_cluster;
  for (std::size_t c = 0; c < k; ++c) {
    const double cx = spread * static_cast<double>(c % 3);
    const double cy = spread * static_cast<double>(c / 3);
    for (std::size_t i = 0; i < per_cluster; ++i) {
      d.values.push_back(cx + rng.normal(0.0, noise));
      d.values.push_back(cy + rng.normal(0.0, noise));
    }
  }
  return d;
}

TEST(GapStatistic, FindsFourClusters) {
  const Dataset d = blobs(4, 50, 10.0, 0.4, 1);
  GapStatisticConfig cfg;
  cfg.max_k = 8;
  cfg.num_references = 8;
  const GapStatisticResult r = gap_statistic(d, cfg);
  EXPECT_EQ(r.optimal_k, 4u);
}

TEST(GapStatistic, FindsTwoClusters) {
  const Dataset d = blobs(2, 80, 12.0, 0.5, 2);
  GapStatisticConfig cfg;
  cfg.max_k = 6;
  const GapStatisticResult r = gap_statistic(d, cfg);
  EXPECT_EQ(r.optimal_k, 2u);
}

TEST(GapStatistic, UniformDataPrefersOneCluster) {
  util::Rng rng(3);
  Dataset d;
  d.dim = 2;
  d.num_points = 200;
  for (std::size_t i = 0; i < 400; ++i) {
    d.values.push_back(rng.uniform(0.0, 1.0));
  }
  GapStatisticConfig cfg;
  cfg.max_k = 6;
  const GapStatisticResult r = gap_statistic(d, cfg);
  EXPECT_LE(r.optimal_k, 2u);  // no real structure
}

TEST(GapStatistic, OutputShapes) {
  const Dataset d = blobs(3, 30, 8.0, 0.5, 4);
  GapStatisticConfig cfg;
  cfg.max_k = 5;
  const GapStatisticResult r = gap_statistic(d, cfg);
  EXPECT_EQ(r.gap.size(), 5u);
  EXPECT_EQ(r.s.size(), 5u);
  EXPECT_EQ(r.log_w.size(), 5u);
  for (double s : r.s) EXPECT_GE(s, 0.0);
  // log W_k decreases in k on the observed data.
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_LE(r.log_w[k], r.log_w[k - 1] + 0.05);
  }
}

TEST(GapStatistic, DeterministicInSeed) {
  const Dataset d = blobs(3, 30, 8.0, 0.5, 5);
  GapStatisticConfig cfg;
  cfg.max_k = 5;
  cfg.seed = 99;
  const GapStatisticResult a = gap_statistic(d, cfg);
  const GapStatisticResult b = gap_statistic(d, cfg);
  EXPECT_EQ(a.optimal_k, b.optimal_k);
  EXPECT_EQ(a.gap, b.gap);
}

TEST(GapStatistic, UniformBoxReferenceAlsoWorksOnRoundBlobs) {
  // On isotropic well-separated blobs both reference methods agree;
  // they only diverge on degenerate/correlated data (see pca.h).
  const Dataset d = blobs(4, 50, 10.0, 0.4, 1);  // FindsFourClusters data
  GapStatisticConfig cfg;
  cfg.max_k = 8;
  cfg.num_references = 8;
  cfg.reference = GapReference::kUniformBox;
  EXPECT_EQ(gap_statistic(d, cfg).optimal_k, 4u);
  cfg.reference = GapReference::kPcaAlignedBox;
  EXPECT_EQ(gap_statistic(d, cfg).optimal_k, 4u);
}

TEST(GapStatistic, PcaReferenceHandlesDegenerateSimplexData) {
  // Points on a 1-d segment embedded in 2-d (simplex-like degeneracy):
  // two clusters on the segment. The PCA-aligned reference samples on
  // the segment's box and finds them.
  util::Rng rng(10);
  Dataset d;
  d.dim = 2;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 80; ++i) {
      const double t = 10.0 * c + rng.normal(0.0, 0.4);
      d.values.push_back(t);
      d.values.push_back(1.0 - t);  // x + y = 1: degenerate direction
      ++d.num_points;
    }
  }
  GapStatisticConfig cfg;
  cfg.max_k = 5;
  cfg.reference = GapReference::kPcaAlignedBox;
  EXPECT_EQ(gap_statistic(d, cfg).optimal_k, 2u);
}

TEST(GapStatistic, Validation) {
  const Dataset d = blobs(2, 5, 5.0, 0.3, 6);
  GapStatisticConfig cfg;
  cfg.max_k = 1;
  EXPECT_THROW(gap_statistic(d, cfg), std::invalid_argument);
  cfg = GapStatisticConfig{};
  cfg.num_references = 1;
  EXPECT_THROW(gap_statistic(d, cfg), std::invalid_argument);
  cfg = GapStatisticConfig{};
  cfg.max_k = 100;  // more than points
  EXPECT_THROW(gap_statistic(d, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace s3::cluster
