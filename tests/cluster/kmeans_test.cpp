#include "s3/cluster/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "s3/util/rng.h"

namespace s3::cluster {
namespace {

/// Builds `per_cluster` points around each of the given centers.
Dataset blobs(const std::vector<std::vector<double>>& centers,
              std::size_t per_cluster, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset d;
  d.dim = centers.front().size();
  d.num_points = centers.size() * per_cluster;
  d.values.reserve(d.num_points * d.dim);
  for (const auto& c : centers) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      for (double x : c) d.values.push_back(x + rng.normal(0.0, noise));
    }
  }
  return d;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const Dataset d = blobs({{0, 0}, {10, 0}, {0, 10}}, 40, 0.3, 1);
  KMeansConfig cfg;
  cfg.k = 3;
  const KMeansResult r = kmeans(d, cfg);
  EXPECT_EQ(r.k, 3u);
  // Every blob is internally pure: all 40 points share one label.
  for (std::size_t b = 0; b < 3; ++b) {
    std::set<std::size_t> labels;
    for (std::size_t i = 0; i < 40; ++i) labels.insert(r.assignment[b * 40 + i]);
    EXPECT_EQ(labels.size(), 1u);
  }
  // Labels differ across blobs.
  std::set<std::size_t> blob_labels = {r.assignment[0], r.assignment[40],
                                       r.assignment[80]};
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeans, CentroidsNearTrueCenters) {
  const Dataset d = blobs({{0, 0}, {8, 8}}, 100, 0.2, 2);
  KMeansConfig cfg;
  cfg.k = 2;
  const KMeansResult r = kmeans(d, cfg);
  // Each true center is close to some centroid.
  for (const std::vector<double>& truth : {std::vector<double>{0, 0},
                                          std::vector<double>{8, 8}}) {
    double best = 1e18;
    for (std::size_t c = 0; c < 2; ++c) {
      best = std::min(best, squared_distance(r.centroid(c), truth));
    }
    EXPECT_LT(best, 0.05);
  }
}

TEST(KMeans, AssignmentIsNearestCentroid) {
  const Dataset d = blobs({{0, 0}, {5, 5}, {0, 9}}, 30, 0.8, 3);
  KMeansConfig cfg;
  cfg.k = 3;
  const KMeansResult r = kmeans(d, cfg);
  for (std::size_t i = 0; i < d.num_points; ++i) {
    const double own =
        squared_distance(d.point(i), r.centroid(r.assignment[i]));
    for (std::size_t c = 0; c < r.k; ++c) {
      EXPECT_LE(own, squared_distance(d.point(i), r.centroid(c)) + 1e-9);
    }
  }
}

TEST(KMeans, InertiaEqualsSumOfSquares) {
  const Dataset d = blobs({{0, 0}}, 50, 1.0, 4);
  KMeansConfig cfg;
  cfg.k = 2;
  const KMeansResult r = kmeans(d, cfg);
  double manual = 0.0;
  for (std::size_t i = 0; i < d.num_points; ++i) {
    manual += squared_distance(d.point(i), r.centroid(r.assignment[i]));
  }
  EXPECT_NEAR(r.inertia, manual, 1e-9);
}

TEST(KMeans, DeterministicInSeed) {
  const Dataset d = blobs({{0, 0}, {6, 1}}, 60, 1.0, 5);
  KMeansConfig cfg;
  cfg.k = 2;
  cfg.seed = 77;
  const KMeansResult a = kmeans(d, cfg);
  const KMeansResult b = kmeans(d, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeans, KEqualsOneGivesMean) {
  const Dataset d = blobs({{2, 4}}, 100, 0.5, 6);
  KMeansConfig cfg;
  cfg.k = 1;
  const KMeansResult r = kmeans(d, cfg);
  EXPECT_NEAR(r.centroid(0)[0], 2.0, 0.2);
  EXPECT_NEAR(r.centroid(0)[1], 4.0, 0.2);
}

TEST(KMeans, KEqualsNPutsEachPointAlone) {
  Dataset d;
  d.dim = 1;
  d.num_points = 4;
  d.values = {0.0, 1.0, 2.0, 3.0};
  KMeansConfig cfg;
  cfg.k = 4;
  const KMeansResult r = kmeans(d, cfg);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
  std::set<std::size_t> labels(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(KMeans, AllIdenticalPoints) {
  Dataset d;
  d.dim = 2;
  d.num_points = 10;
  d.values.assign(20, 3.0);
  KMeansConfig cfg;
  cfg.k = 3;
  const KMeansResult r = kmeans(d, cfg);  // must not hang or crash
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeans, Validation) {
  Dataset d;
  d.dim = 2;
  d.num_points = 3;
  d.values.assign(6, 0.0);
  KMeansConfig cfg;
  cfg.k = 5;  // more clusters than points
  EXPECT_THROW(kmeans(d, cfg), std::invalid_argument);
  cfg.k = 0;
  EXPECT_THROW(kmeans(d, cfg), std::invalid_argument);
  Dataset bad;
  bad.dim = 2;
  bad.num_points = 3;
  bad.values.assign(5, 0.0);  // wrong size
  KMeansConfig ok;
  EXPECT_THROW(kmeans(bad, ok), std::invalid_argument);
}

TEST(Dataset, PointAccessValidation) {
  Dataset d;
  d.dim = 2;
  d.num_points = 2;
  d.values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(d.point(1)[0], 3.0);
  EXPECT_THROW(d.point(2), std::invalid_argument);
}

// Property: inertia is non-increasing in k (with enough restarts).
class KMeansInertiaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KMeansInertiaTest, InertiaNonIncreasingInK) {
  const Dataset d = blobs({{0, 0}, {4, 4}, {8, 0}}, 30, 1.2, GetParam());
  double prev = 1e18;
  for (std::size_t k = 1; k <= 6; ++k) {
    KMeansConfig cfg;
    cfg.k = k;
    cfg.restarts = 6;
    cfg.seed = GetParam();
    const double inertia = kmeans(d, cfg).inertia;
    EXPECT_LE(inertia, prev * 1.02 + 1e-9);  // small slack for local optima
    prev = inertia;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansInertiaTest,
                         ::testing::Values(1ULL, 7ULL, 13ULL));

}  // namespace
}  // namespace s3::cluster
