#include "s3/analysis/events.h"

#include <gtest/gtest.h>

#include "testing/mini.h"

namespace s3::analysis {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;

EventExtractionConfig windows(std::int64_t co_leave_s = 300,
                              std::int64_t encounter_s = 600) {
  EventExtractionConfig cfg;
  cfg.co_leave_window = util::SimTime(co_leave_s);
  cfg.min_encounter_overlap = util::SimTime(encounter_s);
  cfg.co_coming_window = util::SimTime(co_leave_s);
  return cfg;
}

TEST(ExtractPairStats, RequiresAssignedTrace) {
  const auto t = make_trace(2, {SessionSpec{}});
  EXPECT_THROW(extract_pair_stats(t, windows()), std::invalid_argument);
}

TEST(ExtractPairStats, EncounterNeedsMinOverlap) {
  // Overlap 400 s < 600 s threshold: no encounter.
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 1000, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 600, .disconnect_s = 2000, .ap = 0},
  });
  const auto stats = extract_pair_stats(t, windows());
  EXPECT_TRUE(stats.empty() ||
              stats.at(UserPair(0, 1)).encounters == 0);
}

TEST(ExtractPairStats, EncounterAndCoLeave) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 100, .disconnect_s = 3700, .ap = 0},
  });
  const auto stats = extract_pair_stats(t, windows());
  const PairEventStats& ps = stats.at(UserPair(0, 1));
  EXPECT_EQ(ps.encounters, 1u);
  EXPECT_EQ(ps.co_leaves, 1u);  // left 100 s apart <= 300 s
  EXPECT_EQ(ps.co_comings, 1u);
  EXPECT_DOUBLE_EQ(ps.co_leave_probability(), 1.0);
}

TEST(ExtractPairStats, EncounterWithoutCoLeave) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 7200, .ap = 0},
  });
  const auto stats = extract_pair_stats(t, windows());
  const PairEventStats& ps = stats.at(UserPair(0, 1));
  EXPECT_EQ(ps.encounters, 1u);
  EXPECT_EQ(ps.co_leaves, 0u);  // left 3600 s apart
  EXPECT_DOUBLE_EQ(ps.co_leave_probability(), 0.0);
}

TEST(ExtractPairStats, DifferentApNoEvent) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 3650, .ap = 1},
  });
  const auto stats = extract_pair_stats(t, windows());
  EXPECT_TRUE(stats.empty());
}

TEST(ExtractPairStats, SameUserIgnored) {
  const auto t = make_trace(1, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 0, .connect_s = 100, .disconnect_s = 3700, .ap = 0},
  });
  EXPECT_TRUE(extract_pair_stats(t, windows()).empty());
}

TEST(ExtractPairStats, MultipleMeetingsAccumulate) {
  std::vector<SessionSpec> specs;
  for (int day = 0; day < 3; ++day) {
    const std::int64_t base = day * 86400;
    specs.push_back(SessionSpec{.user = 0, .connect_s = base,
                                .disconnect_s = base + 3600, .ap = 0});
    specs.push_back(SessionSpec{.user = 1, .connect_s = base + 50,
                                .disconnect_s = base + 3600 + (day == 2 ? 4000 : 60),
                                .ap = 0});
  }
  const auto stats = extract_pair_stats(make_trace(2, specs, 3), windows());
  const PairEventStats& ps = stats.at(UserPair(0, 1));
  EXPECT_EQ(ps.encounters, 3u);
  EXPECT_EQ(ps.co_leaves, 2u);  // third meeting: user 1 stayed on
  EXPECT_NEAR(ps.co_leave_probability(), 2.0 / 3.0, 1e-12);
}

TEST(ExtractPairStats, WindowWidthChangesCoLeaves) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 4000, .ap = 0},
  });
  // Left 400 s apart: co-leave under a 600 s window, not under 300 s.
  EXPECT_EQ(extract_pair_stats(t, windows(600)).at(UserPair(0, 1)).co_leaves,
            1u);
  EXPECT_EQ(extract_pair_stats(t, windows(300)).at(UserPair(0, 1)).co_leaves,
            0u);
}

TEST(ExtractPairStats, RejectsBadWindows) {
  const auto t = make_trace(1, {SessionSpec{.ap = 0}});
  EventExtractionConfig bad;
  bad.co_leave_window = util::SimTime(0);
  EXPECT_THROW(extract_pair_stats(t, bad), std::invalid_argument);
}

TEST(PerUserLeaveStats, CountsCoLeavings) {
  const auto t = make_trace(3, {
      // Users 0 and 1 leave AP 0 together; user 2 leaves AP 0 much later.
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 3700, .ap = 0},
      SessionSpec{.user = 2, .connect_s = 0, .disconnect_s = 9000, .ap = 0},
  });
  const auto stats = per_user_leave_stats(t, util::SimTime(300));
  EXPECT_EQ(stats[0].leavings, 1u);
  EXPECT_EQ(stats[0].co_leavings, 1u);
  EXPECT_EQ(stats[1].co_leavings, 1u);
  EXPECT_EQ(stats[2].leavings, 1u);
  EXPECT_EQ(stats[2].co_leavings, 0u);
  EXPECT_DOUBLE_EQ(stats[0].co_leave_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(stats[2].co_leave_fraction(), 0.0);
}

TEST(PerUserLeaveStats, DifferentApsDoNotCoLeave) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 3600, .ap = 1},
  });
  const auto stats = per_user_leave_stats(t, util::SimTime(300));
  EXPECT_EQ(stats[0].co_leavings, 0u);
  EXPECT_EQ(stats[1].co_leavings, 0u);
}

TEST(PerUserLeaveStats, OwnSessionsDoNotCount) {
  const auto t = make_trace(1, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 0, .connect_s = 100, .disconnect_s = 3650, .ap = 0},
  });
  const auto stats = per_user_leave_stats(t, util::SimTime(300));
  EXPECT_EQ(stats[0].leavings, 2u);
  EXPECT_EQ(stats[0].co_leavings, 0u);
}

TEST(PerUserLeaveStats, ZeroLeavingsFractionIsZero) {
  const UserLeaveStats empty;
  EXPECT_DOUBLE_EQ(empty.co_leave_fraction(), 0.0);
}

TEST(PerUserArrivalStats, CountsCoComings) {
  const auto t = make_trace(3, {
      // Users 0 and 1 arrive at AP 0 within a minute; user 2 arrives
      // much later.
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 60, .disconnect_s = 5000, .ap = 0},
      SessionSpec{.user = 2, .connect_s = 7200, .disconnect_s = 9000, .ap = 0},
  });
  const auto stats = per_user_arrival_stats(t, util::SimTime(300));
  EXPECT_EQ(stats[0].arrivals, 1u);
  EXPECT_EQ(stats[0].co_comings, 1u);
  EXPECT_EQ(stats[1].co_comings, 1u);
  EXPECT_EQ(stats[2].co_comings, 0u);
  EXPECT_DOUBLE_EQ(stats[0].co_coming_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(stats[2].co_coming_fraction(), 0.0);
}

TEST(PerUserArrivalStats, DifferentApNoCoComing) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 10, .disconnect_s = 3600, .ap = 1},
  });
  const auto stats = per_user_arrival_stats(t, util::SimTime(300));
  EXPECT_EQ(stats[0].co_comings, 0u);
  EXPECT_EQ(stats[1].co_comings, 0u);
}

TEST(PerUserArrivalStats, OwnSessionsDoNotCount) {
  const auto t = make_trace(1, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 3600, .ap = 0},
      SessionSpec{.user = 0, .connect_s = 30, .disconnect_s = 3700, .ap = 0},
  });
  const auto stats = per_user_arrival_stats(t, util::SimTime(300));
  EXPECT_EQ(stats[0].arrivals, 2u);
  EXPECT_EQ(stats[0].co_comings, 0u);
}

}  // namespace
}  // namespace s3::analysis
