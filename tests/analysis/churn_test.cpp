#include "s3/analysis/churn.h"

#include <gtest/gtest.h>

#include "s3/core/baselines.h"
#include "s3/sim/replay.h"
#include "s3/util/stats.h"
#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::analysis {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

TEST(AppDynamicsVariation, ValidatesConfig) {
  const auto net = mini_network(2);
  const auto t = make_trace(1, {SessionSpec{.ap = 0}});
  AppDynamicsConfig cfg;
  cfg.begin = util::SimTime(0);
  cfg.end = util::SimTime(3600);
  cfg.sub_period_s = 700;  // does not divide 3600
  EXPECT_THROW(app_dynamics_variation(net, t, cfg), std::invalid_argument);
  cfg = AppDynamicsConfig{};
  cfg.begin = util::SimTime(3600);
  cfg.end = util::SimTime(0);
  EXPECT_THROW(app_dynamics_variation(net, t, cfg), std::invalid_argument);
}

TEST(AppDynamicsVariation, RequiresAssignedTrace) {
  const auto net = mini_network(2);
  const auto t = make_trace(1, {SessionSpec{}});
  AppDynamicsConfig cfg;
  cfg.begin = util::SimTime(0);
  cfg.end = util::SimTime(3600);
  EXPECT_THROW(app_dynamics_variation(net, t, cfg), std::invalid_argument);
}

TEST(AppDynamicsVariation, SkipsChurningSessions) {
  const auto net = mini_network(2);
  // One session covers the whole hour, one joins mid-hour: only the
  // first contributes, so the per-sub-period balance comes from a
  // single (modulated) session and is 0-normalized but defined.
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 7200, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 1800, .disconnect_s = 3000, .ap = 1},
  });
  AppDynamicsConfig cfg;
  cfg.begin = util::SimTime(0);
  cfg.end = util::SimTime(3600);
  cfg.period_s = 3600;
  cfg.sub_period_s = 600;
  const auto samples = app_dynamics_variation(net, t, cfg);
  EXPECT_EQ(samples.size(), 5u);  // 6 sub-periods -> 5 steps
}

TEST(AppDynamicsVariation, FixedUsersSmallVariation) {
  // The Fig. 3 claim: with churn removed, the balance index barely
  // moves (most |S| below a few percent).
  trace::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.num_users = 300;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  core::LlfSelector llf;
  const sim::ReplayResult r = sim::replay(g.network, g.workload, llf);

  AppDynamicsConfig ac;
  ac.begin = util::SimTime::from_days(1) + util::SimTime::from_hours(8);
  ac.end = util::SimTime::from_days(1) + util::SimTime::from_hours(20);
  ac.sub_period_s = 600;
  const auto samples = app_dynamics_variation(g.network, r.assigned, ac);
  ASSERT_GT(samples.size(), 20u);
  // Median |S| should be small (paper: >80 % below 0.02 at 10 min).
  EXPECT_LT(util::quantile(samples, 0.5), 0.1);
}

TEST(UserChurnTimeline, ShapesAndRange) {
  const auto net = mini_network(3);
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 1800, .ap = 0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 3600, .ap = 1},
  });
  const UserChurnTimeline tl =
      user_churn_timeline(net, t, 0, util::SimTime(0), util::SimTime(3600),
                          600);
  EXPECT_EQ(tl.traffic_balance.size(), 6u);
  EXPECT_EQ(tl.user_balance.size(), 6u);
  EXPECT_EQ(tl.slot_s, 600);
  for (double b : tl.traffic_balance) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

TEST(UserChurnTimeline, TrafficTracksUsersOnGeneratedTrace) {
  // Fig. 4's observation: the user-count balance and the traffic
  // balance move together. Correlation over a busy day should be
  // clearly positive.
  trace::GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.num_users = 400;
  cfg.num_days = 2;
  cfg.layout.num_buildings = 1;
  cfg.layout.aps_per_building = 8;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  core::LlfSelector llf;
  const sim::ReplayResult r = sim::replay(g.network, g.workload, llf);
  const UserChurnTimeline tl = user_churn_timeline(
      g.network, r.assigned, 0,
      util::SimTime::from_days(1) + util::SimTime::from_hours(8),
      util::SimTime::from_days(2), 600);
  // Positive co-movement; the full-scale bench (bench_fig4) shows ~0.5.
  const double corr = util::pearson(tl.user_balance, tl.traffic_balance);
  EXPECT_GT(corr, 0.15);
}

TEST(UserChurnTimeline, RejectsBadController) {
  const auto net = mini_network(2);
  const auto t = make_trace(1, {SessionSpec{.ap = 0}});
  EXPECT_THROW(user_churn_timeline(net, t, 5, util::SimTime(0),
                                   util::SimTime(600)),
               std::invalid_argument);
}

}  // namespace
}  // namespace s3::analysis
