#include "s3/analysis/profiles.h"

#include <gtest/gtest.h>

#include "s3/trace/generator.h"
#include "testing/mini.h"

namespace s3::analysis {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;

TEST(BuildProfiles, BooksSessionsOnConnectDay) {
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 100, .disconnect_s = 700,
                  .web_bytes = 50.0},
      SessionSpec{.user = 0, .connect_s = 86400 + 100,
                  .disconnect_s = 86400 + 900, .web_bytes = 30.0},
      SessionSpec{.user = 1, .connect_s = 200, .disconnect_s = 800,
                  .web_bytes = 10.0},
  }, 2);
  const apps::ProfileStore store = build_profiles(t);
  const std::size_t web = static_cast<std::size_t>(apps::AppCategory::kWeb);
  EXPECT_DOUBLE_EQ(store.user(0).day(0)[web], 50.0);
  EXPECT_DOUBLE_EQ(store.user(0).day(1)[web], 30.0);
  EXPECT_DOUBLE_EQ(store.user(1).day(0)[web], 10.0);
  EXPECT_DOUBLE_EQ(apps::total(store.user(1).day(1)), 0.0);
}

TEST(BuildProfiles, WorksOnUnassignedWorkload) {
  const auto t = make_trace(1, {SessionSpec{.web_bytes = 5.0}});
  const apps::ProfileStore store = build_profiles(t);
  EXPECT_DOUBLE_EQ(apps::total(store.user(0).lifetime()), 5.0);
}

TEST(NmiVsHistory, ValidatesConfig) {
  const apps::ProfileStore store(1, 10);
  NmiCurveConfig bad;
  bad.day_x = 0;
  EXPECT_THROW(nmi_vs_history(store, bad), std::invalid_argument);
  bad = NmiCurveConfig{};
  bad.max_history_days = 0;
  EXPECT_THROW(nmi_vs_history(store, bad), std::invalid_argument);
}

TEST(NmiVsHistory, SkipsInactiveUsers) {
  apps::ProfileStore store(3, 10);
  // Only user 1 has traffic on day 5 and history before it.
  store.user(1).add(5, apps::AppCategory::kWeb, 100.0);
  store.user(1).add(4, apps::AppCategory::kWeb, 80.0);
  NmiCurveConfig cfg;
  cfg.day_x = 5;
  cfg.max_history_days = 3;
  const NmiCurve curve = nmi_vs_history(store, cfg);
  EXPECT_EQ(curve.users_considered, 1u);
  EXPECT_EQ(curve.mean_nmi.size(), 3u);
}

TEST(NmiVsHistory, RisesAndPlateausOnGeneratedTrace) {
  // The paper's Fig. 6 shape: NMI grows with history length and
  // saturates; with the generator's noisy daily mixes the curve at
  // n=15 should clearly beat n=1 and roughly match n=20.
  trace::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_users = 300;
  cfg.num_days = 22;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 6;
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  const apps::ProfileStore store = build_profiles(g.workload);

  NmiCurveConfig nc;
  nc.day_x = 21;
  nc.max_history_days = 20;
  const NmiCurve curve = nmi_vs_history(store, nc);
  ASSERT_EQ(curve.mean_nmi.size(), 20u);
  EXPECT_GT(curve.users_considered, 50u);
  EXPECT_GT(curve.mean_nmi[14], curve.mean_nmi[0]);  // rises
  EXPECT_NEAR(curve.mean_nmi[19], curve.mean_nmi[14],
              0.1 * curve.mean_nmi[14] + 0.02);  // plateau
}

TEST(NmiVsHistory, PerfectHistoryScoresHigherThanNoise) {
  apps::ProfileStore store(2, 12);
  // User 0: identical profile every day -> history == today.
  for (std::int64_t d = 0; d < 12; ++d) {
    store.user(0).add(d, apps::AppCategory::kWeb, 60.0);
    store.user(0).add(d, apps::AppCategory::kIm, 25.0);
    store.user(0).add(d, apps::AppCategory::kVideo, 15.0);
  }
  // User 1: completely different realm each day.
  for (std::int64_t d = 0; d < 12; ++d) {
    store.user(1).add(d, static_cast<apps::AppCategory>(d % 6), 100.0);
  }
  NmiCurveConfig cfg;
  cfg.day_x = 11;
  cfg.max_history_days = 5;

  apps::ProfileStore stable(1, 12);
  for (std::int64_t d = 0; d < 12; ++d) {
    stable.user(0).add(d, apps::AppCategory::kWeb, 60.0);
    stable.user(0).add(d, apps::AppCategory::kIm, 25.0);
    stable.user(0).add(d, apps::AppCategory::kVideo, 15.0);
  }
  const NmiCurve s = nmi_vs_history(stable, cfg);

  apps::ProfileStore churny(1, 12);
  for (std::int64_t d = 0; d < 12; ++d) {
    churny.user(0).add(d, static_cast<apps::AppCategory>(d % 6), 100.0);
  }
  const NmiCurve c = nmi_vs_history(churny, cfg);
  EXPECT_GT(s.mean_nmi[4], c.mean_nmi[4]);
}

}  // namespace
}  // namespace s3::analysis
