#include "s3/analysis/balance.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "s3/util/rng.h"
#include "testing/mini.h"

namespace s3::analysis {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

TEST(BalanceIndex, PerfectBalanceIsOne) {
  const std::vector<double> t = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(balance_index(t), 1.0);
  EXPECT_DOUBLE_EQ(normalized_balance_index(t), 1.0);
}

TEST(BalanceIndex, SingleActiveApIsFloor) {
  const std::vector<double> t = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(balance_index(t), 0.25);  // 1/n
  EXPECT_DOUBLE_EQ(normalized_balance_index(t), 0.0);
}

TEST(BalanceIndex, KnownIntermediateValue) {
  // (1+3)^2 / (2 * (1+9)) = 16/20 = 0.8
  const std::vector<double> t = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(balance_index(t), 0.8);
  EXPECT_DOUBLE_EQ(normalized_balance_index(t), (0.8 - 0.5) / 0.5);
}

TEST(BalanceIndex, DegenerateCases) {
  EXPECT_DOUBLE_EQ(balance_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(balance_index(std::vector<double>{7.0}), 1.0);
  EXPECT_DOUBLE_EQ(balance_index(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(normalized_balance_index(std::vector<double>{0.0, 0.0}),
                   1.0);
}

TEST(BalanceVariation, RelativeSteps) {
  const std::vector<double> beta = {0.5, 0.55, 0.44};
  const auto s = balance_variation(beta);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_NEAR(s[0], 0.1, 1e-12);
  EXPECT_NEAR(s[1], 0.11 / 0.55, 1e-12);
}

TEST(BalanceVariation, SkipsZeroBase) {
  const std::vector<double> beta = {0.0, 0.5, 0.5};
  const auto s = balance_variation(beta);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
}

TEST(BalanceVariation, TooShortIsEmpty) {
  EXPECT_TRUE(balance_variation(std::vector<double>{0.5}).empty());
  EXPECT_TRUE(balance_variation(std::vector<double>{}).empty());
}

// Property sweep over random load vectors.
class BalancePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BalancePropertyTest, RangeScaleAndPermutationInvariance) {
  util::Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(20);
  std::vector<double> t(n);
  for (double& v : t) v = rng.uniform(0.0, 100.0);

  const double beta = balance_index(t);
  EXPECT_GE(beta, 1.0 / static_cast<double>(n) - 1e-12);
  EXPECT_LE(beta, 1.0 + 1e-12);
  const double nb = normalized_balance_index(t);
  EXPECT_GE(nb, -1e-12);
  EXPECT_LE(nb, 1.0 + 1e-12);

  // Scale invariance.
  std::vector<double> scaled = t;
  for (double& v : scaled) v *= 3.7;
  EXPECT_NEAR(balance_index(scaled), beta, 1e-12);

  // Permutation invariance.
  std::vector<double> shuffled = t;
  rng.shuffle(shuffled);
  EXPECT_NEAR(balance_index(shuffled), beta, 1e-12);
}

TEST_P(BalancePropertyTest, EqualizingTransferImprovesBalance) {
  // Moving load from the most-loaded AP to the least-loaded one must
  // not decrease the index (Chiu-Jain is Schur-concave).
  util::Rng rng(GetParam() ^ 0xABCDULL);
  std::vector<double> t(6);
  for (double& v : t) v = rng.uniform(1.0, 50.0);
  const double before = balance_index(t);
  auto hi = std::max_element(t.begin(), t.end());
  auto lo = std::min_element(t.begin(), t.end());
  const double delta = (*hi - *lo) / 4.0;
  *hi -= delta;
  *lo += delta;
  EXPECT_GE(balance_index(t), before - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalancePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(ThroughputSeries, RequiresAssignedTrace) {
  const auto net = mini_network(2);
  const auto unassigned = make_trace(1, {SessionSpec{}});
  EXPECT_THROW(ThroughputSeries(net, unassigned, util::SimTime(0),
                                util::SimTime(600)),
               std::invalid_argument);
}

TEST(ThroughputSeries, SingleSessionLoad) {
  const auto net = mini_network(2);
  // 1 Mbit/s from t=0 to t=600 on AP 0.
  const auto t = make_trace(
      1, {SessionSpec{.connect_s = 0, .disconnect_s = 600, .ap = 0,
                      .demand_mbps = 1.0}});
  ThroughputOptions opts;
  opts.slot_s = 600;
  const ThroughputSeries s(net, t, util::SimTime(0), util::SimTime(1200),
                           opts);
  EXPECT_EQ(s.num_slots(), 2u);
  EXPECT_DOUBLE_EQ(s.slot_load(0, 0)[0], 1.0);
  EXPECT_DOUBLE_EQ(s.slot_load(0, 0)[1], 0.0);
  EXPECT_DOUBLE_EQ(s.slot_load(0, 1)[0], 0.0);  // session ended
  EXPECT_DOUBLE_EQ(s.slot_users(0, 0)[0], 1.0);
  EXPECT_DOUBLE_EQ(s.total_load(0, 0), 1.0);
}

TEST(ThroughputSeries, PartialOverlapWeighted) {
  const auto net = mini_network(2);
  // Session covers half of the second slot.
  const auto t = make_trace(
      1, {SessionSpec{.connect_s = 600, .disconnect_s = 900, .ap = 1,
                      .demand_mbps = 2.0}});
  ThroughputOptions opts;
  opts.slot_s = 600;
  const ThroughputSeries s(net, t, util::SimTime(0), util::SimTime(1200),
                           opts);
  EXPECT_DOUBLE_EQ(s.slot_load(0, 1)[1], 1.0);  // 2 Mbps * 300/600
  EXPECT_DOUBLE_EQ(s.slot_users(0, 1)[1], 0.5);
}

TEST(ThroughputSeries, CapAtCapacity) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 1;
  layout.ap_capacity_mbps = 3.0;
  const auto net = wlan::make_campus(layout);
  const auto t = make_trace(
      2, {SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                      .demand_mbps = 2.5},
          SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                      .demand_mbps = 2.5}});
  ThroughputOptions capped;
  capped.slot_s = 600;
  const ThroughputSeries s1(net, t, util::SimTime(0), util::SimTime(600),
                            capped);
  EXPECT_DOUBLE_EQ(s1.slot_load(0, 0)[0], 3.0);

  ThroughputOptions uncapped = capped;
  uncapped.cap_at_capacity = false;
  const ThroughputSeries s2(net, t, util::SimTime(0), util::SimTime(600),
                            uncapped);
  EXPECT_DOUBLE_EQ(s2.slot_load(0, 0)[0], 5.0);
}

TEST(ThroughputSeries, BalanceSeriesMatchesManual) {
  const auto net = mini_network(2);
  const auto t = make_trace(
      2, {SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                      .demand_mbps = 1.0},
          SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600, .ap = 1,
                      .demand_mbps = 3.0}});
  ThroughputOptions opts;
  opts.slot_s = 600;
  const ThroughputSeries s(net, t, util::SimTime(0), util::SimTime(600), opts);
  const auto series = s.normalized_balance_series(0);
  ASSERT_EQ(series.size(), 1u);
  const std::vector<double> loads = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(series[0], normalized_balance_index(loads));
}

TEST(ThroughputSeries, ModulationPreservesSessionTotal) {
  const auto net = mini_network(1);
  const auto t = make_trace(
      1, {SessionSpec{.connect_s = 0, .disconnect_s = 3600, .ap = 0,
                      .demand_mbps = 2.0}});
  ThroughputOptions opts;
  opts.slot_s = 300;
  opts.cap_at_capacity = false;
  opts.modulate_within_session = true;
  opts.modulation_sigma = 0.5;
  const ThroughputSeries s(net, t, util::SimTime(0), util::SimTime(3600),
                           opts);
  double total = 0.0;
  bool varies = false;
  double first = s.slot_load(0, 0)[0];
  for (std::size_t slot = 0; slot < s.num_slots(); ++slot) {
    total += s.slot_load(0, slot)[0];
    if (std::abs(s.slot_load(0, slot)[0] - first) > 1e-9) varies = true;
  }
  // Mean rate over the session equals the configured demand...
  EXPECT_NEAR(total / static_cast<double>(s.num_slots()), 2.0, 1e-9);
  // ...but individual blocks differ (the application dynamics exist).
  EXPECT_TRUE(varies);
}

TEST(SessionBlockRate, DeterministicAndUnmodulatedPassThrough) {
  const auto rec = s3::testing::make_session(
      SessionSpec{.connect_s = 0, .disconnect_s = 1200, .demand_mbps = 4.0});
  ThroughputOptions off;
  EXPECT_DOUBLE_EQ(session_block_rate_mbps(rec, util::SimTime(0), off), 4.0);
  ThroughputOptions on;
  on.modulate_within_session = true;
  const double r1 = session_block_rate_mbps(rec, util::SimTime(300), on);
  const double r2 = session_block_rate_mbps(rec, util::SimTime(300), on);
  EXPECT_DOUBLE_EQ(r1, r2);
  EXPECT_GT(r1, 0.0);
}

TEST(ThroughputSeries, ValidatesArguments) {
  const auto net = mini_network(1);
  const auto t = make_trace(1, {SessionSpec{.ap = 0}});
  EXPECT_THROW(ThroughputSeries(net, t, util::SimTime(600), util::SimTime(0)),
               std::invalid_argument);
  ThroughputOptions bad;
  bad.slot_s = 0;
  EXPECT_THROW(
      ThroughputSeries(net, t, util::SimTime(0), util::SimTime(600), bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace s3::analysis
