#include "s3/analysis/fairness.h"

#include <gtest/gtest.h>

#include "testing/mini.h"

namespace s3::analysis {
namespace {

using s3::testing::SessionSpec;
using s3::testing::make_trace;
using s3::testing::mini_network;

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{1, 1, 1, 1}), 1.0);
  // One user hogging: (1)^2 / (4 * 1) = 0.25.
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{1, 0, 0, 0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{0.0, 0.0}), 1.0);
  // Scale invariance.
  EXPECT_NEAR(jain_fairness(std::vector<double>{1, 2, 3}),
              jain_fairness(std::vector<double>{10, 20, 30}), 1e-12);
}

TEST(EvaluateFairness, UncongestedServesEverything) {
  const auto net = mini_network(2);  // 20 Mbps APs
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                  .demand_mbps = 3.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600, .ap = 1,
                  .demand_mbps = 5.0},
  });
  const FairnessReport r =
      evaluate_fairness(net, t, util::SimTime(0), util::SimTime(600));
  EXPECT_DOUBLE_EQ(r.per_user[0].served_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.per_user[1].served_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_served_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.jain_index, 1.0);
  EXPECT_DOUBLE_EQ(r.throttled_slot_fraction, 0.0);
}

TEST(EvaluateFairness, OverloadThrottlesProportionally) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 1;
  layout.ap_capacity_mbps = 10.0;
  const auto net = wlan::make_campus(layout);
  // 15 Mbps offered on a 10 Mbps AP: everyone served 2/3.
  const auto t = make_trace(2, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                  .demand_mbps = 10.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                  .demand_mbps = 5.0},
  });
  const FairnessReport r =
      evaluate_fairness(net, t, util::SimTime(0), util::SimTime(600));
  EXPECT_NEAR(r.per_user[0].served_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.per_user[1].served_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.throttled_slot_fraction, 1.0);
  EXPECT_NEAR(r.per_user[0].offered_mb, 10.0 * 600.0, 1e-9);
  EXPECT_NEAR(r.per_user[0].served_mb, 10.0 * 600.0 * 2.0 / 3.0, 1e-9);
}

TEST(EvaluateFairness, UnevenPlacementIsUnfair) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 2;
  layout.ap_capacity_mbps = 10.0;
  const auto net = wlan::make_campus(layout);
  // Both heavy users crammed on AP 0 while AP 1 carries only the small
  // one: the heavy pair is throttled.
  const auto t = make_trace(3, {
      SessionSpec{.user = 0, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                  .demand_mbps = 8.0},
      SessionSpec{.user = 1, .connect_s = 0, .disconnect_s = 600, .ap = 0,
                  .demand_mbps = 8.0},
      SessionSpec{.user = 2, .connect_s = 0, .disconnect_s = 600, .ap = 1,
                  .demand_mbps = 2.0},
  });
  const FairnessReport crowded =
      evaluate_fairness(net, t, util::SimTime(0), util::SimTime(600));
  EXPECT_LT(crowded.jain_index, 1.0);
  EXPECT_LT(crowded.mean_served_fraction, 1.0);

  // Spread placement (8+2 / 8): everyone fits under the 10 Mbps caps.
  const auto spread = t.with_assignments(std::vector<ApId>{0, 1, 1});
  const FairnessReport even =
      evaluate_fairness(net, spread, util::SimTime(0), util::SimTime(600));
  EXPECT_GT(even.mean_served_fraction, crowded.mean_served_fraction);
  EXPECT_GT(even.jain_index, crowded.jain_index);
}

TEST(EvaluateFairness, PartialOverlapWeighted) {
  const auto net = mini_network(1);
  const auto t = make_trace(1, {
      SessionSpec{.user = 0, .connect_s = 300, .disconnect_s = 900, .ap = 0,
                  .demand_mbps = 2.0},
  });
  const FairnessReport r =
      evaluate_fairness(net, t, util::SimTime(0), util::SimTime(600));
  // Only 300 s of the session fall in the window.
  EXPECT_NEAR(r.per_user[0].offered_mb, 2.0 * 300.0, 1e-9);
}

TEST(EvaluateFairness, ContentionShrinksService) {
  wlan::CampusLayout layout;
  layout.num_buildings = 1;
  layout.aps_per_building = 1;
  layout.ap_capacity_mbps = 10.0;
  const auto net = wlan::make_campus(layout);
  // Ten light stations: fits nominal capacity exactly, but contention
  // efficiency shaves the usable capacity below the offered load.
  std::vector<SessionSpec> specs;
  for (UserId u = 0; u < 10; ++u) {
    specs.push_back(SessionSpec{.user = u, .connect_s = 0,
                                .disconnect_s = 600, .demand_mbps = 1.0});
  }
  auto t = make_trace(10, specs);
  std::vector<ApId> all_zero(10, 0);
  t = t.with_assignments(all_zero);

  const FairnessReport nominal =
      evaluate_fairness(net, t, util::SimTime(0), util::SimTime(600));
  EXPECT_DOUBLE_EQ(nominal.mean_served_fraction, 1.0);

  FairnessOptions with_contention;
  with_contention.contention = wlan::ContentionModel{};
  const FairnessReport contended = evaluate_fairness(
      net, t, util::SimTime(0), util::SimTime(600), with_contention);
  EXPECT_LT(contended.mean_served_fraction, 1.0);
  EXPECT_DOUBLE_EQ(contended.throttled_slot_fraction, 1.0);
  // Proportional sharing: still perfectly fair within the cell.
  EXPECT_NEAR(contended.jain_index, 1.0, 1e-9);
}

TEST(EvaluateFairness, Validation) {
  const auto net = mini_network(1);
  const auto unassigned = make_trace(1, {SessionSpec{}});
  EXPECT_THROW(evaluate_fairness(net, unassigned, util::SimTime(0),
                                 util::SimTime(600)),
               std::invalid_argument);
  const auto t = make_trace(1, {SessionSpec{.ap = 0}});
  EXPECT_THROW(
      evaluate_fairness(net, t, util::SimTime(600), util::SimTime(0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace s3::analysis
