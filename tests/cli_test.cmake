# End-to-end smoke test of the s3lb CLI: generate -> replay(llf) ->
# train -> replay(s3). Invoked by ctest with -DCLI=<path-to-binary>.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<s3lb binary>")
endif()

set(WORK "${CMAKE_CURRENT_BINARY_DIR}/cli_test_work")
file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "s3lb ${ARGN} failed (${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "s3lb ${ARGN}: OK")
endfunction()

run_cli(generate --out "${WORK}/w.csv" --users 300 --days 5
        --buildings 2 --aps 5 --seed 3)
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/collected.csv"
        --policy llf --buildings 2 --aps 5)
run_cli(train --in "${WORK}/collected.csv" --out "${WORK}/model.txt")
run_cli(replay --in "${WORK}/w.csv" --out "${WORK}/s3.csv"
        --policy s3 --model "${WORK}/model.txt" --buildings 2 --aps 5)

foreach(f w.csv collected.csv model.txt s3.csv)
  if(NOT EXISTS "${WORK}/${f}")
    message(FATAL_ERROR "expected output ${f} missing")
  endif()
endforeach()

# The usage path must exit non-zero on an unknown command.
execute_process(COMMAND ${CLI} bogus RESULT_VARIABLE rc OUTPUT_QUIET
                ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()
