// Fig. 5 — CDF over users of the fraction of their leaving events that
// are co-leavings, for 10/20/30-minute windows.
//
// Paper shape: most users show strong sociality — the mass of the CDF
// sits at high co-leaving fractions, and wider windows shift it right.

#include "bench_common.h"
#include "s3/analysis/events.h"
#include "s3/util/cdf.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const trace::Trace assigned =
      bench::collected_trace(world.network, world.workload, eval);

  std::cout << "# Fig. 5: CDF over users of co-leaving fraction\n";
  std::cout << "# paper shape: most users do not leave independently; "
               "larger windows -> higher fractions\n";

  std::vector<util::EmpiricalCdf> cdfs;
  for (std::int64_t minutes : {10, 20, 30}) {
    const auto stats = analysis::per_user_leave_stats(
        assigned, util::SimTime::from_minutes(minutes));
    util::EmpiricalCdf cdf;
    for (const analysis::UserLeaveStats& s : stats) {
      if (s.leavings >= 5) cdf.add(s.co_leave_fraction());
    }
    cdfs.push_back(std::move(cdf));
  }

  util::TextTable table(
      {"co_leave_fraction", "cdf_10min", "cdf_20min", "cdf_30min"});
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    table.add_numeric_row({x, cdfs[0].at(x), cdfs[1].at(x), cdfs[2].at(x)});
  }
  std::cout << table.to_csv();
  std::cout << "# measured: median co-leave fraction @10min="
            << util::fmt(cdfs[0].quantile(0.5), 3)
            << " @20min=" << util::fmt(cdfs[1].quantile(0.5), 3)
            << " @30min=" << util::fmt(cdfs[2].quantile(0.5), 3) << "\n";
  return 0;
}
