// Fig. 4 — one workday (8:00-24:00) timeline of the balance index of
// the *number of users* vs the balance index of *traffic* on one
// controller domain.
//
// Paper shape: the two series move together — when the user-count
// balance drops, the traffic balance drops with it. Churn, not
// application dynamics, drives imbalance.

#include "bench_common.h"
#include "s3/analysis/churn.h"
#include "s3/util/stats.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const trace::Trace assigned =
      bench::collected_trace(world.network, world.workload, eval);

  // A mid-week day with full activity.
  const std::int64_t day = 2;
  const ControllerId controller = 0;
  const analysis::UserChurnTimeline tl = analysis::user_churn_timeline(
      world.network, assigned, controller,
      util::SimTime::at(day, 8), util::SimTime::from_days(day + 1), 600);

  std::cout << "# Fig. 4: user-count balance vs traffic balance, controller "
            << controller << ", day " << day << ", 8:00-24:00\n";
  std::cout << "# paper shape: the two series track each other; dips are "
               "simultaneous\n";
  util::TextTable table({"hour", "beta_users", "beta_traffic"});
  for (std::size_t i = 0; i < tl.traffic_balance.size(); ++i) {
    const double hour =
        8.0 + static_cast<double>(i) * static_cast<double>(tl.slot_s) / 3600.0;
    table.add_numeric_row({hour, tl.user_balance[i], tl.traffic_balance[i]});
  }
  std::cout << table.to_csv();
  std::cout << "# measured: pearson(user, traffic) this domain/day = "
            << util::fmt(util::pearson(tl.user_balance, tl.traffic_balance), 3)
            << "\n";

  // Robust version of the claim: correlation over every (controller,
  // busy weekday) pair.
  util::RunningStats corr;
  for (ControllerId c = 0; c < world.network.num_controllers(); ++c) {
    for (std::int64_t d = 1; d < 5; ++d) {
      const analysis::UserChurnTimeline t2 = analysis::user_churn_timeline(
          world.network, assigned, c, util::SimTime::at(d, 8),
          util::SimTime::from_days(d + 1), 600);
      corr.add(util::pearson(t2.user_balance, t2.traffic_balance));
    }
  }
  std::cout << "# measured: mean pearson over all controllers x 4 weekdays = "
            << util::fmt(corr.mean(), 3) << " (ci95 "
            << util::fmt(corr.ci95_halfwidth(), 3) << ")\n";
  return 0;
}
