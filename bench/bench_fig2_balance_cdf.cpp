// Fig. 2 — CDF of the normalized balance index over all controllers
// under the deployed (LLF) policy, for peak hours vs average hours.
//
// Paper shape: ~20 % of peak-hour samples and ~60 % of all-workday
// samples fall below beta' = 0.5 — the state of the art cannot keep
// APs balanced.

#include "bench_common.h"
#include "s3/analysis/balance.h"
#include "s3/util/cdf.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const trace::Trace assigned =
      bench::collected_trace(world.network, world.workload, eval);

  analysis::ThroughputOptions opts;
  opts.slot_s = 600;
  const analysis::ThroughputSeries series(
      world.network, assigned, util::SimTime(0),
      util::SimTime::from_days(static_cast<std::int64_t>(world.workload.num_days())),
      opts);

  auto in_peak = [](int hour) {
    return (hour == 10) || (hour == 15);  // 10:00-11:00 and 15:00-16:00
  };

  util::EmpiricalCdf peak, average;
  for (ControllerId c = 0; c < world.network.num_controllers(); ++c) {
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const util::SimTime t = series.slot_begin(slot);
      const int hour = t.hour_of_day();
      if (hour < 8) continue;  // workday hours, as in Fig. 2
      if (series.total_load(c, slot) < 1.0) continue;
      const double beta =
          analysis::normalized_balance_index(series.slot_load(c, slot));
      average.add(beta);
      if (in_peak(hour)) peak.add(beta);
    }
  }

  std::cout << "# Fig. 2: CDF of normalized balance index over all "
               "controllers (deployed LLF)\n";
  std::cout << "# paper shape: P[beta' < 0.5] ~ 0.2 in peak hours, ~ 0.6 "
               "over the workday\n";
  util::TextTable table({"beta", "cdf_peak_hours", "cdf_average_hours"});
  for (double x = 0.0; x <= 1.0001; x += 0.05) {
    table.add_numeric_row({x, peak.at(x), average.at(x)});
  }
  std::cout << table.to_csv();
  std::cout << "# measured: P[beta'<0.5] peak=" << util::fmt(peak.at(0.5), 3)
            << " average=" << util::fmt(average.at(0.5), 3)
            << "  (samples: " << peak.size() << " / " << average.size()
            << ")\n";
  return 0;
}
