// Fig. 12 — S3 vs the deployed LLF per controller domain, with 95 %
// confidence error bars, plus the headline aggregates.
//
// Paper shape: S3 wins on every site; +41.2 % mean balance-index gain,
// +52.1 % during leave-peak hours, and a 72.1 % error-bar reduction.

#include "bench_common.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);

  const core::ComparisonResult r =
      core::compare_s3_vs_llf(world.network, world.workload, eval);

  std::cout << "# Fig. 12: S3 vs deployed LLF per controller domain "
               "(mean normalized balance index +- 95% CI)\n";
  std::cout << "# paper shape: S3 above LLF on every site; biggest gains "
               "around leave-peaks\n";
  util::TextTable table(
      {"controller", "llf_mean", "llf_ci95", "s3_mean", "s3_ci95"});
  for (std::size_t c = 0; c < r.llf.per_controller_mean.size(); ++c) {
    table.add_numeric_row({static_cast<double>(c + 1),
                           r.llf.per_controller_mean[c],
                           r.llf.per_controller_ci95[c],
                           r.s3.per_controller_mean[c],
                           r.s3.per_controller_ci95[c]});
  }
  std::cout << table.to_csv();

  std::size_t s3_wins = 0;
  for (std::size_t c = 0; c < r.llf.per_controller_mean.size(); ++c) {
    if (r.s3.per_controller_mean[c] > r.llf.per_controller_mean[c]) ++s3_wins;
  }
  std::cout << "# measured: overall LLF=" << util::fmt(r.llf.mean, 4)
            << " S3=" << util::fmt(r.s3.mean, 4) << "\n";
  std::cout << "# measured: balance gain = "
            << util::fmt(100.0 * r.balance_gain, 1)
            << " %  (paper: +41.2 %)\n";
  std::cout << "# measured: leave-peak gain = "
            << util::fmt(100.0 * r.leave_peak_gain, 1)
            << " %  (paper: +52.1 %)\n";
  std::cout << "# measured: error-bar reduction = "
            << util::fmt(100.0 * r.errorbar_reduction, 1)
            << " %  (paper: 72.1 %)\n";
  std::cout << "# measured: S3 wins on " << s3_wins << "/"
            << r.llf.per_controller_mean.size() << " sites\n";
  std::cout << "# replay: S3 batches mean size = "
            << util::fmt(r.s3.replay_stats.mean_batch_size, 2)
            << ", forced overloads = " << r.s3.replay_stats.forced_overloads
            << " (LLF: " << r.llf.replay_stats.forced_overloads << ")\n";
  bench::maybe_dump_metrics(args);
  return 0;
}
