// Clique hot-path microbench — the incremental-maintenance speedup
// claim, measured.
//
// S3 needs an up-to-date clique cover of the θ > 0.3 graph for every
// selection round, but per-round churn touches only a few pairs. This
// bench builds a campus-scale community universe (communities of 8,
// the paper's typical close-relation group size), then times rounds of
//
//   churn  — a seeded batch of θ re-writes (inserts, deletes,
//            re-weights) touching a few percent of the population
//   select — obtaining the current cover, two ways:
//              from_scratch   CliqueMaintainer::solve_from_scratch()
//                             (rediscover components, re-solve all)
//              incremental    CliqueMaintainer::cover() (re-solve only
//                             components the churn made dirty)
//
// Both modes apply bit-identical churn streams and the bench asserts
// the covers agree bitwise at every sweep's end — the differential
// guarantee the randomized test suite enforces, re-checked here on the
// benchmark universe.
//
// Results go to BENCH_clique.json (selections/s per churn level,
// speedup, maintainer telemetry) so CI can archive the numbers and
// fail the build if the incremental path ever loses its edge
// (--min-speedup, gated on the *worst* swept churn level; the
// acceptance bar for this repo is 3.0 at 5% churn, 10k users).
//
// Extra flags on top of the common bench set:
//   --quick           small universe + short loops (CI smoke)
//   --out FILE        JSON destination (default BENCH_clique.json)
//   --min-speedup X   exit 1 if min speedup over churn levels < X
//   --users N         population size (default 10000; quick: 2000)
//   --rounds N        timed rounds per mode per churn level (default 40)

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "s3/social/clique_maintainer.h"
#include "s3/util/rng.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr std::size_t kCommunity = 8;

/// One θ re-write: pair plus its new value.
struct ChurnEvent {
  UserId u;
  UserId v;
  double theta;
};

/// Seeds every intra-community pair above the threshold: the steady
/// state is one 8-clique per community, the dense-relation regime the
/// paper's clique machinery exists for.
void seed_universe(social::CliqueMaintainer& m, std::size_t users,
                   util::Rng& rng) {
  for (std::size_t base = 0; base + kCommunity <= users; base += kCommunity) {
    for (std::size_t i = 0; i < kCommunity; ++i) {
      for (std::size_t j = i + 1; j < kCommunity; ++j) {
        m.set_theta(static_cast<UserId>(base + i),
                    static_cast<UserId>(base + j), rng.uniform(0.35, 0.9));
      }
    }
  }
}

/// A churn batch in which ~`pct`% of the population sees its social
/// row change: each event re-writes one intra-community pair to a θ
/// drawn across the threshold, so edges appear, vanish, and re-weight
/// — dirtying the touched community's component and nothing else. A
/// pair re-write churns exactly two users, hence events = users·pct/200.
std::vector<ChurnEvent> make_churn(std::size_t users, double pct,
                                   util::Rng& rng) {
  const std::size_t communities = users / kCommunity;
  const std::size_t events = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(users) * pct / 200.0));
  std::vector<ChurnEvent> out;
  out.reserve(events);
  for (std::size_t e = 0; e < events; ++e) {
    const std::size_t c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(communities) - 1));
    const std::size_t i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kCommunity) - 1));
    std::size_t j;
    do {
      j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kCommunity) - 1));
    } while (j == i);
    out.push_back(ChurnEvent{static_cast<UserId>(c * kCommunity + i),
                             static_cast<UserId>(c * kCommunity + j),
                             rng.uniform(0.2, 0.9)});
  }
  return out;
}

struct ModeTiming {
  double selections_per_s = 0.0;
  double ms_per_selection = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  static constexpr util::ArgSpec kExtra[] = {
      {"quick", util::ArgKind::kFlag, "small universe, short loops"},
      {"out", util::ArgKind::kString, "JSON output (BENCH_clique.json)"},
      {"min-speedup", util::ArgKind::kReal,
       "fail if the worst churn level's speedup drops below this"},
      {"users", util::ArgKind::kInt, "population size (default 10000)"},
      {"rounds", util::ArgKind::kInt, "timed rounds per mode (default 40)"},
  };
  const util::ParsedArgs raw = bench::parse_raw_args(argc, argv, kExtra);
  const bool quick = raw.has("quick");
  const std::string out_path = raw.get("out", "BENCH_clique.json");
  const double min_speedup = raw.real("min-speedup", 0.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(raw.num("seed", 42));
  const std::size_t users = static_cast<std::size_t>(
      raw.num("users", quick ? 2000 : 10000));
  const std::size_t rounds =
      static_cast<std::size_t>(raw.num("rounds", quick ? 15 : 40));
  const std::vector<double> churn_levels = {1.0, 2.0, 5.0};

  std::cerr << "universe: " << users << " users, " << users / kCommunity
            << " communities of " << kCommunity << " (seed " << seed
            << ")\n";

  struct LevelResult {
    double churn_pct = 0.0;
    std::size_t churn_events = 0;
    ModeTiming scratch;
    ModeTiming incremental;
    double speedup = 0.0;
    std::uint64_t components_solved = 0;
    std::uint64_t components_reused = 0;
  };
  std::vector<LevelResult> results;

  for (const double pct : churn_levels) {
    // Identical universes and churn streams for both modes: only the
    // cover-maintenance strategy differs.
    util::Rng seed_rng(seed);
    social::CliqueMaintainer scratch_m(users);
    seed_universe(scratch_m, users, seed_rng);
    util::Rng seed_rng2(seed);
    social::CliqueMaintainer inc_m(users);
    seed_universe(inc_m, users, seed_rng2);

    util::Rng churn_rng(seed + 1);
    std::vector<std::vector<ChurnEvent>> batches(rounds);
    for (std::vector<ChurnEvent>& b : batches) {
      b = make_churn(users, pct, churn_rng);
    }

    // Warm both caches so round 0 is steady-state, not the seed solve.
    do_not_optimize(scratch_m.cover().cliques.size());
    do_not_optimize(inc_m.cover().cliques.size());

    const auto t_scratch = std::chrono::steady_clock::now();
    for (const std::vector<ChurnEvent>& batch : batches) {
      for (const ChurnEvent& e : batch) {
        scratch_m.set_theta(e.u, e.v, e.theta);
      }
      const social::CliqueCoverResult cover = scratch_m.solve_from_scratch();
      do_not_optimize(cover.cliques.size());
    }
    const double scratch_s = seconds_since(t_scratch);

    const std::uint64_t solved_before = inc_m.stats().components_solved;
    const std::uint64_t reused_before = inc_m.stats().components_reused;
    const auto t_inc = std::chrono::steady_clock::now();
    for (const std::vector<ChurnEvent>& batch : batches) {
      for (const ChurnEvent& e : batch) {
        inc_m.set_theta(e.u, e.v, e.theta);
      }
      do_not_optimize(inc_m.cover().cliques.size());
    }
    const double inc_s = seconds_since(t_inc);

    // Differential guarantee, re-checked on the benchmark universe.
    if (inc_m.cover().cliques != inc_m.solve_from_scratch().cliques) {
      std::cerr << "FAIL: incremental cover diverged from from-scratch at "
                << pct << "% churn\n";
      return 1;
    }

    LevelResult r;
    r.churn_pct = pct;
    r.churn_events = batches.front().size();
    r.scratch.selections_per_s = static_cast<double>(rounds) / scratch_s;
    r.scratch.ms_per_selection = scratch_s / static_cast<double>(rounds) * 1e3;
    r.incremental.selections_per_s = static_cast<double>(rounds) / inc_s;
    r.incremental.ms_per_selection = inc_s / static_cast<double>(rounds) * 1e3;
    r.speedup = r.incremental.selections_per_s / r.scratch.selections_per_s;
    r.components_solved = inc_m.stats().components_solved - solved_before;
    r.components_reused = inc_m.stats().components_reused - reused_before;
    results.push_back(r);

    std::cout << "churn " << util::fmt(pct, 1) << "% (" << r.churn_events
              << " events/round): scratch "
              << util::fmt(r.scratch.ms_per_selection, 3) << " ms  incremental "
              << util::fmt(r.incremental.ms_per_selection, 3)
              << " ms  speedup " << util::fmt(r.speedup, 2) << "x\n";
  }

  double worst = results.front().speedup;
  for (const LevelResult& r : results) worst = std::min(worst, r.speedup);

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"clique_hotpath\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"num_users\": " << users << ",\n"
       << "  \"community_size\": " << kCommunity << ",\n"
       << "  \"rounds_per_mode\": " << rounds << ",\n"
       << "  \"min_speedup\": " << util::fmt(worst, 3) << ",\n"
       << "  \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    json << "    {\n"
         << "      \"churn_pct\": " << util::fmt(r.churn_pct, 1) << ",\n"
         << "      \"churn_events_per_round\": " << r.churn_events << ",\n"
         << "      \"scratch_selections_per_s\": "
         << util::fmt(r.scratch.selections_per_s, 2) << ",\n"
         << "      \"scratch_ms_per_selection\": "
         << util::fmt(r.scratch.ms_per_selection, 4) << ",\n"
         << "      \"incremental_selections_per_s\": "
         << util::fmt(r.incremental.selections_per_s, 2) << ",\n"
         << "      \"incremental_ms_per_selection\": "
         << util::fmt(r.incremental.ms_per_selection, 4) << ",\n"
         << "      \"speedup\": " << util::fmt(r.speedup, 3) << ",\n"
         << "      \"components_solved\": " << r.components_solved << ",\n"
         << "      \"components_reused\": " << r.components_reused << "\n"
         << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "worst speedup over churn levels: " << util::fmt(worst, 2)
            << "x\nwrote " << out_path << "\n";

  if (min_speedup > 0.0 && worst < min_speedup) {
    std::cerr << "FAIL: incremental speedup " << util::fmt(worst, 3)
              << " < required " << util::fmt(min_speedup, 3) << "\n";
    return 1;
  }
  return 0;
}
