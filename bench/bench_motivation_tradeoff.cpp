// §I's motivation, quantified: the balance/user-experience trade-off.
//
//   * arrival-time LLF        — user-friendly but cannot recover from
//                               co-leavings;
//   * online rebalancing [12] — excellent balance, but migrates users
//                               constantly (connection disruptions);
//   * S3                      — recovers most of the balance gap with
//                               ZERO migrations.
//
// Paper claim: "there is no existing scheme ... that can achieve
// superior load balancing while still preserving good user experience"
// — S3 is built to fill that cell.

#include "bench_common.h"
#include "s3/core/rebalancer.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

/// Mean daytime normalized balance index of a rebalancer run.
double mean_beta(const wlan::Network& net, const core::RebalanceResult& r) {
  util::RunningStats stats;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    const std::size_t width = net.aps_of_controller(c).size();
    for (std::size_t slot = 0; slot < r.num_slots; ++slot) {
      const double hour =
          static_cast<double>((r.begin +
                               util::SimTime(static_cast<std::int64_t>(slot) *
                                             r.slot_s))
                                  .second_of_day()) /
          3600.0;
      if (hour < 8.0) continue;
      const auto loads = r.loads(c, slot, width);
      double total = 0.0;
      for (double v : loads) total += v;
      if (total < 5.0) continue;
      stats.add(analysis::normalized_balance_index(loads));
    }
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);

  util::TextTable table({"scheme", "mean_beta", "migrations",
                         "disrupted_sessions_pct"});

  // Arrival-only policies (zero migration by construction): score on
  // the standard test window.
  const core::ComparisonResult cmp =
      core::compare_s3_vs_llf(world.network, world.workload, eval);
  table.add_row({"LLF (arrival only)", util::fmt(cmp.llf.mean), "0", "0.0"});
  table.add_row({"S3 (arrival only)", util::fmt(cmp.s3.mean), "0", "0.0"});

  // Online rebalancer over the same test days.
  const trace::Trace test = world.workload.slice(
      util::SimTime::from_days(eval.train_days),
      util::SimTime::from_days(eval.train_days + eval.test_days));
  for (std::int64_t period : {300L, 60L}) {
    core::RebalancerConfig rc;
    rc.sweep_period_s = period;
    const core::RebalanceResult r =
        core::simulate_with_migration(world.network, test, rc);
    table.add_row({"rebalancer " + std::to_string(period) + "s sweeps",
                   util::fmt(mean_beta(world.network, r)),
                   std::to_string(r.migrations),
                   util::fmt(100.0 * r.disrupted_session_fraction, 1)});
  }

  std::cout << "# Motivation (paper SI): balance vs user experience\n";
  std::cout << "# paper shape: online rebalancing balances best but "
               "disrupts users constantly; S3 approaches its balance with "
               "zero migrations\n";
  std::cout << table.to_csv();
  return 0;
}
