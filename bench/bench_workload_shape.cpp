// Workload-shape report: the statistics that justify the synthetic
// trace as a stand-in for the SJTU collection (DESIGN.md §2). Prints
// the diurnal load curve, session-duration quantiles, per-user session
// rates, group-size distribution, and the co-coming/co-leaving rates
// the §III-D analysis depends on.

#include "bench_common.h"
#include "s3/analysis/events.h"
#include "s3/util/cdf.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const trace::Trace& w = world.workload;

  std::cout << "# Workload shape (synthetic stand-in for the SJTU trace)\n";
  std::cout << "# sessions=" << w.size() << " users=" << w.num_users()
            << " days=" << w.num_days() << " groups="
            << world.truth.groups.size() << "\n";

  // --- group sizes -----------------------------------------------------
  util::EmpiricalCdf group_sizes;
  for (const auto& g : world.truth.groups) {
    group_sizes.add(static_cast<double>(g.members.size()));
  }
  std::cout << "# group size: median "
            << util::fmt(group_sizes.quantile(0.5), 1) << ", p90 "
            << util::fmt(group_sizes.quantile(0.9), 1) << ", max "
            << util::fmt(group_sizes.max(), 0) << "\n";

  // --- session durations / rates ---------------------------------------
  util::EmpiricalCdf durations, rates;
  std::size_t group_sessions = 0;
  for (const trace::SessionRecord& s : w.sessions()) {
    durations.add(s.duration_s() / 60.0);
    rates.add(s.demand_mbps);
    if (s.group != kInvalidGroup) ++group_sessions;
  }
  std::cout << "# session minutes: p25 " << util::fmt(durations.quantile(0.25), 0)
            << " median " << util::fmt(durations.quantile(0.5), 0) << " p90 "
            << util::fmt(durations.quantile(0.9), 0) << "\n";
  std::cout << "# demand Mbit/s: median " << util::fmt(rates.quantile(0.5), 2)
            << " p90 " << util::fmt(rates.quantile(0.9), 2) << " max "
            << util::fmt(rates.max(), 2) << " (per-client cap)\n";
  std::cout << "# group-driven sessions: "
            << util::fmt(100.0 * static_cast<double>(group_sessions) /
                             static_cast<double>(w.size()), 1)
            << " %\n";

  // --- sociality rates on the collected trace --------------------------
  const trace::Trace assigned =
      bench::collected_trace(world.network, w, eval);
  const auto leaves = analysis::per_user_leave_stats(
      assigned, util::SimTime::from_minutes(10));
  const auto arrivals = analysis::per_user_arrival_stats(
      assigned, util::SimTime::from_minutes(10));
  util::RunningStats lv, ar;
  for (const auto& s : leaves) {
    if (s.leavings >= 5) lv.add(s.co_leave_fraction());
  }
  for (const auto& s : arrivals) {
    if (s.arrivals >= 5) ar.add(s.co_coming_fraction());
  }
  std::cout << "# mean co-leaving fraction (10 min): " << util::fmt(lv.mean())
            << "   mean co-coming fraction: " << util::fmt(ar.mean()) << "\n";

  // --- diurnal curve ----------------------------------------------------
  std::vector<double> hourly(24, 0.0);
  for (const trace::SessionRecord& s : w.sessions()) {
    for (int h = 0; h < 24; ++h) {
      const util::SimTime b = util::SimTime::at(s.connect.day(), h);
      const util::SimTime e = b + util::SimTime::from_hours(1);
      hourly[static_cast<std::size_t>(h)] +=
          s.demand_mbps *
          static_cast<double>(
              util::TimeInterval{s.connect, s.disconnect}.overlap_seconds(b, e)) /
          3600.0;
    }
  }
  util::TextTable table({"hour", "offered_load_mbps(all_days)"});
  for (int h = 0; h < 24; ++h) {
    table.add_numeric_row({static_cast<double>(h), hourly[h]});
  }
  std::cout << table.to_csv();
  std::cout << "# paper shape: throughput peaks in 10:00-11:00 and "
               "15:00-16:00; leave-peaks 12-13, 16-17:50, 21-22\n";
  return 0;
}
