// Fig. 3 — CDF of the balance-variance statistic S with churn removed
// (application dynamics only), for 5/10/20-minute sub-periods.
//
// Paper shape: variation is tiny — >80 % of S below 0.02 with
// ten-minute sub-periods. Application dynamics do NOT explain the
// imbalance; user churn does.

#include "bench_common.h"
#include "s3/analysis/churn.h"
#include "s3/util/cdf.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const trace::Trace assigned =
      bench::collected_trace(world.network, world.workload, eval);

  std::cout << "# Fig. 3: CDF of balance variance S (fixed users, "
               "within-session application dynamics only)\n";
  std::cout << "# paper shape: >80% of S below 0.02 at 10-minute "
               "sub-periods; smaller sub-periods noisier\n";

  std::vector<util::EmpiricalCdf> cdfs;
  const std::vector<std::int64_t> subs = {300, 600, 1200};
  for (std::int64_t sub : subs) {
    analysis::AppDynamicsConfig cfg;
    cfg.begin = util::SimTime::from_hours(8);
    cfg.end = util::SimTime::from_days(3);  // three busy days suffice
    cfg.period_s = 3600;
    cfg.sub_period_s = sub;
    cdfs.emplace_back(
        analysis::app_dynamics_variation(world.network, assigned, cfg));
  }

  util::TextTable table({"S", "cdf_5min", "cdf_10min", "cdf_20min"});
  for (double x = 0.0; x <= 0.1201; x += 0.005) {
    table.add_numeric_row(
        {x, cdfs[0].at(x), cdfs[1].at(x), cdfs[2].at(x)});
  }
  std::cout << table.to_csv();
  std::cout << "# measured: P[S<0.02] @5min=" << util::fmt(cdfs[0].at(0.02), 3)
            << " @10min=" << util::fmt(cdfs[1].at(0.02), 3)
            << " @20min=" << util::fmt(cdfs[2].at(0.02), 3) << "\n";
  return 0;
}
