// Shared scaffolding for the figure/table benches.
//
// Every bench binary accepts:
//   --scale=small|medium|full   workload size (default small: 8 buildings,
//                               2400 users; full: the SJTU deployment's
//                               22 buildings / ~12.4k users)
//   --seed=N                    generator seed (default 42)
//   --threads=N                 replay worker threads (default 0 = all
//                               cores; results are identical for every
//                               value, only wall clock changes)
//   --metrics                   dump the instrumentation bus to stderr
//                               before exit (via bench::maybe_dump_metrics)
//
// Unknown flags are an error (usage + exit 2) — a typoed "--thread=4"
// silently running single-threaded would invalidate a measurement.
//
// Benches print labelled CSV-ish series to stdout — the artifact a
// plotting script consumes — with '#' comment lines describing the
// paper-shape the series should reproduce.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"
#include "s3/util/argspec.h"
#include "s3/util/metrics.h"

namespace s3::bench {

struct BenchArgs {
  std::string scale = "small";
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< replay workers; 0 = hardware_concurrency
  bool metrics = false;  ///< dump instrumentation counters on exit
};

inline void print_usage(std::ostream& out) {
  out << "usage: bench [--scale=small|medium|full] [--seed=N] "
         "[--threads=N] [--metrics]\n";
}

/// Flag table shared by every bench binary; extend with `extra` specs
/// for bench-specific flags (the caller reads them off the returned
/// ParsedArgs).
inline util::ParsedArgs parse_raw_args(
    int argc, char** argv, std::span<const util::ArgSpec> extra = {}) {
  static constexpr util::ArgSpec kCommon[] = {
      {"scale", util::ArgKind::kString, "small|medium|full"},
      {"seed", util::ArgKind::kInt, "generator seed"},
      {"threads", util::ArgKind::kInt, "replay workers (0 = all cores)"},
      {"metrics", util::ArgKind::kFlag, "dump instrumentation bus"},
  };
  std::vector<util::ArgSpec> specs(std::begin(kCommon), std::end(kCommon));
  specs.insert(specs.end(), extra.begin(), extra.end());
  const util::ArgParseResult parsed =
      util::parse_args(specs, argc, argv, 1);
  if (parsed.want_help) {
    print_usage(std::cout);
    std::exit(0);
  }
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n";
    print_usage(std::cerr);
    std::exit(2);
  }
  return parsed.args;
}

inline BenchArgs parse_args(int argc, char** argv) {
  const util::ParsedArgs raw = parse_raw_args(argc, argv);
  BenchArgs args;
  args.scale = raw.get("scale", args.scale);
  if (args.scale != "small" && args.scale != "medium" &&
      args.scale != "full") {
    std::cerr << "unknown scale: " << args.scale << "\n";
    print_usage(std::cerr);
    std::exit(2);
  }
  args.seed = static_cast<std::uint64_t>(
      raw.num("seed", static_cast<long>(args.seed)));
  args.threads = static_cast<unsigned>(
      raw.num("threads", static_cast<long>(args.threads)));
  args.metrics = raw.has("metrics");
  return args;
}

/// Generator configuration per scale. Training span (21 d) + test span
/// (3 d) mirror the paper's Jul 4-24 / Jul 25-27 split.
inline trace::GeneratorConfig generator_config(const BenchArgs& args) {
  trace::GeneratorConfig cfg;
  cfg.seed = args.seed;
  cfg.num_days = 24;
  if (args.scale == "full") {
    cfg.num_users = 12374;
    cfg.layout.num_buildings = 22;
    cfg.layout.aps_per_building = 15;
    cfg.rate_scale = 0.35;  // constant offered load per AP vs small scale
  } else if (args.scale == "medium") {
    cfg.num_users = 4800;
    cfg.layout.num_buildings = 10;
    cfg.layout.aps_per_building = 12;
    cfg.rate_scale = 0.6;
  } else {
    cfg.num_users = 2400;
    cfg.layout.num_buildings = 8;
    cfg.layout.aps_per_building = 12;
  }
  return cfg;
}

inline core::EvaluationConfig evaluation_config(const BenchArgs& args) {
  core::EvaluationConfig eval;
  eval.train_days = 21;
  eval.test_days = 3;
  eval.threads = args.threads;
  return eval;
}

inline trace::GeneratedTrace make_world(const BenchArgs& args) {
  const trace::GeneratorConfig cfg = generator_config(args);
  std::cerr << "generating workload: " << cfg.num_users << " users, "
            << cfg.layout.num_buildings << " buildings, " << cfg.num_days
            << " days (seed " << cfg.seed << ")\n";
  return trace::generate_campus_trace(cfg);
}

/// The "collected trace": the operator's LLF-controller logs, replayed
/// by the sharded driver (eval.threads workers).
inline trace::Trace collected_trace(const wlan::Network& net,
                                    const trace::Trace& workload,
                                    const core::EvaluationConfig& eval) {
  const core::LlfFactory llf(eval.baseline_metric);
  runtime::ReplayDriverConfig rc;
  rc.replay = eval.replay;
  rc.threads = eval.threads;
  return runtime::ReplayDriver(net, rc).run(workload, llf).assigned;
}

/// Call at the end of main: dumps the instrumentation bus to stderr
/// when --metrics was given.
inline void maybe_dump_metrics(const BenchArgs& args) {
  if (!args.metrics) return;
  std::cerr << "# instrumentation bus\n";
  util::metrics().dump(std::cerr);
}

}  // namespace s3::bench
