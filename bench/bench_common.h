// Shared scaffolding for the figure/table benches.
//
// Every bench binary accepts:
//   --scale=small|medium|full   workload size (default small: 8 buildings,
//                               2400 users; full: the SJTU deployment's
//                               22 buildings / ~12.4k users)
//   --seed=N                    generator seed (default 42)
//
// Benches print labelled CSV-ish series to stdout — the artifact a
// plotting script consumes — with '#' comment lines describing the
// paper-shape the series should reproduce.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "s3/core/evaluation.h"
#include "s3/trace/generator.h"

namespace s3::bench {

struct BenchArgs {
  std::string scale = "small";
  std::uint64_t seed = 42;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      args.scale = a.substr(8);
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: bench [--scale=small|medium|full] [--seed=N]\n";
      std::exit(0);
    }
  }
  return args;
}

/// Generator configuration per scale. Training span (21 d) + test span
/// (3 d) mirror the paper's Jul 4-24 / Jul 25-27 split.
inline trace::GeneratorConfig generator_config(const BenchArgs& args) {
  trace::GeneratorConfig cfg;
  cfg.seed = args.seed;
  cfg.num_days = 24;
  if (args.scale == "full") {
    cfg.num_users = 12374;
    cfg.layout.num_buildings = 22;
    cfg.layout.aps_per_building = 15;
    cfg.rate_scale = 0.35;  // constant offered load per AP vs small scale
  } else if (args.scale == "medium") {
    cfg.num_users = 4800;
    cfg.layout.num_buildings = 10;
    cfg.layout.aps_per_building = 12;
    cfg.rate_scale = 0.6;
  } else {
    cfg.num_users = 2400;
    cfg.layout.num_buildings = 8;
    cfg.layout.aps_per_building = 12;
  }
  return cfg;
}

inline core::EvaluationConfig evaluation_config() {
  core::EvaluationConfig eval;
  eval.train_days = 21;
  eval.test_days = 3;
  return eval;
}

inline trace::GeneratedTrace make_world(const BenchArgs& args) {
  const trace::GeneratorConfig cfg = generator_config(args);
  std::cerr << "generating workload: " << cfg.num_users << " users, "
            << cfg.layout.num_buildings << " buildings, " << cfg.num_days
            << " days (seed " << cfg.seed << ")\n";
  return trace::generate_campus_trace(cfg);
}

/// The "collected trace": the operator's LLF-controller logs.
inline trace::Trace collected_trace(const wlan::Network& net,
                                    const trace::Trace& workload,
                                    const core::EvaluationConfig& eval) {
  core::LlfSelector llf(eval.baseline_metric);
  return sim::replay(net, workload, llf, eval.replay).assigned;
}

}  // namespace s3::bench
