// Fig. 7 — gap statistic over user application profiles for varying k.
//
// Paper shape: Gap(4) >= Gap(5) - s_5, so the optimal number of usage
// types is k = 4.

#include "bench_common.h"
#include "s3/analysis/profiles.h"
#include "s3/cluster/gap_statistic.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const apps::ProfileStore profiles =
      analysis::build_profiles(world.workload);

  // Feature matrix: normalized lifetime profiles of active users.
  cluster::Dataset data;
  data.dim = apps::kNumCategories;
  for (const apps::AppMix& p : profiles.normalized_profiles()) {
    if (apps::total(p) <= 0.0) continue;
    data.values.insert(data.values.end(), p.begin(), p.end());
    ++data.num_points;
  }

  cluster::GapStatisticConfig cfg;
  cfg.max_k = 10;
  cfg.num_references = 10;
  cfg.seed = args.seed;
  const cluster::GapStatisticResult r = cluster::gap_statistic(data, cfg);

  std::cout << "# Fig. 7: gap statistic for varying k (user application "
               "profiles)\n";
  std::cout << "# paper shape: first k with Gap(k) >= Gap(k+1) - s_{k+1} "
               "is k = 4\n";
  util::TextTable table({"k", "gap", "s_k", "log_W"});
  for (std::size_t k = 1; k <= cfg.max_k; ++k) {
    table.add_numeric_row({static_cast<double>(k), r.gap[k - 1], r.s[k - 1],
                           r.log_w[k - 1]});
  }
  std::cout << table.to_csv();
  std::cout << "# measured: optimal k = " << r.optimal_k
            << " over " << data.num_points << " users (paper: 4)\n";
  return 0;
}
