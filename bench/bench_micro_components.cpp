// Micro-benchmarks (google-benchmark) for the hot components:
// Östergård's clique solver, clique cover, k-means, the balance-index
// kernel, pairwise event extraction and full trace replay.

#include <benchmark/benchmark.h>

#include "s3/analysis/balance.h"
#include "s3/analysis/events.h"
#include "s3/cluster/kmeans.h"
#include "s3/core/baselines.h"
#include "s3/core/evaluation.h"
#include "s3/core/s3_selector.h"
#include "s3/core/selector_factory.h"
#include "s3/runtime/replay_driver.h"
#include "s3/sim/replay.h"
#include "s3/social/clique.h"
#include "s3/trace/generator.h"
#include "s3/util/rng.h"

namespace {

using namespace s3;

social::WeightedGraph random_graph(std::size_t n, double p,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  social::WeightedGraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) g.add_edge(i, j, rng.uniform(0.1, 1.0));
    }
  }
  return g;
}

void BM_MaxClique(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double p = static_cast<double>(state.range(1)) / 100.0;
  const social::WeightedGraph g = random_graph(n, p, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(social::max_clique(g));
  }
  state.SetLabel("n=" + std::to_string(n) + " p=0." +
                 std::to_string(state.range(1)));
}
BENCHMARK(BM_MaxClique)
    ->Args({16, 30})
    ->Args({32, 30})
    ->Args({64, 30})
    ->Args({32, 60})
    ->Args({64, 60});

void BM_GreedyClique(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const social::WeightedGraph g = random_graph(n, 0.3, 7);
  // Report solution quality vs the exact solver alongside the speed.
  const std::size_t exact = social::max_clique(g).vertices.size();
  const std::size_t greedy = social::greedy_clique(g).vertices.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(social::greedy_clique(g));
  }
  state.counters["quality"] =
      static_cast<double>(greedy) / static_cast<double>(exact);
}
BENCHMARK(BM_GreedyClique)->Arg(32)->Arg(64);

void BM_CliqueCover(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const social::WeightedGraph g = random_graph(n, 0.3, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(social::clique_cover(g));
  }
}
BENCHMARK(BM_CliqueCover)->Arg(16)->Arg(32)->Arg(64);

void BM_KMeans(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  cluster::Dataset d;
  d.dim = 6;
  d.num_points = n;
  for (std::size_t i = 0; i < n * 6; ++i) {
    d.values.push_back(rng.uniform(0.0, 1.0));
  }
  cluster::KMeansConfig cfg;
  cfg.k = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::kmeans(d, cfg));
  }
}
BENCHMARK(BM_KMeans)->Arg(500)->Arg(2000)->Arg(10000);

void BM_BalanceIndex(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> loads(static_cast<std::size_t>(state.range(0)));
  for (double& v : loads) v = rng.uniform(0.0, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::normalized_balance_index(loads));
  }
}
BENCHMARK(BM_BalanceIndex)->Arg(15)->Arg(334);

const trace::GeneratedTrace& bench_world() {
  static const trace::GeneratedTrace world = [] {
    trace::GeneratorConfig cfg;
    cfg.seed = 9;
    cfg.num_users = 600;
    cfg.num_days = 4;
    cfg.layout.num_buildings = 2;
    cfg.layout.aps_per_building = 8;
    return trace::generate_campus_trace(cfg);
  }();
  return world;
}

void BM_GenerateTrace(benchmark::State& state) {
  trace::GeneratorConfig cfg;
  cfg.seed = 1;
  cfg.num_users = static_cast<std::size_t>(state.range(0));
  cfg.num_days = 4;
  cfg.layout.num_buildings = 2;
  cfg.layout.aps_per_building = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::generate_campus_trace(cfg));
  }
}
BENCHMARK(BM_GenerateTrace)->Arg(300)->Arg(1200)->Unit(benchmark::kMillisecond);

void BM_ReplayLlf(benchmark::State& state) {
  const trace::GeneratedTrace& world = bench_world();
  for (auto _ : state) {
    core::LlfSelector llf;
    benchmark::DoNotOptimize(
        sim::replay(world.network, world.workload, llf));
  }
  state.counters["sessions/s"] = benchmark::Counter(
      static_cast<double>(world.workload.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplayLlf)->Unit(benchmark::kMillisecond);

void BM_ReplayLlfSharded(benchmark::State& state) {
  const trace::GeneratedTrace& world = bench_world();
  const core::LlfFactory llf;
  runtime::ReplayDriverConfig rc;
  rc.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    runtime::ReplayDriver driver(world.network, rc);
    benchmark::DoNotOptimize(driver.run(world.workload, llf));
  }
  state.counters["sessions/s"] = benchmark::Counter(
      static_cast<double>(world.workload.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplayLlfSharded)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_ReplayS3(benchmark::State& state) {
  const trace::GeneratedTrace& world = bench_world();
  core::EvaluationConfig eval;
  eval.train_days = 3;
  eval.test_days = 1;
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);
  const trace::Trace test = world.workload.slice(
      util::SimTime::from_days(3), util::SimTime::from_days(4));
  for (auto _ : state) {
    core::S3Selector s3(&world.network, &model, eval.s3);
    benchmark::DoNotOptimize(sim::replay(world.network, test, s3,
                                         eval.replay));
  }
  state.counters["sessions/s"] = benchmark::Counter(
      static_cast<double>(test.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplayS3)->Unit(benchmark::kMillisecond);

void BM_ExtractPairStats(benchmark::State& state) {
  const trace::GeneratedTrace& world = bench_world();
  core::LlfSelector llf;
  const sim::ReplayResult r = sim::replay(world.network, world.workload, llf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_pair_stats(r.assigned, {}));
  }
}
BENCHMARK(BM_ExtractPairStats)->Unit(benchmark::kMillisecond);

void BM_TrainSocialModel(benchmark::State& state) {
  const trace::GeneratedTrace& world = bench_world();
  core::LlfSelector llf;
  const sim::ReplayResult r = sim::replay(world.network, world.workload, llf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(social::SocialIndexModel::train(r.assigned, {}));
  }
}
BENCHMARK(BM_TrainSocialModel)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
