// Resilience table — S3 vs the deployed LLF under the canned fault
// plans (EXPERIMENTS.md "Resilience under faults").
//
// For each plan the test window is replayed with a deterministic
// FaultInjector wired into the runtime engines, and we report the
// Chiu–Jain balance index over the surviving assignments next to the
// fault ledger: degraded-time fraction (batches the policy served via
// its embedded LLF fallback), re-association retries, evictions, and
// abandoned sessions.
//
// Expected shape: S3 degrades to LLF-quality balance during a model
// outage and recovers after it; AP churn costs both policies a similar
// eviction bill but S3 keeps its balance lead on the surviving APs;
// the admission storm inflates retries without sinking either policy.

#include <optional>
#include <vector>

#include "bench_common.h"
#include "s3/analysis/balance.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

struct PlanCase {
  std::string name;
  fault::FaultPlan plan;
};

/// Mean normalized balance index over the scored slots of the test
/// window (same daytime/min-load filter as core::score_policy, without
/// the CI machinery this table does not print).
double scored_balance(const wlan::Network& net, const trace::Trace& assigned,
                      util::SimTime begin, util::SimTime end) {
  // Fault runs abandon sessions whose whole candidate set stayed down;
  // those carry kInvalidAp and serve no traffic, so score the rest.
  std::vector<trace::SessionRecord> served;
  served.reserve(assigned.size());
  for (const trace::SessionRecord& s : assigned.sessions()) {
    if (s.assigned()) served.push_back(s);
  }
  const trace::Trace survivors(assigned.num_users(), assigned.num_days(),
                               std::move(served));
  const analysis::ThroughputSeries series(net, survivors, begin, end);

  double sum = 0.0;
  std::size_t count = 0;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const double hour =
          static_cast<double>(series.slot_begin(slot).second_of_day()) /
          3600.0;
      if (hour < 8.0) continue;
      if (series.total_load(c, slot) < 5.0) continue;
      sum += analysis::normalized_balance_index(series.slot_load(c, slot));
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const wlan::Network& net = world.network;

  std::cerr << "training social model on the LLF-collected window...\n";
  const social::SocialIndexModel model =
      core::train_from_workload(net, world.workload, eval);

  const util::SimTime begin = util::SimTime::from_days(eval.train_days);
  const util::SimTime end =
      util::SimTime::from_days(eval.train_days + eval.test_days);
  const trace::Trace test = world.workload.slice(begin, end);

  std::vector<PlanCase> cases;
  cases.push_back({"none", fault::FaultPlan{}});
  cases.push_back({"ap-churn", fault::canned_ap_churn_plan(net, begin, end)});
  cases.push_back({"model-outage", fault::canned_model_outage_plan(begin, end)});
  cases.push_back(
      {"admission-storm", fault::canned_admission_storm_plan(begin, end)});

  core::SelectorSpec spec;
  spec.net = &net;
  spec.model = &model;
  spec.llf_metric = eval.baseline_metric;
  const std::vector<std::string> policies = {"llf", "s3"};

  std::cout << "# Resilience: balance index and fault ledger per canned "
               "fault plan\n";
  std::cout << "# degraded_frac = batches served by the embedded LLF "
               "fallback / total batches\n";
  util::TextTable table({"plan", "policy", "balance_index", "degraded_frac",
                         "evictions", "reassociations", "retries",
                         "abandoned", "admission_rejected"});
  for (const PlanCase& pc : cases) {
    std::optional<fault::FaultInjector> injector;
    if (!pc.plan.empty()) injector.emplace(pc.plan, args.seed);
    for (const std::string& policy : policies) {
      const std::unique_ptr<sim::SelectorFactory> factory =
          core::make_selector_factory(policy, spec);
      runtime::ReplayDriverConfig rc;
      rc.replay = eval.replay;
      rc.threads = args.threads;
      rc.injector = injector ? &*injector : nullptr;
      const sim::ReplayResult run =
          runtime::ReplayDriver(net, rc).run(test, *factory);
      const double balance = scored_balance(net, run.assigned, begin, end);
      const double degraded_frac =
          run.stats.num_batches > 0
              ? static_cast<double>(run.stats.degraded_batches) /
                    static_cast<double>(run.stats.num_batches)
              : 0.0;
      table.add_row({pc.name, policy, util::fmt(balance, 4),
                     util::fmt(degraded_frac, 4),
                     std::to_string(run.stats.fault_evictions),
                     std::to_string(run.stats.reassociations),
                     std::to_string(run.stats.retry_attempts),
                     std::to_string(run.stats.abandoned_sessions),
                     std::to_string(run.stats.admission_rejections)});
    }
  }
  std::cout << table.to_csv();
  bench::maybe_dump_metrics(args);
  return 0;
}
