// Fig. 11 — normalized balancing index of S3 as a function of how many
// days of history the social model learns from, for alpha in
// {0.1, 0.3, 0.5}.
//
// Paper shape: rises with more history and stabilizes at about 15 days
// — older information neither helps nor hurts.

#include "bench_common.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);

  std::cout << "# Fig. 11: S3 normalized balance index vs days of history, "
               "per alpha\n";
  std::cout << "# paper shape: increases then plateaus at ~15 days\n";

  const std::vector<int> days = {1, 3, 5, 8, 10, 13, 15, 18, 20};
  const std::vector<double> alphas = {0.1, 0.3, 0.5};

  util::TextTable table(
      {"history_days", "alpha_0.1", "alpha_0.3", "alpha_0.5"});
  for (int d : days) {
    std::vector<double> row = {static_cast<double>(d)};
    for (double alpha : alphas) {
      core::EvaluationConfig eval = bench::evaluation_config(args);
      eval.social.alpha = alpha;
      eval.social.history_days = d;
      const social::SocialIndexModel model =
          core::train_from_workload(world.network, world.workload, eval);
      core::S3Selector s3(&world.network, &model, eval.s3);
      const core::PolicyScore score =
          core::score_policy(world.network, world.workload, s3, eval);
      row.push_back(score.mean);
      std::cerr << "history=" << d << "d alpha=" << alpha << " -> "
                << score.mean << "\n";
    }
    table.add_numeric_row(row);
  }
  std::cout << table.to_csv();
  bench::maybe_dump_metrics(args);
  return 0;
}
