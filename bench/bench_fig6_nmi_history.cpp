// Fig. 6 — average NMI between the day-x application profile and the
// cumulative history profile over days x-1..x-n, as a function of n,
// for two different reference days.
//
// Paper shape: the curve rises with n and plateaus at n ~ 15 — about
// two weeks of history saturate the application profile.

#include "bench_common.h"
#include "s3/analysis/profiles.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const apps::ProfileStore profiles =
      analysis::build_profiles(world.workload);

  std::cout << "# Fig. 6: mean NMI vs history length n (cumulative traffic "
               "vectors)\n";
  std::cout << "# paper shape: rises, plateaus at n ~ 15; the two reference "
               "days coincide\n";

  const int max_n = 20;
  std::vector<analysis::NmiCurve> curves;
  // Two adjacent reference days, mirroring the paper's 7/26 and 7/27.
  for (std::int64_t day_x : {22, 23}) {
    analysis::NmiCurveConfig cfg;
    cfg.day_x = day_x;
    cfg.max_history_days = max_n;
    curves.push_back(analysis::nmi_vs_history(profiles, cfg));
  }

  util::TextTable table({"history_days", "nmi_day22", "nmi_day23"});
  for (int n = 1; n <= max_n; ++n) {
    table.add_numeric_row({static_cast<double>(n),
                           curves[0].mean_nmi[static_cast<std::size_t>(n - 1)],
                           curves[1].mean_nmi[static_cast<std::size_t>(n - 1)]});
  }
  std::cout << table.to_csv();
  std::cout << "# measured: users=" << curves[0].users_considered
            << "; nmi(1)=" << util::fmt(curves[0].mean_nmi[0], 3)
            << " nmi(15)=" << util::fmt(curves[0].mean_nmi[14], 3)
            << " nmi(20)=" << util::fmt(curves[0].mean_nmi[19], 3) << "\n";
  return 0;
}
