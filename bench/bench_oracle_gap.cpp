// Clairvoyant upper bound: how much of the achievable balance headroom
// does each online policy capture?
//
// The offline optimizer knows every arrival, departure and demand in
// advance and minimizes Σ load² (equivalently maximizes the mean
// balance index) subject only to the same candidate-set constraint the
// online policies face. "Gap closed" = (policy − LLF) / (oracle − LLF).

#include "bench_common.h"
#include "s3/core/oracle.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

double score_assigned(const wlan::Network& net, const trace::Trace& assigned,
                      const core::EvaluationConfig& eval) {
  analysis::ThroughputOptions opts;
  opts.slot_s = eval.eval_slot_s;
  const util::SimTime begin = util::SimTime::from_days(eval.train_days);
  const util::SimTime end =
      util::SimTime::from_days(eval.train_days + eval.test_days);
  const analysis::ThroughputSeries series(net, assigned, begin, end, opts);
  util::RunningStats beta;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const double hour = static_cast<double>(
                              series.slot_begin(slot).second_of_day()) /
                          3600.0;
      if (hour < eval.score_hours_begin || hour >= eval.score_hours_end) {
        continue;
      }
      if (series.total_load(c, slot) < eval.min_slot_load_mbps) continue;
      beta.add(analysis::normalized_balance_index(series.slot_load(c, slot)));
    }
  }
  return beta.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);

  const core::ComparisonResult cmp =
      core::compare_s3_vs_llf(world.network, world.workload, eval);

  const trace::Trace test = world.workload.slice(
      util::SimTime::from_days(eval.train_days),
      util::SimTime::from_days(eval.train_days + eval.test_days));
  core::OracleConfig oc;
  const core::OracleResult oracle =
      core::offline_upper_bound(world.network, test, oc);
  const double oracle_beta =
      score_assigned(world.network, oracle.assigned, eval);

  const double headroom = oracle_beta - cmp.llf.mean;
  auto closed = [&](double mean) {
    return headroom > 0.0 ? 100.0 * (mean - cmp.llf.mean) / headroom : 0.0;
  };

  std::cout << "# Clairvoyant dispersion upper bound vs online policies\n";
  std::cout << "# gap closed = (policy - LLF) / (oracle - LLF)\n";
  util::TextTable table({"scheme", "mean_beta", "gap_closed_pct"});
  table.add_row({"LLF (deployed)", util::fmt(cmp.llf.mean), "0.0"});
  table.add_row({"S3", util::fmt(cmp.s3.mean), util::fmt(closed(cmp.s3.mean), 1)});
  table.add_row({"offline oracle", util::fmt(oracle_beta), "100.0"});
  std::cout << table.to_csv();
  std::cout << "# oracle: " << oracle.moves << " moves over "
            << oracle.passes << " passes, objective "
            << util::fmt(oracle.initial_objective, 0) << " -> "
            << util::fmt(oracle.final_objective, 0) << "\n";
  return 0;
}
