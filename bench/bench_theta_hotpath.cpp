// θ hot-path microbench — the PairStore speedup claim, measured.
//
// Trains a model on a generated campus trace, then times the pair-stats
// lookup paths that dominate S3 selection:
//
//   * map_lookup        std::unordered_map<UserPair, Stats> (the old
//                       storage backend, rebuilt here for comparison)
//   * pairstore_lookup  social::PairStore::find (the flat table)
//   * theta_scalar      N separate theta(u, v) virtual calls per row
//   * theta_row         one batched theta_row(u, vs, out) per row
//
// Results go to BENCH_theta.json (ns/lookup, lookups/s, build seconds,
// structure bytes, VmRSS) so CI can archive the numbers and fail the
// build if the flat store ever loses to the map (--min-speedup, default
// 1.0 — the acceptance bar for this repo is 2.0).
//
// Extra flags on top of the common bench set:
//   --quick           small workload + short timing loops (CI smoke)
//   --out FILE        JSON destination (default BENCH_theta.json)
//   --min-speedup X   exit 1 if pairstore lookups/s < X * map lookups/s

#include <algorithm>
#include <chrono>
#include <fstream>
#include <random>
#include <unordered_map>

#include "bench_common.h"
#include "s3/social/social_index.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

/// Keeps `value` observable so timed loops are not dead-code-eliminated.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Resident set size in bytes (VmRSS from /proc/self/status; 0 when
/// the platform does not expose it).
std::size_t resident_bytes() {
  std::ifstream status("/proc/self/status");
  std::string word;
  while (status >> word) {
    if (word == "VmRSS:") {
      std::size_t kb = 0;
      status >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

struct LookupTiming {
  double ns_per_lookup = 0.0;
  double lookups_per_s = 0.0;
};

template <typename Fn>
LookupTiming time_lookups(std::size_t rounds, std::size_t per_round,
                          Fn&& round) {
  // One untimed warm-up round faults the structure into cache.
  round();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) round();
  const double elapsed = seconds_since(t0);
  const double total = static_cast<double>(rounds * per_round);
  LookupTiming t;
  t.ns_per_lookup = elapsed / total * 1e9;
  t.lookups_per_s = total / elapsed;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr util::ArgSpec kExtra[] = {
      {"quick", util::ArgKind::kFlag, "small workload, short loops"},
      {"out", util::ArgKind::kString, "JSON output (BENCH_theta.json)"},
      {"min-speedup", util::ArgKind::kReal,
       "fail if pairstore/map lookup ratio drops below this"},
  };
  const util::ParsedArgs raw = bench::parse_raw_args(argc, argv, kExtra);
  bench::BenchArgs args;
  args.scale = raw.get("scale", "small");
  args.seed = static_cast<std::uint64_t>(raw.num("seed", 42));
  args.threads = static_cast<unsigned>(raw.num("threads", 0));
  args.metrics = raw.has("metrics");
  const bool quick = raw.has("quick");
  const std::string out_path = raw.get("out", "BENCH_theta.json");
  const double min_speedup = raw.real("min-speedup", 0.0);

  trace::GeneratorConfig cfg = bench::generator_config(args);
  core::EvaluationConfig eval = bench::evaluation_config(args);
  if (quick) {
    cfg.num_users = 1200;
    cfg.num_days = 8;
    cfg.layout.num_buildings = 4;
    eval.train_days = 7;
    eval.test_days = 1;
  }
  std::cerr << "generating workload: " << cfg.num_users << " users, "
            << cfg.layout.num_buildings << " buildings, " << cfg.num_days
            << " days (seed " << cfg.seed << ")\n";
  const trace::GeneratedTrace world = trace::generate_campus_trace(cfg);
  const trace::Trace collected =
      bench::collected_trace(world.network, world.workload, eval);
  const auto t_train = std::chrono::steady_clock::now();
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);
  const double train_s = seconds_since(t_train);
  const std::size_t num_pairs = model.pair_stats().size();
  std::cerr << "trained: " << num_pairs << " pairs, "
            << model.typing().num_types << " types ("
            << util::fmt(train_s, 2) << " s)\n";

  // ---- Build-time comparison -----------------------------------------
  const std::vector<social::PairStore::Entry> entries =
      model.pair_stats().sorted_entries();

  const auto t_map = std::chrono::steady_clock::now();
  analysis::PairStatsMap map;
  map.reserve(entries.size());
  for (const social::PairStore::Entry& e : entries) map[e.pair] = e.stats;
  const double map_build_s = seconds_since(t_map);

  const auto t_flat = std::chrono::steady_clock::now();
  social::PairStore flat = social::PairStore::from_map(map);
  const double flat_build_s = seconds_since(t_flat);

  // ---- Lookup workload: every recorded pair + as many absent pairs ---
  std::mt19937_64 rng(args.seed);
  std::vector<UserPair> queries;
  queries.reserve(entries.size() * 2);
  for (const social::PairStore::Entry& e : entries) queries.push_back(e.pair);
  std::uniform_int_distribution<UserId> pick(
      0, static_cast<UserId>(cfg.num_users - 1));
  while (queries.size() < entries.size() * 2) {
    const UserId a = pick(rng);
    const UserId b = pick(rng);
    if (a == b) continue;
    const UserPair p(a, b);
    if (map.find(p) == map.end()) queries.push_back(p);
  }
  std::shuffle(queries.begin(), queries.end(), rng);

  const std::size_t target_lookups = quick ? 2'000'000 : 20'000'000;
  const std::size_t rounds =
      std::max<std::size_t>(1, target_lookups / queries.size());

  const LookupTiming map_t =
      time_lookups(rounds, queries.size(), [&]() {
        std::uint64_t sum = 0;
        for (const UserPair& p : queries) {
          const auto it = map.find(p);
          if (it != map.end()) sum += it->second.encounters;
        }
        do_not_optimize(sum);
      });
  const LookupTiming flat_t =
      time_lookups(rounds, queries.size(), [&]() {
        std::uint64_t sum = 0;
        for (const UserPair& p : queries) {
          if (const social::PairStore::Stats* s = flat.find(p)) {
            sum += s->encounters;
          }
        }
        do_not_optimize(sum);
      });

  // ---- θ row kernel: N scalar virtual calls vs one batched call ------
  const std::size_t row_len = std::min<std::size_t>(256, cfg.num_users - 1);
  const std::size_t num_rows = quick ? 2000 : 20000;
  std::vector<UserId> row_users(row_len);
  std::vector<double> row_out(row_len);
  std::vector<UserId> row_sources(num_rows);
  for (UserId& u : row_sources) u = pick(rng);
  for (UserId& v : row_users) v = pick(rng);
  const social::ThetaProvider& provider = model;

  const LookupTiming scalar_t =
      time_lookups(1, num_rows * row_len, [&]() {
        double sum = 0.0;
        for (const UserId u : row_sources) {
          for (std::size_t i = 0; i < row_len; ++i) {
            sum += provider.theta(u, row_users[i]);
          }
        }
        do_not_optimize(sum);
      });
  const LookupTiming row_t =
      time_lookups(1, num_rows * row_len, [&]() {
        double sum = 0.0;
        for (const UserId u : row_sources) {
          provider.theta_row(u, row_users, row_out);
          for (const double th : row_out) sum += th;
        }
        do_not_optimize(sum);
      });

  // Bit-identity spot check: the batched kernel must agree exactly.
  for (const UserId u : row_sources) {
    provider.theta_row(u, row_users, row_out);
    for (std::size_t i = 0; i < row_len; ++i) {
      if (row_out[i] != provider.theta(u, row_users[i])) {
        std::cerr << "theta_row mismatch at u=" << u << " v=" << row_users[i]
                  << "\n";
        return 1;
      }
    }
  }

  const double lookup_speedup =
      map_t.lookups_per_s > 0 ? flat_t.lookups_per_s / map_t.lookups_per_s
                              : 0.0;
  const double row_speedup =
      row_t.lookups_per_s > 0 && scalar_t.lookups_per_s > 0
          ? row_t.lookups_per_s / scalar_t.lookups_per_s
          : 0.0;
  const std::size_t flat_bytes = flat.capacity() * 24;  // 8B key + 12B
                                                        // stats, padded
  // Node-based estimate: bucket array + one heap node per entry
  // (key + stats + next pointer + allocator overhead).
  const std::size_t map_bytes_estimate =
      map.bucket_count() * sizeof(void*) + map.size() * 48;

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"theta_hotpath\",\n"
       << "  \"scale\": \"" << args.scale << "\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"num_users\": " << cfg.num_users << ",\n"
       << "  \"num_pairs\": " << num_pairs << ",\n"
       << "  \"num_queries\": " << queries.size() << ",\n"
       << "  \"train_seconds\": " << util::fmt(train_s, 4) << ",\n"
       << "  \"map_build_seconds\": " << util::fmt(map_build_s, 6) << ",\n"
       << "  \"pairstore_build_seconds\": " << util::fmt(flat_build_s, 6)
       << ",\n"
       << "  \"map_ns_per_lookup\": " << util::fmt(map_t.ns_per_lookup, 2)
       << ",\n"
       << "  \"map_lookups_per_s\": " << util::fmt(map_t.lookups_per_s, 0)
       << ",\n"
       << "  \"pairstore_ns_per_lookup\": "
       << util::fmt(flat_t.ns_per_lookup, 2) << ",\n"
       << "  \"pairstore_lookups_per_s\": "
       << util::fmt(flat_t.lookups_per_s, 0) << ",\n"
       << "  \"lookup_speedup\": " << util::fmt(lookup_speedup, 3) << ",\n"
       << "  \"theta_scalar_ns\": " << util::fmt(scalar_t.ns_per_lookup, 2)
       << ",\n"
       << "  \"theta_row_ns\": " << util::fmt(row_t.ns_per_lookup, 2) << ",\n"
       << "  \"theta_row_speedup\": " << util::fmt(row_speedup, 3) << ",\n"
       << "  \"pairstore_bytes\": " << flat_bytes << ",\n"
       << "  \"map_bytes_estimate\": " << map_bytes_estimate << ",\n"
       << "  \"rss_bytes\": " << resident_bytes() << "\n"
       << "}\n";
  std::cout << "map:       " << util::fmt(map_t.ns_per_lookup, 2)
            << " ns/lookup (" << util::fmt(map_t.lookups_per_s / 1e6, 1)
            << " M/s)\n"
            << "pairstore: " << util::fmt(flat_t.ns_per_lookup, 2)
            << " ns/lookup (" << util::fmt(flat_t.lookups_per_s / 1e6, 1)
            << " M/s)  speedup " << util::fmt(lookup_speedup, 2) << "x\n"
            << "theta:     scalar " << util::fmt(scalar_t.ns_per_lookup, 2)
            << " ns  row " << util::fmt(row_t.ns_per_lookup, 2)
            << " ns  speedup " << util::fmt(row_speedup, 2) << "x\n"
            << "wrote " << out_path << "\n";
  bench::maybe_dump_metrics(args);

  if (min_speedup > 0.0 && lookup_speedup < min_speedup) {
    std::cerr << "FAIL: pairstore speedup " << util::fmt(lookup_speedup, 3)
              << " < required " << util::fmt(min_speedup, 3) << "\n";
    return 1;
  }
  return 0;
}
