// Fig. 10 — normalized balancing index of S3 as a function of the
// co-leaving extraction window (1-20 minutes), for alpha in
// {0.1, 0.3, 0.5}.
//
// Paper shape: rises to a maximum at a 5-minute window, then falls —
// short windows starve the social model of events, long windows pollute
// it with fake relationships. alpha = 0.3 with 5 minutes is the chosen
// configuration.

#include "bench_common.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);

  std::cout << "# Fig. 10: S3 normalized balance index vs co-leaving "
               "extraction window, per alpha\n";
  std::cout << "# paper shape: maximum at 5 minutes for every alpha\n";

  const std::vector<int> windows_min = {1, 5, 10, 15, 20};
  const std::vector<double> alphas = {0.1, 0.3, 0.5};

  util::TextTable table(
      {"window_min", "alpha_0.1", "alpha_0.3", "alpha_0.5"});
  std::vector<std::vector<double>> results(
      windows_min.size(), std::vector<double>(alphas.size(), 0.0));

  for (std::size_t w = 0; w < windows_min.size(); ++w) {
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      core::EvaluationConfig eval = bench::evaluation_config(args);
      eval.social.events.co_leave_window =
          util::SimTime::from_minutes(windows_min[w]);
      eval.social.alpha = alphas[a];
      const social::SocialIndexModel model =
          core::train_from_workload(world.network, world.workload, eval);
      core::S3Selector s3(&world.network, &model, eval.s3);
      const core::PolicyScore score =
          core::score_policy(world.network, world.workload, s3, eval);
      results[w][a] = score.mean;
      std::cerr << "window=" << windows_min[w] << "min alpha=" << alphas[a]
                << " -> " << score.mean << "\n";
    }
  }
  for (std::size_t w = 0; w < windows_min.size(); ++w) {
    table.add_numeric_row({static_cast<double>(windows_min[w]),
                           results[w][0], results[w][1], results[w][2]});
  }
  std::cout << table.to_csv();

  for (std::size_t a = 0; a < alphas.size(); ++a) {
    std::size_t best = 0;
    for (std::size_t w = 1; w < windows_min.size(); ++w) {
      if (results[w][a] > results[best][a]) best = w;
    }
    std::cout << "# measured: alpha=" << alphas[a]
              << " rise 1->5 min = +"
              << util::fmt(results[1][a] - results[0][a], 4)
              << ", best window = " << windows_min[best]
              << " min (paper: 5; our curve plateaus past 5 instead of "
                 "falling — see EXPERIMENTS.md)\n";
  }
  bench::maybe_dump_metrics(args);
  return 0;
}
