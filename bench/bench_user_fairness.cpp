// §I's first complaint, quantified: "load imbalance results in
// sub-optimal network throughput and unfair bandwidth allocation among
// users". For each policy we compute, over the test days, the fraction
// of each user's offered traffic that an overloaded AP actually served
// (proportional sharing at capacity) and Jain's fairness index across
// users.
//
// Expected shape: better balance -> fewer overloaded APs -> higher
// served fraction and higher fairness. S3 >= LLF(count) on both.

#include "bench_common.h"
#include "s3/analysis/fairness.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);

  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  const trace::Trace test = world.workload.slice(
      util::SimTime::from_days(eval.train_days),
      util::SimTime::from_days(eval.train_days + eval.test_days));
  const util::SimTime begin = util::SimTime::from_days(eval.train_days);
  const util::SimTime end =
      util::SimTime::from_days(eval.train_days + eval.test_days);

  util::TextTable table({"policy", "served_fraction", "jain_index",
                         "throttled_pct", "served_w_contention"});
  auto run = [&](sim::ApSelector& policy) {
    const sim::ReplayResult r =
        sim::replay(world.network, test, policy, eval.replay);
    const analysis::FairnessReport f =
        analysis::evaluate_fairness(world.network, r.assigned, begin, end);
    analysis::FairnessOptions contended;
    contended.contention = wlan::ContentionModel{};
    const analysis::FairnessReport fc = analysis::evaluate_fairness(
        world.network, r.assigned, begin, end, contended);
    table.add_row({std::string(policy.name()),
                   util::fmt(f.mean_served_fraction),
                   util::fmt(f.jain_index),
                   util::fmt(100.0 * f.throttled_slot_fraction, 2),
                   util::fmt(fc.mean_served_fraction)});
  };

  core::LlfSelector count_llf(core::LoadMetric::kStations);
  run(count_llf);
  core::StrongestRssiSelector rssi;
  run(rssi);
  core::S3Selector s3(&world.network, &model, eval.s3);
  run(s3);

  std::cout << "# User service quality over the test days (SI's "
               "throughput/fairness complaint)\n";
  std::cout << "# expected shape: better balance -> higher served fraction "
               "and Jain index; S3 >= LLF >> RSSI\n";
  std::cout << table.to_csv();
  return 0;
}
