// Ablations over S3's design choices (DESIGN.md §5) plus extra
// baselines. Not a paper figure; quantifies what each moving part of
// Algorithm 1 contributes on the same workload:
//
//   * top-30 % filter (vs pure greedy min-cost, vs balance-only)
//   * theta edge threshold
//   * maximum-clique weight tie-break
//   * controller dispatch window (batching)
//   * strongest-RSSI / random / demand-LLF baselines

#include "bench_common.h"
#include "s3/core/online_s3.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

core::PolicyScore run_s3(const trace::GeneratedTrace& world,
                         core::EvaluationConfig eval) {
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);
  core::S3Selector s3(&world.network, &model, eval.s3);
  return core::score_policy(world.network, world.workload, s3, eval);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig base_eval = bench::evaluation_config(args);

  util::TextTable table({"variant", "mean_beta", "leave_peak", "ci95"});
  auto add = [&](const std::string& name, const core::PolicyScore& s) {
    table.add_row({name, util::fmt(s.mean), util::fmt(s.leave_peak_mean),
                   util::fmt(s.ci95)});
    std::cerr << name << " -> " << s.mean << "\n";
  };

  // Baselines.
  {
    core::EvaluationConfig eval = base_eval;
    core::LlfSelector count_llf(core::LoadMetric::kStations);
    add("LLF(count) [deployed]",
        core::score_policy(world.network, world.workload, count_llf, eval));
    core::LlfSelector demand_llf(core::LoadMetric::kDemand);
    add("LLF(demand oracle)",
        core::score_policy(world.network, world.workload, demand_llf, eval));
    core::StrongestRssiSelector rssi;
    add("strongest-RSSI",
        core::score_policy(world.network, world.workload, rssi, eval));
    core::RandomSelector rnd(args.seed);
    add("random",
        core::score_policy(world.network, world.workload, rnd, eval));
  }

  // S3 default.
  add("S3 (default)", run_s3(world, base_eval));

  // Top-fraction filter.
  for (double f : {0.1, 1.0}) {
    core::EvaluationConfig eval = base_eval;
    eval.s3.top_fraction = f;
    add("S3 top_fraction=" + util::fmt(f, 1), run_s3(world, eval));
  }

  // Theta threshold.
  for (double th : {0.1, 0.5}) {
    core::EvaluationConfig eval = base_eval;
    eval.s3.theta_threshold = th;
    add("S3 theta_threshold=" + util::fmt(th, 1), run_s3(world, eval));
  }

  // Literal §IV-B cost: C sums theta over all co-located users (the
  // type prior becomes a type-diversity force).
  {
    core::EvaluationConfig eval = base_eval;
    eval.s3.count_weak_ties_in_cost = true;
    add("S3 literal-C (weak ties counted)", run_s3(world, eval));
  }

  // Demand-aware fallback: singletons use demand-LLF instead of the
  // deployed count-LLF. Bigger absolute gains, but they come from
  // demand estimation rather than sociality (see EXPERIMENTS.md).
  {
    core::EvaluationConfig eval = base_eval;
    eval.s3.llf_metric = core::LoadMetric::kDemand;
    add("S3 demand-aware fallback", run_s3(world, eval));
  }

  // Clique weight tie-break off.
  {
    core::EvaluationConfig eval = base_eval;
    eval.s3.clique.weight_tie_break = false;
    add("S3 no-weight-tie-break", run_s3(world, eval));
  }

  // Bandwidth constraint off.
  {
    core::EvaluationConfig eval = base_eval;
    eval.s3.respect_bandwidth = false;
    add("S3 no-bandwidth-constraint", run_s3(world, eval));
  }

  // Online continuous learning (paper §VI future work): trained on
  // only the first week, the live model absorbs the remaining weeks'
  // events during replay.
  {
    core::EvaluationConfig eval = base_eval;
    eval.train_days = 7;  // deliberately starved
    const social::SocialIndexModel starved =
        core::train_from_workload(world.network, world.workload, eval);
    core::EvaluationConfig full = base_eval;  // test days unchanged
    {
      core::S3Selector frozen(&world.network, &starved, full.s3);
      add("S3 frozen, 7d training",
          core::score_policy(world.network, world.workload, frozen, full));
    }
    {
      core::OnlineS3Config ocfg;
      ocfg.s3 = full.s3;
      core::OnlineS3Selector online(&world.network, &starved, ocfg);
      // Replay days 7..21 first so the online model catches up, then
      // score the standard test window.
      const trace::Trace warmup = world.workload.slice(
          util::SimTime::from_days(7), util::SimTime::from_days(21));
      (void)sim::replay(world.network, warmup, online, full.replay);
      add("S3 online, 7d training + live",
          core::score_policy(world.network, world.workload, online, full));
    }
  }

  // Dispatch window.
  for (std::int64_t w : {0L, 60L, 300L}) {
    core::EvaluationConfig eval = base_eval;
    eval.replay.dispatch_window_s = w;
    add("S3 window=" + std::to_string(w) + "s", run_s3(world, eval));
  }

  std::cout << "# S3 design-choice ablations (same workload, same split)\n";
  std::cout << table.to_csv();
  bench::maybe_dump_metrics(args);
  return 0;
}
