// Live-pipeline throughput bench — the concurrency claim, measured.
//
// Trains a model on a generated campus, then hammers one shared
// ServePipeline from T worker threads. Every worker keeps a sliding
// window of active sessions in its own id space: each iteration places
// one arrival and departs its oldest session once the window is full,
// so the run continuously exercises placement, the load tracker, the
// degradation path and the live encounter/co-leave writes into the
// shared ConcurrentPairStore — while every S3 placement reads θ rows
// from the same store lock-free.
//
// For each thread count (default 1, 8, 32) the bench reports p50 /
// p95 / p99 ns per placement (measured per call, merged across
// workers) and aggregate placements/s, to BENCH_serve.json. The
// scaling ratio placements/s(8) ÷ placements/s(1) is the headline:
// it can only materialize on a machine that has the cores, so the
// JSON also records hardware_concurrency — read single-core numbers
// accordingly.
//
// Extra flags on top of the common bench set:
//   --quick           small workload + short loops (CI smoke)
//   --out FILE        JSON destination (default BENCH_serve.json)
//   --ops N           placements per worker thread (default 20000,
//                     quick 4000)
//   --min-scaling X   exit 1 if placements/s at 8 threads is below
//                     X * placements/s at 1 thread (skipped — with a
//                     warning — when the host has fewer than 8 cores)

#include <algorithm>
#include <chrono>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "s3/serve/serve_pipeline.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Exact quantile over the merged per-placement samples (ns). The
/// bench owns every sample, so no histogram approximation is needed.
double quantile_ns(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

struct RunResult {
  unsigned threads = 0;
  std::uint64_t placements = 0;
  double seconds = 0.0;
  double placements_per_s = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

/// One full pipeline run at `threads` workers. A fresh pipeline per
/// run keeps the live store comparable across thread counts.
RunResult run_at(const wlan::Network& net,
                 const social::SocialIndexModel& model, std::size_t num_users,
                 unsigned threads, std::size_t ops_per_thread,
                 std::uint64_t seed) {
  serve::ServeConfig cfg;
  cfg.policy = "s3";
  serve::ServePipeline pipeline(&net, &model, cfg);

  constexpr std::size_t kWindow = 32;  // active sessions per worker
  std::vector<std::vector<double>> samples(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + t);
      std::uniform_int_distribution<UserId> pick_user(
          0, static_cast<UserId>(num_users - 1));
      std::uniform_int_distribution<BuildingId> pick_building(
          0, static_cast<BuildingId>(net.num_buildings() - 1));
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      std::vector<double>& lat = samples[t];
      lat.reserve(ops_per_thread);
      std::vector<std::uint64_t> window;
      window.reserve(kWindow);
      std::uint64_t next_id = (static_cast<std::uint64_t>(t) + 1) << 32;
      // Sim time marches one minute per op so sliding-window sessions
      // overlap long enough to register as encounters.
      std::int64_t now_s = 0;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const BuildingId b = pick_building(rng);
        const wlan::BuildingConfig& bc = net.building(b);
        serve::PlaceRequest req;
        req.id = next_id++;
        req.user = pick_user(rng);
        req.building = b;
        req.pos = {bc.origin.x + unit(rng) * bc.width_m,
                   bc.origin.y + unit(rng) * bc.depth_m};
        req.when = util::SimTime::from_seconds(now_s);
        req.demand_mbps = 1.0 + unit(rng);
        const auto p0 = std::chrono::steady_clock::now();
        const serve::PlaceResult r = pipeline.place(req);
        lat.push_back(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - p0)
                .count()));
        if (r.placed) window.push_back(req.id);
        if (window.size() >= kWindow) {
          pipeline.depart(window.front(),
                          util::SimTime::from_seconds(now_s));
          window.erase(window.begin());
        }
        now_s += 60;
      }
      for (const std::uint64_t id : window) {
        pipeline.depart(id, util::SimTime::from_seconds(now_s));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double elapsed = seconds_since(t0);

  std::vector<double> merged;
  for (std::vector<double>& s : samples) {
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::sort(merged.begin(), merged.end());

  RunResult r;
  r.threads = threads;
  r.placements = pipeline.stats().placements;
  r.seconds = elapsed;
  r.placements_per_s =
      elapsed > 0 ? static_cast<double>(r.placements) / elapsed : 0.0;
  r.p50_ns = quantile_ns(merged, 50.0);
  r.p95_ns = quantile_ns(merged, 95.0);
  r.p99_ns = quantile_ns(merged, 99.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr util::ArgSpec kExtra[] = {
      {"quick", util::ArgKind::kFlag, "small workload, short loops"},
      {"out", util::ArgKind::kString, "JSON output (BENCH_serve.json)"},
      {"ops", util::ArgKind::kInt, "placements per worker thread"},
      {"min-scaling", util::ArgKind::kReal,
       "fail if tput(8 threads)/tput(1 thread) drops below this"},
  };
  const util::ParsedArgs raw = bench::parse_raw_args(argc, argv, kExtra);
  bench::BenchArgs args;
  args.scale = raw.get("scale", "small");
  args.seed = static_cast<std::uint64_t>(raw.num("seed", 42));
  args.metrics = raw.has("metrics");
  const bool quick = raw.has("quick");
  const std::string out_path = raw.get("out", "BENCH_serve.json");
  const std::size_t ops = static_cast<std::size_t>(
      raw.num("ops", quick ? 4000 : 20000));
  const double min_scaling = raw.real("min-scaling", 0.0);
  const unsigned hw = std::thread::hardware_concurrency();

  trace::GeneratorConfig cfg = bench::generator_config(args);
  core::EvaluationConfig eval = bench::evaluation_config(args);
  if (quick) {
    cfg.num_users = 1200;
    cfg.num_days = 8;
    cfg.layout.num_buildings = 4;
    eval.train_days = 7;
    eval.test_days = 1;
  }
  std::cerr << "generating workload: " << cfg.num_users << " users, "
            << cfg.layout.num_buildings << " buildings, " << cfg.num_days
            << " days (seed " << cfg.seed << ")\n";
  const trace::GeneratedTrace world = trace::generate_campus_trace(cfg);
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);
  std::cerr << "trained: " << model.pair_stats().size() << " pairs ("
            << hw << " hardware threads)\n";

  const unsigned sweep[] = {1, 8, 32};
  std::vector<RunResult> results;
  for (const unsigned t : sweep) {
    RunResult r = run_at(world.network, model, cfg.num_users, t, ops,
                         args.seed);
    std::cout << t << " threads: "
              << util::fmt(r.placements_per_s / 1e3, 1) << " K placements/s"
              << "  p50 " << util::fmt(r.p50_ns, 0) << " ns  p95 "
              << util::fmt(r.p95_ns, 0) << " ns  p99 "
              << util::fmt(r.p99_ns, 0) << " ns (" << r.placements
              << " placements)\n";
    results.push_back(r);
  }
  const double scaling_8x =
      results[0].placements_per_s > 0
          ? results[1].placements_per_s / results[0].placements_per_s
          : 0.0;

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"scale\": \"" << args.scale << "\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"num_users\": " << cfg.num_users << ",\n"
       << "  \"ops_per_thread\": " << ops << ",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"threads\": " << r.threads
         << ", \"placements\": " << r.placements
         << ", \"seconds\": " << util::fmt(r.seconds, 4)
         << ", \"placements_per_s\": " << util::fmt(r.placements_per_s, 0)
         << ", \"p50_ns\": " << util::fmt(r.p50_ns, 0)
         << ", \"p95_ns\": " << util::fmt(r.p95_ns, 0)
         << ", \"p99_ns\": " << util::fmt(r.p99_ns, 0) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"scaling_8_over_1\": " << util::fmt(scaling_8x, 3) << "\n"
       << "}\n";
  std::cout << "scaling 8/1 threads: " << util::fmt(scaling_8x, 2) << "x\n"
            << "wrote " << out_path << "\n";
  bench::maybe_dump_metrics(args);

  if (min_scaling > 0.0) {
    if (hw < 8) {
      std::cerr << "WARN: --min-scaling skipped, host has only " << hw
                << " hardware threads\n";
    } else if (scaling_8x < min_scaling) {
      std::cerr << "FAIL: 8-thread scaling " << util::fmt(scaling_8x, 3)
                << " < required " << util::fmt(min_scaling, 3) << "\n";
      return 1;
    }
  }
  return 0;
}
