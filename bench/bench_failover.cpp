// Failover bench — what a controller crash costs at 0, 1 and 2 backup
// replicas, under the canned controller-churn schedule.
//
// The test window is replayed with S3 (trained on the LLF-collected
// window) three times through the replicated driver, varying only the
// backup count, next to an outage-free baseline. For each run we report
// the scored balance index β′ and its degradation vs the baseline, the
// sessions dropped while a domain ran headless, re-associations, and
// the replication layer's catch-up bill (records replayed, wall-clock
// latency per failover).
//
// Expected shape: with >= 1 backup the failover is lossless — β′
// matches the baseline to the last digit and nothing is dropped; with
// 0 backups every crash window drops its in-flight batch and arrivals,
// and β′ dips in proportion.
//
// Two further sections exercise the snapshot machinery:
//   - catch-up vs log length: whole-controller losses force a neighbor
//     domain to adopt from scratch. Without snapshots the adopter
//     replays the full log, so its catch-up bill grows with the window;
//     with periodic snapshots it stays bounded by the snapshot interval
//     no matter how long the run.
//   - truncation: with snapshots on and --truncate semantics enabled,
//     the live log stays a bounded suffix while the run is still
//     bit-identical to the fault-free baseline.
//
// Flags beyond the common set:
//   --quick       shrink the world (CI-sized run)
//   --out FILE    JSON destination (default BENCH_failover.json)

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "s3/analysis/balance.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/repl/replicated_driver.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

/// Mean normalized balance index over the scored slots of the test
/// window (daytime, minimum-load filtered; unassigned sessions are
/// dropped — they serve no traffic).
double scored_balance(const wlan::Network& net, const trace::Trace& assigned,
                      util::SimTime begin, util::SimTime end) {
  std::vector<trace::SessionRecord> served;
  served.reserve(assigned.size());
  for (const trace::SessionRecord& s : assigned.sessions()) {
    if (s.assigned()) served.push_back(s);
  }
  const trace::Trace survivors(assigned.num_users(), assigned.num_days(),
                               std::move(served));
  const analysis::ThroughputSeries series(net, survivors, begin, end);

  double sum = 0.0;
  std::size_t count = 0;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const double hour =
          static_cast<double>(series.slot_begin(slot).second_of_day()) /
          3600.0;
      if (hour < 8.0) continue;
      if (series.total_load(c, slot) < 5.0) continue;
      sum += analysis::normalized_balance_index(series.slot_load(c, slot));
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

struct ReplicaRun {
  std::size_t backups = 0;
  double balance = 0.0;
  double degradation = 0.0;  ///< baseline β′ − this run's β′
  std::size_t dropped = 0;
  std::size_t reassociations = 0;
  std::size_t failovers = 0;
  std::size_t headless_windows = 0;
  std::uint64_t log_records = 0;
  std::uint64_t catchup_records = 0;
  double catchup_ms_mean = 0.0;  ///< per failover + rejoin
  bool lossless = false;         ///< assignment identical to baseline
};

/// One row of the catch-up-vs-log-length sweep: the same loss schedule
/// replayed over a growing window, with and without snapshots.
struct CatchupRow {
  int days = 0;
  std::uint64_t log_records = 0;          ///< snapshot-free run's log
  std::uint64_t max_catchup_plain = 0;    ///< snapshot_every = 0
  std::uint64_t max_catchup_snapshot = 0; ///< bounded by the interval
};

bool same_assignment(const trace::Trace& a, const trace::Trace& b) {
  return a.sessions().size() == b.sessions().size() &&
         std::equal(a.sessions().begin(), a.sessions().end(),
                    b.sessions().begin(),
                    [](const trace::SessionRecord& x,
                       const trace::SessionRecord& y) { return x.ap == y.ap; });
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr util::ArgSpec kExtra[] = {
      {"quick", util::ArgKind::kFlag, "CI-sized run"},
      {"out", util::ArgKind::kString, "JSON output (BENCH_failover.json)"},
  };
  const util::ParsedArgs raw = bench::parse_raw_args(argc, argv, kExtra);
  bench::BenchArgs args;
  args.scale = raw.get("scale", args.scale);
  args.seed = static_cast<std::uint64_t>(raw.num("seed", 42));
  args.threads = static_cast<unsigned>(raw.num("threads", 0));
  args.metrics = raw.has("metrics");
  const bool quick = raw.has("quick");
  const std::string out_path = raw.get("out", "BENCH_failover.json");

  trace::GeneratorConfig cfg = bench::generator_config(args);
  if (quick) {
    cfg.num_users = 600;
    cfg.layout.aps_per_building = 6;
  }
  std::cerr << "generating workload: " << cfg.num_users << " users, "
            << cfg.layout.num_buildings << " buildings (seed " << cfg.seed
            << ")\n";
  const trace::GeneratedTrace world = trace::generate_campus_trace(cfg);
  const wlan::Network& net = world.network;
  const core::EvaluationConfig eval = bench::evaluation_config(args);

  std::cerr << "training social model on the LLF-collected window...\n";
  const social::SocialIndexModel model =
      core::train_from_workload(net, world.workload, eval);

  const util::SimTime begin = util::SimTime::from_days(eval.train_days);
  const util::SimTime end =
      util::SimTime::from_days(eval.train_days + eval.test_days);
  const trace::Trace test = world.workload.slice(begin, end);

  const fault::FaultPlan plan =
      fault::canned_controller_churn_plan(net, begin, end);
  const fault::FaultInjector injector(plan, args.seed);

  core::SelectorSpec spec;
  spec.net = &net;
  spec.model = &model;
  spec.llf_metric = eval.baseline_metric;
  const std::unique_ptr<sim::SelectorFactory> factory =
      core::make_selector_factory("s3", spec);

  // Outage-free baseline through the plain driver.
  runtime::ReplayDriverConfig base_rc;
  base_rc.replay = eval.replay;
  base_rc.threads = args.threads;
  const sim::ReplayResult baseline =
      runtime::ReplayDriver(net, base_rc).run(test, *factory);
  const double base_beta = scored_balance(net, baseline.assigned, begin, end);
  std::cerr << "baseline beta' " << util::fmt(base_beta, 4) << "\n";

  std::vector<ReplicaRun> runs;
  for (const std::size_t backups : {0UL, 1UL, 2UL}) {
    repl::ReplicatedDriverConfig rc;
    rc.replay = eval.replay;
    rc.threads = args.threads;
    rc.injector = &injector;
    rc.repl.backups = backups;
    const repl::ReplicatedReplayResult rr =
        repl::ReplicatedReplayDriver(net, rc).run(test, *factory);
    ReplicaRun run;
    run.backups = backups;
    run.balance = scored_balance(net, rr.result.assigned, begin, end);
    run.degradation = base_beta - run.balance;
    run.dropped = rr.result.stats.dropped_sessions;
    run.reassociations = rr.result.stats.reassociations;
    run.failovers = rr.repl.failovers;
    run.headless_windows = rr.repl.headless_windows;
    run.log_records = rr.repl.log_records;
    run.catchup_records = rr.repl.catchup_records;
    const std::size_t catchups = rr.repl.failovers + rr.repl.rejoins;
    run.catchup_ms_mean =
        catchups > 0 ? static_cast<double>(rr.repl.catchup_wall_ns) / 1e6 /
                           static_cast<double>(catchups)
                     : 0.0;
    run.lossless = same_assignment(rr.result.assigned, baseline.assigned);
    runs.push_back(run);
    std::cerr << "replicas " << backups << ": beta' "
              << util::fmt(run.balance, 4) << " dropped " << run.dropped
              << (run.lossless ? " (lossless)" : "") << "\n";
  }

  // --- Catch-up vs log length -------------------------------------
  // Whole-controller losses over a growing slice of the test window.
  // The adopting neighbor re-seeds from scratch, so without snapshots
  // its catch-up replays the entire log to date; with snapshots the
  // bill is capped by the interval regardless of window length.
  const std::uint64_t snap_every = quick ? 150 : 400;
  std::vector<CatchupRow> scaling;
  for (int d = 1; d <= eval.test_days; ++d) {
    const util::SimTime slice_end = util::SimTime::from_days(
        static_cast<std::int64_t>(eval.train_days) + d);
    const trace::Trace window = world.workload.slice(begin, slice_end);
    const fault::FaultPlan loss_plan =
        fault::canned_controller_loss_plan(net, begin, slice_end);
    const fault::FaultInjector loss_injector(loss_plan, args.seed);
    CatchupRow row;
    row.days = d;
    for (const bool snapshots : {false, true}) {
      repl::ReplicatedDriverConfig rc;
      rc.replay = eval.replay;
      rc.threads = args.threads;
      rc.injector = &loss_injector;
      rc.repl.backups = 1;
      rc.repl.snapshot_every = snapshots ? snap_every : 0;
      const repl::ReplicatedReplayResult rr =
          repl::ReplicatedReplayDriver(net, rc).run(window, *factory);
      if (snapshots) {
        row.max_catchup_snapshot = rr.repl.max_catchup_records;
      } else {
        row.max_catchup_plain = rr.repl.max_catchup_records;
        row.log_records = rr.repl.log_records;
      }
    }
    scaling.push_back(row);
    std::cerr << "catch-up @ " << d << "d: log " << row.log_records
              << ", max catch-up " << row.max_catchup_plain
              << " plain vs " << row.max_catchup_snapshot << " snapshotted\n";
  }

  // --- Truncation --------------------------------------------------
  // Same churn schedule as the headline table, snapshots + truncation
  // on: the live log must shrink to a bounded suffix while the final
  // assignment stays bit-identical to the fault-free baseline.
  repl::ReplicatedDriverConfig trunc_rc;
  trunc_rc.replay = eval.replay;
  trunc_rc.threads = args.threads;
  trunc_rc.injector = &injector;
  trunc_rc.repl.backups = 2;
  trunc_rc.repl.snapshot_every = snap_every;
  trunc_rc.repl.truncate = true;
  const repl::ReplicatedReplayResult trunc =
      repl::ReplicatedReplayDriver(net, trunc_rc).run(test, *factory);
  const bool trunc_lossless =
      same_assignment(trunc.result.assigned, baseline.assigned);
  std::cerr << "truncation: " << trunc.repl.truncated_records
            << " records dropped, " << trunc.repl.live_log_records
            << " live of " << trunc.repl.log_records
            << (trunc_lossless ? " (lossless)" : " (DIVERGED)") << "\n";

  std::cout << "# Failover: beta' and failover ledger vs backup count\n";
  util::TextTable table({"backups", "balance_index", "degradation", "dropped",
                         "reassociations", "failovers", "headless",
                         "catchup_records", "catchup_ms_mean", "lossless"});
  for (const ReplicaRun& run : runs) {
    table.add_row({std::to_string(run.backups), util::fmt(run.balance, 4),
                   util::fmt(run.degradation, 4), std::to_string(run.dropped),
                   std::to_string(run.reassociations),
                   std::to_string(run.failovers),
                   std::to_string(run.headless_windows),
                   std::to_string(run.catchup_records),
                   util::fmt(run.catchup_ms_mean, 3),
                   run.lossless ? "yes" : "no"});
  }
  std::cout << table.to_csv();

  std::cout << "# Catch-up vs log length (controller losses, 1 backup)\n";
  util::TextTable scale_table({"days", "log_records", "max_catchup_plain",
                               "max_catchup_snapshot", "snapshot_every"});
  for (const CatchupRow& row : scaling) {
    scale_table.add_row({std::to_string(row.days),
                         std::to_string(row.log_records),
                         std::to_string(row.max_catchup_plain),
                         std::to_string(row.max_catchup_snapshot),
                         std::to_string(snap_every)});
  }
  std::cout << scale_table.to_csv();

  std::cout << "# Truncation (churn plan, 2 backups, snapshots on)\n";
  util::TextTable trunc_table({"log_records", "truncated_records",
                               "live_log_records", "snapshots", "lossless"});
  trunc_table.add_row({std::to_string(trunc.repl.log_records),
                       std::to_string(trunc.repl.truncated_records),
                       std::to_string(trunc.repl.live_log_records),
                       std::to_string(trunc.repl.snapshots),
                       trunc_lossless ? "yes" : "no"});
  std::cout << trunc_table.to_csv();

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"failover\",\n"
       << "  \"scale\": \"" << args.scale << "\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"num_users\": " << cfg.num_users << ",\n"
       << "  \"policy\": \"s3\",\n"
       << "  \"plan\": \"controller-churn (4 x 2h, test window)\",\n"
       << "  \"baseline_balance_index\": " << util::fmt(base_beta, 6) << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ReplicaRun& run = runs[i];
    json << "    {\n"
         << "      \"backups\": " << run.backups << ",\n"
         << "      \"balance_index\": " << util::fmt(run.balance, 6) << ",\n"
         << "      \"balance_degradation\": " << util::fmt(run.degradation, 6)
         << ",\n"
         << "      \"dropped_sessions\": " << run.dropped << ",\n"
         << "      \"reassociations\": " << run.reassociations << ",\n"
         << "      \"failovers\": " << run.failovers << ",\n"
         << "      \"headless_windows\": " << run.headless_windows << ",\n"
         << "      \"log_records\": " << run.log_records << ",\n"
         << "      \"catchup_records\": " << run.catchup_records << ",\n"
         << "      \"catchup_ms_mean\": " << util::fmt(run.catchup_ms_mean, 4)
         << ",\n"
         << "      \"lossless\": " << (run.lossless ? "true" : "false") << "\n"
         << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"snapshot_every\": " << snap_every << ",\n"
       << "  \"catchup_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const CatchupRow& row = scaling[i];
    json << "    {\n"
         << "      \"days\": " << row.days << ",\n"
         << "      \"log_records\": " << row.log_records << ",\n"
         << "      \"max_catchup_plain\": " << row.max_catchup_plain << ",\n"
         << "      \"max_catchup_snapshot\": " << row.max_catchup_snapshot
         << "\n"
         << "    }" << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"truncation\": {\n"
       << "    \"log_records\": " << trunc.repl.log_records << ",\n"
       << "    \"truncated_records\": " << trunc.repl.truncated_records
       << ",\n"
       << "    \"live_log_records\": " << trunc.repl.live_log_records << ",\n"
       << "    \"snapshots\": " << trunc.repl.snapshots << ",\n"
       << "    \"snapshot_installs\": " << trunc.repl.snapshot_installs
       << ",\n"
       << "    \"adoptions\": " << trunc.repl.adoptions << ",\n"
       << "    \"lossless\": " << (trunc_lossless ? "true" : "false") << "\n"
       << "  }\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  bench::maybe_dump_metrics(args);
  return 0;
}
