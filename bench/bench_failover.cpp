// Failover bench — what a controller crash costs at 0, 1 and 2 backup
// replicas, under the canned controller-churn schedule.
//
// The test window is replayed with S3 (trained on the LLF-collected
// window) three times through the replicated driver, varying only the
// backup count, next to an outage-free baseline. For each run we report
// the scored balance index β′ and its degradation vs the baseline, the
// sessions dropped while a domain ran headless, re-associations, and
// the replication layer's catch-up bill (records replayed, wall-clock
// latency per failover).
//
// Expected shape: with >= 1 backup the failover is lossless — β′
// matches the baseline to the last digit and nothing is dropped; with
// 0 backups every crash window drops its in-flight batch and arrivals,
// and β′ dips in proportion.
//
// Flags beyond the common set:
//   --quick       shrink the world (CI-sized run)
//   --out FILE    JSON destination (default BENCH_failover.json)

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "s3/analysis/balance.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/repl/replicated_driver.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

/// Mean normalized balance index over the scored slots of the test
/// window (daytime, minimum-load filtered; unassigned sessions are
/// dropped — they serve no traffic).
double scored_balance(const wlan::Network& net, const trace::Trace& assigned,
                      util::SimTime begin, util::SimTime end) {
  std::vector<trace::SessionRecord> served;
  served.reserve(assigned.size());
  for (const trace::SessionRecord& s : assigned.sessions()) {
    if (s.assigned()) served.push_back(s);
  }
  const trace::Trace survivors(assigned.num_users(), assigned.num_days(),
                               std::move(served));
  const analysis::ThroughputSeries series(net, survivors, begin, end);

  double sum = 0.0;
  std::size_t count = 0;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    for (std::size_t slot = 0; slot < series.num_slots(); ++slot) {
      const double hour =
          static_cast<double>(series.slot_begin(slot).second_of_day()) /
          3600.0;
      if (hour < 8.0) continue;
      if (series.total_load(c, slot) < 5.0) continue;
      sum += analysis::normalized_balance_index(series.slot_load(c, slot));
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

struct ReplicaRun {
  std::size_t backups = 0;
  double balance = 0.0;
  double degradation = 0.0;  ///< baseline β′ − this run's β′
  std::size_t dropped = 0;
  std::size_t reassociations = 0;
  std::size_t failovers = 0;
  std::size_t headless_windows = 0;
  std::uint64_t log_records = 0;
  std::uint64_t catchup_records = 0;
  double catchup_ms_mean = 0.0;  ///< per failover + rejoin
  bool lossless = false;         ///< assignment identical to baseline
};

}  // namespace

int main(int argc, char** argv) {
  static constexpr util::ArgSpec kExtra[] = {
      {"quick", util::ArgKind::kFlag, "CI-sized run"},
      {"out", util::ArgKind::kString, "JSON output (BENCH_failover.json)"},
  };
  const util::ParsedArgs raw = bench::parse_raw_args(argc, argv, kExtra);
  bench::BenchArgs args;
  args.scale = raw.get("scale", args.scale);
  args.seed = static_cast<std::uint64_t>(raw.num("seed", 42));
  args.threads = static_cast<unsigned>(raw.num("threads", 0));
  args.metrics = raw.has("metrics");
  const bool quick = raw.has("quick");
  const std::string out_path = raw.get("out", "BENCH_failover.json");

  trace::GeneratorConfig cfg = bench::generator_config(args);
  if (quick) {
    cfg.num_users = 600;
    cfg.layout.aps_per_building = 6;
  }
  std::cerr << "generating workload: " << cfg.num_users << " users, "
            << cfg.layout.num_buildings << " buildings (seed " << cfg.seed
            << ")\n";
  const trace::GeneratedTrace world = trace::generate_campus_trace(cfg);
  const wlan::Network& net = world.network;
  const core::EvaluationConfig eval = bench::evaluation_config(args);

  std::cerr << "training social model on the LLF-collected window...\n";
  const social::SocialIndexModel model =
      core::train_from_workload(net, world.workload, eval);

  const util::SimTime begin = util::SimTime::from_days(eval.train_days);
  const util::SimTime end =
      util::SimTime::from_days(eval.train_days + eval.test_days);
  const trace::Trace test = world.workload.slice(begin, end);

  const fault::FaultPlan plan =
      fault::canned_controller_churn_plan(net, begin, end);
  const fault::FaultInjector injector(plan, args.seed);

  core::SelectorSpec spec;
  spec.net = &net;
  spec.model = &model;
  spec.llf_metric = eval.baseline_metric;
  const std::unique_ptr<sim::SelectorFactory> factory =
      core::make_selector_factory("s3", spec);

  // Outage-free baseline through the plain driver.
  runtime::ReplayDriverConfig base_rc;
  base_rc.replay = eval.replay;
  base_rc.threads = args.threads;
  const sim::ReplayResult baseline =
      runtime::ReplayDriver(net, base_rc).run(test, *factory);
  const double base_beta = scored_balance(net, baseline.assigned, begin, end);
  std::cerr << "baseline beta' " << util::fmt(base_beta, 4) << "\n";

  std::vector<ReplicaRun> runs;
  for (const std::size_t backups : {0UL, 1UL, 2UL}) {
    repl::ReplicatedDriverConfig rc;
    rc.replay = eval.replay;
    rc.threads = args.threads;
    rc.injector = &injector;
    rc.repl.backups = backups;
    const repl::ReplicatedReplayResult rr =
        repl::ReplicatedReplayDriver(net, rc).run(test, *factory);
    ReplicaRun run;
    run.backups = backups;
    run.balance = scored_balance(net, rr.result.assigned, begin, end);
    run.degradation = base_beta - run.balance;
    run.dropped = rr.result.stats.dropped_sessions;
    run.reassociations = rr.result.stats.reassociations;
    run.failovers = rr.repl.failovers;
    run.headless_windows = rr.repl.headless_windows;
    run.log_records = rr.repl.log_records;
    run.catchup_records = rr.repl.catchup_records;
    const std::size_t catchups = rr.repl.failovers + rr.repl.rejoins;
    run.catchup_ms_mean =
        catchups > 0 ? static_cast<double>(rr.repl.catchup_wall_ns) / 1e6 /
                           static_cast<double>(catchups)
                     : 0.0;
    run.lossless =
        rr.result.assigned.sessions().size() ==
            baseline.assigned.sessions().size() &&
        std::equal(rr.result.assigned.sessions().begin(),
                   rr.result.assigned.sessions().end(),
                   baseline.assigned.sessions().begin(),
                   [](const trace::SessionRecord& a,
                      const trace::SessionRecord& b) { return a.ap == b.ap; });
    runs.push_back(run);
    std::cerr << "replicas " << backups << ": beta' "
              << util::fmt(run.balance, 4) << " dropped " << run.dropped
              << (run.lossless ? " (lossless)" : "") << "\n";
  }

  std::cout << "# Failover: beta' and failover ledger vs backup count\n";
  util::TextTable table({"backups", "balance_index", "degradation", "dropped",
                         "reassociations", "failovers", "headless",
                         "catchup_records", "catchup_ms_mean", "lossless"});
  for (const ReplicaRun& run : runs) {
    table.add_row({std::to_string(run.backups), util::fmt(run.balance, 4),
                   util::fmt(run.degradation, 4), std::to_string(run.dropped),
                   std::to_string(run.reassociations),
                   std::to_string(run.failovers),
                   std::to_string(run.headless_windows),
                   std::to_string(run.catchup_records),
                   util::fmt(run.catchup_ms_mean, 3),
                   run.lossless ? "yes" : "no"});
  }
  std::cout << table.to_csv();

  std::ofstream json(out_path);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"failover\",\n"
       << "  \"scale\": \"" << args.scale << "\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"num_users\": " << cfg.num_users << ",\n"
       << "  \"policy\": \"s3\",\n"
       << "  \"plan\": \"controller-churn (4 x 2h, test window)\",\n"
       << "  \"baseline_balance_index\": " << util::fmt(base_beta, 6) << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ReplicaRun& run = runs[i];
    json << "    {\n"
         << "      \"backups\": " << run.backups << ",\n"
         << "      \"balance_index\": " << util::fmt(run.balance, 6) << ",\n"
         << "      \"balance_degradation\": " << util::fmt(run.degradation, 6)
         << ",\n"
         << "      \"dropped_sessions\": " << run.dropped << ",\n"
         << "      \"reassociations\": " << run.reassociations << ",\n"
         << "      \"failovers\": " << run.failovers << ",\n"
         << "      \"headless_windows\": " << run.headless_windows << ",\n"
         << "      \"log_records\": " << run.log_records << ",\n"
         << "      \"catchup_records\": " << run.catchup_records << ",\n"
         << "      \"catchup_ms_mean\": " << util::fmt(run.catchup_ms_mean, 4)
         << ",\n"
         << "      \"lossless\": " << (run.lossless ? "true" : "false") << "\n"
         << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cerr << "wrote " << out_path << "\n";
  bench::maybe_dump_metrics(args);
  return 0;
}
