// Table I — probability of leaving together between usage types.
//
// Paper shape: diagonal dominance — a user is more likely to co-leave
// with a same-type user (diagonal 0.51-0.66) than with another type
// (off-diagonal 0.17-0.31).

#include "bench_common.h"
#include "s3/analysis/events.h"
#include "s3/analysis/profiles.h"
#include "s3/social/typing.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const core::EvaluationConfig eval = bench::evaluation_config(args);
  const trace::Trace assigned =
      bench::collected_trace(world.network, world.workload, eval);

  const analysis::PairStatsMap stats =
      analysis::extract_pair_stats(assigned, {});
  const apps::ProfileStore profiles = analysis::build_profiles(assigned);
  social::UserTypingConfig tc;
  tc.k = 4;
  tc.seed = args.seed;
  const social::UserTyping typing =
      social::cluster_users(profiles.normalized_profiles(), tc);
  const social::TypeCoLeaveMatrix matrix =
      social::estimate_type_matrix(typing, stats);

  std::cout << "# Table I: P(leave together | encounter) between usage "
               "types\n";
  std::cout << "# paper shape: diagonal dominant (same-type pairs co-leave "
               "more)\n";
  std::vector<std::string> header = {"T"};
  for (std::size_t t = 0; t < matrix.num_types(); ++t) {
    header.push_back("type" + std::to_string(t + 1));
  }
  util::TextTable table(header);
  for (std::size_t i = 0; i < matrix.num_types(); ++i) {
    std::vector<std::string> row = {"type" + std::to_string(i + 1)};
    for (std::size_t j = 0; j < matrix.num_types(); ++j) {
      row.push_back(util::fmt(matrix.at(i, j), 2));
    }
    table.add_row(row);
  }
  std::cout << table.to_csv();
  std::cout << "# measured: diagonal dominance = "
            << util::fmt(matrix.diagonal_dominance(), 3)
            << " (positive reproduces the paper's pattern)\n";
  return 0;
}
