// Fig. 8 — centroids of the four user groups over the six application
// realms (IM, P2P, music, email, video, web-browsing).
//
// Paper shape: four clearly distinct usage types — each centroid is
// dominated by a different realm mixture.

#include "bench_common.h"
#include "s3/analysis/profiles.h"
#include "s3/social/typing.h"
#include "s3/util/table.h"

using namespace s3;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const trace::GeneratedTrace world = bench::make_world(args);
  const apps::ProfileStore profiles =
      analysis::build_profiles(world.workload);

  social::UserTypingConfig cfg;
  cfg.k = 4;
  cfg.seed = args.seed;
  const social::UserTyping typing =
      social::cluster_users(profiles.normalized_profiles(), cfg);

  std::cout << "# Fig. 8: cluster centroids of the four user groups\n";
  std::cout << "# paper shape: one IM/web type, one P2P-dominated type, "
               "one video type, one email/web type\n";
  std::vector<std::string> header = {"type"};
  for (apps::AppCategory c : apps::kAllCategories) {
    header.emplace_back(to_string(c));
  }
  util::TextTable table(header);
  std::vector<std::size_t> counts(typing.num_types, 0);
  for (std::size_t t : typing.type_of_user) ++counts[t];
  for (std::size_t t = 0; t < typing.num_types; ++t) {
    std::vector<std::string> row = {"type" + std::to_string(t + 1)};
    for (double v : typing.centroid(t)) row.push_back(util::fmt(v, 3));
    table.add_row(row);
  }
  std::cout << table.to_csv();
  for (std::size_t t = 0; t < typing.num_types; ++t) {
    std::cout << "# type" << (t + 1) << ": " << counts[t] << " users\n";
  }
  return 0;
}
