// Partition-torture harness for the replication layer.
//
// Replays a fixed mini campus under N seeded fault schedules — each a
// random cocktail of per-domain controller outages, whole-replica-set
// controller losses, AP churn, model outages and admission failures,
// with randomized backup counts, snapshot intervals, truncation,
// heartbeat periods and election seeds. Every schedule must satisfy:
//
//   1. convergence — every failover/rejoin/adoption/handback event in
//      the ledger replays to a bit-identical engine (converged flag);
//   2. zero lost sessions — with >= 1 backup (or an adopting neighbor
//      for whole-set losses) the assignment and stats are identical,
//      session by session, to the same run with the controller faults
//      stripped out;
//   3. bounded catch-up — with snapshots every K records, no single
//      catch-up replays more than 2K + slack records, no matter where
//      the crash landed;
//   4. truncation accounting — live + truncated == total appended; and
//   5. schedule determinism — re-running a schedule across a different
//      thread count reproduces the same bytes (spot-checked).
//
// The harness is deterministic end to end: schedule i under --seed S is
// the same torture run on every machine. Exits non-zero on the first
// failing schedule, after printing the per-schedule ledger (also
// written to --ledger for CI artifact upload).
//
// Flags:
//   --schedules N   seeded schedules to run (default 25)
//   --seed S        torture seed (default 1)
//   --threads N     replay workers per run (default 4)
//   --ledger FILE   write the per-schedule ledger to FILE too
//   --verbose       echo every failover event, not just summaries

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "s3/core/evaluation.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/repl/replicated_driver.h"
#include "s3/runtime/replay_driver.h"
#include "s3/trace/generator.h"
#include "s3/util/argspec.h"
#include "s3/util/rng.h"

using namespace s3;

namespace {

/// Everything one seeded schedule varies: the fault plan plus the
/// replication knobs it is replayed under.
struct Schedule {
  std::size_t index = 0;
  fault::FaultPlan plan;
  std::uint64_t fault_seed = 1;
  std::size_t backups = 1;
  repl::ReplicationConfig repl;
  bool losses = false;  ///< plan includes whole-replica-set losses
};

/// Draw in [lo, hi] inclusive.
std::int64_t draw(util::SplitMix64& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(rng.next() %
                                        static_cast<std::uint64_t>(hi - lo + 1));
}

/// One randomized schedule. Same-controller outage and loss windows are
/// kept disjoint by construction (outages live in the morning, losses
/// in the late afternoon), and losses are staggered one domain per day
/// so the deterministic adopter candidate is always alive.
Schedule make_schedule(const wlan::Network& net, const trace::Trace& workload,
                       std::uint64_t torture_seed, std::size_t index) {
  util::SplitMix64 rng(torture_seed ^ (0x7031A7u + index * 0x9E3779B97F4A7C15ULL));
  Schedule s;
  s.index = index;

  const util::SimTime end = workload.end_time();
  const std::int64_t days = end.seconds() / 86400;
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    // Morning outage on a random day, 1-4 h starting 08:00-10:00 —
    // ends by 14:00, always clear of the 15:00+ loss band below.
    if (draw(rng, 0, 3) != 0) {  // 75% of domains crash
      const std::int64_t day = draw(rng, 0, days - 1) * 86400;
      const std::int64_t begin = day + draw(rng, 8, 10) * 3600;
      const std::int64_t len = draw(rng, 1, 4) * 3600;
      s.plan.controller_outages.push_back(
          {c, util::SimTime(begin), util::SimTime(begin + len)});
    }
    // Whole-replica-set loss in the 15:00-21:00 band of day (c % days):
    // distinct controllers land on distinct days, so windows never
    // overlap across domains and an adopter always exists.
    if (draw(rng, 0, 2) != 0) {  // 2/3 of domains lose the full set
      const std::int64_t day =
          (static_cast<std::int64_t>(c) % days) * 86400;
      const std::int64_t begin = day + draw(rng, 15, 17) * 3600;
      const std::int64_t len = draw(rng, 1, 3) * 3600;
      s.plan.controller_losses.push_back(
          {c, util::SimTime(begin), util::SimTime(begin + len)});
      s.losses = true;
    }
  }
  // Background chaos: AP churn always, model outage and admission
  // failures on some schedules.
  const fault::FaultPlan ap = fault::canned_ap_churn_plan(
      net, util::SimTime(0), end, static_cast<std::size_t>(draw(rng, 2, 5)),
      draw(rng, 1, 3) * 3600);
  s.plan.ap_outages = ap.ap_outages;
  if (draw(rng, 0, 1) == 0) {
    s.plan.model_outages =
        fault::canned_model_outage_plan(util::SimTime(0), end).model_outages;
  }
  if (draw(rng, 0, 1) == 0) {
    s.plan.admission.failure_probability =
        static_cast<double>(draw(rng, 1, 3)) / 10.0;
    s.plan.admission.begin = util::SimTime(end.seconds() / 4);
    s.plan.admission.end = util::SimTime(end.seconds() / 2);
  }

  s.fault_seed = rng.next();
  s.backups = static_cast<std::size_t>(draw(rng, 1, 2));
  s.repl.election_seed = rng.next();
  s.repl.heartbeat_s = draw(rng, 0, 1) == 0 ? 300 : 900;
  static constexpr std::int64_t kIntervals[] = {0, 25, 60, 150};
  s.repl.snapshot_every = static_cast<std::uint64_t>(
      kIntervals[draw(rng, 0, 3)]);
  s.repl.truncate = s.repl.snapshot_every > 0 && draw(rng, 0, 1) == 0;
  return s;
}

std::string describe(const Schedule& s) {
  std::ostringstream os;
  os << "schedule " << s.index << ": outages " << s.plan.controller_outages.size()
     << ", losses " << s.plan.controller_losses.size() << ", backups "
     << s.backups << ", snapshot-every " << s.repl.snapshot_every
     << (s.repl.truncate ? " +truncate" : "") << ", heartbeat "
     << s.repl.heartbeat_s << "s";
  return os.str();
}

/// Strip the controller faults: the transparency baseline keeps every
/// other fault class so the comparison isolates the replication layer.
fault::FaultPlan without_controller_faults(const fault::FaultPlan& plan) {
  fault::FaultPlan base = plan;
  base.controller_outages.clear();
  base.controller_losses.clear();
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  static constexpr util::ArgSpec kSpecs[] = {
      {"schedules", util::ArgKind::kInt, "seeded schedules (default 25)"},
      {"seed", util::ArgKind::kInt, "torture seed (default 1)"},
      {"threads", util::ArgKind::kInt, "replay workers per run (default 4)"},
      {"ledger", util::ArgKind::kString, "also write the ledger to FILE"},
      {"verbose", util::ArgKind::kFlag, "echo every failover event"},
  };
  const util::ArgParseResult parsed = util::parse_args(kSpecs, argc, argv, 1);
  if (parsed.want_help || !parsed.ok()) {
    if (!parsed.ok()) std::cerr << "error: " << parsed.error << "\n";
    std::cerr << "usage: s3lb_torture [--schedules N --seed S --threads N "
                 "--ledger FILE --verbose]\n"
              << util::format_arg_specs(kSpecs);
    return parsed.want_help ? 0 : 2;
  }
  const util::ParsedArgs& f = parsed.args;
  const std::size_t schedules =
      static_cast<std::size_t>(f.num("schedules", 25));
  const std::uint64_t seed = static_cast<std::uint64_t>(f.num("seed", 1));
  const unsigned threads = static_cast<unsigned>(f.num("threads", 4));
  const bool verbose = f.has("verbose");

  // One shared mini campus + trained model for every schedule: the
  // torture varies the faults and the replication knobs, not the world.
  trace::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.num_users = 150;
  cfg.num_days = 3;
  cfg.layout.num_buildings = 3;
  cfg.layout.aps_per_building = 5;
  const trace::GeneratedTrace world = trace::generate_campus_trace(cfg);
  core::EvaluationConfig eval;
  eval.train_days = 2;
  eval.test_days = 1;
  const social::SocialIndexModel model =
      core::train_from_workload(world.network, world.workload, eval);

  std::ostringstream ledger;
  std::size_t failures = 0;
  std::uint64_t total_failovers = 0, total_adoptions = 0, total_rejoins = 0;

  for (std::size_t i = 0; i < schedules; ++i) {
    const Schedule s = make_schedule(world.network, world.workload, seed, i);

    // Alternate the policy under test: even schedules torture the
    // paper's S3 selector (social model + clique state in the
    // checkpoint), odd ones the LLF baseline.
    core::SelectorSpec spec;
    spec.net = &world.network;
    spec.llf_metric = core::LoadMetric::kStations;
    if (i % 2 == 0) {
      spec.model = &model;
      spec.base_model = &model;
    }
    const std::unique_ptr<sim::SelectorFactory> factory =
        core::make_selector_factory(i % 2 == 0 ? "s3" : "llf", spec);

    const fault::FaultInjector injector(s.plan, s.fault_seed);
    repl::ReplicatedDriverConfig rc;
    rc.threads = threads;
    rc.injector = &injector;
    rc.repl = s.repl;
    rc.repl.backups = s.backups;
    const repl::ReplicatedReplayResult rr =
        repl::ReplicatedReplayDriver(world.network, rc)
            .run(world.workload, *factory);

    const fault::FaultInjector base_injector(
        without_controller_faults(s.plan), s.fault_seed);
    runtime::ReplayDriverConfig base_rc;
    base_rc.threads = threads;
    base_rc.injector = &base_injector;
    const sim::ReplayResult baseline =
        runtime::ReplayDriver(world.network, base_rc)
            .run(world.workload, *factory);

    std::vector<std::string> errors;

    // 1. Convergence: every ledger event must have replayed to a
    //    bit-identical engine.
    for (const repl::FailoverEvent& ev : rr.failovers) {
      if (!ev.converged) {
        std::ostringstream os;
        os << "DIVERGED at t=" << ev.when.seconds() << "s domain "
           << ev.domain;
        errors.push_back(os.str());
      }
    }

    // 2. Transparency: identical to the controller-fault-free run,
    //    session by session — zero sessions lost to the fault windows.
    if (rr.result.assigned.size() != baseline.assigned.size()) {
      errors.push_back("assignment size mismatch vs baseline");
    } else {
      for (std::size_t k = 0; k < baseline.assigned.size(); ++k) {
        if (rr.result.assigned.session(k).ap !=
            baseline.assigned.session(k).ap) {
          std::ostringstream os;
          os << "session " << k << " assigned "
             << rr.result.assigned.session(k).ap << " vs baseline "
             << baseline.assigned.session(k).ap;
          errors.push_back(os.str());
          break;
        }
      }
    }
    if (!(rr.result.stats == baseline.stats)) {
      errors.push_back("replay stats diverge from baseline");
    }

    // 3. Bounded catch-up: one snapshot interval of slack for the
    //    install point plus control records.
    if (s.repl.snapshot_every > 0 &&
        rr.repl.max_catchup_records > 2 * s.repl.snapshot_every + 64) {
      std::ostringstream os;
      os << "catch-up " << rr.repl.max_catchup_records
         << " records exceeds bound 2*" << s.repl.snapshot_every << "+64";
      errors.push_back(os.str());
    }

    // 4. Truncation accounting.
    if (rr.repl.live_log_records + rr.repl.truncated_records !=
        rr.repl.log_records) {
      errors.push_back("live + truncated != total log records");
    }
    if (!s.repl.truncate && rr.repl.truncated_records != 0) {
      errors.push_back("records truncated with truncation off");
    }

    // 5. Spot-check determinism across thread counts.
    if (i % 5 == 0) {
      repl::ReplicatedDriverConfig rc1 = rc;
      rc1.threads = 1;
      const repl::ReplicatedReplayResult again =
          repl::ReplicatedReplayDriver(world.network, rc1)
              .run(world.workload, *factory);
      if (!(again.result.stats == rr.result.stats) ||
          again.repl.log_records != rr.repl.log_records ||
          again.failovers.size() != rr.failovers.size()) {
        errors.push_back("re-run with threads=1 diverged");
      }
    }

    total_failovers += rr.repl.failovers;
    total_adoptions += rr.repl.adoptions;
    total_rejoins += rr.repl.rejoins;

    std::ostringstream line;
    line << describe(s) << " -> " << rr.repl.failovers << " failovers, "
         << rr.repl.adoptions << " adoptions, " << rr.repl.handbacks
         << " handbacks, " << rr.repl.rejoins << " rejoins, max catch-up "
         << rr.repl.max_catchup_records << ", truncated "
         << rr.repl.truncated_records << "/" << rr.repl.log_records << ": "
         << (errors.empty() ? "ok" : "FAIL");
    ledger << line.str() << "\n";
    std::cout << line.str() << "\n";
    if (verbose || !errors.empty()) {
      for (const repl::FailoverEvent& ev : rr.failovers) {
        std::ostringstream evl;
        evl << "  t=" << ev.when.seconds() << "s domain " << ev.domain
            << " kind " << static_cast<int>(ev.kind) << " term "
            << ev.new_term << " (" << ev.records_replayed << " records"
            << (ev.snapshot_install ? ", snapshot seed" : "") << ", "
            << (ev.converged ? "converged" : "DIVERGED") << ")";
        ledger << evl.str() << "\n";
        std::cout << evl.str() << "\n";
      }
    }
    for (const std::string& e : errors) {
      ledger << "  ERROR: " << e << "\n";
      std::cerr << "  ERROR: " << e << "\n";
    }
    if (!errors.empty()) ++failures;
  }

  std::ostringstream summary;
  summary << (failures == 0 ? "TORTURE PASS" : "TORTURE FAIL") << ": "
          << schedules << " schedules, " << total_failovers << " failovers, "
          << total_adoptions << " adoptions, " << total_rejoins
          << " rejoins, " << failures << " failing";
  ledger << summary.str() << "\n";
  std::cout << summary.str() << "\n";

  if (f.has("ledger")) {
    std::ofstream out(f.get("ledger"));
    if (!out) {
      std::cerr << "cannot write " << f.get("ledger") << "\n";
      return 1;
    }
    out << ledger.str();
  }
  return failures == 0 ? 0 : 1;
}
