// `.s3lint` per-directory configuration.
//
// A `.s3lint` file is a line-oriented text format in the same idiom as
// the fault-plan parser (one directive per line, `#` comments, errors
// reported as "<path> line N: message"):
//
//   # rule tuning
//   disable det-unordered-iter          # turn a rule off entirely
//   severity lock-unguarded-field error # override a rule's severity
//   allow det-rand s3/util/rng.cpp      # exempt files by path suffix
//   exclude tests/lint/fixtures         # skip files by path substring
//   output-scope on                     # this dir emits replay/serve
//                                       # or model output (det rules
//                                       # that only matter there)
//
// Configs compose top-down: the walker loads the root `.s3lint`, then
// every `.s3lint` on the path from the root to the file's directory,
// later files overriding severities and appending allows/excludes.
// Rule names accept a trailing `*` wildcard (`disable lock-*`).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace s3::lint {

enum class Severity {
  kOff,
  kWarning,
  kError,
};

/// Effective configuration for one linted file.
struct Config {
  struct SeverityOverride {
    std::string rule_pattern;  ///< exact id or trailing-* prefix
    Severity severity;
  };
  struct Allow {
    std::string rule_pattern;
    std::string path_suffix;
  };

  /// Applied in order; the last matching override wins.
  std::vector<SeverityOverride> overrides;
  std::vector<Allow> allows;
  std::vector<std::string> excludes;  ///< path substrings to skip entirely
  bool output_scope = false;

  /// True when `pattern` ("det-rand" or "det-*") covers `rule`.
  static bool pattern_matches(std::string_view pattern, std::string_view rule);

  /// `rule`'s severity for `path` after overrides and allows.
  Severity severity_for(std::string_view rule, std::string_view path,
                        Severity fallback) const;

  bool excluded(std::string_view path) const;
};

struct ConfigParseResult {
  Config config;
  std::string error;  ///< empty on success; "<path> line N: ..." otherwise
  bool ok() const { return error.empty(); }
};

/// Parses one `.s3lint` file's text into `base` (merging on top of it).
/// `path` is used only for error messages. Unknown directives and rule
/// ids are errors: a typoed rule name silently disabling nothing is
/// exactly the failure mode a lint config must not have.
ConfigParseResult parse_config(std::string_view text, std::string_view path,
                               Config base);

}  // namespace s3::lint
