// s3lint — the project-native determinism & lock-discipline analyzer.
//
//   s3lint --root .                      # lint src/ tools/ bench/ tests/
//   s3lint --root . --only src/serve     # restrict to a subtree
//   s3lint --list-rules                  # rule ids, severities, summaries
//
// Exit codes: 0 clean, 1 findings (errors always; warnings only under
// --warnings-as-errors), 2 usage or .s3lint config errors. Diagnostics
// are "file:line: [rule-id] severity: message", one per line, sorted —
// the output itself honors the determinism rules it enforces.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "s3/util/argspec.h"
#include "s3lint/config.h"
#include "s3lint/rules.h"

namespace fs = std::filesystem;
using s3::lint::Config;
using s3::lint::ConfigParseResult;
using s3::lint::Finding;
using s3::lint::Severity;

namespace {

constexpr s3::util::ArgSpec kSpecs[] = {
    {"root", s3::util::ArgKind::kString,
     "repository root to lint (default: current directory)"},
    {"only", s3::util::ArgKind::kString,
     "restrict to files whose path contains this substring"},
    {"warnings-as-errors", s3::util::ArgKind::kFlag,
     "exit non-zero on warning-severity findings too"},
    {"list-rules", s3::util::ArgKind::kFlag,
     "print every rule id with its default severity and exit"},
};

/// The trees a default run walks; everything else (examples/, plans/,
/// build*/) is out of scope for the code rules.
constexpr std::string_view kDefaultTrees[] = {"src", "tools", "bench",
                                              "tests"};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// '/'-separated path relative to root, for stable diagnostics across
/// platforms and invocation directories.
std::string rel_path(const fs::path& root, const fs::path& p) {
  return fs::relative(p, root).generic_string();
}

/// Loads and caches the merged config chain for a directory: the root
/// `.s3lint` plus every `.s3lint` from the root down to `dir`.
class ConfigChain {
 public:
  explicit ConfigChain(fs::path root) : root_(std::move(root)) {}

  /// Effective config for a file in `dir`; `error` set on parse failure.
  const Config* for_dir(const fs::path& dir, std::string& error) {
    const std::string key = rel_path(root_, dir);
    const auto hit = cache_.find(key);
    if (hit != cache_.end()) return &hit->second;

    Config base;
    if (dir != root_ && dir.has_parent_path()) {
      const Config* parent = for_dir(dir.parent_path(), error);
      if (parent == nullptr) return nullptr;
      base = *parent;
    }
    const fs::path file = dir / ".s3lint";
    if (fs::exists(file)) {
      ConfigParseResult parsed =
          s3::lint::parse_config(read_file(file), rel_path(root_, file), base);
      if (!parsed.ok()) {
        error = parsed.error;
        return nullptr;
      }
      base = std::move(parsed.config);
    }
    return &cache_.emplace(key, std::move(base)).first->second;
  }

 private:
  fs::path root_;
  std::map<std::string, Config> cache_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = s3::util::parse_args(kSpecs, argc, argv, 1);
  if (parsed.want_help) {
    std::cout << "usage: s3lint [flags]\n"
              << s3::util::format_arg_specs(kSpecs);
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.error << "\n"
              << s3::util::format_arg_specs(kSpecs);
    return 2;
  }
  if (parsed.args.has("list-rules")) {
    for (const s3::lint::RuleInfo& rule : s3::lint::all_rules()) {
      std::cout << rule.id << "  ("
                << (rule.default_severity == Severity::kError ? "error"
                                                              : "warning")
                << ")  " << rule.summary << "\n";
    }
    return 0;
  }

  const fs::path root = fs::absolute(parsed.args.get("root", "."));
  if (!fs::is_directory(root)) {
    std::cerr << "error: --root " << root << " is not a directory\n";
    return 2;
  }
  const std::string only = parsed.args.get("only");
  const bool warnings_fail = parsed.args.has("warnings-as-errors");

  // Gather candidate files, sorted so output order never depends on
  // directory-iteration order.
  std::vector<fs::path> files;
  for (const std::string_view tree : kDefaultTrees) {
    const fs::path base = root / tree;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  ConfigChain chain(root);
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t linted = 0;
  for (const fs::path& file : files) {
    const std::string rel = rel_path(root, file);
    if (!only.empty() && rel.find(only) == std::string::npos) continue;

    std::string config_error;
    const Config* config = chain.for_dir(file.parent_path(), config_error);
    if (config == nullptr) {
      std::cerr << "error: " << config_error << "\n";
      return 2;
    }
    if (config->excluded(rel)) continue;

    const std::string content = read_file(file);
    std::string header;
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      const fs::path sibling = fs::path(file).replace_extension(".h");
      if (fs::exists(sibling)) header = read_file(sibling);
    }
    ++linted;
    for (const Finding& f : s3::lint::lint_file(
             {rel, content, header}, *config)) {
      std::cout << f.format() << "\n";
      if (f.severity == Severity::kError) {
        ++errors;
      } else {
        ++warnings;
      }
    }
  }

  const bool fail = errors > 0 || (warnings_fail && warnings > 0);
  std::cerr << "s3lint: " << linted << " files, " << errors << " errors, "
            << warnings << " warnings\n";
  return fail ? 1 : 0;
}
