#include "s3lint/rules.h"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

#include "s3lint/lexer.h"

namespace s3::lint {

namespace {

constexpr std::array<RuleInfo, 11> kRules = {{
    {"det-rand", Severity::kError,
     "libc RNG (rand/srand/drand48) outside the seeded rng layer"},
    {"det-random-device", Severity::kError,
     "std::random_device draws real entropy; replay output must be seeded"},
    {"det-time", Severity::kError,
     "wall-clock read (time()/system_clock); decisions must use SimTime"},
    {"det-unordered-iter", Severity::kError,
     "iteration over an unordered container in output-producing code"},
    {"hyg-assert", Severity::kError,
     "bare assert(); use the runtime-selectable S3_PRECONDITION family"},
    {"hyg-pragma-once", Severity::kError,
     "header does not open with #pragma once"},
    {"hyg-using-namespace", Severity::kError,
     "using namespace in a header leaks into every includer"},
    {"lint-suppression", Severity::kError,
     "malformed s3lint suppression (unknown rule or missing reason)"},
    {"lock-atomic-mix", Severity::kWarning,
     "atomic field accessed through implicit seq_cst operator"},
    {"lock-raw-mutex", Severity::kError,
     "raw std::mutex/std::lock_guard; use annotated util::Mutex/MutexLock"},
    {"lock-unguarded-field", Severity::kError,
     "mutable field of a lock-owning class lacks S3_GUARDED_BY"},
}};

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

bool is_header(std::string_view path) {
  return path.ends_with(".h") || path.ends_with(".hpp");
}

bool ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------------
// Suppressions: the tool name, a colon, then allow(<rule>) and a
// mandatory reason tail, inside any comment.

struct Suppression {
  std::size_t line;  ///< line the suppression covers
  std::string rule;
};

struct SuppressionScan {
  std::vector<Suppression> suppressions;
  std::vector<Finding> malformed;  ///< lint-suppression findings
};

SuppressionScan scan_suppressions(const std::string& path,
                                  const std::vector<Comment>& comments) {
  SuppressionScan out;
  std::set<std::size_t> own_line_comments;
  for (const Comment& c : comments) {
    if (c.own_line) own_line_comments.insert(c.line);
  }
  for (const Comment& c : comments) {
    const auto at = c.text.find("s3lint:");
    if (at == std::string::npos) continue;
    auto bad = [&](const std::string& why) {
      out.malformed.push_back({path, c.line, "lint-suppression",
                               Severity::kError, why});
    };
    std::string_view rest = std::string_view(c.text).substr(at + 7);
    while (rest.starts_with(" ")) rest.remove_prefix(1);
    if (!rest.starts_with("allow(")) {
      bad("expected \"s3lint: allow(<rule-id>): <reason>\"");
      continue;
    }
    rest.remove_prefix(6);
    const auto close = rest.find(')');
    if (close == std::string_view::npos) {
      bad("unterminated allow(");
      continue;
    }
    const std::string rule(rest.substr(0, close));
    rest.remove_prefix(close + 1);
    if (find_rule(rule) == nullptr) {
      bad("unknown rule \"" + rule + "\" in suppression");
      continue;
    }
    while (rest.starts_with(" ")) rest.remove_prefix(1);
    if (!rest.starts_with(":")) {
      bad("suppression of " + rule +
          " has no reason; write \"s3lint: allow(" + rule + "): <why>\"");
      continue;
    }
    rest.remove_prefix(1);
    const auto reason_end = rest.find_first_not_of(" \t");
    if (reason_end == std::string_view::npos) {
      bad("suppression of " + rule + " has an empty reason");
      continue;
    }
    out.suppressions.push_back({c.line, rule});
    if (own_line_comments.count(c.line) != 0) {
      // An own-line comment covers the next code line; chains of
      // own-line comments pass the coverage through.
      std::size_t target = c.line + 1;
      while (own_line_comments.count(target) != 0) ++target;
      out.suppressions.push_back({target, rule});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declaration harvesting: unordered-container names, atomic field
// names, and the class structure the lock rules need.

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Advances past a balanced <...> group starting at tokens[i] == "<".
/// Returns the index just past the closing ">". Treats ">>" as two
/// closers, the C++11 rule.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t.text == ";") {
      return i;  // malformed; bail at statement end
    }
  }
  return i;
}

/// Names declared with an unordered container type, members and locals
/// alike: `std::unordered_map<K, V> name ...` => "name".
std::set<std::string> unordered_names(const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (std::find(kUnorderedTypes.begin(), kUnorderedTypes.end(),
                  toks[i].text) == kUnorderedTypes.end()) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && punct(toks[j], "<")) j = skip_template_args(toks, j);
    // Skip reference/pointer declarators: `unordered_map<..>& name`.
    while (j < toks.size() &&
           (punct(toks[j], "&") || punct(toks[j], "*") ||
            ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// Names declared as std::atomic<...> fields or locals.
std::set<std::string> atomic_names(const std::vector<Token>& toks) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!ident(toks[i], "atomic")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && punct(toks[j], "<")) j = skip_template_args(toks, j);
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

struct MemberField {
  std::string name;
  std::size_t line;
  bool annotated = false;  ///< carries S3_GUARDED_BY / S3_PT_GUARDED_BY
  bool is_lock = false;    ///< Mutex / Spinlock / std::mutex member
  bool is_atomic = false;
  bool exempt = false;     ///< static / constexpr / const value member
};

struct ClassDecl {
  std::string name;
  std::size_t line;
  std::vector<MemberField> fields;
  bool owns_lock() const {
    return std::any_of(fields.begin(), fields.end(),
                       [](const MemberField& f) { return f.is_lock; });
  }
};

/// Classifies one member-level statement. Returns false for anything
/// that is not a data member (functions, usings, friends, nested type
/// heads are filtered before this point).
bool classify_member(const std::vector<Token>& stmt, MemberField& out) {
  if (stmt.empty()) return false;
  static constexpr std::array<std::string_view, 10> kNotField = {
      "using",    "typedef",  "friend", "static_assert", "template",
      "operator", "enum",     "class",  "struct",        "union"};
  std::vector<Token> body;  // statement minus annotation macros
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.kind == TokenKind::kIdentifier) {
      if (std::find(kNotField.begin(), kNotField.end(), t.text) !=
          kNotField.end()) {
        return false;
      }
      if (t.text == "S3_GUARDED_BY" || t.text == "S3_PT_GUARDED_BY") {
        out.annotated = true;
        // Drop the macro and its argument list from the body.
        if (i + 1 < stmt.size() && punct(stmt[i + 1], "(")) {
          int depth = 0;
          ++i;
          for (; i < stmt.size(); ++i) {
            if (punct(stmt[i], "(")) ++depth;
            if (punct(stmt[i], ")") && --depth == 0) break;
          }
        }
        continue;
      }
    }
    body.push_back(t);
  }
  // A top-level parenthesis means constructor/method/function pointer —
  // not a plain data member.
  int angle = 0;
  for (const Token& t : body) {
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">") angle = std::max(0, angle - 1);
    if (t.text == ">>") angle = std::max(0, angle - 2);
    if (t.text == "(" && angle == 0) return false;
  }
  // Field name: last identifier before the initializer or array bound.
  std::string name;
  std::size_t line = body.empty() ? 0 : body.front().line;
  angle = 0;
  for (const Token& t : body) {
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "<") ++angle;
      if (t.text == ">") angle = std::max(0, angle - 1);
      if (t.text == ">>") angle = std::max(0, angle - 2);
      if (angle == 0 && (t.text == "=" || t.text == "{" || t.text == "[")) {
        break;
      }
      continue;
    }
    if (t.kind == TokenKind::kIdentifier && angle == 0) {
      name = t.text;
      line = t.line;
    }
  }
  if (name.empty()) return false;
  out.name = name;
  out.line = line;
  for (const Token& t : body) {
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == name) break;  // flags come from the type, not the init
    if (t.text == "Mutex" || t.text == "Spinlock" || t.text == "mutex" ||
        t.text == "shared_mutex") {
      out.is_lock = true;
    }
    if (t.text == "atomic" || t.text == "atomic_flag") out.is_atomic = true;
    if (t.text == "static" || t.text == "constexpr") out.exempt = true;
  }
  // A const value member is immutable after construction; `const X*`
  // (pointee const, pointer mutable) stays in scope of the rule only
  // if the class chooses to annotate it — treat both as exempt: the
  // pointer itself is set once in every pattern this codebase uses.
  for (const Token& t : body) {
    if (ident(t, "const")) out.exempt = true;
    if (t.kind == TokenKind::kIdentifier && t.text == name) break;
  }
  return true;
}

/// Walks the token stream tracking class/struct bodies and collects
/// their data members. Deliberately tolerant: anything it cannot
/// classify is skipped, never mis-reported.
std::vector<ClassDecl> scan_classes(const std::vector<Token>& toks) {
  std::vector<ClassDecl> out;
  struct Open {
    ClassDecl decl;
    int body_depth;
  };
  std::vector<Open> stack;
  struct Pending {
    std::string name;
    std::size_t line;
    std::size_t open_index;  ///< index of the body's "{" token
  };
  std::vector<Pending> pending;

  int depth = 0;
  std::vector<Token> stmt;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kDirective) continue;

    // Class-head detection (not `enum class`).
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "class" || t.text == "struct") &&
        !(i > 0 && ident(toks[i - 1], "enum"))) {
      std::string name;
      std::size_t line = t.line;
      int nest = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const Token& h = toks[j];
        if (h.kind == TokenKind::kPunct) {
          if (h.text == "(" || h.text == "[" || h.text == "<") ++nest;
          if (h.text == ")" || h.text == "]" || h.text == ">") --nest;
          if (nest > 0) continue;
          if (h.text == ";") break;  // forward declaration
          if (h.text == ":" || h.text == "{") {
            if (h.text == ":" ) {
              // Base clause: the body "{" is the next top-level one.
              std::size_t k = j + 1;
              int bnest = 0;
              for (; k < toks.size(); ++k) {
                if (toks[k].kind != TokenKind::kPunct) continue;
                if (toks[k].text == "(" || toks[k].text == "[" ||
                    toks[k].text == "<") {
                  ++bnest;
                }
                if (toks[k].text == ")" || toks[k].text == "]" ||
                    toks[k].text == ">") {
                  --bnest;
                }
                if (bnest <= 0 &&
                    (toks[k].text == "{" || toks[k].text == ";")) {
                  break;
                }
              }
              if (k < toks.size() && punct(toks[k], "{") && !name.empty()) {
                pending.push_back({name, line, k});
              }
            } else if (!name.empty()) {
              pending.push_back({name, line, j});
            }
            break;
          }
        } else if (h.kind == TokenKind::kIdentifier && nest == 0 &&
                   h.text != "final" && h.text != "alignas") {
          name = h.text;
        }
      }
    }

    const bool at_member_level =
        !stack.empty() && depth == stack.back().body_depth;

    if (punct(t, "{")) {
      // Drop pendings whose body brace was consumed by another path.
      std::erase_if(pending,
                    [&](const Pending& p) { return p.open_index < i; });
      const auto opens = std::find_if(
          pending.begin(), pending.end(),
          [&](const Pending& p) { return p.open_index == i; });
      if (opens != pending.end()) {
        stack.push_back({{opens->name, opens->line, {}}, depth + 1});
        pending.erase(opens);
        stmt.clear();
        ++depth;
        continue;
      }
      if (at_member_level) {
        bool has_paren = false;
        int angle = 0;
        for (const Token& s : stmt) {
          if (s.kind != TokenKind::kPunct) continue;
          if (s.text == "<") ++angle;
          if (s.text == ">") angle = std::max(0, angle - 1);
          if (s.text == ">>") angle = std::max(0, angle - 2);
          if (s.text == "(" && angle == 0) has_paren = true;
        }
        if (has_paren || stmt.empty()) {
          // Function body (or stray block): skip it wholesale.
          int body = 0;
          for (; i < toks.size(); ++i) {
            if (punct(toks[i], "{")) ++body;
            if (punct(toks[i], "}") && --body == 0) break;
          }
          stmt.clear();
          continue;
        }
        // Brace initializer: fold into the statement.
        int init = 0;
        for (; i < toks.size(); ++i) {
          stmt.push_back(toks[i]);
          if (punct(toks[i], "{")) ++init;
          if (punct(toks[i], "}") && --init == 0) break;
        }
        continue;
      }
      ++depth;
      continue;
    }
    if (punct(t, "}")) {
      --depth;
      if (!stack.empty() && depth < stack.back().body_depth) {
        out.push_back(std::move(stack.back().decl));
        stack.pop_back();
      }
      stmt.clear();
      continue;
    }

    if (!at_member_level) continue;

    if (punct(t, ";")) {
      MemberField field;
      if (classify_member(stmt, field)) {
        stack.back().decl.fields.push_back(std::move(field));
      }
      stmt.clear();
      continue;
    }
    if (punct(t, ":") && stmt.size() == 1 &&
        (ident(stmt[0], "public") || ident(stmt[0], "private") ||
         ident(stmt[0], "protected"))) {
      stmt.clear();
      continue;
    }
    stmt.push_back(t);
  }
  return out;
}

// ---------------------------------------------------------------------------
// The rules themselves.

class Linter {
 public:
  Linter(const FileInput& input, const Config& config)
      : input_(input), config_(config) {}

  std::vector<Finding> run() {
    const LexResult lexed = lex(input_.content);
    toks_ = &lexed.tokens;

    std::set<std::string> unordered = unordered_names(lexed.tokens);
    std::set<std::string> atomics = atomic_names(lexed.tokens);
    if (!input_.header_context.empty()) {
      const LexResult header = lex(input_.header_context);
      unordered.merge(unordered_names(header.tokens));
      atomics.merge(atomic_names(header.tokens));
    }

    rule_det_rand();
    rule_det_random_device();
    rule_det_time();
    if (config_.output_scope) rule_det_unordered_iter(unordered);
    rule_lock_raw_mutex();
    rule_lock_unguarded_field();
    rule_lock_atomic_mix(atomics);
    rule_hyg_pragma_once();
    rule_hyg_using_namespace();
    rule_hyg_assert();

    const SuppressionScan sup = scan_suppressions(input_.path, lexed.comments);
    std::vector<Finding> kept;
    for (Finding& f : findings_) {
      const bool suppressed = std::any_of(
          sup.suppressions.begin(), sup.suppressions.end(),
          [&](const Suppression& s) {
            return s.line == f.line && s.rule == f.rule;
          });
      if (!suppressed) kept.push_back(std::move(f));
    }
    if (config_.severity_for("lint-suppression", input_.path,
                             find_rule("lint-suppression")->default_severity) !=
        Severity::kOff) {
      kept.insert(kept.end(), sup.malformed.begin(), sup.malformed.end());
    }
    std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    return kept;
  }

 private:
  const Token& tok(std::size_t i) const { return (*toks_)[i]; }
  std::size_t size() const { return toks_->size(); }

  bool enabled(std::string_view rule) const {
    return severity(rule) != Severity::kOff;
  }
  Severity severity(std::string_view rule) const {
    return config_.severity_for(rule, input_.path,
                                find_rule(rule)->default_severity);
  }
  void report(std::string_view rule, std::size_t line, std::string message) {
    findings_.push_back({input_.path, line, std::string(rule), severity(rule),
                         std::move(message)});
  }

  bool member_access_before(std::size_t i) const {
    return i > 0 && (punct(tok(i - 1), ".") || punct(tok(i - 1), "->"));
  }
  /// True when tokens[i] is qualified by a namespace other than std /
  /// std::chrono (so `util::time(...)` is somebody's own function).
  bool foreign_qualifier_before(std::size_t i) const {
    if (i < 2 || !punct(tok(i - 1), "::")) return false;
    const Token& q = tok(i - 2);
    return !(ident(q, "std") || ident(q, "chrono"));
  }
  bool called(std::size_t i) const {
    return i + 1 < size() && punct(tok(i + 1), "(");
  }

  void rule_det_rand() {
    if (!enabled("det-rand")) return;
    static constexpr std::array<std::string_view, 6> kLibcRng = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
    for (std::size_t i = 0; i < size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokenKind::kIdentifier) continue;
      if (std::find(kLibcRng.begin(), kLibcRng.end(), t.text) ==
          kLibcRng.end()) {
        continue;
      }
      if (!called(i) || member_access_before(i) || foreign_qualifier_before(i)) {
        continue;
      }
      report("det-rand", t.line,
             t.text + "() is unseeded libc RNG; use util::Rng (splitmix64, "
                      "seeded per run) so replays stay reproducible");
    }
  }

  void rule_det_random_device() {
    if (!enabled("det-random-device")) return;
    for (std::size_t i = 0; i < size(); ++i) {
      if (!ident(tok(i), "random_device")) continue;
      report("det-random-device", tok(i).line,
             "std::random_device draws nondeterministic entropy; seed "
             "util::Rng from the run's --seed instead");
    }
  }

  void rule_det_time() {
    if (!enabled("det-time")) return;
    static constexpr std::array<std::string_view, 7> kWallClock = {
        "time", "gettimeofday", "localtime", "gmtime", "mktime", "ftime",
        "clock"};
    for (std::size_t i = 0; i < size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "system_clock") {
        report("det-time", t.line,
               "std::chrono::system_clock is wall clock; simulation decisions "
               "use util::SimTime, measurements use steady_clock");
        continue;
      }
      if (std::find(kWallClock.begin(), kWallClock.end(), t.text) ==
          kWallClock.end()) {
        continue;
      }
      if (!called(i) || member_access_before(i) || foreign_qualifier_before(i)) {
        continue;
      }
      report("det-time", t.line,
             t.text + "() reads the wall clock; nothing that feeds replay or "
                      "serve output may depend on real time");
    }
  }

  void rule_det_unordered_iter(const std::set<std::string>& unordered) {
    if (!enabled("det-unordered-iter") || unordered.empty()) return;
    for (std::size_t i = 0; i < size(); ++i) {
      if (!ident(tok(i), "for") || i + 1 >= size() || !punct(tok(i + 1), "(")) {
        continue;
      }
      // Slice out the for-header.
      std::size_t end = i + 1;
      int depth = 0;
      for (; end < size(); ++end) {
        if (punct(tok(end), "(")) ++depth;
        if (punct(tok(end), ")") && --depth == 0) break;
      }
      bool classic = false;
      std::size_t colon = 0;
      depth = 0;
      for (std::size_t j = i + 2; j < end; ++j) {
        if (punct(tok(j), "(") || punct(tok(j), "[") || punct(tok(j), "{")) {
          ++depth;
        }
        if (punct(tok(j), ")") || punct(tok(j), "]") || punct(tok(j), "}")) {
          --depth;
        }
        if (depth != 0) continue;
        if (punct(tok(j), ";")) classic = true;
        if (punct(tok(j), ":") && colon == 0) colon = j;
      }
      if (classic) {
        // `for (auto it = m.begin(); ...)` — flag begin() on a tracked name.
        for (std::size_t j = i + 2; j + 2 < end; ++j) {
          if (tok(j).kind == TokenKind::kIdentifier &&
              unordered.count(tok(j).text) != 0 && punct(tok(j + 1), ".") &&
              (ident(tok(j + 2), "begin") || ident(tok(j + 2), "cbegin"))) {
            report("det-unordered-iter", tok(j).line,
                   "iterator loop over unordered container \"" + tok(j).text +
                       "\": iteration order is hash-dependent; sort or use an "
                       "ordered structure before it reaches output");
          }
        }
      } else if (colon != 0) {
        for (std::size_t j = colon + 1; j < end; ++j) {
          if (tok(j).kind == TokenKind::kIdentifier &&
              unordered.count(tok(j).text) != 0) {
            // `m.at(k)` / `m[k]` in the range expression iterates a
            // mapped value, not the map itself.
            if (j + 1 < end &&
                (punct(tok(j + 1), "[") ||
                 (punct(tok(j + 1), ".") && j + 2 < end &&
                  ident(tok(j + 2), "at")))) {
              continue;
            }
            report("det-unordered-iter", tok(j).line,
                   "range-for over unordered container \"" + tok(j).text +
                       "\": iteration order is hash-dependent; sort or use an "
                       "ordered structure before it reaches output");
            break;
          }
        }
      }
    }
  }

  void rule_lock_raw_mutex() {
    if (!enabled("lock-raw-mutex")) return;
    static constexpr std::array<std::string_view, 10> kRawTypes = {
        "mutex", "timed_mutex", "recursive_mutex", "shared_mutex",
        "shared_timed_mutex", "lock_guard", "unique_lock", "scoped_lock",
        "shared_lock", "recursive_timed_mutex"};
    for (std::size_t i = 2; i < size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokenKind::kIdentifier) continue;
      if (std::find(kRawTypes.begin(), kRawTypes.end(), t.text) ==
          kRawTypes.end()) {
        continue;
      }
      if (!punct(tok(i - 1), "::") || !ident(tok(i - 2), "std")) continue;
      report("lock-raw-mutex", t.line,
             "std::" + t.text + " is invisible to -Wthread-safety; use "
             "util::Mutex/MutexLock (or util::Spinlock) so S3_GUARDED_BY "
             "contracts stay compiler-checked");
    }
  }

  void rule_lock_unguarded_field() {
    if (!enabled("lock-unguarded-field")) return;
    for (const ClassDecl& decl : scan_classes(*toks_)) {
      if (!decl.owns_lock()) continue;
      for (const MemberField& f : decl.fields) {
        if (f.is_lock || f.is_atomic || f.exempt || f.annotated) continue;
        report("lock-unguarded-field", f.line,
               "\"" + decl.name + "\" owns a lock but field \"" + f.name +
                   "\" has no S3_GUARDED_BY; tie it to its mutex (or mark "
                   "the protocol with S3_NO_THREAD_SAFETY_ANALYSIS)");
      }
    }
  }

  void rule_lock_atomic_mix(const std::set<std::string>& atomics) {
    if (!enabled("lock-atomic-mix") || atomics.empty()) return;
    for (std::size_t i = 0; i < size(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokenKind::kIdentifier || atomics.count(t.text) == 0) {
        continue;
      }
      if (member_access_before(i)) continue;  // other object's field
      // `Type name = ...` declares a fresh local that merely shares the
      // atomic field's name; the preceding type token gives it away.
      if (i > 0 && (tok(i - 1).kind == TokenKind::kIdentifier ||
                    punct(tok(i - 1), "*") || punct(tok(i - 1), "&") ||
                    punct(tok(i - 1), ">") || punct(tok(i - 1), "::"))) {
        continue;
      }
      if (i + 1 >= size() || tok(i + 1).kind != TokenKind::kPunct) continue;
      const std::string& op = tok(i + 1).text;
      const bool write = op == "=" || op == "++" || op == "--" || op == "+=" ||
                         op == "-=" || op == "|=" || op == "&=" || op == "^=";
      if (!write) continue;
      report("lock-atomic-mix", t.line,
             "\"" + t.text + "\" is std::atomic but is written through "
             "operator" + op + " (implicit seq_cst); spell the access "
             ".store()/.fetch_*() with an explicit memory order");
    }
  }

  void rule_hyg_pragma_once() {
    if (!enabled("hyg-pragma-once") || !is_header(input_.path)) return;
    for (std::size_t i = 0; i < size(); ++i) {
      if (tok(i).kind != TokenKind::kDirective) continue;
      std::istringstream d(tok(i).text);
      std::string hash_word, pragma_word;
      d >> hash_word >> pragma_word;
      if ((hash_word == "#pragma" && pragma_word == "once") ||
          (hash_word == "#" && pragma_word == "pragma")) {
        return;  // first directive is the guard — good
      }
      report("hyg-pragma-once", tok(i).line,
             "first preprocessor directive must be #pragma once (found \"" +
                 tok(i).text + "\")");
      return;
    }
    report("hyg-pragma-once", 1, "header has no #pragma once");
  }

  void rule_hyg_using_namespace() {
    if (!enabled("hyg-using-namespace") || !is_header(input_.path)) return;
    for (std::size_t i = 0; i + 1 < size(); ++i) {
      if (ident(tok(i), "using") && ident(tok(i + 1), "namespace")) {
        report("hyg-using-namespace", tok(i).line,
               "using namespace in a header injects the namespace into every "
               "translation unit that includes it");
      }
    }
  }

  void rule_hyg_assert() {
    if (!enabled("hyg-assert")) return;
    for (std::size_t i = 0; i < size(); ++i) {
      if (!ident(tok(i), "assert") || !called(i) || member_access_before(i)) {
        continue;
      }
      report("hyg-assert", tok(i).line,
             "bare assert() vanishes in release builds; use S3_PRECONDITION / "
             "S3_POSTCONDITION / S3_INVARIANT (runtime-selectable, counted on "
             "the metrics bus)");
    }
  }

  const FileInput& input_;
  const Config& config_;
  const std::vector<Token>* toks_ = nullptr;
  std::vector<Finding> findings_;
};

}  // namespace

std::span<const RuleInfo> all_rules() { return kRules; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : kRules) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

std::string Finding::format() const {
  return path + ":" + std::to_string(line) + ": [" + rule + "] " +
         severity_name(severity) + ": " + message;
}

std::vector<Finding> lint_file(const FileInput& input, const Config& config) {
  return Linter(input, config).run();
}

}  // namespace s3::lint
