#include "s3lint/config.h"

#include <sstream>

#include "s3lint/rules.h"

namespace s3::lint {

namespace {

ConfigParseResult fail(std::string_view path, std::size_t line_no,
                       const std::string& what) {
  ConfigParseResult r;
  r.error = std::string(path) + " line " + std::to_string(line_no) + ": " + what;
  return r;
}

/// A rule pattern is valid when it is `*`, a known rule id, or a
/// `prefix*` that covers at least one known rule.
bool valid_rule_pattern(std::string_view pattern) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*') {
    for (const RuleInfo& rule : all_rules()) {
      if (Config::pattern_matches(pattern, rule.id)) return true;
    }
    return false;
  }
  return find_rule(pattern) != nullptr;
}

}  // namespace

bool Config::pattern_matches(std::string_view pattern, std::string_view rule) {
  if (!pattern.empty() && pattern.back() == '*') {
    return rule.substr(0, pattern.size() - 1) ==
           pattern.substr(0, pattern.size() - 1);
  }
  return pattern == rule;
}

Severity Config::severity_for(std::string_view rule, std::string_view path,
                              Severity fallback) const {
  Severity out = fallback;
  for (const SeverityOverride& o : overrides) {
    if (pattern_matches(o.rule_pattern, rule)) out = o.severity;
  }
  for (const Allow& a : allows) {
    if (pattern_matches(a.rule_pattern, rule) && path.size() >= a.path_suffix.size() &&
        path.substr(path.size() - a.path_suffix.size()) == a.path_suffix) {
      out = Severity::kOff;
    }
  }
  return out;
}

bool Config::excluded(std::string_view path) const {
  for (const std::string& e : excludes) {
    if (path.find(e) != std::string_view::npos) return true;
  }
  return false;
}

ConfigParseResult parse_config(std::string_view text, std::string_view path,
                               Config base) {
  ConfigParseResult result;
  result.config = std::move(base);

  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);

    std::istringstream ls(line);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only line

    if (verb == "disable") {
      std::string rule, extra;
      if (!(ls >> rule) || (ls >> extra)) {
        return fail(path, line_no, "disable wants exactly one rule pattern");
      }
      if (!valid_rule_pattern(rule)) {
        return fail(path, line_no, "unknown rule \"" + rule + "\"");
      }
      result.config.overrides.push_back({rule, Severity::kOff});
    } else if (verb == "severity") {
      std::string rule, level, extra;
      if (!(ls >> rule >> level) || (ls >> extra)) {
        return fail(path, line_no, "severity wants RULE error|warning|off");
      }
      if (!valid_rule_pattern(rule)) {
        return fail(path, line_no, "unknown rule \"" + rule + "\"");
      }
      Severity sev;
      if (level == "error") {
        sev = Severity::kError;
      } else if (level == "warning") {
        sev = Severity::kWarning;
      } else if (level == "off") {
        sev = Severity::kOff;
      } else {
        return fail(path, line_no,
                    "severity level must be error, warning, or off (got \"" +
                        level + "\")");
      }
      result.config.overrides.push_back({rule, sev});
    } else if (verb == "allow") {
      std::string rule, suffix, extra;
      if (!(ls >> rule >> suffix) || (ls >> extra)) {
        return fail(path, line_no, "allow wants RULE PATH-SUFFIX");
      }
      if (!valid_rule_pattern(rule)) {
        return fail(path, line_no, "unknown rule \"" + rule + "\"");
      }
      result.config.allows.push_back({rule, suffix});
    } else if (verb == "exclude") {
      std::string sub, extra;
      if (!(ls >> sub) || (ls >> extra)) {
        return fail(path, line_no, "exclude wants exactly one path substring");
      }
      result.config.excludes.push_back(sub);
    } else if (verb == "output-scope") {
      std::string flag, extra;
      if (!(ls >> flag) || (ls >> extra) || (flag != "on" && flag != "off")) {
        return fail(path, line_no, "output-scope wants on or off");
      }
      result.config.output_scope = flag == "on";
    } else {
      return fail(path, line_no, "unknown directive \"" + verb + "\"");
    }
  }
  return result;
}

}  // namespace s3::lint
