// Lightweight C++ tokenizer for s3lint.
//
// s3lint's rules need token-level truth ("is this `rand` an identifier
// or the inside of a string literal?"), not a full parse, so this is a
// deliberately small lexer: comments, string/char literals (including
// raw strings), preprocessor directives, identifiers, pp-numbers and a
// maximal-munch set of multi-character operators. No macro expansion,
// no semantic analysis — rules layer their own heuristics on top and
// every rule supports inline suppression for the cases the heuristics
// get wrong.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace s3::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,     ///< string literal, text excludes the quotes
  kCharacter,  ///< character literal
  kPunct,      ///< operator/punctuator, multi-char ops pre-merged
  kDirective,  ///< whole preprocessor logical line ("#pragma once")
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line;  ///< 1-based
};

/// One comment, kept out of the token stream. Rules scan these for
/// suppression directives.
struct Comment {
  std::string text;      ///< without the // or /* */ markers
  std::size_t line;      ///< 1-based line the comment starts on
  bool own_line;         ///< nothing but whitespace precedes it
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: malformed input (unterminated
/// literals and the like) is consumed best-effort so a half-edited
/// file still gets linted.
LexResult lex(std::string_view source);

}  // namespace s3::lint
