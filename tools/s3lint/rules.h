// s3lint rule registry and the per-file lint driver.
//
// Three rule families, each encoding a project invariant the tests can
// only check dynamically:
//
//   determinism — replay/serve/model output must be a pure function of
//     (inputs, seeds): no wall clock, no libc RNG, no entropy source,
//     and no output derived from unordered-container iteration order.
//   lock discipline — shared state uses the annotated util::Mutex /
//     util::Spinlock capabilities so clang's -Wthread-safety analysis
//     sees every acquisition, and every mutable field of a lock-owning
//     class is tied to its lock with S3_GUARDED_BY.
//   hygiene — headers are `#pragma once`, never `using namespace`;
//     src/ uses the S3_PRECONDITION contract family instead of bare
//     assert so checks stay runtime-selectable.
//
// Findings can be suppressed inline, one rule at a time, only with a
// reason:
//
//   ... code ...  // s3lint: allow(det-unordered-iter): sorted below
//
// An own-line suppression comment covers the next line. A suppression
// without a reason (or naming an unknown rule) is itself a finding —
// the audit trail is the point.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "s3lint/config.h"

namespace s3::lint {

struct RuleInfo {
  std::string_view id;
  Severity default_severity;
  std::string_view summary;
};

/// Every rule s3lint knows, sorted by id.
std::span<const RuleInfo> all_rules();

/// nullptr when `id` names no rule.
const RuleInfo* find_rule(std::string_view id);

struct Finding {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;

  /// "path:line: [rule] message" — the diagnostic grammar the CI job
  /// and the fixture tests both key on.
  std::string format() const;
};

/// One file to lint. `header_context` is the text of the sibling
/// header (foo.h next to foo.cpp) when one exists: member fields are
/// declared there, and the determinism/atomic rules need their types
/// to judge loops and accesses in the .cpp.
struct FileInput {
  std::string path;  ///< root-relative, '/'-separated
  std::string_view content;
  std::string_view header_context = {};
};

/// Lints one file under an effective config. Deterministic: findings
/// come out ordered by (line, rule).
std::vector<Finding> lint_file(const FileInput& input, const Config& config);

}  // namespace s3::lint
