#include "s3lint/lexer.h"

#include <array>
#include <cctype>

namespace s3::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
constexpr std::array<std::string_view, 22> kOperators = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "==", "!=", "<=",
    ">=",  "+=",  "-=",  "*=",  "/=", "%=", "|=", "&=", "^=", "&&", "||",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  bool only_ws_before() const {
    for (std::size_t i = line_start_; i < pos_; ++i) {
      const char c = src_[i];
      if (c != ' ' && c != '\t' && c != '\r') return false;
    }
    return true;
  }

  void line_comment() {
    const std::size_t start_line = line_;
    const bool own = only_ws_before();
    pos_ += 2;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    out_.comments.push_back(
        {std::string(src_.substr(begin, pos_ - begin)), start_line, own});
  }

  void block_comment() {
    const std::size_t start_line = line_;
    const bool own = only_ws_before();
    pos_ += 2;
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    out_.comments.push_back(
        {std::string(src_.substr(begin, end - begin)), start_line, own});
  }

  /// Whole logical preprocessor line, backslash continuations folded.
  /// Trailing // comments still become Comment entries so suppressions
  /// can sit on directive lines.
  void directive() {
    const std::size_t start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          ++line_;
          ++pos_;
          line_start_ = pos_;
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      text.push_back(c);
      ++pos_;
    }
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                             text.back() == '\r')) {
      text.pop_back();
    }
    out_.tokens.push_back({TokenKind::kDirective, std::move(text), start_line});
    at_line_start_ = false;
  }

  void string_literal() {
    const std::size_t start_line = line_;
    ++pos_;  // opening quote
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep going
      ++pos_;
    }
    const std::size_t end = pos_;
    if (pos_ < src_.size()) ++pos_;  // closing quote
    out_.tokens.push_back({TokenKind::kString,
                           std::string(src_.substr(begin, end - begin)),
                           start_line});
  }

  void char_literal() {
    const std::size_t start_line = line_;
    ++pos_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') break;  // unterminated (or a digit quote)
      ++pos_;
    }
    const std::size_t end = pos_;
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    out_.tokens.push_back({TokenKind::kCharacter,
                           std::string(src_.substr(begin, end - begin)),
                           start_line});
  }

  void raw_string() {
    const std::size_t start_line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // (
    const std::string close = ")" + delim + "\"";
    const std::size_t begin = pos_;
    const std::size_t found = src_.find(close, pos_);
    const std::size_t end = found == std::string_view::npos ? src_.size() : found;
    for (std::size_t i = begin; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = found == std::string_view::npos ? src_.size() : found + close.size();
    out_.tokens.push_back({TokenKind::kString,
                           std::string(src_.substr(begin, end - begin)),
                           start_line});
  }

  void identifier() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    std::string text(src_.substr(begin, pos_ - begin));
    // Encoding-prefixed string literal (u8"...", L"...").
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      string_literal();
      return;
    }
    out_.tokens.push_back({TokenKind::kIdentifier, std::move(text), line_});
  }

  /// pp-number: digits plus alnum, '.', digit separators, and signed
  /// exponents — close enough to group any C++ numeric literal into
  /// one token.
  void number() {
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back(
        {TokenKind::kNumber, std::string(src_.substr(begin, pos_ - begin)),
         line_});
  }

  void punct() {
    for (const std::string_view op : kOperators) {
      if (src_.substr(pos_).starts_with(op)) {
        out_.tokens.push_back({TokenKind::kPunct, std::string(op), line_});
        pos_ += op.size();
        return;
      }
    }
    out_.tokens.push_back({TokenKind::kPunct, std::string(1, src_[pos_]), line_});
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
  bool at_line_start_ = true;
  LexResult out_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace s3::lint
