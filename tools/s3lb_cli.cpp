// s3lb — command-line front-end.
//
//   s3lb generate  --out FILE [--users N] [--days D] [--buildings B]
//                  [--aps K] [--seed S]
//       Synthesize a campus workload and write it as CSV.
//
//   s3lb replay    --in FILE --out FILE --policy P [--model FILE]
//                  [--buildings B] [--aps K] [--window SECONDS]
//                  [--threads N] [--metrics]
//                  [--fault-plan FILE] [--fault-seed S]
//       Assign APs to a workload under policy P (any name registered
//       with the selector registry; llf | llf-demand | llf-stations |
//       rssi | random | s3 | s3-online ship by default) and write the
//       result. s3 and s3-online require --model. --threads shards the
//       replay per controller domain (0 = all cores; the assignment is
//       identical for every thread count). --metrics dumps the
//       instrumentation bus to stderr. --fault-plan injects a
//       deterministic fault schedule (s3fault v1 format: AP outages,
//       model outages, clique-budget squeezes, admission failures);
//       --fault-seed (default 1) seeds the per-association failure
//       draws. The fault schedule is a pure function of (plan, seed),
//       so the assignment stays identical for every --threads value.
//
//   s3lb train     --in FILE --out FILE [--alpha A] [--coleave-min M]
//                  [--history DAYS] [--buildings B] [--aps K]
//       Learn a social model from an *assigned* trace.
//
//   s3lb compare   [--users N] [--days D] [--buildings B] [--aps K]
//                  [--seed S] [--train DAYS] [--test DAYS]
//       Full pipeline: generate, train, score LLF vs S3, print the
//       per-site table and headline gains.
//
//   s3lb check trace --in FILE [--buildings B] [--aps K] [--mode M]
//   s3lb check model --in FILE [--threshold T] [--cover FILE] [--mode M]
//                    [--stale-days D] [--now-day N]
//       Run the s3::check structural validators over an input and exit
//       non-zero if any invariant is violated. `trace` validates the
//       session log against the topology (plus load conservation and
//       β ∈ [1/n, 1] when the trace is assigned); `model` validates the
//       social relation index θ and its graph, and — with --cover — a
//       clique cover read from FILE (one clique per line, vertex ids
//       separated by spaces). --stale-days D rejects a model whose
//       recorded training horizon is more than D days before --now-day
//       (both in trace time; --now-day is required with --stale-days,
//       and a model that never recorded a horizon always fails the
//       freshness gate). --mode off|count|log|abort selects the
//       contract dispatch (default count; abort stops at the first
//       violation).
//
// The topology flags must match between commands operating on the same
// trace (the CSV carries session building ids, not the AP layout).

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "s3/check/contract.h"
#include "s3/check/validators.h"
#include "s3/core/evaluation.h"
#include "s3/core/online_s3.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/runtime/replay_driver.h"
#include "s3/social/graph.h"
#include "s3/social/model_io.h"
#include "s3/trace/generator.h"
#include "s3/trace/binary_io.h"
#include "s3/trace/io.h"
#include "s3/util/metrics.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  std::exit(1);
}

/// Strict integer parse: the whole token must be a decimal integer in
/// range, or the process dies naming the offending flag. strtol's
/// silent `12abc` → 12 and out-of-range saturation both masked typos.
long parse_long(const std::string& flag, const std::string& text) {
  long value = 0;
  const char* first = text.c_str();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    die("--" + flag + ": integer out of range: \"" + text + "\"");
  }
  if (ec != std::errc() || ptr != last) {
    die("--" + flag + ": expected an integer, got \"" + text + "\"");
  }
  return value;
}

/// Strict floating-point parse; same contract as parse_long.
double parse_real(const std::string& flag, const std::string& text) {
  double value = 0.0;
  const char* first = text.c_str();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    die("--" + flag + ": number out of range: \"" + text + "\"");
  }
  if (ec != std::errc() || ptr != last) {
    die("--" + flag + ": expected a number, got \"" + text + "\"");
  }
  return value;
}

struct Flags {
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }
  std::string get(const std::string& key, const std::string& def = "") const {
    const auto it = values.find(key);
    return it == values.end() ? def : it->second;
  }
  long num(const std::string& key, long def) const {
    const auto it = values.find(key);
    return it == values.end() ? def : parse_long(key, it->second);
  }
  double real(const std::string& key, double def) const {
    const auto it = values.find(key);
    return it == values.end() ? def : parse_real(key, it->second);
  }
};

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << a << "\n";
      std::exit(2);
    }
    const std::string key = a.substr(2);
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      flags.values[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // Assign through a temporary: GCC 12's -Wrestrict misfires on
      // inlined string::operator=(const char*) at -O3 (PR105651).
      flags.values[key] = std::string(argv[++i]);
    } else {
      flags.values[key] = std::string("1");
    }
  }
  return flags;
}

wlan::Network network_from(const Flags& f) {
  wlan::CampusLayout layout;
  layout.num_buildings = static_cast<std::size_t>(f.num("buildings", 8));
  layout.aps_per_building = static_cast<std::size_t>(f.num("aps", 12));
  return wlan::make_campus(layout);
}

bool wants_binary(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

trace::Trace load_trace(const std::string& path) {
  // Sniff the format: binary traces carry a magic header.
  std::ifstream probe(path, std::ios::binary);
  if (!probe) die("cannot open trace " + path);
  if (trace::sniff_binary(probe)) {
    const trace::BinaryReadResult r = trace::read_binary_file(path);
    if (!r.trace) die("cannot read trace " + path + ": " + r.error);
    return *r.trace;
  }
  const trace::ReadResult r = trace::read_csv_file(path);
  if (!r.trace) die("cannot read trace " + path + ": " + r.error);
  return *r.trace;
}

/// Writes CSV by default; binary when the path ends in ".bin".
void store_trace(const std::string& path, const trace::Trace& t) {
  const bool ok = wants_binary(path) ? trace::write_binary_file(path, t)
                                     : trace::write_csv_file(path, t);
  if (!ok) die("cannot write " + path);
}

int cmd_generate(const Flags& f) {
  if (!f.has("out")) die("generate: --out is required");
  trace::GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(f.num("seed", 42));
  cfg.num_users = static_cast<std::size_t>(f.num("users", 2400));
  cfg.num_days = static_cast<std::size_t>(f.num("days", 24));
  cfg.layout.num_buildings = static_cast<std::size_t>(f.num("buildings", 8));
  cfg.layout.aps_per_building = static_cast<std::size_t>(f.num("aps", 12));
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  store_trace(f.get("out"), g.workload);
  std::cout << "wrote " << f.get("out") << ": " << g.workload.size()
            << " sessions, " << g.truth.groups.size() << " social groups\n";
  return 0;
}

int cmd_replay(const Flags& f) {
  if (!f.has("in") || !f.has("out")) die("replay: --in and --out required");
  if (f.has("check")) {
    const std::optional<check::ContractMode> mode =
        check::parse_contract_mode(f.get("check"));
    if (!mode) die("replay: --check must be off|count|log|abort");
    check::set_contract_mode(*mode);
  }
  const trace::Trace workload = load_trace(f.get("in"));
  const wlan::Network net = network_from(f);

  const std::string policy_name = f.get("policy", "llf");
  std::optional<social::SocialIndexModel> model;
  core::SelectorSpec spec;
  // The bare "llf" the operator deploys counts stations (DESIGN.md §2);
  // demand-LLF is the separate "llf-demand" policy name.
  spec.llf_metric = core::LoadMetric::kStations;
  spec.random_seed = static_cast<std::uint64_t>(f.num("seed", 1));
  spec.net = &net;
  if (policy_name == "s3" || policy_name == "s3-online") {
    if (!f.has("model")) die("replay --policy " + policy_name + " needs --model");
    social::ModelReadResult mr = social::read_model_file(f.get("model"));
    if (!mr.model) die("cannot read model: " + mr.error);
    model = std::move(*mr.model);
    spec.model = &*model;
    spec.base_model = &*model;
  }
  std::unique_ptr<sim::SelectorFactory> factory;
  try {
    factory = core::make_selector_factory(policy_name, spec);
  } catch (const std::invalid_argument& e) {
    die(e.what());
  }

  runtime::ReplayDriverConfig rc;
  rc.replay.dispatch_window_s = f.num("window", 120);
  rc.threads = static_cast<unsigned>(f.num("threads", 0));
  std::optional<fault::FaultInjector> injector;
  if (f.has("fault-plan")) {
    const fault::FaultPlanParseResult pr =
        fault::read_fault_plan_file(f.get("fault-plan"));
    if (!pr.ok()) die("cannot read fault plan: " + pr.error);
    try {
      fault::validate_plan(pr.plan, &net);
    } catch (const std::exception& e) {
      die("bad fault plan: " + std::string(e.what()));
    }
    injector.emplace(pr.plan,
                     static_cast<std::uint64_t>(f.num("fault-seed", 1)));
    rc.injector = &*injector;
  }
  runtime::ReplayDriver driver(net, rc);
  const sim::ReplayResult r = driver.run(workload, *factory);
  store_trace(f.get("out"), r.assigned);
  std::cout << "replayed " << r.stats.num_sessions << " sessions under "
            << factory->name() << " (" << r.stats.num_batches
            << " batches, mean size "
            << util::fmt(r.stats.mean_batch_size, 2) << ", "
            << r.stats.forced_overloads << " forced overloads, "
            << driver.effective_threads() << " threads)\n"
            << "wrote " << f.get("out") << "\n";
  if (injector) {
    std::cout << "faults: " << r.stats.fault_evictions << " evictions, "
              << r.stats.reassociations << " re-associations ("
              << r.stats.retry_attempts << " retries, "
              << r.stats.abandoned_sessions << " abandoned), "
              << r.stats.admission_rejections << " admission rejections, "
              << r.stats.degraded_batches << " degraded batches ("
              << r.stats.transitions_to_degraded << " degrade / "
              << r.stats.transitions_to_healthy << " recover transitions)\n";
  }
  if (f.has("metrics")) {
    std::cerr << "# instrumentation bus\n";
    util::metrics().dump(std::cerr);
  }
  return 0;
}

int cmd_train(const Flags& f) {
  if (!f.has("in") || !f.has("out")) die("train: --in and --out required");
  const trace::Trace assigned = load_trace(f.get("in"));
  if (!assigned.fully_assigned()) {
    die("train: trace must be assigned (run `s3lb replay` first)");
  }
  social::SocialModelConfig cfg;
  cfg.alpha = f.real("alpha", 0.3);
  cfg.events.co_leave_window =
      util::SimTime::from_minutes(f.num("coleave-min", 5));
  cfg.history_days = static_cast<int>(f.num("history", 0));
  const social::SocialIndexModel model =
      social::SocialIndexModel::train(assigned, cfg);
  if (!social::write_model_file(f.get("out"), model)) {
    die("cannot write " + f.get("out"));
  }
  std::cout << "trained on " << assigned.size() << " sessions: "
            << model.pair_stats().size() << " pairs, "
            << model.typing().num_types << " usage types\n"
            << "wrote " << f.get("out") << "\n";
  return 0;
}

int cmd_compare(const Flags& f) {
  trace::GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(f.num("seed", 42));
  cfg.num_users = static_cast<std::size_t>(f.num("users", 2400));
  cfg.num_days = static_cast<std::size_t>(f.num("days", 24));
  cfg.layout.num_buildings = static_cast<std::size_t>(f.num("buildings", 8));
  cfg.layout.aps_per_building = static_cast<std::size_t>(f.num("aps", 12));
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  core::EvaluationConfig eval;
  eval.train_days = static_cast<int>(f.num("train", 21));
  eval.test_days = static_cast<int>(f.num("test", 3));
  const core::ComparisonResult r =
      core::compare_s3_vs_llf(g.network, g.workload, eval);

  util::TextTable table({"site", "llf", "s3", "gain_%"});
  for (std::size_t c = 0; c < r.llf.per_controller_mean.size(); ++c) {
    const double gain =
        r.llf.per_controller_mean[c] > 0
            ? 100.0 * (r.s3.per_controller_mean[c] -
                       r.llf.per_controller_mean[c]) /
                  r.llf.per_controller_mean[c]
            : 0.0;
    table.add_row({std::to_string(c), util::fmt(r.llf.per_controller_mean[c]),
                   util::fmt(r.s3.per_controller_mean[c]),
                   util::fmt(gain, 1)});
  }
  std::cout << table;
  std::cout << "\noverall: LLF " << util::fmt(r.llf.mean) << "  S3 "
            << util::fmt(r.s3.mean) << "  gain "
            << util::fmt(100.0 * r.balance_gain, 1) << " %  (leave-peak "
            << util::fmt(100.0 * r.leave_peak_gain, 1) << " %)\n";
  return 0;
}

/// Reads a clique cover: one clique per line, vertex ids separated by
/// whitespace; blank lines and `#` comments are skipped.
std::vector<std::vector<std::size_t>> load_cover_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open cover " + path);
  std::vector<std::vector<std::size_t>> cover;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::vector<std::size_t> clique;
    std::string token;
    while (fields >> token) {
      const long v = parse_long("cover", token);
      if (v < 0) die("--cover: negative vertex id \"" + token + "\"");
      clique.push_back(static_cast<std::size_t>(v));
    }
    if (!clique.empty()) cover.push_back(std::move(clique));
  }
  return cover;
}

int report_outcome(const check::CheckReport& report,
                   const std::string& subject) {
  if (report.ok()) {
    std::cout << subject << ": ok\n";
    return 0;
  }
  for (const check::CheckIssue& issue : report.issues()) {
    std::cerr << "check failed: " << issue.validator << ": " << issue.message
              << "\n";
  }
  if (report.dropped() > 0) {
    std::cerr << "check failed: ... and " << report.dropped()
              << " further issues\n";
  }
  std::cerr << subject << ": "
            << (report.issues().size() + report.dropped())
            << " invariant violations\n";
  return 1;
}

int cmd_check(const std::string& what, const Flags& f) {
  if (!f.has("in")) die("check: --in is required");
  const std::optional<check::ContractMode> mode =
      check::parse_contract_mode(f.get("mode", "count"));
  if (!mode) die("check: --mode must be off|count|log|abort");
  // The validators record findings in their report regardless of the
  // contract mode; the mode chooses the side channel (metrics bus,
  // stderr, or throw-on-first).
  const check::ScopedContractMode scoped(*mode);

  if (what == "trace") {
    const trace::Trace t = load_trace(f.get("in"));
    const wlan::Network net = network_from(f);
    check::CheckReport report = check::validate_trace(t, &net);
    if (t.fully_assigned()) {
      report.merge(check::validate_load_state(net, t));
    }
    return report_outcome(report, f.get("in"));
  }
  if (what == "model") {
    social::ModelReadResult mr = social::read_model_file(f.get("in"));
    if (!mr.model) die("cannot read model: " + mr.error);
    check::SocialGraphCheckOptions opts;
    opts.theta_threshold = f.real("threshold", opts.theta_threshold);
    check::CheckReport report = check::validate_social_graph(*mr.model, opts);
    const social::WeightedGraph graph =
        check::build_social_graph(*mr.model, opts.theta_threshold);
    report.merge(check::validate_social_graph(graph, &*mr.model, opts));
    if (f.has("cover")) {
      report.merge(
          check::validate_clique_cover(graph, load_cover_file(f.get("cover"))));
    }
    if (f.has("stale-days")) {
      if (!f.has("now-day")) die("check model: --stale-days needs --now-day");
      report.merge(check::validate_model_freshness(
          *mr.model, util::SimTime::from_days(f.num("now-day", 0)),
          util::SimTime::from_days(f.num("stale-days", 0))));
    }
    return report_outcome(report, f.get("in"));
  }
  die("check: unknown target \"" + what + "\" (expected trace|model)");
}

void usage() {
  std::cout <<
      "usage: s3lb <generate|replay|train|compare|check> [--flag value ...]\n"
      "  generate --out FILE [--users N --days D --buildings B --aps K --seed S]\n"
      "  replay   --in FILE --out FILE\n"
      "           --policy llf|llf-demand|llf-stations|rssi|random|s3|s3-online\n"
      "           [--model FILE --buildings B --aps K --window SECONDS]\n"
      "           [--threads N --metrics --check off|count|log|abort]\n"
      "           [--fault-plan FILE --fault-seed S]\n"
      "  train    --in ASSIGNED --out MODEL [--alpha A --coleave-min M --history D]\n"
      "  compare  [--users N --days D --buildings B --aps K --seed S --train D --test D]\n"
      "  check    trace --in FILE [--buildings B --aps K --mode M]\n"
      "  check    model --in FILE [--threshold T --cover FILE --mode M]\n"
      "           [--stale-days D --now-day N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "check") {
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        die("check: expected `s3lb check <trace|model> --in FILE ...`");
      }
      return cmd_check(argv[2], parse_flags(argc, argv, 3));
    }
    const Flags flags = parse_flags(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "replay") return cmd_replay(flags);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "compare") return cmd_compare(flags);
  } catch (const std::exception& e) {
    die(e.what());
  }
  usage();
  return 2;
}
