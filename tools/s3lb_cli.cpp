// s3lb — command-line front-end.
//
//   s3lb generate  --out FILE [--users N] [--days D] [--buildings B]
//                  [--aps K] [--seed S]
//       Synthesize a campus workload and write it as CSV.
//
//   s3lb replay    --in FILE --out FILE --policy P [--model FILE]
//                  [--buildings B] [--aps K] [--window SECONDS]
//                  [--threads N] [--metrics]
//                  [--fault-plan FILE] [--fault-seed S]
//       Assign APs to a workload under policy P (any name registered
//       with the selector registry; llf | llf-demand | llf-stations |
//       rssi | random | s3 | s3-online ship by default) and write the
//       result. s3 and s3-online require --model. --threads shards the
//       replay per controller domain (0 = all cores; the assignment is
//       identical for every thread count). --metrics dumps the
//       instrumentation bus to stderr. --fault-plan injects a
//       deterministic fault schedule (s3fault v1 format: AP outages,
//       model outages, clique-budget squeezes, admission failures);
//       --fault-seed (default 1) seeds the per-association failure
//       draws. The fault schedule is a pure function of (plan, seed),
//       so the assignment stays identical for every --threads value.
//       Plans with controller-outage windows (and any run with
//       --replicas) go through the replicated driver: each domain runs
//       one primary + --replicas backup controllers (default 1), a
//       crashed primary's backup is promoted deterministically and
//       catches up from the replication log, and the failover ledger is
//       printed. --replicas 0 rides outages headless (arrivals dropped,
//       retries parked until the restart). --heartbeat sets the
//       logical-clock replication period in seconds.
//
//   s3lb serve     --policy P [--model FILE] [--buildings B] [--aps K]
//                  [--in FILE] [--out FILE] [--seed S]
//                  [--fault-plan FILE] [--fault-seed S] [--metrics]
//       Run the live association pipeline over the line protocol
//       (s3/serve/line_protocol.h): requests are read from --in
//       (default stdin), one response per line goes to --out (default
//       stdout), and a run summary goes to stderr. Unlike replay there
//       is no trace — arrivals and departures stream in as they
//       happen, s3's social counters update live, and the fault
//       machinery (AP outages, model outages, degraded fallback)
//       applies to the stream exactly as it does to a replayed batch.
//
//   s3lb train     --in FILE --out FILE [--alpha A] [--coleave-min M]
//                  [--history DAYS] [--buildings B] [--aps K]
//                  [--model-format text|binary]
//       Learn a social model from an *assigned* trace. --model-format
//       selects the on-disk encoding (text is the default; binary is
//       smaller and loads faster). replay auto-detects either format.
//
//   s3lb compare   [--users N] [--days D] [--buildings B] [--aps K]
//                  [--seed S] [--train DAYS] [--test DAYS]
//       Full pipeline: generate, train, score LLF vs S3, print the
//       per-site table and headline gains.
//
//   s3lb check trace --in FILE [--buildings B] [--aps K] [--mode M]
//   s3lb check model --in FILE [--threshold T] [--cover FILE] [--mode M]
//                    [--stale-days D] [--now-day N]
//   s3lb check fault-plan --in FILE [--buildings B] [--aps K] [--mode M]
//       Run the s3::check structural validators over an input and exit
//       non-zero if any invariant is violated. `trace` validates the
//       session log against the topology (plus load conservation and
//       β ∈ [1/n, 1] when the trace is assigned); `model` validates the
//       social relation index θ and its graph, and — with --cover — a
//       clique cover read from FILE (one clique per line, vertex ids
//       separated by spaces). --stale-days D rejects a model whose
//       recorded training horizon is more than D days before --now-day
//       (both in trace time; --now-day is required with --stale-days,
//       and a model that never recorded a horizon always fails the
//       freshness gate). --mode off|count|log|abort selects the
//       contract dispatch (default count; abort stops at the first
//       violation).
//
// The topology flags must match between commands operating on the same
// trace (the CSV carries session building ids, not the AP layout).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "s3/check/contract.h"
#include "s3/check/validators.h"
#include "s3/core/evaluation.h"
#include "s3/core/online_s3.h"
#include "s3/core/selector_factory.h"
#include "s3/fault/fault_injector.h"
#include "s3/fault/fault_plan.h"
#include "s3/repl/replicated_driver.h"
#include "s3/serve/line_protocol.h"
#include "s3/serve/serve_pipeline.h"
#include "s3/runtime/replay_driver.h"
#include "s3/social/graph.h"
#include "s3/social/model_io.h"
#include "s3/trace/generator.h"
#include "s3/trace/binary_io.h"
#include "s3/trace/io.h"
#include "s3/util/argspec.h"
#include "s3/util/metrics.h"
#include "s3/util/table.h"

using namespace s3;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  std::exit(1);
}

using util::ArgKind;
using util::ArgSpec;
using Flags = util::ParsedArgs;

// Per-subcommand flag tables. Parsing, typed-value validation, and the
// unknown-flag/stray-positional rejection all live in s3::util's shared
// ArgSpec parser — benches use the same machinery, so a typoed flag is
// reported identically everywhere.
constexpr ArgSpec kGenerateSpecs[] = {
    {"out", ArgKind::kString, "output trace (CSV, or .bin for binary)"},
    {"users", ArgKind::kInt, "population size (default 2400)"},
    {"days", ArgKind::kInt, "trace span in days (default 24)"},
    {"buildings", ArgKind::kInt, "campus buildings (default 8)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
    {"seed", ArgKind::kInt, "generator seed (default 42)"},
};

constexpr ArgSpec kReplaySpecs[] = {
    {"in", ArgKind::kString, "input workload trace"},
    {"out", ArgKind::kString, "assigned-trace output"},
    {"policy", ArgKind::kString, "selector policy name (default llf)"},
    {"model", ArgKind::kString, "social model (s3 / s3-online)"},
    {"model-format", ArgKind::kString, "model format: auto|text|binary"},
    {"buildings", ArgKind::kInt, "campus buildings (default 8)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
    {"window", ArgKind::kInt, "dispatch window seconds (default 120)"},
    {"threads", ArgKind::kInt, "replay workers (default 0 = all cores)"},
    {"seed", ArgKind::kInt, "seed for the random policy (default 1)"},
    {"incremental-cliques", ArgKind::kFlag,
     "maintain batch θ-graphs incrementally (same placements, fewer probes)"},
    {"metrics", ArgKind::kFlag, "dump the instrumentation bus"},
    {"check", ArgKind::kString, "contract mode: off|count|log|abort"},
    {"fault-plan", ArgKind::kString, "s3fault v1 schedule file"},
    {"fault-seed", ArgKind::kInt, "fault draw seed (default 1)"},
    {"replicas", ArgKind::kInt, "backup controllers per domain"},
    {"heartbeat", ArgKind::kInt, "replication heartbeat seconds (default 300)"},
    {"snapshot-every", ArgKind::kInt,
     "snapshot the primary every N log records (default 0 = off)"},
    {"truncate", ArgKind::kFlag,
     "drop log prefixes every live replica has applied (needs snapshots)"},
};

constexpr ArgSpec kServeSpecs[] = {
    {"policy", ArgKind::kString, "selector policy name (default s3)"},
    {"model", ArgKind::kString, "social model (s3 / s3-online)"},
    {"model-format", ArgKind::kString, "model format: auto|text|binary"},
    {"buildings", ArgKind::kInt, "campus buildings (default 8)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
    {"in", ArgKind::kString, "request script (default stdin)"},
    {"out", ArgKind::kString, "response stream (default stdout)"},
    {"seed", ArgKind::kInt, "seed for the random policy (default 1)"},
    {"fault-plan", ArgKind::kString, "s3fault v1 schedule file"},
    {"fault-seed", ArgKind::kInt, "fault draw seed (default 1)"},
    {"metrics", ArgKind::kFlag, "dump the instrumentation bus"},
};

constexpr ArgSpec kTrainSpecs[] = {
    {"in", ArgKind::kString, "assigned trace to learn from"},
    {"out", ArgKind::kString, "model output file"},
    {"model-format", ArgKind::kString, "model format: text|binary"},
    {"alpha", ArgKind::kReal, "type-term weight (default 0.3)"},
    {"coleave-min", ArgKind::kInt, "co-leave window minutes (default 5)"},
    {"history", ArgKind::kInt, "training history days (default all)"},
    {"buildings", ArgKind::kInt, "campus buildings (default 8)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
};

constexpr ArgSpec kCompareSpecs[] = {
    {"users", ArgKind::kInt, "population size (default 2400)"},
    {"days", ArgKind::kInt, "trace span in days (default 24)"},
    {"buildings", ArgKind::kInt, "campus buildings (default 8)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
    {"seed", ArgKind::kInt, "generator seed (default 42)"},
    {"train", ArgKind::kInt, "training days (default 21)"},
    {"test", ArgKind::kInt, "test days (default 3)"},
};

constexpr ArgSpec kCheckTraceSpecs[] = {
    {"in", ArgKind::kString, "trace to validate"},
    {"buildings", ArgKind::kInt, "campus buildings (default 8)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
    {"mode", ArgKind::kString, "contract mode: off|count|log|abort"},
};

constexpr ArgSpec kCheckFaultPlanSpecs[] = {
    {"in", ArgKind::kString, "s3fault v1 plan to validate"},
    {"buildings", ArgKind::kInt, "campus buildings (checks ids when given)"},
    {"aps", ArgKind::kInt, "APs per building (default 12)"},
    {"mode", ArgKind::kString, "contract mode: off|count|log|abort"},
};

constexpr ArgSpec kCheckModelSpecs[] = {
    {"in", ArgKind::kString, "model to validate"},
    {"threshold", ArgKind::kReal, "graph edge threshold"},
    {"cover", ArgKind::kString, "clique cover file"},
    {"mode", ArgKind::kString, "contract mode: off|count|log|abort"},
    {"stale-days", ArgKind::kInt, "max model age in days"},
    {"now-day", ArgKind::kInt, "current trace day (with --stale-days)"},
};

void usage();

/// Parses argv against the subcommand's table. Usage-class failures
/// (unknown flag, stray positional) keep the historical exit code 2;
/// malformed typed values die with "error: ..." and exit 1.
Flags parse_or_die(std::span<const ArgSpec> specs, int argc, char** argv,
                   int first) {
  util::ArgParseResult parsed = util::parse_args(specs, argc, argv, first);
  if (parsed.want_help) {
    usage();
    std::exit(0);
  }
  if (parsed.error_kind == util::ArgErrorKind::kUsage) {
    std::cerr << parsed.error << "\n";
    std::exit(2);
  }
  if (!parsed.ok()) die(parsed.error);
  return std::move(parsed.args);
}

/// Resolves --model-format (default `def`); dies on bad vocabulary.
social::ModelFormat model_format_from(const Flags& f, const std::string& def) {
  const std::string name = f.get("model-format", def);
  const std::optional<social::ModelFormat> format =
      social::parse_model_format(name);
  if (!format) die("--model-format must be auto|text|binary, got \"" + name +
                   "\"");
  return *format;
}

wlan::Network network_from(const Flags& f) {
  wlan::CampusLayout layout;
  layout.num_buildings = static_cast<std::size_t>(f.num("buildings", 8));
  layout.aps_per_building = static_cast<std::size_t>(f.num("aps", 12));
  return wlan::make_campus(layout);
}

bool wants_binary(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

trace::Trace load_trace(const std::string& path) {
  // Sniff the format: binary traces carry a magic header.
  std::ifstream probe(path, std::ios::binary);
  if (!probe) die("cannot open trace " + path);
  if (trace::sniff_binary(probe)) {
    const trace::BinaryReadResult r = trace::read_binary_file(path);
    if (!r.trace) die("cannot read trace " + path + ": " + r.error);
    return *r.trace;
  }
  const trace::ReadResult r = trace::read_csv_file(path);
  if (!r.trace) die("cannot read trace " + path + ": " + r.error);
  return *r.trace;
}

/// Writes CSV by default; binary when the path ends in ".bin".
void store_trace(const std::string& path, const trace::Trace& t) {
  const bool ok = wants_binary(path) ? trace::write_binary_file(path, t)
                                     : trace::write_csv_file(path, t);
  if (!ok) die("cannot write " + path);
}

int cmd_generate(const Flags& f) {
  if (!f.has("out")) die("generate: --out is required");
  trace::GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(f.num("seed", 42));
  cfg.num_users = static_cast<std::size_t>(f.num("users", 2400));
  cfg.num_days = static_cast<std::size_t>(f.num("days", 24));
  cfg.layout.num_buildings = static_cast<std::size_t>(f.num("buildings", 8));
  cfg.layout.aps_per_building = static_cast<std::size_t>(f.num("aps", 12));
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);
  store_trace(f.get("out"), g.workload);
  std::cout << "wrote " << f.get("out") << ": " << g.workload.size()
            << " sessions, " << g.truth.groups.size() << " social groups\n";
  return 0;
}

int cmd_replay(const Flags& f) {
  if (!f.has("in") || !f.has("out")) die("replay: --in and --out required");
  if (f.has("check")) {
    const std::optional<check::ContractMode> mode =
        check::parse_contract_mode(f.get("check"));
    if (!mode) die("replay: --check must be off|count|log|abort");
    check::set_contract_mode(*mode);
  }
  const trace::Trace workload = load_trace(f.get("in"));
  const wlan::Network net = network_from(f);

  const std::string policy_name = f.get("policy", "llf");
  std::optional<social::SocialIndexModel> model;
  core::SelectorSpec spec;
  // The bare "llf" the operator deploys counts stations (DESIGN.md §2);
  // demand-LLF is the separate "llf-demand" policy name.
  spec.llf_metric = core::LoadMetric::kStations;
  spec.random_seed = static_cast<std::uint64_t>(f.num("seed", 1));
  spec.net = &net;
  if (f.has("incremental-cliques")) {
    spec.s3.incremental_cliques = true;
    spec.online.s3.incremental_cliques = true;
  }
  if (policy_name == "s3" || policy_name == "s3-online") {
    if (!f.has("model")) die("replay --policy " + policy_name + " needs --model");
    social::ModelReadResult mr =
        social::load_model(f.get("model"), model_format_from(f, "auto"));
    if (!mr.model) die("cannot read model: " + mr.error);
    model = std::move(*mr.model);
    spec.model = &*model;
    spec.base_model = &*model;
  }
  std::unique_ptr<sim::SelectorFactory> factory;
  try {
    factory = core::make_selector_factory(policy_name, spec);
  } catch (const std::invalid_argument& e) {
    die(e.what());
  }

  std::optional<fault::FaultInjector> injector;
  if (f.has("fault-plan")) {
    const fault::FaultPlanParseResult pr =
        fault::read_fault_plan_file(f.get("fault-plan"));
    if (!pr.ok()) die("cannot read fault plan: " + pr.error);
    try {
      fault::validate_plan(pr.plan, &net);
    } catch (const std::exception& e) {
      die("bad fault plan: " + std::string(e.what()));
    }
    injector.emplace(pr.plan,
                     static_cast<std::uint64_t>(f.num("fault-seed", 1)));
  }

  // Controller-outage and controller-loss plans (and an explicit
  // --replicas) run under the replicated driver; everything else takes
  // the plain sharded path.
  const bool replicated =
      f.has("replicas") ||
      (injector && (!injector->plan().controller_outages.empty() ||
                    !injector->plan().controller_losses.empty()));
  sim::ReplayResult r;
  unsigned threads_used = 0;
  if (replicated) {
    if (!injector) die("replay: --replicas needs --fault-plan");
    repl::ReplicatedDriverConfig rc;
    rc.replay.dispatch_window_s = f.num("window", 120);
    rc.threads = static_cast<unsigned>(f.num("threads", 0));
    rc.injector = &*injector;
    rc.repl.backups = static_cast<std::size_t>(f.num("replicas", 1));
    rc.repl.heartbeat_s = f.num("heartbeat", 300);
    rc.repl.snapshot_every =
        static_cast<std::uint64_t>(f.num("snapshot-every", 0));
    rc.repl.truncate = f.has("truncate");
    if (rc.repl.truncate && rc.repl.snapshot_every == 0) {
      die("replay: --truncate needs --snapshot-every N (a rejoining replica "
          "behind a truncated prefix can only re-seed from a snapshot)");
    }
    repl::ReplicatedReplayDriver driver(net, rc);
    repl::ReplicatedReplayResult rr = driver.run(workload, *factory);
    threads_used = driver.effective_threads();
    std::cout << "replication: " << rr.repl.replicas
              << " replicas/domain, " << rr.repl.failovers << " failovers, "
              << rr.repl.headless_windows << " headless windows, "
              << rr.repl.rejoins << " rejoins, " << rr.repl.log_records
              << " log records, " << rr.repl.catchup_records
              << " replayed to catch up (term " << rr.repl.final_term
              << ")\n";
    if (rr.repl.snapshots > 0 || rr.repl.adoptions > 0) {
      std::cout << "  snapshots: " << rr.repl.snapshots << " cut, "
                << rr.repl.snapshot_installs << " installed, "
                << rr.repl.truncated_records << " records truncated ("
                << rr.repl.live_log_records << " live), max catch-up "
                << rr.repl.max_catchup_records << " records";
      if (rr.repl.adoptions > 0 || rr.repl.handbacks > 0) {
        std::cout << "; " << rr.repl.adoptions << " adoptions, "
                  << rr.repl.handbacks << " handbacks";
      }
      if (rr.repl.digest_mismatches > 0) {
        std::cout << "; " << rr.repl.digest_mismatches
                  << " corrupt records rejected (" << rr.repl.resyncs
                  << " resyncs)";
      }
      std::cout << "\n";
    }
    for (const repl::FailoverEvent& ev : rr.failovers) {
      std::cout << "  t=" << ev.when.seconds() << "s domain " << ev.domain;
      switch (ev.kind) {
        case repl::FailoverKind::kPromotion:
          std::cout << " promoted replica "
                    << std::to_string(ev.promoted_replica);
          break;
        case repl::FailoverKind::kHeadless:
          std::cout << " headless restart";
          break;
        case repl::FailoverKind::kAdoption:
          std::cout << " adopted by controller " << ev.adopter;
          break;
        case repl::FailoverKind::kHandback:
          std::cout << " handed back from controller " << ev.adopter;
          break;
      }
      std::cout << " term " << ev.new_term << " (" << ev.records_replayed
                << " records" << (ev.snapshot_install ? ", snapshot seed" : "")
                << ", " << (ev.converged ? "converged" : "DIVERGED") << ")\n";
    }
    r = std::move(rr.result);
  } else {
    runtime::ReplayDriverConfig rc;
    rc.replay.dispatch_window_s = f.num("window", 120);
    rc.threads = static_cast<unsigned>(f.num("threads", 0));
    if (injector) rc.injector = &*injector;
    runtime::ReplayDriver driver(net, rc);
    r = driver.run(workload, *factory);
    threads_used = driver.effective_threads();
  }
  store_trace(f.get("out"), r.assigned);
  std::cout << "replayed " << r.stats.num_sessions << " sessions under "
            << factory->name() << " (" << r.stats.num_batches
            << " batches, mean size "
            << util::fmt(r.stats.mean_batch_size, 2) << ", "
            << r.stats.forced_overloads << " forced overloads, "
            << threads_used << " threads)\n"
            << "wrote " << f.get("out") << "\n";
  if (injector) {
    std::cout << "faults: " << r.stats.fault_evictions << " evictions, "
              << r.stats.reassociations << " re-associations ("
              << r.stats.retry_attempts << " retries, "
              << r.stats.abandoned_sessions << " abandoned), "
              << r.stats.admission_rejections << " admission rejections, "
              << r.stats.dropped_sessions << " dropped (controller down), "
              << r.stats.degraded_batches << " degraded batches ("
              << r.stats.transitions_to_degraded << " degrade / "
              << r.stats.transitions_to_healthy << " recover transitions)\n";
  }
  if (f.has("metrics")) {
    std::cerr << "# instrumentation bus\n";
    util::metrics().dump(std::cerr);
  }
  return 0;
}

int cmd_serve(const Flags& f) {
  const std::string policy_name = f.get("policy", "s3");
  const bool social_policy =
      policy_name == "s3" || policy_name == "s3-online";
  if (social_policy && !f.has("model")) {
    die("serve --policy " + policy_name + " needs --model");
  }
  const wlan::Network net = network_from(f);

  // Baselines run over an empty base model (never consulted); social
  // policies load the trained index that seeds the live counters.
  social::SocialIndexModel model;
  if (f.has("model")) {
    social::ModelReadResult mr =
        social::load_model(f.get("model"), model_format_from(f, "auto"));
    if (!mr.model) die("cannot read model: " + mr.error);
    model = std::move(*mr.model);
  }

  std::optional<fault::FaultInjector> injector;
  if (f.has("fault-plan")) {
    const fault::FaultPlanParseResult pr =
        fault::read_fault_plan_file(f.get("fault-plan"));
    if (!pr.ok()) die("cannot read fault plan: " + pr.error);
    try {
      fault::validate_plan(pr.plan, &net);
    } catch (const std::exception& e) {
      die("bad fault plan: " + std::string(e.what()));
    }
    injector.emplace(pr.plan,
                     static_cast<std::uint64_t>(f.num("fault-seed", 1)));
  }

  serve::ServeConfig cfg;
  cfg.policy = policy_name;
  cfg.llf_metric = core::LoadMetric::kStations;  // matches replay's "llf"
  cfg.random_seed = static_cast<std::uint64_t>(f.num("seed", 1));
  if (injector) cfg.injector = &*injector;

  serve::ServePipeline pipeline(&net, &model, cfg);

  std::ifstream in_file;
  if (f.has("in")) {
    in_file.open(f.get("in"));
    if (!in_file) die("cannot open " + f.get("in"));
  }
  std::ofstream out_file;
  if (f.has("out")) {
    out_file.open(f.get("out"));
    if (!out_file) die("cannot write " + f.get("out"));
  }
  const bool clean = serve::run_line_protocol(
      pipeline, f.has("in") ? in_file : std::cin,
      f.has("out") ? static_cast<std::ostream&>(out_file) : std::cout);

  const serve::ServeStats s = pipeline.stats();
  std::cerr << "served " << s.placements << " placements, " << s.departures
            << " departures under " << policy_name << " ("
            << s.fallback_placements << " fallback, " << s.forced_overloads
            << " forced overloads, "
            << (s.rejected_no_candidate + s.rejected_unknown_user +
                s.rejected_duplicate_id)
            << " rejected, " << pipeline.model().updated_pairs()
            << " live pairs)\n";
  if (f.has("metrics")) {
    std::cerr << "# instrumentation bus\n";
    util::metrics().dump(std::cerr);
  }
  return clean ? 0 : 1;
}

int cmd_train(const Flags& f) {
  if (!f.has("in") || !f.has("out")) die("train: --in and --out required");
  const trace::Trace assigned = load_trace(f.get("in"));
  if (!assigned.fully_assigned()) {
    die("train: trace must be assigned (run `s3lb replay` first)");
  }
  social::SocialModelConfig cfg;
  cfg.alpha = f.real("alpha", 0.3);
  cfg.events.co_leave_window =
      util::SimTime::from_minutes(f.num("coleave-min", 5));
  cfg.history_days = static_cast<int>(f.num("history", 0));
  const social::SocialIndexModel model =
      social::SocialIndexModel::train(assigned, cfg);
  const social::ModelFormat format = model_format_from(f, "text");
  if (format == social::ModelFormat::kAuto) {
    die("train: --model-format must be text or binary");
  }
  if (!social::save_model(f.get("out"), model, format)) {
    die("cannot write " + f.get("out"));
  }
  std::cout << "trained on " << assigned.size() << " sessions: "
            << model.pair_stats().size() << " pairs, "
            << model.typing().num_types << " usage types\n"
            << "wrote " << f.get("out") << "\n";
  return 0;
}

int cmd_compare(const Flags& f) {
  trace::GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(f.num("seed", 42));
  cfg.num_users = static_cast<std::size_t>(f.num("users", 2400));
  cfg.num_days = static_cast<std::size_t>(f.num("days", 24));
  cfg.layout.num_buildings = static_cast<std::size_t>(f.num("buildings", 8));
  cfg.layout.aps_per_building = static_cast<std::size_t>(f.num("aps", 12));
  const trace::GeneratedTrace g = trace::generate_campus_trace(cfg);

  core::EvaluationConfig eval;
  eval.train_days = static_cast<int>(f.num("train", 21));
  eval.test_days = static_cast<int>(f.num("test", 3));
  const core::ComparisonResult r =
      core::compare_s3_vs_llf(g.network, g.workload, eval);

  util::TextTable table({"site", "llf", "s3", "gain_%"});
  for (std::size_t c = 0; c < r.llf.per_controller_mean.size(); ++c) {
    const double gain =
        r.llf.per_controller_mean[c] > 0
            ? 100.0 * (r.s3.per_controller_mean[c] -
                       r.llf.per_controller_mean[c]) /
                  r.llf.per_controller_mean[c]
            : 0.0;
    table.add_row({std::to_string(c), util::fmt(r.llf.per_controller_mean[c]),
                   util::fmt(r.s3.per_controller_mean[c]),
                   util::fmt(gain, 1)});
  }
  std::cout << table;
  std::cout << "\noverall: LLF " << util::fmt(r.llf.mean) << "  S3 "
            << util::fmt(r.s3.mean) << "  gain "
            << util::fmt(100.0 * r.balance_gain, 1) << " %  (leave-peak "
            << util::fmt(100.0 * r.leave_peak_gain, 1) << " %)\n";
  return 0;
}

/// Reads a clique cover: one clique per line, vertex ids separated by
/// whitespace; blank lines and `#` comments are skipped.
std::vector<std::vector<std::size_t>> load_cover_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open cover " + path);
  std::vector<std::vector<std::size_t>> cover;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::vector<std::size_t> clique;
    std::string token;
    while (fields >> token) {
      long v = 0;
      const std::string err = util::parse_integer("cover", token, v);
      if (!err.empty()) die(err);
      if (v < 0) die("--cover: negative vertex id \"" + token + "\"");
      clique.push_back(static_cast<std::size_t>(v));
    }
    if (!clique.empty()) cover.push_back(std::move(clique));
  }
  return cover;
}

int report_outcome(const check::CheckReport& report,
                   const std::string& subject) {
  if (report.ok()) {
    std::cout << subject << ": ok\n";
    return 0;
  }
  for (const check::CheckIssue& issue : report.issues()) {
    std::cerr << "check failed: " << issue.validator << ": " << issue.message
              << "\n";
  }
  if (report.dropped() > 0) {
    std::cerr << "check failed: ... and " << report.dropped()
              << " further issues\n";
  }
  std::cerr << subject << ": "
            << (report.issues().size() + report.dropped())
            << " invariant violations\n";
  return 1;
}

int cmd_check(const std::string& what, const Flags& f) {
  if (!f.has("in")) die("check: --in is required");
  const std::optional<check::ContractMode> mode =
      check::parse_contract_mode(f.get("mode", "count"));
  if (!mode) die("check: --mode must be off|count|log|abort");
  // The validators record findings in their report regardless of the
  // contract mode; the mode chooses the side channel (metrics bus,
  // stderr, or throw-on-first).
  const check::ScopedContractMode scoped(*mode);

  if (what == "trace") {
    const trace::Trace t = load_trace(f.get("in"));
    const wlan::Network net = network_from(f);
    check::CheckReport report = check::validate_trace(t, &net);
    if (t.fully_assigned()) {
      report.merge(check::validate_load_state(net, t));
    }
    return report_outcome(report, f.get("in"));
  }
  if (what == "fault-plan") {
    // Parse errors carry the offending line number; exit non-zero on
    // either a malformed file or a plan the validators reject.
    const fault::FaultPlanParseResult pr =
        fault::read_fault_plan_file(f.get("in"));
    if (!pr.ok()) {
      std::cerr << "check failed: " << pr.error << "\n";
      return 1;
    }
    // Controller/AP ids are only checkable against a topology; pass one
    // when the operator pinned it down.
    std::optional<wlan::Network> net;
    if (f.has("buildings") || f.has("aps")) net = network_from(f);
    const check::CheckReport report =
        check::validate_fault_plan(pr.plan, net ? &*net : nullptr);
    return report_outcome(report, f.get("in"));
  }
  if (what == "model") {
    social::ModelReadResult mr = social::load_model(f.get("in"));
    if (!mr.model) die("cannot read model: " + mr.error);
    check::SocialGraphCheckOptions opts;
    opts.theta_threshold = f.real("threshold", opts.theta_threshold);
    check::CheckReport report = check::validate_social_graph(*mr.model, opts);
    const social::WeightedGraph graph =
        check::build_social_graph(*mr.model, opts.theta_threshold);
    report.merge(check::validate_social_graph(graph, &*mr.model, opts));
    if (f.has("cover")) {
      report.merge(
          check::validate_clique_cover(graph, load_cover_file(f.get("cover"))));
    }
    if (f.has("stale-days")) {
      if (!f.has("now-day")) die("check model: --stale-days needs --now-day");
      report.merge(check::validate_model_freshness(
          *mr.model, util::SimTime::from_days(f.num("now-day", 0)),
          util::SimTime::from_days(f.num("stale-days", 0))));
    }
    return report_outcome(report, f.get("in"));
  }
  die("check: unknown target \"" + what +
      "\" (expected trace|model|fault-plan)");
}

void usage() {
  std::cout <<
      "usage: s3lb <generate|replay|serve|train|compare|check> [--flag value ...]\n"
      "  generate --out FILE [--users N --days D --buildings B --aps K --seed S]\n"
      "  replay   --in FILE --out FILE\n"
      "           --policy llf|llf-demand|llf-stations|rssi|random|s3|s3-online\n"
      "           [--model FILE --model-format auto|text|binary]\n"
      "           [--buildings B --aps K --window SECONDS]\n"
      "           [--threads N --metrics --check off|count|log|abort]\n"
      "           [--fault-plan FILE --fault-seed S]\n"
      "           [--replicas N --heartbeat SECONDS]\n"
      "           [--snapshot-every RECORDS --truncate]\n"
      "  serve    --policy llf|llf-demand|llf-stations|rssi|random|s3|s3-online\n"
      "           [--model FILE --model-format auto|text|binary]\n"
      "           [--buildings B --aps K --in FILE --out FILE --seed S]\n"
      "           [--fault-plan FILE --fault-seed S --metrics]\n"
      "  train    --in ASSIGNED --out MODEL [--model-format text|binary]\n"
      "           [--alpha A --coleave-min M --history D]\n"
      "  compare  [--users N --days D --buildings B --aps K --seed S --train D --test D]\n"
      "  check    trace --in FILE [--buildings B --aps K --mode M]\n"
      "  check    model --in FILE [--threshold T --cover FILE --mode M]\n"
      "           [--stale-days D --now-day N]\n"
      "  check    fault-plan --in FILE [--buildings B --aps K --mode M]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "check") {
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        die("check: expected `s3lb check <trace|model|fault-plan> --in FILE "
            "...`");
      }
      const std::string what = argv[2];
      if (what != "trace" && what != "model" && what != "fault-plan") {
        die("check: unknown target \"" + what +
            "\" (expected trace|model|fault-plan)");
      }
      const std::span<const ArgSpec> specs =
          what == "trace"        ? std::span<const ArgSpec>(kCheckTraceSpecs)
          : what == "fault-plan" ? std::span<const ArgSpec>(kCheckFaultPlanSpecs)
                                 : std::span<const ArgSpec>(kCheckModelSpecs);
      return cmd_check(what, parse_or_die(specs, argc, argv, 3));
    }
    if (cmd == "generate") {
      return cmd_generate(parse_or_die(kGenerateSpecs, argc, argv, 2));
    }
    if (cmd == "replay") {
      return cmd_replay(parse_or_die(kReplaySpecs, argc, argv, 2));
    }
    if (cmd == "serve") {
      return cmd_serve(parse_or_die(kServeSpecs, argc, argv, 2));
    }
    if (cmd == "train") {
      return cmd_train(parse_or_die(kTrainSpecs, argc, argv, 2));
    }
    if (cmd == "compare") {
      return cmd_compare(parse_or_die(kCompareSpecs, argc, argv, 2));
    }
  } catch (const std::exception& e) {
    die(e.what());
  }
  usage();
  return 2;
}
