#include "s3/social/model_io.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

namespace s3::social {

namespace {

constexpr std::string_view kMagic = "# s3lb social model v1";
// 8 bytes, deliberately not valid UTF-8 text past the version byte so a
// text parser bails on byte one.
constexpr char kBinaryMagic[8] = {'s', '3', 'l', 'b', 'm', 'd', 'l', '\x01'};

static_assert(std::endian::native == std::endian::little,
              "binary model format assumes a little-endian host");

template <typename T>
void put(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
bool get(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  return static_cast<bool>(is);
}

template <typename T>
void put_vec(std::ostream& os, const std::vector<T>& v) {
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool get_vec(std::istream& is, std::vector<T>& v, std::size_t n) {
  v.resize(n);
  if (n == 0) return true;
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return static_cast<bool>(is);
}

}  // namespace

bool write_model(std::ostream& os, const SocialIndexModel& model) {
  os.precision(17);
  const UserTyping& typing = model.typing();
  os << kMagic << '\n';
  os << "alpha " << model.alpha() << '\n';
  os << "co_leave_window_s "
     << model.config().events.co_leave_window.seconds() << '\n';
  os << "min_encounter_overlap_s "
     << model.config().events.min_encounter_overlap.seconds() << '\n';
  // Optional: omitted entirely for models that never recorded their
  // training horizon, so byte-for-byte golden files stay valid.
  if (model.config().trained_end_s >= 0) {
    os << "trained_end_s " << model.config().trained_end_s << '\n';
  }
  os << "users " << typing.type_of_user.size() << '\n';
  os << "types " << typing.num_types << '\n';

  os << "type_of_user";
  for (std::size_t t : typing.type_of_user) os << ' ' << t;
  os << '\n';

  os << "centroids";
  for (double v : typing.centroids) os << ' ' << v;
  os << '\n';

  os << "matrix";
  const TypeCoLeaveMatrix& m = model.type_matrix();
  for (std::size_t i = 0; i < m.num_types(); ++i) {
    for (std::size_t j = 0; j < m.num_types(); ++j) os << ' ' << m.at(i, j);
  }
  os << '\n';

  os << "pairs " << model.pair_stats().size() << '\n';
  // Canonical (a, b) order: file bytes depend only on model contents,
  // never on hash capacity or insertion history.
  for (const PairStore::Entry& e : model.pair_stats().sorted_entries()) {
    os << e.pair.a << ' ' << e.pair.b << ' ' << e.stats.encounters << ' '
       << e.stats.co_leaves << ' ' << e.stats.co_comings << '\n';
  }
  return static_cast<bool>(os);
}

bool write_model_file(const std::string& path, const SocialIndexModel& model) {
  std::ofstream os(path);
  return os && write_model(os, model);
}

ModelReadResult read_model(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    return {std::nullopt, "missing model magic line"};
  }

  SocialModelConfig config;
  std::size_t num_users = 0, num_types = 0, num_pairs = 0;
  UserTyping typing;
  std::vector<double> matrix_values;

  auto fail = [](const std::string& why) {
    return ModelReadResult{std::nullopt, why};
  };

  // alpha
  std::string key;
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key >> config.alpha) || key != "alpha") {
      return fail("bad alpha line");
    }
    if (config.alpha < 0.0) return fail("negative alpha");
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::int64_t v = 0;
    if (!(ls >> key >> v) || key != "co_leave_window_s" || v <= 0) {
      return fail("bad co_leave_window_s line");
    }
    config.events.co_leave_window = util::SimTime(v);
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::int64_t v = 0;
    if (!(ls >> key >> v) || key != "min_encounter_overlap_s" || v <= 0) {
      return fail("bad min_encounter_overlap_s line");
    }
    config.events.min_encounter_overlap = util::SimTime(v);
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key)) return fail("bad users line");
    // Optional training-horizon line (absent in models written before
    // the field existed — config.trained_end_s stays -1 for those).
    if (key == "trained_end_s") {
      std::int64_t v = 0;
      if (!(ls >> v) || v < 0) return fail("bad trained_end_s line");
      config.trained_end_s = v;
      std::getline(is, line);
      ls = std::istringstream(line);
      if (!(ls >> key)) return fail("bad users line");
    }
    if (!(ls >> num_users) || key != "users" || num_users == 0) {
      return fail("bad users line");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key >> num_types) || key != "types" || num_types == 0) {
      return fail("bad types line");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key) || key != "type_of_user") {
      return fail("bad type_of_user line");
    }
    typing.type_of_user.reserve(num_users);
    std::size_t t;
    while (ls >> t) {
      if (t >= num_types) return fail("type id out of range");
      typing.type_of_user.push_back(t);
    }
    if (typing.type_of_user.size() != num_users) {
      return fail("type_of_user arity mismatch");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key) || key != "centroids") return fail("bad centroids line");
    double v;
    while (ls >> v) typing.centroids.push_back(v);
    if (typing.centroids.size() != num_types * apps::kNumCategories) {
      return fail("centroids arity mismatch");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key) || key != "matrix") return fail("bad matrix line");
    double v;
    while (ls >> v) matrix_values.push_back(v);
    if (matrix_values.size() != num_types * num_types) {
      return fail("matrix arity mismatch");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key >> num_pairs) || key != "pairs") {
      return fail("bad pairs line");
    }
  }

  typing.num_types = num_types;
  TypeCoLeaveMatrix matrix(num_types);
  for (std::size_t i = 0; i < num_types; ++i) {
    for (std::size_t j = i; j < num_types; ++j) {
      const double a = matrix_values[i * num_types + j];
      const double b = matrix_values[j * num_types + i];
      if (a != b) return fail("matrix not symmetric");
      matrix.set(i, j, a);
    }
  }

  PairStore stats(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (!std::getline(is, line)) return fail("truncated pair list");
    std::istringstream ls(line);
    UserId a, b;
    PairStore::Stats ps;
    if (!(ls >> a >> b >> ps.encounters >> ps.co_leaves >> ps.co_comings)) {
      return fail("bad pair row " + std::to_string(p));
    }
    if (a >= num_users || b >= num_users || a == b) {
      return fail("pair row " + std::to_string(p) + ": bad user ids");
    }
    if (ps.co_leaves > ps.encounters) {
      return fail("pair row " + std::to_string(p) +
                  ": co_leaves exceed encounters");
    }
    stats.assign(UserPair(a, b), ps);
  }

  return {SocialIndexModel::from_parts(config, std::move(stats),
                                       std::move(typing), std::move(matrix)),
          ""};
}

ModelReadResult read_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return {std::nullopt, "cannot open " + path};
  return read_model(is);
}

bool write_model_binary(std::ostream& os, const SocialIndexModel& model) {
  os.write(kBinaryMagic, sizeof kBinaryMagic);
  const UserTyping& typing = model.typing();
  put(os, model.alpha());
  put(os, model.config().events.co_leave_window.seconds());
  put(os, model.config().events.min_encounter_overlap.seconds());
  put(os, model.config().trained_end_s);
  put(os, static_cast<std::uint64_t>(typing.type_of_user.size()));
  put(os, static_cast<std::uint64_t>(typing.num_types));

  std::vector<std::uint32_t> types(typing.type_of_user.begin(),
                                   typing.type_of_user.end());
  put_vec(os, types);
  put_vec(os, typing.centroids);

  const TypeCoLeaveMatrix& m = model.type_matrix();
  for (std::size_t i = 0; i < m.num_types(); ++i) {
    for (std::size_t j = 0; j < m.num_types(); ++j) put(os, m.at(i, j));
  }

  put(os, static_cast<std::uint64_t>(model.pair_stats().size()));
  for (const PairStore::Entry& e : model.pair_stats().sorted_entries()) {
    put(os, e.pair.a);
    put(os, e.pair.b);
    put(os, e.stats.encounters);
    put(os, e.stats.co_leaves);
    put(os, e.stats.co_comings);
  }
  return static_cast<bool>(os);
}

ModelReadResult read_model_binary(std::istream& is) {
  auto fail = [](const std::string& why) {
    return ModelReadResult{std::nullopt, "binary model: " + why};
  };

  char magic[sizeof kBinaryMagic] = {};
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kBinaryMagic, sizeof magic) != 0) {
    return fail("missing magic");
  }

  SocialModelConfig config;
  std::int64_t window_s = 0, overlap_s = 0;
  std::uint64_t num_users = 0, num_types = 0;
  if (!get(is, config.alpha) || !get(is, window_s) || !get(is, overlap_s) ||
      !get(is, config.trained_end_s) || !get(is, num_users) ||
      !get(is, num_types)) {
    return fail("truncated header");
  }
  if (config.alpha < 0.0) return fail("negative alpha");
  if (window_s <= 0 || overlap_s <= 0) return fail("bad event windows");
  if (num_users == 0 || num_types == 0) return fail("bad counts");
  if (config.trained_end_s < -1) return fail("bad trained_end_s");
  config.events.co_leave_window = util::SimTime(window_s);
  config.events.min_encounter_overlap = util::SimTime(overlap_s);

  UserTyping typing;
  typing.num_types = num_types;
  std::vector<std::uint32_t> types;
  if (!get_vec(is, types, num_users)) return fail("truncated typing");
  typing.type_of_user.reserve(num_users);
  for (std::uint32_t t : types) {
    if (t >= num_types) return fail("type id out of range");
    typing.type_of_user.push_back(t);
  }
  if (!get_vec(is, typing.centroids, num_types * apps::kNumCategories)) {
    return fail("truncated centroids");
  }

  std::vector<double> matrix_values;
  if (!get_vec(is, matrix_values, num_types * num_types)) {
    return fail("truncated matrix");
  }
  TypeCoLeaveMatrix matrix(num_types);
  for (std::size_t i = 0; i < num_types; ++i) {
    for (std::size_t j = i; j < num_types; ++j) {
      const double a = matrix_values[i * num_types + j];
      const double b = matrix_values[j * num_types + i];
      if (a != b) return fail("matrix not symmetric");
      matrix.set(i, j, a);
    }
  }

  std::uint64_t num_pairs = 0;
  if (!get(is, num_pairs)) return fail("truncated pair count");
  PairStore stats(num_pairs);
  for (std::uint64_t p = 0; p < num_pairs; ++p) {
    UserId a = 0, b = 0;
    PairStore::Stats ps;
    if (!get(is, a) || !get(is, b) || !get(is, ps.encounters) ||
        !get(is, ps.co_leaves) || !get(is, ps.co_comings)) {
      return fail("truncated pair list");
    }
    if (a >= num_users || b >= num_users || a == b) {
      return fail("pair row " + std::to_string(p) + ": bad user ids");
    }
    if (ps.co_leaves > ps.encounters) {
      return fail("pair row " + std::to_string(p) +
                  ": co_leaves exceed encounters");
    }
    stats.assign(UserPair(a, b), ps);
  }

  return {SocialIndexModel::from_parts(config, std::move(stats),
                                       std::move(typing), std::move(matrix)),
          ""};
}

std::optional<ModelFormat> parse_model_format(const std::string& name) {
  if (name == "text") return ModelFormat::kTextV1;
  if (name == "binary") return ModelFormat::kBinaryV1;
  if (name == "auto") return ModelFormat::kAuto;
  return std::nullopt;
}

bool save_model(const std::string& path, const SocialIndexModel& model,
                ModelFormat format) {
  S3_REQUIRE(format != ModelFormat::kAuto,
             "save_model: kAuto is a load-only format");
  if (format == ModelFormat::kBinaryV1) {
    std::ofstream os(path, std::ios::binary);
    return os && write_model_binary(os, model);
  }
  return write_model_file(path, model);
}

ModelReadResult load_model(const std::string& path, ModelFormat format) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {std::nullopt, "cannot open " + path};
  if (format == ModelFormat::kAuto) {
    char first = 0;
    format = ModelFormat::kTextV1;
    if (is.get(first)) {
      if (first == kBinaryMagic[0]) {
        // Could still be text that happens to start with 's'; check the
        // full magic before committing.
        char rest[sizeof kBinaryMagic - 1] = {};
        is.read(rest, sizeof rest);
        if (is &&
            std::memcmp(rest, kBinaryMagic + 1, sizeof rest) == 0) {
          format = ModelFormat::kBinaryV1;
        }
      }
    }
    is.clear();
    is.seekg(0);
  }
  return format == ModelFormat::kBinaryV1 ? read_model_binary(is)
                                          : read_model(is);
}

}  // namespace s3::social
