#include "s3/social/model_io.h"

#include <fstream>
#include <sstream>

namespace s3::social {

namespace {

constexpr std::string_view kMagic = "# s3lb social model v1";

}  // namespace

bool write_model(std::ostream& os, const SocialIndexModel& model) {
  os.precision(17);
  const UserTyping& typing = model.typing();
  os << kMagic << '\n';
  os << "alpha " << model.alpha() << '\n';
  os << "co_leave_window_s "
     << model.config().events.co_leave_window.seconds() << '\n';
  os << "min_encounter_overlap_s "
     << model.config().events.min_encounter_overlap.seconds() << '\n';
  // Optional: omitted entirely for models that never recorded their
  // training horizon, so byte-for-byte golden files stay valid.
  if (model.config().trained_end_s >= 0) {
    os << "trained_end_s " << model.config().trained_end_s << '\n';
  }
  os << "users " << typing.type_of_user.size() << '\n';
  os << "types " << typing.num_types << '\n';

  os << "type_of_user";
  for (std::size_t t : typing.type_of_user) os << ' ' << t;
  os << '\n';

  os << "centroids";
  for (double v : typing.centroids) os << ' ' << v;
  os << '\n';

  os << "matrix";
  const TypeCoLeaveMatrix& m = model.type_matrix();
  for (std::size_t i = 0; i < m.num_types(); ++i) {
    for (std::size_t j = 0; j < m.num_types(); ++j) os << ' ' << m.at(i, j);
  }
  os << '\n';

  os << "pairs " << model.pair_stats().size() << '\n';
  for (const auto& [pair, stats] : model.pair_stats()) {
    os << pair.a << ' ' << pair.b << ' ' << stats.encounters << ' '
       << stats.co_leaves << ' ' << stats.co_comings << '\n';
  }
  return static_cast<bool>(os);
}

bool write_model_file(const std::string& path, const SocialIndexModel& model) {
  std::ofstream os(path);
  return os && write_model(os, model);
}

ModelReadResult read_model(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    return {std::nullopt, "missing model magic line"};
  }

  SocialModelConfig config;
  std::size_t num_users = 0, num_types = 0, num_pairs = 0;
  UserTyping typing;
  std::vector<double> matrix_values;

  auto fail = [](const std::string& why) {
    return ModelReadResult{std::nullopt, why};
  };

  // alpha
  std::string key;
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key >> config.alpha) || key != "alpha") {
      return fail("bad alpha line");
    }
    if (config.alpha < 0.0) return fail("negative alpha");
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::int64_t v = 0;
    if (!(ls >> key >> v) || key != "co_leave_window_s" || v <= 0) {
      return fail("bad co_leave_window_s line");
    }
    config.events.co_leave_window = util::SimTime(v);
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::int64_t v = 0;
    if (!(ls >> key >> v) || key != "min_encounter_overlap_s" || v <= 0) {
      return fail("bad min_encounter_overlap_s line");
    }
    config.events.min_encounter_overlap = util::SimTime(v);
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key)) return fail("bad users line");
    // Optional training-horizon line (absent in models written before
    // the field existed — config.trained_end_s stays -1 for those).
    if (key == "trained_end_s") {
      std::int64_t v = 0;
      if (!(ls >> v) || v < 0) return fail("bad trained_end_s line");
      config.trained_end_s = v;
      std::getline(is, line);
      ls = std::istringstream(line);
      if (!(ls >> key)) return fail("bad users line");
    }
    if (!(ls >> num_users) || key != "users" || num_users == 0) {
      return fail("bad users line");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key >> num_types) || key != "types" || num_types == 0) {
      return fail("bad types line");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key) || key != "type_of_user") {
      return fail("bad type_of_user line");
    }
    typing.type_of_user.reserve(num_users);
    std::size_t t;
    while (ls >> t) {
      if (t >= num_types) return fail("type id out of range");
      typing.type_of_user.push_back(t);
    }
    if (typing.type_of_user.size() != num_users) {
      return fail("type_of_user arity mismatch");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key) || key != "centroids") return fail("bad centroids line");
    double v;
    while (ls >> v) typing.centroids.push_back(v);
    if (typing.centroids.size() != num_types * apps::kNumCategories) {
      return fail("centroids arity mismatch");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key) || key != "matrix") return fail("bad matrix line");
    double v;
    while (ls >> v) matrix_values.push_back(v);
    if (matrix_values.size() != num_types * num_types) {
      return fail("matrix arity mismatch");
    }
  }
  {
    std::getline(is, line);
    std::istringstream ls(line);
    if (!(ls >> key >> num_pairs) || key != "pairs") {
      return fail("bad pairs line");
    }
  }

  typing.num_types = num_types;
  TypeCoLeaveMatrix matrix(num_types);
  for (std::size_t i = 0; i < num_types; ++i) {
    for (std::size_t j = i; j < num_types; ++j) {
      const double a = matrix_values[i * num_types + j];
      const double b = matrix_values[j * num_types + i];
      if (a != b) return fail("matrix not symmetric");
      matrix.set(i, j, a);
    }
  }

  analysis::PairStatsMap stats;
  stats.reserve(num_pairs);
  for (std::size_t p = 0; p < num_pairs; ++p) {
    if (!std::getline(is, line)) return fail("truncated pair list");
    std::istringstream ls(line);
    UserId a, b;
    analysis::PairEventStats ps;
    if (!(ls >> a >> b >> ps.encounters >> ps.co_leaves >> ps.co_comings)) {
      return fail("bad pair row " + std::to_string(p));
    }
    if (a >= num_users || b >= num_users || a == b) {
      return fail("pair row " + std::to_string(p) + ": bad user ids");
    }
    if (ps.co_leaves > ps.encounters) {
      return fail("pair row " + std::to_string(p) +
                  ": co_leaves exceed encounters");
    }
    stats[UserPair(a, b)] = ps;
  }

  return {SocialIndexModel::from_parts(config, std::move(stats),
                                       std::move(typing), std::move(matrix)),
          ""};
}

ModelReadResult read_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return {std::nullopt, "cannot open " + path};
  return read_model(is);
}

}  // namespace s3::social
