// Incremental θ-graph and clique-cover maintenance (ROADMAP item 4).
//
// S3's placement quality comes from re-solving maximum cliques on the
// θ > threshold social graph, but per-batch churn touches only a few
// edges: rebuilding the graph and re-running Östergård from scratch on
// every query wastes almost all of its work at campus scale. A
// CliqueMaintainer mirrors a ThetaProvider's strict-threshold edge set
// as a sparse adjacency structure, tracks its connected components,
// and re-solves only the components whose edges crossed the threshold
// (or changed weight) since the last query — every clean component's
// cover is served from cache.
//
// The canonical cover is defined per component: components ordered by
// their minimum vertex, each solved independently with clique_cover()
// on its induced subgraph. A clique cover never spans components (no
// edges between them), so this equals a whole-graph solve up to
// extraction order — and because cover() and solve_from_scratch() both
// assemble from the same per-component solves, the incremental result
// is bitwise-identical to the from-scratch fallback by construction.
// solve_from_scratch() recomputes components by BFS and ignores every
// cache, so asserting cover() == solve_from_scratch() (the randomized
// differential suite does, at several thread counts) is a real guard
// on the dirty-set and component bookkeeping.
//
// Synchronisation with a live provider goes through the ThetaDelta
// change feed (graph.h): sync() drains poll_theta_deltas() and applies
// each record; an incomplete poll (log truncation, or a provider
// without a feed) falls back to reset_from(), the full reseed.
//
// Threading: not thread-safe. One maintainer has one owner; concurrent
// pipelines guard theirs with a mutex and rely on the feed contract to
// tolerate writers racing the reseed (re-applied deltas are
// idempotent).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "s3/social/clique.h"
#include "s3/social/graph.h"
#include "s3/social/social_index.h"
#include "s3/util/ids.h"

namespace s3::social {

struct CliqueMaintainerConfig {
  /// Strict edge rule: (u, v) is an edge iff θ(u,v) > theta_threshold
  /// — the batch-graph rule of core::S3Selector, not build_theta_graph's
  /// inclusive one.
  double theta_threshold = 0.3;
  CliqueConfig clique{};
};

struct CliqueMaintainerStats {
  std::uint64_t edges_inserted = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t edges_reweighted = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t component_merges = 0;
  std::uint64_t component_splits = 0;
  std::uint64_t components_solved = 0;  ///< fresh per-component solves
  std::uint64_t components_reused = 0;  ///< cache hits during assembly
  std::uint64_t cover_queries = 0;
  std::uint64_t reseeds = 0;  ///< full rebuilds via reset_from()
};

class CliqueMaintainer {
 public:
  struct Neighbor {
    UserId id = kInvalidUser;
    double weight = 0.0;  ///< θ(u, id), strictly above the threshold
  };

  CliqueMaintainer() = default;
  explicit CliqueMaintainer(std::size_t num_users,
                            CliqueMaintainerConfig config = {});

  /// Full reseed: drop everything and mirror the provider's current
  /// strict-threshold edge set. Also fast-forwards the feed cursor, so
  /// a following sync() resumes incrementally. The cursor is captured
  /// *before* the state is read: deltas recorded by writers racing the
  /// reseed get re-applied afterwards, which set_theta makes a no-op.
  void reset_from(const ThetaProvider& model);

  /// Drains the provider's change feed and applies every record;
  /// reseeds instead when the feed is incomplete (or on first use /
  /// population change). Returns true when served incrementally.
  bool sync(const ThetaProvider& model);

  /// Point mutation: θ(u, v) is now `theta`. Inserts, removes, or
  /// re-weights the edge as the strict threshold rule dictates;
  /// exact-equal re-weights are no-ops (no component goes dirty).
  void set_theta(UserId u, UserId v, double theta);

  /// Applies one feed record (set_theta on its pair).
  void apply(const ThetaDelta& delta);

  std::size_t num_users() const noexcept { return adj_.size(); }
  const CliqueMaintainerConfig& config() const noexcept { return config_; }
  std::size_t num_edges() const noexcept { return num_edges_; }

  bool has_edge(UserId u, UserId v) const;
  /// θ(u, v) if the edge exists, else 0.0.
  double edge_weight(UserId u, UserId v) const;
  /// Neighbors of `u` in ascending id order.
  std::span<const Neighbor> neighbors(UserId u) const;

  /// Induced subgraph over `users` (vertices = indices into `users`),
  /// built from the maintained edge set — the batch graph S3Selector
  /// needs, in O(Σ deg · log B) neighbor probes instead of O(B²) θ
  /// evaluations. Duplicate users get no self-edges, matching
  /// θ(u,u) = 0 on the probe path.
  WeightedGraph induced_batch_graph(std::span<const UserId> users) const;

  /// The maintained cover: re-solves dirty components, serves the rest
  /// from cache, and assembles components in ascending-minimum-vertex
  /// order. The reference stays valid until the next mutating call.
  const CliqueCoverResult& cover();

  /// Cache-free fallback: recomputes components by BFS and solves each
  /// one fresh. Bitwise-identical to cover() whenever the incremental
  /// bookkeeping is sound.
  CliqueCoverResult solve_from_scratch() const;

  /// Bumps every time an assembled cover differs from the previous one
  /// (i.e. some component was re-solved). Score caches key on it.
  std::uint64_t cover_version() const noexcept { return cover_version_; }

  /// Components currently marked dirty (re-solved at next cover()).
  std::size_t dirty_components() const noexcept { return dirty_count_; }
  std::size_t num_components() const noexcept {
    return comps_.size() - free_slots_.size();
  }

  const CliqueMaintainerStats& stats() const noexcept { return stats_; }

 private:
  struct Component {
    std::vector<UserId> members;  ///< unsorted; sorted at solve time
    UserId min_member = kInvalidUser;
    bool alive = false;
    bool dirty = true;
    CliqueCoverResult cover;  ///< cached, global user ids
  };

  void insert_edge(UserId u, UserId v, double theta);
  void remove_edge(UserId u, UserId v);
  void mark_dirty(std::uint32_t comp);
  std::uint32_t alloc_component();
  /// BFS over the maintained adjacency from `root`, appending every
  /// reached vertex (root included) to `out` and stamping visit_mark_.
  void flood(UserId root, std::uint32_t mark, std::vector<UserId>& out) const;
  CliqueCoverResult solve_component(const std::vector<UserId>& members) const;

  CliqueMaintainerConfig config_{};
  std::vector<std::vector<Neighbor>> adj_;
  std::size_t num_edges_ = 0;

  std::vector<std::uint32_t> comp_of_;
  std::vector<Component> comps_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t dirty_count_ = 0;

  /// Stamp-based visited set for BFS (no O(n) clears per delete).
  mutable std::vector<std::uint32_t> visit_mark_;
  mutable std::uint32_t visit_stamp_ = 0;
  mutable std::vector<UserId> bfs_queue_;

  bool seeded_ = false;
  std::uint64_t feed_cursor_ = 0;
  std::vector<ThetaDelta> feed_scratch_;

  CliqueCoverResult assembled_;
  bool assembled_valid_ = false;
  std::uint64_t cover_version_ = 0;

  CliqueMaintainerStats stats_{};
};

/// Caches one double score per clique of a maintained cover — the
/// serve pipeline stores each clique's ΣC(AP) social-cohesion sum.
/// Scores key on CliqueMaintainer::cover_version(): a version change
/// (some component re-solved) drops everything; within a version,
/// individual scores are invalidated by placement changes through
/// invalidate_user(). Not thread-safe; callers bring the lock that
/// already guards the maintainer.
class CliqueScoreCache {
 public:
  /// Points the cache at a cover snapshot. Same `version` as the
  /// previous bind → cached scores survive except those invalidated
  /// since; a new version rebuilds the member → clique map and drops
  /// every score.
  void bind(const CliqueCoverResult& cover, std::uint64_t version);

  /// A placement change touched `u`: the score of the clique
  /// containing it (if any) is recomputed at next read.
  void invalidate_user(UserId u);

  /// Cached score of clique `i`, recomputed via `compute(i)` on miss.
  template <typename Fn>
  double score(std::size_t i, Fn&& compute) {
    S3_REQUIRE(i < scores_.size(), "CliqueScoreCache: index out of range");
    if (!valid_[i]) {
      scores_[i] = compute(i);
      valid_[i] = 1;
      ++recomputed_;
    } else {
      ++reused_;
    }
    return scores_[i];
  }

  std::uint64_t recomputed() const noexcept { return recomputed_; }
  std::uint64_t reused() const noexcept { return reused_; }

 private:
  bool bound_ = false;
  std::uint64_t version_ = 0;
  std::vector<double> scores_;
  std::vector<char> valid_;
  /// member user id -> clique index in the bound cover (or npos).
  std::vector<std::uint32_t> clique_of_;
  std::uint64_t recomputed_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace s3::social
