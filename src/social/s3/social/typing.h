// User typing (§III-D-2): cluster users by their normalized application
// profiles into k usage types, and estimate the type-pair co-leaving
// matrix T of Table I.
#pragma once

#include <cstdint>
#include <vector>

#include "s3/analysis/events.h"
#include "s3/apps/app_category.h"
#include "s3/cluster/gap_statistic.h"
#include "s3/cluster/kmeans.h"
#include "s3/social/pair_store.h"
#include "s3/util/ids.h"

namespace s3::social {

struct UserTypingConfig {
  /// Number of types; 0 selects k automatically via the gap statistic
  /// (the paper's procedure, which yields 4 on its trace).
  std::size_t k = 4;
  std::size_t max_k_for_gap = 10;
  std::size_t gap_references = 10;
  std::size_t kmeans_restarts = 4;
  std::uint64_t seed = 7;
};

struct UserTyping {
  /// Type id per user (aligned with UserId).
  std::vector<std::size_t> type_of_user;
  std::size_t num_types = 0;
  /// Row-major num_types x 6 centroid matrix (Fig. 8's content).
  std::vector<double> centroids;

  std::size_t type(UserId u) const {
    S3_REQUIRE(u < type_of_user.size(), "UserTyping: user out of range");
    return type_of_user[u];
  }
  std::span<const double> centroid(std::size_t t) const {
    S3_REQUIRE(t < num_types, "UserTyping: type out of range");
    return std::span<const double>(centroids)
        .subspan(t * apps::kNumCategories, apps::kNumCategories);
  }
};

/// Clusters users' normalized profiles (rows aligned with UserId).
/// Users with an all-zero profile are assigned to the nearest centroid
/// of the zero vector after clustering the active users.
UserTyping cluster_users(const std::vector<apps::AppMix>& profiles,
                         const UserTypingConfig& config);

/// Table I: T(type_i, type_j) — empirical probability that an
/// encounter between a type-i and a type-j user ends in a co-leaving.
class TypeCoLeaveMatrix {
 public:
  TypeCoLeaveMatrix() = default;
  explicit TypeCoLeaveMatrix(std::size_t num_types)
      : num_types_(num_types), values_(num_types * num_types, 0.0) {}

  std::size_t num_types() const noexcept { return num_types_; }

  double at(std::size_t i, std::size_t j) const {
    S3_REQUIRE(i < num_types_ && j < num_types_,
               "TypeCoLeaveMatrix: index out of range");
    return values_[i * num_types_ + j];
  }
  void set(std::size_t i, std::size_t j, double v) {
    S3_REQUIRE(i < num_types_ && j < num_types_,
               "TypeCoLeaveMatrix: index out of range");
    values_[i * num_types_ + j] = v;
    values_[j * num_types_ + i] = v;
  }

  /// Mean of the diagonal minus mean of the off-diagonal — positive
  /// when same-type pairs co-leave more (the paper's key observation).
  double diagonal_dominance() const;

 private:
  std::size_t num_types_ = 0;
  std::vector<double> values_;
};

/// Estimates T from typed users and per-pair event statistics:
/// T[i][j] = Σ co_leaves / Σ encounters over pairs with types {i, j}.
/// Overloads cover both pair-stats backends (hash map and flat store).
TypeCoLeaveMatrix estimate_type_matrix(const UserTyping& typing,
                                       const analysis::PairStatsMap& stats);
TypeCoLeaveMatrix estimate_type_matrix(const UserTyping& typing,
                                       const PairStore& stats);

}  // namespace s3::social
