#include "s3/social/graph.h"

#include <algorithm>

namespace s3::social {

double WeightedGraph::internal_weight(
    const std::vector<std::size_t>& vertices) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (adjacent(vertices[i], vertices[j])) {
        sum += weight(vertices[i], vertices[j]);
      }
    }
  }
  return sum;
}

bool WeightedGraph::is_clique(const std::vector<std::size_t>& vertices) const {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (!adjacent(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

WeightedGraph WeightedGraph::without(
    const std::vector<std::size_t>& vertices,
    std::vector<std::size_t>* remap_out) const {
  std::vector<bool> removed(n_, false);
  for (std::size_t v : vertices) {
    S3_REQUIRE(v < n_, "without: vertex out of range");
    removed[v] = true;
  }
  std::vector<std::size_t> keep;
  keep.reserve(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    if (!removed[v]) keep.push_back(v);
  }
  WeightedGraph g(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (std::size_t j = i + 1; j < keep.size(); ++j) {
      if (adjacent(keep[i], keep[j])) {
        g.add_edge(i, j, weight(keep[i], keep[j]));
      }
    }
  }
  if (remap_out) *remap_out = std::move(keep);
  return g;
}

}  // namespace s3::social
