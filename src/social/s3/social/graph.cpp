#include "s3/social/graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "s3/social/social_index.h"

namespace s3::social {

double WeightedGraph::internal_weight(
    const std::vector<std::size_t>& vertices) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (adjacent(vertices[i], vertices[j])) {
        sum += weight(vertices[i], vertices[j]);
      }
    }
  }
  return sum;
}

bool WeightedGraph::is_clique(const std::vector<std::size_t>& vertices) const {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      if (!adjacent(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

WeightedGraph WeightedGraph::without(
    const std::vector<std::size_t>& vertices,
    std::vector<std::size_t>* remap_out) const {
  std::vector<bool> removed(n_, false);
  for (std::size_t v : vertices) {
    S3_REQUIRE(v < n_, "without: vertex out of range");
    removed[v] = true;
  }
  std::vector<std::size_t> keep;
  keep.reserve(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    if (!removed[v]) keep.push_back(v);
  }
  WeightedGraph g(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (std::size_t j = i + 1; j < keep.size(); ++j) {
      if (adjacent(keep[i], keep[j])) {
        g.add_edge(i, j, weight(keep[i], keep[j]));
      }
    }
  }
  if (remap_out) *remap_out = std::move(keep);
  return g;
}

void for_each_theta_edge(
    const ThetaProvider& model, double threshold, bool strict,
    const std::function<void(UserId, UserId, double)>& fn) {
  const std::size_t n = model.num_users();
  if (n < 2) return;
  const auto clears = [&](double th) {
    return std::isfinite(th) && (strict ? th > threshold : th >= threshold);
  };

  // Pruned path: when the type prior alone cannot clear the threshold,
  // a pair without recorded history has θ = α·T ≤ max_type_term <
  // threshold — so only the store's recorded pairs can produce edges,
  // and the CSR neighbor index enumerates exactly those.
  if (const auto* indexed = dynamic_cast<const SocialIndexModel*>(&model);
      indexed != nullptr && indexed->pair_stats().has_neighbor_index() &&
      indexed->max_type_term() < threshold) {
    for (UserId u = 0; u + 1 < n; ++u) {
      for (UserId v : indexed->pair_stats().neighbors(u)) {
        if (v <= u) continue;  // each pair once, from its smaller endpoint
        const double th = indexed->theta(u, v);
        if (clears(th)) fn(u, v, th);
      }
    }
    return;
  }

  std::vector<UserId> ids(n);
  std::iota(ids.begin(), ids.end(), UserId{0});
  std::vector<double> row(n, 0.0);
  for (std::size_t u = 0; u + 1 < n; ++u) {
    const std::span<const UserId> vs =
        std::span<const UserId>(ids).subspan(u + 1);
    const std::span<double> out = std::span<double>(row).first(vs.size());
    model.theta_row(static_cast<UserId>(u), vs, out);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (clears(out[i])) fn(static_cast<UserId>(u), vs[i], out[i]);
    }
  }
}

WeightedGraph build_theta_graph(const ThetaProvider& model, double threshold) {
  WeightedGraph graph(model.num_users());
  for_each_theta_edge(model, threshold, /*strict=*/false,
                      [&](UserId u, UserId v, double th) {
                        graph.add_edge(u, v, th);
                      });
  return graph;
}

}  // namespace s3::social
