// SocialIndexModel persistence.
//
// A controller trains over weeks of logs; the learned state must
// survive restarts and be shippable between controllers. Two formats
// share one versioned entry point:
//
//   * kTextV1   — line-oriented text (header, typing block, type
//                 matrix, one line per pair), diffable and hand-
//                 editable; the original format.
//   * kBinaryV1 — little-endian packed records behind an 8-byte magic;
//                 ~3× smaller and an order of magnitude faster to load
//                 for million-pair models.
//
// Pairs are always written in canonical (a, b) order, so the bytes of
// a saved model depend only on its contents — never on hash-table
// capacity or insertion history.
//
// save_model/load_model(path, ModelFormat) is the API; load defaults
// to kAuto, which sniffs the magic instead of trusting the file name.
// The older write_model/read_model stream functions remain as the
// text-format implementation (and for in-memory round trips).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "s3/social/social_index.h"

namespace s3::social {

/// On-disk representations a model can be stored in.
enum class ModelFormat {
  kAuto,      ///< load: sniff the magic; save: invalid
  kTextV1,    ///< "# s3lb social model v1" line format
  kBinaryV1,  ///< "s3lbmdl\x01" packed little-endian format
};

/// Parses "text" / "binary" / "auto" (CLI flag vocabulary).
std::optional<ModelFormat> parse_model_format(const std::string& name);

struct ModelReadResult {
  std::optional<SocialIndexModel> model;
  std::string error;  ///< set when model is nullopt
};

/// Writes the model in `format` (kAuto is invalid here); returns false
/// on stream failure.
bool save_model(const std::string& path, const SocialIndexModel& model,
                ModelFormat format = ModelFormat::kTextV1);

/// Reads a model. kAuto sniffs the leading magic bytes; a concrete
/// format rejects files of the other format with a named error.
ModelReadResult load_model(const std::string& path,
                           ModelFormat format = ModelFormat::kAuto);

// ---- Stream-level text format (v1) -----------------------------------

/// Writes the text format; returns false on stream failure.
bool write_model(std::ostream& os, const SocialIndexModel& model);
bool write_model_file(const std::string& path, const SocialIndexModel& model);

/// Parses a model written by write_model. Validates counts, matrix
/// symmetry and id ranges; malformed input yields a row-numbered error.
ModelReadResult read_model(std::istream& is);
ModelReadResult read_model_file(const std::string& path);

// ---- Stream-level binary format (v1) ---------------------------------

bool write_model_binary(std::ostream& os, const SocialIndexModel& model);
ModelReadResult read_model_binary(std::istream& is);

}  // namespace s3::social
