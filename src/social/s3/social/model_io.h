// SocialIndexModel persistence.
//
// A controller trains over weeks of logs; the learned state must
// survive restarts and be shippable between controllers. The format is
// a line-oriented text file: header, typing block, type matrix block,
// then one line per pair with encounter/co-leave/co-come counts.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "s3/social/social_index.h"

namespace s3::social {

/// Writes the model; returns false on stream failure.
bool write_model(std::ostream& os, const SocialIndexModel& model);
bool write_model_file(const std::string& path, const SocialIndexModel& model);

struct ModelReadResult {
  std::optional<SocialIndexModel> model;
  std::string error;  ///< set when model is nullopt
};

/// Parses a model written by write_model. Validates counts, matrix
/// symmetry and id ranges; malformed input yields a row-numbered error.
ModelReadResult read_model(std::istream& is);
ModelReadResult read_model_file(const std::string& path);

}  // namespace s3::social
