#include "s3/social/typing.h"

#include <algorithm>
#include <limits>

namespace s3::social {

UserTyping cluster_users(const std::vector<apps::AppMix>& profiles,
                         const UserTypingConfig& config) {
  S3_REQUIRE(!profiles.empty(), "cluster_users: no users");

  // Active users (nonzero profile) form the clustering input.
  std::vector<std::size_t> active;
  active.reserve(profiles.size());
  for (std::size_t u = 0; u < profiles.size(); ++u) {
    if (apps::total(profiles[u]) > 0.0) active.push_back(u);
  }
  S3_REQUIRE(!active.empty(), "cluster_users: all profiles are empty");

  cluster::Dataset data;
  data.num_points = active.size();
  data.dim = apps::kNumCategories;
  data.values.reserve(active.size() * apps::kNumCategories);
  for (std::size_t u : active) {
    const apps::AppMix norm = apps::normalized(profiles[u]);
    data.values.insert(data.values.end(), norm.begin(), norm.end());
  }

  std::size_t k = config.k;
  if (k == 0) {
    cluster::GapStatisticConfig gc;
    gc.max_k = std::min(config.max_k_for_gap, active.size());
    gc.num_references = config.gap_references;
    gc.kmeans_restarts = config.kmeans_restarts;
    gc.seed = config.seed;
    k = cluster::gap_statistic(data, gc).optimal_k;
  }
  k = std::min(k, active.size());

  cluster::KMeansConfig kc;
  kc.k = k;
  kc.restarts = config.kmeans_restarts;
  kc.seed = config.seed;
  const cluster::KMeansResult km = cluster::kmeans(data, kc);

  UserTyping typing;
  typing.num_types = k;
  typing.centroids = km.centroids;
  typing.type_of_user.assign(profiles.size(), 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    typing.type_of_user[active[i]] = km.assignment[i];
  }

  // Inactive users: nearest centroid to the zero vector (they carry no
  // signal; any deterministic rule works, this one is stable).
  std::size_t zero_type = 0;
  double best = std::numeric_limits<double>::infinity();
  const apps::AppMix zero{};
  for (std::size_t c = 0; c < k; ++c) {
    const double d = cluster::squared_distance(
        typing.centroid(c), std::span<const double>(zero.data(), zero.size()));
    if (d < best) {
      best = d;
      zero_type = c;
    }
  }
  for (std::size_t u = 0; u < profiles.size(); ++u) {
    if (apps::total(profiles[u]) <= 0.0) typing.type_of_user[u] = zero_type;
  }
  return typing;
}

double TypeCoLeaveMatrix::diagonal_dominance() const {
  if (num_types_ < 2) return 0.0;
  double diag = 0.0, off = 0.0;
  std::size_t off_n = 0;
  for (std::size_t i = 0; i < num_types_; ++i) {
    diag += at(i, i);
    for (std::size_t j = 0; j < num_types_; ++j) {
      if (i != j) {
        off += at(i, j);
        ++off_n;
      }
    }
  }
  return diag / static_cast<double>(num_types_) -
         off / static_cast<double>(off_n);
}

namespace {

/// Shared estimator body: `stats` is any range of {pair, stats}
/// entries — the hash-map and flat-store backends iterate identically.
template <typename PairRange>
TypeCoLeaveMatrix estimate_type_matrix_impl(const UserTyping& typing,
                                            const PairRange& stats) {
  S3_REQUIRE(typing.num_types > 0, "estimate_type_matrix: no types");
  const std::size_t k = typing.num_types;
  std::vector<double> co_leaves(k * k, 0.0);
  std::vector<double> encounters(k * k, 0.0);

  for (const auto& [pair, ps] : stats) {
    if (ps.encounters == 0) continue;
    const std::size_t ti = typing.type(pair.a);
    const std::size_t tj = typing.type(pair.b);
    co_leaves[ti * k + tj] += ps.co_leaves;
    encounters[ti * k + tj] += ps.encounters;
    if (ti != tj) {
      co_leaves[tj * k + ti] += ps.co_leaves;
      encounters[tj * k + ti] += ps.encounters;
    }
  }

  TypeCoLeaveMatrix matrix(k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      const double e = encounters[i * k + j];
      matrix.set(i, j, e > 0.0 ? co_leaves[i * k + j] / e : 0.0);
    }
  }
  return matrix;
}

}  // namespace

TypeCoLeaveMatrix estimate_type_matrix(const UserTyping& typing,
                                       const analysis::PairStatsMap& stats) {
  return estimate_type_matrix_impl(typing, stats);
}

TypeCoLeaveMatrix estimate_type_matrix(const UserTyping& typing,
                                       const PairStore& stats) {
  return estimate_type_matrix_impl(typing, stats);
}

}  // namespace s3::social
