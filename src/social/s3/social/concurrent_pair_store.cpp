#include "s3/social/concurrent_pair_store.h"

#include <algorithm>
#include <bit>

namespace s3::social {

ConcurrentPairStore::Table::Table(std::size_t n)
    : mask(n - 1), buckets(new Bucket[n]) {}

ConcurrentPairStore::Table::~Table() {
  for (std::size_t i = 0; i <= mask; ++i) {
    Node* n = buckets[i].overflow.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }
}

ConcurrentPairStore::ConcurrentPairStore(std::size_t expected_pairs) {
  // Aim for at most half the inline-cell budget at the expected size,
  // like PairStore's 1/2 load-factor bound.
  std::size_t buckets = kMinBuckets;
  if (expected_pairs > 0) {
    buckets = std::max(kMinBuckets,
                       std::bit_ceil((expected_pairs * 2) / kCells + 1));
  }
  auto table = std::make_unique<Table>(buckets);
  table_.store(table.get(), std::memory_order_release);
  util::MutexLock lock(resize_mu_);
  tables_.push_back(std::move(table));
}

ConcurrentPairStore::~ConcurrentPairStore() = default;

std::size_t ConcurrentPairStore::bucket_count() const noexcept {
  return table_.load(std::memory_order_acquire)->mask + 1;
}

std::optional<ConcurrentPairStore::Stats> ConcurrentPairStore::find(
    UserPair p) const noexcept {
  const std::uint64_t key = pack(p);
  const std::size_t h = hash(key);
  const std::uint8_t tag = tag_of(h);
  for (;;) {
    const Table* t = table_.load(std::memory_order_acquire);
    const Bucket& b = t->buckets[h & t->mask];
    const std::uint32_t v1 = b.version.load(std::memory_order_acquire);
    if ((v1 & 1u) != 0) continue;  // writer in this bucket; retry
    bool found = false;
    Stats s{};
    for (std::size_t i = 0; i < kCells; ++i) {
      if (b.tags[i].load(std::memory_order_relaxed) == tag &&
          b.cells[i].key.load(std::memory_order_relaxed) == key) {
        s.encounters = b.cells[i].encounters.load(std::memory_order_relaxed);
        s.co_leaves = b.cells[i].co_leaves.load(std::memory_order_relaxed);
        s.co_comings = b.cells[i].co_comings.load(std::memory_order_relaxed);
        found = true;
        break;
      }
    }
    if (!found) {
      for (const Node* n = b.overflow.load(std::memory_order_acquire);
           n != nullptr; n = n->next.load(std::memory_order_acquire)) {
        if (n->cell.key.load(std::memory_order_relaxed) == key) {
          s.encounters = n->cell.encounters.load(std::memory_order_relaxed);
          s.co_leaves = n->cell.co_leaves.load(std::memory_order_relaxed);
          s.co_comings = n->cell.co_comings.load(std::memory_order_relaxed);
          found = true;
          break;
        }
      }
    }
    // Seqlock close: the snapshot is valid iff the version did not move
    // while we scanned and the table was not republished under us.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (b.version.load(std::memory_order_relaxed) != v1) continue;
    if (table_.load(std::memory_order_relaxed) != t) continue;
    if (!found) return std::nullopt;
    return s;
  }
}

ConcurrentPairStore::MutSlot ConcurrentPairStore::acquire_slot(
    std::uint64_t key) {
  const std::size_t h = hash(key);
  const std::uint8_t tag = tag_of(h);
  for (;;) {
    Table* t = table_.load(std::memory_order_acquire);
    Bucket& b = t->buckets[h & t->mask];
    b.lock.lock();
    if (table_.load(std::memory_order_relaxed) != t) {
      // Resized while we waited for the lock; the entry now lives (or
      // will live) in the new table.
      b.lock.unlock();
      continue;
    }
    MutSlot slot{&b, nullptr, kCells, false, tag, key};
    slot.table = t;
    // Existing inline cell?
    for (std::size_t i = 0; i < kCells; ++i) {
      if (b.tags[i].load(std::memory_order_relaxed) == tag &&
          b.cells[i].key.load(std::memory_order_relaxed) == key) {
        slot.cell = &b.cells[i];
        slot.inline_index = i;
        return slot;
      }
    }
    // Existing overflow node?
    for (Node* n = b.overflow.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->cell.key.load(std::memory_order_relaxed) == key) {
        slot.cell = &n->cell;
        return slot;
      }
    }
    slot.inserted = true;
    // Claim the first empty inline cell...
    for (std::size_t i = 0; i < kCells; ++i) {
      if (b.tags[i].load(std::memory_order_relaxed) == 0) {
        slot.cell = &b.cells[i];
        slot.inline_index = i;
        return slot;
      }
    }
    // ...else reuse a dead overflow node...
    for (Node* n = b.overflow.load(std::memory_order_relaxed); n != nullptr;
         n = n->next.load(std::memory_order_relaxed)) {
      if (n->cell.key.load(std::memory_order_relaxed) == kEmptyKey) {
        slot.cell = &n->cell;
        return slot;
      }
    }
    // ...else push a fresh node. Publishing with release makes the
    // node's (still-empty) cell visible to lock-free chain walkers;
    // its key is only set inside commit_slot's seqlock section.
    Node* node = new Node;
    node->next.store(b.overflow.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    b.overflow.store(node, std::memory_order_release);
    slot.cell = &node->cell;
    return slot;
  }
}

ConcurrentPairStore::Stats ConcurrentPairStore::load_stats(
    const MutSlot& slot) noexcept {
  Stats s{};
  s.encounters = slot.cell->encounters.load(std::memory_order_relaxed);
  s.co_leaves = slot.cell->co_leaves.load(std::memory_order_relaxed);
  s.co_comings = slot.cell->co_comings.load(std::memory_order_relaxed);
  return s;
}

void ConcurrentPairStore::commit_slot(MutSlot& slot, const Stats& value) {
  Bucket& b = *slot.bucket;
  const std::uint32_t v = b.version.load(std::memory_order_relaxed);
  b.version.store(v + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  if (slot.inserted) {
    slot.cell->key.store(slot.key, std::memory_order_relaxed);
    if (slot.inline_index < kCells) {
      b.tags[slot.inline_index].store(slot.tag, std::memory_order_relaxed);
    }
  }
  slot.cell->encounters.store(value.encounters, std::memory_order_relaxed);
  slot.cell->co_leaves.store(value.co_leaves, std::memory_order_relaxed);
  slot.cell->co_comings.store(value.co_comings, std::memory_order_relaxed);
  b.version.store(v + 2, std::memory_order_release);
  b.lock.unlock();
  if (slot.inserted) {
    const std::size_t n = size_.fetch_add(1, std::memory_order_release) + 1;
    epoch_.fetch_add(1, std::memory_order_release);
    // Grow once the inline-cell budget is half committed, before
    // overflow chains become the common case.
    if (n > (slot.table->mask + 1) * kCells / 2) maybe_grow(slot.table);
  } else {
    epoch_.fetch_add(1, std::memory_order_release);
  }
}

bool ConcurrentPairStore::erase(UserPair p) {
  const std::uint64_t key = pack(p);
  const std::size_t h = hash(key);
  const std::uint8_t tag = tag_of(h);
  for (;;) {
    Table* t = table_.load(std::memory_order_acquire);
    Bucket& b = t->buckets[h & t->mask];
    util::SpinlockGuard guard(b.lock);
    if (table_.load(std::memory_order_relaxed) != t) continue;
    std::size_t inline_index = kCells;
    Cell* cell = nullptr;
    for (std::size_t i = 0; i < kCells; ++i) {
      if (b.tags[i].load(std::memory_order_relaxed) == tag &&
          b.cells[i].key.load(std::memory_order_relaxed) == key) {
        cell = &b.cells[i];
        inline_index = i;
        break;
      }
    }
    if (cell == nullptr) {
      for (Node* n = b.overflow.load(std::memory_order_relaxed); n != nullptr;
           n = n->next.load(std::memory_order_relaxed)) {
        if (n->cell.key.load(std::memory_order_relaxed) == key) {
          cell = &n->cell;
          break;
        }
      }
    }
    if (cell == nullptr) return false;
    const std::uint32_t v = b.version.load(std::memory_order_relaxed);
    b.version.store(v + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    if (inline_index < kCells) {
      b.tags[inline_index].store(0, std::memory_order_relaxed);
    }
    cell->key.store(kEmptyKey, std::memory_order_relaxed);
    cell->encounters.store(0, std::memory_order_relaxed);
    cell->co_leaves.store(0, std::memory_order_relaxed);
    cell->co_comings.store(0, std::memory_order_relaxed);
    b.version.store(v + 2, std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    return true;
  }
}

void ConcurrentPairStore::maybe_grow(Table* seen) {
  util::MutexLock lock(resize_mu_);
  if (tables_.back().get() != seen) return;  // someone else already grew
  const std::size_t buckets = seen->mask + 1;
  if (size_.load(std::memory_order_acquire) <= buckets * kCells / 2) return;
  rehash_locked(buckets * 2);
}

void ConcurrentPairStore::rehash_locked(std::size_t new_buckets) {
  Table* old = tables_.back().get();
  // Exclude every writer; readers stay lock-free on the old table and
  // notice the republished pointer when they close their snapshot.
  for (std::size_t i = 0; i <= old->mask; ++i) old->buckets[i].lock.lock();
  auto fresh = std::make_unique<Table>(new_buckets);
  for (std::size_t i = 0; i <= old->mask; ++i) {
    const Bucket& ob = old->buckets[i];
    auto insert = [&fresh](const Cell& cell) {
      const std::uint64_t key = cell.key.load(std::memory_order_relaxed);
      if (key == kEmptyKey) return;
      const std::size_t h = hash(key);
      Bucket& nb = fresh->buckets[h & fresh->mask];
      Cell* target = nullptr;
      for (std::size_t c = 0; c < kCells; ++c) {
        if (nb.tags[c].load(std::memory_order_relaxed) == 0) {
          nb.tags[c].store(tag_of(h), std::memory_order_relaxed);
          target = &nb.cells[c];
          break;
        }
      }
      if (target == nullptr) {
        Node* node = new Node;
        node->next.store(nb.overflow.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        nb.overflow.store(node, std::memory_order_relaxed);
        target = &node->cell;
      }
      target->key.store(key, std::memory_order_relaxed);
      target->encounters.store(
          cell.encounters.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      target->co_leaves.store(cell.co_leaves.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
      target->co_comings.store(cell.co_comings.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    };
    for (std::size_t c = 0; c < kCells; ++c) {
      if (ob.tags[c].load(std::memory_order_relaxed) != 0) {
        insert(ob.cells[c]);
      }
    }
    for (const Node* n = ob.overflow.load(std::memory_order_relaxed);
         n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
      insert(n->cell);
    }
  }
  table_.store(fresh.get(), std::memory_order_release);
  tables_.push_back(std::move(fresh));
  for (std::size_t i = old->mask + 1; i-- > 0;) old->buckets[i].lock.unlock();
}

std::vector<ConcurrentPairStore::Entry> ConcurrentPairStore::sorted_entries()
    const {
  util::MutexLock lock(resize_mu_);
  Table* t = tables_.back().get();
  std::vector<Entry> out;
  out.reserve(size_.load(std::memory_order_acquire));
  for (std::size_t i = 0; i <= t->mask; ++i) t->buckets[i].lock.lock();
  for (std::size_t i = 0; i <= t->mask; ++i) {
    const Bucket& b = t->buckets[i];
    auto collect = [&out](const Cell& cell) {
      const std::uint64_t key = cell.key.load(std::memory_order_relaxed);
      if (key == kEmptyKey) return;
      Stats s;
      s.encounters = cell.encounters.load(std::memory_order_relaxed);
      s.co_leaves = cell.co_leaves.load(std::memory_order_relaxed);
      s.co_comings = cell.co_comings.load(std::memory_order_relaxed);
      out.push_back(Entry{unpack(key), s});
    };
    for (std::size_t c = 0; c < kCells; ++c) {
      if (b.tags[c].load(std::memory_order_relaxed) != 0) collect(b.cells[c]);
    }
    for (const Node* n = b.overflow.load(std::memory_order_relaxed);
         n != nullptr; n = n->next.load(std::memory_order_relaxed)) {
      collect(n->cell);
    }
  }
  for (std::size_t i = t->mask + 1; i-- > 0;) t->buckets[i].lock.unlock();
  std::sort(out.begin(), out.end(), [](const Entry& x, const Entry& y) {
    return x.pair < y.pair;
  });
  return out;
}

void ConcurrentPairStore::clear() {
  util::MutexLock lock(resize_mu_);
  auto fresh = std::make_unique<Table>(kMinBuckets);
  table_.store(fresh.get(), std::memory_order_release);
  size_.store(0, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  tables_.clear();  // documented: callers quiesce before clear()
  tables_.push_back(std::move(fresh));
}

}  // namespace s3::social
