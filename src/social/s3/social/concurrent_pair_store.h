// Thread-safe pair-keyed storage for social statistics — the
// live-serving counterpart of PairStore.
//
// PairStore's open addressing is single-writer by construction: a
// backward-shift erase or rehash moves other pairs' slots, so every
// reader must be excluded for any writer. The serve pipeline needs the
// opposite: many controller threads answering θ(u,v) while online
// counter updates trickle in. ConcurrentPairStore therefore trades
// open addressing for *bucket chaining*: every key hashes to exactly
// one bucket of kCells inline cells (a one-byte tag per cell, probed
// in bulk before any key compare) plus an overflow node chain, so a
// mutation only ever touches its own bucket.
//
//   - Readers (find) take no lock at all: each bucket carries a seqlock
//     (even/odd version word); a reader snapshots the bucket's version,
//     scans tags → keys → counters with relaxed atomic loads, and
//     retries iff the version moved. Uncontended cost is one acquire
//     load over PairStore's probe.
//   - Writers (update/erase) take the bucket's one-byte spinlock, bump
//     the version odd, mutate, bump it even. Writers to different
//     buckets never contend.
//   - Growth allocates a double-size table, copies under all bucket
//     locks, and publishes it with one atomic pointer store. Old
//     tables are retired, not freed, until clear()/destruction, so an
//     in-flight reader can finish its (consistent, pre-resize)
//     snapshot and then notice the pointer moved.
//
// Overflow nodes are never unlinked while a table is live — erase
// marks them dead for reuse — so readers can walk a chain without
// hazard pointers. A monotonically increasing epoch() is bumped after
// every committed mutation; ThetaProvider's read-snapshot contract
// (social_index.h) builds on it.
//
// Counter reads are per-bucket-consistent snapshots, and single-thread
// behaviour is exactly PairStore's (asserted by the randomized
// differential test in tests/social/concurrent_pair_store_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "s3/analysis/events.h"
#include "s3/util/ids.h"
#include "s3/util/spinlock.h"
#include "s3/util/thread_annotations.h"

namespace s3::social {

class ConcurrentPairStore {
 public:
  using Stats = analysis::PairEventStats;

  static constexpr std::size_t kCells = 8;  ///< inline cells per bucket

  ConcurrentPairStore() : ConcurrentPairStore(0) {}
  /// Pre-sizes for `expected_pairs` entries (no resize until the
  /// inline-cell budget is half full).
  explicit ConcurrentPairStore(std::size_t expected_pairs);
  ~ConcurrentPairStore();

  ConcurrentPairStore(const ConcurrentPairStore&) = delete;
  ConcurrentPairStore& operator=(const ConcurrentPairStore&) = delete;

  /// Same packed-key convention as PairStore, so serialized models and
  /// differential tests agree byte-for-byte.
  static constexpr std::uint64_t pack(UserPair p) noexcept {
    return (static_cast<std::uint64_t>(p.a) << 32) | p.b;
  }
  static constexpr UserPair unpack(std::uint64_t key) noexcept {
    return UserPair(static_cast<UserId>(key >> 32),
                    static_cast<UserId>(key & 0xffffffffULL));
  }

  /// Lock-free consistent snapshot of the pair's counters, or nullopt
  /// if absent. Safe from any thread, including concurrently with
  /// update/erase/resize. This is the seqlock read side: it touches
  /// Bucket::cells without the bucket lock by design, validating the
  /// read against the bucket version instead, so the thread-safety
  /// analysis is disabled for it.
  std::optional<Stats> find(UserPair p) const noexcept
      S3_NO_THREAD_SAFETY_ANALYSIS;

  /// Atomically applies `fn(Stats&)` to the pair's counters, creating
  /// them first if absent — zero-initialized, or copied from
  /// `init_if_new` when given (copy-on-first-touch seeding from a
  /// frozen base model). Takes only the owning bucket's spinlock;
  /// concurrent readers of the bucket retry around the mutation.
  /// Returns true when the pair was newly inserted.
  template <typename Fn>
  bool update(UserPair p, Fn&& fn, const Stats* init_if_new = nullptr) {
    const std::uint64_t key = pack(p);
    Stats scratch{};
    MutSlot slot = acquire_slot(key);  // holds the bucket lock
    if (!slot.inserted) {
      scratch = load_stats(slot);
    } else if (init_if_new != nullptr) {
      scratch = *init_if_new;
    }
    fn(scratch);
    commit_slot(slot, scratch);  // seqlock write + unlock + epoch bump
    return slot.inserted;
  }

  /// Inserts or overwrites; returns true when the pair was new.
  bool assign(UserPair p, const Stats& stats) {
    return update(p, [&stats](Stats& s) { s = stats; });
  }

  /// Removes the pair. Returns whether it existed.
  bool erase(UserPair p);

  /// Entry count. Exact when quiescent; momentary under concurrency.
  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  bool empty() const noexcept { return size() == 0; }

  /// Monotonic mutation stamp: advances after every committed
  /// update/assign/erase/clear. Two equal epoch() reads bracket a
  /// window in which no counters changed.
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Current bucket count (power of two).
  std::size_t bucket_count() const noexcept;

  struct Entry {
    UserPair pair;
    Stats stats;
  };
  /// All entries sorted by (a, b), as a quiesced snapshot (takes every
  /// bucket lock). Matches PairStore::sorted_entries() ordering.
  std::vector<Entry> sorted_entries() const S3_NO_THREAD_SAFETY_ANALYSIS;

  /// Drops every entry and frees retired tables. Not safe concurrently
  /// with readers of previously returned snapshots — callers quiesce.
  void clear();

 private:
  struct Cell {
    std::atomic<std::uint64_t> key{kEmptyKey};
    std::atomic<std::uint32_t> encounters{0};
    std::atomic<std::uint32_t> co_leaves{0};
    std::atomic<std::uint32_t> co_comings{0};
  };
  struct Node {
    Cell cell;
    std::atomic<Node*> next{nullptr};
  };
  struct Bucket {
    util::Spinlock lock;
    std::atomic<std::uint32_t> version{0};  ///< seqlock; odd = writing
    std::atomic<std::uint8_t> tags[kCells]{};
    /// Seqlock protocol: writers hold `lock` and bump `version` to odd
    /// around every store; readers never lock — they read cells
    /// between two even, equal version loads and retry otherwise. The
    /// GUARDED_BY covers the write side; the lock-free read side
    /// (find()) opts out with S3_NO_THREAD_SAFETY_ANALYSIS.
    Cell cells[kCells] S3_GUARDED_BY(lock);
    std::atomic<Node*> overflow{nullptr};
  };
  struct Table {
    explicit Table(std::size_t n);
    ~Table();
    std::size_t mask;  ///< bucket_count - 1
    std::unique_ptr<Bucket[]> buckets;
  };

  /// A located-or-claimed cell, with its bucket lock held. Only ever
  /// lives on update()'s stack between acquire_slot and commit_slot.
  struct MutSlot {
    Bucket* bucket;
    Cell* cell;
    std::size_t inline_index;  ///< kCells when `cell` is an overflow node
    bool inserted;
    std::uint8_t tag;
    std::uint64_t key;
    Table* table = nullptr;  ///< table the slot was located in
  };

  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::size_t kMinBuckets = 8;

  /// splitmix64 finalizer — identical to PairStore::hash.
  static std::size_t hash(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
  /// One-byte cell fingerprint from the hash's top bits; 0 is reserved
  /// for "empty" so a tag match always implies a live cell.
  static std::uint8_t tag_of(std::size_t h) noexcept {
    const auto t = static_cast<std::uint8_t>(h >> 56);
    return t == 0 ? std::uint8_t{1} : t;
  }

  MutSlot acquire_slot(std::uint64_t key) S3_NO_THREAD_SAFETY_ANALYSIS;
  static Stats load_stats(const MutSlot& slot) noexcept;
  void commit_slot(MutSlot& slot, const Stats& value)
      S3_NO_THREAD_SAFETY_ANALYSIS;

  void maybe_grow(Table* seen);
  void rehash_locked(std::size_t new_buckets) S3_REQUIRES(resize_mu_)
      S3_NO_THREAD_SAFETY_ANALYSIS;

  std::atomic<Table*> table_{nullptr};
  alignas(64) std::atomic<std::size_t> size_{0};
  alignas(64) std::atomic<std::uint64_t> epoch_{0};

  mutable util::Mutex resize_mu_;
  /// Every table ever published, oldest first; the last is current.
  /// Retired tables stay allocated so lock-free readers holding the
  /// old pointer stay safe (freed in clear()/destructor).
  std::vector<std::unique_ptr<Table>> tables_ S3_GUARDED_BY(resize_mu_);
};

}  // namespace s3::social
