#include "s3/social/social_index.h"

#include <algorithm>
#include <utility>

#include "s3/util/metrics.h"

namespace s3::social {

namespace {

struct ThetaMetrics {
  util::Counter* evals;        ///< θ(u,v) queries answered
  util::Counter* pair_lookups; ///< pair-history probes
  util::Counter* pair_hits;    ///< probes answered from learned pair stats
  util::Counter* row_calls;    ///< batched theta_row invocations
};

const ThetaMetrics& theta_metrics() {
  static const ThetaMetrics m{
      util::metrics().counter("social.theta_evals"),
      util::metrics().counter("social.pair_lookups"),
      util::metrics().counter("social.pair_hits"),
      util::metrics().counter("social.theta_row_calls"),
  };
  return m;
}

}  // namespace

void ThetaProvider::theta_row(UserId u, std::span<const UserId> vs,
                              std::span<double> out) const {
  S3_REQUIRE(out.size() >= vs.size(), "theta_row: output span too small");
  for (std::size_t i = 0; i < vs.size(); ++i) out[i] = theta(u, vs[i]);
}

ThetaDeltaPoll ThetaProvider::poll_theta_deltas(
    std::uint64_t cursor, std::vector<ThetaDelta>& out) const {
  (void)out;  // no feed: nothing to append
  const std::uint64_t now = read_epoch();
  return ThetaDeltaPoll{now, cursor == now};
}

SocialIndexModel SocialIndexModel::train(const trace::Trace& training,
                                         const SocialModelConfig& config) {
  S3_REQUIRE(training.fully_assigned(),
             "SocialIndexModel::train: training trace must be assigned");
  S3_REQUIRE(config.alpha >= 0.0, "SocialIndexModel::train: negative alpha");
  S3_REQUIRE(config.history_days >= 0,
             "SocialIndexModel::train: negative history");

  // Optionally restrict to the last `history_days` days of the trace
  // (Fig. 11's look-back sweep).
  trace::Trace window = training;
  if (config.history_days > 0) {
    const util::SimTime end = training.end_time();
    const util::SimTime begin =
        end - util::SimTime::from_days(config.history_days);
    window = training.slice(begin, end);
  }

  SocialIndexModel model;
  model.config_ = config;
  model.config_.trained_end_s = training.end_time().seconds();
  model.stats_ =
      PairStore::from_map(analysis::extract_pair_stats(window, config.events));

  const apps::ProfileStore profiles = analysis::build_profiles(window);
  model.typing_ = cluster_users(profiles.normalized_profiles(), config.typing);
  model.matrix_ = estimate_type_matrix(model.typing_, model.stats_);
  model.finalize();
  return model;
}

double SocialIndexModel::co_leave_probability(UserId u, UserId v) const {
  if (u == v) return 0.0;
  const ThetaMetrics& m = theta_metrics();
  m.pair_lookups->add();
  const PairStore::Stats* stats = stats_.find(UserPair(u, v));
  if (stats == nullptr) return 0.0;
  if (stats->encounters < config_.min_encounters) return 0.0;
  m.pair_hits->add();
  return stats->co_leave_probability();
}

double SocialIndexModel::theta(UserId u, UserId v) const {
  if (u == v) return 0.0;
  S3_REQUIRE(u < num_users() && v < num_users(), "theta: user out of range");
  theta_metrics().evals->add();
  const double type_term =
      matrix_.num_types() > 0
          ? matrix_.at(typing_.type(u), typing_.type(v))
          : 0.0;
  return co_leave_probability(u, v) + config_.alpha * type_term;
}

void SocialIndexModel::theta_row(UserId u, std::span<const UserId> vs,
                                 std::span<double> out) const {
  S3_REQUIRE(out.size() >= vs.size(), "theta_row: output span too small");
  if (vs.empty()) return;
  S3_REQUIRE(u < num_users(), "theta_row: user out of range");
  const bool typed = matrix_.num_types() > 0;
  const std::size_t type_u = typed ? typing_.type(u) : 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const UserId v = vs[i];
    if (v == u) {
      out[i] = 0.0;
      continue;
    }
    S3_REQUIRE(v < num_users(), "theta_row: user out of range");
    const double type_term = typed ? matrix_.at(type_u, typing_.type(v)) : 0.0;
    // Same expression shape as theta(): P + α·T, so the batched and
    // scalar paths agree bit for bit.
    double p = 0.0;
    ++lookups;
    if (const PairStore::Stats* stats = stats_.find(UserPair(u, v));
        stats != nullptr && stats->encounters >= config_.min_encounters) {
      ++hits;
      p = stats->co_leave_probability();
    }
    out[i] = p + config_.alpha * type_term;
  }
  const ThetaMetrics& m = theta_metrics();
  m.row_calls->add();
  m.evals->add(vs.size());
  m.pair_lookups->add(lookups);
  m.pair_hits->add(hits);
}

double SocialIndexModel::max_type_term() const {
  double max_entry = 0.0;
  for (std::size_t i = 0; i < matrix_.num_types(); ++i) {
    for (std::size_t j = i; j < matrix_.num_types(); ++j) {
      max_entry = std::max(max_entry, matrix_.at(i, j));
    }
  }
  return config_.alpha * max_entry;
}

void SocialIndexModel::finalize() {
  if (!typing_.type_of_user.empty() && !stats_.empty()) {
    stats_.build_neighbor_index(typing_.type_of_user.size());
  }
}

SocialIndexModel SocialIndexModel::from_parts(SocialModelConfig config,
                                              PairStore stats,
                                              UserTyping typing,
                                              TypeCoLeaveMatrix matrix) {
  SocialIndexModel model;
  model.config_ = std::move(config);
  model.stats_ = std::move(stats);
  model.typing_ = std::move(typing);
  model.matrix_ = std::move(matrix);
  model.finalize();
  return model;
}

SocialIndexModel SocialIndexModel::from_parts(SocialModelConfig config,
                                              analysis::PairStatsMap stats,
                                              UserTyping typing,
                                              TypeCoLeaveMatrix matrix) {
  return from_parts(std::move(config), PairStore::from_map(stats),
                    std::move(typing), std::move(matrix));
}

}  // namespace s3::social
