#include "s3/social/social_index.h"

#include <utility>

#include "s3/util/metrics.h"

namespace s3::social {

namespace {

struct ThetaMetrics {
  util::Counter* evals;        ///< θ(u,v) queries answered
  util::Counter* pair_lookups; ///< pair-history probes
  util::Counter* pair_hits;    ///< probes answered from learned pair stats
};

const ThetaMetrics& theta_metrics() {
  static const ThetaMetrics m{
      util::metrics().counter("social.theta_evals"),
      util::metrics().counter("social.pair_lookups"),
      util::metrics().counter("social.pair_hits"),
  };
  return m;
}

}  // namespace

SocialIndexModel SocialIndexModel::train(const trace::Trace& training,
                                         const SocialModelConfig& config) {
  S3_REQUIRE(training.fully_assigned(),
             "SocialIndexModel::train: training trace must be assigned");
  S3_REQUIRE(config.alpha >= 0.0, "SocialIndexModel::train: negative alpha");
  S3_REQUIRE(config.history_days >= 0,
             "SocialIndexModel::train: negative history");

  // Optionally restrict to the last `history_days` days of the trace
  // (Fig. 11's look-back sweep).
  trace::Trace window = training;
  if (config.history_days > 0) {
    const util::SimTime end = training.end_time();
    const util::SimTime begin =
        end - util::SimTime::from_days(config.history_days);
    window = training.slice(begin, end);
  }

  SocialIndexModel model;
  model.config_ = config;
  model.config_.trained_end_s = training.end_time().seconds();
  model.stats_ = analysis::extract_pair_stats(window, config.events);

  const apps::ProfileStore profiles = analysis::build_profiles(window);
  model.typing_ = cluster_users(profiles.normalized_profiles(), config.typing);
  model.matrix_ = estimate_type_matrix(model.typing_, model.stats_);
  return model;
}

double SocialIndexModel::co_leave_probability(UserId u, UserId v) const {
  if (u == v) return 0.0;
  const ThetaMetrics& m = theta_metrics();
  m.pair_lookups->add();
  const auto it = stats_.find(UserPair(u, v));
  if (it == stats_.end()) return 0.0;
  if (it->second.encounters < config_.min_encounters) return 0.0;
  m.pair_hits->add();
  return it->second.co_leave_probability();
}

double SocialIndexModel::theta(UserId u, UserId v) const {
  if (u == v) return 0.0;
  S3_REQUIRE(u < num_users() && v < num_users(), "theta: user out of range");
  theta_metrics().evals->add();
  const double type_term =
      matrix_.num_types() > 0
          ? matrix_.at(typing_.type(u), typing_.type(v))
          : 0.0;
  return co_leave_probability(u, v) + config_.alpha * type_term;
}

SocialIndexModel SocialIndexModel::from_parts(SocialModelConfig config,
                                              analysis::PairStatsMap stats,
                                              UserTyping typing,
                                              TypeCoLeaveMatrix matrix) {
  SocialIndexModel model;
  model.config_ = std::move(config);
  model.stats_ = std::move(stats);
  model.typing_ = std::move(typing);
  model.matrix_ = std::move(matrix);
  return model;
}

}  // namespace s3::social
