// The social relation index (§IV):
//
//   θ(u,v) = P( L(u,v) | E(u,v) ) + α · T(type_u, type_v)
//
// P(L|E) comes from the pair's own encounter history; the type term is
// the Table-I prior that covers pairs that never met. A trained model
// is the knowledge base S3 queries at selection time. Pair history
// lives in a flat open-addressing PairStore (one contiguous
// allocation, no per-pair heap nodes) — θ probes are the hottest loads
// in the whole system, one per pair per candidate AP per batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "s3/analysis/events.h"
#include "s3/analysis/profiles.h"
#include "s3/social/graph.h"
#include "s3/social/pair_store.h"
#include "s3/social/typing.h"
#include "s3/trace/trace.h"

namespace s3::social {

struct SocialModelConfig {
  /// Weight of the type prior (the paper sweeps 0.1/0.3/0.5; 0.3 wins).
  double alpha = 0.3;
  /// Event-extraction windows (5-minute co-leaving is the paper's
  /// optimum).
  analysis::EventExtractionConfig events{};
  UserTypingConfig typing{};
  /// Days of history to learn from, counted back from the end of the
  /// training trace; 0 = use everything (the paper finds ≥15 days is
  /// saturated, Fig. 11).
  int history_days = 0;
  /// Noise suppression (§III-D: fake social relationships are
  /// "diminished by aggregating multiple common events"): pairs with
  /// fewer encounters than this contribute no P(L|E) term — only the
  /// type prior. 1 = no suppression.
  std::uint32_t min_encounters = 1;
  /// Trace-time horizon (seconds) of the training data: set by train()
  /// to the training trace's end_time(), persisted by model_io, and
  /// consulted by check::validate_model_freshness / `s3lb check model
  /// --stale-days`. -1 = unknown (models written before this field or
  /// assembled via from_parts without one).
  std::int64_t trained_end_s = -1;
};

/// Anything that can answer "how socially tied are u and v?". The
/// selection algorithm depends only on this, so a frozen trained model
/// and a continuously-updated online model are interchangeable.
///
/// Read-snapshot contract: every implementation must make theta() and
/// theta_row() safe to call concurrently with each other from any
/// number of threads. Whether reads may also race with *mutations* is
/// implementation-specific — SocialIndexModel is immutable after
/// train/from_parts, core::OnlineSocialModel assumes a single owning
/// thread, and serve::SharedSocialModel supports fully concurrent
/// lock-free reads against live counter updates. read_epoch() lets a
/// caller tell which regime it observed.
class ThetaProvider {
 public:
  virtual ~ThetaProvider() = default;

  /// The social relation index θ(u,v) ≥ 0. Symmetric; 0 for u == v.
  virtual double theta(UserId u, UserId v) const = 0;

  /// Batched kernel: out[i] = theta(u, vs[i]) for i < vs.size().
  /// `out` must have at least vs.size() elements. The default loops
  /// theta(); SocialIndexModel overrides it with one flat probe
  /// sequence per row (no virtual dispatch, no per-pair hashing
  /// overhead beyond the mix itself). Results are bit-identical to the
  /// scalar path.
  virtual void theta_row(UserId u, std::span<const UserId> vs,
                         std::span<double> out) const;

  /// Monotonic stamp of the statistics behind theta. Two equal
  /// read_epoch() values bracketing a run of theta/theta_row calls
  /// prove all of those reads came from one unchanged snapshot; a
  /// moved epoch means live counters advanced mid-run (each individual
  /// read remains per-pair consistent regardless). Immutable providers
  /// return 0 forever — the default.
  ///
  /// Prefer poll_theta_deltas() for cache invalidation: the feed says
  /// *which* pairs moved, the epoch only that *something* did.
  virtual std::uint64_t read_epoch() const noexcept { return 0; }

  /// True when this provider records a structured ThetaDelta feed —
  /// one record per θ-changing mutation, per the invalidation contract
  /// on ThetaDelta (graph.h). Immutable providers trivially emit (an
  /// exact, forever empty feed); the default covers both them and
  /// mutating providers without a feed, which must return false.
  virtual bool emits_theta_deltas() const noexcept { return false; }

  /// Drains the change feed from `cursor` (0 on first call, then the
  /// previous poll's `cursor`), appending records in mutation order to
  /// `out`. Returns the next cursor and whether the drained suffix is
  /// complete — `complete == false` means records were lost (log
  /// truncation, or the provider keeps no feed at all) and the caller
  /// must rebuild derived state from scratch. The default implements
  /// the non-emitting contract: no records, cursor = read_epoch(),
  /// complete only while the epoch has not moved past the caller's
  /// cursor — exact for immutable providers, always-incomplete across
  /// mutations for feed-less mutable ones.
  virtual ThetaDeltaPoll poll_theta_deltas(std::uint64_t cursor,
                                           std::vector<ThetaDelta>& out) const;

  /// Number of users the provider knows about (ids must be < this).
  virtual std::size_t num_users() const = 0;
};

class SocialIndexModel : public ThetaProvider {
 public:
  SocialIndexModel() = default;

  /// Learns from an *assigned* training trace (the operator's logs):
  /// extracts pairwise encounter/co-leave statistics, clusters users
  /// into types from their application profiles, and estimates the
  /// type matrix.
  static SocialIndexModel train(const trace::Trace& assigned_training,
                                const SocialModelConfig& config = {});

  /// The social relation index θ(u,v). Symmetric; 0 for u == v.
  double theta(UserId u, UserId v) const override;

  /// One flat probe sequence per row — see ThetaProvider::theta_row.
  void theta_row(UserId u, std::span<const UserId> vs,
                 std::span<double> out) const override;

  /// Immutable after train/from_parts: the feed is exact and forever
  /// empty (the base poll_theta_deltas already implements it).
  bool emits_theta_deltas() const noexcept override { return true; }

  /// The pair-history term P(L|E) alone.
  double co_leave_probability(UserId u, UserId v) const;

  /// Largest possible type-prior contribution α·max T(i,j). When this
  /// stays below a θ threshold, only pairs with recorded history can
  /// clear it — the pruning rule graph construction exploits.
  double max_type_term() const;

  const UserTyping& typing() const noexcept { return typing_; }
  const TypeCoLeaveMatrix& type_matrix() const noexcept { return matrix_; }
  const PairStore& pair_stats() const noexcept { return stats_; }
  double alpha() const noexcept { return config_.alpha; }
  const SocialModelConfig& config() const noexcept { return config_; }
  std::size_t num_users() const noexcept override {
    return typing_.type_of_user.size();
  }

  /// Builds a model directly from parts (tests, serialization). The
  /// map overload converts into the flat store; both end in the same
  /// representation.
  static SocialIndexModel from_parts(SocialModelConfig config,
                                     PairStore stats, UserTyping typing,
                                     TypeCoLeaveMatrix matrix);
  static SocialIndexModel from_parts(SocialModelConfig config,
                                     analysis::PairStatsMap stats,
                                     UserTyping typing,
                                     TypeCoLeaveMatrix matrix);

 private:
  void finalize();  ///< builds the CSR neighbor index over stats_

  SocialModelConfig config_{};
  PairStore stats_;
  UserTyping typing_;
  TypeCoLeaveMatrix matrix_;
};

}  // namespace s3::social
