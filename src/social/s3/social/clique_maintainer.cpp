#include "s3/social/clique_maintainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace s3::social {

namespace {

constexpr std::uint32_t kNoClique = std::numeric_limits<std::uint32_t>::max();

/// equal_range comparator over (user, position) pairs keyed by user.
struct FirstLess {
  bool operator()(const std::pair<UserId, std::uint32_t>& p,
                  UserId v) const noexcept {
    return p.first < v;
  }
  bool operator()(UserId v,
                  const std::pair<UserId, std::uint32_t>& p) const noexcept {
    return v < p.first;
  }
};

}  // namespace

CliqueMaintainer::CliqueMaintainer(std::size_t num_users,
                                   CliqueMaintainerConfig config)
    : config_(config) {
  S3_REQUIRE(config_.theta_threshold >= 0.0,
             "CliqueMaintainer: negative threshold");
  adj_.assign(num_users, {});
  comp_of_.resize(num_users);
  comps_.assign(num_users, Component{});
  visit_mark_.assign(num_users, 0);
  for (std::size_t v = 0; v < num_users; ++v) {
    comp_of_[v] = static_cast<std::uint32_t>(v);
    Component& c = comps_[v];
    c.members.assign(1, static_cast<UserId>(v));
    c.min_member = static_cast<UserId>(v);
    c.alive = true;
    c.dirty = true;
  }
  dirty_count_ = num_users;
  // seeded_ stays false: the first sync() against a provider must
  // reseed — this constructor mirrors nothing.
}

void CliqueMaintainer::reset_from(const ThetaProvider& model) {
  // Capture the feed position *before* mirroring the state: a delta
  // recorded while we read is then re-applied by the next sync(),
  // which set_theta makes idempotent — never silently skipped.
  feed_scratch_.clear();
  feed_cursor_ = model.poll_theta_deltas(feed_cursor_, feed_scratch_).cursor;
  feed_scratch_.clear();

  const std::size_t n = model.num_users();
  adj_.assign(n, {});
  num_edges_ = 0;
  comp_of_.resize(n);
  comps_.assign(n, Component{});
  free_slots_.clear();
  visit_mark_.assign(n, 0);
  visit_stamp_ = 0;
  for (std::size_t v = 0; v < n; ++v) {
    comp_of_[v] = static_cast<std::uint32_t>(v);
    Component& c = comps_[v];
    c.members.assign(1, static_cast<UserId>(v));
    c.min_member = static_cast<UserId>(v);
    c.alive = true;
    c.dirty = true;
  }
  dirty_count_ = n;
  assembled_valid_ = false;

  for_each_theta_edge(model, config_.theta_threshold, /*strict=*/true,
                      [this](UserId u, UserId v, double th) {
                        insert_edge(u, v, th);
                      });
  seeded_ = true;
  ++stats_.reseeds;
}

bool CliqueMaintainer::sync(const ThetaProvider& model) {
  if (!seeded_ || adj_.size() != model.num_users()) {
    reset_from(model);
    return false;
  }
  feed_scratch_.clear();
  const ThetaDeltaPoll poll =
      model.poll_theta_deltas(feed_cursor_, feed_scratch_);
  if (!poll.complete) {
    // Lost records (log truncation, or a provider without a feed):
    // every derived structure is suspect — reseed per the contract.
    reset_from(model);
    return false;
  }
  feed_cursor_ = poll.cursor;
  for (const ThetaDelta& d : feed_scratch_) apply(d);
  return true;
}

void CliqueMaintainer::apply(const ThetaDelta& delta) {
  ++stats_.deltas_applied;
  set_theta(delta.pair.a, delta.pair.b, delta.theta);
}

void CliqueMaintainer::set_theta(UserId u, UserId v, double theta) {
  S3_REQUIRE(u < adj_.size() && v < adj_.size(),
             "CliqueMaintainer::set_theta: user out of range");
  S3_REQUIRE(u != v, "CliqueMaintainer::set_theta: self pair");
  const bool want =
      std::isfinite(theta) && theta > config_.theta_threshold;
  std::vector<Neighbor>& lu = adj_[u];
  const auto it = std::lower_bound(
      lu.begin(), lu.end(), v,
      [](const Neighbor& n, UserId id) { return n.id < id; });
  const bool have = it != lu.end() && it->id == v;
  if (!have) {
    if (want) {
      insert_edge(u, v, theta);
      ++stats_.edges_inserted;
    }
    return;
  }
  if (!want) {
    remove_edge(u, v);
    ++stats_.edges_removed;
    return;
  }
  if (it->weight == theta) return;  // exact no-op: nothing goes dirty
  it->weight = theta;
  std::vector<Neighbor>& lv = adj_[v];
  const auto back = std::lower_bound(
      lv.begin(), lv.end(), u,
      [](const Neighbor& n, UserId id) { return n.id < id; });
  S3_ASSERT(back != lv.end() && back->id == u,
            "CliqueMaintainer: asymmetric adjacency");
  back->weight = theta;
  ++stats_.edges_reweighted;
  mark_dirty(comp_of_[u]);
}

void CliqueMaintainer::insert_edge(UserId u, UserId v, double theta) {
  const auto put = [](std::vector<Neighbor>& list, UserId id, double w) {
    const auto it = std::lower_bound(
        list.begin(), list.end(), id,
        [](const Neighbor& n, UserId x) { return n.id < x; });
    S3_ASSERT(it == list.end() || it->id != id,
              "CliqueMaintainer: duplicate edge insert");
    list.insert(it, Neighbor{id, w});
  };
  put(adj_[u], v, theta);
  put(adj_[v], u, theta);
  ++num_edges_;

  std::uint32_t keep = comp_of_[u];
  std::uint32_t drop = comp_of_[v];
  if (keep == drop) {
    mark_dirty(keep);
    return;
  }
  // Merge the smaller component into the larger (ties: keep the one
  // whose minimum vertex is smaller — deterministic either way, since
  // assembly orders by minimum vertex, not slot).
  if (comps_[keep].members.size() < comps_[drop].members.size() ||
      (comps_[keep].members.size() == comps_[drop].members.size() &&
       comps_[drop].min_member < comps_[keep].min_member)) {
    std::swap(keep, drop);
  }
  Component& dst = comps_[keep];
  Component& src = comps_[drop];
  for (const UserId m : src.members) comp_of_[m] = keep;
  dst.members.insert(dst.members.end(), src.members.begin(),
                     src.members.end());
  dst.min_member = std::min(dst.min_member, src.min_member);
  mark_dirty(keep);
  if (src.dirty) --dirty_count_;
  src = Component{};  // also frees the cached cover
  free_slots_.push_back(drop);
  ++stats_.component_merges;
}

void CliqueMaintainer::remove_edge(UserId u, UserId v) {
  const auto cut = [](std::vector<Neighbor>& list, UserId id) {
    const auto it = std::lower_bound(
        list.begin(), list.end(), id,
        [](const Neighbor& n, UserId x) { return n.id < x; });
    S3_ASSERT(it != list.end() && it->id == id,
              "CliqueMaintainer: removing a missing edge");
    list.erase(it);
  };
  cut(adj_[u], v);
  cut(adj_[v], u);
  --num_edges_;

  const std::uint32_t c = comp_of_[u];
  if (visit_stamp_ == std::numeric_limits<std::uint32_t>::max()) {
    visit_mark_.assign(visit_mark_.size(), 0);
    visit_stamp_ = 0;
  }
  const std::uint32_t mark = ++visit_stamp_;
  std::vector<UserId> reached;
  flood(u, mark, reached);
  if (visit_mark_[v] == mark) {
    // Still connected through another path: same component, re-solve.
    mark_dirty(c);
    return;
  }

  // Split: `reached` (u's side) moves to a fresh slot, the rest stays.
  Component& old_comp = comps_[c];
  std::vector<UserId> rest;
  rest.reserve(old_comp.members.size() - reached.size());
  for (const UserId m : old_comp.members) {
    if (visit_mark_[m] != mark) rest.push_back(m);
  }
  S3_ASSERT(!rest.empty() && rest.size() + reached.size() ==
                                 old_comp.members.size(),
            "CliqueMaintainer: split lost members");

  const std::uint32_t nc = alloc_component();
  Component& new_comp = comps_[nc];
  Component& kept = comps_[c];  // re-reference: alloc may reallocate
  new_comp.members = std::move(reached);
  new_comp.min_member =
      *std::min_element(new_comp.members.begin(), new_comp.members.end());
  for (const UserId m : new_comp.members) comp_of_[m] = nc;
  kept.members = std::move(rest);
  kept.min_member =
      *std::min_element(kept.members.begin(), kept.members.end());
  mark_dirty(c);
  mark_dirty(nc);
  ++stats_.component_splits;
}

void CliqueMaintainer::mark_dirty(std::uint32_t comp) {
  assembled_valid_ = false;
  Component& c = comps_[comp];
  if (!c.dirty) {
    c.dirty = true;
    ++dirty_count_;
  }
}

std::uint32_t CliqueMaintainer::alloc_component() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(comps_.size());
    comps_.emplace_back();
  }
  Component& c = comps_[slot];
  c.alive = true;
  c.dirty = true;
  ++dirty_count_;
  return slot;
}

void CliqueMaintainer::flood(UserId root, std::uint32_t mark,
                             std::vector<UserId>& out) const {
  visit_mark_[root] = mark;
  out.push_back(root);
  for (std::size_t head = 0; head < out.size(); ++head) {
    const UserId at = out[head];
    for (const Neighbor& nb : adj_[at]) {
      if (visit_mark_[nb.id] != mark) {
        visit_mark_[nb.id] = mark;
        out.push_back(nb.id);
      }
    }
  }
}

bool CliqueMaintainer::has_edge(UserId u, UserId v) const {
  S3_REQUIRE(u < adj_.size() && v < adj_.size(),
             "CliqueMaintainer::has_edge: user out of range");
  const std::vector<Neighbor>& lu = adj_[u];
  const auto it = std::lower_bound(
      lu.begin(), lu.end(), v,
      [](const Neighbor& n, UserId id) { return n.id < id; });
  return it != lu.end() && it->id == v;
}

double CliqueMaintainer::edge_weight(UserId u, UserId v) const {
  S3_REQUIRE(u < adj_.size() && v < adj_.size(),
             "CliqueMaintainer::edge_weight: user out of range");
  const std::vector<Neighbor>& lu = adj_[u];
  const auto it = std::lower_bound(
      lu.begin(), lu.end(), v,
      [](const Neighbor& n, UserId id) { return n.id < id; });
  return (it != lu.end() && it->id == v) ? it->weight : 0.0;
}

std::span<const CliqueMaintainer::Neighbor> CliqueMaintainer::neighbors(
    UserId u) const {
  S3_REQUIRE(u < adj_.size(), "CliqueMaintainer::neighbors: out of range");
  return adj_[u];
}

WeightedGraph CliqueMaintainer::induced_batch_graph(
    std::span<const UserId> users) const {
  WeightedGraph g(users.size());
  if (users.size() < 2) return g;
  std::vector<std::pair<UserId, std::uint32_t>> pos;
  pos.reserve(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    S3_REQUIRE(users[i] < adj_.size(),
               "CliqueMaintainer::induced_batch_graph: user out of range");
    pos.emplace_back(users[i], static_cast<std::uint32_t>(i));
  }
  std::sort(pos.begin(), pos.end());
  for (std::size_t i = 0; i < users.size(); ++i) {
    for (const Neighbor& nb : adj_[users[i]]) {
      const auto [lo, hi] =
          std::equal_range(pos.begin(), pos.end(), nb.id, FirstLess{});
      for (auto it = lo; it != hi; ++it) {
        // Each undirected pair is visited from both endpoints; add it
        // from the smaller batch index only.
        if (it->second > i) g.add_edge(i, it->second, nb.weight);
      }
    }
  }
  return g;
}

CliqueCoverResult CliqueMaintainer::solve_component(
    const std::vector<UserId>& members) const {
  CliqueCoverResult r;
  if (members.size() == 1) {
    // Singleton fast path — shared by cover() and solve_from_scratch(),
    // so both report the identical (empty-exploration) result.
    r.cliques.push_back({static_cast<std::size_t>(members.front())});
    return r;
  }
  std::vector<UserId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  WeightedGraph g(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    for (const Neighbor& nb : adj_[sorted[i]]) {
      if (nb.id <= sorted[i]) continue;
      const auto it = std::lower_bound(sorted.begin(), sorted.end(), nb.id);
      S3_ASSERT(it != sorted.end() && *it == nb.id,
                "CliqueMaintainer: edge leaves its component");
      g.add_edge(i, static_cast<std::size_t>(it - sorted.begin()),
                 nb.weight);
    }
  }
  CliqueCoverResult local = clique_cover(g, config_.clique);
  r.exact = local.exact;
  r.nodes_explored = local.nodes_explored;
  r.cliques.reserve(local.cliques.size());
  for (const std::vector<std::size_t>& clique : local.cliques) {
    std::vector<std::size_t> global;
    global.reserve(clique.size());
    // The local -> global map is monotonic, so cliques stay ascending.
    for (const std::size_t v : clique) {
      global.push_back(static_cast<std::size_t>(sorted[v]));
    }
    r.cliques.push_back(std::move(global));
  }
  return r;
}

const CliqueCoverResult& CliqueMaintainer::cover() {
  ++stats_.cover_queries;
  if (assembled_valid_) return assembled_;
  std::vector<std::pair<UserId, std::uint32_t>> order;
  order.reserve(num_components());
  for (std::uint32_t c = 0; c < comps_.size(); ++c) {
    if (comps_[c].alive) order.emplace_back(comps_[c].min_member, c);
  }
  std::sort(order.begin(), order.end());
  assembled_ = CliqueCoverResult{};
  for (const auto& [min_member, c] : order) {
    Component& comp = comps_[c];
    if (comp.dirty) {
      comp.cover = solve_component(comp.members);
      comp.dirty = false;
      --dirty_count_;
      ++stats_.components_solved;
    } else {
      ++stats_.components_reused;
    }
    assembled_.cliques.insert(assembled_.cliques.end(),
                              comp.cover.cliques.begin(),
                              comp.cover.cliques.end());
    assembled_.exact = assembled_.exact && comp.cover.exact;
    assembled_.nodes_explored += comp.cover.nodes_explored;
  }
  assembled_valid_ = true;
  ++cover_version_;
  return assembled_;
}

CliqueCoverResult CliqueMaintainer::solve_from_scratch() const {
  // Components are rediscovered by BFS from ascending roots; the first
  // unvisited vertex of each component is its minimum, so this visits
  // components in exactly the order cover()'s assembly sorts them.
  CliqueCoverResult out;
  if (visit_stamp_ == std::numeric_limits<std::uint32_t>::max()) {
    visit_mark_.assign(visit_mark_.size(), 0);
    visit_stamp_ = 0;
  }
  const std::uint32_t mark = ++visit_stamp_;
  std::vector<UserId> members;
  for (UserId root = 0; root < adj_.size(); ++root) {
    if (visit_mark_[root] == mark) continue;
    members.clear();
    flood(root, mark, members);
    const CliqueCoverResult comp = solve_component(members);
    out.cliques.insert(out.cliques.end(), comp.cliques.begin(),
                       comp.cliques.end());
    out.exact = out.exact && comp.exact;
    out.nodes_explored += comp.nodes_explored;
  }
  return out;
}

// ---------------------------------------------------------------------

void CliqueScoreCache::bind(const CliqueCoverResult& cover,
                            std::uint64_t version) {
  if (bound_ && version == version_ &&
      scores_.size() == cover.cliques.size()) {
    return;
  }
  bound_ = true;
  version_ = version;
  scores_.assign(cover.cliques.size(), 0.0);
  valid_.assign(cover.cliques.size(), 0);
  std::size_t max_user = 0;
  for (const std::vector<std::size_t>& clique : cover.cliques) {
    for (const std::size_t v : clique) max_user = std::max(max_user, v);
  }
  clique_of_.assign(cover.cliques.empty() ? 0 : max_user + 1, kNoClique);
  for (std::size_t i = 0; i < cover.cliques.size(); ++i) {
    for (const std::size_t v : cover.cliques[i]) {
      clique_of_[v] = static_cast<std::uint32_t>(i);
    }
  }
}

void CliqueScoreCache::invalidate_user(UserId u) {
  if (!bound_ || u >= clique_of_.size()) return;
  const std::uint32_t c = clique_of_[u];
  if (c != kNoClique && c < valid_.size()) valid_[c] = 0;
}

}  // namespace s3::social
