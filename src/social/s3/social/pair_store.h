// Flat pair-keyed storage for social statistics — the table behind
// every θ(u,v) lookup.
//
// std::unordered_map<UserPair, PairEventStats> puts each entry in its
// own heap node: a θ probe costs a hash, a bucket-array load, and at
// least one pointer chase to a cache line shared with nothing useful.
// PairStore packs the canonical pair into one 64-bit key and stores
// key + counters inline in a single contiguous power-of-two slot array
// with linear probing, so a probe is a multiply-shift hash plus a short
// streak of adjacent cache lines. Deletion is backward-shift (no
// tombstones), so chains never decay. A frozen table can additionally
// build a CSR-style per-user neighbor index: for every user, the
// sorted list of partners it has recorded history with, plus the slot
// of each pair's counters — the iteration order graph construction
// wants and the hash table cannot give.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "s3/analysis/events.h"
#include "s3/util/error.h"
#include "s3/util/ids.h"

namespace s3::social {

class PairStore {
 public:
  using Stats = analysis::PairEventStats;

  PairStore() = default;
  /// Pre-sizes the table for `expected_pairs` entries (no rehash until
  /// the load-factor bound is crossed).
  explicit PairStore(std::size_t expected_pairs) { reserve(expected_pairs); }

  /// Canonical 64-bit key: high word = smaller id, low word = larger.
  static constexpr std::uint64_t pack(UserPair p) noexcept {
    return (static_cast<std::uint64_t>(p.a) << 32) | p.b;
  }
  static constexpr UserPair unpack(std::uint64_t key) noexcept {
    return UserPair(static_cast<UserId>(key >> 32),
                    static_cast<UserId>(key & 0xffffffffULL));
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Slot-array length (power of two; 0 before the first insert).
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Pointer to the pair's counters, or nullptr if absent. Never
  /// invalidated by other lookups; invalidated by any mutation.
  const Stats* find(UserPair p) const noexcept {
    if (size_ == 0) return nullptr;
    const std::uint64_t key = pack(p);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      if (slots_[i].key == key) return &slots_[i].stats;
      if (slots_[i].key == kEmptyKey) return nullptr;
    }
  }
  Stats* find(UserPair p) noexcept {
    return const_cast<Stats*>(std::as_const(*this).find(p));
  }

  /// Counters for `p`, default-constructed on first touch.
  Stats& upsert(UserPair p);

  /// Inserts or overwrites; returns true when the pair was new.
  bool assign(UserPair p, const Stats& stats);

  /// Removes the pair (backward-shift, no tombstone). Returns whether
  /// it existed.
  bool erase(UserPair p);

  void clear();
  void reserve(std::size_t expected_pairs);

  /// Applies fn(UserPair, const Stats&) to every entry, in slot order
  /// (deterministic for a fixed insertion history, but not sorted).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(unpack(s.key), s.stats);
    }
  }

  struct Entry {
    UserPair pair;
    Stats stats;
  };
  /// All entries sorted by (a, b) — the canonical order serialization
  /// uses so written models do not depend on table capacity or
  /// insertion order.
  std::vector<Entry> sorted_entries() const;

 private:
  struct Slot;  // defined below; declared here for const_iterator

 public:
  // Range-for support: yields {UserPair pair, const Stats& stats}.
  class const_iterator {
   public:
    struct value_type {
      UserPair pair;
      const Stats& stats;
    };
    value_type operator*() const { return {unpack(at_->key), at_->stats}; }
    const_iterator& operator++() {
      ++at_;
      skip();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return at_ == o.at_; }
    bool operator!=(const const_iterator& o) const { return at_ != o.at_; }

   private:
    friend class PairStore;
    const_iterator(const Slot* at, const Slot* end) : at_(at), end_(end) {
      skip();
    }
    void skip() {
      while (at_ != end_ && at_->key == kEmptyKey) ++at_;
    }
    const Slot* at_;
    const Slot* end_;
  };
  const_iterator begin() const {
    return {slots_.data(), slots_.data() + slots_.size()};
  }
  const_iterator end() const {
    return {slots_.data() + slots_.size(), slots_.data() + slots_.size()};
  }

  // ---- CSR neighbor index ----------------------------------------------
  //
  // Frozen-table accelerator: neighbors(u) is the ascending list of
  // users that share a recorded pair with u; neighbor_slots(u) is the
  // parallel list of slot indices of those pairs' counters. Any
  // mutation (upsert of a new pair, erase, rehash) invalidates the
  // index; updating counters of an existing pair does not.

  /// Builds the index. Every recorded user id must be < num_users.
  void build_neighbor_index(std::size_t num_users);
  bool has_neighbor_index() const noexcept { return !nbr_offsets_.empty(); }
  void drop_neighbor_index();

  std::span<const UserId> neighbors(UserId u) const {
    S3_REQUIRE(has_neighbor_index(), "PairStore: no neighbor index");
    S3_REQUIRE(u + 1 < nbr_offsets_.size(),
               "PairStore::neighbors: user out of range");
    return std::span<const UserId>(nbr_ids_)
        .subspan(nbr_offsets_[u], nbr_offsets_[u + 1] - nbr_offsets_[u]);
  }
  std::span<const std::uint32_t> neighbor_slots(UserId u) const {
    S3_REQUIRE(has_neighbor_index(), "PairStore: no neighbor index");
    S3_REQUIRE(u + 1 < nbr_offsets_.size(),
               "PairStore::neighbor_slots: user out of range");
    return std::span<const std::uint32_t>(nbr_slots_)
        .subspan(nbr_offsets_[u], nbr_offsets_[u + 1] - nbr_offsets_[u]);
  }
  const Stats& stats_at(std::uint32_t slot) const {
    S3_REQUIRE(slot < slots_.size() && slots_[slot].key != kEmptyKey,
               "PairStore::stats_at: bad slot");
    return slots_[slot].stats;
  }

  // ---- Conversions ------------------------------------------------------
  static PairStore from_map(const analysis::PairStatsMap& map);
  analysis::PairStatsMap to_map() const;

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    Stats stats{};
  };
  static constexpr std::uint64_t kEmptyKey = ~0ULL;  // pair (max, max): a == b,
                                                     // never storable
  static constexpr std::size_t kMinCapacity = 16;

  /// splitmix64 finalizer — the same mix UserPairHash uses, so the two
  /// backends agree on distribution quality.
  static std::size_t hash(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  /// Slot for `key`: either its current position or the empty slot
  /// where it belongs. Requires a non-full table.
  std::size_t probe(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void rehash(std::size_t new_capacity);
  void grow_if_needed() {
    if (slots_.empty() || size_ + 1 > max_load_) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t max_load_ = 0;  ///< rehash when size_ would exceed this

  // CSR index (empty = not built).
  std::vector<std::size_t> nbr_offsets_;
  std::vector<UserId> nbr_ids_;
  std::vector<std::uint32_t> nbr_slots_;
};

}  // namespace s3::social
