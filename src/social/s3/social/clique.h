// Maximum clique and iterative clique cover (§IV-A).
//
// S3 reduces social dispersion to repeatedly extracting a maximum
// clique from the social graph. The solver is Östergård's exact
// branch-and-bound [25]: vertices are ordered by a greedy colouring,
// the search runs over vertex suffixes, and c[i] — the maximum clique
// size within suffix {v_i..v_n} — prunes branches. Among maximum
// cliques the paper prefers the one with the largest internal edge
// weight; the search therefore also explores equal-size candidates and
// keeps the heaviest.
//
// An explicit node budget guards against pathological batch graphs:
// when exceeded, the solver falls back to the best clique found so far
// (still a valid clique; S3's correctness never depends on optimality).
#pragma once

#include <cstdint>
#include <vector>

#include "s3/social/graph.h"

namespace s3::social {

struct CliqueResult {
  std::vector<std::size_t> vertices;  ///< ascending order
  double internal_weight = 0.0;
  std::uint64_t nodes_explored = 0;
  bool exact = true;  ///< false if the node budget expired
};

struct CliqueConfig {
  std::uint64_t node_budget = 2'000'000;
  /// Break ties between maximum cliques by internal edge weight (the
  /// paper's rule). Costs extra exploration; disable for pure speed.
  bool weight_tie_break = true;
};

/// Finds a maximum clique (empty graph -> empty clique; any isolated
/// vertex still forms a clique of size 1).
CliqueResult max_clique(const WeightedGraph& g, const CliqueConfig& config = {});

/// Greedy colouring used for the search order; returns the colour of
/// each vertex (count = 1 + max entry). Exposed for tests.
std::vector<std::size_t> greedy_coloring(const WeightedGraph& g);

/// Clique cover plus the exactness/exploration telemetry of every
/// extraction. `exact` is false as soon as any max_clique call hit the
/// node budget — consumers (S3Selector, the runtime's degradation
/// machinery) treat such a cover as reduced-fidelity. Every non-exact
/// extraction also bumps the `social.clique_budget_exhausted` counter
/// on the metrics bus.
struct CliqueCoverResult {
  std::vector<std::vector<std::size_t>> cliques;  ///< extraction order
  bool exact = true;
  std::uint64_t nodes_explored = 0;
};

/// Iterative clique cover: repeatedly extract a maximum clique (ties
/// broken by weight) and delete it, until the graph is empty (§IV-A's
/// procedure). Singleton vertices come out as size-1 cliques at the
/// end. Cliques are reported in extraction order, each sorted
/// ascending.
CliqueCoverResult clique_cover(const WeightedGraph& g,
                               const CliqueConfig& config = {});

/// Greedy maximal-clique heuristic: seed with the highest-degree
/// vertex, then repeatedly add the candidate with the most neighbours
/// inside the shrinking candidate set (weight-sum tie-break). O(n²)
/// per clique; never exceeds the exact solver's size but is orders of
/// magnitude cheaper — `bench_micro_components` quantifies the
/// quality/speed trade-off that justified shipping the exact solver.
CliqueResult greedy_clique(const WeightedGraph& g);

}  // namespace s3::social
