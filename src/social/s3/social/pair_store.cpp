#include "s3/social/pair_store.h"

#include <algorithm>

namespace s3::social {

PairStore::Stats& PairStore::upsert(UserPair p) {
  S3_REQUIRE(p.a != p.b, "PairStore: self pair");
  grow_if_needed();
  const std::uint64_t key = pack(p);
  const std::size_t i = probe(key);
  if (slots_[i].key == kEmptyKey) {
    slots_[i].key = key;
    slots_[i].stats = Stats{};
    ++size_;
    drop_neighbor_index();
  }
  return slots_[i].stats;
}

bool PairStore::assign(UserPair p, const Stats& stats) {
  S3_REQUIRE(p.a != p.b, "PairStore: self pair");
  grow_if_needed();
  const std::uint64_t key = pack(p);
  const std::size_t i = probe(key);
  const bool fresh = slots_[i].key == kEmptyKey;
  if (fresh) {
    slots_[i].key = key;
    ++size_;
    drop_neighbor_index();
  }
  slots_[i].stats = stats;
  return fresh;
}

bool PairStore::erase(UserPair p) {
  if (size_ == 0) return false;
  const std::uint64_t key = pack(p);
  const std::size_t mask = slots_.size() - 1;
  std::size_t hole = hash(key) & mask;
  while (slots_[hole].key != key) {
    if (slots_[hole].key == kEmptyKey) return false;
    hole = (hole + 1) & mask;
  }
  // Backward-shift deletion: walk the chain after the hole and pull
  // back every entry whose home position lies cyclically at or before
  // the hole, so probe chains stay gap-free without tombstones.
  std::size_t j = (hole + 1) & mask;
  while (slots_[j].key != kEmptyKey) {
    const std::size_t home = hash(slots_[j].key) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      slots_[hole] = slots_[j];
      hole = j;
    }
    j = (j + 1) & mask;
  }
  slots_[hole].key = kEmptyKey;
  slots_[hole].stats = Stats{};
  --size_;
  drop_neighbor_index();
  return true;
}

void PairStore::clear() {
  slots_.clear();
  size_ = 0;
  max_load_ = 0;
  drop_neighbor_index();
}

void PairStore::reserve(std::size_t expected_pairs) {
  std::size_t cap = kMinCapacity;
  // Load-factor bound 1/2: misses in a linear-probe table cost
  // ~(1 + 1/(1-a)^2)/2 probes — 8.5 at a=3/4 but only 2.5 at a=1/2,
  // and the selector hot path is roughly half misses (candidate pairs
  // with no recorded history). Half-full costs 2x slots but keeps the
  // probe streak inside one or two cache lines.
  while (cap / 2 < expected_pairs) cap *= 2;
  if (cap > slots_.size()) rehash(cap);
}

void PairStore::rehash(std::size_t new_capacity) {
  std::vector<Slot> old;
  old.swap(slots_);
  slots_.assign(new_capacity, Slot{});
  max_load_ = new_capacity / 2;
  const std::size_t mask = new_capacity - 1;
  for (const Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    std::size_t i = hash(s.key) & mask;
    while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
    slots_[i] = s;
  }
  drop_neighbor_index();
}

std::vector<PairStore::Entry> PairStore::sorted_entries() const {
  std::vector<Entry> entries;
  entries.reserve(size_);
  for_each([&](UserPair p, const Stats& s) { entries.push_back({p, s}); });
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.pair < y.pair; });
  return entries;
}

void PairStore::build_neighbor_index(std::size_t num_users) {
  nbr_offsets_.assign(num_users + 1, 0);
  for_each([&](UserPair p, const Stats&) {
    S3_REQUIRE(p.b < num_users,
               "PairStore::build_neighbor_index: user out of range");
    ++nbr_offsets_[p.a + 1];
    ++nbr_offsets_[p.b + 1];
  });
  for (std::size_t u = 0; u < num_users; ++u) {
    nbr_offsets_[u + 1] += nbr_offsets_[u];
  }
  nbr_ids_.resize(2 * size_);
  nbr_slots_.resize(2 * size_);
  std::vector<std::size_t> cursor(nbr_offsets_.begin(),
                                  nbr_offsets_.end() - 1);
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].key == kEmptyKey) continue;
    const UserPair p = unpack(slots_[slot].key);
    nbr_ids_[cursor[p.a]] = p.b;
    nbr_slots_[cursor[p.a]++] = slot;
    nbr_ids_[cursor[p.b]] = p.a;
    nbr_slots_[cursor[p.b]++] = slot;
  }
  // Sort each row by partner id, carrying the slot column along.
  std::vector<std::pair<UserId, std::uint32_t>> row;
  for (std::size_t u = 0; u < num_users; ++u) {
    const std::size_t lo = nbr_offsets_[u], hi = nbr_offsets_[u + 1];
    row.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      row.emplace_back(nbr_ids_[i], nbr_slots_[i]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = lo; i < hi; ++i) {
      nbr_ids_[i] = row[i - lo].first;
      nbr_slots_[i] = row[i - lo].second;
    }
  }
}

void PairStore::drop_neighbor_index() {
  nbr_offsets_.clear();
  nbr_ids_.clear();
  nbr_slots_.clear();
}

PairStore PairStore::from_map(const analysis::PairStatsMap& map) {
  PairStore store(map.size());
  for (const auto& [pair, stats] : map) store.assign(pair, stats);
  return store;
}

analysis::PairStatsMap PairStore::to_map() const {
  analysis::PairStatsMap map;
  map.reserve(size_);
  for_each([&](UserPair p, const Stats& s) { map.emplace(p, s); });
  return map;
}

}  // namespace s3::social
