#include "s3/social/clique.h"

#include <algorithm>
#include <numeric>

#include "s3/util/metrics.h"

namespace s3::social {

std::vector<std::size_t> greedy_coloring(const WeightedGraph& g) {
  const std::size_t n = g.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t da = g.degree(a), db = g.degree(b);
    if (da != db) return da > db;  // largest degree first
    return a < b;
  });

  std::vector<std::size_t> color(n, 0);
  std::vector<bool> used;
  for (std::size_t v : order) {
    used.assign(n, false);
    for (std::size_t u = 0; u < n; ++u) {
      if (u != v && g.adjacent(u, v)) used[color[u]] = true;
    }
    // Vertices not yet coloured have colour 0 marked used spuriously
    // only if adjacent; the first free colour is still correct because
    // an uncoloured neighbour's slot-0 mark merely biases upward.
    std::size_t c = 0;
    while (c < n && used[c]) ++c;
    color[v] = c;
  }
  return color;
}

namespace {

/// Östergård search state over the colour-ordered, permuted graph.
class OstergardSearch {
 public:
  OstergardSearch(const WeightedGraph& g, const CliqueConfig& cfg)
      : g_(g), cfg_(cfg), n_(g.size()), c_(n_, 0), suffix_(n_, Bitset(n_)) {
    // Order: colour ascending, then degree descending — small-colour
    // (sparse) vertices end up late, matching Östergård's suffix walk.
    const std::vector<std::size_t> color = greedy_coloring(g);
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::sort(order_.begin(), order_.end(),
              [&](std::size_t a, std::size_t b) {
                if (color[a] != color[b]) return color[a] < color[b];
                const std::size_t da = g.degree(a), db = g.degree(b);
                if (da != db) return da > db;
                return a < b;
              });

    // Permuted adjacency.
    adj_.assign(n_, Bitset(n_));
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j) {
        if (g.adjacent(order_[i], order_[j])) {
          adj_[i].set(j);
          adj_[j].set(i);
        }
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i; j < n_; ++j) suffix_[i].set(j);
    }
  }

  CliqueResult run() {
    if (n_ == 0) return {};
    for (std::size_t idx = n_; idx-- > 0;) {
      found_ = false;
      stack_.assign(1, idx);
      Bitset u = adj_[idx] & suffix_[idx];
      expand(u, 1, 0.0);
      c_[idx] = best_size_;
      if (aborted_) break;
    }
    CliqueResult result;
    result.vertices.reserve(best_.size());
    for (std::size_t i : best_) result.vertices.push_back(order_[i]);
    std::sort(result.vertices.begin(), result.vertices.end());
    result.internal_weight = best_weight_;
    result.nodes_explored = nodes_;
    result.exact = !aborted_;
    return result;
  }

 private:
  double edge_weight(std::size_t i, std::size_t j) const {
    return g_.weight(order_[i], order_[j]);
  }

  void record_leaf(std::size_t size, double weight) {
    if (size > best_size_ ||
        (cfg_.weight_tie_break && size == best_size_ &&
         weight > best_weight_)) {
      if (size > best_size_) found_ = true;
      best_size_ = size;
      best_weight_ = weight;
      best_ = stack_;
    }
  }

  /// Prune when even the optimistic bound cannot beat the incumbent
  /// (cannot *tie* it either, when weight ties matter).
  bool hopeless(std::size_t optimistic) const {
    if (optimistic < best_size_) return true;
    return optimistic == best_size_ && !cfg_.weight_tie_break;
  }

  void expand(Bitset u, std::size_t size, double weight) {
    if (aborted_) return;
    if (++nodes_ > cfg_.node_budget) {
      aborted_ = true;
      return;
    }
    if (!u.any()) {
      record_leaf(size, weight);
      return;
    }
    while (u.any()) {
      if (hopeless(size + u.count())) return;
      const std::size_t i = u.first();
      if (hopeless(size + c_[i])) return;
      u.reset(i);

      double w2 = weight;
      for (std::size_t v : stack_) w2 += edge_weight(i, v);
      stack_.push_back(i);
      expand(u & adj_[i], size + 1, w2);
      stack_.pop_back();

      if (aborted_) return;
      // Strict-improvement early exit (Östergård): within suffix i the
      // best possible is c_[i+1] + 1, already achieved.
      if (found_ && !cfg_.weight_tie_break) return;
    }
    // All extensions pruned/explored: this node is itself maximal
    // within the remaining candidate order only if u started empty,
    // handled above.
  }

  const WeightedGraph& g_;
  const CliqueConfig cfg_;
  std::size_t n_;
  std::vector<std::size_t> order_;
  std::vector<Bitset> adj_;
  std::vector<std::size_t> c_;
  std::vector<Bitset> suffix_;

  std::vector<std::size_t> stack_;
  std::vector<std::size_t> best_;
  std::size_t best_size_ = 0;
  double best_weight_ = -1.0;
  bool found_ = false;
  bool aborted_ = false;
  std::uint64_t nodes_ = 0;
};

}  // namespace

CliqueResult max_clique(const WeightedGraph& g, const CliqueConfig& config) {
  static util::Counter* const extractions =
      util::metrics().counter("social.clique_extractions");
  static util::Counter* const nodes =
      util::metrics().counter("social.clique_nodes_explored");
  static util::Counter* const budget_exhausted =
      util::metrics().counter("social.clique_budget_exhausted");
  CliqueResult result = OstergardSearch(g, config).run();
  extractions->add();
  nodes->add(result.nodes_explored);
  if (!result.exact) budget_exhausted->add();
  return result;
}

CliqueResult greedy_clique(const WeightedGraph& g) {
  CliqueResult result;
  const std::size_t n = g.size();
  if (n == 0) return result;

  // Seed: highest degree, weight-sum tie-break.
  std::size_t seed = 0;
  double seed_weight = -1.0;
  for (std::size_t v = 0; v < n; ++v) {
    double w = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (u != v && g.adjacent(u, v)) w += g.weight(u, v);
    }
    if (g.degree(v) > g.degree(seed) ||
        (g.degree(v) == g.degree(seed) && w > seed_weight)) {
      seed = v;
      seed_weight = w;
    }
  }

  std::vector<std::size_t> clique{seed};
  Bitset candidates = g.neighbors(seed);
  while (candidates.any()) {
    // Pick the candidate with the most neighbours among the remaining
    // candidates (it keeps the most options open), weight tie-break.
    std::size_t best = n;
    std::size_t best_deg = 0;
    double best_w = -1.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!candidates.test(v)) continue;
      const Bitset remaining = candidates & g.neighbors(v);
      const std::size_t deg = remaining.count();
      double w = 0.0;
      for (std::size_t u : clique) w += g.weight(u, v);
      if (best == n || deg > best_deg ||
          (deg == best_deg && w > best_w)) {
        best = v;
        best_deg = deg;
        best_w = w;
      }
    }
    clique.push_back(best);
    candidates &= g.neighbors(best);
  }
  std::sort(clique.begin(), clique.end());
  result.internal_weight = g.internal_weight(clique);
  result.vertices = std::move(clique);
  result.nodes_explored = n;
  result.exact = false;  // heuristic: no optimality guarantee
  return result;
}

CliqueCoverResult clique_cover(const WeightedGraph& g,
                               const CliqueConfig& config) {
  CliqueCoverResult cover;
  // current-index -> original-index mapping.
  std::vector<std::size_t> to_original(g.size());
  std::iota(to_original.begin(), to_original.end(), std::size_t{0});

  WeightedGraph current = g;
  while (current.size() > 0) {
    const CliqueResult r = max_clique(current, config);
    S3_ASSERT(!r.vertices.empty(), "clique_cover: empty clique on non-empty graph");
    cover.exact = cover.exact && r.exact;
    cover.nodes_explored += r.nodes_explored;

    if (r.vertices.size() == 1 && current.num_edges() == 0) {
      // Only isolated vertices remain: emit them all as singletons.
      for (std::size_t v = 0; v < current.size(); ++v) {
        cover.cliques.push_back({to_original[v]});
      }
      break;
    }

    std::vector<std::size_t> originals;
    originals.reserve(r.vertices.size());
    for (std::size_t v : r.vertices) originals.push_back(to_original[v]);
    cover.cliques.push_back(originals);

    std::vector<std::size_t> keep;
    current = current.without(r.vertices, &keep);
    std::vector<std::size_t> next_map;
    next_map.reserve(keep.size());
    for (std::size_t v : keep) next_map.push_back(to_original[v]);
    to_original = std::move(next_map);
  }
  return cover;
}

}  // namespace s3::social
