// Weighted undirected graph over a working set of users, with dynamic
// bitset adjacency — the representation the clique machinery runs on —
// plus the ThetaDelta change-feed record that keeps incremental
// consumers (social::CliqueMaintainer) in sync with a mutating
// θ provider without whole-model rebuilds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "s3/util/error.h"
#include "s3/util/ids.h"

namespace s3::social {

class ThetaProvider;

/// One record of a ThetaProvider's structured change feed: pair
/// (u, v)'s social relation index moved to `theta`.
///
/// Invalidation contract (the delta-driven social API):
///
///   * A provider that emits deltas (`ThetaProvider::emits_theta_deltas`)
///     records one ThetaDelta for *every* mutation that changes any
///     θ(u, v), carrying the value of θ(u, v) *after* the mutation. A
///     consumer that applies a feed suffix in order therefore converges
///     on the provider's current θ for every touched pair; pairs never
///     mentioned by the feed are unchanged since the consumer's last
///     sync point. Derived state (θ-graph edges, clique covers,
///     per-clique scores) stays valid for every pair the drained feed
///     does not mention, and must be repaired only where it does.
///   * Feeds are bounded. When a poll reports `complete == false` the
///     provider discarded records the consumer had not seen (log
///     truncation), and every derived structure is invalid: the
///     consumer must re-seed from the provider's current state
///     (CliqueMaintainer::reset_from) before trusting any query.
///   * A provider that mutates but does not emit deltas advances
///     `read_epoch()` with an always-incomplete feed — the epoch is the
///     coarse invalidate-everything signal the feed refines. Immutable
///     providers (a trained SocialIndexModel) have an exact, forever
///     empty feed.
///   * `epoch` stamps the provider's read_epoch() at the mutation, so a
///     consumer can bracket a drained suffix against snapshot reads
///     (social_index.h's read-snapshot contract).
struct ThetaDelta {
  UserPair pair{0, 1};
  double theta = 0.0;    ///< θ(pair) after the mutation
  std::uint64_t epoch = 0;
};

/// Result of one ThetaProvider::poll_theta_deltas call. `cursor` is the
/// position to pass to the next poll; `complete` is false when records
/// after the caller's previous cursor were discarded before they could
/// be read (see the ThetaDelta invalidation contract above).
struct ThetaDeltaPoll {
  std::uint64_t cursor = 0;
  bool complete = true;
};

/// Fixed-capacity bitset sized at construction; supports the set
/// operations the Östergård search needs.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t capacity() const noexcept { return bits_; }

  void set(std::size_t i) {
    S3_REQUIRE(i < bits_, "Bitset::set out of range");
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void reset(std::size_t i) {
    S3_REQUIRE(i < bits_, "Bitset::reset out of range");
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  bool test(std::size_t i) const {
    S3_REQUIRE(i < bits_, "Bitset::test out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  bool any() const noexcept {
    for (std::uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Lowest set bit, or capacity() if none.
  std::size_t first() const noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w]) {
        return (w << 6) +
               static_cast<std::size_t>(__builtin_ctzll(words_[w]));
      }
    }
    return bits_;
  }

  Bitset& operator&=(const Bitset& o) {
    S3_REQUIRE(bits_ == o.bits_, "Bitset: size mismatch");
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
    return *this;
  }

  friend Bitset operator&(Bitset a, const Bitset& b) {
    a &= b;
    return a;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Undirected weighted graph on vertices 0..n-1 (the caller maps
/// vertices to UserIds).
class WeightedGraph {
 public:
  explicit WeightedGraph(std::size_t n)
      : n_(n), adj_(n, Bitset(n)), weights_(n * n, 0.0) {}

  std::size_t size() const noexcept { return n_; }

  void add_edge(std::size_t u, std::size_t v, double weight) {
    S3_REQUIRE(u < n_ && v < n_, "add_edge: vertex out of range");
    S3_REQUIRE(u != v, "add_edge: self loop");
    adj_[u].set(v);
    adj_[v].set(u);
    weights_[u * n_ + v] = weight;
    weights_[v * n_ + u] = weight;
  }

  bool adjacent(std::size_t u, std::size_t v) const {
    S3_REQUIRE(u < n_ && v < n_, "adjacent: vertex out of range");
    return adj_[u].test(v);
  }

  double weight(std::size_t u, std::size_t v) const {
    S3_REQUIRE(u < n_ && v < n_, "weight: vertex out of range");
    return weights_[u * n_ + v];
  }

  const Bitset& neighbors(std::size_t u) const {
    S3_REQUIRE(u < n_, "neighbors: vertex out of range");
    return adj_[u];
  }

  std::size_t degree(std::size_t u) const { return neighbors(u).count(); }

  std::size_t num_edges() const noexcept {
    std::size_t twice = 0;
    for (const Bitset& b : adj_) twice += b.count();
    return twice / 2;
  }

  /// Sum of edge weights inside a vertex subset.
  double internal_weight(const std::vector<std::size_t>& vertices) const;

  /// True iff every pair in `vertices` is adjacent.
  bool is_clique(const std::vector<std::size_t>& vertices) const;

  /// Copy of this graph with `vertices` (and incident edges) removed;
  /// `remap_out`, if non-null, receives new-index -> old-index.
  WeightedGraph without(const std::vector<std::size_t>& vertices,
                        std::vector<std::size_t>* remap_out = nullptr) const;

 private:
  std::size_t n_ = 0;
  std::vector<Bitset> adj_;
  std::vector<double> weights_;
};

/// The full social graph of a model: vertices are all user ids, with an
/// edge (u, v, θ(u,v)) wherever θ(u,v) >= threshold (the validators'
/// edge rule). When the provider is a SocialIndexModel whose pair store
/// has a neighbor index and whose type prior alone cannot reach the
/// threshold (max_type_term() < threshold), only pairs with recorded
/// history are enumerated — O(recorded pairs) instead of O(users²).
/// Otherwise every pair is scored through the batched theta_row kernel.
WeightedGraph build_theta_graph(const ThetaProvider& model, double threshold);

/// Enumerates every pair (u, v), u < v, whose θ clears `threshold` —
/// strictly (`strict`, the batch-graph/CliqueMaintainer edge rule) or
/// inclusively (build_theta_graph's rule) — calling
/// fn(u, v, θ(u, v)) once per qualifying pair in ascending (u, v)
/// order. Uses the same recorded-pairs CSR pruning as
/// build_theta_graph when the provider allows it, otherwise batched
/// theta_row sweeps.
void for_each_theta_edge(
    const ThetaProvider& model, double threshold, bool strict,
    const std::function<void(UserId, UserId, double)>& fn);

}  // namespace s3::social
