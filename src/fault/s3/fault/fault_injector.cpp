#include "s3/fault/fault_injector.h"

#include <algorithm>
#include <limits>

#include "s3/util/error.h"
#include "s3/util/rng.h"
#include "s3/wlan/network.h"

namespace s3::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {
  validate_plan(plan_);
  for (const ApOutage& o : plan_.ap_outages) {
    auto it = std::find_if(by_ap_.begin(), by_ap_.end(),
                           [&](const ApWindows& w) { return w.ap == o.ap; });
    if (it == by_ap_.end()) {
      by_ap_.push_back({o.ap, {}});
      it = by_ap_.end() - 1;
    }
    it->windows.push_back({o.begin, o.end});
  }
  std::sort(by_ap_.begin(), by_ap_.end(),
            [](const ApWindows& a, const ApWindows& b) { return a.ap < b.ap; });
  for (ApWindows& w : by_ap_) {
    std::sort(w.windows.begin(), w.windows.end(),
              [](const util::TimeInterval& a, const util::TimeInterval& b) {
                return a.begin < b.begin;
              });
  }
}

bool FaultInjector::ap_down(ApId ap, util::SimTime t) const {
  const auto it = std::lower_bound(
      by_ap_.begin(), by_ap_.end(), ap,
      [](const ApWindows& w, ApId a) { return w.ap < a; });
  if (it == by_ap_.end() || it->ap != ap) return false;
  // Last window starting at or before t is the only one that can cover it.
  const auto w = std::upper_bound(
      it->windows.begin(), it->windows.end(), t,
      [](util::SimTime x, const util::TimeInterval& iv) {
        return x < iv.begin;
      });
  return w != it->windows.begin() && std::prev(w)->contains(t);
}

bool FaultInjector::controller_down(ControllerId controller,
                                    util::SimTime t) const {
  for (const ControllerOutage& o : plan_.controller_outages) {
    if (o.controller == controller && o.begin <= t && t < o.end) return true;
  }
  for (const ControllerLoss& o : plan_.controller_losses) {
    if (o.controller == controller && o.begin <= t && t < o.end) return true;
  }
  return false;
}

std::vector<util::TimeInterval> FaultInjector::controller_outages(
    ControllerId controller) const {
  std::vector<util::TimeInterval> windows;
  for (const ControllerOutage& o : plan_.controller_outages) {
    if (o.controller == controller) windows.push_back({o.begin, o.end});
  }
  std::sort(windows.begin(), windows.end(),
            [](const util::TimeInterval& a, const util::TimeInterval& b) {
              return a.begin < b.begin;
            });
  return windows;
}

std::vector<util::TimeInterval> FaultInjector::controller_losses(
    ControllerId controller) const {
  std::vector<util::TimeInterval> windows;
  for (const ControllerLoss& o : plan_.controller_losses) {
    if (o.controller == controller) windows.push_back({o.begin, o.end});
  }
  std::sort(windows.begin(), windows.end(),
            [](const util::TimeInterval& a, const util::TimeInterval& b) {
              return a.begin < b.begin;
            });
  return windows;
}

bool FaultInjector::model_available(util::SimTime t) const {
  for (const ModelOutage& o : plan_.model_outages) {
    if (o.begin <= t && t < o.end) return false;
  }
  return true;
}

std::uint64_t FaultInjector::clique_budget(util::SimTime t) const {
  std::uint64_t tightest = 0;
  for (const CliqueSqueeze& s : plan_.clique_squeezes) {
    if (s.begin <= t && t < s.end) {
      tightest = tightest == 0 ? s.node_budget
                               : std::min(tightest, s.node_budget);
    }
  }
  return tightest;
}

bool FaultInjector::admission_fails(std::size_t session_index,
                                    std::uint32_t attempt,
                                    util::SimTime t) const {
  const double p = plan_.admission.failure_probability;
  if (p <= 0.0) return false;
  if (t < plan_.admission.begin || t >= plan_.admission.end) return false;
  if (p >= 1.0) return true;
  // Hash (seed, session, attempt) into a uniform 64-bit draw. SplitMix64
  // over the concatenated identifiers keeps attempts of the same session
  // uncorrelated while staying a pure, order-independent function.
  util::SplitMix64 mix(seed_ ^
                       (static_cast<std::uint64_t>(session_index) * 0x9e3779b97f4a7c15ULL) ^
                       (static_cast<std::uint64_t>(attempt) + 1));
  const std::uint64_t draw = mix.next();
  const auto threshold = static_cast<std::uint64_t>(
      p * static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
  return draw < threshold;
}

std::vector<ApFaultEvent> FaultInjector::events_for_domain(
    const wlan::Network& net, ControllerId controller) const {
  std::vector<ApFaultEvent> events;
  for (const ApOutage& o : plan_.ap_outages) {
    S3_REQUIRE(o.ap < net.num_aps(), "fault plan references unknown AP");
    if (net.controller_of_ap(o.ap) != controller) continue;
    events.push_back({o.begin, o.ap, ApFaultEvent::Kind::kDown});
    events.push_back({o.end, o.ap, ApFaultEvent::Kind::kUp});
  }
  std::sort(events.begin(), events.end(),
            [](const ApFaultEvent& a, const ApFaultEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              // Recoveries first: a window ending where another begins
              // leaves the AP up at the boundary instant (half-open
              // windows), so kUp must be applied before kDown.
              if (a.kind != b.kind) return a.kind == ApFaultEvent::Kind::kUp;
              return a.ap < b.ap;
            });
  return events;
}

}  // namespace s3::fault
