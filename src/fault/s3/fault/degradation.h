// Per-controller degradation state machine and recovery policy.
//
// HEALTHY --(stress: model outage, non-exact clique cover)--> DEGRADED
// DEGRADED --(first unstressed batch)--> RECOVERING
// RECOVERING --(healthy_after_clean_batches full-fidelity batches)--> HEALTHY
// RECOVERING --(stress or non-exact result)--> DEGRADED
//
// The hysteresis on the RECOVERING -> HEALTHY edge keeps a flapping
// model outage from thrashing the policy between S3 and the LLF
// fallback. The tracker is engine-local (one per controller domain) so
// it needs no synchronization and stays thread-count invariant.
#pragma once

#include <cstddef>
#include <cstdint>

#include "s3/util/sim_time.h"

namespace s3::fault {

enum class HealthState : std::uint8_t { kHealthy, kDegraded, kRecovering };

/// Transition/occupancy counters; copied into ReplayStats at finalize.
struct DegradationStats {
  std::size_t to_degraded = 0;
  std::size_t to_recovering = 0;
  std::size_t to_healthy = 0;
  std::size_t degraded_batches = 0;  ///< batches served by the fallback
  std::size_t observed_batches = 0;

  bool operator==(const DegradationStats&) const noexcept = default;
};

/// Retry/backoff and recovery-rebalance knobs for outage handling.
struct RecoveryPolicy {
  std::int64_t initial_backoff_s = 5;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_s = 300;
  std::uint32_t max_attempts = 8;          ///< failed attempts before abandon
  std::size_t max_recovery_migrations = 8; ///< per AP-recovery sweep
  double recovery_hysteresis_mbps = 0.5;
  std::size_t healthy_after_clean_batches = 3;

  /// Capped exponential backoff after the `attempt`-th failure (1-based).
  util::SimTime backoff(std::uint32_t attempt) const noexcept;
};

class DegradationTracker {
 public:
  explicit DegradationTracker(std::size_t healthy_after_clean_batches = 3)
      : clean_needed_(healthy_after_clean_batches) {}

  HealthState state() const noexcept { return state_; }
  const DegradationStats& stats() const noexcept { return stats_; }

  /// Consecutive full-fidelity batches observed while RECOVERING; part
  /// of the replica snapshot so a promoted backup resumes hysteresis
  /// mid-count.
  std::size_t clean_run() const noexcept { return clean_run_; }

  /// Called before dispatching a batch. `stressed` = the policy cannot
  /// run at full fidelity right now (e.g. it needs the social model and
  /// the injector says the model is out). Returns true when the batch
  /// must be served by the fallback policy.
  bool on_batch_start(bool stressed);

  /// Called after a full-fidelity batch with whether the policy really
  /// delivered full fidelity (e.g. the clique cover stayed exact).
  void on_batch_end(bool full_fidelity);

 private:
  void degrade();

  HealthState state_ = HealthState::kHealthy;
  std::size_t clean_needed_;
  std::size_t clean_run_ = 0;
  DegradationStats stats_;
};

}  // namespace s3::fault
