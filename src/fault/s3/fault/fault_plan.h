// Declarative fault plans for resilience replay.
//
// A FaultPlan is a pure description of what goes wrong and when: AP
// outage/recovery windows, social-model unavailability intervals, a
// clique-search node-budget squeeze, and a transient per-association
// admission failure process. Plans are data — they carry no randomness
// and no clocks. The seeded realization (which association attempt
// fails) happens in FaultInjector, so the same plan + seed always
// yields the same fault schedule no matter how many replay threads run.
//
// All windows are half-open [begin, end) in trace time, matching the
// convention of util::TimeInterval.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "s3/util/ids.h"
#include "s3/util/sim_time.h"

namespace s3::wlan {
class Network;
}  // namespace s3::wlan

namespace s3::fault {

/// One AP down for [begin, end); it recovers at `end`.
struct ApOutage {
  ApId ap = kInvalidAp;
  util::SimTime begin;
  util::SimTime end;
};

/// The controller serving one domain crashes at `begin` and restarts at
/// `end`. With a replication group attached (s3::repl) a backup is
/// promoted at the crash instant and the crashed replica rejoins as a
/// backup at `end`; without one the domain runs headless — arrivals in
/// the window are dropped, retries wait for the restart. Windows of the
/// same controller must not overlap (a controller cannot crash while
/// already down).
struct ControllerOutage {
  ControllerId controller = kInvalidController;
  util::SimTime begin;
  util::SimTime end;
};

/// The controller *and its whole replica set* are lost for
/// [begin, end) — a campus-level failure (power, uplink), not a single
/// process crash. There is nothing local left to promote: a replication
/// layer (s3::repl) has a designated neighbor-domain controller adopt
/// the orphaned domain from its last replicated snapshot, and the
/// revived originals take the domain back at `end`. Without a
/// replication layer the plan is rejected, like controller outages.
/// Windows of the same controller must not overlap each other or that
/// controller's outage windows.
struct ControllerLoss {
  ControllerId controller = kInvalidController;
  util::SimTime begin;
  util::SimTime end;
};

/// Social model unreachable (or known-stale) for the window; policies
/// that depend on it must run their embedded fallback.
struct ModelOutage {
  util::SimTime begin;
  util::SimTime end;
};

/// Clamp the Östergård max-clique node budget to `node_budget` while
/// the window is active — simulates CPU pressure that forces the
/// search to abort early and return non-exact covers.
struct CliqueSqueeze {
  util::SimTime begin;
  util::SimTime end;
  std::uint64_t node_budget = 0;
};

/// Transient admission failures: each association attempt inside the
/// window independently fails with `failure_probability`. Realized
/// deterministically from (seed, session, attempt) by FaultInjector.
struct AdmissionFaults {
  double failure_probability = 0.0;
  util::SimTime begin;
  util::SimTime end{std::numeric_limits<std::int64_t>::max()};
};

struct FaultPlan {
  std::vector<ApOutage> ap_outages;
  std::vector<ControllerOutage> controller_outages;
  std::vector<ControllerLoss> controller_losses;
  std::vector<ModelOutage> model_outages;
  std::vector<CliqueSqueeze> clique_squeezes;
  AdmissionFaults admission;

  bool empty() const noexcept {
    return ap_outages.empty() && controller_outages.empty() &&
           controller_losses.empty() && model_outages.empty() &&
           clique_squeezes.empty() && admission.failure_probability <= 0.0;
  }
};

/// Parse outcome: `ok()` iff the plan parsed and validated; otherwise
/// `error` names the offending line.
struct FaultPlanParseResult {
  FaultPlan plan;
  bool parsed = false;
  std::string error;

  bool ok() const noexcept { return parsed; }
};

// Text format (one directive per line, `#` comments, times in seconds):
//   s3fault v1
//   ap-outage AP BEGIN END
//   controller-outage CONTROLLER BEGIN END
//   controller-loss CONTROLLER BEGIN END
//   model-outage BEGIN END
//   clique-budget BEGIN END NODES
//   admission-failure P [BEGIN END]
FaultPlanParseResult parse_fault_plan(const std::string& text);
FaultPlanParseResult read_fault_plan_file(const std::string& path);

/// Serializes in the same format `parse_fault_plan` accepts.
std::string write_fault_plan(const FaultPlan& plan);
void write_fault_plan_file(const FaultPlan& plan, const std::string& path);

/// Throws util::S3Error (via S3_REQUIRE) on malformed windows
/// (begin >= end), probabilities outside [0, 1], overlapping outage
/// windows of the same controller, or — when `net` is given — AP or
/// controller ids outside the topology.
void validate_plan(const FaultPlan& plan, const wlan::Network* net = nullptr);

// Canned plans used by bench_resilience, CI, and EXPERIMENTS.md. All
// take the replay horizon so windows land inside the trace.

/// Rolling AP churn: every `num_outages`-th AP of the network fails for
/// `outage_s`, with staggered start times across [begin, end).
FaultPlan canned_ap_churn_plan(const wlan::Network& net, util::SimTime begin,
                               util::SimTime end, std::size_t num_outages = 6,
                               std::int64_t outage_s = 3 * 3600);

/// Social model unavailable for the middle third of [begin, end).
FaultPlan canned_model_outage_plan(util::SimTime begin, util::SimTime end);

/// Admission storm: failure_probability 0.3 over the middle half of
/// [begin, end), plus a clique-budget squeeze over the same window.
FaultPlan canned_admission_storm_plan(util::SimTime begin, util::SimTime end);

/// Controller churn: every second controller of the network crashes for
/// `outage_s`, with staggered start times across [begin, end). Drives
/// bench_failover and the repl determinism tests.
FaultPlan canned_controller_churn_plan(const wlan::Network& net,
                                       util::SimTime begin, util::SimTime end,
                                       std::size_t num_outages = 4,
                                       std::int64_t outage_s = 2 * 3600);

/// Whole-controller losses: `num_losses` controllers each lose their
/// entire replica set for `loss_s`, staggered so windows of different
/// controllers never overlap — the deterministic adoption order always
/// finds an alive neighbor. Drives the cross-domain failover tests and
/// bench_failover's adoption rows.
FaultPlan canned_controller_loss_plan(const wlan::Network& net,
                                      util::SimTime begin, util::SimTime end,
                                      std::size_t num_losses = 2,
                                      std::int64_t loss_s = 2 * 3600);

}  // namespace s3::fault
