#include "s3/fault/degradation.h"

#include <algorithm>

namespace s3::fault {

util::SimTime RecoveryPolicy::backoff(std::uint32_t attempt) const noexcept {
  if (attempt == 0) return util::SimTime(initial_backoff_s);
  double delay = static_cast<double>(initial_backoff_s);
  for (std::uint32_t i = 1; i < attempt; ++i) {
    delay *= backoff_multiplier;
    if (delay >= static_cast<double>(max_backoff_s)) break;
  }
  delay = std::min(delay, static_cast<double>(max_backoff_s));
  return util::SimTime(static_cast<std::int64_t>(delay));
}

void DegradationTracker::degrade() {
  if (state_ != HealthState::kDegraded) {
    state_ = HealthState::kDegraded;
    ++stats_.to_degraded;
  }
  clean_run_ = 0;
}

bool DegradationTracker::on_batch_start(bool stressed) {
  ++stats_.observed_batches;
  if (stressed) {
    degrade();
    ++stats_.degraded_batches;
    return true;
  }
  if (state_ == HealthState::kDegraded) {
    state_ = HealthState::kRecovering;
    ++stats_.to_recovering;
    clean_run_ = 0;
  }
  return false;
}

void DegradationTracker::on_batch_end(bool full_fidelity) {
  if (!full_fidelity) {
    degrade();
    return;
  }
  if (state_ == HealthState::kRecovering && ++clean_run_ >= clean_needed_) {
    state_ = HealthState::kHealthy;
    ++stats_.to_healthy;
    clean_run_ = 0;
  }
}

}  // namespace s3::fault
