// Deterministic re-association retry queue.
//
// Evicted or admission-rejected sessions wait here until their backoff
// expires, then re-enter the dispatch batch. Ordering is (due, session)
// so draining is a pure function of queue content — no wall clock, no
// insertion-order dependence — which keeps the fault path thread-count
// invariant.
//
// Deliberately lock-free: one queue belongs to one ControllerEngine
// and is only ever touched by the thread running that engine, so
// adding a mutex here would assert a sharing contract that does not
// exist.
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "s3/util/sim_time.h"

namespace s3::fault {

class RetryQueue {
 public:
  struct Entry {
    util::SimTime due;
    std::size_t session_index = 0;

    bool operator==(const Entry&) const noexcept = default;
  };

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  void push(std::size_t session_index, util::SimTime due) {
    heap_.push({due, session_index});
  }

  /// Earliest due time; queue must be non-empty.
  util::SimTime next_due() const { return heap_.top().due; }

  /// Pops every entry with due <= now, ordered by (due, session).
  std::vector<std::size_t> pop_due(util::SimTime now) {
    std::vector<std::size_t> out;
    while (!heap_.empty() && heap_.top().due <= now) {
      out.push_back(heap_.top().session_index);
      heap_.pop();
    }
    return out;
  }

  /// Pushes every due time to at least `t` — a headless domain (its
  /// controller down, nobody to serve retries) parks all pending
  /// re-associations until the controller restarts. Rebuilds the heap;
  /// ordering stays (due, session).
  void postpone_until(util::SimTime t) {
    std::vector<Entry> entries;
    entries.reserve(heap_.size());
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (e.due < t) e.due = t;
      entries.push_back(e);
    }
    for (const Entry& e : entries) heap_.push(e);
  }

  /// Content snapshot sorted by (due, session) — the canonical order —
  /// for replica digests and convergence checks. Does not drain.
  std::vector<Entry> sorted_entries() const {
    auto copy = heap_;
    std::vector<Entry> out;
    out.reserve(copy.size());
    while (!copy.empty()) {
      out.push_back(copy.top());
      copy.pop();
    }
    return out;
  }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.due != b.due) return a.due > b.due;
      return a.session_index > b.session_index;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace s3::fault
