// Cross-domain health publication for monitoring readers.
//
// Each domain's DegradationTracker is engine-local by design: it is
// only ever stepped under that domain's lock. Monitoring, though,
// wants "how is domain c doing?" without queueing behind placements on
// the domain lock. A HealthBoard decouples the two: the owner
// publishes the tracker's state after stepping it (it already holds
// the domain lock there), and readers take only the board's per-domain
// mutex — placement traffic on other domains is never touched, and
// placements on the same domain contend only for the tiny publish
// window instead of the whole batch dispatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "s3/fault/degradation.h"
#include "s3/util/error.h"
#include "s3/util/ids.h"
#include "s3/util/thread_annotations.h"

namespace s3::fault {

class HealthBoard {
 public:
  explicit HealthBoard(std::size_t num_domains)
      : cells_(std::make_unique<Cell[]>(num_domains)),
        num_domains_(num_domains) {}

  std::size_t num_domains() const noexcept { return num_domains_; }

  /// Publishes `domain`'s current health; called by the domain owner
  /// after stepping its tracker. Counts the edge when `state` differs
  /// from the last published value.
  void publish(ControllerId domain, HealthState state) {
    Cell& cell = at(domain);
    util::MutexLock lock(cell.mu);
    if (cell.state != state) ++cell.transitions;
    cell.state = state;
  }

  /// Last published health of `domain` (kHealthy before any publish).
  HealthState state(ControllerId domain) const {
    const Cell& cell = at(domain);
    util::MutexLock lock(cell.mu);
    return cell.state;
  }

  /// Published state edges seen for `domain` since construction.
  std::uint64_t transitions(ControllerId domain) const {
    const Cell& cell = at(domain);
    util::MutexLock lock(cell.mu);
    return cell.transitions;
  }

 private:
  struct Cell {
    mutable util::Mutex mu;
    HealthState state S3_GUARDED_BY(mu) = HealthState::kHealthy;
    std::uint64_t transitions S3_GUARDED_BY(mu) = 0;
  };

  Cell& at(ControllerId domain) const {
    S3_REQUIRE(domain < num_domains_, "HealthBoard: domain out of range");
    return cells_[domain];
  }

  std::unique_ptr<Cell[]> cells_;
  std::size_t num_domains_;
};

}  // namespace s3::fault
