// Bit-exact controller state capture for replication.
//
// A ReplicaSnapshot is everything a ControllerEngine owns that outlives
// a single event-loop step: published placements, the retry queue,
// per-session attempt counters, the degradation state machine, the
// policy's internal-state digest, and the accumulated stats. Two
// engines that applied the same event-log prefix must produce equal
// snapshots — that is the replication layer's correctness claim, and
// check::validate_replica_convergence asserts it field by field.
//
// The struct lives in s3::fault (below check and runtime in the build
// graph) so the validator library can name it without depending on the
// runtime engine that produces it.
#pragma once

#include <cstdint>
#include <vector>

#include "s3/fault/degradation.h"
#include "s3/fault/retry_queue.h"
#include "s3/sim/replay.h"
#include "s3/util/ids.h"

namespace s3::fault {

/// One published (or pending-invalid) placement; `placements` is sorted
/// by session index and covers exactly the owning domain's sessions.
struct SessionPlacement {
  std::size_t session_index = 0;
  ApId ap = kInvalidAp;

  bool operator==(const SessionPlacement&) const noexcept = default;
};

/// Retry-attempt count of one session; sorted by session index, only
/// sessions with at least one attempt appear.
struct SessionAttempts {
  std::size_t session_index = 0;
  std::uint32_t attempts = 0;

  bool operator==(const SessionAttempts&) const noexcept = default;
};

struct ReplicaSnapshot {
  ControllerId controller = kInvalidController;
  /// Replication term of the engine at capture (0 for an unreplicated
  /// engine) and how many event-log records it had applied.
  std::uint64_t term = 0;
  std::uint64_t applied_records = 0;

  std::vector<SessionPlacement> placements;
  std::vector<RetryQueue::Entry> retries;
  std::vector<SessionAttempts> attempts;

  HealthState health = HealthState::kHealthy;
  std::size_t clean_run = 0;
  DegradationStats degradation;

  /// sim::ApSelector::state_digest() of the engine's policy — folds the
  /// online social counters (PairStore), presence maps, and any policy
  /// RNG state into one comparable word.
  std::uint64_t policy_digest = 0;

  sim::ReplayStats stats;

  bool operator==(const ReplicaSnapshot&) const noexcept = default;

  /// SplitMix64-style fold of every field; equal snapshots have equal
  /// digests, and the event log stores this per flush so a backup can
  /// cheaply verify it tracked the primary.
  std::uint64_t digest() const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ controller;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    };
    for (const SessionPlacement& p : placements) {
      mix(p.session_index);
      mix(p.ap);
    }
    for (const RetryQueue::Entry& e : retries) {
      mix(static_cast<std::uint64_t>(e.due.seconds()));
      mix(e.session_index);
    }
    for (const SessionAttempts& a : attempts) {
      mix(a.session_index);
      mix(a.attempts);
    }
    mix(static_cast<std::uint64_t>(health));
    mix(clean_run);
    mix(degradation.to_degraded);
    mix(degradation.to_recovering);
    mix(degradation.to_healthy);
    mix(degradation.degraded_batches);
    mix(degradation.observed_batches);
    mix(policy_digest);
    mix(stats.num_sessions);
    mix(stats.num_batches);
    mix(stats.forced_overloads);
    mix(stats.fault_evictions);
    mix(stats.reassociations);
    mix(stats.retry_attempts);
    mix(stats.admission_rejections);
    mix(stats.abandoned_sessions);
    mix(stats.dropped_sessions);
    return h;
  }
};

}  // namespace s3::fault
