#include "s3/fault/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "s3/util/error.h"
#include "s3/wlan/network.h"

namespace s3::fault {
namespace {

constexpr const char* kMagic = "s3fault v1";

bool parse_i64(const std::string& tok, std::int64_t& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_u64(const std::string& tok, std::uint64_t& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_double(const std::string& tok, double& out) {
  // std::from_chars<double> is unevenly supported; istringstream with a
  // full-consumption check is portable and strict enough here.
  std::istringstream is(tok);
  is >> out;
  return static_cast<bool>(is) && is.peek() == EOF;
}

FaultPlanParseResult fail(std::size_t line_no, const std::string& what) {
  FaultPlanParseResult r;
  r.error = "fault plan line " + std::to_string(line_no) + ": " + what;
  return r;
}

}  // namespace

FaultPlanParseResult parse_fault_plan(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_magic = false;
  FaultPlanParseResult r;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;

    if (!saw_magic) {
      if (line.substr(first) != kMagic) {
        return fail(line_no, std::string("expected header \"") + kMagic + "\"");
      }
      saw_magic = true;
      continue;
    }

    std::istringstream ls(line);
    std::string verb;
    ls >> verb;
    std::vector<std::string> toks;
    for (std::string t; ls >> t;) toks.push_back(t);

    if (verb == "ap-outage") {
      if (toks.size() != 3) return fail(line_no, "ap-outage wants AP BEGIN END");
      std::int64_t ap = 0, b = 0, e = 0;
      if (!parse_i64(toks[0], ap) || !parse_i64(toks[1], b) ||
          !parse_i64(toks[2], e) || ap < 0) {
        return fail(line_no, "ap-outage: malformed number");
      }
      if (b >= e) return fail(line_no, "ap-outage: begin must precede end");
      r.plan.ap_outages.push_back({static_cast<ApId>(ap), util::SimTime(b),
                                   util::SimTime(e)});
    } else if (verb == "controller-outage") {
      if (toks.size() != 3) {
        return fail(line_no, "controller-outage wants CONTROLLER BEGIN END");
      }
      std::int64_t c = 0, b = 0, e = 0;
      if (!parse_i64(toks[0], c) || !parse_i64(toks[1], b) ||
          !parse_i64(toks[2], e) || c < 0 || b < 0) {
        return fail(line_no, "controller-outage: malformed number");
      }
      if (b >= e) {
        return fail(line_no, "controller-outage: begin must precede end");
      }
      r.plan.controller_outages.push_back({static_cast<ControllerId>(c),
                                           util::SimTime(b), util::SimTime(e)});
    } else if (verb == "controller-loss") {
      if (toks.size() != 3) {
        return fail(line_no, "controller-loss wants CONTROLLER BEGIN END");
      }
      std::int64_t c = 0, b = 0, e = 0;
      if (!parse_i64(toks[0], c) || !parse_i64(toks[1], b) ||
          !parse_i64(toks[2], e) || c < 0 || b < 0) {
        return fail(line_no, "controller-loss: malformed number");
      }
      if (b >= e) {
        return fail(line_no, "controller-loss: begin must precede end");
      }
      r.plan.controller_losses.push_back({static_cast<ControllerId>(c),
                                          util::SimTime(b), util::SimTime(e)});
    } else if (verb == "model-outage" || verb == "model-stale") {
      if (toks.size() != 2) return fail(line_no, verb + " wants BEGIN END");
      std::int64_t b = 0, e = 0;
      if (!parse_i64(toks[0], b) || !parse_i64(toks[1], e)) {
        return fail(line_no, verb + ": malformed number");
      }
      if (b >= e) return fail(line_no, verb + ": begin must precede end");
      r.plan.model_outages.push_back({util::SimTime(b), util::SimTime(e)});
    } else if (verb == "clique-budget") {
      if (toks.size() != 3) {
        return fail(line_no, "clique-budget wants BEGIN END NODES");
      }
      std::int64_t b = 0, e = 0;
      std::uint64_t nodes = 0;
      if (!parse_i64(toks[0], b) || !parse_i64(toks[1], e) ||
          !parse_u64(toks[2], nodes) || nodes == 0) {
        return fail(line_no, "clique-budget: malformed number");
      }
      if (b >= e) return fail(line_no, "clique-budget: begin must precede end");
      r.plan.clique_squeezes.push_back(
          {util::SimTime(b), util::SimTime(e), nodes});
    } else if (verb == "admission-failure") {
      if (toks.size() != 1 && toks.size() != 3) {
        return fail(line_no, "admission-failure wants P [BEGIN END]");
      }
      double p = 0.0;
      if (!parse_double(toks[0], p) || p < 0.0 || p > 1.0) {
        return fail(line_no, "admission-failure: P must be in [0, 1]");
      }
      r.plan.admission.failure_probability = p;
      if (toks.size() == 3) {
        std::int64_t b = 0, e = 0;
        if (!parse_i64(toks[1], b) || !parse_i64(toks[2], e)) {
          return fail(line_no, "admission-failure: malformed window");
        }
        if (b >= e) {
          return fail(line_no, "admission-failure: begin must precede end");
        }
        r.plan.admission.begin = util::SimTime(b);
        r.plan.admission.end = util::SimTime(e);
      }
    } else {
      return fail(line_no, "unknown directive \"" + verb + "\"");
    }
  }

  if (!saw_magic) return fail(0, std::string("missing header \"") + kMagic + "\"");
  r.parsed = true;
  return r;
}

FaultPlanParseResult read_fault_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    FaultPlanParseResult r;
    r.error = "cannot open fault plan file: " + path;
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fault_plan(buf.str());
}

std::string write_fault_plan(const FaultPlan& plan) {
  std::ostringstream out;
  out << kMagic << "\n";
  for (const ApOutage& o : plan.ap_outages) {
    out << "ap-outage " << o.ap << ' ' << o.begin.seconds() << ' '
        << o.end.seconds() << "\n";
  }
  for (const ControllerOutage& o : plan.controller_outages) {
    out << "controller-outage " << o.controller << ' ' << o.begin.seconds()
        << ' ' << o.end.seconds() << "\n";
  }
  for (const ControllerLoss& o : plan.controller_losses) {
    out << "controller-loss " << o.controller << ' ' << o.begin.seconds()
        << ' ' << o.end.seconds() << "\n";
  }
  for (const ModelOutage& o : plan.model_outages) {
    out << "model-outage " << o.begin.seconds() << ' ' << o.end.seconds()
        << "\n";
  }
  for (const CliqueSqueeze& s : plan.clique_squeezes) {
    out << "clique-budget " << s.begin.seconds() << ' ' << s.end.seconds()
        << ' ' << s.node_budget << "\n";
  }
  if (plan.admission.failure_probability > 0.0) {
    out << "admission-failure " << plan.admission.failure_probability << ' '
        << plan.admission.begin.seconds() << ' '
        << plan.admission.end.seconds() << "\n";
  }
  return out.str();
}

void write_fault_plan_file(const FaultPlan& plan, const std::string& path) {
  std::ofstream out(path);
  S3_REQUIRE(static_cast<bool>(out), "cannot open fault plan for writing");
  out << write_fault_plan(plan);
}

void validate_plan(const FaultPlan& plan, const wlan::Network* net) {
  for (const ApOutage& o : plan.ap_outages) {
    S3_REQUIRE(o.begin < o.end, "ap outage window is empty");
    if (net != nullptr) {
      S3_REQUIRE(o.ap < net->num_aps(), "ap outage references unknown AP");
    }
  }
  {
    // Per-controller windows must be disjoint: a window's begin crashes
    // a live replica and its end restarts that same replica, so an
    // overlap would leave crash/restart unpairable.
    std::vector<ControllerOutage> sorted = plan.controller_outages;
    std::sort(sorted.begin(), sorted.end(),
              [](const ControllerOutage& a, const ControllerOutage& b) {
                return a.controller != b.controller
                           ? a.controller < b.controller
                           : a.begin < b.begin;
              });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const ControllerOutage& o = sorted[i];
      S3_REQUIRE(o.begin < o.end, "controller outage window is empty");
      if (net != nullptr) {
        S3_REQUIRE(o.controller < net->num_controllers(),
                   "controller outage references unknown controller");
      }
      if (i > 0 && sorted[i - 1].controller == o.controller) {
        S3_REQUIRE(sorted[i - 1].end <= o.begin,
                   "controller outage windows overlap for one controller");
      }
    }
  }
  {
    // Losses follow the same pairing logic (begin kills, end revives),
    // and additionally must not overlap the same controller's outage
    // windows: a controller cannot crash one replica while its whole
    // replica set is already gone. Check the union per controller.
    struct Window {
      ControllerId controller;
      util::SimTime begin;
      util::SimTime end;
    };
    std::vector<Window> merged;
    merged.reserve(plan.controller_losses.size() +
                   plan.controller_outages.size());
    for (const ControllerLoss& o : plan.controller_losses) {
      S3_REQUIRE(o.begin < o.end, "controller loss window is empty");
      if (net != nullptr) {
        S3_REQUIRE(o.controller < net->num_controllers(),
                   "controller loss references unknown controller");
      }
      merged.push_back({o.controller, o.begin, o.end});
    }
    for (const ControllerOutage& o : plan.controller_outages) {
      merged.push_back({o.controller, o.begin, o.end});
    }
    std::sort(merged.begin(), merged.end(),
              [](const Window& a, const Window& b) {
                return a.controller != b.controller ? a.controller < b.controller
                                                    : a.begin < b.begin;
              });
    for (std::size_t i = 1; i < merged.size(); ++i) {
      if (merged[i - 1].controller != merged[i].controller) continue;
      S3_REQUIRE(merged[i - 1].end <= merged[i].begin,
                 "controller loss window overlaps another loss or outage "
                 "window of the same controller");
    }
  }
  for (const ModelOutage& o : plan.model_outages) {
    S3_REQUIRE(o.begin < o.end, "model outage window is empty");
  }
  for (const CliqueSqueeze& s : plan.clique_squeezes) {
    S3_REQUIRE(s.begin < s.end, "clique squeeze window is empty");
    S3_REQUIRE(s.node_budget > 0, "clique squeeze budget must be positive");
  }
  S3_REQUIRE(plan.admission.failure_probability >= 0.0 &&
                 plan.admission.failure_probability <= 1.0,
             "admission failure probability outside [0, 1]");
  if (plan.admission.failure_probability > 0.0) {
    S3_REQUIRE(plan.admission.begin < plan.admission.end,
               "admission failure window is empty");
  }
}

FaultPlan canned_ap_churn_plan(const wlan::Network& net, util::SimTime begin,
                               util::SimTime end, std::size_t num_outages,
                               std::int64_t outage_s) {
  S3_REQUIRE(begin < end, "ap churn plan wants a non-empty horizon");
  S3_REQUIRE(net.num_aps() > 0, "ap churn plan wants a non-empty network");
  FaultPlan plan;
  const std::size_t n = std::min(num_outages, net.num_aps());
  if (n == 0) return plan;
  const std::int64_t span = (end - begin).seconds();
  const std::int64_t len = std::min(outage_s, span / 2 > 0 ? span / 2 : 1);
  // Stagger one outage per chosen AP across the horizon; APs are spread
  // evenly over the topology so several controller domains are hit.
  const std::size_t ap_stride = std::max<std::size_t>(1, net.num_aps() / n);
  for (std::size_t i = 0; i < n; ++i) {
    const ApId ap = static_cast<ApId>((i * ap_stride) % net.num_aps());
    const std::int64_t start =
        begin.seconds() + static_cast<std::int64_t>(i) * span /
                              static_cast<std::int64_t>(n);
    const std::int64_t stop = std::min(start + len, end.seconds());
    if (start >= stop) continue;
    plan.ap_outages.push_back(
        {ap, util::SimTime(start), util::SimTime(stop)});
  }
  validate_plan(plan, &net);
  return plan;
}

FaultPlan canned_model_outage_plan(util::SimTime begin, util::SimTime end) {
  S3_REQUIRE(begin < end, "model outage plan wants a non-empty horizon");
  const std::int64_t span = (end - begin).seconds();
  FaultPlan plan;
  plan.model_outages.push_back({util::SimTime(begin.seconds() + span / 3),
                                util::SimTime(begin.seconds() + 2 * span / 3)});
  validate_plan(plan);
  return plan;
}

FaultPlan canned_admission_storm_plan(util::SimTime begin, util::SimTime end) {
  S3_REQUIRE(begin < end, "admission storm plan wants a non-empty horizon");
  const std::int64_t span = (end - begin).seconds();
  FaultPlan plan;
  plan.admission.failure_probability = 0.3;
  plan.admission.begin = util::SimTime(begin.seconds() + span / 4);
  plan.admission.end = util::SimTime(begin.seconds() + 3 * span / 4);
  plan.clique_squeezes.push_back(
      {plan.admission.begin, plan.admission.end, 64});
  validate_plan(plan);
  return plan;
}

FaultPlan canned_controller_churn_plan(const wlan::Network& net,
                                       util::SimTime begin, util::SimTime end,
                                       std::size_t num_outages,
                                       std::int64_t outage_s) {
  S3_REQUIRE(begin < end, "controller churn plan wants a non-empty horizon");
  S3_REQUIRE(net.num_controllers() > 0,
             "controller churn plan wants a non-empty network");
  FaultPlan plan;
  const std::size_t n = std::min(num_outages, net.num_controllers());
  if (n == 0) return plan;
  const std::int64_t span = (end - begin).seconds();
  const std::int64_t len = std::min(outage_s, span / 2 > 0 ? span / 2 : 1);
  // Stagger one crash per chosen controller, striding over the campus
  // so outages hit alternating domains rather than one corner.
  const std::size_t stride =
      std::max<std::size_t>(1, net.num_controllers() / n);
  for (std::size_t i = 0; i < n; ++i) {
    const ControllerId c =
        static_cast<ControllerId>((i * stride) % net.num_controllers());
    const std::int64_t start =
        begin.seconds() +
        static_cast<std::int64_t>(i) * span / static_cast<std::int64_t>(n);
    const std::int64_t stop = std::min(start + len, end.seconds());
    if (start >= stop) continue;
    plan.controller_outages.push_back(
        {c, util::SimTime(start), util::SimTime(stop)});
  }
  validate_plan(plan, &net);
  return plan;
}

FaultPlan canned_controller_loss_plan(const wlan::Network& net,
                                      util::SimTime begin, util::SimTime end,
                                      std::size_t num_losses,
                                      std::int64_t loss_s) {
  S3_REQUIRE(begin < end, "controller loss plan wants a non-empty horizon");
  S3_REQUIRE(net.num_controllers() > 0,
             "controller loss plan wants a non-empty network");
  FaultPlan plan;
  const std::size_t n = std::min(num_losses, net.num_controllers());
  if (n == 0) return plan;
  const std::int64_t span = (end - begin).seconds();
  // Windows must never overlap across controllers — the adoption order
  // probes neighbors in id order, and a fully disjoint stagger
  // guarantees every orphan finds one alive. Each loss gets its own
  // slice of the horizon.
  const std::int64_t slice = span / static_cast<std::int64_t>(n);
  const std::int64_t len =
      std::min(loss_s, slice > 1 ? slice - 1 : std::int64_t{1});
  for (std::size_t i = 0; i < n; ++i) {
    const ControllerId c = static_cast<ControllerId>(i % net.num_controllers());
    const std::int64_t start =
        begin.seconds() + static_cast<std::int64_t>(i) * slice;
    const std::int64_t stop = std::min(start + len, end.seconds());
    if (start >= stop) continue;
    plan.controller_losses.push_back(
        {c, util::SimTime(start), util::SimTime(stop)});
  }
  validate_plan(plan, &net);
  return plan;
}

}  // namespace s3::fault
