// Seeded realization of a FaultPlan.
//
// The injector is immutable after construction and all queries are pure
// functions of (plan, seed, arguments) — no internal clocks, no shared
// mutable state. Engines on different threads can share one injector
// freely, and the realized fault schedule is identical for any thread
// count: determinism here is what makes `--fault-plan` + `--fault-seed`
// reproducible, which the runtime tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "s3/fault/fault_plan.h"
#include "s3/util/ids.h"
#include "s3/util/sim_time.h"

namespace s3::wlan {
class Network;
}  // namespace s3::wlan

namespace s3::fault {

/// One AP state flip inside a controller domain, in event order.
struct ApFaultEvent {
  enum class Kind : std::uint8_t { kDown, kUp };
  util::SimTime when;
  ApId ap = kInvalidAp;
  Kind kind = Kind::kDown;
};

class FaultInjector {
 public:
  /// Validates the plan (throws std::invalid_argument on malformed
  /// windows or probabilities) and indexes the outage windows.
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 1);

  const FaultPlan& plan() const noexcept { return plan_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// True while `ap` is inside any of its outage windows [begin, end).
  bool ap_down(ApId ap, util::SimTime t) const;

  /// True while `controller` is inside any of its outage *or loss*
  /// windows [begin, end) — either way it is not serving.
  bool controller_down(ControllerId controller, util::SimTime t) const;

  /// The outage windows of one controller, sorted by begin. Windows of
  /// a validated plan never overlap, so these pair crash/restart
  /// instants one-to-one for a replication group.
  std::vector<util::TimeInterval> controller_outages(
      ControllerId controller) const;

  /// The whole-replica-set loss windows of one controller, sorted by
  /// begin; disjoint from each other and from the controller's outage
  /// windows (validated). A replication group answers each with
  /// cross-domain adoption.
  std::vector<util::TimeInterval> controller_losses(
      ControllerId controller) const;

  /// False while any model outage window covers `t`.
  bool model_available(util::SimTime t) const;

  /// Active clique node-budget clamp at `t`; 0 means no squeeze (use
  /// the configured budget). Overlapping squeezes take the tightest.
  std::uint64_t clique_budget(util::SimTime t) const;

  /// Whether association attempt number `attempt` (0-based) of session
  /// `session_index` fails at `t`. Pure hash of (seed, session,
  /// attempt) against the plan probability — identical across runs,
  /// thread counts, and call orders.
  bool admission_fails(std::size_t session_index, std::uint32_t attempt,
                       util::SimTime t) const;

  /// The down/up flips affecting one controller domain, sorted by
  /// (when, ap) with recoveries ordered before failures at equal time
  /// so a flapping AP is up at the boundary instant.
  std::vector<ApFaultEvent> events_for_domain(const wlan::Network& net,
                                              ControllerId controller) const;

 private:
  FaultPlan plan_;
  std::uint64_t seed_ = 1;
  // Outage windows grouped per AP and sorted, for O(log n) ap_down().
  struct ApWindows {
    ApId ap;
    std::vector<util::TimeInterval> windows;
  };
  std::vector<ApWindows> by_ap_;  // sorted by ap
};

}  // namespace s3::fault
