#include "s3/sim/replay.h"

#include <algorithm>
#include <queue>

namespace s3::sim {

namespace {

struct PendingBatch {
  std::vector<Arrival> arrivals;
  util::SimTime deadline;  // only meaningful when !arrivals.empty()
};

struct Departure {
  util::SimTime when;
  std::size_t session_index;
  ApId ap;
  UserId user;
};

struct DepartureLater {
  bool operator()(const Departure& a, const Departure& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.session_index > b.session_index;
  }
};

}  // namespace

ReplayResult replay(const wlan::Network& net, const trace::Trace& workload,
                    ApSelector& policy, const ReplayConfig& config) {
  S3_REQUIRE(config.dispatch_window_s >= 0,
             "replay: negative dispatch window");

  const auto sessions = workload.sessions();
  std::vector<ApId> assignment(sessions.size(), kInvalidAp);

  ApLoadTracker tracker(net);
  std::priority_queue<Departure, std::vector<Departure>, DepartureLater>
      departures;
  std::vector<PendingBatch> pending(net.num_controllers());

  ReplayStats stats;
  stats.num_sessions = sessions.size();

  auto flush = [&](ControllerId c) {
    PendingBatch& batch = pending[c];
    if (batch.arrivals.empty()) return;
    const std::vector<ApId> chosen =
        policy.select_batch(batch.arrivals, tracker);
    S3_ASSERT(chosen.size() == batch.arrivals.size(),
              "replay: policy returned wrong batch arity");
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const Arrival& a = batch.arrivals[i];
      const ApId ap = chosen[i];
      S3_ASSERT(std::find(a.candidates.begin(), a.candidates.end(), ap) !=
                    a.candidates.end(),
                "replay: policy picked an AP outside the candidate set");
      if (tracker.headroom_mbps(ap) < a.demand_mbps) {
        ++stats.forced_overloads;
      }
      tracker.associate(a.session_index, ap, a.user, a.demand_mbps);
      assignment[a.session_index] = ap;
      policy.on_associate(a, ap);
      departures.push(Departure{sessions[a.session_index].disconnect,
                                a.session_index, ap, a.user});
    }
    ++stats.num_batches;
    stats.max_batch_size = std::max(stats.max_batch_size,
                                    batch.arrivals.size());
    batch.arrivals.clear();
  };

  auto min_flush_deadline = [&]() {
    util::SimTime best = util::SimTime(std::numeric_limits<std::int64_t>::max());
    ControllerId who = kInvalidController;
    for (ControllerId c = 0; c < pending.size(); ++c) {
      if (!pending[c].arrivals.empty() && pending[c].deadline < best) {
        best = pending[c].deadline;
        who = c;
      }
    }
    return std::pair{best, who};
  };

  std::size_t next_arrival = 0;
  const auto inf = util::SimTime(std::numeric_limits<std::int64_t>::max());

  while (true) {
    const util::SimTime ta =
        next_arrival < sessions.size() ? sessions[next_arrival].connect : inf;
    const util::SimTime td = departures.empty() ? inf : departures.top().when;
    const auto [tf, flush_ctrl] = min_flush_deadline();

    if (ta == inf && td == inf && flush_ctrl == kInvalidController) break;

    // Tie order at equal timestamps: departures free capacity first,
    // then new arrivals join their batch, then due batches flush.
    if (td <= ta && td <= tf) {
      const Departure d = departures.top();
      departures.pop();
      tracker.disconnect(d.session_index, d.ap);
      policy.on_disconnect(d.session_index, d.user, d.ap, d.when);
      continue;
    }
    if (ta <= tf) {
      const trace::SessionRecord& s = sessions[next_arrival];
      Arrival a;
      a.session_index = next_arrival;
      a.user = s.user;
      a.controller = net.controller_of_building(s.building);
      a.connect = s.connect;
      a.demand_mbps = s.demand_mbps;
      a.candidates = wlan::candidate_aps(net, config.radio, s.building, s.pos);
      ++next_arrival;

      PendingBatch& batch = pending[a.controller];
      if (batch.arrivals.empty()) {
        batch.deadline =
            a.connect + util::SimTime(config.dispatch_window_s);
      }
      const ControllerId c = a.controller;
      batch.arrivals.push_back(std::move(a));
      if (config.dispatch_window_s == 0) flush(c);
      continue;
    }
    flush(flush_ctrl);
  }

  stats.mean_batch_size =
      stats.num_batches > 0
          ? static_cast<double>(stats.num_sessions) /
                static_cast<double>(stats.num_batches)
          : 0.0;

  return ReplayResult{workload.with_assignments(assignment), stats};
}

}  // namespace s3::sim
