// Discrete-event queue: the core of the trace-driven simulator.
//
// A stable min-heap over (time, sequence) so that events at equal
// timestamps pop in insertion order — determinism again (the replay
// engine relies on arrivals at the same second keeping trace order).
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "s3/util/sim_time.h"

namespace s3::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    util::SimTime time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(util::SimTime time, Payload payload) {
    heap_.push(Event{time, next_seq_++, std::move(payload)});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  const Event& top() const { return heap_.top(); }
  util::SimTime next_time() const { return heap_.top().time; }

  Event pop() {
    // priority_queue::top() is const; moving out right before pop() is
    // safe (the moved-from element is removed immediately) and keeps
    // move-only payloads usable.
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace s3::sim
