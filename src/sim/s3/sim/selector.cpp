#include "s3/sim/selector.h"

namespace s3::sim {

BatchResult ApSelector::place_batch(const BatchRequest& request,
                                    const ApLoadTracker& loads) {
  ApLoadTracker scratch = loads;
  BatchResult result;
  result.placements.reserve(request.arrivals.size());
  for (const Arrival& a : request.arrivals) {
    const ApId ap = select_one(a, scratch);
    scratch.associate(a.session_index, ap, a.user, a.demand_mbps);
    result.placements.push_back(ap);
  }
  return result;
}

// Shim definitions live out of line so the deprecation attribute fires
// on callers, not here.
std::vector<ApId> ApSelector::select_batch(std::span<const Arrival> batch,
                                           const ApLoadTracker& loads) {
  BatchResult result = place_batch(BatchRequest{batch, shim_faults_}, loads);
  shim_fidelity_ = result.full_fidelity;
  return std::move(result.placements);
}

void ApSelector::set_fault_controls(const FaultControls& controls) {
  shim_faults_ = controls;
}

bool ApSelector::last_batch_full_fidelity() const { return shim_fidelity_; }

}  // namespace s3::sim
