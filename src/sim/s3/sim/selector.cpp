#include "s3/sim/selector.h"

namespace s3::sim {

BatchResult ApSelector::place_batch(const BatchRequest& request,
                                    const ApLoadTracker& loads) {
  ApLoadTracker scratch = loads;
  BatchResult result;
  result.placements.reserve(request.arrivals.size());
  for (const Arrival& a : request.arrivals) {
    const ApId ap = select_one(a, scratch);
    scratch.associate(a.session_index, ap, a.user, a.demand_mbps);
    result.placements.push_back(ap);
  }
  return result;
}

}  // namespace s3::sim
