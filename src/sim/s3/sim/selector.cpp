#include "s3/sim/selector.h"

namespace s3::sim {

std::vector<ApId> ApSelector::select_batch(std::span<const Arrival> batch,
                                           const ApLoadTracker& loads) {
  ApLoadTracker scratch = loads;
  std::vector<ApId> out;
  out.reserve(batch.size());
  for (const Arrival& a : batch) {
    const ApId ap = select_one(a, scratch);
    scratch.associate(a.session_index, ap, a.user, a.demand_mbps);
    out.push_back(ap);
  }
  return out;
}

}  // namespace s3::sim
