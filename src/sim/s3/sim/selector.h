// AP-selection policy interface.
//
// A controller hands the policy a BatchRequest — the pending
// association requests observed within one dispatch window (all in the
// same controller domain) plus the fault directives in force — together
// with the current association state, and receives a BatchResult: one
// AP per arrival and whether the batch was served at full fidelity.
// Baselines (LLF, strongest-RSSI, random) implement select_one and
// inherit the sequential batch loop; S3 overrides place_batch to run
// its clique-dispersion algorithm on the whole batch.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "s3/sim/load_state.h"
#include "s3/util/ids.h"
#include "s3/util/sim_time.h"

namespace s3::sim {

/// One pending association request.
struct Arrival {
  std::size_t session_index = 0;  ///< index into the workload trace
  UserId user = kInvalidUser;
  ControllerId controller = kInvalidController;
  util::SimTime connect;
  /// Estimated offered rate w(u) (from the user's history in a real
  /// deployment; the generator's ground-truth demand here).
  double demand_mbps = 0.0;
  /// Audible APs, strongest RSSI first. Never empty.
  std::vector<ApId> candidates;
};

/// Degradation directives pushed into a policy before each batch when a
/// fault injector is active (see s3::fault). Policies that cannot honor
/// them (baselines with no social model) ignore them.
struct FaultControls {
  /// False while the social model is flagged unavailable/stale; a
  /// model-dependent policy must serve the batch with its embedded
  /// fallback.
  bool model_available = true;
  /// Non-zero clamps the clique-search node budget (CPU-pressure
  /// squeeze); 0 leaves the configured budget untouched.
  std::uint64_t clique_node_budget = 0;
  /// Engine-ordered fallback: the degradation state machine decided
  /// this batch runs on the fallback policy regardless of model state.
  bool force_fallback = false;
};

/// One dispatch window's worth of work, handed to the policy as a
/// single value: the arrivals plus the degradation directives in force
/// while they are placed.
struct BatchRequest {
  std::span<const Arrival> arrivals;
  FaultControls faults{};
};

/// What the policy did with a BatchRequest.
struct BatchResult {
  /// Chosen AP per arrival, aligned with BatchRequest::arrivals.
  std::vector<ApId> placements;
  /// False when the batch was served degraded (fallback policy) or
  /// inexactly (e.g. S3's clique search hit its node budget). Feeds the
  /// RECOVERING -> HEALTHY hysteresis of the degradation state machine.
  bool full_fidelity = true;
};

class ApSelector {
 public:
  virtual ~ApSelector() = default;

  virtual std::string_view name() const = 0;

  /// Picks an AP for one arrival given the current loads. Must return
  /// one of arrival.candidates.
  virtual ApId select_one(const Arrival& arrival,
                          const ApLoadTracker& loads) = 0;

  /// Places a whole batch under the request's fault directives. The
  /// default ignores the directives (baselines have no model to lose)
  /// and assigns sequentially, applying each placement to a scratch
  /// copy of the load state so that later picks see earlier ones (LLF
  /// spreading a burst of arrivals).
  virtual BatchResult place_batch(const BatchRequest& request,
                                  const ApLoadTracker& loads);

  /// Notification that the engine committed a placement (policies that
  /// maintain internal state — e.g. S3's view of who is where — hook
  /// these).
  virtual void on_associate(const Arrival& /*arrival*/, ApId /*ap*/) {}
  virtual void on_disconnect(std::size_t /*session_index*/, UserId /*user*/,
                             ApId /*ap*/, util::SimTime /*when*/) {}

  /// True for policies that depend on an external social model and so
  /// degrade when the injector declares a model outage.
  virtual bool uses_social_model() const { return false; }

  /// Order-insensitive fold of the policy's internal mutable state
  /// (online social counters, presence maps, RNG state). Two policy
  /// instances that observed the same associate/disconnect/batch
  /// sequence must report equal digests; the replication layer stores
  /// this in every replica snapshot to prove a promoted backup carries
  /// the same social model as the lost primary. Stateless policies
  /// keep the default 0.
  virtual std::uint64_t state_digest() const { return 0; }

  /// Deep copy carrying the exact internal state — not just the
  /// logical state but the same float-accumulation and container
  /// history, so a clone's future decisions are bit-identical to the
  /// original's. This is what lets the replication layer checkpoint a
  /// live engine: reconstructing a policy from logical state (counters,
  /// presence sets) cannot reproduce unordered-container iteration
  /// order or partial float sums, but a member-wise copy does.
  /// Policies that cannot honor that contract return nullptr (the
  /// default), which disables snapshot-based catch-up for them.
  virtual std::unique_ptr<ApSelector> clone() const { return nullptr; }
};

/// Builds one policy instance per controller shard.
///
/// Controller domains are fully independent (§V-A), so the sharded
/// replay driver gives every domain its own ApSelector rather than
/// funnelling all domains through one shared instance. Stateful
/// policies must derive any randomness or learning state
/// deterministically from `domain`, never from thread identity or wall
/// clock — that is what makes a sharded replay reproducible regardless
/// of thread count. Concrete factories for every shipped policy live
/// in s3::core (selector_factory.h).
class SelectorFactory {
 public:
  virtual ~SelectorFactory() = default;

  /// Policy name, identical to what the created instances report.
  virtual std::string_view name() const = 0;

  /// Fresh policy instance for controller shard `domain`.
  virtual std::unique_ptr<ApSelector> create(ControllerId domain) const = 0;
};

}  // namespace s3::sim
