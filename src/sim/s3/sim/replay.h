// Trace-driven replay: turns an unassigned workload into an assigned
// trace under a selection policy (the paper's evaluation methodology,
// §V-A).
//
// The engine walks the workload's arrival/departure events in time
// order. Arrivals are queued per controller and dispatched to the
// policy either immediately (dispatch_window == 0) or in batches when
// the oldest pending request has waited dispatch_window seconds —
// modelling a controller that aggregates association requests briefly
// so that co-coming users can be placed jointly. No migration ever
// happens after placement (user-friendliness requirement, §I).
#pragma once

#include <vector>

#include "s3/sim/selector.h"
#include "s3/trace/trace.h"
#include "s3/wlan/network.h"
#include "s3/wlan/radio.h"

namespace s3::sim {

struct ReplayConfig {
  /// Seconds a pending association request may wait for batching.
  /// 0 = assign each arrival immediately on its own. Two minutes keeps
  /// most of a co-coming burst in one batch (arrival jitter is a few
  /// minutes) without unreasonable association delay.
  std::int64_t dispatch_window_s = 120;
  wlan::RadioModel radio{};
};

struct ReplayStats {
  std::size_t num_sessions = 0;
  std::size_t num_batches = 0;
  std::size_t max_batch_size = 0;
  double mean_batch_size = 0.0;
  /// Placements where the chosen AP had no headroom for the arrival
  /// (every candidate violated the bandwidth constraint).
  std::size_t forced_overloads = 0;
  /// Policy contract violations: placements where the returned AP was
  /// not in the arrival's candidate set. Debug builds additionally
  /// throw; release builds count and keep the returned AP so the
  /// breach is observable instead of fatal.
  std::size_t candidate_violations = 0;

  // Fault-path accounting, all zero unless a fault::FaultInjector was
  // attached to the replay (see s3/fault and runtime::ReplayDriver).
  std::size_t degraded_batches = 0;    ///< batches served by the fallback
  std::size_t transitions_to_degraded = 0;
  std::size_t transitions_to_recovering = 0;
  std::size_t transitions_to_healthy = 0;
  std::size_t fault_evictions = 0;     ///< stations kicked by an AP outage
  std::size_t reassociations = 0;      ///< evicted/rejected sessions re-placed
  std::size_t retry_attempts = 0;      ///< retry-queue pushes (backoff waits)
  std::size_t admission_rejections = 0;
  std::size_t abandoned_sessions = 0;  ///< never (re-)placed before departure
  std::size_t recovery_migrations = 0; ///< rebalance moves on AP recovery
  /// Arrivals discarded because the domain's controller was down with no
  /// backup to promote (headless mode — see s3/repl). Zero whenever at
  /// least one replica survives every outage.
  std::size_t dropped_sessions = 0;

  bool operator==(const ReplayStats&) const noexcept = default;
};

struct ReplayResult {
  trace::Trace assigned;  ///< workload with every session's AP filled
  ReplayStats stats;
};

/// Replays `workload` on `net` under `policy`. The workload must be
/// time-consistent (guaranteed by trace::Trace); sessions shorter than
/// the dispatch window are still placed before their departure.
///
/// This is the shared-policy sequential entry point: a single policy
/// instance observes every controller's events in global time order.
/// It is defined by the s3lb::runtime library (a ReplayDriver in
/// sequential mode — see s3/runtime/replay_driver.h); link
/// s3lb::runtime to use it. For multi-threaded sharded replay, use
/// runtime::ReplayDriver with a SelectorFactory directly.
ReplayResult replay(const wlan::Network& net, const trace::Trace& workload,
                    ApSelector& policy, const ReplayConfig& config = {});

}  // namespace s3::sim
