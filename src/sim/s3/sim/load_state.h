// Dynamic association state of the network during replay.
//
// Tracks, per AP, the set of active stations with their offered rates.
// Selection policies read this view: LLF needs per-AP aggregate load,
// S3 additionally needs the identities of associated users to evaluate
// C(AP) = Σ_{w ∈ S(AP)} θ(u, w).
#pragma once

#include <unordered_map>
#include <vector>

#include "s3/util/error.h"
#include "s3/util/ids.h"
#include "s3/wlan/network.h"

namespace s3::sim {

struct ActiveStation {
  UserId user = kInvalidUser;
  double demand_mbps = 0.0;
};

class ApLoadTracker {
 public:
  explicit ApLoadTracker(const wlan::Network& net)
      : aps_(net.num_aps()), capacity_(net.num_aps()) {
    for (const wlan::ApConfig& a : net.aps()) {
      capacity_[a.id] = a.capacity_mbps;
    }
  }

  /// Associates session `session_id` (a caller-chosen unique key).
  void associate(std::size_t session_id, ApId ap, UserId user,
                 double demand_mbps) {
    S3_REQUIRE(ap < aps_.size(), "associate: ap out of range");
    ApState& s = aps_[ap];
    const bool inserted =
        s.stations.emplace(session_id, ActiveStation{user, demand_mbps})
            .second;
    S3_REQUIRE(inserted, "associate: duplicate session id on AP");
    s.total_demand_mbps += demand_mbps;
  }

  /// Removes session `session_id` from `ap`.
  void disconnect(std::size_t session_id, ApId ap) {
    S3_REQUIRE(ap < aps_.size(), "disconnect: ap out of range");
    ApState& s = aps_[ap];
    const auto it = s.stations.find(session_id);
    S3_REQUIRE(it != s.stations.end(), "disconnect: unknown session");
    s.total_demand_mbps -= it->second.demand_mbps;
    if (s.total_demand_mbps < 0.0) s.total_demand_mbps = 0.0;  // fp dust
    s.stations.erase(it);
  }

  std::size_t station_count(ApId ap) const {
    S3_REQUIRE(ap < aps_.size(), "station_count: ap out of range");
    return aps_[ap].stations.size();
  }

  /// Aggregate offered load (Mbit/s) — the "workload" LLF compares.
  double demand_mbps(ApId ap) const {
    S3_REQUIRE(ap < aps_.size(), "demand_mbps: ap out of range");
    return aps_[ap].total_demand_mbps;
  }

  double capacity_mbps(ApId ap) const {
    S3_REQUIRE(ap < aps_.size(), "capacity_mbps: ap out of range");
    return capacity_[ap];
  }

  /// Headroom before the Definition-1 bandwidth constraint is violated.
  double headroom_mbps(ApId ap) const {
    return capacity_mbps(ap) - demand_mbps(ap);
  }

  /// Visits every active station on `ap`. Visitation order is the
  /// map's stored order: unspecified, but stable for a given
  /// insert/erase history, which replay determinism relies on.
  template <typename Fn>
  void for_each_station(ApId ap, Fn&& fn) const {
    S3_REQUIRE(ap < aps_.size(), "for_each_station: ap out of range");
    // s3lint: allow(det-unordered-iter): callers reduce commutatively
    // (validators) or consume the stable stored order consistently
    // within a run (S3Selector's batched theta sweep).
    for (const auto& [sid, st] : aps_[ap].stations) fn(st);
  }

  std::size_t num_aps() const noexcept { return aps_.size(); }

  /// Total stations currently associated anywhere.
  std::size_t total_stations() const noexcept {
    std::size_t n = 0;
    for (const ApState& s : aps_) n += s.stations.size();
    return n;
  }

 private:
  struct ApState {
    std::unordered_map<std::size_t, ActiveStation> stations;
    double total_demand_mbps = 0.0;
  };

  std::vector<ApState> aps_;
  std::vector<double> capacity_;
};

}  // namespace s3::sim
