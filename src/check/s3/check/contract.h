// Runtime-selectable contract checking (the s3::check layer).
//
// The library-wide S3_REQUIRE / S3_ASSERT macros (s3/util/error.h) are
// always-on and always-throwing — right for cheap argument checks,
// wrong for the expensive structural invariants a production replay
// wants to *monitor* rather than die on. This layer adds contracts
// whose behavior is chosen at runtime:
//
//   kOff    — contracts are not even evaluated (the default; zero cost)
//   kCount  — violations bump counters on the util::metrics() bus
//   kLog    — kCount + one stderr line per violation
//   kAbort  — first violation throws check::ContractViolation, aborting
//             the computation (not the process)
//
// Use S3_PRECONDITION / S3_POSTCONDITION / S3_INVARIANT for inline
// contracts; the structural validators (validators.h) report through
// the same dispatch, so one mode switch governs both. The mode is
// process-global (set_contract_mode, or the S3LB_CHECK environment
// variable at first use) — contract state is observability
// configuration, not per-component state.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace s3::check {

enum class ContractMode : std::uint8_t { kOff, kCount, kLog, kAbort };

enum class ContractKind : std::uint8_t {
  kPrecondition,
  kPostcondition,
  kInvariant,
};

/// Thrown in kAbort mode. Derives from std::logic_error: a violated
/// contract is a bug in the caller or in this library, never expected
/// runtime fallibility.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(ContractKind kind, const std::string& what)
      : std::logic_error(what), kind_(kind) {}
  ContractKind kind() const noexcept { return kind_; }

 private:
  ContractKind kind_;
};

/// Active mode. Initialized once from the S3LB_CHECK environment
/// variable ("off" | "count" | "log" | "abort") if set, else kOff.
ContractMode contract_mode() noexcept;
void set_contract_mode(ContractMode mode) noexcept;
inline bool contracts_enabled() noexcept {
  return contract_mode() != ContractMode::kOff;
}

/// Parses "off" / "count" / "log" / "abort"; nullopt otherwise.
std::optional<ContractMode> parse_contract_mode(std::string_view text);
std::string_view to_string(ContractMode mode) noexcept;
std::string_view to_string(ContractKind kind) noexcept;

/// RAII mode override (tests, CLI commands).
class ScopedContractMode {
 public:
  explicit ScopedContractMode(ContractMode mode) : saved_(contract_mode()) {
    set_contract_mode(mode);
  }
  ~ScopedContractMode() { set_contract_mode(saved_); }
  ScopedContractMode(const ScopedContractMode&) = delete;
  ScopedContractMode& operator=(const ScopedContractMode&) = delete;

 private:
  ContractMode saved_;
};

/// Dispatches one violation under the active mode: bumps
/// "check.violations" and "check.violations.<kind>" (count/log),
/// writes a stderr line (log), or throws ContractViolation (abort).
/// `expr` is the violated expression (or a site name), `msg` the
/// human explanation. No-op when the mode is kOff.
void report_violation(ContractKind kind, const char* expr, const char* file,
                      int line, std::string_view msg);

/// Same dispatch for a structural validator's finding: the counter is
/// "check.<validator>.violations" and the text carries the validator
/// name instead of a source location.
void report_validator_issue(std::string_view validator, std::string_view msg);

}  // namespace s3::check

// Contract macros. The condition is NOT evaluated in kOff mode, so
// arbitrarily expensive checks are free when checking is disabled.
#define S3_CHECK_DETAIL(kind, expr, msg)                                  \
  do {                                                                    \
    if (::s3::check::contracts_enabled() && !(expr)) {                    \
      ::s3::check::report_violation((kind), #expr, __FILE__, __LINE__,    \
                                    (msg));                               \
    }                                                                     \
  } while (false)

// Caller-facing contract on a boundary's inputs.
#define S3_PRECONDITION(expr, msg) \
  S3_CHECK_DETAIL(::s3::check::ContractKind::kPrecondition, expr, msg)

// Contract on what an operation just produced.
#define S3_POSTCONDITION(expr, msg) \
  S3_CHECK_DETAIL(::s3::check::ContractKind::kPostcondition, expr, msg)

// Contract on internal state between operations.
#define S3_INVARIANT(expr, msg) \
  S3_CHECK_DETAIL(::s3::check::ContractKind::kInvariant, expr, msg)
