// Structural validators for the domain invariants the paper's
// pipeline rests on (§III–§V):
//
//   validate_trace        — session logs: monotonic timestamps,
//                           positive durations, known user/AP/building
//                           ids, APs inside the session's controller
//                           domain;
//   validate_social_graph — the social relation index and its graph:
//                           θ(u,v) finite, non-negative, symmetric,
//                           θ(u,u) = 0; graph edges at/above the θ
//                           threshold, no self-edges, weights matching
//                           the provider;
//   validate_clique_cover — a clique cover must partition the vertex
//                           set exactly (every vertex in exactly one
//                           clique, every clique fully connected), and
//                           must not be stale (no multi-member clique
//                           holding a vertex whose every θ-edge has
//                           since been deleted);
//   validate_load_state   — association load: per-AP conservation
//                           (cached totals equal the sum over active
//                           stations), finite non-negative loads, and
//                           the Chiu–Jain balancing index β ∈ [1/n, 1].
//
// Validators always *return* their findings; in addition every finding
// is dispatched through the contract layer (contract.h), so the active
// mode decides whether it is also counted on the metrics bus, logged,
// or thrown. A trace-analysis pipeline that feeds on silently
// malformed inputs corrupts every downstream conclusion — these are
// the machine-checked gates at the boundaries.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "s3/check/contract.h"
#include "s3/fault/fault_plan.h"
#include "s3/fault/replica_snapshot.h"
#include "s3/sim/load_state.h"
#include "s3/social/graph.h"
#include "s3/social/social_index.h"
#include "s3/trace/trace.h"
#include "s3/util/sim_time.h"
#include "s3/wlan/network.h"

namespace s3::check {

struct CheckIssue {
  std::string validator;  ///< e.g. "validate_trace"
  std::string message;
};

/// Findings of one validator run. Issues past `max_issues` are only
/// counted (`dropped`), so a wholly corrupt input cannot balloon the
/// report.
class CheckReport {
 public:
  explicit CheckReport(std::size_t max_issues = 64)
      : max_issues_(max_issues) {}

  bool ok() const noexcept { return issues_.empty() && dropped_ == 0; }
  std::span<const CheckIssue> issues() const noexcept { return issues_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// Records a finding and dispatches it through the contract layer
  /// (count / log / abort under the active mode).
  void add(std::string_view validator, std::string message);

  /// Appends another report's findings (for composite checks).
  void merge(CheckReport other);

 private:
  std::size_t max_issues_;
  std::vector<CheckIssue> issues_;
  std::size_t dropped_ = 0;
};

struct TraceCheckOptions {
  std::size_t max_issues = 64;
};

/// Validates raw session records as a reader produced them, before
/// trace::Trace sorts/normalizes (so timestamp regressions are still
/// visible). `net`, when given, bounds AP/building ids and requires
/// assigned APs to live in the session's controller domain.
CheckReport validate_trace(std::span<const trace::SessionRecord> sessions,
                           std::size_t num_users,
                           const wlan::Network* net = nullptr,
                           const TraceCheckOptions& options = {});

/// Convenience overload over a constructed (sorted) trace.
CheckReport validate_trace(const trace::Trace& trace,
                           const wlan::Network* net = nullptr,
                           const TraceCheckOptions& options = {});

struct SocialGraphCheckOptions {
  /// Edge threshold the graph was built with (S3Config's default).
  double theta_threshold = 0.3;
  double epsilon = 1e-9;
  /// Pair-loop budget for large user populations; pairs beyond it are
  /// not inspected (deterministic prefix).
  std::size_t max_pairs = 2'000'000;
  std::size_t max_issues = 64;
};

/// Validates a θ provider alone: finite, non-negative, symmetric,
/// θ(u,u) = 0.
CheckReport validate_social_graph(const social::ThetaProvider& theta,
                                  const SocialGraphCheckOptions& options = {});

/// Validates a social graph, optionally against the θ provider it was
/// built from: no self-edges, symmetric adjacency and weights, every
/// edge at/above the threshold, edge weights equal to θ, and no
/// missing edge whose θ clears the threshold.
CheckReport validate_social_graph(const social::WeightedGraph& graph,
                                  const social::ThetaProvider* theta,
                                  const SocialGraphCheckOptions& options = {});

/// Builds the all-users social graph of a θ provider (edges where
/// θ ≥ threshold) — the model-level analogue of the per-batch graph
/// S3Selector builds, shared by `s3lb check model` and tests.
social::WeightedGraph build_social_graph(const social::ThetaProvider& theta,
                                         double theta_threshold);

struct CliqueCoverCheckOptions {
  std::size_t max_issues = 64;
};

/// Validates that `cover` partitions the graph's vertices into
/// cliques: every vertex covered exactly once, every group a clique.
/// Covers computed against an older edge set are flagged as stale:
/// a vertex with zero remaining θ-edges inside a multi-member clique
/// gets its own "is stale" finding (on top of the generic non-clique
/// one), so incremental-maintenance bugs are named, not inferred.
CheckReport validate_clique_cover(
    const social::WeightedGraph& graph,
    std::span<const std::vector<std::size_t>> cover,
    const CliqueCoverCheckOptions& options = {});

struct LoadCheckOptions {
  /// Relative tolerance for conservation / β range checks.
  double epsilon = 1e-6;
  std::size_t max_issues = 64;
};

/// Validates a per-AP offered-load vector: finite, non-negative, and
/// Chiu–Jain β = (ΣT)²/(n·ΣT²) within [1/n, 1].
CheckReport validate_load_state(std::span<const double> per_ap_demand,
                                const LoadCheckOptions& options = {});

/// Validates a live association tracker: the above plus per-AP load
/// conservation (cached aggregate equals the sum over its stations).
CheckReport validate_load_state(const sim::ApLoadTracker& tracker,
                                const LoadCheckOptions& options = {});

/// Validates the static load of an assigned trace on a network
/// (per-AP sums of session demands).
CheckReport validate_load_state(const wlan::Network& net,
                                const trace::Trace& assigned,
                                const LoadCheckOptions& options = {});

struct ModelFreshnessOptions {
  std::size_t max_issues = 64;
};

/// Validates that a trained social model is fresh enough to steer
/// placement: its recorded training horizon (`trained_end_s`) must be
/// known and no older than `max_age` before `now` (both in trace
/// time). The paper's Fig. 11 shows the model saturates with ~15 days
/// of history but the flip side is drift — a model trained a semester
/// ago encodes last semester's cliques. Serving stale θ is a silent
/// degradation, which is exactly what this gate (and `s3lb check model
/// --stale-days`) makes loud.
CheckReport validate_model_freshness(const social::SocialIndexModel& model,
                                     util::SimTime now, util::SimTime max_age,
                                     const ModelFreshnessOptions& options = {});

struct FaultPlanCheckOptions {
  std::size_t max_issues = 64;
};

/// Lints a parsed fault plan: empty/inverted windows, probabilities
/// outside [0, 1], overlapping outage windows of the same AP or
/// controller, and — when `net` is given — AP/controller ids outside
/// the topology. Stricter than fault::validate_plan (which tolerates
/// overlapping AP windows); backs `s3lb check fault-plan`.
CheckReport validate_fault_plan(const fault::FaultPlan& plan,
                                const wlan::Network* net = nullptr,
                                const FaultPlanCheckOptions& options = {});

struct ReplicaConvergenceOptions {
  /// Require equal terms/applied-record counts too. Off by default: a
  /// promoted backup's term is one past the crashed primary's even
  /// when its domain state is bit-identical.
  bool require_equal_terms = false;
  std::size_t max_issues = 64;
};

/// Validates that two replica snapshots are bit-identical: placements,
/// retry queues, attempt counters, degradation state machine, policy
/// state digest, and stats must all match. This is the replication
/// layer's acceptance gate — a promoted backup that diverges anywhere
/// from the primary it replaced produces findings here.
CheckReport validate_replica_convergence(
    const fault::ReplicaSnapshot& a, const fault::ReplicaSnapshot& b,
    const ReplicaConvergenceOptions& options = {});

/// Log position of one replica, fed to validate_log_truncation. Plain
/// numbers rather than repl types: check sits below repl in the build
/// graph, like it does for ReplicaSnapshot.
struct ReplicaLogPosition {
  std::size_t replica = 0;    ///< replica index, for the finding message
  bool alive = true;          ///< dead replicas re-seed from a snapshot
  std::uint64_t applied = 0;  ///< log records applied ([0, log end])
};

struct LogTruncationCheckOptions {
  std::size_t max_issues = 64;
};

/// Validates the replication layer's truncation invariant before a log
/// prefix is dropped: the proposed new `base` must stay within the log,
/// must not pass the latest snapshot (a replica behind the base
/// re-seeds from a snapshot, so one must exist at or after it), and
/// must not pass any alive replica's applied position — i.e. no
/// replica can ever need a truncated record. `end` is one past the
/// last appended index; `snapshot_index` is the latest snapshot's
/// anchor, meaningful only when `has_snapshot`.
CheckReport validate_log_truncation(
    std::uint64_t base, std::uint64_t end, bool has_snapshot,
    std::uint64_t snapshot_index,
    std::span<const ReplicaLogPosition> replicas,
    const LogTruncationCheckOptions& options = {});

}  // namespace s3::check
