#include "s3/check/validators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "s3/analysis/balance.h"

namespace s3::check {

namespace {

constexpr std::string_view kTrace = "validate_trace";
constexpr std::string_view kSocialGraph = "validate_social_graph";
constexpr std::string_view kCliqueCover = "validate_clique_cover";
constexpr std::string_view kLoadState = "validate_load_state";
constexpr std::string_view kModelFreshness = "validate_model_freshness";
constexpr std::string_view kFaultPlan = "validate_fault_plan";
constexpr std::string_view kReplicaConvergence = "validate_replica_convergence";
constexpr std::string_view kLogTruncation = "validate_log_truncation";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// NaN-safe |a - b| <= tol: returns false (i.e. "differs") when either
/// side is NaN, which a plain fabs comparison would silently pass.
bool close(double a, double b, double tol) noexcept {
  return std::fabs(a - b) <= tol;
}

void check_load_vector(CheckReport& report, std::span<const double> demand,
                       const LoadCheckOptions& options) {
  for (std::size_t ap = 0; ap < demand.size(); ++ap) {
    if (!std::isfinite(demand[ap])) {
      report.add(kLoadState, "ap " + std::to_string(ap) +
                                 ": non-finite load " + fmt_double(demand[ap]));
    } else if (demand[ap] < -options.epsilon) {
      report.add(kLoadState, "ap " + std::to_string(ap) +
                                 ": negative load " + fmt_double(demand[ap]));
    }
  }
  if (demand.empty()) return;
  const double n = static_cast<double>(demand.size());
  const double beta = analysis::balance_index(demand);
  const bool in_range = std::isfinite(beta) &&
                        beta >= 1.0 / n - options.epsilon &&
                        beta <= 1.0 + options.epsilon;
  if (!in_range) {
    report.add(kLoadState, "balance index beta=" + fmt_double(beta) +
                               " outside [1/n, 1] = [" + fmt_double(1.0 / n) +
                               ", 1] over " + std::to_string(demand.size()) +
                               " APs");
  }
}

}  // namespace

void CheckReport::add(std::string_view validator, std::string message) {
  if (issues_.size() >= max_issues_) {
    ++dropped_;
    return;
  }
  // Dispatch first: in abort mode the contract layer throws and the
  // caller sees the violation as an exception, not a report entry.
  report_validator_issue(validator, message);
  issues_.push_back(CheckIssue{std::string(validator), std::move(message)});
}

void CheckReport::merge(CheckReport other) {
  for (CheckIssue& issue : other.issues_) {
    if (issues_.size() >= max_issues_) {
      ++dropped_;
      continue;
    }
    // Already dispatched when the source report recorded it.
    issues_.push_back(std::move(issue));
  }
  dropped_ += other.dropped_;
}

CheckReport validate_trace(std::span<const trace::SessionRecord> sessions,
                           std::size_t num_users, const wlan::Network* net,
                           const TraceCheckOptions& options) {
  CheckReport report(options.max_issues);
  if (num_users == 0) {
    report.add(kTrace, "trace declares zero users");
    return report;
  }
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const trace::SessionRecord& s = sessions[i];
    const std::string at = "record " + std::to_string(i);
    if (i > 0 && s.connect < sessions[i - 1].connect) {
      report.add(kTrace, at + ": connect timestamps regress (" +
                             std::to_string(s.connect.seconds()) + "s after " +
                             std::to_string(sessions[i - 1].connect.seconds()) +
                             "s)");
    }
    if (s.connect >= s.disconnect) {
      report.add(kTrace, at + ": non-positive session duration");
    }
    if (s.user >= num_users) {
      report.add(kTrace, at + ": unknown user id " + std::to_string(s.user) +
                             " (trace has " + std::to_string(num_users) +
                             " users)");
    }
    if (net == nullptr) continue;
    const bool building_known = s.building < net->num_buildings();
    if (!building_known) {
      report.add(kTrace, at + ": unknown building id " +
                             std::to_string(s.building) + " (network has " +
                             std::to_string(net->num_buildings()) +
                             " buildings)");
    }
    if (s.assigned()) {
      if (s.ap >= net->num_aps()) {
        report.add(kTrace, at + ": unknown AP id " + std::to_string(s.ap) +
                               " (network has " +
                               std::to_string(net->num_aps()) + " APs)");
      } else if (building_known &&
                 net->controller_of_ap(s.ap) !=
                     net->controller_of_building(s.building)) {
        report.add(kTrace, at + ": AP " + std::to_string(s.ap) +
                               " is outside building " +
                               std::to_string(s.building) +
                               "'s controller domain");
      }
    }
  }
  return report;
}

CheckReport validate_trace(const trace::Trace& trace, const wlan::Network* net,
                           const TraceCheckOptions& options) {
  return validate_trace(trace.sessions(), trace.num_users(), net, options);
}

CheckReport validate_social_graph(const social::ThetaProvider& theta,
                                  const SocialGraphCheckOptions& options) {
  CheckReport report(options.max_issues);
  const std::size_t n = theta.num_users();
  std::size_t budget = options.max_pairs;
  for (std::size_t u = 0; u < n && budget > 0; ++u) {
    const double self = theta.theta(static_cast<UserId>(u),
                                    static_cast<UserId>(u));
    if (!close(self, 0.0, options.epsilon)) {
      report.add(kSocialGraph, "theta(" + std::to_string(u) + ", " +
                                   std::to_string(u) + ") = " +
                                   fmt_double(self) + ", expected 0");
    }
    for (std::size_t v = u + 1; v < n && budget > 0; ++v, --budget) {
      const double uv = theta.theta(static_cast<UserId>(u),
                                    static_cast<UserId>(v));
      const double vu = theta.theta(static_cast<UserId>(v),
                                    static_cast<UserId>(u));
      const std::string pair =
          "theta(" + std::to_string(u) + ", " + std::to_string(v) + ")";
      if (!std::isfinite(uv)) {
        report.add(kSocialGraph, pair + " = " + fmt_double(uv) +
                                     " is not finite");
        continue;
      }
      if (uv < -options.epsilon) {
        report.add(kSocialGraph, pair + " = " + fmt_double(uv) +
                                     " is negative");
      }
      if (!close(uv, vu, options.epsilon)) {
        report.add(kSocialGraph, pair + " = " + fmt_double(uv) +
                                     " but theta(" + std::to_string(v) + ", " +
                                     std::to_string(u) + ") = " +
                                     fmt_double(vu) + " (asymmetric)");
      }
    }
  }
  return report;
}

CheckReport validate_social_graph(const social::WeightedGraph& graph,
                                  const social::ThetaProvider* theta,
                                  const SocialGraphCheckOptions& options) {
  CheckReport report(options.max_issues);
  const std::size_t n = graph.size();
  if (theta != nullptr && theta->num_users() != n) {
    report.add(kSocialGraph,
               "graph has " + std::to_string(n) + " vertices but the theta "
                   "provider knows " + std::to_string(theta->num_users()) +
                   " users");
    return report;
  }
  std::size_t budget = options.max_pairs;
  for (std::size_t u = 0; u < n && budget > 0; ++u) {
    if (graph.adjacent(u, u)) {
      report.add(kSocialGraph, "self-edge at vertex " + std::to_string(u));
    }
    for (std::size_t v = u + 1; v < n && budget > 0; ++v, --budget) {
      const bool uv = graph.adjacent(u, v);
      const bool vu = graph.adjacent(v, u);
      const std::string edge =
          "edge (" + std::to_string(u) + ", " + std::to_string(v) + ")";
      if (uv != vu) {
        report.add(kSocialGraph, edge + ": adjacency is asymmetric");
        continue;
      }
      const double w = graph.weight(u, v);
      if (!close(w, graph.weight(v, u), options.epsilon)) {
        report.add(kSocialGraph, edge + ": weight is asymmetric");
      }
      if (uv) {
        if (!std::isfinite(w)) {
          report.add(kSocialGraph, edge + ": non-finite weight " +
                                       fmt_double(w));
        } else if (w < options.theta_threshold - options.epsilon) {
          report.add(kSocialGraph,
                     edge + ": weight " + fmt_double(w) +
                         " below the theta threshold " +
                         fmt_double(options.theta_threshold));
        }
        if (theta != nullptr) {
          const double th = theta->theta(static_cast<UserId>(u),
                                         static_cast<UserId>(v));
          if (!close(w, th, options.epsilon)) {
            report.add(kSocialGraph, edge + ": weight " + fmt_double(w) +
                                         " disagrees with theta " +
                                         fmt_double(th));
          }
        }
      } else if (theta != nullptr) {
        const double th = theta->theta(static_cast<UserId>(u),
                                       static_cast<UserId>(v));
        if (std::isfinite(th) &&
            th >= options.theta_threshold + options.epsilon) {
          report.add(kSocialGraph, edge + ": missing although theta " +
                                       fmt_double(th) +
                                       " clears the threshold " +
                                       fmt_double(options.theta_threshold));
        }
      }
    }
  }
  return report;
}

social::WeightedGraph build_social_graph(const social::ThetaProvider& theta,
                                         double theta_threshold) {
  // Delegates to the social layer's builder: batched theta_row rows,
  // plus the recorded-pairs pruning when the provider is an indexed
  // SocialIndexModel whose type prior cannot reach the threshold.
  return social::build_theta_graph(theta, theta_threshold);
}

CheckReport validate_clique_cover(
    const social::WeightedGraph& graph,
    std::span<const std::vector<std::size_t>> cover,
    const CliqueCoverCheckOptions& options) {
  CheckReport report(options.max_issues);
  std::vector<std::size_t> covered(graph.size(), 0);
  for (std::size_t c = 0; c < cover.size(); ++c) {
    const std::vector<std::size_t>& clique = cover[c];
    const std::string at = "clique " + std::to_string(c);
    if (clique.empty()) {
      report.add(kCliqueCover, at + " is empty");
      continue;
    }
    bool in_range = true;
    for (const std::size_t v : clique) {
      if (v >= graph.size()) {
        report.add(kCliqueCover, at + ": vertex " + std::to_string(v) +
                                     " out of range (graph has " +
                                     std::to_string(graph.size()) +
                                     " vertices)");
        in_range = false;
      } else {
        ++covered[v];
      }
    }
    if (in_range && clique.size() > 1) {
      // Stale-cover detection: a multi-member clique holding a vertex
      // with no remaining θ-edges means the cover predates edge
      // deletions (an incremental maintainer missed an invalidation) —
      // report it as its own finding, not just a generic non-clique.
      for (const std::size_t v : clique) {
        if (graph.degree(v) == 0) {
          report.add(kCliqueCover,
                     at + " is stale: vertex " + std::to_string(v) +
                         " has no remaining theta-edges but sits in a " +
                         std::to_string(clique.size()) + "-member clique");
        }
      }
    }
    if (in_range && !graph.is_clique(clique)) {
      report.add(kCliqueCover, at + " is not a clique (a member pair is "
                                   "not adjacent)");
    }
  }
  for (std::size_t v = 0; v < covered.size(); ++v) {
    if (covered[v] == 0) {
      report.add(kCliqueCover, "not a partition: vertex " +
                                   std::to_string(v) + " is uncovered");
    } else if (covered[v] > 1) {
      report.add(kCliqueCover, "not a partition: vertex " +
                                   std::to_string(v) + " is covered " +
                                   std::to_string(covered[v]) + " times");
    }
  }
  return report;
}

CheckReport validate_load_state(std::span<const double> per_ap_demand,
                                const LoadCheckOptions& options) {
  CheckReport report(options.max_issues);
  check_load_vector(report, per_ap_demand, options);
  return report;
}

CheckReport validate_load_state(const sim::ApLoadTracker& tracker,
                                const LoadCheckOptions& options) {
  CheckReport report(options.max_issues);
  std::vector<double> cached(tracker.num_aps());
  for (ApId ap = 0; ap < tracker.num_aps(); ++ap) {
    cached[ap] = tracker.demand_mbps(ap);
    double recomputed = 0.0;
    tracker.for_each_station(
        ap, [&](const sim::ActiveStation& st) { recomputed += st.demand_mbps; });
    const double tol =
        options.epsilon * std::max(1.0, std::fabs(recomputed));
    if (!close(cached[ap], recomputed, tol)) {
      report.add(kLoadState,
                 "ap " + std::to_string(ap) + ": load not conserved (cached " +
                     fmt_double(cached[ap]) + " != sum over stations " +
                     fmt_double(recomputed) + ")");
    }
  }
  check_load_vector(report, cached, options);
  return report;
}

CheckReport validate_load_state(const wlan::Network& net,
                                const trace::Trace& assigned,
                                const LoadCheckOptions& options) {
  CheckReport report(options.max_issues);
  if (!assigned.fully_assigned()) {
    report.add(kLoadState, "trace is not fully assigned");
    return report;
  }
  std::vector<double> demand(net.num_aps(), 0.0);
  for (std::size_t i = 0; i < assigned.size(); ++i) {
    const trace::SessionRecord& s = assigned.session(i);
    if (s.ap >= net.num_aps()) {
      report.add(kLoadState, "record " + std::to_string(i) +
                                 ": AP id " + std::to_string(s.ap) +
                                 " out of range");
      continue;
    }
    demand[s.ap] += s.demand_mbps;
  }
  check_load_vector(report, demand, options);
  return report;
}

CheckReport validate_model_freshness(const social::SocialIndexModel& model,
                                     util::SimTime now, util::SimTime max_age,
                                     const ModelFreshnessOptions& options) {
  CheckReport report(options.max_issues);
  const std::int64_t trained_end = model.config().trained_end_s;
  if (trained_end < 0) {
    report.add(kModelFreshness,
               "training horizon unknown (model predates trained_end_s or "
               "was assembled without one); re-train to record it");
    return report;
  }
  const std::int64_t age = now.seconds() - trained_end;
  if (age < 0) {
    report.add(kModelFreshness,
               "training horizon " + std::to_string(trained_end) +
                   "s lies in the future of now=" +
                   std::to_string(now.seconds()) + "s");
    return report;
  }
  if (age > max_age.seconds()) {
    report.add(kModelFreshness,
               "social model stale: trained up to t=" +
                   std::to_string(trained_end) + "s, age " +
                   std::to_string(age) + "s exceeds max age " +
                   std::to_string(max_age.seconds()) + "s");
  }
  return report;
}

namespace {

std::string window_str(util::SimTime b, util::SimTime e) {
  return "[" + std::to_string(b.seconds()) + ", " +
         std::to_string(e.seconds()) + ")";
}

/// Flags empty/inverted windows and — sorted per entity — overlaps.
template <typename Outage, typename IdOf>
void check_outage_windows(CheckReport& report, std::string_view what,
                          std::vector<Outage> outages, IdOf id_of) {
  std::sort(outages.begin(), outages.end(),
            [&](const Outage& a, const Outage& b) {
              if (id_of(a) != id_of(b)) return id_of(a) < id_of(b);
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < outages.size(); ++i) {
    const Outage& o = outages[i];
    if (o.begin >= o.end) {
      report.add(kFaultPlan,
                 std::string(what) + " " + std::to_string(id_of(o)) +
                     ": empty outage window " + window_str(o.begin, o.end));
      continue;
    }
    if (i > 0 && id_of(outages[i - 1]) == id_of(o) &&
        outages[i - 1].end > o.begin && outages[i - 1].begin < outages[i - 1].end) {
      report.add(kFaultPlan,
                 std::string(what) + " " + std::to_string(id_of(o)) +
                     ": outage windows overlap: " +
                     window_str(outages[i - 1].begin, outages[i - 1].end) +
                     " and " + window_str(o.begin, o.end));
    }
  }
}

}  // namespace

CheckReport validate_fault_plan(const fault::FaultPlan& plan,
                                const wlan::Network* net,
                                const FaultPlanCheckOptions& options) {
  CheckReport report(options.max_issues);
  check_outage_windows(report, "ap", plan.ap_outages,
                       [](const fault::ApOutage& o) { return o.ap; });
  check_outage_windows(
      report, "controller", plan.controller_outages,
      [](const fault::ControllerOutage& o) { return o.controller; });
  check_outage_windows(
      report, "controller-loss", plan.controller_losses,
      [](const fault::ControllerLoss& o) { return o.controller; });
  if (net != nullptr) {
    for (const fault::ApOutage& o : plan.ap_outages) {
      if (o.ap >= net->num_aps()) {
        report.add(kFaultPlan, "ap-outage references unknown AP " +
                                   std::to_string(o.ap) + " (network has " +
                                   std::to_string(net->num_aps()) + ")");
      }
    }
    for (const fault::ControllerOutage& o : plan.controller_outages) {
      if (o.controller >= net->num_controllers()) {
        report.add(kFaultPlan,
                   "controller-outage references unknown controller " +
                       std::to_string(o.controller) + " (network has " +
                       std::to_string(net->num_controllers()) + ")");
      }
    }
    for (const fault::ControllerLoss& o : plan.controller_losses) {
      if (o.controller >= net->num_controllers()) {
        report.add(kFaultPlan,
                   "controller-loss references unknown controller " +
                       std::to_string(o.controller) + " (network has " +
                       std::to_string(net->num_controllers()) + ")");
      }
    }
  }
  for (const fault::ModelOutage& o : plan.model_outages) {
    if (o.begin >= o.end) {
      report.add(kFaultPlan,
                 "model-outage: empty window " + window_str(o.begin, o.end));
    }
  }
  for (const fault::CliqueSqueeze& s : plan.clique_squeezes) {
    if (s.begin >= s.end) {
      report.add(kFaultPlan,
                 "clique-budget: empty window " + window_str(s.begin, s.end));
    }
    if (s.node_budget == 0) {
      report.add(kFaultPlan, "clique-budget: budget must be positive");
    }
  }
  const fault::AdmissionFaults& adm = plan.admission;
  if (adm.failure_probability < 0.0 || adm.failure_probability > 1.0 ||
      !std::isfinite(adm.failure_probability)) {
    report.add(kFaultPlan, "admission-failure: probability " +
                               fmt_double(adm.failure_probability) +
                               " outside [0, 1]");
  } else if (adm.failure_probability > 0.0 && adm.begin >= adm.end) {
    report.add(kFaultPlan, "admission-failure: empty window " +
                               window_str(adm.begin, adm.end));
  }
  return report;
}

CheckReport validate_replica_convergence(
    const fault::ReplicaSnapshot& a, const fault::ReplicaSnapshot& b,
    const ReplicaConvergenceOptions& options) {
  CheckReport report(options.max_issues);
  if (a.controller != b.controller) {
    report.add(kReplicaConvergence,
               "snapshots are from different domains: controller " +
                   std::to_string(a.controller) + " vs " +
                   std::to_string(b.controller));
    return report;
  }
  if (options.require_equal_terms &&
      (a.term != b.term || a.applied_records != b.applied_records)) {
    report.add(kReplicaConvergence,
               "replication positions differ: term " + std::to_string(a.term) +
                   "/applied " + std::to_string(a.applied_records) + " vs term " +
                   std::to_string(b.term) + "/applied " +
                   std::to_string(b.applied_records));
  }
  if (a.placements != b.placements) {
    std::size_t diffs = 0;
    const std::size_t n = std::min(a.placements.size(), b.placements.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a.placements[i] == b.placements[i]) continue;
      ++diffs;
      if (diffs <= 8) {
        report.add(kReplicaConvergence,
                   "placement diverges at session " +
                       std::to_string(a.placements[i].session_index) + ": ap " +
                       std::to_string(a.placements[i].ap) + " vs " +
                       std::to_string(b.placements[i].ap));
      }
    }
    if (a.placements.size() != b.placements.size() || diffs > 8) {
      report.add(kReplicaConvergence,
                 "placement vectors differ (" +
                     std::to_string(a.placements.size()) + " vs " +
                     std::to_string(b.placements.size()) + " entries, " +
                     std::to_string(diffs) + " divergent)");
    }
  }
  if (a.retries != b.retries) {
    report.add(kReplicaConvergence,
               "retry queues differ: " + std::to_string(a.retries.size()) +
                   " vs " + std::to_string(b.retries.size()) + " entries");
  }
  if (a.attempts != b.attempts) {
    report.add(kReplicaConvergence,
               "attempt counters differ: " + std::to_string(a.attempts.size()) +
                   " vs " + std::to_string(b.attempts.size()) + " sessions");
  }
  if (a.health != b.health || a.clean_run != b.clean_run) {
    report.add(kReplicaConvergence,
               "degradation state differs: state " +
                   std::to_string(static_cast<int>(a.health)) + "/clean_run " +
                   std::to_string(a.clean_run) + " vs state " +
                   std::to_string(static_cast<int>(b.health)) + "/clean_run " +
                   std::to_string(b.clean_run));
  }
  if (!(a.degradation == b.degradation)) {
    report.add(kReplicaConvergence, "degradation transition counters differ");
  }
  if (a.policy_digest != b.policy_digest) {
    report.add(kReplicaConvergence,
               "policy state digests differ: " +
                   std::to_string(a.policy_digest) + " vs " +
                   std::to_string(b.policy_digest) +
                   " (online social counters diverged)");
  }
  if (!(a.stats == b.stats)) {
    report.add(kReplicaConvergence, "replay stats differ");
  }
  return report;
}

CheckReport validate_log_truncation(
    std::uint64_t base, std::uint64_t end, bool has_snapshot,
    std::uint64_t snapshot_index, std::span<const ReplicaLogPosition> replicas,
    const LogTruncationCheckOptions& options) {
  CheckReport report(options.max_issues);
  if (base > end) {
    report.add(kLogTruncation, "truncation base " + std::to_string(base) +
                                   " past the log end " + std::to_string(end));
  }
  if (base > 0) {
    if (!has_snapshot) {
      report.add(kLogTruncation,
                 "truncation to base " + std::to_string(base) +
                     " without any snapshot — a rejoining replica behind the "
                     "base would have nothing to re-seed from");
    } else if (snapshot_index < base) {
      report.add(kLogTruncation,
                 "latest snapshot at index " + std::to_string(snapshot_index) +
                     " precedes truncation base " + std::to_string(base) +
                     " — it would be dropped with the prefix");
    }
  }
  for (const ReplicaLogPosition& r : replicas) {
    if (r.applied > end) {
      report.add(kLogTruncation,
                 "replica " + std::to_string(r.replica) + " claims applied " +
                     std::to_string(r.applied) + " past the log end " +
                     std::to_string(end));
    }
    if (r.alive && r.applied < base) {
      report.add(kLogTruncation,
                 "alive replica " + std::to_string(r.replica) +
                     " still needs record " + std::to_string(r.applied) +
                     " which truncation to base " + std::to_string(base) +
                     " would drop");
    }
  }
  return report;
}

}  // namespace s3::check
