#include "s3/check/validators.h"

#include <cmath>
#include <cstdio>

#include "s3/analysis/balance.h"

namespace s3::check {

namespace {

constexpr std::string_view kTrace = "validate_trace";
constexpr std::string_view kSocialGraph = "validate_social_graph";
constexpr std::string_view kCliqueCover = "validate_clique_cover";
constexpr std::string_view kLoadState = "validate_load_state";
constexpr std::string_view kModelFreshness = "validate_model_freshness";

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// NaN-safe |a - b| <= tol: returns false (i.e. "differs") when either
/// side is NaN, which a plain fabs comparison would silently pass.
bool close(double a, double b, double tol) noexcept {
  return std::fabs(a - b) <= tol;
}

void check_load_vector(CheckReport& report, std::span<const double> demand,
                       const LoadCheckOptions& options) {
  for (std::size_t ap = 0; ap < demand.size(); ++ap) {
    if (!std::isfinite(demand[ap])) {
      report.add(kLoadState, "ap " + std::to_string(ap) +
                                 ": non-finite load " + fmt_double(demand[ap]));
    } else if (demand[ap] < -options.epsilon) {
      report.add(kLoadState, "ap " + std::to_string(ap) +
                                 ": negative load " + fmt_double(demand[ap]));
    }
  }
  if (demand.empty()) return;
  const double n = static_cast<double>(demand.size());
  const double beta = analysis::balance_index(demand);
  const bool in_range = std::isfinite(beta) &&
                        beta >= 1.0 / n - options.epsilon &&
                        beta <= 1.0 + options.epsilon;
  if (!in_range) {
    report.add(kLoadState, "balance index beta=" + fmt_double(beta) +
                               " outside [1/n, 1] = [" + fmt_double(1.0 / n) +
                               ", 1] over " + std::to_string(demand.size()) +
                               " APs");
  }
}

}  // namespace

void CheckReport::add(std::string_view validator, std::string message) {
  if (issues_.size() >= max_issues_) {
    ++dropped_;
    return;
  }
  // Dispatch first: in abort mode the contract layer throws and the
  // caller sees the violation as an exception, not a report entry.
  report_validator_issue(validator, message);
  issues_.push_back(CheckIssue{std::string(validator), std::move(message)});
}

void CheckReport::merge(CheckReport other) {
  for (CheckIssue& issue : other.issues_) {
    if (issues_.size() >= max_issues_) {
      ++dropped_;
      continue;
    }
    // Already dispatched when the source report recorded it.
    issues_.push_back(std::move(issue));
  }
  dropped_ += other.dropped_;
}

CheckReport validate_trace(std::span<const trace::SessionRecord> sessions,
                           std::size_t num_users, const wlan::Network* net,
                           const TraceCheckOptions& options) {
  CheckReport report(options.max_issues);
  if (num_users == 0) {
    report.add(kTrace, "trace declares zero users");
    return report;
  }
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const trace::SessionRecord& s = sessions[i];
    const std::string at = "record " + std::to_string(i);
    if (i > 0 && s.connect < sessions[i - 1].connect) {
      report.add(kTrace, at + ": connect timestamps regress (" +
                             std::to_string(s.connect.seconds()) + "s after " +
                             std::to_string(sessions[i - 1].connect.seconds()) +
                             "s)");
    }
    if (s.connect >= s.disconnect) {
      report.add(kTrace, at + ": non-positive session duration");
    }
    if (s.user >= num_users) {
      report.add(kTrace, at + ": unknown user id " + std::to_string(s.user) +
                             " (trace has " + std::to_string(num_users) +
                             " users)");
    }
    if (net == nullptr) continue;
    const bool building_known = s.building < net->num_buildings();
    if (!building_known) {
      report.add(kTrace, at + ": unknown building id " +
                             std::to_string(s.building) + " (network has " +
                             std::to_string(net->num_buildings()) +
                             " buildings)");
    }
    if (s.assigned()) {
      if (s.ap >= net->num_aps()) {
        report.add(kTrace, at + ": unknown AP id " + std::to_string(s.ap) +
                               " (network has " +
                               std::to_string(net->num_aps()) + " APs)");
      } else if (building_known &&
                 net->controller_of_ap(s.ap) !=
                     net->controller_of_building(s.building)) {
        report.add(kTrace, at + ": AP " + std::to_string(s.ap) +
                               " is outside building " +
                               std::to_string(s.building) +
                               "'s controller domain");
      }
    }
  }
  return report;
}

CheckReport validate_trace(const trace::Trace& trace, const wlan::Network* net,
                           const TraceCheckOptions& options) {
  return validate_trace(trace.sessions(), trace.num_users(), net, options);
}

CheckReport validate_social_graph(const social::ThetaProvider& theta,
                                  const SocialGraphCheckOptions& options) {
  CheckReport report(options.max_issues);
  const std::size_t n = theta.num_users();
  std::size_t budget = options.max_pairs;
  for (std::size_t u = 0; u < n && budget > 0; ++u) {
    const double self = theta.theta(static_cast<UserId>(u),
                                    static_cast<UserId>(u));
    if (!close(self, 0.0, options.epsilon)) {
      report.add(kSocialGraph, "theta(" + std::to_string(u) + ", " +
                                   std::to_string(u) + ") = " +
                                   fmt_double(self) + ", expected 0");
    }
    for (std::size_t v = u + 1; v < n && budget > 0; ++v, --budget) {
      const double uv = theta.theta(static_cast<UserId>(u),
                                    static_cast<UserId>(v));
      const double vu = theta.theta(static_cast<UserId>(v),
                                    static_cast<UserId>(u));
      const std::string pair =
          "theta(" + std::to_string(u) + ", " + std::to_string(v) + ")";
      if (!std::isfinite(uv)) {
        report.add(kSocialGraph, pair + " = " + fmt_double(uv) +
                                     " is not finite");
        continue;
      }
      if (uv < -options.epsilon) {
        report.add(kSocialGraph, pair + " = " + fmt_double(uv) +
                                     " is negative");
      }
      if (!close(uv, vu, options.epsilon)) {
        report.add(kSocialGraph, pair + " = " + fmt_double(uv) +
                                     " but theta(" + std::to_string(v) + ", " +
                                     std::to_string(u) + ") = " +
                                     fmt_double(vu) + " (asymmetric)");
      }
    }
  }
  return report;
}

CheckReport validate_social_graph(const social::WeightedGraph& graph,
                                  const social::ThetaProvider* theta,
                                  const SocialGraphCheckOptions& options) {
  CheckReport report(options.max_issues);
  const std::size_t n = graph.size();
  if (theta != nullptr && theta->num_users() != n) {
    report.add(kSocialGraph,
               "graph has " + std::to_string(n) + " vertices but the theta "
                   "provider knows " + std::to_string(theta->num_users()) +
                   " users");
    return report;
  }
  std::size_t budget = options.max_pairs;
  for (std::size_t u = 0; u < n && budget > 0; ++u) {
    if (graph.adjacent(u, u)) {
      report.add(kSocialGraph, "self-edge at vertex " + std::to_string(u));
    }
    for (std::size_t v = u + 1; v < n && budget > 0; ++v, --budget) {
      const bool uv = graph.adjacent(u, v);
      const bool vu = graph.adjacent(v, u);
      const std::string edge =
          "edge (" + std::to_string(u) + ", " + std::to_string(v) + ")";
      if (uv != vu) {
        report.add(kSocialGraph, edge + ": adjacency is asymmetric");
        continue;
      }
      const double w = graph.weight(u, v);
      if (!close(w, graph.weight(v, u), options.epsilon)) {
        report.add(kSocialGraph, edge + ": weight is asymmetric");
      }
      if (uv) {
        if (!std::isfinite(w)) {
          report.add(kSocialGraph, edge + ": non-finite weight " +
                                       fmt_double(w));
        } else if (w < options.theta_threshold - options.epsilon) {
          report.add(kSocialGraph,
                     edge + ": weight " + fmt_double(w) +
                         " below the theta threshold " +
                         fmt_double(options.theta_threshold));
        }
        if (theta != nullptr) {
          const double th = theta->theta(static_cast<UserId>(u),
                                         static_cast<UserId>(v));
          if (!close(w, th, options.epsilon)) {
            report.add(kSocialGraph, edge + ": weight " + fmt_double(w) +
                                         " disagrees with theta " +
                                         fmt_double(th));
          }
        }
      } else if (theta != nullptr) {
        const double th = theta->theta(static_cast<UserId>(u),
                                       static_cast<UserId>(v));
        if (std::isfinite(th) &&
            th >= options.theta_threshold + options.epsilon) {
          report.add(kSocialGraph, edge + ": missing although theta " +
                                       fmt_double(th) +
                                       " clears the threshold " +
                                       fmt_double(options.theta_threshold));
        }
      }
    }
  }
  return report;
}

social::WeightedGraph build_social_graph(const social::ThetaProvider& theta,
                                         double theta_threshold) {
  // Delegates to the social layer's builder: batched theta_row rows,
  // plus the recorded-pairs pruning when the provider is an indexed
  // SocialIndexModel whose type prior cannot reach the threshold.
  return social::build_theta_graph(theta, theta_threshold);
}

CheckReport validate_clique_cover(
    const social::WeightedGraph& graph,
    std::span<const std::vector<std::size_t>> cover,
    const CliqueCoverCheckOptions& options) {
  CheckReport report(options.max_issues);
  std::vector<std::size_t> covered(graph.size(), 0);
  for (std::size_t c = 0; c < cover.size(); ++c) {
    const std::vector<std::size_t>& clique = cover[c];
    const std::string at = "clique " + std::to_string(c);
    if (clique.empty()) {
      report.add(kCliqueCover, at + " is empty");
      continue;
    }
    bool in_range = true;
    for (const std::size_t v : clique) {
      if (v >= graph.size()) {
        report.add(kCliqueCover, at + ": vertex " + std::to_string(v) +
                                     " out of range (graph has " +
                                     std::to_string(graph.size()) +
                                     " vertices)");
        in_range = false;
      } else {
        ++covered[v];
      }
    }
    if (in_range && !graph.is_clique(clique)) {
      report.add(kCliqueCover, at + " is not a clique (a member pair is "
                                   "not adjacent)");
    }
  }
  for (std::size_t v = 0; v < covered.size(); ++v) {
    if (covered[v] == 0) {
      report.add(kCliqueCover, "not a partition: vertex " +
                                   std::to_string(v) + " is uncovered");
    } else if (covered[v] > 1) {
      report.add(kCliqueCover, "not a partition: vertex " +
                                   std::to_string(v) + " is covered " +
                                   std::to_string(covered[v]) + " times");
    }
  }
  return report;
}

CheckReport validate_load_state(std::span<const double> per_ap_demand,
                                const LoadCheckOptions& options) {
  CheckReport report(options.max_issues);
  check_load_vector(report, per_ap_demand, options);
  return report;
}

CheckReport validate_load_state(const sim::ApLoadTracker& tracker,
                                const LoadCheckOptions& options) {
  CheckReport report(options.max_issues);
  std::vector<double> cached(tracker.num_aps());
  for (ApId ap = 0; ap < tracker.num_aps(); ++ap) {
    cached[ap] = tracker.demand_mbps(ap);
    double recomputed = 0.0;
    tracker.for_each_station(
        ap, [&](const sim::ActiveStation& st) { recomputed += st.demand_mbps; });
    const double tol =
        options.epsilon * std::max(1.0, std::fabs(recomputed));
    if (!close(cached[ap], recomputed, tol)) {
      report.add(kLoadState,
                 "ap " + std::to_string(ap) + ": load not conserved (cached " +
                     fmt_double(cached[ap]) + " != sum over stations " +
                     fmt_double(recomputed) + ")");
    }
  }
  check_load_vector(report, cached, options);
  return report;
}

CheckReport validate_load_state(const wlan::Network& net,
                                const trace::Trace& assigned,
                                const LoadCheckOptions& options) {
  CheckReport report(options.max_issues);
  if (!assigned.fully_assigned()) {
    report.add(kLoadState, "trace is not fully assigned");
    return report;
  }
  std::vector<double> demand(net.num_aps(), 0.0);
  for (std::size_t i = 0; i < assigned.size(); ++i) {
    const trace::SessionRecord& s = assigned.session(i);
    if (s.ap >= net.num_aps()) {
      report.add(kLoadState, "record " + std::to_string(i) +
                                 ": AP id " + std::to_string(s.ap) +
                                 " out of range");
      continue;
    }
    demand[s.ap] += s.demand_mbps;
  }
  check_load_vector(report, demand, options);
  return report;
}

CheckReport validate_model_freshness(const social::SocialIndexModel& model,
                                     util::SimTime now, util::SimTime max_age,
                                     const ModelFreshnessOptions& options) {
  CheckReport report(options.max_issues);
  const std::int64_t trained_end = model.config().trained_end_s;
  if (trained_end < 0) {
    report.add(kModelFreshness,
               "training horizon unknown (model predates trained_end_s or "
               "was assembled without one); re-train to record it");
    return report;
  }
  const std::int64_t age = now.seconds() - trained_end;
  if (age < 0) {
    report.add(kModelFreshness,
               "training horizon " + std::to_string(trained_end) +
                   "s lies in the future of now=" +
                   std::to_string(now.seconds()) + "s");
    return report;
  }
  if (age > max_age.seconds()) {
    report.add(kModelFreshness,
               "social model stale: trained up to t=" +
                   std::to_string(trained_end) + "s, age " +
                   std::to_string(age) + "s exceeds max age " +
                   std::to_string(max_age.seconds()) + "s");
  }
  return report;
}

}  // namespace s3::check
