#include "s3/check/contract.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "s3/util/metrics.h"

namespace s3::check {

namespace {

ContractMode initial_mode() {
  if (const char* env = std::getenv("S3LB_CHECK")) {
    if (const std::optional<ContractMode> m = parse_contract_mode(env)) {
      return *m;
    }
    std::cerr << "[s3lb-check] ignoring unknown S3LB_CHECK value \"" << env
              << "\" (expected off|count|log|abort)\n";
  }
  return ContractMode::kOff;
}

std::atomic<ContractMode>& mode_state() {
  static std::atomic<ContractMode> mode{initial_mode()};
  return mode;
}

void count_violation(ContractKind kind) {
  // Cold path (violations only), so the registry lookups are fine.
  util::metrics().counter("check.violations")->add();
  util::metrics()
      .counter(std::string("check.violations.") +
               std::string(to_string(kind)))
      ->add();
}

}  // namespace

ContractMode contract_mode() noexcept {
  return mode_state().load(std::memory_order_relaxed);
}

void set_contract_mode(ContractMode mode) noexcept {
  mode_state().store(mode, std::memory_order_relaxed);
}

std::optional<ContractMode> parse_contract_mode(std::string_view text) {
  if (text == "off") return ContractMode::kOff;
  if (text == "count") return ContractMode::kCount;
  if (text == "log") return ContractMode::kLog;
  if (text == "abort") return ContractMode::kAbort;
  return std::nullopt;
}

std::string_view to_string(ContractMode mode) noexcept {
  switch (mode) {
    case ContractMode::kOff:
      return "off";
    case ContractMode::kCount:
      return "count";
    case ContractMode::kLog:
      return "log";
    case ContractMode::kAbort:
      return "abort";
  }
  return "?";
}

std::string_view to_string(ContractKind kind) noexcept {
  switch (kind) {
    case ContractKind::kPrecondition:
      return "precondition";
    case ContractKind::kPostcondition:
      return "postcondition";
    case ContractKind::kInvariant:
      return "invariant";
  }
  return "?";
}

void report_violation(ContractKind kind, const char* expr, const char* file,
                      int line, std::string_view msg) {
  const ContractMode mode = contract_mode();
  if (mode == ContractMode::kOff) return;
  count_violation(kind);
  std::string text = std::string(to_string(kind)) + " violated: " + expr +
                     " at " + file + ":" + std::to_string(line);
  if (!msg.empty()) {
    text += ": ";
    text += msg;
  }
  if (mode == ContractMode::kLog) {
    std::cerr << "[s3lb-check] " << text << "\n";
  } else if (mode == ContractMode::kAbort) {
    throw ContractViolation(kind, text);
  }
}

void report_validator_issue(std::string_view validator, std::string_view msg) {
  const ContractMode mode = contract_mode();
  if (mode == ContractMode::kOff) return;
  count_violation(ContractKind::kInvariant);
  util::metrics()
      .counter("check." + std::string(validator) + ".violations")
      ->add();
  const std::string text =
      std::string(validator) + ": " + std::string(msg);
  if (mode == ContractMode::kLog) {
    std::cerr << "[s3lb-check] " << text << "\n";
  } else if (mode == ContractMode::kAbort) {
    throw ContractViolation(ContractKind::kInvariant, text);
  }
}

}  // namespace s3::check
