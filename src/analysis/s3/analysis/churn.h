// Leading-factor decomposition (§III-C): is imbalance caused by
// application dynamics or by user churn?
#pragma once

#include <vector>

#include "s3/analysis/balance.h"
#include "s3/trace/trace.h"
#include "s3/util/sim_time.h"
#include "s3/wlan/network.h"

namespace s3::analysis {

struct AppDynamicsConfig {
  /// Outer analysis periods (paper: one hour).
  std::int64_t period_s = 3600;
  /// Sub-period for the β_i series (paper: 5, 10, 20 minutes).
  std::int64_t sub_period_s = 600;
  util::SimTime begin;
  util::SimTime end;
  /// Within-session modulation so that application dynamics exist at
  /// sub-session granularity (Fig. 3's subject). Calibrated to the
  /// paper's measurement that fixed-user balance variation is small
  /// (>80 % of S below 0.02 at 10-minute sub-periods).
  double modulation_sigma = 0.05;
};

/// Fig. 3: for every controller and hour-long period, keep only users
/// present for the *entire* period (churn removed), compute the balance
/// index per sub-period from their (modulated) traffic, and collect the
/// |S_i| = |(β_i − β_{i−1})/β_{i−1}| variation samples.
std::vector<double> app_dynamics_variation(const wlan::Network& net,
                                           const trace::Trace& trace,
                                           const AppDynamicsConfig& config);

struct UserChurnTimeline {
  /// Normalized balance index of traffic per slot.
  std::vector<double> traffic_balance;
  /// Normalized balance index of station counts per slot.
  std::vector<double> user_balance;
  util::SimTime begin;
  std::int64_t slot_s = 0;
};

/// Fig. 4: a controller's user-count-balance and traffic-balance
/// timelines over one interval (the paper shows one workday 8:00–24:00);
/// the two series move together, implicating churn.
UserChurnTimeline user_churn_timeline(const wlan::Network& net,
                                      const trace::Trace& trace,
                                      ControllerId controller,
                                      util::SimTime begin, util::SimTime end,
                                      std::int64_t slot_s = 600);

}  // namespace s3::analysis
