#include "s3/analysis/balance.h"

#include <algorithm>
#include <cmath>

#include "s3/util/rng.h"

namespace s3::analysis {

double balance_index(std::span<const double> throughput) noexcept {
  const std::size_t n = throughput.size();
  if (n <= 1) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double t : throughput) {
    sum += t;
    sum_sq += t * t;
  }
  if (sum_sq <= 0.0) return 1.0;  // idle domain: trivially balanced
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

double normalized_balance_index(std::span<const double> throughput) noexcept {
  const std::size_t n = throughput.size();
  if (n <= 1) return 1.0;
  const double beta = balance_index(throughput);
  const double floor = 1.0 / static_cast<double>(n);
  return (beta - floor) / (1.0 - floor);
}

std::vector<double> balance_variation(std::span<const double> beta_series) {
  std::vector<double> out;
  if (beta_series.size() < 2) return out;
  out.reserve(beta_series.size() - 1);
  for (std::size_t i = 1; i < beta_series.size(); ++i) {
    const double prev = beta_series[i - 1];
    if (prev <= 0.0) continue;  // undefined step
    out.push_back(std::abs((beta_series[i] - prev) / prev));
  }
  return out;
}

namespace {

/// Hash-derived standard normal for (seed, block) — deterministic
/// Box–Muller over two SplitMix64 draws.
double hashed_normal(std::uint64_t seed, std::int64_t block) {
  util::SplitMix64 mix(seed ^ (static_cast<std::uint64_t>(block) *
                               0x9e3779b97f4a7c15ULL));
  const auto u64_to_unit = [](std::uint64_t h) {
    return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
  };
  const double u1 = u64_to_unit(mix.next());
  const double u2 = u64_to_unit(mix.next());
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double block_noise(const trace::SessionRecord& s, std::int64_t block,
                   double sigma) {
  const double z = hashed_normal(s.rate_seed, block);
  return std::exp(sigma * z - 0.5 * sigma * sigma);
}

struct BlockRange {
  std::int64_t first;
  std::int64_t last;  // inclusive
};

BlockRange session_blocks(const trace::SessionRecord& s,
                          std::int64_t block_s) {
  return {s.connect.seconds() / block_s,
          (s.disconnect.seconds() - 1) / block_s};
}

double mean_session_noise(const trace::SessionRecord& s,
                          const ThroughputOptions& opts) {
  const BlockRange r = session_blocks(s, opts.modulation_block_s);
  double sum = 0.0;
  for (std::int64_t b = r.first; b <= r.last; ++b) {
    sum += block_noise(s, b, opts.modulation_sigma);
  }
  return sum / static_cast<double>(r.last - r.first + 1);
}

}  // namespace

double session_block_rate_mbps(const trace::SessionRecord& s,
                               util::SimTime block_begin,
                               const ThroughputOptions& opts) {
  if (!opts.modulate_within_session) return s.demand_mbps;
  const std::int64_t block = block_begin.seconds() / opts.modulation_block_s;
  const double mean = mean_session_noise(s, opts);
  if (mean <= 0.0) return s.demand_mbps;
  return s.demand_mbps * block_noise(s, block, opts.modulation_sigma) / mean;
}

ThroughputSeries::ThroughputSeries(const wlan::Network& net,
                                   const trace::Trace& trace,
                                   util::SimTime begin, util::SimTime end,
                                   const ThroughputOptions& opts)
    : begin_(begin), slot_s_(opts.slot_s) {
  S3_REQUIRE(trace.fully_assigned(),
             "ThroughputSeries: trace must be assigned");
  S3_REQUIRE(opts.slot_s > 0, "ThroughputSeries: slot width must be positive");
  S3_REQUIRE(begin < end, "ThroughputSeries: empty interval");
  if (opts.modulate_within_session) {
    S3_REQUIRE(opts.modulation_block_s > 0,
               "ThroughputSeries: bad modulation block");
  }

  num_slots_ = static_cast<std::size_t>(
      ((end - begin).seconds() + slot_s_ - 1) / slot_s_);

  domain_size_.resize(net.num_controllers());
  data_.resize(net.num_controllers());
  users_.resize(net.num_controllers());
  // AP id -> index within its controller domain.
  std::vector<std::size_t> ap_slot_index(net.num_aps(), 0);
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    const auto domain = net.aps_of_controller(c);
    domain_size_[c] = domain.size();
    data_[c].assign(num_slots_ * domain.size(), 0.0);
    users_[c].assign(num_slots_ * domain.size(), 0.0);
    for (std::size_t k = 0; k < domain.size(); ++k) {
      ap_slot_index[domain[k]] = k;
    }
  }

  const double slot_seconds = static_cast<double>(slot_s_);
  for (const trace::SessionRecord& s : trace.sessions()) {
    if (!s.overlaps(begin, end)) continue;
    const ControllerId c = net.controller_of_ap(s.ap);
    const std::size_t k = ap_slot_index[s.ap];
    const std::size_t width = domain_size_[c];

    // Precompute normalized block noise once per session.
    double mean_noise = 1.0;
    if (opts.modulate_within_session) mean_noise = mean_session_noise(s, opts);

    const std::int64_t lo =
        std::max(s.connect.seconds(), begin.seconds());
    const std::int64_t hi = std::min(s.disconnect.seconds(), end.seconds());

    std::int64_t t = lo;
    while (t < hi) {
      const std::int64_t slot = (t - begin.seconds()) / slot_s_;
      const std::int64_t slot_end = begin.seconds() + (slot + 1) * slot_s_;
      std::int64_t seg_end = std::min(hi, slot_end);
      if (opts.modulate_within_session) {
        const std::int64_t block_end =
            (t / opts.modulation_block_s + 1) * opts.modulation_block_s;
        seg_end = std::min(seg_end, block_end);
      }
      double rate = s.demand_mbps;
      if (opts.modulate_within_session && mean_noise > 0.0) {
        rate *= block_noise(s, t / opts.modulation_block_s,
                            opts.modulation_sigma) /
                mean_noise;
      }
      const double frac = static_cast<double>(seg_end - t) / slot_seconds;
      const std::size_t cell =
          static_cast<std::size_t>(slot) * width + k;
      data_[c][cell] += rate * frac;
      users_[c][cell] += frac;
      t = seg_end;
    }
  }

  if (opts.cap_at_capacity) {
    for (ControllerId c = 0; c < net.num_controllers(); ++c) {
      const auto domain = net.aps_of_controller(c);
      for (std::size_t slot = 0; slot < num_slots_; ++slot) {
        for (std::size_t k = 0; k < domain.size(); ++k) {
          double& v = data_[c][slot * domain.size() + k];
          v = std::min(v, net.ap(domain[k]).capacity_mbps);
        }
      }
    }
  }
}

std::span<const double> ThroughputSeries::slot_load(ControllerId c,
                                                    std::size_t slot) const {
  S3_REQUIRE(c < data_.size(), "slot_load: controller out of range");
  S3_REQUIRE(slot < num_slots_, "slot_load: slot out of range");
  const std::size_t width = domain_size_[c];
  return std::span<const double>(data_[c]).subspan(slot * width, width);
}

std::span<const double> ThroughputSeries::slot_users(ControllerId c,
                                                     std::size_t slot) const {
  S3_REQUIRE(c < users_.size(), "slot_users: controller out of range");
  S3_REQUIRE(slot < num_slots_, "slot_users: slot out of range");
  const std::size_t width = domain_size_[c];
  return std::span<const double>(users_[c]).subspan(slot * width, width);
}

std::vector<double> ThroughputSeries::normalized_balance_series(
    ControllerId c) const {
  std::vector<double> out(num_slots_);
  for (std::size_t s = 0; s < num_slots_; ++s) {
    out[s] = normalized_balance_index(slot_load(c, s));
  }
  return out;
}

std::vector<double> ThroughputSeries::normalized_user_balance_series(
    ControllerId c) const {
  std::vector<double> out(num_slots_);
  for (std::size_t s = 0; s < num_slots_; ++s) {
    out[s] = normalized_balance_index(slot_users(c, s));
  }
  return out;
}

double ThroughputSeries::total_load(ControllerId c, std::size_t slot) const {
  double sum = 0.0;
  for (double v : slot_load(c, slot)) sum += v;
  return sum;
}

}  // namespace s3::analysis
