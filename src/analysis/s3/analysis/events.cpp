#include "s3/analysis/events.h"

#include <algorithm>

#include "s3/util/error.h"

namespace s3::analysis {

namespace {

/// Session indices grouped per AP, connect-ordered.
std::unordered_map<ApId, std::vector<std::size_t>> sessions_by_ap(
    const trace::Trace& trace) {
  std::unordered_map<ApId, std::vector<std::size_t>> by_ap;
  const auto sessions = trace.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    by_ap[sessions[i].ap].push_back(i);  // trace is connect-ordered
  }
  return by_ap;
}

}  // namespace

PairStatsMap extract_pair_stats(const trace::Trace& trace,
                                const EventExtractionConfig& config) {
  S3_REQUIRE(trace.fully_assigned(),
             "extract_pair_stats: trace must be assigned");
  S3_REQUIRE(config.co_leave_window.seconds() > 0 &&
                 config.min_encounter_overlap.seconds() > 0,
             "extract_pair_stats: windows must be positive");

  PairStatsMap stats;
  const auto sessions = trace.sessions();

  // s3lint: allow(det-unordered-iter): per-AP contributions are integer
  // counter increments into a pair-keyed map, so accumulation commutes
  // across AP visit order.
  for (const auto& [ap, idx] : sessions_by_ap(trace)) {
    for (std::size_t a = 0; a < idx.size(); ++a) {
      const trace::SessionRecord& si = sessions[idx[a]];
      for (std::size_t b = a + 1; b < idx.size(); ++b) {
        const trace::SessionRecord& sj = sessions[idx[b]];
        if (sj.connect >= si.disconnect) break;  // no further overlaps
        if (si.user == sj.user) continue;

        const std::int64_t overlap =
            std::min(si.disconnect, sj.disconnect).seconds() -
            std::max(si.connect, sj.connect).seconds();
        if (overlap <= 0) continue;

        const bool co_came =
            std::llabs(si.connect.seconds() - sj.connect.seconds()) <=
            config.co_coming_window.seconds();
        const bool encountered =
            overlap >= config.min_encounter_overlap.seconds();
        if (!co_came && !encountered) continue;  // no event: no map entry

        PairEventStats& ps = stats[UserPair(si.user, sj.user)];
        if (co_came) ++ps.co_comings;
        if (encountered) {
          ++ps.encounters;
          const std::int64_t left_apart =
              std::llabs(si.disconnect.seconds() - sj.disconnect.seconds());
          if (left_apart <= config.co_leave_window.seconds()) {
            ++ps.co_leaves;
          }
        }
      }
    }
  }
  return stats;
}

namespace {

/// Shared sweep: for each per-AP event timeline, counts per-user events
/// and how many had a different-user companion within `window`.
/// `Select` extracts (time, user) from a session.
template <typename Select, typename Total, typename Joint>
void count_companioned_events(const trace::Trace& trace, util::SimTime window,
                              Select&& select, Total&& total,
                              Joint&& joint) {
  const auto sessions = trace.sessions();
  struct Ev {
    util::SimTime when;
    UserId user;
  };
  // s3lint: allow(det-unordered-iter): each AP's event timeline is
  // sorted before scanning, and the per-user tallies are integer
  // counters, so AP visit order cannot change the result.
  for (const auto& [ap, idx] : sessions_by_ap(trace)) {
    std::vector<Ev> events;
    events.reserve(idx.size());
    for (std::size_t i : idx) {
      const auto [when, user] = select(sessions[i]);
      events.push_back({when, user});
    }
    std::sort(events.begin(), events.end(),
              [](const Ev& a, const Ev& b) { return a.when < b.when; });

    for (std::size_t i = 0; i < events.size(); ++i) {
      total(events[i].user);
      bool companioned = false;
      for (std::size_t j = i + 1; j < events.size() && !companioned; ++j) {
        if ((events[j].when - events[i].when) > window) break;
        companioned = events[j].user != events[i].user;
      }
      for (std::size_t j = i; j-- > 0 && !companioned;) {
        if ((events[i].when - events[j].when) > window) break;
        companioned = events[j].user != events[i].user;
      }
      if (companioned) joint(events[i].user);
    }
  }
}

}  // namespace

std::vector<UserLeaveStats> per_user_leave_stats(const trace::Trace& trace,
                                                 util::SimTime window) {
  S3_REQUIRE(trace.fully_assigned(),
             "per_user_leave_stats: trace must be assigned");
  S3_REQUIRE(window.seconds() > 0, "per_user_leave_stats: bad window");
  std::vector<UserLeaveStats> out(trace.num_users());
  count_companioned_events(
      trace, window,
      [](const trace::SessionRecord& s) {
        return std::pair{s.disconnect, s.user};
      },
      [&](UserId u) { ++out[u].leavings; },
      [&](UserId u) { ++out[u].co_leavings; });
  return out;
}

std::vector<UserArrivalStats> per_user_arrival_stats(const trace::Trace& trace,
                                                     util::SimTime window) {
  S3_REQUIRE(trace.fully_assigned(),
             "per_user_arrival_stats: trace must be assigned");
  S3_REQUIRE(window.seconds() > 0, "per_user_arrival_stats: bad window");
  std::vector<UserArrivalStats> out(trace.num_users());
  count_companioned_events(
      trace, window,
      [](const trace::SessionRecord& s) {
        return std::pair{s.connect, s.user};
      },
      [&](UserId u) { ++out[u].arrivals; },
      [&](UserId u) { ++out[u].co_comings; });
  return out;
}

}  // namespace s3::analysis
