#include "s3/analysis/churn.h"

#include <algorithm>

#include "s3/util/error.h"

namespace s3::analysis {

namespace {

/// Megabits served by session `s` over [a, b) under within-session
/// modulation, divided by (b - a): the mean modulated rate.
double modulated_mean_rate(const trace::SessionRecord& s, std::int64_t a,
                           std::int64_t b, const ThroughputOptions& opts) {
  const std::int64_t lo = std::max(a, s.connect.seconds());
  const std::int64_t hi = std::min(b, s.disconnect.seconds());
  if (hi <= lo) return 0.0;
  double megabits = 0.0;
  std::int64_t t = lo;
  while (t < hi) {
    const std::int64_t block_end =
        (t / opts.modulation_block_s + 1) * opts.modulation_block_s;
    const std::int64_t seg_end = std::min(hi, block_end);
    const double rate =
        session_block_rate_mbps(s, util::SimTime(t), opts);
    megabits += rate * static_cast<double>(seg_end - t);
    t = seg_end;
  }
  return megabits / static_cast<double>(b - a);
}

}  // namespace

std::vector<double> app_dynamics_variation(const wlan::Network& net,
                                           const trace::Trace& trace,
                                           const AppDynamicsConfig& config) {
  S3_REQUIRE(trace.fully_assigned(),
             "app_dynamics_variation: trace must be assigned");
  S3_REQUIRE(config.period_s > 0 && config.sub_period_s > 0,
             "app_dynamics_variation: bad period widths");
  S3_REQUIRE(config.period_s % config.sub_period_s == 0,
             "app_dynamics_variation: sub-period must divide period");
  S3_REQUIRE(config.begin < config.end, "app_dynamics_variation: empty range");

  ThroughputOptions opts;
  opts.modulate_within_session = true;
  opts.modulation_sigma = config.modulation_sigma;

  const std::size_t subs =
      static_cast<std::size_t>(config.period_s / config.sub_period_s);

  // AP id -> dense index within its domain.
  std::vector<std::size_t> ap_index(net.num_aps(), 0);
  for (ControllerId c = 0; c < net.num_controllers(); ++c) {
    const auto domain = net.aps_of_controller(c);
    for (std::size_t k = 0; k < domain.size(); ++k) ap_index[domain[k]] = k;
  }

  std::vector<double> samples;
  const auto sessions = trace.sessions();

  for (std::int64_t p0 = config.begin.seconds();
       p0 + config.period_s <= config.end.seconds(); p0 += config.period_s) {
    const std::int64_t p1 = p0 + config.period_s;

    // Sessions alive for the entire period, bucketed per controller
    // (this is the paper's "remove users who just came or left").
    std::vector<std::vector<std::size_t>> full_period(net.num_controllers());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const trace::SessionRecord& s = sessions[i];
      if (s.connect.seconds() <= p0 && s.disconnect.seconds() >= p1) {
        full_period[net.controller_of_ap(s.ap)].push_back(i);
      }
    }

    for (ControllerId c = 0; c < net.num_controllers(); ++c) {
      if (full_period[c].empty()) continue;  // idle period: no dynamics
      const auto domain = net.aps_of_controller(c);
      std::vector<double> beta_series;
      beta_series.reserve(subs);
      std::vector<double> loads(domain.size());
      for (std::size_t si = 0; si < subs; ++si) {
        std::fill(loads.begin(), loads.end(), 0.0);
        const std::int64_t a =
            p0 + static_cast<std::int64_t>(si) * config.sub_period_s;
        const std::int64_t b = a + config.sub_period_s;
        for (std::size_t i : full_period[c]) {
          const trace::SessionRecord& s = sessions[i];
          loads[ap_index[s.ap]] += modulated_mean_rate(s, a, b, opts);
        }
        beta_series.push_back(balance_index(loads));
      }
      const std::vector<double> vars = balance_variation(beta_series);
      samples.insert(samples.end(), vars.begin(), vars.end());
    }
  }
  return samples;
}

UserChurnTimeline user_churn_timeline(const wlan::Network& net,
                                      const trace::Trace& trace,
                                      ControllerId controller,
                                      util::SimTime begin, util::SimTime end,
                                      std::int64_t slot_s) {
  S3_REQUIRE(controller < net.num_controllers(),
             "user_churn_timeline: controller out of range");
  ThroughputOptions opts;
  opts.slot_s = slot_s;
  const ThroughputSeries series(net, trace, begin, end, opts);

  UserChurnTimeline out;
  out.begin = begin;
  out.slot_s = slot_s;
  out.traffic_balance = series.normalized_balance_series(controller);
  out.user_balance = series.normalized_user_balance_series(controller);
  return out;
}

}  // namespace s3::analysis
