// Builders bridging traces to application-profile stores, plus the
// Fig. 6 NMI-vs-history analysis.
#pragma once

#include <vector>

#include "s3/apps/profile.h"
#include "s3/trace/trace.h"

namespace s3::analysis {

/// Accumulates every session's per-realm traffic into per-user daily
/// profiles (a session is booked on its connect day). Works on both
/// workloads and assigned traces — traffic is policy-independent.
apps::ProfileStore build_profiles(const trace::Trace& trace);

struct NmiCurveConfig {
  std::int64_t day_x = 20;   ///< the "today" profile compared against history
  int max_history_days = 20;
  std::size_t bins = 4;      ///< share-quantization bins for the MI estimate
  /// Users with less day-x traffic than this (bytes) are skipped.
  double min_day_traffic = 1.0;
};

struct NmiCurve {
  /// mean_nmi[n-1] = mean over users of NMI(T_x, Σ_{i=1..n} T_{x-i}).
  std::vector<double> mean_nmi;
  std::size_t users_considered = 0;
};

/// Reproduces the Fig. 6 measurement: how the NMI between the day-x
/// profile and the cumulative history profile grows with history
/// length n, averaged over users.
NmiCurve nmi_vs_history(const apps::ProfileStore& profiles,
                        const NmiCurveConfig& config);

}  // namespace s3::analysis
