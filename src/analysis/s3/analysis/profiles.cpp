#include "s3/analysis/profiles.h"

#include "s3/util/entropy.h"
#include "s3/util/error.h"

namespace s3::analysis {

apps::ProfileStore build_profiles(const trace::Trace& trace) {
  apps::ProfileStore store(trace.num_users(), trace.num_days());
  for (const trace::SessionRecord& s : trace.sessions()) {
    store.user(s.user).add_mix(s.connect.day(), s.traffic);
  }
  return store;
}

NmiCurve nmi_vs_history(const apps::ProfileStore& profiles,
                        const NmiCurveConfig& config) {
  S3_REQUIRE(config.day_x >= 1, "nmi_vs_history: day_x must be >= 1");
  S3_REQUIRE(config.max_history_days >= 1,
             "nmi_vs_history: max_history_days must be >= 1");

  NmiCurve curve;
  curve.mean_nmi.assign(static_cast<std::size_t>(config.max_history_days),
                        0.0);
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(config.max_history_days), 0);

  for (UserId u = 0; u < profiles.num_users(); ++u) {
    const apps::UserProfileHistory& h = profiles.user(u);
    const apps::AppMix& today = h.day(config.day_x);
    if (apps::total(today) < config.min_day_traffic) continue;
    ++curve.users_considered;
    for (int n = 1; n <= config.max_history_days; ++n) {
      const apps::AppMix hist =
          h.cumulative(config.day_x - n, config.day_x - 1);
      if (apps::total(hist) <= 0.0) continue;
      curve.mean_nmi[static_cast<std::size_t>(n - 1)] +=
          util::nmi(today, hist, config.bins);
      ++counts[static_cast<std::size_t>(n - 1)];
    }
  }
  for (std::size_t i = 0; i < curve.mean_nmi.size(); ++i) {
    if (counts[i] > 0) {
      curve.mean_nmi[i] /= static_cast<double>(counts[i]);
    }
  }
  return curve;
}

}  // namespace s3::analysis
