// Social-event extraction from an assigned trace (§III-D).
//
//  * Encountering: two users keep connections to the same AP with a
//    temporal overlap of at least `min_encounter_overlap`.
//  * Co-leaving: two users leave the same AP within
//    `co_leave_window` of each other (and had encountered during those
//    sessions, so the conditional P(L|E) is well defined per pair).
//  * Co-coming: symmetric on the connect side (tracked for
//    completeness; S3 only consumes encounters and co-leavings).
#pragma once

#include <unordered_map>
#include <vector>

#include "s3/trace/trace.h"
#include "s3/util/ids.h"
#include "s3/util/sim_time.h"

namespace s3::analysis {

struct PairEventStats {
  std::uint32_t encounters = 0;
  std::uint32_t co_leaves = 0;
  std::uint32_t co_comings = 0;

  /// Empirical P(L(u,v) | E(u,v)).
  double co_leave_probability() const noexcept {
    return encounters > 0
               ? static_cast<double>(co_leaves) / static_cast<double>(encounters)
               : 0.0;
  }
};

using PairStatsMap =
    std::unordered_map<UserPair, PairEventStats, UserPairHash>;

struct EventExtractionConfig {
  /// Co-leaving window (paper sweeps 1–30 min; 5 min is optimal, §V-B).
  util::SimTime co_leave_window = util::SimTime::from_minutes(5);
  /// Minimum same-AP overlap for an encounter.
  util::SimTime min_encounter_overlap = util::SimTime::from_minutes(10);
  /// Co-coming window (definition symmetry).
  util::SimTime co_coming_window = util::SimTime::from_minutes(5);
};

/// Per-pair encounter / co-leave / co-come counts over the whole trace.
/// The trace must be fully assigned (events are defined per AP).
PairStatsMap extract_pair_stats(const trace::Trace& trace,
                                const EventExtractionConfig& config = {});

/// Per-user leaving behaviour for the Fig. 5 CDF.
struct UserLeaveStats {
  std::uint32_t leavings = 0;     ///< total disconnects
  std::uint32_t co_leavings = 0;  ///< disconnects with >=1 co-leaver

  double co_leave_fraction() const noexcept {
    return leavings > 0
               ? static_cast<double>(co_leavings) / static_cast<double>(leavings)
               : 0.0;
  }
};

/// For each user: how many of their leavings were co-leavings (another
/// user left the same AP within `window`).
std::vector<UserLeaveStats> per_user_leave_stats(const trace::Trace& trace,
                                                 util::SimTime window);

/// Per-user arrival behaviour (the co-coming side of §III-D).
struct UserArrivalStats {
  std::uint32_t arrivals = 0;
  std::uint32_t co_comings = 0;  ///< arrivals with >=1 co-arriver

  double co_coming_fraction() const noexcept {
    return arrivals > 0
               ? static_cast<double>(co_comings) / static_cast<double>(arrivals)
               : 0.0;
  }
};

/// For each user: how many of their arrivals were co-comings (another
/// user joined the same AP within `window`).
std::vector<UserArrivalStats> per_user_arrival_stats(const trace::Trace& trace,
                                                     util::SimTime window);

}  // namespace s3::analysis
